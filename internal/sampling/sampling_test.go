package sampling

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewAliasErrors(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := NewAlias([]float64{0, 0}); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := NewAlias([]float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewAlias([]float64{math.NaN()}); err == nil {
		t.Error("NaN weight accepted")
	}
}

func TestAliasDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a := MustAlias(weights)
	rng := rand.New(rand.NewPCG(1, 2))
	const n = 200000
	counts := make([]int, 4)
	for i := 0; i < n; i++ {
		counts[a.Sample(rng)]++
	}
	for i, w := range weights {
		want := w / 10 * n
		if math.Abs(float64(counts[i])-want) > 0.03*want {
			t.Errorf("outcome %d: count %d want ~%.0f", i, counts[i], want)
		}
	}
}

func TestAliasZeroWeightNeverSampled(t *testing.T) {
	a := MustAlias([]float64{0, 1, 0, 2})
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 10000; i++ {
		s := a.Sample(rng)
		if s == 0 || s == 2 {
			t.Fatalf("sampled zero-weight outcome %d", s)
		}
	}
}

func TestAliasSingleOutcome(t *testing.T) {
	a := MustAlias([]float64{7})
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 100; i++ {
		if a.Sample(rng) != 0 {
			t.Fatal("single-outcome table sampled nonzero")
		}
	}
	if a.N() != 1 {
		t.Errorf("N()=%d", a.N())
	}
}

// Property: every sampled index is valid and has a positive weight.
func TestAliasPropertyValidSamples(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed+1))
		n := 1 + int(seed%30)
		w := make([]float64, n)
		anyPos := false
		for i := range w {
			w[i] = float64(rng.IntN(4))
			if w[i] > 0 {
				anyPos = true
			}
		}
		if !anyPos {
			w[0] = 1
		}
		a := MustAlias(w)
		for i := 0; i < 200; i++ {
			s := a.Sample(rng)
			if s < 0 || s >= n || w[s] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(4, 1)
	want := []float64{1, 0.5, 1.0 / 3, 0.25}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-15 {
			t.Errorf("w[%d]=%v want %v", i, w[i], want[i])
		}
	}
	u := ZipfWeights(3, 0)
	for _, x := range u {
		if x != 1 {
			t.Errorf("s=0 should be uniform, got %v", u)
		}
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ZipfWeights(0, 1)
}
