// Package sampling provides the discrete sampling primitives shared by
// the synthetic graph generators and the random-walk / SGNS baselines:
// Walker alias tables for O(1) weighted sampling and Zipf weight vectors
// for skewed degree distributions.
package sampling

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Alias is a Walker alias table over n outcomes; Sample runs in O(1).
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds an alias table for the given non-negative weights.
// At least one weight must be positive.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("sampling: empty weight vector")
	}
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("sampling: weight[%d]=%v invalid", i, w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("sampling: all weights zero")
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int32, n)}
	// Scale to mean 1 and split into small/large worklists.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
	}
	for _, i := range small {
		a.prob[i] = 1 // numerical leftovers
	}
	return a, nil
}

// MustAlias is NewAlias that panics on error, for weights the caller
// constructed itself.
func MustAlias(weights []float64) *Alias {
	a, err := NewAlias(weights)
	if err != nil {
		panic(err)
	}
	return a
}

// Sample draws one outcome.
func (a *Alias) Sample(rng *rand.Rand) int {
	i := rng.IntN(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// N returns the number of outcomes.
func (a *Alias) N() int { return len(a.prob) }

// ZipfWeights returns n weights w_i ∝ (i+1)^(-s); s=0 gives uniform
// weights, larger s gives heavier skew — the scale-free degree shape of
// real bipartite graphs (§2.2 cites [3]).
func ZipfWeights(n int, s float64) []float64 {
	if n <= 0 {
		panic(fmt.Sprintf("sampling: ZipfWeights n=%d", n))
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = math.Pow(float64(i+1), -s)
	}
	return w
}

// Shuffled returns a shuffled copy of the integers [0,n).
func Shuffled(n int, rng *rand.Rand) []int {
	p := rng.Perm(n)
	return p
}
