package ann

import (
	"math/rand/v2"

	"gebe/internal/dense"
	"gebe/internal/par"
)

// assignTile is the row-block height of one point-centroid GEMM: a
// 256×k slab of items against all centroids per product, small enough
// that the tile stays cache-resident at serving dimensionalities.
const assignTile = 256

// kmeans runs k-means++ seeding plus Lloyd iterations over the item
// rows and returns the centroids, the per-item cluster assignment, and
// the iteration count. Deterministic for a fixed (items, cfg):
// seeding draws from a fixed PCG stream, parallel assignment writes
// each item's slot independently, and the centroid update accumulates
// sequentially in item order.
func kmeans(items *dense.Matrix, cfg Config) (*dense.Matrix, []int32, int) {
	n, k := items.Rows, items.Cols
	kc := cfg.Clusters
	cent := seedPlusPlus(items, kc, cfg.Seed)

	assign := make([]int32, n)
	prev := make([]int32, n)
	cnorm2 := make([]float64, kc)
	iters := 0
	for ; iters < cfg.Iters; iters++ {
		for c := 0; c < kc; c++ {
			row := cent.Row(c)
			cnorm2[c] = dense.Dot(row, row)
		}
		assignAll(items, cent, cnorm2, assign, cfg.Threads)
		if iters > 0 && equalAssign(assign, prev) {
			break
		}
		copy(prev, assign)

		// Update: sequential accumulation in item order keeps the means
		// bit-reproducible across thread counts. An emptied cluster keeps
		// its previous centroid — deterministic, and k-means++ seeding
		// makes the case rare.
		sums := dense.New(kc, k)
		counts := make([]int, kc)
		for i := 0; i < n; i++ {
			c := int(assign[i])
			counts[c]++
			srow, irow := sums.Row(c), items.Row(i)
			for j, v := range irow {
				srow[j] += v
			}
		}
		for c := 0; c < kc; c++ {
			if counts[c] == 0 {
				continue
			}
			inv := 1 / float64(counts[c])
			crow, srow := cent.Row(c), sums.Row(c)
			for j := range crow {
				crow[j] = srow[j] * inv
			}
		}
	}
	return cent, assign, iters
}

// assignAll writes each item's nearest centroid (squared Euclidean,
// ties toward the smaller cluster id) into assign. The distance
// argmin reduces to argmin_c ‖c‖² − 2·x·c, with the cross terms
// computed as X_tile · Cᵀ through the dense engine's register-blocked
// kernels; the item range is chunked across the shared worker pool.
func assignAll(items, cent *dense.Matrix, cnorm2 []float64, assign []int32, threads int) {
	n, k := items.Rows, items.Cols
	kc := cent.Rows
	parts := threads
	if parts > n {
		parts = n
	}
	if parts < 1 {
		parts = 1
	}
	chunk := (n + parts - 1) / parts
	par.Parts(parts, func(p int) {
		lo := p * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			return
		}
		h := assignTile
		if hi-lo < h {
			h = hi - lo
		}
		tile := dense.New(h, kc)
		for blo := lo; blo < hi; blo += assignTile {
			bhi := blo + assignTile
			if bhi > hi {
				bhi = hi
			}
			rows := bhi - blo
			xb := &dense.Matrix{Rows: rows, Cols: k, Data: items.Data[blo*k : bhi*k]}
			tb := &dense.Matrix{Rows: rows, Cols: kc, Data: tile.Data[:rows*kc]}
			// Tuning{} keeps the product sequential: the pool chunks are
			// the only parallelism here, mirroring eval.Scorer.
			dense.MulTInto(tb, xb, cent, dense.Tuning{})
			for r := 0; r < rows; r++ {
				trow := tb.Row(r)
				best, bestD := 0, cnorm2[0]-2*trow[0]
				for c := 1; c < kc; c++ {
					if d := cnorm2[c] - 2*trow[c]; d < bestD {
						best, bestD = c, d
					}
				}
				assign[blo+r] = int32(best)
			}
		}
	})
}

func equalAssign(a, b []int32) bool {
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// seedPlusPlus picks kc initial centroids with k-means++: the first
// uniformly, the rest proportionally to squared distance from the
// nearest already-chosen centroid. All randomness comes from one PCG
// stream keyed on seed.
func seedPlusPlus(items *dense.Matrix, kc int, seed uint64) *dense.Matrix {
	n := items.Rows
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	cent := dense.New(kc, items.Cols)
	copy(cent.Row(0), items.Row(rng.IntN(n)))

	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = sqDist(items.Row(i), cent.Row(0))
	}
	for c := 1; c < kc; c++ {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var pick int
		if total <= 0 {
			// All points coincide with a centroid (duplicate-heavy data):
			// fall back to uniform choice.
			pick = rng.IntN(n)
		} else {
			r := rng.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, d := range d2 {
				acc += d
				if acc >= r {
					pick = i
					break
				}
			}
		}
		copy(cent.Row(c), items.Row(pick))
		crow := cent.Row(c)
		for i := range d2 {
			if d := sqDist(items.Row(i), crow); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return cent
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}
