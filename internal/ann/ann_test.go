package ann

import (
	"math"
	"math/rand/v2"
	"testing"

	"gebe/internal/dense"
	"gebe/internal/eval"
	"gebe/internal/obs"
)

// clusteredMatrix draws rows from a mixture of c Gaussian bumps — the
// shape IVF pruning exists for.
func clusteredMatrix(rows, k, c int, rng *rand.Rand) *dense.Matrix {
	centers := dense.Random(c, k, rng)
	m := dense.New(rows, k)
	for i := 0; i < rows; i++ {
		base := centers.Row(rng.IntN(c))
		row := m.Row(i)
		for j := range row {
			row[j] = base[j] + 0.15*rng.NormFloat64()
		}
	}
	return m
}

// TestExhaustiveProbeMatchesScorerBitwise is the correctness oracle the
// whole package hangs off: at nprobe = Clusters with float rows, Search
// must reproduce eval.Scorer + eval.TopNIndices exactly — identical ids
// AND bitwise-identical scores — on randomized embeddings, with and
// without an exclusion set.
func TestExhaustiveProbeMatchesScorerBitwise(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 1))
	users := dense.Random(40, 12, rng)
	items := clusteredMatrix(500, 12, 7, rng)
	ix, err := Build(items, Config{Clusters: 13, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sc := eval.NewScorer(users, items)
	for u := 0; u < users.Rows; u++ {
		var skip map[int]bool
		if u%3 == 0 {
			skip = map[int]bool{u % items.Rows: true, (u * 7) % items.Rows: true}
		}
		ids, scores, st := ix.Search(users.Row(u), 10, Options{Nprobe: ix.Clusters(), Skip: skip})
		if st.Probed != ix.Clusters() || st.Scored < items.Rows-len(skip) {
			t.Fatalf("user %d: full probe stats %+v", u, st)
		}
		var wantIDs []int
		var wantScores []float64
		err := sc.Score([]int{u}, nil, func(_ int, row []float64) {
			wantIDs = eval.TopNIndices(row, 10, skip)
			wantScores = make([]float64, len(wantIDs))
			for i, id := range wantIDs {
				wantScores[i] = row[id]
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != len(wantIDs) {
			t.Fatalf("user %d: %d ids vs %d", u, len(ids), len(wantIDs))
		}
		for i := range ids {
			if ids[i] != wantIDs[i] {
				t.Fatalf("user %d rank %d: id %d want %d", u, i, ids[i], wantIDs[i])
			}
			if scores[i] != wantScores[i] { // bitwise: no tolerance
				t.Fatalf("user %d rank %d: score %v want %v (diff %g)",
					u, i, scores[i], wantScores[i], scores[i]-wantScores[i])
			}
		}
	}
}

// TestBuildDeterministic: same items and seed → identical centroids,
// members, and quantized rows; a different seed must be allowed to
// differ (it nearly always does on clustered data).
func TestBuildDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	items := clusteredMatrix(300, 8, 5, rng)
	a, err := Build(items, Config{Clusters: 9, Seed: 3, Int8: true, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(items, Config{Clusters: 9, Seed: 3, Int8: true, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equal(a.centroids, b.centroids, 0) {
		t.Fatal("same seed, different centroids (thread count must not matter)")
	}
	for c := range a.members {
		if len(a.members[c]) != len(b.members[c]) {
			t.Fatalf("cluster %d: %d vs %d members", c, len(a.members[c]), len(b.members[c]))
		}
		for i := range a.members[c] {
			if a.members[c][i] != b.members[c][i] {
				t.Fatalf("cluster %d member %d differs", c, i)
			}
		}
	}
	for i := range a.q8 {
		if a.q8[i] != b.q8[i] {
			t.Fatalf("q8[%d] differs", i)
		}
	}
}

// TestMembersPartitionItems: every item appears in exactly one cluster.
func TestMembersPartitionItems(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 2))
	items := clusteredMatrix(257, 6, 4, rng)
	ix, err := Build(items, Config{Clusters: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, items.Rows)
	total := 0
	for _, ms := range ix.members {
		prev := int32(-1)
		for _, id := range ms {
			if id <= prev {
				t.Fatalf("member list not ascending: %d after %d", id, prev)
			}
			prev = id
			if seen[id] {
				t.Fatalf("item %d in two clusters", id)
			}
			seen[id] = true
			total++
		}
	}
	if total != items.Rows {
		t.Fatalf("%d members over %d items", total, items.Rows)
	}
}

// TestInt8ErrorBound pins the quantizer's contract: per-component
// reconstruction error ≤ scale/2 (+1 ULP slack), and a quantized inner
// product within (scale/2)·‖q‖₁ of the float score.
func TestInt8ErrorBound(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 4))
	items := dense.Random(120, 16, rng)
	// Exercise degenerate rows too.
	clear(items.Row(3))
	q8, scales := quantize(items)
	for i := 0; i < items.Rows; i++ {
		row := items.Row(i)
		s := scales[i]
		for j, v := range row {
			rec := s * float64(q8[i*items.Cols+j])
			if math.Abs(rec-v) > s/2*(1+1e-12) {
				t.Fatalf("row %d comp %d: |%g - %g| > scale/2 = %g", i, j, rec, v, s/2)
			}
		}
		q := make([]float64, items.Cols)
		var l1 float64
		for j := range q {
			q[j] = rng.NormFloat64()
			l1 += math.Abs(q[j])
		}
		approx := s * dotQ8(q, q8[i*items.Cols:(i+1)*items.Cols])
		exact := dense.Dot(q, row)
		if math.Abs(approx-exact) > s/2*l1*(1+1e-12) {
			t.Fatalf("row %d: |%g - %g| exceeds bound %g", i, approx, exact, s/2*l1)
		}
	}
}

// TestInt8SearchFullProbeRanksWell: int8 at full probe is not bitwise,
// but on well-separated scores it should agree with the exact top-1
// and overlap heavily at n=10.
func TestInt8SearchFullProbe(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 8))
	items := clusteredMatrix(400, 16, 6, rng)
	users := dense.Random(20, 16, rng)
	ix, err := Build(items, Config{Clusters: 10, Seed: 2, Int8: true})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < users.Rows; u++ {
		q := users.Row(u)
		exIDs, _, _ := ix.Search(q, 10, Options{Nprobe: ix.Clusters()})
		qIDs, _, _ := ix.Search(q, 10, Options{Nprobe: ix.Clusters(), Int8: true})
		overlap := 0
		in := make(map[int]bool, len(exIDs))
		for _, id := range exIDs {
			in[id] = true
		}
		for _, id := range qIDs {
			if in[id] {
				overlap++
			}
		}
		if overlap < 8 {
			t.Fatalf("user %d: int8 full probe overlaps only %d/10 with float", u, overlap)
		}
	}
}

// TestPrunedSearchStats: nprobe below Clusters must scan fewer
// candidates and report it.
func TestPrunedSearchStats(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 5))
	items := clusteredMatrix(600, 8, 8, rng)
	ix, err := Build(items, Config{Clusters: 12, Nprobe: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, _, st := ix.Search(items.Row(0), 5, Options{})
	if st.Probed != 3 {
		t.Fatalf("probed %d clusters, want default nprobe 3", st.Probed)
	}
	if st.Scored <= 0 || st.Scored >= items.Rows {
		t.Fatalf("scored %d of %d items — pruning did nothing", st.Scored, items.Rows)
	}
	if got := ix.EffectiveNprobe(0); got != 3 {
		t.Fatalf("EffectiveNprobe(0) = %d, want 3", got)
	}
	if got := ix.EffectiveNprobe(99); got != 12 {
		t.Fatalf("EffectiveNprobe(99) = %d, want clamp to 12", got)
	}
}

// TestConfigDefaults: zero config picks sqrt clusters and a positive
// nprobe; cluster count clamps to the item count.
func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults(10000)
	if cfg.Clusters != 100 {
		t.Fatalf("Clusters = %d, want 100", cfg.Clusters)
	}
	if cfg.Nprobe != 12 {
		t.Fatalf("Nprobe = %d, want 12", cfg.Nprobe)
	}
	if c := (Config{Clusters: 50}).withDefaults(20); c.Clusters != 20 {
		t.Fatalf("Clusters = %d, want clamp to 20", c.Clusters)
	}
	if _, err := Build(nil, Config{}); err == nil {
		t.Fatal("Build(nil) must error")
	}
	if _, err := Build(dense.New(0, 4), Config{}); err == nil {
		t.Fatal("Build over zero rows must error")
	}
}

// TestMetrics: enabling the registry books searches, candidates, and
// build latency.
func TestMetrics(t *testing.T) {
	r := obs.NewRegistry()
	EnableMetrics(r)
	defer EnableMetrics(nil)
	rng := rand.New(rand.NewPCG(17, 3))
	items := clusteredMatrix(200, 8, 4, rng)
	ix, err := Build(items, Config{Clusters: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, _, st := ix.Search(items.Row(1), 5, Options{Nprobe: 2})
	snap := r.Snapshot()
	if got := snap["ann_queries_total"].(float64); got != 1 {
		t.Fatalf("ann_queries_total = %v", got)
	}
	if got := snap["ann_candidates_scored_total"].(float64); got != float64(st.Scored) {
		t.Fatalf("ann_candidates_scored_total = %v, want %d", got, st.Scored)
	}
	if got := snap["ann_clusters_probed_total"].(float64); got != 2 {
		t.Fatalf("ann_clusters_probed_total = %v, want 2", got)
	}
}

// TestSearchPanics: shape and capability misuse panic like the dense
// package.
func TestSearchPanics(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	items := dense.Random(50, 8, rng)
	ix, err := Build(items, Config{Clusters: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mustPanic(t, "width mismatch", func() { ix.Search(make([]float64, 5), 3, Options{}) })
	mustPanic(t, "int8 without build", func() { ix.Search(make([]float64, 8), 3, Options{Int8: true}) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}
