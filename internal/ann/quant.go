package ann

import (
	"math"

	"gebe/internal/dense"
)

// quantize builds symmetric per-row int8 codes: row i maps through
// scale_i = maxAbs(row_i)/127 so x ≈ scale_i·q with q ∈ [−127, 127].
// Per-component reconstruction error is at most scale_i/2, so a
// dequantized inner product q·u deviates from the float score by at
// most (scale_i/2)·‖u‖₁ — the bound TestInt8ErrorBound pins.
func quantize(items *dense.Matrix) ([]int8, []float64) {
	n, k := items.Rows, items.Cols
	q8 := make([]int8, n*k)
	scales := make([]float64, n)
	for i := 0; i < n; i++ {
		row := items.Row(i)
		var mx float64
		for _, v := range row {
			if a := math.Abs(v); a > mx {
				mx = a
			}
		}
		if mx == 0 {
			continue // all-zero row: scale 0, codes 0
		}
		s := mx / 127
		scales[i] = s
		out := q8[i*k : (i+1)*k]
		for j, v := range row {
			out[j] = int8(math.RoundToEven(v / s))
		}
	}
	return q8, scales
}

// dotQ8 accumulates Σ q[j]·codes[j] in float64; the caller applies the
// row scale once outside the loop.
func dotQ8(q []float64, codes []int8) float64 {
	var s float64
	for j, c := range codes {
		s += q[j] * float64(c)
	}
	return s
}
