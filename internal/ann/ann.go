// Package ann implements cluster-pruned approximate top-N retrieval
// over the item embedding: an inverted-file (IVF) index built by
// k-means over V's rows. A query scores the user vector against the
// cluster centroids, keeps the top-nprobe clusters, exactly scores only
// their members, and merges through the same bounded top-N selection
// the exact scorer uses — so at nprobe = Clusters with float rows the
// result is bitwise identical to eval.Scorer + eval.TopNIndices, which
// is the package's correctness oracle.
//
// The index optionally stores 8-bit symmetrically quantized item rows
// with per-row scales: four times the cache density of float64 at a
// bounded score error (see Quantization in the README), selectable per
// search.
//
// Build reuses the repository's engines: point-centroid distance tiles
// go through internal/dense GEMM kernels and assignment parallelism
// through the shared internal/par worker pool. Seeding is k-means++
// from a fixed PCG stream, so builds are deterministic for a fixed
// (items, Config).
package ann

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"time"

	"gebe/internal/dense"
	"gebe/internal/eval"
	"gebe/internal/obs"
)

// Config parameterizes Build. The zero value picks ~sqrt(items)
// clusters, 20 Lloyd iterations, nprobe = Clusters/8, float rows only,
// GOMAXPROCS assignment workers, and seed 0.
type Config struct {
	// Clusters is the number of k-means centroids (the IVF's K);
	// 0 selects round(sqrt(items)), clamped to [1, items].
	Clusters int
	// Iters caps Lloyd iterations; assignment convergence stops the loop
	// earlier. 0 selects 20.
	Iters int
	// Nprobe is the default cluster count a search scans when the caller
	// does not choose one; 0 selects max(1, Clusters/8). Clamped to
	// [1, Clusters].
	Nprobe int
	// Int8 additionally stores symmetric 8-bit quantized item rows with
	// per-row scales, selectable per search via Options.Int8.
	Int8 bool
	// Threads caps parallel assignment workers; <1 selects GOMAXPROCS.
	Threads int
	// Seed drives k-means++ seeding.
	Seed uint64
}

func (c Config) withDefaults(items int) Config {
	if c.Clusters <= 0 {
		c.Clusters = int(math.Round(math.Sqrt(float64(items))))
	}
	if c.Clusters < 1 {
		c.Clusters = 1
	}
	if c.Clusters > items {
		c.Clusters = items
	}
	if c.Iters <= 0 {
		c.Iters = 20
	}
	if c.Nprobe <= 0 {
		c.Nprobe = c.Clusters / 8
	}
	if c.Nprobe < 1 {
		c.Nprobe = 1
	}
	if c.Nprobe > c.Clusters {
		c.Nprobe = c.Clusters
	}
	if c.Threads < 1 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	return c
}

// Index is an immutable inverted-file index over one item matrix. It
// keeps a reference to the matrix it was built over (rows are scored in
// place, never copied); the serving layer's versioned model snapshots
// give both the same lifetime. Search is safe for concurrent use.
type Index struct {
	cfg   Config
	items *dense.Matrix

	centroids *dense.Matrix // Clusters × k
	members   [][]int32     // per-cluster item ids, ascending
	iters     int           // Lloyd iterations actually run

	// Symmetric per-row int8 quantization (nil unless Config.Int8):
	// items[i][j] ≈ scales[i] * q8[i*k+j].
	q8     []int8
	scales []float64

	buildSeconds float64
}

// Build clusters the item rows and assembles the inverted file.
func Build(items *dense.Matrix, cfg Config) (*Index, error) {
	if items == nil || items.Rows == 0 || items.Cols == 0 {
		return nil, errors.New("ann: empty item matrix")
	}
	t0 := time.Now()
	cfg = cfg.withDefaults(items.Rows)
	ix := &Index{cfg: cfg, items: items}

	cent, assign, iters := kmeans(items, cfg)
	ix.centroids = cent
	ix.iters = iters

	counts := make([]int, cfg.Clusters)
	for _, a := range assign {
		counts[a]++
	}
	flat := make([]int32, items.Rows)
	ix.members = make([][]int32, cfg.Clusters)
	off := 0
	for c, n := range counts {
		ix.members[c] = flat[off : off : off+n]
		off += n
	}
	// Fill in item order: member lists come out ascending, so candidate
	// enumeration within a cluster is deterministic.
	for i, a := range assign {
		ix.members[a] = append(ix.members[a], int32(i))
	}

	if cfg.Int8 {
		ix.q8, ix.scales = quantize(items)
	}

	ix.buildSeconds = time.Since(t0).Seconds()
	if m := annMetrics.Load(); m != nil {
		m.buildSeconds.Observe(ix.buildSeconds)
	}
	return ix, nil
}

// Clusters returns the number of centroids (the IVF's K).
func (ix *Index) Clusters() int { return ix.cfg.Clusters }

// Items returns the number of indexed item rows.
func (ix *Index) Items() int { return ix.items.Rows }

// DefaultNprobe returns the probe count a search uses when the caller
// passes none.
func (ix *Index) DefaultNprobe() int { return ix.cfg.Nprobe }

// Int8 reports whether quantized rows were built.
func (ix *Index) Int8() bool { return ix.q8 != nil }

// Iters reports the Lloyd iterations the build actually ran (early
// convergence stops before Config.Iters).
func (ix *Index) Iters() int { return ix.iters }

// BuildSeconds reports the wall-clock the build took.
func (ix *Index) BuildSeconds() float64 { return ix.buildSeconds }

// EffectiveNprobe clamps a requested probe count to [1, Clusters],
// substituting the index default for 0 — exported so callers caching by
// nprobe can canonicalize the knob first.
func (ix *Index) EffectiveNprobe(nprobe int) int {
	if nprobe <= 0 {
		nprobe = ix.cfg.Nprobe
	}
	if nprobe > ix.cfg.Clusters {
		nprobe = ix.cfg.Clusters
	}
	return nprobe
}

// Options tunes one search.
type Options struct {
	// Nprobe overrides the index default when > 0 (clamped to
	// [1, Clusters]). Nprobe = Clusters scans everything: with float
	// rows that reproduces the exact scorer bitwise.
	Nprobe int
	// Skip excludes item ids — the serving layer's train-edge mask.
	Skip map[int]bool
	// Int8 scores the quantized rows instead of the float rows; requires
	// an index built with Config.Int8 (panics otherwise, mirroring the
	// dense package's shape discipline).
	Int8 bool
}

// Stats reports how much work one search did.
type Stats struct {
	// Probed is the number of clusters scanned.
	Probed int
	// Scored is the number of candidate items exactly scored (excluded
	// ids are skipped before scoring and not counted).
	Scored int
}

// Search returns the ids and inner-product scores of the top n items
// for query q (length k), in descending score order with ties broken
// toward smaller ids. q is the user vector; scores are q·V[id].
func (ix *Index) Search(q []float64, n int, opt Options) (ids []int, scores []float64, st Stats) {
	if len(q) != ix.items.Cols {
		panic(fmt.Sprintf("ann: query has width %d, index has %d", len(q), ix.items.Cols))
	}
	if opt.Int8 && ix.q8 == nil {
		panic("ann: int8 search on an index built without Config.Int8")
	}
	nprobe := ix.EffectiveNprobe(opt.Nprobe)

	// Rank centroids by inner product with the query — the pruning
	// heuristic: for unit-ish cluster spreads the clusters whose
	// centroids score highest contain the highest-scoring members.
	var ct eval.TopNHeap
	ct.Reset(nprobe)
	for c := 0; c < ix.cfg.Clusters; c++ {
		ct.Push(c, dense.Dot(q, ix.centroids.Row(c)))
	}
	probe := ct.IDs()

	var t eval.TopNHeap
	t.Reset(n)
	k := ix.items.Cols
	for _, c := range probe {
		for _, id32 := range ix.members[c] {
			id := int(id32)
			if opt.Skip != nil && opt.Skip[id] {
				continue
			}
			var s float64
			if opt.Int8 {
				s = ix.scales[id] * dotQ8(q, ix.q8[id*k:(id+1)*k])
			} else {
				s = dense.Dot(q, ix.items.Row(id))
			}
			t.Push(id, s)
			st.Scored++
		}
	}
	st.Probed = len(probe)
	if m := annMetrics.Load(); m != nil {
		m.queries.Inc()
		m.candidates.Add(float64(st.Scored))
		m.probed.Add(float64(st.Probed))
		m.probeFraction.Observe(float64(st.Scored) / float64(ix.items.Rows))
	}
	ids, scores = t.Ranked()
	return ids, scores, st
}

// --- metrics -------------------------------------------------------

type metricsSet struct {
	queries       *obs.Counter
	candidates    *obs.Counter
	probed        *obs.Counter
	probeFraction *obs.Histogram
	buildSeconds  *obs.Histogram
}

var annMetrics atomic.Pointer[metricsSet]

// fractionBuckets spans candidate fractions in (0,1]: a probe that
// scored 3% of the items lands in the 0.05 bucket, full probe in 1.
var fractionBuckets = []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1}

// EnableMetrics records retrieval and build instrumentation into r;
// nil disables collection. One atomic load per search keeps the
// disabled path branch-only, like the engines' kernel metrics.
func EnableMetrics(r *obs.Registry) {
	if r == nil {
		annMetrics.Store(nil)
		return
	}
	annMetrics.Store(&metricsSet{
		queries:       r.Counter("ann_queries_total", "approximate retrieval searches served"),
		candidates:    r.Counter("ann_candidates_scored_total", "candidate items exactly scored by approximate searches"),
		probed:        r.Counter("ann_clusters_probed_total", "clusters scanned by approximate searches"),
		probeFraction: r.Histogram("ann_probe_fraction", "fraction of the item side scored per search", fractionBuckets),
		buildSeconds:  r.Histogram("ann_build_seconds", "wall-clock of one IVF index build (k-means + inverted file + quantization)", nil),
	})
}
