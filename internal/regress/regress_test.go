package regress

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gebe/internal/experiments"
	"gebe/internal/obs"
	"gebe/internal/serve"
)

func snapshot(p50, p99, sum float64, count uint64) serve.LatencySnapshot {
	return serve.LatencySnapshot{
		Build: obs.BuildInfo(),
		Endpoints: map[string]serve.EndpointLatency{
			"recommend": {
				Count:      count,
				SumSeconds: sum,
				Quantiles:  map[string]float64{"p50": p50, "p99": p99},
			},
		},
	}
}

func TestInflatedSnapshotFailsGate(t *testing.T) {
	base := snapshot(0.010, 0.040, 0.50, 40)
	// Synthetic regression: every quantile and the mean inflated 10×.
	bad := snapshot(0.100, 0.400, 5.0, 40)

	r := CompareSnapshots(base, bad, Options{})
	if r.OK() {
		t.Fatal("10x-inflated snapshot passed the gate")
	}
	byMetric := map[string]Finding{}
	for _, f := range r.Findings {
		byMetric[f.Metric] = f
	}
	for _, m := range []string{"recommend/p50", "recommend/p99", "recommend/mean"} {
		f, ok := byMetric[m]
		if !ok {
			t.Errorf("no finding for %s (got %v)", m, r.Findings)
			continue
		}
		if f.Increase < 8.9 || f.Increase > 9.1 {
			t.Errorf("%s increase = %v, want ~9.0", m, f.Increase)
		}
	}
	if !strings.Contains(r.Summary(), "REGRESSED recommend/p99") {
		t.Errorf("summary missing finding line:\n%s", r.Summary())
	}
}

func TestIdenticalSnapshotsPass(t *testing.T) {
	base := snapshot(0.010, 0.040, 0.50, 40)
	r := CompareSnapshots(base, base, Options{})
	if !r.OK() {
		t.Fatalf("identical snapshots regressed: %s", r.Summary())
	}
	if r.Checked != 3 { // p50, p99, mean
		t.Errorf("checked = %d, want 3", r.Checked)
	}
}

func TestDoubleThreshold(t *testing.T) {
	opt := Options{Ratio: 0.5, MinDelta: 0.025}
	cases := []struct {
		name     string
		old, new float64
		regress  bool
	}{
		{"big ratio, tiny delta", 0.001, 0.010, false}, // 10x but +9ms < floor
		{"big delta, small ratio", 1.00, 1.10, false},  // +100ms but only +10%
		{"both exceeded", 0.050, 0.200, true},
		{"zero baseline, real cost", 0, 0.100, true},
		{"zero baseline, tiny cost", 0, 0.010, false},
		{"improvement", 0.200, 0.050, false},
	}
	for _, tc := range cases {
		var r Report
		r.check(opt, "m", tc.old, tc.new)
		if got := !r.OK(); got != tc.regress {
			t.Errorf("%s (%v -> %v): regressed=%v, want %v", tc.name, tc.old, tc.new, got, tc.regress)
		}
	}
}

func TestSkipsLowCountAndMissingEndpoints(t *testing.T) {
	oldS := snapshot(0.010, 0.040, 0.50, 40)
	newS := snapshot(0.100, 0.400, 5.0, 40)
	// similar only exists on the new side; recommend drops below MinCount.
	newS.Endpoints["similar"] = serve.EndpointLatency{Count: 5, Quantiles: map[string]float64{"p50": 9}}
	e := newS.Endpoints["recommend"]
	e.Count = 3
	newS.Endpoints["recommend"] = e

	r := CompareSnapshots(oldS, newS, Options{MinCount: 10})
	if !r.OK() || r.Checked != 0 {
		t.Errorf("report = %+v, want nothing checked", r)
	}
}

func span(name string, d time.Duration, children ...*obs.Span) *obs.Span {
	return &obs.Span{Name: name, Duration: d, Children: children}
}

func manifest(factorSec, sweepSec float64) experiments.Manifest {
	sweeps := []*obs.Span{}
	for i := 0; i < 3; i++ {
		sweeps = append(sweeps, span("sweep", time.Duration(sweepSec*float64(time.Second))))
	}
	return experiments.Manifest{
		Experiment:     "effectiveness",
		ElapsedSeconds: factorSec + 3*sweepSec + 1,
		Trace: span("run", 0,
			span("factorize", time.Duration(factorSec*float64(time.Second)), sweeps...),
			span("eval", time.Second),
		),
	}
}

func TestManifestPhaseRegression(t *testing.T) {
	oldM := manifest(2.0, 0.5)
	newM := manifest(2.0, 2.0) // sweeps 4x slower

	r := CompareManifests(oldM, newM, Options{})
	if r.Mode != "manifest" || r.OK() {
		t.Fatalf("report = %+v, want manifest-mode regression", r)
	}
	var metrics []string
	for _, f := range r.Findings {
		metrics = append(metrics, f.Metric)
	}
	joined := strings.Join(metrics, ",")
	for _, want := range []string{"elapsed", "factorize/sweep"} {
		if !strings.Contains(joined, want) {
			t.Errorf("findings %v missing %s", metrics, want)
		}
	}
	// The factorize top-level span itself did not change.
	if strings.Contains(joined, "factorize,") || strings.HasSuffix(joined, "factorize") {
		// factorize aggregates only its own Duration (unchanged: 2s).
		t.Errorf("unchanged phase flagged: %v", metrics)
	}
}

func writeJSONFile(t *testing.T, dir, name string, v any) string {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareFiles(t *testing.T) {
	dir := t.TempDir()
	oldSnap := writeJSONFile(t, dir, "old.json", snapshot(0.010, 0.040, 0.50, 40))
	newSnap := writeJSONFile(t, dir, "new.json", snapshot(0.100, 0.400, 5.0, 40))
	oldMan := writeJSONFile(t, dir, "old_run.json", manifest(2.0, 0.5))
	newMan := writeJSONFile(t, dir, "new_run.json", manifest(2.0, 2.0))

	r, err := CompareFiles(oldSnap, newSnap, Options{})
	if err != nil || r.Mode != "latency" || r.OK() {
		t.Errorf("snapshot files: report=%+v err=%v, want latency regression", r, err)
	}
	r, err = CompareFiles(oldMan, newMan, Options{})
	if err != nil || r.Mode != "manifest" || r.OK() {
		t.Errorf("manifest files: report=%+v err=%v, want manifest regression", r, err)
	}
	if _, err := CompareFiles(oldSnap, newMan, Options{}); err == nil {
		t.Error("mixed record kinds compared without error")
	}
	if _, err := CompareFiles(filepath.Join(dir, "absent.json"), newSnap, Options{}); err == nil {
		t.Error("missing file compared without error")
	}
	junk := writeJSONFile(t, dir, "junk.json", map[string]int{"x": 1})
	if _, err := CompareFiles(junk, junk, Options{}); err == nil {
		t.Error("unrecognized record compared without error")
	}
}
