// Package regress is the performance regression gate: it compares two
// performance records — serve latency snapshots (SERVE_LATENCY.json),
// experiment run manifests (RUN_<exp>.json), or gebe-bench microbench
// reports (BENCH_SPMM/DENSE/ANN.json) — and reports increases that
// exceed both a relative threshold and an absolute floor. CI runs it
// through cmd/gebe-regress against the committed baseline, turning
// "the serving layer got slower" from an anecdote into a failed check.
//
// The double threshold matters: sub-millisecond quantiles jitter by
// large ratios on shared runners, so a pure ratio gate would cry wolf,
// and a pure absolute gate would let a 10× regression on a fast
// endpoint slide. A metric regresses only when it grew by more than
// Ratio relatively AND MinDelta absolutely.
package regress

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"gebe/internal/experiments"
	"gebe/internal/obs"
	"gebe/internal/serve"
)

// Options tunes the gate.
type Options struct {
	// Ratio is the allowed fractional increase before a metric counts
	// as regressed (0.5 = +50%). Zero selects the default 0.5.
	Ratio float64
	// MinDelta is the absolute increase floor in seconds; increases
	// smaller than this never regress regardless of ratio. Zero selects
	// the default 25ms.
	MinDelta float64
	// MinCount skips endpoints with fewer observations on either side
	// (their quantiles are noise). Zero selects the default 1.
	MinCount uint64
	// RecallFloor is the minimum recall@10 at the default probe the ann
	// gate accepts regardless of the baseline. Zero selects 0.95.
	RecallFloor float64
	// SIMDFloor is the minimum best-in-class SIMD-over-Go speedup a
	// fresh kernel grid must show for the k16 and panel8 width classes
	// (bench mode only). Zero disables the floor — unlike the fields
	// above it has no non-zero default, because grids produced without
	// vector kernels carry no speedups to gate.
	SIMDFloor float64
}

func (o Options) withDefaults() Options {
	if o.Ratio == 0 {
		o.Ratio = 0.5
	}
	if o.MinDelta == 0 {
		o.MinDelta = 0.025
	}
	if o.MinCount == 0 {
		o.MinCount = 1
	}
	if o.RecallFloor == 0 {
		o.RecallFloor = 0.95
	}
	return o
}

// Finding is one regressed metric.
type Finding struct {
	Metric   string  `json:"metric"`
	Old      float64 `json:"old_seconds"`
	New      float64 `json:"new_seconds"`
	Increase float64 `json:"increase"` // fractional, e.g. 1.5 = +150%
	// Note marks unitless findings (recall, latency ratios): when set,
	// Old/New are plain numbers, not seconds, and Note says what broke.
	Note string `json:"note,omitempty"`
}

func (f Finding) String() string {
	if f.Note != "" {
		return fmt.Sprintf("%s: %.4g -> %.4g (%s)", f.Metric, f.Old, f.New, f.Note)
	}
	return fmt.Sprintf("%s: %s -> %s (+%.0f%%)", f.Metric,
		time.Duration(f.Old*float64(time.Second)).Round(time.Microsecond),
		time.Duration(f.New*float64(time.Second)).Round(time.Microsecond),
		f.Increase*100)
}

// Report is the outcome of one comparison.
type Report struct {
	Mode     string    `json:"mode"` // "latency" or "manifest"
	Checked  int       `json:"checked"`
	Findings []Finding `json:"findings"`
	// Builds carries both sides' provenance when the records have it,
	// so a failed gate names the commits it compared.
	OldBuild, NewBuild *obs.Build `json:"-"`
}

// OK reports whether the gate passes (no regressions).
func (r Report) OK() bool { return len(r.Findings) == 0 }

// Summary renders the report for humans, one line per finding.
func (r Report) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s gate: %d metrics checked, %d regressed", r.Mode, r.Checked, len(r.Findings))
	if r.OldBuild != nil && r.NewBuild != nil && r.OldBuild.Revision != r.NewBuild.Revision {
		fmt.Fprintf(&sb, " (%.12s -> %.12s)", r.OldBuild.Revision, r.NewBuild.Revision)
	}
	for _, f := range r.Findings {
		sb.WriteString("\n  REGRESSED ")
		sb.WriteString(f.String())
	}
	return sb.String()
}

// check applies the double threshold and records a finding on failure.
func (r *Report) check(opt Options, metric string, oldV, newV float64) {
	r.Checked++
	delta := newV - oldV
	if delta <= opt.MinDelta {
		return
	}
	// A baseline of zero with a real new cost is always unexplained.
	if oldV > 0 && newV <= oldV*(1+opt.Ratio) {
		return
	}
	incr := 0.0
	if oldV > 0 {
		incr = delta / oldV
	}
	r.Findings = append(r.Findings, Finding{Metric: metric, Old: oldV, New: newV, Increase: incr})
}

// CompareSnapshots gates a new serve latency snapshot against a
// baseline: per-endpoint quantiles plus the mean, endpoints present in
// both and sampled at least MinCount times on each side.
func CompareSnapshots(oldS, newS serve.LatencySnapshot, opt Options) Report {
	opt = opt.withDefaults()
	r := Report{Mode: "latency", OldBuild: &oldS.Build, NewBuild: &newS.Build}
	for _, ep := range serve.SortedEndpoints(newS) {
		oldE, ok := oldS.Endpoints[ep]
		newE := newS.Endpoints[ep]
		if !ok || oldE.Count < opt.MinCount || newE.Count < opt.MinCount {
			continue
		}
		qnames := make([]string, 0, len(newE.Quantiles))
		for q := range newE.Quantiles {
			if _, ok := oldE.Quantiles[q]; ok {
				qnames = append(qnames, q)
			}
		}
		sort.Strings(qnames)
		for _, q := range qnames {
			r.check(opt, ep+"/"+q, oldE.Quantiles[q], newE.Quantiles[q])
		}
		r.check(opt, ep+"/mean", oldE.SumSeconds/float64(oldE.Count), newE.SumSeconds/float64(newE.Count))
	}
	return r
}

// CompareManifests gates a run manifest against a baseline: total
// elapsed time plus per-phase wall-clock aggregated over the trace
// tree's first two levels (deeper spans are per-sweep noise).
func CompareManifests(oldM, newM experiments.Manifest, opt Options) Report {
	opt = opt.withDefaults()
	r := Report{Mode: "manifest"}
	r.check(opt, "elapsed", oldM.ElapsedSeconds, newM.ElapsedSeconds)
	oldP, newP := phaseSeconds(oldM.Trace), phaseSeconds(newM.Trace)
	names := make([]string, 0, len(newP))
	for name := range newP {
		if _, ok := oldP[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		r.check(opt, name, oldP[name], newP[name])
	}
	return r
}

// phaseSeconds aggregates span wall-clock by name path, two levels
// deep. Repeated phases (each KSI sweep) sum into one number, so the
// comparison is per phase kind, not per instance.
func phaseSeconds(root *obs.Span) map[string]float64 {
	out := make(map[string]float64)
	if root == nil {
		return out
	}
	for _, c := range root.Children {
		out[c.Name] += c.Duration.Seconds()
		for _, cc := range c.Children {
			out[c.Name+"/"+cc.Name] += cc.Duration.Seconds()
		}
	}
	return out
}

// CompareFiles loads two records and dispatches on their shape: a
// top-level array means a gebe-bench report, an "endpoints" key a
// latency snapshot, an "experiment" key a run manifest. Old and new
// must be the same kind.
func CompareFiles(oldPath, newPath string, opt Options) (Report, error) {
	oldKind, oldRaw, err := loadRecord(oldPath)
	if err != nil {
		return Report{}, err
	}
	newKind, newRaw, err := loadRecord(newPath)
	if err != nil {
		return Report{}, err
	}
	if oldKind != newKind {
		return Report{}, fmt.Errorf("regress: cannot compare %s %s against %s %s", oldKind, oldPath, newKind, newPath)
	}
	switch oldKind {
	case "bench":
		oldEs, err := parseBenchEntries(oldPath, oldRaw)
		if err != nil {
			return Report{}, err
		}
		newEs, err := parseBenchEntries(newPath, newRaw)
		if err != nil {
			return Report{}, err
		}
		return compareBenchReports(oldEs, newEs, opt)
	case "latency":
		var oldS, newS serve.LatencySnapshot
		if err := json.Unmarshal(oldRaw, &oldS); err != nil {
			return Report{}, fmt.Errorf("regress: %s: %w", oldPath, err)
		}
		if err := json.Unmarshal(newRaw, &newS); err != nil {
			return Report{}, fmt.Errorf("regress: %s: %w", newPath, err)
		}
		return CompareSnapshots(oldS, newS, opt), nil
	default:
		var oldM, newM experiments.Manifest
		if err := json.Unmarshal(oldRaw, &oldM); err != nil {
			return Report{}, fmt.Errorf("regress: %s: %w", oldPath, err)
		}
		if err := json.Unmarshal(newRaw, &newM); err != nil {
			return Report{}, fmt.Errorf("regress: %s: %w", newPath, err)
		}
		return CompareManifests(oldM, newM, opt), nil
	}
}

// loadRecord reads a file and sniffs which record kind it holds. A
// top-level array is a gebe-bench -json report (BENCH_*.json); objects
// split on "endpoints" (latency snapshot) vs "experiment" (manifest).
func loadRecord(path string) (kind string, raw []byte, err error) {
	raw, err = os.ReadFile(path)
	if err != nil {
		return "", nil, fmt.Errorf("regress: %w", err)
	}
	var entries []benchEntry
	if err := json.Unmarshal(raw, &entries); err == nil {
		if len(entries) == 0 || entries[0].Experiment == "" {
			return "", nil, fmt.Errorf("regress: %s is not a gebe-bench report", path)
		}
		return "bench", raw, nil
	}
	var probe struct {
		Endpoints  map[string]json.RawMessage `json:"endpoints"`
		Experiment string                     `json:"experiment"`
		CreatedAt  json.RawMessage            `json:"created_at"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return "", nil, fmt.Errorf("regress: %s: %w", path, err)
	}
	switch {
	case probe.Endpoints != nil:
		return "latency", raw, nil
	case probe.Experiment != "" && probe.CreatedAt != nil:
		// Both manifests and single BENCH_<exp>.json entries carry
		// "experiment"; only manifests stamp "created_at".
		return "manifest", raw, nil
	case probe.Experiment != "":
		return "bench", raw, nil
	}
	return "", nil, fmt.Errorf("regress: %s is neither a latency snapshot, a run manifest, nor a bench report", path)
}
