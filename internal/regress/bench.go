package regress

import (
	"encoding/json"
	"fmt"
)

// This file gates the committed microbench reports: BENCH_SPMM.json and
// BENCH_DENSE.json (kernel timing grids, mode "bench") and
// BENCH_ANN.json (approximate-retrieval quality and latency, mode
// "ann"). Kernel timings are machine-normalized before the double
// threshold: the legacy strategy runs the same unoptimized code on both
// sides, so the ratio of legacy totals estimates how much faster or
// slower this machine is than the one that produced the baseline, and
// the baseline's tuned timings are rescaled by it. Without that, a CI
// runner slower than the committing laptop would fail every cell.

// benchEntry is one experiment in a gebe-bench -json report.
type benchEntry struct {
	Experiment string          `json:"experiment"`
	Rows       json.RawMessage `json:"rows"`
}

// benchCell carries the identity and timing fields shared by the SPMM
// and DENSE grids (unknown fields in either are ignored).
type benchCell struct {
	Shape         string  `json:"shape"`
	Op            string  `json:"op"`
	Rows          int     `json:"rows"`
	Cols          int     `json:"cols"`
	NNZ           int     `json:"nnz"`
	N             int     `json:"n"`
	K             int     `json:"k"`
	Threads       int     `json:"threads"`
	LegacySeconds float64 `json:"legacy_seconds"`
	TunedSeconds  float64 `json:"tuned_seconds"`
	// SIMDSpeedup is go_seconds/simd_seconds for the cell, zero when the
	// producing machine had no vector kernels.
	SIMDSpeedup float64 `json:"simd_speedup"`
}

// key identifies a cell across runs of the same grid.
func (c benchCell) key() string {
	return fmt.Sprintf("%s/%s/r%d/c%d/nnz%d/n%d/k%d/t%d",
		c.Shape, c.Op, c.Rows, c.Cols, c.NNZ, c.N, c.K, c.Threads)
}

type benchRows struct {
	Cells []benchCell `json:"cells"`
}

// annSummary is the slice of BENCH_ANN.json the gate reads.
type annSummary struct {
	Summary map[string]float64 `json:"summary"`
}

// CompareBenchCells gates a fresh kernel grid against a baseline:
// matched cells' tuned timings, with the baseline rescaled by the
// legacy-total ratio so the comparison survives a machine change.
func CompareBenchCells(experiment string, oldC, newC []benchCell, opt Options) Report {
	opt = opt.withDefaults()
	r := Report{Mode: "bench"}
	oldBy := make(map[string]benchCell, len(oldC))
	for _, c := range oldC {
		oldBy[c.key()] = c
	}
	var oldLegacy, newLegacy float64
	matched := make([]benchCell, 0, len(newC))
	for _, c := range newC {
		if o, ok := oldBy[c.key()]; ok && o.LegacySeconds > 0 {
			matched = append(matched, c)
			oldLegacy += o.LegacySeconds
			newLegacy += c.LegacySeconds
		}
	}
	if oldLegacy <= 0 {
		return r // no comparable cells: nothing to gate
	}
	scale := newLegacy / oldLegacy
	for _, c := range matched {
		o := oldBy[c.key()]
		r.check(opt, experiment+"/"+c.key(), scale*o.TunedSeconds, c.TunedSeconds)
	}
	r.checkSIMDFloor(opt, experiment, newC)
	return r
}

// checkSIMDFloor gates the vector kernels' measured value: within each
// headline width class (k=16 and the panel widths k≥24, k%8=0), the
// best SIMD-over-Go speedup in the fresh grid must clear SIMDFloor.
// The best — not the min — because small-k cells at high thread counts
// are memory-bound and the flavors converge; the class is regressed
// only when no cell in it benefits anymore. Cells without SIMD data
// (purego or pre-SIMD baselines) leave a class empty, and empty classes
// are skipped, so the gate self-disarms on machines with no vector
// kernels. The floor needs no machine normalization: both sides of the
// ratio ran on the same machine in the same process.
func (r *Report) checkSIMDFloor(opt Options, experiment string, cells []benchCell) {
	if opt.SIMDFloor <= 0 {
		return
	}
	best := map[string]float64{}
	for _, c := range cells {
		if c.SIMDSpeedup <= 0 {
			continue
		}
		var class string
		switch {
		case c.K == 16:
			class = "k16"
		case c.K >= 24 && c.K%8 == 0:
			class = "panel8"
		default:
			continue
		}
		if c.SIMDSpeedup > best[class] {
			best[class] = c.SIMDSpeedup
		}
	}
	for _, class := range []string{"k16", "panel8"} {
		b, ok := best[class]
		if !ok {
			continue
		}
		r.Checked++
		if b < opt.SIMDFloor {
			r.Findings = append(r.Findings, Finding{
				Metric: experiment + "/simd_speedup_" + class + "_best",
				Old:    opt.SIMDFloor, New: b,
				Note: fmt.Sprintf("SIMD speedup below the %.2fx floor", opt.SIMDFloor),
			})
		}
	}
}

// CompareANN gates a fresh retrieval report against a baseline. Three
// contracts: the full float probe stays bitwise-identical to the exact
// scorer, recall at the default probe stays above the floor and within
// 0.02 of the baseline, and the unitless latency/candidate ratios do
// not grow past the relative threshold (with small absolute slack so
// runner jitter cannot fail a sub-percent change).
func CompareANN(oldS, newS map[string]float64, opt Options) Report {
	opt = opt.withDefaults()
	r := Report{Mode: "ann"}

	r.Checked++
	if newS["bitwise_fullprobe_match"] != 1 {
		r.Findings = append(r.Findings, Finding{
			Metric: "bitwise_fullprobe_match", Old: oldS["bitwise_fullprobe_match"],
			New: newS["bitwise_fullprobe_match"], Note: "full probe must reproduce the exact scorer",
		})
	}

	r.Checked++
	recall := newS["recall_at_default_nprobe"]
	if recall < opt.RecallFloor {
		r.Findings = append(r.Findings, Finding{
			Metric: "recall_at_default_nprobe", Old: opt.RecallFloor, New: recall,
			Note: fmt.Sprintf("below the %.2f floor", opt.RecallFloor),
		})
	} else if old, ok := oldS["recall_at_default_nprobe"]; ok && recall < old-0.02 {
		r.Findings = append(r.Findings, Finding{
			Metric: "recall_at_default_nprobe", Old: old, New: recall,
			Note: "recall dropped more than 0.02 from baseline",
		})
	}

	// Unitless ratios: the usual double threshold, with absolute slack
	// replacing the seconds-denominated MinDelta.
	r.checkRatio(opt, "latency_ratio_at_default", oldS, newS, 0.05)
	r.checkRatio(opt, "candidate_fraction_at_default", oldS, newS, 0.02)
	return r
}

// checkRatio applies the double threshold to a unitless summary metric
// present on both sides.
func (r *Report) checkRatio(opt Options, key string, oldS, newS map[string]float64, slack float64) {
	oldV, ok := oldS[key]
	if !ok {
		return
	}
	newV := newS[key]
	r.Checked++
	if newV-oldV <= slack {
		return
	}
	if oldV > 0 && newV <= oldV*(1+opt.Ratio) {
		return
	}
	r.Findings = append(r.Findings, Finding{
		Metric: key, Old: oldV, New: newV,
		Note: fmt.Sprintf("grew past +%.0f%%", opt.Ratio*100),
	})
}

// parseBenchEntries accepts both -json report shapes: a single
// {experiment, rows} object (BENCH_<exp>.json) or a list of them.
func parseBenchEntries(path string, raw []byte) ([]benchEntry, error) {
	var entries []benchEntry
	if err := json.Unmarshal(raw, &entries); err == nil {
		return entries, nil
	}
	var one benchEntry
	if err := json.Unmarshal(raw, &one); err != nil {
		return nil, fmt.Errorf("regress: %s: %w", path, err)
	}
	return []benchEntry{one}, nil
}

// compareBenchReports dispatches matched experiments from two -json
// report arrays and merges their findings.
func compareBenchReports(oldEs, newEs []benchEntry, opt Options) (Report, error) {
	oldBy := make(map[string]json.RawMessage, len(oldEs))
	for _, e := range oldEs {
		oldBy[e.Experiment] = e.Rows
	}
	var merged Report
	for _, e := range newEs {
		oldRows, ok := oldBy[e.Experiment]
		if !ok {
			continue
		}
		var sub Report
		switch e.Experiment {
		case "ANN":
			var oldS, newS annSummary
			if err := json.Unmarshal(oldRows, &oldS); err != nil {
				return Report{}, fmt.Errorf("regress: baseline %s rows: %w", e.Experiment, err)
			}
			if err := json.Unmarshal(e.Rows, &newS); err != nil {
				return Report{}, fmt.Errorf("regress: new %s rows: %w", e.Experiment, err)
			}
			sub = CompareANN(oldS.Summary, newS.Summary, opt)
		default:
			var oldR, newR benchRows
			if err := json.Unmarshal(oldRows, &oldR); err != nil {
				return Report{}, fmt.Errorf("regress: baseline %s rows: %w", e.Experiment, err)
			}
			if err := json.Unmarshal(e.Rows, &newR); err != nil {
				return Report{}, fmt.Errorf("regress: new %s rows: %w", e.Experiment, err)
			}
			sub = CompareBenchCells(e.Experiment, oldR.Cells, newR.Cells, opt)
		}
		merged.Mode = sub.Mode
		merged.Checked += sub.Checked
		merged.Findings = append(merged.Findings, sub.Findings...)
	}
	if merged.Mode == "" {
		return Report{}, fmt.Errorf("regress: reports share no experiment")
	}
	return merged, nil
}
