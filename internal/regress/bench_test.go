package regress

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func benchGrid(legacyScale, tunedScale float64) []benchCell {
	cells := []benchCell{
		{Op: "mul", N: 2000, K: 8, LegacySeconds: 0.010, TunedSeconds: 0.004},
		{Op: "tmul", N: 2000, K: 32, LegacySeconds: 0.040, TunedSeconds: 0.012},
		{Op: "qr", N: 20000, K: 128, LegacySeconds: 0.900, TunedSeconds: 0.300},
	}
	for i := range cells {
		cells[i].LegacySeconds *= legacyScale
		cells[i].TunedSeconds *= tunedScale
	}
	return cells
}

// TestBenchGateMachineNormalized: a uniformly slower machine inflates
// legacy and tuned timings alike — the legacy-ratio rescale must keep
// the gate green even at 3x, far past the relative threshold.
func TestBenchGateMachineNormalized(t *testing.T) {
	old := benchGrid(1, 1)
	slow := benchGrid(3, 3)
	r := CompareBenchCells("DENSE", old, slow, Options{Ratio: 0.5, MinDelta: 0.002})
	if !r.OK() {
		t.Fatalf("uniformly 3x-slower machine failed the gate: %s", r.Summary())
	}
	if r.Checked != 3 {
		t.Fatalf("checked %d cells, want 3", r.Checked)
	}
}

// TestBenchGateCatchesRealRegression: tuned timings regress while
// legacy stays put — exactly the shape an optimization rollback has —
// and the gate must fail on the big cell.
func TestBenchGateCatchesRealRegression(t *testing.T) {
	old := benchGrid(1, 1)
	bad := benchGrid(1, 3)
	r := CompareBenchCells("DENSE", old, bad, Options{Ratio: 0.5, MinDelta: 0.002})
	if r.OK() {
		t.Fatal("3x tuned-only regression passed the gate")
	}
	for _, f := range r.Findings {
		if !strings.HasPrefix(f.Metric, "DENSE/") {
			t.Errorf("finding %q not namespaced by experiment", f.Metric)
		}
	}
	// Unmatched cells must be skipped, not compared against zero.
	extra := append(benchGrid(1, 1), benchCell{Op: "mult", N: 7, K: 7, LegacySeconds: 1, TunedSeconds: 1})
	r = CompareBenchCells("DENSE", old, extra, Options{Ratio: 0.5, MinDelta: 0.002})
	if r.Checked != 3 {
		t.Fatalf("checked %d cells with one unmatched, want 3", r.Checked)
	}
}

// TestBenchGateSIMDFloor: the floor fails a grid whose vector kernels
// stopped beating the Go kernels, skips width classes with no SIMD
// data, and stays off at SIMDFloor zero.
func TestBenchGateSIMDFloor(t *testing.T) {
	old := benchGrid(1, 1)
	simdGrid := func(k16, panel8 float64) []benchCell {
		cells := benchGrid(1, 1)
		cells = append(cells,
			benchCell{Op: "mul", N: 2000, K: 16, LegacySeconds: 0.02, TunedSeconds: 0.008, SIMDSpeedup: k16},
			benchCell{Op: "mul", N: 2000, K: 32, LegacySeconds: 0.04, TunedSeconds: 0.015, SIMDSpeedup: panel8},
		)
		return cells
	}
	opt := Options{Ratio: 0.5, MinDelta: 0.002, SIMDFloor: 1.3}

	if r := CompareBenchCells("DENSE", old, simdGrid(2.5, 1.8), opt); !r.OK() {
		t.Fatalf("healthy SIMD grid failed: %s", r.Summary())
	}
	r := CompareBenchCells("DENSE", old, simdGrid(1.1, 1.8), opt)
	if r.OK() {
		t.Fatal("k16 speedup below the floor passed the gate")
	}
	if got := r.Findings[0].Metric; got != "DENSE/simd_speedup_k16_best" {
		t.Fatalf("finding on %q, want DENSE/simd_speedup_k16_best", got)
	}
	if r := CompareBenchCells("DENSE", old, simdGrid(1.1, 1.1), opt); len(r.Findings) != 2 {
		t.Fatalf("both classes under the floor: %d findings, want 2", len(r.Findings))
	}

	// A purego grid (no speedups recorded) has nothing to gate.
	if r := CompareBenchCells("DENSE", old, benchGrid(1, 1), opt); !r.OK() || r.Checked != 3 {
		t.Fatalf("SIMD-less grid tripped the floor: %s", r.Summary())
	}
	// Floor zero disables the check even with SIMD data present.
	noFloor := Options{Ratio: 0.5, MinDelta: 0.002}
	if r := CompareBenchCells("DENSE", old, simdGrid(1.1, 1.1), noFloor); !r.OK() {
		t.Fatalf("disabled floor still failed: %s", r.Summary())
	}
}

func annSum(bitwise, recall, latRatio, candFrac float64) map[string]float64 {
	return map[string]float64{
		"bitwise_fullprobe_match":       bitwise,
		"recall_at_default_nprobe":      recall,
		"latency_ratio_at_default":      latRatio,
		"candidate_fraction_at_default": candFrac,
	}
}

func TestANNGate(t *testing.T) {
	good := annSum(1, 0.99, 0.10, 0.03)

	if r := CompareANN(good, annSum(1, 0.99, 0.11, 0.03), Options{}); !r.OK() {
		t.Fatalf("healthy report failed: %s", r.Summary())
	}

	cases := []struct {
		name   string
		newS   map[string]float64
		metric string
	}{
		{"bitwise broken", annSum(0, 0.99, 0.10, 0.03), "bitwise_fullprobe_match"},
		{"recall under floor", annSum(1, 0.80, 0.10, 0.03), "recall_at_default_nprobe"},
		{"recall dropped from baseline", annSum(1, 0.96, 0.10, 0.03), "recall_at_default_nprobe"},
		{"latency ratio blew up", annSum(1, 0.99, 0.40, 0.03), "latency_ratio_at_default"},
		{"candidate fraction blew up", annSum(1, 0.99, 0.10, 0.30), "candidate_fraction_at_default"},
	}
	for _, tc := range cases {
		r := CompareANN(good, tc.newS, Options{Ratio: 0.5})
		if r.OK() {
			t.Errorf("%s: gate passed", tc.name)
			continue
		}
		found := false
		for _, f := range r.Findings {
			if f.Metric == tc.metric {
				found = true
				if f.Note == "" {
					t.Errorf("%s: finding has no note", tc.name)
				}
				if !strings.Contains(f.String(), f.Note) {
					t.Errorf("%s: String() %q drops the note", tc.name, f.String())
				}
			}
		}
		if !found {
			t.Errorf("%s: no finding on %s: %s", tc.name, tc.metric, r.Summary())
		}
	}

	// Small jitter under the absolute slack never fails, even at huge
	// relative growth from a tiny baseline.
	tiny := annSum(1, 0.99, 0.001, 0.001)
	jitter := annSum(1, 0.99, 0.04, 0.015)
	if r := CompareANN(tiny, jitter, Options{Ratio: 0.5}); !r.OK() {
		t.Fatalf("sub-slack jitter failed the gate: %s", r.Summary())
	}
}

// TestCompareFilesBenchKinds: BENCH_<exp>.json objects are sniffed as
// bench reports (not manifests) and dispatch to the right comparator.
func TestCompareFilesBenchKinds(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, v any) string {
		raw, err := json.MarshalIndent(v, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	type entry struct {
		Experiment string `json:"experiment"`
		Rows       any    `json:"rows"`
	}
	dense := write("BENCH_DENSE.json", entry{
		Experiment: "DENSE",
		Rows:       map[string]any{"cells": benchGrid(1, 1)},
	})
	r, err := CompareFiles(dense, dense, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Mode != "bench" || r.Checked != 3 || !r.OK() {
		t.Fatalf("dense self-compare: %+v", r)
	}

	annP := write("BENCH_ANN.json", entry{
		Experiment: "ANN",
		Rows:       map[string]any{"summary": annSum(1, 0.99, 0.1, 0.03)},
	})
	r, err = CompareFiles(annP, annP, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Mode != "ann" || !r.OK() {
		t.Fatalf("ann self-compare: %+v", r)
	}

	// Mismatched kinds still error.
	if _, err := CompareFiles(dense, filepath.Join(dir, "missing.json"), Options{}); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := CompareFiles(dense, annP, Options{}); err == nil {
		t.Fatal("DENSE vs ANN reports share no experiment but compared anyway")
	}
}
