// Package serve is the embedding-serving subsystem behind cmd/gebe-serve:
// online top-N recommendation, same-side similarity and pair scoring over
// a trained embedding, exposed as JSON over stdlib net/http.
//
// The handlers ride on the same tiled GEMM scoring core as the offline
// evaluation protocol (eval.Scorer), so a served recommendation list is
// byte-for-byte the list the eval harness would rank. Around the
// handlers sits a request lifecycle layer (lifecycle.go): panic
// recovery, a semaphore concurrency limiter that sheds load with 429
// instead of queueing unboundedly, cooperative per-request deadlines
// surfaced as 503, per-endpoint latency histograms and status-code
// counters through internal/obs, and graceful drain on shutdown. A
// size-bounded LRU (cache.go) memoizes repeated recommend queries.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gebe/internal/ann"
	"gebe/internal/bigraph"
	"gebe/internal/budget"
	"gebe/internal/core"
	"gebe/internal/eval"
	"gebe/internal/obs"
)

// Config parameterizes a Server; the zero value serves with no
// deadline, no concurrency cap, no cache, and the package defaults for
// list lengths and batch sizes.
type Config struct {
	// Deadline is the per-request compute budget; 0 disables it. A
	// request that exhausts the budget mid-scoring gets 503 with
	// Retry-After rather than holding a scorer slot indefinitely.
	Deadline time.Duration
	// MaxInflight caps concurrently served requests; excess requests are
	// shed with 429 + Retry-After. 0 means unlimited. /v1/healthz is
	// exempt so liveness probes keep answering under overload.
	MaxInflight int
	// CacheSize bounds the recommend LRU in entries; 0 disables caching.
	CacheSize int
	// TraceRequests enables request-scoped tracing and sets the
	// tail-sampling retention: the N slowest and the N most recent
	// errored request traces stay retrievable by X-Request-ID at
	// /debug/requests/{id}. 0 disables tracing and those endpoints.
	TraceRequests int
	// DefaultN is the list length used when a request omits n (default 10).
	DefaultN int
	// MaxN caps the requested list length (default 1000).
	MaxN int
	// MaxBatch caps users per recommend call and pairs per score call
	// (default 1024).
	MaxBatch int
	// Metrics receives the serve instrumentation; nil selects the
	// process-wide obs.DefaultRegistry.
	Metrics *obs.Registry
	// Log receives request-level debug logging; nil disables it.
	Log *obs.Logger
	// Reload loads a fresh (embedding, training graph) pair for a hot
	// swap — POST /v1/reload and SIGHUP both call it. The callback keeps
	// file I/O out of the serving layer: cmd/gebe-serve re-reads its -emb
	// and -train paths. nil disables /v1/reload (501).
	Reload func() (*core.Embedding, *bigraph.Graph, error)
	// AdminToken gates POST /v1/reload: when non-empty, requests must
	// carry it in an X-Admin-Token header. Empty leaves the endpoint
	// open — for local use and tests only.
	AdminToken string
	// ANN enables cluster-pruned approximate retrieval on /v1/recommend:
	// when non-nil, every model snapshot — the initial load and each hot
	// swap — builds an ann.Index over the item embedding with this
	// configuration, and requests may select "mode":"approx" with an
	// optional nprobe. nil keeps the server exact-only (approx requests
	// get 400). Indexes built with ANN.Int8 serve approx requests from
	// the quantized rows.
	ANN *ann.Config
}

// Server answers embedding queries. Build one with New and mount
// Handler on an http.Server.
type Server struct {
	cfg   Config
	start time.Time

	// cur is the served model snapshot (embedding + norms + exclusion
	// sets + scorer pools, see model.go), swapped atomically by
	// Swap/Reload. swapMu serializes swaps so versions are assigned in
	// store order; reads never take it.
	cur    atomic.Pointer[model]
	swapMu sync.Mutex

	cache   *lruCache
	limiter chan struct{} // nil = unlimited

	// Request-scoped diagnostics: the tail-sampling trace retention ring
	// (nil when disabled) and the request-id mint (a per-process prefix
	// plus an atomic counter, so ids are unique and cheap).
	tlog      *obs.TraceLog
	ridPrefix string
	rid       atomic.Uint64

	m serveMetrics
}

type serveMetrics struct {
	inflight     *obs.Gauge
	shed         *obs.Counter
	panics       *obs.Counter
	deadlines    *obs.Counter
	truncated    *obs.Counter
	cacheHit     *obs.Counter
	cacheMiss    *obs.Counter
	swaps        *obs.Counter
	swapFailures *obs.Counter
	modelVersion *obs.Gauge
	loadSeconds  *obs.Histogram
	swapSeconds  *obs.Histogram
	status       *obs.CounterVec
	seconds      map[string]*obs.Histogram
}

// endpoints names the instrumented routes; per-endpoint histograms are
// created eagerly so the metrics surface is complete before traffic.
var endpoints = []string{"recommend", "similar", "score", "healthz", "info", "reload"}

// New builds a Server over a loaded embedding. train is optional: when
// non-nil its edges become the per-user exclusion sets for recommend's
// mask_train option (the offline protocol's "exclude training edges"),
// and it must index-align with the embedding.
func New(emb *core.Embedding, train *bigraph.Graph, cfg Config) (*Server, error) {
	if cfg.DefaultN <= 0 {
		cfg.DefaultN = 10
	}
	if cfg.MaxN <= 0 {
		cfg.MaxN = 1000
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1024
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.DefaultRegistry()
	}
	s := &Server{cfg: cfg, start: time.Now(), cache: newLRU(cfg.CacheSize)}
	s.tlog = obs.NewTraceLog(cfg.TraceRequests)
	s.ridPrefix = fmt.Sprintf("%08x-", uint32(time.Now().UnixNano()))
	mdl, err := newModel(1, emb, train, cfg.ANN)
	if err != nil {
		return nil, err
	}
	s.cur.Store(mdl)
	if cfg.MaxInflight > 0 {
		s.limiter = make(chan struct{}, cfg.MaxInflight)
	}
	r := cfg.Metrics
	s.m = serveMetrics{
		inflight:     r.Gauge("serve_inflight", "requests currently being served"),
		shed:         r.Counter("serve_shed_total", "requests shed with 429 at the concurrency limit"),
		panics:       r.Counter("serve_panics_total", "handler panics recovered to 500"),
		deadlines:    r.Counter("serve_deadline_total", "requests that blew the per-request budget (503)"),
		truncated:    r.Counter("serve_truncated_total", "recommend requests answered partially after the budget expired mid-scoring (200 + truncated)"),
		cacheHit:     r.Counter("serve_cache_hit_total", "recommend results answered from the LRU"),
		cacheMiss:    r.Counter("serve_cache_miss_total", "recommend results scored afresh"),
		swaps:        r.Counter("serve_model_swaps_total", "successful hot swaps of the served model"),
		swapFailures: r.Counter("serve_model_swap_failures_total", "reloads/swaps rejected by load or validation errors"),
		modelVersion: r.Gauge("serve_model_version", "version of the currently served model"),
		loadSeconds:  r.Histogram("serve_model_load_seconds", "wall-clock of the reload loader (read + parse + validate)", nil),
		swapSeconds:  r.Histogram("serve_model_swap_seconds", "wall-clock of building and publishing a model snapshot", nil),
		status:       r.CounterVec("serve_status", "responses per endpoint and status code"),
		seconds:      make(map[string]*obs.Histogram, len(endpoints)),
	}
	s.m.modelVersion.Set(1)
	for _, ep := range endpoints {
		// FastBuckets: a request is a handful of sub-millisecond GEMM
		// tiles; DefBuckets' 100µs floor would flatten the distribution.
		s.m.seconds[ep] = r.Histogram("serve_"+ep+"_seconds",
			"wall-clock of /v1/"+ep+" requests", obs.FastBuckets)
	}
	return s, nil
}

// ScoredItem is one (id, score) pair in a ranked response list.
type ScoredItem struct {
	Item  int     `json:"item"`
	Score float64 `json:"score"`
}

// Handler returns the full serving surface: the five /v1 routes wrapped
// in the lifecycle layer (recovery → in-flight accounting → load
// shedding → request tracing → deadline injection → per-endpoint
// instrumentation), plus — when request tracing is on — the
// /debug/requests diagnostic routes over the trace retention ring.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/recommend", s.instrument("recommend", s.handleRecommend))
	mux.Handle("GET /v1/similar", s.instrument("similar", s.handleSimilar))
	mux.Handle("POST /v1/score", s.instrument("score", s.handleScore))
	mux.Handle("GET /v1/healthz", s.instrument("healthz", s.handleHealthz))
	mux.Handle("GET /v1/info", s.instrument("info", s.handleInfo))
	mux.Handle("POST /v1/reload", s.instrument("reload", s.handleReload))
	if s.tlog != nil {
		mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
		mux.HandleFunc("GET /debug/requests/{id}", s.handleDebugRequest)
	}
	return s.lifecycle(mux)
}

// --- /v1/recommend -------------------------------------------------

type recommendRequest struct {
	// Users lists the users to recommend for; User is the single-user
	// convenience form (exactly one of the two must be set).
	Users []int `json:"users"`
	User  *int  `json:"user"`
	// N is the list length; 0 selects the server default.
	N int `json:"n"`
	// MaskTrain excludes the user's training items (requires the server
	// to have been started with a training graph); defaults to true
	// when a training graph is loaded.
	MaskTrain *bool `json:"mask_train"`
	// Mode selects the retrieval path: "exact" (default) scores every
	// item through the GEMM scorer; "approx" prunes candidates through
	// the cluster index (requires the server to have been started with
	// one). The response echoes the choice in X-Retrieval-Mode.
	Mode string `json:"mode"`
	// Nprobe is the cluster count an approx request scans; 0 selects the
	// index default, values above the cluster count clamp to it (a full
	// probe reproduces the exact scorer). Only valid with mode approx.
	Nprobe int `json:"nprobe"`
}

type UserRecommendation struct {
	User   int          `json:"user"`
	Items  []ScoredItem `json:"items"`
	Cached bool         `json:"cached,omitempty"`
}

type RecommendResponse struct {
	N       int                  `json:"n"`
	Results []UserRecommendation `json:"results"`
	// Truncated reports that the per-request budget expired mid-scoring
	// and only a prefix of the batch was ranked: users whose lists were
	// completed carry them, the rest have null items. Absent on complete
	// responses, mirrored by the X-Gebe-Truncated header so callers can
	// tell without parsing the body.
	Truncated bool `json:"truncated,omitempty"`
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var req recommendRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	users := req.Users
	if req.User != nil {
		if len(users) > 0 {
			s.fail(w, http.StatusBadRequest, errors.New("set either user or users, not both"))
			return
		}
		users = []int{*req.User}
	}
	if len(users) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("users is required and must be non-empty"))
		return
	}
	if len(users) > s.cfg.MaxBatch {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("batch of %d users exceeds limit %d", len(users), s.cfg.MaxBatch))
		return
	}
	n, err := s.clampN(req.N)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	// One snapshot for the whole request: scores, masks, cache keys and
	// the X-Model-Version header all come from the same model even if a
	// swap lands mid-request.
	m := s.model()
	stampVersion(w, m)
	mode := req.Mode
	if mode == "" {
		mode = modeExact
	}
	switch mode {
	case modeExact, modeApprox:
	default:
		s.fail(w, http.StatusBadRequest, fmt.Errorf("mode must be %q or %q, got %q", modeExact, modeApprox, req.Mode))
		return
	}
	if req.Nprobe < 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("nprobe must be non-negative, got %d", req.Nprobe))
		return
	}
	if req.Nprobe > 0 && mode != modeApprox {
		s.fail(w, http.StatusBadRequest, errors.New("nprobe requires mode approx"))
		return
	}
	nprobe := 0
	if mode == modeApprox {
		if m.ann == nil {
			s.fail(w, http.StatusBadRequest, errors.New("approximate retrieval is not enabled on this server (-ann-clusters)"))
			return
		}
		// Canonicalize before the cache: nprobe 0 and an explicit default
		// hit the same entries.
		nprobe = m.ann.EffectiveNprobe(req.Nprobe)
	}
	w.Header().Set(retrievalModeHeader, mode)
	mask := m.trainItems != nil
	if req.MaskTrain != nil {
		mask = *req.MaskTrain
	}
	if mask && m.trainItems == nil {
		s.fail(w, http.StatusBadRequest, errors.New("mask_train requested but the server has no training graph (-train)"))
		return
	}
	for _, u := range users {
		if u < 0 || u >= m.emb.U.Rows {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("user %d outside [0,%d)", u, m.emb.U.Rows))
			return
		}
	}

	tr := obs.FromContext(r.Context())

	resp := RecommendResponse{N: n, Results: make([]UserRecommendation, len(users))}
	// Prefill the user ids so a truncated response still names every
	// requested user: unranked slots keep null items. A complete pass
	// overwrites every slot, so complete responses are unchanged.
	for i, u := range users {
		resp.Results[i] = UserRecommendation{User: u}
	}
	// Serve cache hits first, then score the misses in one batched pass.
	var missUsers []int
	var missSlots []int
	cacheSp := tr.StartSpan("cache")
	for i, u := range users {
		key := cacheKey(m.version, u, n, mask, mode, nprobe)
		if items, ok := s.cache.get(key); ok {
			s.m.cacheHit.Inc()
			resp.Results[i] = UserRecommendation{User: u, Items: items, Cached: true}
			continue
		}
		if s.cache != nil {
			s.m.cacheMiss.Inc()
		}
		missUsers = append(missUsers, u)
		missSlots = append(missSlots, i)
	}
	cacheSp.Set("batch", len(users)).Set("misses", len(missUsers)).End()
	switch {
	case len(missUsers) == 0:
	case mode == modeApprox:
		// Cluster-pruned retrieval: per-user index searches instead of
		// full GEMM rows. The retrieval span aggregates how much of the
		// item side the whole batch actually touched.
		retrSp := tr.StartSpan("retrieval").Set("mode", mode).
			Set("nprobe", nprobe).Set("users", len(missUsers))
		check := s.checkpoint(r)
		probed, scored := 0, 0
		for mi, u := range missUsers {
			if check != nil {
				if err := check(); err != nil {
					// Budget gone mid-batch: ship what was ranked instead of
					// discarding it — every completed list is still exact.
					resp.Truncated = true
					break
				}
			}
			var skip map[int]bool
			if mask {
				skip = m.trainItems[u]
			}
			ids, scores, st := m.ann.Search(m.emb.U.Row(u), n, ann.Options{
				Nprobe: nprobe, Skip: skip, Int8: m.ann.Int8(),
			})
			probed += st.Probed
			scored += st.Scored
			items := make([]ScoredItem, len(ids))
			for j, id := range ids {
				items[j] = ScoredItem{Item: id, Score: scores[j]}
			}
			s.cache.add(cacheKey(m.version, u, n, mask, mode, nprobe), items)
			resp.Results[missSlots[mi]] = UserRecommendation{User: u, Items: items}
		}
		retrSp.Set("clusters", probed).Set("candidates", scored).End()
	default:
		sc := m.recScorers.Get().(*eval.Scorer)
		defer m.recScorers.Put(sc)
		scoreSp := tr.StartSpan("score").
			Set("users", len(missUsers)).
			Set("tiles", (len(missUsers)+eval.TileUsers-1)/eval.TileUsers)
		mi := 0
		err := sc.ScoreCtx(r.Context(), missUsers, s.checkpoint(r), func(u int, scores []float64) {
			// The rank span covers training-edge masking plus top-N
			// selection; it nests under "score" beside the scorer's
			// per-tile "score.tile" spans.
			rankSp := tr.StartSpan("rank").Set("user", u).Set("masked", mask)
			var skip map[int]bool
			if mask {
				skip = m.trainItems[u]
			}
			ids := eval.TopNIndices(scores, n, skip)
			items := make([]ScoredItem, len(ids))
			for j, id := range ids {
				items[j] = ScoredItem{Item: id, Score: scores[id]}
			}
			s.cache.add(cacheKey(m.version, u, n, mask, mode, nprobe), items)
			resp.Results[missSlots[mi]] = UserRecommendation{User: u, Items: items}
			mi++
			rankSp.End()
		})
		scoreSp.End()
		if err != nil {
			if !errors.Is(err, budget.ErrExceeded) {
				s.fail(w, http.StatusInternalServerError, err)
				return
			}
			// Budget gone between tiles: the mi users already emitted carry
			// complete exact lists; ship them as a partial answer.
			resp.Truncated = true
		}
	}
	if resp.Truncated {
		s.m.truncated.Inc()
		w.Header().Set(TruncatedHeader, "true")
	}
	encodeSp := tr.StartSpan("encode")
	s.writeJSON(w, http.StatusOK, resp)
	encodeSp.End()
}

// modeExact and modeApprox are the /v1/recommend retrieval paths,
// echoed back in the X-Retrieval-Mode response header.
const (
	modeExact  = "exact"
	modeApprox = "approx"

	retrievalModeHeader = "X-Retrieval-Mode"
)

// Cross-process protocol headers, exported for the scatter/gather
// coordinator (internal/shard) that fronts a fleet of these servers.
const (
	// TruncatedHeader marks a 200 recommend response whose batch was only
	// partially ranked before the budget expired ("true" when set). The
	// coordinator propagates it upward when any shard degrades.
	TruncatedHeader = "X-Gebe-Truncated"
	// DeadlineHeader carries the caller's remaining compute budget in
	// integer milliseconds. The lifecycle layer folds it into the
	// request deadline (earliest of header and configured budget wins),
	// so a coordinator's deadline bounds the whole scatter no matter how
	// each shard is configured.
	DeadlineHeader = "X-Gebe-Deadline-Ms"
)

// cacheKey scopes cached lists to the model version that produced them:
// after a hot swap every lookup misses by construction, so a reload can
// never serve a list ranked by a previous embedding (the purge in Swap
// only frees memory faster). Mode and nprobe are part of the key — an
// approximate list must never answer an exact request, and different
// probe depths rank differently.
func cacheKey(version uint64, user, n int, mask bool, mode string, nprobe int) string {
	return strconv.FormatUint(version, 10) + "|" +
		strconv.Itoa(user) + "|" + strconv.Itoa(n) + "|" + strconv.FormatBool(mask) + "|" +
		mode + "|" + strconv.Itoa(nprobe)
}

// --- /v1/similar ---------------------------------------------------

type similarResponse struct {
	Side      string       `json:"side"`
	ID        int          `json:"id"`
	Neighbors []ScoredItem `json:"neighbors"`
}

// handleSimilar ranks same-side neighbors by cosine similarity:
// normalized dot products over the precomputed row norms. Query
// parameters: side (u|v, default u), id (required), n.
func (s *Server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	m := s.model()
	stampVersion(w, m)
	q := r.URL.Query()
	side := q.Get("side")
	if side == "" {
		side = "u"
	}
	var pool *sync.Pool
	var norms []float64
	switch side {
	case "u":
		pool, norms = &m.uSimScorers, m.uNorms
	case "v":
		pool, norms = &m.vSimScorers, m.vNorms
	default:
		s.fail(w, http.StatusBadRequest, fmt.Errorf("side must be u or v, got %q", side))
		return
	}
	id, err := strconv.Atoi(q.Get("id"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("id is required and must be an integer: %q", q.Get("id")))
		return
	}
	if id < 0 || id >= len(norms) {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("%s id %d outside [0,%d)", side, id, len(norms)))
		return
	}
	n := 0
	if raw := q.Get("n"); raw != "" {
		if n, err = strconv.Atoi(raw); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad n %q", raw))
			return
		}
	}
	if n, err = s.clampN(n); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}

	tr := obs.FromContext(r.Context())
	sc := pool.Get().(*eval.Scorer)
	defer pool.Put(sc)
	resp := similarResponse{Side: side, ID: id}
	scoreSp := tr.StartSpan("score").Set("side", side).Set("n", n)
	err = sc.ScoreCtx(r.Context(), []int{id}, s.checkpoint(r), func(_ int, scores []float64) {
		rankSp := tr.StartSpan("rank")
		for j := range scores {
			// Zero-norm rows are isolated vertices: their all-zero embedding
			// has no direction, so cosine against anything is defined as 0
			// here — never NaN/Inf in the JSON (which encoding/json would
			// reject wholesale). The non-finite check also catches subnormal
			// denominators overflowing the division.
			c := 0.0
			if d := norms[id] * norms[j]; d > 0 {
				c = scores[j] / d
				if math.IsNaN(c) || math.IsInf(c, 0) {
					c = 0
				}
			}
			scores[j] = c
		}
		// Single-exclusion fast path: no per-request skip map just to
		// drop the query vertex from its own neighbor list.
		ids := eval.TopNIndicesExcluding(scores, n, id)
		resp.Neighbors = make([]ScoredItem, len(ids))
		for j, nid := range ids {
			resp.Neighbors[j] = ScoredItem{Item: nid, Score: scores[nid]}
		}
		rankSp.End()
	})
	scoreSp.End()
	if err != nil {
		s.failBudget(w, err)
		return
	}
	encodeSp := tr.StartSpan("encode")
	s.writeJSON(w, http.StatusOK, resp)
	encodeSp.End()
}

// --- /v1/score -----------------------------------------------------

type scoreRequest struct {
	// Pairs lists [u, v] index pairs to score.
	Pairs [][2]int `json:"pairs"`
}

type scoreResponse struct {
	Scores []float64 `json:"scores"`
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	var req scoreRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Pairs) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("pairs is required and must be non-empty"))
		return
	}
	if len(req.Pairs) > s.cfg.MaxBatch {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("batch of %d pairs exceeds limit %d", len(req.Pairs), s.cfg.MaxBatch))
		return
	}
	m := s.model()
	stampVersion(w, m)
	tr := obs.FromContext(r.Context())
	check := s.checkpoint(r)
	out := scoreResponse{Scores: make([]float64, len(req.Pairs))}
	scoreSp := tr.StartSpan("score").Set("pairs", len(req.Pairs))
	for i, p := range req.Pairs {
		if i%1024 == 0 && check != nil {
			if err := check(); err != nil {
				scoreSp.End()
				s.failBudget(w, err)
				return
			}
		}
		u, v := p[0], p[1]
		if u < 0 || u >= m.emb.U.Rows || v < 0 || v >= m.emb.V.Rows {
			scoreSp.End()
			s.fail(w, http.StatusBadRequest, fmt.Errorf("pair %d: (%d,%d) outside %dx%d", i, u, v, m.emb.U.Rows, m.emb.V.Rows))
			return
		}
		out.Scores[i] = m.emb.Score(u, v)
	}
	scoreSp.End()
	encodeSp := tr.StartSpan("encode")
	s.writeJSON(w, http.StatusOK, out)
	encodeSp.End()
}

// --- /v1/healthz and /v1/info --------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	stampVersion(w, s.model())
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

// handleInfo reports the embedding header plus the solver diagnostics
// the TSV #meta lines carry — the ops-facing identity of what this
// process is serving — and the binary's build provenance, so a trace or
// latency snapshot pulled from this process is attributable to the
// exact commit and toolchain serving it.
func (s *Server) handleInfo(w http.ResponseWriter, _ *http.Request) {
	m := s.model()
	stampVersion(w, m)
	var annInfo map[string]any
	if m.ann != nil {
		annInfo = map[string]any{
			"clusters":       m.ann.Clusters(),
			"default_nprobe": m.ann.DefaultNprobe(),
			"int8":           m.ann.Int8(),
			"build_seconds":  m.ann.BuildSeconds(),
		}
	}
	// A sharded server advertises which slice of the item side it holds;
	// the coordinator reads this block to build its id-remapping tables.
	var shardInfo map[string]any
	if m.emb.Sharded() {
		shardInfo = map[string]any{
			"index":  m.emb.ShardIndex,
			"count":  m.emb.ShardCount,
			"offset": m.emb.ShardOffset,
			"total":  m.emb.ShardTotal,
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"ann":            annInfo,
		"shard":          shardInfo,
		"build":          obs.BuildInfo(),
		"model_version":  m.version,
		"model_loaded":   m.loaded.UTC().Format(time.RFC3339),
		"method":         m.emb.Method,
		"users":          m.emb.U.Rows,
		"items":          m.emb.V.Rows,
		"k":              m.emb.K(),
		"sigma_scale":    m.emb.SigmaScale,
		"sweeps":         m.emb.Sweeps,
		"sweeps_saved":   m.emb.SweepsSaved,
		"converged":      m.emb.Converged,
		"warm_start":     m.emb.WarmStarted,
		"stop_reason":    m.emb.StopReason,
		"values":         len(m.emb.Values),
		"train_edges":    m.trainEdges,
		"cache_size":     s.cfg.CacheSize,
		"cache_len":      s.cache.len(),
		"max_inflight":   s.cfg.MaxInflight,
		"deadline_ms":    s.cfg.Deadline.Milliseconds(),
		"trace_requests": s.tlog.Cap(),
	})
}

// --- /v1/reload ----------------------------------------------------

type reloadResponse struct {
	ModelVersion uint64 `json:"model_version"`
	Method       string `json:"method"`
	Users        int    `json:"users"`
	Items        int    `json:"items"`
	K            int    `json:"k"`
	WarmStart    bool   `json:"warm_start"`
}

// handleReload hot-swaps the served model through the configured loader.
// Drain-free by design: the swap is one pointer store, in-flight
// requests finish on their snapshot, and the endpoint bypasses the load
// shedder so an overloaded server can still be given a fresh model. The
// X-Model-Version header and the body carry the new version.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Reload == nil {
		s.fail(w, http.StatusNotImplemented, errors.New("reload is not configured on this server"))
		return
	}
	if s.cfg.AdminToken != "" && r.Header.Get("X-Admin-Token") != s.cfg.AdminToken {
		s.fail(w, http.StatusForbidden, errors.New("reload requires a valid X-Admin-Token"))
		return
	}
	v, err := s.Reload()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	m := s.model()
	stampVersion(w, m)
	s.writeJSON(w, http.StatusOK, reloadResponse{
		ModelVersion: v,
		Method:       m.emb.Method,
		Users:        m.emb.U.Rows,
		Items:        m.emb.V.Rows,
		K:            m.emb.K(),
		WarmStart:    m.emb.WarmStarted,
	})
}

// stampVersion puts the serving snapshot's version on the response, so
// every answer is attributable to the exact model that produced it.
func stampVersion(w http.ResponseWriter, m *model) {
	w.Header().Set("X-Model-Version", strconv.FormatUint(m.version, 10))
}

// --- shared helpers ------------------------------------------------

// clampN applies the default and the upper bound to a requested list
// length.
func (s *Server) clampN(n int) (int, error) {
	if n == 0 {
		return s.cfg.DefaultN, nil
	}
	if n < 0 {
		return 0, fmt.Errorf("n must be positive, got %d", n)
	}
	if n > s.cfg.MaxN {
		return 0, fmt.Errorf("n %d exceeds limit %d", n, s.cfg.MaxN)
	}
	return n, nil
}

// maxBody bounds request bodies; the largest legitimate payload is
// MaxBatch score pairs, far under a megabyte.
const maxBody = 1 << 20

func decodeJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	s.writeJSON(w, code, errorResponse{Error: err.Error()})
}

// failBudget maps a blown per-request budget to 503 + Retry-After; any
// other scoring error is a 500.
func (s *Server) failBudget(w http.ResponseWriter, err error) {
	if errors.Is(err, budget.ErrExceeded) {
		s.m.deadlines.Inc()
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusServiceUnavailable, fmt.Errorf("request budget exceeded (%s)", s.cfg.Deadline))
		return
	}
	s.fail(w, http.StatusInternalServerError, err)
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		s.cfg.Log.Warn("serve: encoding response", "err", err)
	}
}
