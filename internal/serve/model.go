package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"gebe/internal/ann"
	"gebe/internal/bigraph"
	"gebe/internal/core"
	"gebe/internal/dense"
	"gebe/internal/eval"
)

// model is one immutable serving snapshot: the embedding, the per-user
// training exclusion sets, the precomputed row norms, and the scorer
// pools bound to those matrices — everything request handling reads that
// must stay mutually consistent. The Server holds the current model
// behind one atomic pointer; a hot swap publishes a fully built
// replacement with a single store, so no request ever observes state
// from two versions. Handlers capture the pointer once on entry and use
// only that snapshot; the old model (pools included) is garbage-collected
// once its last in-flight request finishes.
type model struct {
	// version increases monotonically across swaps within one Server and
	// is stamped into /v1/info, the X-Model-Version response header, the
	// access log, and the recommend cache key.
	version uint64
	// loaded is when this snapshot was published.
	loaded time.Time
	emb    *core.Embedding

	// trainItems[u] holds u's training items when a training graph was
	// supplied — the exclusion set the paper's top-N protocol applies,
	// optional per request via mask_train.
	trainItems []map[int]bool
	trainEdges int

	// Precomputed row norms for /v1/similar's normalized dot products:
	// cosine(i,j) = M[i]·M[j] / (norm[i]·norm[j]).
	uNorms, vNorms []float64

	// ann is the cluster-pruned retrieval index over the item embedding
	// (nil when Config.ANN is nil). Built inside the snapshot, so a hot
	// swap publishes the new embedding and its index in the same pointer
	// store — a request can never score one model's users against
	// another model's clusters.
	ann *ann.Index

	// One scorer pool per GEMM orientation; scorers are not
	// concurrency-safe, so each in-flight request checks one out.
	recScorers, uSimScorers, vSimScorers sync.Pool
}

// newModel validates and precomputes one serving snapshot. train is
// optional; when non-nil it must index-align with the embedding.
// annCfg, when non-nil, builds the IVF index over the item side.
func newModel(version uint64, emb *core.Embedding, train *bigraph.Graph, annCfg *ann.Config) (*model, error) {
	if emb == nil || emb.U == nil || emb.V == nil {
		return nil, errors.New("serve: nil embedding")
	}
	m := &model{version: version, loaded: time.Now(), emb: emb}
	if train != nil {
		// A shard holds V rows [ShardOffset, ShardOffset+V.Rows) of a
		// ShardTotal-item embedding but is given the FULL training graph —
		// bigraph.ReadEdgeList densifies ids by first appearance, so
		// splitting the edge file per shard would scramble the indexing.
		// The slicing happens here instead: global item ids are validated
		// against the full item count and remapped to shard-local rows;
		// edges landing on other shards are dropped.
		items := emb.V.Rows
		if emb.Sharded() {
			items = emb.ShardTotal
		}
		if train.NU > emb.U.Rows || train.NV > items {
			return nil, fmt.Errorf("serve: training graph is %dx%d but embedding covers %dx%d",
				train.NU, train.NV, emb.U.Rows, items)
		}
		m.trainItems = make([]map[int]bool, emb.U.Rows)
		lo, hi := emb.ShardOffset, emb.ShardOffset+emb.V.Rows
		for _, e := range train.Edges {
			v := e.V
			if emb.Sharded() {
				if v < lo || v >= hi {
					continue
				}
				v -= lo
			}
			if m.trainItems[e.U] == nil {
				m.trainItems[e.U] = make(map[int]bool)
			}
			m.trainItems[e.U][v] = true
			m.trainEdges++
		}
	}
	m.uNorms = rowNorms(emb.U)
	m.vNorms = rowNorms(emb.V)
	if annCfg != nil {
		ix, err := ann.Build(emb.V, *annCfg)
		if err != nil {
			return nil, fmt.Errorf("serve: building retrieval index: %w", err)
		}
		m.ann = ix
	}
	m.recScorers.New = func() any { return eval.NewScorer(emb.U, emb.V) }
	m.uSimScorers.New = func() any { return eval.NewScorer(emb.U, emb.U) }
	m.vSimScorers.New = func() any { return eval.NewScorer(emb.V, emb.V) }
	return m, nil
}

// rowNorms precomputes per-row Euclidean norms, the denominators of
// /v1/similar's cosine scores.
func rowNorms(m *dense.Matrix) []float64 {
	norms := make([]float64, m.Rows)
	for i := range norms {
		norms[i] = math.Sqrt(dense.Dot(m.Row(i), m.Row(i)))
	}
	return norms
}

// model returns the current serving snapshot. Handlers call this exactly
// once per request and thread the result through, so one request never
// mixes two versions even across a concurrent swap.
func (s *Server) model() *model {
	return s.cur.Load()
}

// ModelVersion reports the currently served model version.
func (s *Server) ModelVersion() uint64 {
	return s.model().version
}

// Swap atomically replaces the served model with a freshly validated
// snapshot over emb/train and returns the new version. In-flight
// requests finish on the snapshot they started with; new requests see
// the new model immediately — nothing drains and nothing blocks. The
// recommend cache is purged (its keys are version-scoped, so stale
// entries could never be served either way; purging just frees them
// eagerly).
func (s *Server) Swap(emb *core.Embedding, train *bigraph.Graph) (uint64, error) {
	t0 := time.Now()
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	version := s.model().version + 1
	m, err := newModel(version, emb, train, s.cfg.ANN)
	if err != nil {
		s.m.swapFailures.Inc()
		return 0, err
	}
	s.cur.Store(m)
	s.cache.purge()
	s.m.swaps.Inc()
	s.m.modelVersion.Set(float64(version))
	s.m.swapSeconds.ObserveSince(t0)
	s.cfg.Log.Info("serve: model swapped", "model_version", version,
		"users", emb.U.Rows, "items", emb.V.Rows, "k", emb.K(),
		"method", emb.Method, "warm_start", emb.WarmStarted,
		"swap_s", time.Since(t0).Seconds())
	return version, nil
}

// Reload runs the configured loader (Config.Reload) and swaps the result
// in — the shared implementation behind POST /v1/reload and SIGHUP. The
// load+validate latency lands in serve_model_load_seconds.
func (s *Server) Reload() (uint64, error) {
	if s.cfg.Reload == nil {
		return 0, errors.New("serve: no reload loader configured")
	}
	t0 := time.Now()
	emb, train, err := s.cfg.Reload()
	s.m.loadSeconds.ObserveSince(t0)
	if err != nil {
		s.m.swapFailures.Inc()
		return 0, fmt.Errorf("serve: reload: %w", err)
	}
	v, err := s.Swap(emb, train)
	if err != nil {
		return 0, fmt.Errorf("serve: reload: %w", err)
	}
	return v, nil
}
