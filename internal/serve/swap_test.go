package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"gebe/internal/bigraph"
	"gebe/internal/core"
	"gebe/internal/dense"
	"gebe/internal/eval"
	"gebe/internal/obs"
)

// altEmbedding is a second model with the same shape as testEmbedding's
// but different values, so a swap visibly changes every ranking.
func altEmbedding(t testing.TB) *core.Embedding {
	t.Helper()
	rng := rand.New(rand.NewPCG(99, 7))
	return &core.Embedding{
		U:      dense.Random(20, 8, rng),
		V:      dense.Random(35, 8, rng),
		Method: "gebe",
		Sweeps: 3, Converged: true, StopReason: "converged", WarmStarted: true,
	}
}

// expectTopN computes the reference recommendation list for one user
// directly through the eval scorer over a given embedding.
func expectTopN(emb *core.Embedding, g *bigraph.Graph, user, n int) []ScoredItem {
	sc := eval.NewScorer(emb.U, emb.V)
	var skip map[int]bool
	if g != nil {
		skip = make(map[int]bool)
		for _, e := range g.Edges {
			if e.U == user {
				skip[e.V] = true
			}
		}
	}
	ids, scores := sc.TopN(user, n, skip)
	items := make([]ScoredItem, len(ids))
	for j := range ids {
		items[j] = ScoredItem{Item: ids[j], Score: scores[j]}
	}
	return items
}

func TestSwapBumpsVersion(t *testing.T) {
	s, reg := newTestServer(t, Config{})
	h := s.Handler()
	if v := s.ModelVersion(); v != 1 {
		t.Fatalf("initial version = %d, want 1", v)
	}
	w := get(t, h, "/v1/healthz")
	if got := w.Header().Get("X-Model-Version"); got != "1" {
		t.Errorf("healthz X-Model-Version = %q, want 1", got)
	}

	_, g := testEmbedding(t)
	v, err := s.Swap(altEmbedding(t), g)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 || s.ModelVersion() != 2 {
		t.Fatalf("swapped version = %d / %d, want 2", v, s.ModelVersion())
	}
	info := decode[map[string]any](t, get(t, h, "/v1/info"))
	if info["model_version"] != 2.0 {
		t.Errorf("info model_version = %v, want 2", info["model_version"])
	}
	if info["method"] != "gebe" || info["warm_start"] != true {
		t.Errorf("info not from the new model: method=%v warm_start=%v", info["method"], info["warm_start"])
	}
	w = postJSON(t, h, "/v1/recommend", `{"user":0}`)
	if got := w.Header().Get("X-Model-Version"); got != "2" {
		t.Errorf("recommend X-Model-Version = %q, want 2", got)
	}
	if reg.Counter("serve_model_swaps_total", "").Value() != 1 {
		t.Error("serve_model_swaps_total not incremented")
	}
	if reg.Gauge("serve_model_version", "").Value() != 2 {
		t.Error("serve_model_version gauge not updated")
	}
}

// TestSwapInvalidatesCache is the stale-state regression test: an answer
// cached under version 1 must never be replayed after a hot swap, because
// cache keys are scoped to the model version (and Swap purges anyway).
func TestSwapInvalidatesCache(t *testing.T) {
	s, reg := newTestServer(t, Config{CacheSize: 16})
	h := s.Handler()
	_, g := testEmbedding(t)
	alt := altEmbedding(t)

	body := `{"users":[3],"n":5}`
	first := decode[RecommendResponse](t, postJSON(t, h, "/v1/recommend", body))
	warm := decode[RecommendResponse](t, postJSON(t, h, "/v1/recommend", body))
	if !warm.Results[0].Cached {
		t.Fatal("second identical query not cached before swap")
	}

	if _, err := s.Swap(alt, g); err != nil {
		t.Fatal(err)
	}
	if s.cache.len() != 0 {
		t.Errorf("cache holds %d entries after swap, want 0", s.cache.len())
	}

	after := decode[RecommendResponse](t, postJSON(t, h, "/v1/recommend", body))
	if after.Results[0].Cached {
		t.Fatal("stale cache hit served after model swap")
	}
	want := expectTopN(alt, g, 3, 5)
	got := after.Results[0].Items
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("post-swap items from wrong model:\n got %v\nwant %v", got, want)
	}
	if fmt.Sprint(got) == fmt.Sprint(first.Results[0].Items) {
		t.Error("post-swap ranking identical to old model's (swap had no effect)")
	}
	// The old version's key would miss even without the purge: keys embed
	// the version, so a v1 entry can never answer a v2 lookup.
	if _, ok := s.cache.get(cacheKey(1, 3, 5, true, modeExact, 0)); ok {
		t.Error("version-1 cache entry survived the purge")
	}
	_ = reg
}

func TestSwapValidation(t *testing.T) {
	s, reg := newTestServer(t, Config{})
	// A training graph larger than the embedding must be rejected and the
	// served model left untouched.
	big, err := bigraph.New(50, 60, []bigraph.Edge{{U: 49, V: 59, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Swap(altEmbedding(t), big); err == nil {
		t.Fatal("misaligned training graph accepted")
	}
	if _, err := s.Swap(nil, nil); err == nil {
		t.Fatal("nil embedding accepted")
	}
	if v := s.ModelVersion(); v != 1 {
		t.Errorf("failed swaps changed the version to %d", v)
	}
	if f := reg.Counter("serve_model_swap_failures_total", "").Value(); f != 2 {
		t.Errorf("swap failures = %v, want 2", f)
	}
	if reg.Counter("serve_model_swaps_total", "").Value() != 0 {
		t.Error("failed swaps counted as successes")
	}
}

// postReload issues POST /v1/reload with an optional admin token.
func postReload(t *testing.T, h http.Handler, token string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/reload", strings.NewReader(""))
	if token != "" {
		req.Header.Set("X-Admin-Token", token)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestReloadEndpoint(t *testing.T) {
	emb, g := testEmbedding(t)
	alt := altEmbedding(t)

	t.Run("not configured", func(t *testing.T) {
		s, err := New(emb, g, Config{Metrics: obs.NewRegistry()})
		if err != nil {
			t.Fatal(err)
		}
		if w := postReload(t, s.Handler(), ""); w.Code != http.StatusNotImplemented {
			t.Errorf("status %d, want 501", w.Code)
		}
	})

	t.Run("admin token", func(t *testing.T) {
		s, err := New(emb, g, Config{
			Metrics:    obs.NewRegistry(),
			AdminToken: "s3cret",
			Reload: func() (*core.Embedding, *bigraph.Graph, error) {
				return alt, g, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		h := s.Handler()
		if w := postReload(t, h, ""); w.Code != http.StatusForbidden {
			t.Errorf("missing token: status %d, want 403", w.Code)
		}
		if w := postReload(t, h, "wrong"); w.Code != http.StatusForbidden {
			t.Errorf("wrong token: status %d, want 403", w.Code)
		}
		if v := s.ModelVersion(); v != 1 {
			t.Fatalf("rejected reloads swapped the model to v%d", v)
		}
		w := postReload(t, h, "s3cret")
		if w.Code != http.StatusOK {
			t.Fatalf("authorized reload: status %d: %s", w.Code, w.Body)
		}
		resp := decode[reloadResponse](t, w)
		if resp.ModelVersion != 2 || !resp.WarmStart || resp.Method != "gebe" {
			t.Errorf("reload response %+v", resp)
		}
		if got := w.Header().Get("X-Model-Version"); got != "2" {
			t.Errorf("reload X-Model-Version = %q, want 2", got)
		}
	})

	t.Run("loader error", func(t *testing.T) {
		reg := obs.NewRegistry()
		s, err := New(emb, g, Config{
			Metrics: reg,
			Reload: func() (*core.Embedding, *bigraph.Graph, error) {
				return nil, nil, errors.New("disk on fire")
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		w := postReload(t, s.Handler(), "")
		if w.Code != http.StatusInternalServerError {
			t.Errorf("status %d, want 500", w.Code)
		}
		if !strings.Contains(decode[errorResponse](t, w).Error, "disk on fire") {
			t.Error("loader error not surfaced")
		}
		if s.ModelVersion() != 1 {
			t.Error("failed reload swapped the model")
		}
		if reg.Counter("serve_model_swap_failures_total", "").Value() != 1 {
			t.Error("failed reload not counted")
		}
	})
}

// TestConcurrentSwapAndQuery hammers /v1/recommend while POST /v1/reload
// hot-swaps the model back and forth. Run under -race this is the
// drain-free swap's safety net; the response-consistency checks assert
// that every answer — header, ranking, cache state — comes from exactly
// one model version, never a mix and never a stale cache entry.
func TestConcurrentSwapAndQuery(t *testing.T) {
	embA, g := testEmbedding(t)
	embB := altEmbedding(t)
	// The loader alternates models: reload n publishes version n+1, so
	// odd versions serve embA (version 1 is embA from New) and even embB.
	var reloads atomic.Int64
	s, err := New(embA, g, Config{
		Metrics:   obs.NewRegistry(),
		CacheSize: 64,
		Reload: func() (*core.Embedding, *bigraph.Graph, error) {
			if reloads.Add(1)%2 == 1 {
				return embB, g, nil
			}
			return embA, g, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	// Version v serves embA when odd (New started at 1 with embA), embB
	// when even — the swap loop below alternates strictly.
	wantByParity := map[int][]ScoredItem{
		1: expectTopN(embA, g, 3, 5),
		0: expectTopN(embB, g, 3, 5),
	}

	const queriers = 8
	const queriesEach = 50
	var wg sync.WaitGroup
	errs := make(chan string, queriers*queriesEach)
	for range queriers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range queriesEach {
				req := httptest.NewRequest("POST", "/v1/recommend", strings.NewReader(`{"users":[3],"n":5}`))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					errs <- fmt.Sprintf("status %d: %s", w.Code, w.Body)
					continue
				}
				v, err := strconv.Atoi(w.Header().Get("X-Model-Version"))
				if err != nil {
					errs <- "missing X-Model-Version"
					continue
				}
				resp := RecommendResponse{}
				if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
					errs <- err.Error()
					continue
				}
				want := wantByParity[v%2]
				if fmt.Sprint(resp.Results[0].Items) != fmt.Sprint(want) {
					errs <- fmt.Sprintf("v%d answered with the other model's ranking", v)
				}
			}
		}()
	}

	for i := 0; i < 25; i++ {
		if w := postReload(t, h, ""); w.Code != http.StatusOK {
			t.Fatalf("reload %d: status %d: %s", i, w.Code, w.Body)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if v := s.ModelVersion(); v != 26 {
		t.Errorf("final version = %d, want 26", v)
	}
}
