package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"gebe/internal/budget"
	"gebe/internal/obs"
)

// The request lifecycle layer wraps the routing mux. Ordering matters:
//
//	recover → in-flight gauge → load shedding → tracing → deadline stamp → mux
//
// Recovery sits outermost so a panic anywhere below (shedding and
// instrumentation included) still yields a well-formed 500 and a
// released semaphore slot. Shedding sits above deadline stamping so a
// shed request costs two channel operations and no clock reads — and
// above tracing, so shedding stays allocation-free: a shed request
// never mints a request id or a trace (its access-log line is emitted
// from the shed branch itself). /v1/healthz and the /debug/ diagnostic
// routes bypass both the limiter and tracing: liveness probes must
// answer and diagnostics must be reachable precisely when the server is
// drowning.

// deadlineKey carries the request's absolute compute deadline through
// the context; handlers thread it into budget.Exceeded checks at tile
// granularity, the same cooperative-cancellation idiom every solver
// uses.
type deadlineKey struct{}

// requestDeadline returns the absolute deadline stamped on the request,
// or the zero time when the server runs without a budget.
func requestDeadline(r *http.Request) time.Time {
	if t, ok := r.Context().Value(deadlineKey{}).(time.Time); ok {
		return t
	}
	return time.Time{}
}

// testCheckpoint, when non-nil, replaces the deadline-derived scoring
// checkpoint — the deterministic truncation hook for tests, which
// cannot otherwise make a wall-clock budget expire between two specific
// GEMM tiles. Never set outside _test files.
var testCheckpoint func() func() error

// checkpoint returns the cooperative cancellation hook scoring loops
// call between GEMM tiles: nil when the request carries no budget, so
// the scorer skips the clock entirely.
func (s *Server) checkpoint(r *http.Request) func() error {
	if testCheckpoint != nil {
		return testCheckpoint()
	}
	dl := requestDeadline(r)
	if dl.IsZero() {
		return nil
	}
	return func() error { return budget.Check(dl) }
}

// lifecycle wraps the routed mux in the outer layers.
func (s *Server) lifecycle(next http.Handler) http.Handler {
	return s.recovered(s.counted(s.limited(s.traced(s.stamped(next)))))
}

// bypassed reports whether the request skips load shedding and request
// tracing: liveness probes, the diagnostic surface itself, and the
// admin reload — an overloaded server must still answer probes, be
// debuggable, and accept a replacement model.
func bypassed(path string) bool {
	return path == "/v1/healthz" || path == "/v1/reload" || strings.HasPrefix(path, "/debug/")
}

// recovered converts handler panics into JSON 500s. A panicking scoring
// request must not take the process (and its embedding) down with it.
func (s *Server) recovered(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.m.panics.Inc()
				s.cfg.Log.Error("serve: handler panic", "path", r.URL.Path, "panic", fmt.Sprint(v))
				// Headers may already be gone; WriteHeader on a started
				// response is a no-op warning, which is the best available.
				s.fail(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// counted maintains the in-flight gauge across every request, shed or
// served.
func (s *Server) counted(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.m.inflight.Add(1)
		defer s.m.inflight.Add(-1)
		next.ServeHTTP(w, r)
	})
}

// limited sheds load once MaxInflight requests are being served:
// a non-blocking semaphore acquire, and on failure an immediate 429
// with Retry-After — bounded latency for the shed request and bounded
// concurrency for everyone else, instead of an unbounded accept queue
// all timing out together. Liveness probes (/v1/healthz) bypass the
// limiter: an overloaded server is still alive.
func (s *Server) limited(next http.Handler) http.Handler {
	if s.limiter == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if bypassed(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		select {
		case s.limiter <- struct{}{}:
			defer func() { <-s.limiter }()
			next.ServeHTTP(w, r)
		default:
			s.m.shed.Inc()
			s.m.status.With("shed_429").Inc()
			w.Header().Set("Retry-After", "1")
			s.fail(w, http.StatusTooManyRequests,
				fmt.Errorf("server at capacity (%d in flight)", s.cfg.MaxInflight))
			// Shed requests never reach the tracing layer, so their access
			// line is emitted here: no id (nothing retained to look up), no
			// bytes counting, cause "shed". Enabled gates the allocation.
			if s.cfg.Log.Enabled(obs.LevelInfo) {
				s.logAccess("", endpointName(r), http.StatusTooManyRequests, 0, 0, "shed", "")
			}
		}
	})
}

// traced is the request-scoped diagnostics layer: it mints or
// propagates X-Request-ID, opens the per-request obs.Trace carried down
// through the context (handlers and eval.Scorer hang their spans off
// it), counts response bytes through statusRecorder, emits one
// structured access-log line per request, and offers the finished trace
// to the tail-sampling TraceLog. Bypassed routes (healthz, /debug/) pay
// nothing but the path check.
func (s *Server) traced(next http.Handler) http.Handler {
	if s.tlog == nil && s.cfg.Log == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if bypassed(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		t0 := time.Now()
		id := s.requestID(r)
		ep := endpointName(r)
		var tr *obs.Trace
		req := r
		if s.tlog != nil {
			tr = obs.NewTrace(ep)
			req = r.WithContext(obs.ContextWithTrace(r.Context(), tr))
		}
		w.Header().Set("X-Request-ID", id)
		rec := &statusRecorder{ResponseWriter: w}
		// The epilogue runs deferred so a panicking handler still leaves an
		// access line and an (errored, thus retained) trace behind before
		// the recovery layer writes its 500.
		panicked := true
		defer func() {
			status := rec.code
			if status == 0 {
				status = http.StatusOK
			}
			cause := ""
			switch {
			case panicked:
				status, cause = http.StatusInternalServerError, "panic"
			case status == http.StatusServiceUnavailable:
				cause = "deadline"
			case status >= 500:
				cause = "error"
			case rec.Header().Get(TruncatedHeader) != "":
				cause = "truncated"
			}
			elapsed := time.Since(t0)
			if s.cfg.Log.Enabled(obs.LevelInfo) {
				// The version comes from the header the handler stamped, so
				// the log line always matches the response bytes even when a
				// model swap lands mid-request.
				s.logAccess(id, ep, status, rec.bytes, elapsed, cause,
					rec.Header().Get("X-Model-Version"))
			}
			if tr != nil {
				s.tlog.Add(obs.TraceEntry{
					ID: id, Name: ep, Status: status, Bytes: rec.bytes,
					Start: t0, Elapsed: elapsed, Cause: cause, Trace: tr.Root(),
				})
			}
		}()
		next.ServeHTTP(rec, req)
		panicked = false
	})
}

// logAccess emits the structured access-log line: one slog record per
// request with the fields an operator greps for first.
func (s *Server) logAccess(id, endpoint string, status int, bytes int64, elapsed time.Duration, cause, modelVersion string) {
	args := []any{
		"id", id, "endpoint", endpoint, "status", status,
		"bytes", bytes, "elapsed", elapsed,
	}
	if modelVersion != "" {
		args = append(args, "model_version", modelVersion)
	}
	if cause != "" {
		args = append(args, "cause", cause)
	}
	s.cfg.Log.Info("serve: access", args...)
}

// requestID returns the client-supplied X-Request-ID when it is sane
// (non-empty, bounded, printable ASCII) so upstream correlation ids
// survive, and mints a process-unique id otherwise.
func (s *Server) requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); id != "" && len(id) <= 64 && printableASCII(id) {
		return id
	}
	return s.ridPrefix + strconv.FormatUint(s.rid.Add(1), 10)
}

func printableASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] <= ' ' || s[i] > '~' {
			return false
		}
	}
	return true
}

// endpointName maps a request path to the instrumented endpoint label;
// unrouted paths share one bucket so an URL-shaped attack cannot mint
// unbounded label values.
func endpointName(r *http.Request) string {
	switch r.URL.Path {
	case "/v1/recommend":
		return "recommend"
	case "/v1/similar":
		return "similar"
	case "/v1/score":
		return "score"
	case "/v1/healthz":
		return "healthz"
	case "/v1/info":
		return "info"
	case "/v1/reload":
		return "reload"
	}
	return "other"
}

// stamped derives the request's absolute compute deadline and attaches
// it to the context, both as a value (for the scorer checkpoints) and
// as a context deadline (so downstream code holding the context
// observes cancellation too). Two sources compose through
// budget.Earliest: the configured per-request budget and a caller's
// X-Gebe-Deadline-Ms header (remaining milliseconds — the form the
// scatter/gather coordinator propagates so its deadline bounds every
// shard call regardless of shard configuration). A malformed header is
// ignored; a valid non-positive one means the caller's budget is
// already gone and expires the request immediately.
func (s *Server) stamped(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var dl time.Time
		if s.cfg.Deadline > 0 {
			dl = time.Now().Add(s.cfg.Deadline)
		}
		if raw := r.Header.Get(DeadlineHeader); raw != "" {
			if ms, err := strconv.ParseInt(raw, 10, 64); err == nil {
				dl = budget.Earliest(dl, time.Now().Add(time.Duration(ms)*time.Millisecond))
			}
		}
		if dl.IsZero() {
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithDeadline(context.WithValue(r.Context(), deadlineKey{}, dl), dl)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// statusRecorder captures the response code and byte count for
// instrumentation and the access log. Wrapping an http.ResponseWriter
// hides its optional interfaces, so the ones the serve surface can
// meaningfully honor are forwarded explicitly: Flush for callers
// streaming partial responses. (Hijack and ReadFrom are deliberately
// not forwarded — no JSON endpoint upgrades connections, and losing
// the sendfile fast path is irrelevant for encoder-driven bodies.)
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusRecorder) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer's Flusher, restoring the
// optional interface the embedding hid.
func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps one endpoint with its latency histogram and the
// per-endpoint status-code counters. The tracing layer above usually
// wraps the writer already; its recorder is reused rather than stacked
// so bytes are counted once.
func (s *Server) instrument(name string, h http.HandlerFunc) http.Handler {
	hist := s.m.seconds[name]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rec, ok := w.(*statusRecorder)
		if !ok {
			rec = &statusRecorder{ResponseWriter: w}
		}
		h(rec, r)
		code := rec.code
		if code == 0 {
			code = http.StatusOK
		}
		hist.ObserveSince(t0)
		s.m.status.With(fmt.Sprintf("%s_%d", name, code)).Inc()
	})
}

// Run serves h on ln until stop delivers a signal, then drains
// gracefully: the listener closes immediately (new connections are
// refused), in-flight requests get up to drainTimeout to finish, and
// only then are stragglers cut. Returns nil on a clean drain or
// server-closed exit.
func Run(ln net.Listener, h http.Handler, stop <-chan os.Signal, drainTimeout time.Duration, log *obs.Logger) error {
	srv := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return fmt.Errorf("serve: %w", err)
	case sig := <-stop:
		log.Info("serve: draining", "signal", fmt.Sprint(sig), "timeout", drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			_ = srv.Close()
			<-errc
			return fmt.Errorf("serve: drain: %w", err)
		}
		<-errc // Serve has returned ErrServerClosed by now
		log.Info("serve: drained")
		return nil
	}
}
