package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"gebe/internal/budget"
	"gebe/internal/obs"
)

// The request lifecycle layer wraps the routing mux. Ordering matters:
//
//	recover → in-flight gauge → load shedding → deadline stamp → mux
//
// Recovery sits outermost so a panic anywhere below (shedding and
// instrumentation included) still yields a well-formed 500 and a
// released semaphore slot. Shedding sits above deadline stamping so a
// shed request costs two channel operations and no clock reads.

// deadlineKey carries the request's absolute compute deadline through
// the context; handlers thread it into budget.Exceeded checks at tile
// granularity, the same cooperative-cancellation idiom every solver
// uses.
type deadlineKey struct{}

// requestDeadline returns the absolute deadline stamped on the request,
// or the zero time when the server runs without a budget.
func requestDeadline(r *http.Request) time.Time {
	if t, ok := r.Context().Value(deadlineKey{}).(time.Time); ok {
		return t
	}
	return time.Time{}
}

// checkpoint returns the cooperative cancellation hook scoring loops
// call between GEMM tiles: nil when the request carries no budget, so
// the scorer skips the clock entirely.
func (s *Server) checkpoint(r *http.Request) func() error {
	dl := requestDeadline(r)
	if dl.IsZero() {
		return nil
	}
	return func() error { return budget.Check(dl) }
}

// lifecycle wraps the routed mux in the outer layers.
func (s *Server) lifecycle(next http.Handler) http.Handler {
	return s.recovered(s.counted(s.limited(s.stamped(next))))
}

// recovered converts handler panics into JSON 500s. A panicking scoring
// request must not take the process (and its embedding) down with it.
func (s *Server) recovered(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.m.panics.Inc()
				s.cfg.Log.Error("serve: handler panic", "path", r.URL.Path, "panic", fmt.Sprint(v))
				// Headers may already be gone; WriteHeader on a started
				// response is a no-op warning, which is the best available.
				s.fail(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// counted maintains the in-flight gauge across every request, shed or
// served.
func (s *Server) counted(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.m.inflight.Add(1)
		defer s.m.inflight.Add(-1)
		next.ServeHTTP(w, r)
	})
}

// limited sheds load once MaxInflight requests are being served:
// a non-blocking semaphore acquire, and on failure an immediate 429
// with Retry-After — bounded latency for the shed request and bounded
// concurrency for everyone else, instead of an unbounded accept queue
// all timing out together. Liveness probes (/v1/healthz) bypass the
// limiter: an overloaded server is still alive.
func (s *Server) limited(next http.Handler) http.Handler {
	if s.limiter == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/healthz" {
			next.ServeHTTP(w, r)
			return
		}
		select {
		case s.limiter <- struct{}{}:
			defer func() { <-s.limiter }()
			next.ServeHTTP(w, r)
		default:
			s.m.shed.Inc()
			s.m.status.With("shed_429").Inc()
			w.Header().Set("Retry-After", "1")
			s.fail(w, http.StatusTooManyRequests,
				fmt.Errorf("server at capacity (%d in flight)", s.cfg.MaxInflight))
		}
	})
}

// stamped derives the request's absolute compute deadline from the
// configured per-request budget and attaches it to the context, both as
// a value (for the scorer checkpoints) and as a context deadline (so
// downstream code holding the context observes cancellation too).
func (s *Server) stamped(next http.Handler) http.Handler {
	if s.cfg.Deadline <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		dl := time.Now().Add(s.cfg.Deadline)
		ctx, cancel := context.WithDeadline(context.WithValue(r.Context(), deadlineKey{}, dl), dl)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// statusRecorder captures the response code for instrumentation.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps one endpoint with its latency histogram, the
// per-endpoint status-code counters, and debug logging.
func (s *Server) instrument(name string, h http.HandlerFunc) http.Handler {
	hist := s.m.seconds[name]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r)
		if rec.code == 0 {
			rec.code = http.StatusOK
		}
		hist.ObserveSince(t0)
		s.m.status.With(fmt.Sprintf("%s_%d", name, rec.code)).Inc()
		s.cfg.Log.Debug("serve: request",
			"endpoint", name, "status", rec.code, "elapsed", time.Since(t0))
	})
}

// Run serves h on ln until stop delivers a signal, then drains
// gracefully: the listener closes immediately (new connections are
// refused), in-flight requests get up to drainTimeout to finish, and
// only then are stragglers cut. Returns nil on a clean drain or
// server-closed exit.
func Run(ln net.Listener, h http.Handler, stop <-chan os.Signal, drainTimeout time.Duration, log *obs.Logger) error {
	srv := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return fmt.Errorf("serve: %w", err)
	case sig := <-stop:
		log.Info("serve: draining", "signal", fmt.Sprint(sig), "timeout", drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			_ = srv.Close()
			<-errc
			return fmt.Errorf("serve: drain: %w", err)
		}
		<-errc // Serve has returned ErrServerClosed by now
		log.Info("serve: drained")
		return nil
	}
}
