package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"gebe/internal/ann"
	"gebe/internal/bigraph"
	"gebe/internal/core"
	"gebe/internal/obs"
)

// annConfig is the test index: few clusters over the 35-item test
// embedding so a full probe (nprobe >= 6) is cheap to request.
func annConfig() *ann.Config {
	return &ann.Config{Clusters: 6, Seed: 11}
}

// TestApproxFullProbeMatchesExact is the serving-layer face of the
// package oracle: mode approx at nprobe = Clusters must return exactly
// the ids and scores mode exact returns — same JSON, different header.
func TestApproxFullProbeMatchesExact(t *testing.T) {
	s, _ := newTestServer(t, Config{ANN: annConfig()})
	h := s.Handler()

	for _, body := range []string{
		`{"users":[0,5,7],"n":6}`,
		`{"user":3,"n":5,"mask_train":false}`,
	} {
		exact := postJSON(t, h, "/v1/recommend", body)
		if exact.Code != http.StatusOK {
			t.Fatalf("exact: status %d: %s", exact.Code, exact.Body)
		}
		if got := exact.Header().Get(retrievalModeHeader); got != modeExact {
			t.Fatalf("exact %s = %q", retrievalModeHeader, got)
		}

		approxBody := strings.TrimSuffix(body, "}") + `,"mode":"approx","nprobe":6}`
		approx := postJSON(t, h, "/v1/recommend", approxBody)
		if approx.Code != http.StatusOK {
			t.Fatalf("approx: status %d: %s", approx.Code, approx.Body)
		}
		if got := approx.Header().Get(retrievalModeHeader); got != modeApprox {
			t.Fatalf("approx %s = %q", retrievalModeHeader, got)
		}

		e := decode[RecommendResponse](t, exact)
		a := decode[RecommendResponse](t, approx)
		for i := range e.Results {
			ew, aw := e.Results[i], a.Results[i]
			if len(ew.Items) != len(aw.Items) {
				t.Fatalf("user %d: %d exact items vs %d approx", ew.User, len(ew.Items), len(aw.Items))
			}
			for j := range ew.Items {
				if ew.Items[j].Item != aw.Items[j].Item || ew.Items[j].Score != aw.Items[j].Score {
					t.Fatalf("user %d rank %d: exact (%d,%v) approx (%d,%v)",
						ew.User, j, ew.Items[j].Item, ew.Items[j].Score, aw.Items[j].Item, aw.Items[j].Score)
				}
			}
		}
	}
}

// TestApproxPrunes: at nprobe 1 the request still succeeds and the
// answer is a plausible subset — and the responses land in different
// cache entries than exact mode's.
func TestApproxPrunes(t *testing.T) {
	s, _ := newTestServer(t, Config{ANN: annConfig(), CacheSize: 32})
	h := s.Handler()

	exact := `{"user":2,"n":4}`
	approx := `{"user":2,"n":4,"mode":"approx","nprobe":1}`

	if r := decode[RecommendResponse](t, postJSON(t, h, "/v1/recommend", exact)); r.Results[0].Cached {
		t.Fatal("first exact query claims cached")
	}
	// Same user in approx mode must MISS (distinct key), then hit.
	if r := decode[RecommendResponse](t, postJSON(t, h, "/v1/recommend", approx)); r.Results[0].Cached {
		t.Fatal("approx query hit the exact-mode cache entry")
	}
	if r := decode[RecommendResponse](t, postJSON(t, h, "/v1/recommend", approx)); !r.Results[0].Cached {
		t.Fatal("repeated approx query not cached")
	}
	// nprobe 0 canonicalizes to the index default — for this index
	// max(1, 6/8) = 1 — so it shares entries with an explicit nprobe 1.
	noProbe := `{"user":2,"n":4,"mode":"approx"}`
	if r := decode[RecommendResponse](t, postJSON(t, h, "/v1/recommend", noProbe)); !r.Results[0].Cached {
		t.Fatal("nprobe 0 did not canonicalize onto the default-probe cache entry")
	}
}

// TestApproxValidation: the mode/nprobe knobs reject malformed and
// unsupported combinations with 400s.
func TestApproxValidation(t *testing.T) {
	withIndex, _ := newTestServer(t, Config{ANN: annConfig()})
	without, _ := newTestServer(t, Config{})

	cases := []struct {
		name string
		h    http.Handler
		body string
		want string
	}{
		{"bad mode", withIndex.Handler(), `{"user":1,"mode":"fuzzy"}`, "mode must be"},
		{"negative nprobe", withIndex.Handler(), `{"user":1,"mode":"approx","nprobe":-2}`, "non-negative"},
		{"nprobe without approx", withIndex.Handler(), `{"user":1,"nprobe":3}`, "requires mode approx"},
		{"no index", without.Handler(), `{"user":1,"mode":"approx"}`, "not enabled"},
	}
	for _, tc := range cases {
		w := postJSON(t, tc.h, "/v1/recommend", tc.body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, w.Code)
			continue
		}
		if e := decode[errorResponse](t, w); !strings.Contains(e.Error, tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, e.Error, tc.want)
		}
	}
}

// TestInfoReportsANN: /v1/info carries the index shape when enabled and
// a null when not.
func TestInfoReportsANN(t *testing.T) {
	s, _ := newTestServer(t, Config{ANN: annConfig()})
	info := decode[map[string]any](t, get(t, s.Handler(), "/v1/info"))
	a, ok := info["ann"].(map[string]any)
	if !ok {
		t.Fatalf("info ann = %v", info["ann"])
	}
	if a["clusters"] != 6.0 || a["default_nprobe"] != 1.0 || a["int8"] != false {
		t.Errorf("ann info %v", a)
	}
	if bs, ok := a["build_seconds"].(float64); !ok || bs < 0 {
		t.Errorf("ann build_seconds %v", a["build_seconds"])
	}

	plain, _ := newTestServer(t, Config{})
	info = decode[map[string]any](t, get(t, plain.Handler(), "/v1/info"))
	if info["ann"] != nil {
		t.Errorf("ann info on an exact-only server: %v", info["ann"])
	}
}

// TestApproxMetrics: approximate traffic books the ann counters through
// the server's registry.
func TestApproxMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	ann.EnableMetrics(reg)
	defer ann.EnableMetrics(nil)
	s, _ := newTestServer(t, Config{ANN: annConfig()})
	h := s.Handler()
	if w := postJSON(t, h, "/v1/recommend", `{"users":[0,1,2],"mode":"approx","nprobe":2}`); w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	snap := reg.Snapshot()
	if got := snap["ann_queries_total"].(float64); got != 3 {
		t.Errorf("ann_queries_total = %v, want 3", got)
	}
	if got := snap["ann_clusters_probed_total"].(float64); got != 6 {
		t.Errorf("ann_clusters_probed_total = %v, want 6", got)
	}
	if got := snap["ann_candidates_scored_total"].(float64); got <= 0 {
		t.Errorf("ann_candidates_scored_total = %v", got)
	}
}

// TestConcurrentApproxAndReload hammers approximate /v1/recommend while
// reloads rebuild the index. Under -race this checks that index builds
// inside model snapshots never share state with in-flight searches; the
// consistency check pins every answer to exactly one version's index
// (full probe ⇒ answers must match that version's exact ranking).
func TestConcurrentApproxAndReload(t *testing.T) {
	embA, g := testEmbedding(t)
	embB := altEmbedding(t)
	var reloads atomic.Int64
	s, err := New(embA, g, Config{
		Metrics:   obs.NewRegistry(),
		CacheSize: 64,
		ANN:       annConfig(),
		Reload: func() (*core.Embedding, *bigraph.Graph, error) {
			if reloads.Add(1)%2 == 1 {
				return embB, g, nil
			}
			return embA, g, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	wantByParity := map[int][]ScoredItem{
		1: expectTopN(embA, g, 3, 5),
		0: expectTopN(embB, g, 3, 5),
	}

	const queriers = 8
	const queriesEach = 40
	body := `{"users":[3],"n":5,"mode":"approx","nprobe":6}`
	var wg sync.WaitGroup
	errs := make(chan string, queriers*queriesEach)
	for range queriers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range queriesEach {
				req := httptest.NewRequest("POST", "/v1/recommend", strings.NewReader(body))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					errs <- fmt.Sprintf("status %d: %s", w.Code, w.Body)
					continue
				}
				if got := w.Header().Get(retrievalModeHeader); got != modeApprox {
					errs <- fmt.Sprintf("%s = %q", retrievalModeHeader, got)
					continue
				}
				v, err := strconv.Atoi(w.Header().Get("X-Model-Version"))
				if err != nil {
					errs <- "missing X-Model-Version"
					continue
				}
				resp := RecommendResponse{}
				if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
					errs <- err.Error()
					continue
				}
				want := wantByParity[v%2]
				if fmt.Sprint(resp.Results[0].Items) != fmt.Sprint(want) {
					errs <- fmt.Sprintf("v%d approx answer differs from that version's exact ranking", v)
				}
			}
		}()
	}

	for i := 0; i < 20; i++ {
		if w := postReload(t, h, ""); w.Code != http.StatusOK {
			t.Fatalf("reload %d: status %d: %s", i, w.Code, w.Body)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
