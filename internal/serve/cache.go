package serve

import (
	"container/list"
	"sync"
)

// lruCache is a size-bounded LRU over recommendation lists. Repeated
// recommend queries for the same (user, n, mask) tuple are the common
// hot pattern in serving — popular users get re-requested — and a full
// scoring pass streams the entire item side, so memoizing the tiny
// result list is a large constant-factor win. The bound is an entry
// count, not bytes: every value is at most maxN scored items.
//
// Concurrency-safe; a nil *lruCache never hits (caching disabled).
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val []ScoredItem
}

// newLRU returns a cache bounded to cap entries, or nil when cap <= 0.
func newLRU(cap int) *lruCache {
	if cap <= 0 {
		return nil
	}
	return &lruCache{cap: cap, ll: list.New(), items: make(map[string]*list.Element, cap)}
}

// get returns the cached value and refreshes its recency.
func (c *lruCache) get(key string) ([]ScoredItem, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// add inserts or refreshes a value, evicting the least recently used
// entry when full. Values are stored as-is: callers must not mutate a
// slice after handing it over (the handlers build a fresh slice per
// miss and only ever read it back).
func (c *lruCache) add(key string, val []ScoredItem) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// purge drops every entry. Called on model swap: keys are scoped to the
// model version, so the stale entries could never be served again — the
// purge just returns their memory ahead of LRU eviction.
func (c *lruCache) purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
}

// len returns the current entry count.
func (c *lruCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
