package serve

// Serve-side diagnostics: the /debug/requests endpoints over the
// tail-sampled trace retention ring, and the latency snapshot the
// regression gate (cmd/gebe-regress) compares across commits.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	"gebe/internal/obs"
)

// debugRequestsResponse is the GET /debug/requests body: what the ring
// currently retains, slowest first, span trees omitted (fetch one by id
// for the full tree).
type debugRequestsResponse struct {
	Capacity int              `json:"capacity"`
	Count    int              `json:"count"`
	Requests []obs.TraceEntry `json:"requests"`
}

// handleDebugRequests summarizes the retained request traces. The
// route bypasses load shedding (lifecycle.bypassed): it exists to be
// read while the server is misbehaving.
func (s *Server) handleDebugRequests(w http.ResponseWriter, _ *http.Request) {
	entries := s.tlog.Entries()
	s.writeJSON(w, http.StatusOK, debugRequestsResponse{
		Capacity: s.tlog.Cap(),
		Count:    len(entries),
		Requests: entries,
	})
}

// handleDebugRequest returns one retained request in full — metadata
// plus the span tree, the same schema obs.Trace.WriteJSON emits for
// solver runs, so the same tooling reads both.
func (s *Server) handleDebugRequest(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.tlog.Get(id)
	if !ok {
		s.fail(w, http.StatusNotFound,
			fmt.Errorf("request %q not retained (kept: %d slowest + recent errored)", id, s.tlog.Cap()))
		return
	}
	s.writeJSON(w, http.StatusOK, e)
}

// --- latency snapshot ------------------------------------------------

// EndpointLatency is one endpoint's latency distribution at snapshot
// time: total request count, cumulative seconds, and interpolated
// quantiles from the serve histogram's buckets. Empty marks endpoints
// that saw no traffic: their quantiles are all 0, which would otherwise
// read as "instant" — the marker keeps snapshot consumers (and the
// regression gate's min-count skip) honest about the difference between
// measured-fast and never-measured.
type EndpointLatency struct {
	Count      uint64             `json:"count"`
	SumSeconds float64            `json:"sum_seconds"`
	Empty      bool               `json:"empty,omitempty"`
	Quantiles  map[string]float64 `json:"quantiles"`
}

// SnapshotQuantiles are the quantiles a latency snapshot records and
// the regression gate compares.
var SnapshotQuantiles = map[string]float64{"p50": 0.50, "p90": 0.90, "p99": 0.99}

// LatencySnapshot is the machine-readable latency record one serve run
// leaves behind (results/SERVE_LATENCY.json): per-endpoint histogram
// quantiles plus the lifecycle counters, stamped with build provenance
// so two snapshots are only ever compared knowing which commits they
// measure. The FOBE/HOBE line of work makes the same point about
// embedding-quality numbers: a comparison is only meaningful when the
// measurement pipeline is controlled — this is that discipline applied
// to our latency claims.
type LatencySnapshot struct {
	CreatedAt     time.Time                  `json:"created_at"`
	Build         obs.Build                  `json:"build"`
	UptimeSeconds float64                    `json:"uptime_seconds"`
	Endpoints     map[string]EndpointLatency `json:"endpoints"`
	Counters      map[string]float64         `json:"counters"`
}

// LatencySnapshot captures the server's current latency state.
func (s *Server) LatencySnapshot() LatencySnapshot {
	snap := LatencySnapshot{
		CreatedAt:     time.Now().UTC(),
		Build:         obs.BuildInfo(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Endpoints:     make(map[string]EndpointLatency, len(endpoints)),
		Counters: map[string]float64{
			"shed":       s.m.shed.Value(),
			"deadline":   s.m.deadlines.Value(),
			"panics":     s.m.panics.Value(),
			"cache_hit":  s.m.cacheHit.Value(),
			"cache_miss": s.m.cacheMiss.Value(),
		},
	}
	for _, ep := range endpoints {
		h := s.m.seconds[ep]
		lat := EndpointLatency{
			Count:      h.Count(),
			SumSeconds: h.Sum(),
			Empty:      h.Count() == 0,
			Quantiles:  make(map[string]float64, len(SnapshotQuantiles)),
		}
		for name, q := range SnapshotQuantiles {
			lat.Quantiles[name] = h.Quantile(q)
		}
		snap.Endpoints[ep] = lat
	}
	return snap
}

// WriteLatencySnapshot persists the snapshot as indented JSON with
// sorted keys — committable and diffable.
func (s *Server) WriteLatencySnapshot(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.LatencySnapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SortedEndpoints returns the instrumented endpoint names in stable
// order, the iteration order snapshot consumers should use.
func SortedEndpoints(snap LatencySnapshot) []string {
	names := make([]string, 0, len(snap.Endpoints))
	for ep := range snap.Endpoints {
		names = append(names, ep)
	}
	sort.Strings(names)
	return names
}
