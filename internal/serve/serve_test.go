package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gebe/internal/ann"
	"gebe/internal/bigraph"
	"gebe/internal/budget"
	"gebe/internal/core"
	"gebe/internal/dense"
	"gebe/internal/eval"
	"gebe/internal/obs"
)

// testEmbedding builds a small deterministic embedding plus a training
// graph whose edges give a few users non-empty exclusion sets.
func testEmbedding(t testing.TB) (*core.Embedding, *bigraph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewPCG(42, 0))
	emb := &core.Embedding{
		U:      dense.Random(20, 8, rng),
		V:      dense.Random(35, 8, rng),
		Method: "gebep",
		// Distinctive diagnostics so /v1/info has something to report.
		SigmaScale: 1.5, Sweeps: 7, Converged: true, StopReason: "converged",
	}
	edges := []bigraph.Edge{
		{U: 0, V: 1, W: 1}, {U: 0, V: 2, W: 1}, {U: 0, V: 3, W: 1},
		{U: 5, V: 10, W: 1}, {U: 5, V: 11, W: 2},
	}
	g, err := bigraph.New(20, 35, edges)
	if err != nil {
		t.Fatal(err)
	}
	return emb, g
}

// newTestServer builds a Server with its own registry (no cross-test
// metric pollution) and returns it with the registry for assertions.
func newTestServer(t *testing.T, cfg Config) (*Server, *obs.Registry) {
	t.Helper()
	emb, g := testEmbedding(t)
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	s, err := New(emb, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, reg
}

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	return w
}

func decode[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(w.Body).Decode(&v); err != nil {
		t.Fatalf("decoding %q: %v", w.Body.String(), err)
	}
	return v
}

func TestRecommendMatchesEvalScorer(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	w := postJSON(t, h, "/v1/recommend", `{"users":[0,5,7],"n":6}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	resp := decode[RecommendResponse](t, w)
	if resp.N != 6 || len(resp.Results) != 3 {
		t.Fatalf("response shape: %+v", resp)
	}
	// The served list must match the eval scorer exactly: same ids, same
	// scores, training items masked (the server has a training graph, so
	// mask_train defaults to true).
	sc := eval.NewScorer(s.model().emb.U, s.model().emb.V)
	for i, user := range []int{0, 5, 7} {
		ids, scores := sc.TopN(user, 6, s.model().trainItems[user])
		got := resp.Results[i]
		if got.User != user || len(got.Items) != len(ids) {
			t.Fatalf("user %d: got %+v want ids %v", user, got, ids)
		}
		for j := range ids {
			if got.Items[j].Item != ids[j] || got.Items[j].Score != scores[j] {
				t.Errorf("user %d item %d: got (%d,%v) want (%d,%v)",
					user, j, got.Items[j].Item, got.Items[j].Score, ids[j], scores[j])
			}
		}
		for _, it := range got.Items {
			if s.model().trainItems[user][it.Item] {
				t.Errorf("user %d: training item %d recommended", user, it.Item)
			}
		}
	}

	// mask_train=false must surface the raw ranking.
	w = postJSON(t, h, "/v1/recommend", `{"user":0,"n":4,"mask_train":false}`)
	resp = decode[RecommendResponse](t, w)
	ids, _ := sc.TopN(0, 4, nil)
	for j, it := range resp.Results[0].Items {
		if it.Item != ids[j] {
			t.Errorf("unmasked item %d: got %d want %d", j, it.Item, ids[j])
		}
	}
}

func TestRecommendValidation(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxBatch: 4, MaxN: 8})
	h := s.Handler()
	cases := []struct {
		name, body string
	}{
		{"bad json", `{"users":`},
		{"unknown field", `{"userz":[1]}`},
		{"empty users", `{"users":[]}`},
		{"user and users", `{"user":1,"users":[2]}`},
		{"out of range user", `{"users":[99]}`},
		{"negative user", `{"users":[-1]}`},
		{"negative n", `{"users":[1],"n":-2}`},
		{"n over limit", `{"users":[1],"n":9}`},
		{"batch over limit", `{"users":[1,2,3,4,5]}`},
	}
	for _, tc := range cases {
		if w := postJSON(t, h, "/v1/recommend", tc.body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, w.Code, w.Body)
		} else if decode[errorResponse](t, w).Error == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}
	// Method and route guards from the mux.
	if w := get(t, h, "/v1/recommend"); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET recommend: status %d", w.Code)
	}
	if w := get(t, h, "/nope"); w.Code != http.StatusNotFound {
		t.Errorf("unknown route: status %d", w.Code)
	}

	// mask_train on a server without a training graph is a client error.
	emb, _ := testEmbedding(t)
	bare, err := New(emb, nil, Config{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if w := postJSON(t, bare.Handler(), "/v1/recommend", `{"user":0,"mask_train":true}`); w.Code != http.StatusBadRequest {
		t.Errorf("mask_train without train: status %d", w.Code)
	}
	// Without a training graph the default is unmasked and must work.
	if w := postJSON(t, bare.Handler(), "/v1/recommend", `{"user":0}`); w.Code != http.StatusOK {
		t.Errorf("bare recommend: status %d: %s", w.Code, w.Body)
	}
}

func TestRecommendCache(t *testing.T) {
	s, reg := newTestServer(t, Config{CacheSize: 8})
	h := s.Handler()
	body := `{"users":[3,4],"n":5}`
	first := decode[RecommendResponse](t, postJSON(t, h, "/v1/recommend", body))
	for _, r := range first.Results {
		if r.Cached {
			t.Errorf("first request reported cached for user %d", r.User)
		}
	}
	second := decode[RecommendResponse](t, postJSON(t, h, "/v1/recommend", body))
	for i, r := range second.Results {
		if !r.Cached {
			t.Errorf("second request not cached for user %d", r.User)
		}
		if fmt.Sprint(r.Items) != fmt.Sprint(first.Results[i].Items) {
			t.Errorf("cached items differ: %v vs %v", r.Items, first.Results[i].Items)
		}
	}
	if hits := reg.Counter("serve_cache_hit_total", "").Value(); hits != 2 {
		t.Errorf("cache hits = %v, want 2", hits)
	}
	if misses := reg.Counter("serve_cache_miss_total", "").Value(); misses != 2 {
		t.Errorf("cache misses = %v, want 2", misses)
	}
	// A different n is a different cache entry.
	third := decode[RecommendResponse](t, postJSON(t, h, "/v1/recommend", `{"users":[3],"n":2}`))
	if third.Results[0].Cached {
		t.Error("different n answered from cache")
	}
	if len(third.Results[0].Items) != 2 {
		t.Errorf("n=2 returned %d items", len(third.Results[0].Items))
	}
}

func TestSimilar(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	for _, side := range []string{"u", "v"} {
		m, norms := s.model().emb.U, s.model().uNorms
		if side == "v" {
			m, norms = s.model().emb.V, s.model().vNorms
		}
		id, n := 3, 5
		w := get(t, h, fmt.Sprintf("/v1/similar?side=%s&id=%d&n=%d", side, id, n))
		if w.Code != http.StatusOK {
			t.Fatalf("side %s: status %d: %s", side, w.Code, w.Body)
		}
		resp := decode[similarResponse](t, w)
		if resp.Side != side || resp.ID != id || len(resp.Neighbors) != n {
			t.Fatalf("side %s: shape %+v", side, resp)
		}
		// Exact cosine check against a naive loop, and ranking sanity.
		prev := math.Inf(1)
		for _, nb := range resp.Neighbors {
			if nb.Item == id {
				t.Errorf("side %s: self in neighbors", side)
			}
			want := dense.Dot(m.Row(id), m.Row(nb.Item)) / (norms[id] * norms[nb.Item])
			if nb.Score != want {
				t.Errorf("side %s neighbor %d: score %v want %v", side, nb.Item, nb.Score, want)
			}
			if nb.Score > prev {
				t.Errorf("side %s: scores not descending", side)
			}
			prev = nb.Score
		}
	}
	// Default side is u; default n applies.
	resp := decode[similarResponse](t, get(t, h, "/v1/similar?id=0"))
	if resp.Side != "u" || len(resp.Neighbors) != 10 {
		t.Errorf("defaults: %+v", resp)
	}
	for _, bad := range []string{
		"/v1/similar",                // missing id
		"/v1/similar?id=zap",         // non-integer id
		"/v1/similar?id=99&side=u",   // out of range
		"/v1/similar?id=1&side=w",    // bad side
		"/v1/similar?id=1&n=-3",      // bad n
		"/v1/similar?id=1&n=1000000", // n over limit
	} {
		if w := get(t, h, bad); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, w.Code)
		}
	}
}

// TestSimilarIsolatedVertex is the zero-norm cosine regression test: an
// isolated vertex embeds as the all-zero row, its norm is 0, and the
// naive cosine 0/0 is NaN — which encoding/json rejects, turning one
// degenerate vertex into a 200-with-empty-body for the whole response.
// The guard defines cosine against (or from) a zero row as 0.
func TestSimilarIsolatedVertex(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 3))
	emb := &core.Embedding{U: dense.Random(6, 4, rng), V: dense.Random(8, 4, rng), Method: "gebep"}
	// Vertex u2 and item v5 are isolated: zero rows on both sides.
	for c := 0; c < 4; c++ {
		emb.U.Row(2)[c] = 0
		emb.V.Row(5)[c] = 0
	}
	s, err := New(emb, nil, Config{Metrics: obs.NewRegistry(), MaxN: 10})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	cases := []struct {
		name, side string
		id         int
		// wantZero lists neighbor ids whose score must be exactly 0;
		// allZero asserts the entire list scored 0.
		wantZero []int
		allZero  bool
	}{
		{name: "isolated u queried", side: "u", id: 2, allZero: true},
		{name: "isolated v queried", side: "v", id: 5, allZero: true},
		{name: "u list contains isolated", side: "u", id: 0, wantZero: []int{2}},
		{name: "v list contains isolated", side: "v", id: 1, wantZero: []int{5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := get(t, h, fmt.Sprintf("/v1/similar?side=%s&id=%d&n=7", tc.side, tc.id))
			if w.Code != http.StatusOK {
				t.Fatalf("status %d: %s", w.Code, w.Body)
			}
			// A NaN anywhere makes encoding/json abort mid-response; a
			// successful decode of the full body is itself the core assert.
			resp := decode[similarResponse](t, w)
			if len(resp.Neighbors) == 0 {
				t.Fatal("empty neighbor list")
			}
			scores := make(map[int]float64, len(resp.Neighbors))
			for _, nb := range resp.Neighbors {
				scores[nb.Item] = nb.Score
				if math.IsNaN(nb.Score) || math.IsInf(nb.Score, 0) {
					t.Errorf("neighbor %d: non-finite score %v", nb.Item, nb.Score)
				}
				if tc.allZero && nb.Score != 0 {
					t.Errorf("neighbor %d of isolated vertex scored %v, want 0", nb.Item, nb.Score)
				}
			}
			for _, id := range tc.wantZero {
				if sc, ok := scores[id]; ok && sc != 0 {
					t.Errorf("isolated neighbor %d scored %v, want 0", id, sc)
				}
			}
		})
	}
}

func TestScorePairs(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	w := postJSON(t, h, "/v1/score", `{"pairs":[[0,1],[5,10],[19,34]]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	resp := decode[scoreResponse](t, w)
	emb := s.model().emb
	want := []float64{emb.Score(0, 1), emb.Score(5, 10), emb.Score(19, 34)}
	if len(resp.Scores) != len(want) {
		t.Fatalf("got %d scores", len(resp.Scores))
	}
	for i := range want {
		if resp.Scores[i] != want[i] {
			t.Errorf("score[%d] = %v, want %v", i, resp.Scores[i], want[i])
		}
	}
	for _, bad := range []string{
		`{"pairs":[]}`,
		`{"pairs":[[0,99]]}`,
		`{"pairs":[[-1,0]]}`,
	} {
		if w := postJSON(t, h, "/v1/score", bad); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, w.Code)
		}
	}
}

func TestHealthzAndInfo(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxInflight: 3, CacheSize: 4, Deadline: time.Second})
	h := s.Handler()
	hz := decode[map[string]any](t, get(t, h, "/v1/healthz"))
	if hz["status"] != "ok" {
		t.Errorf("healthz: %v", hz)
	}
	if _, ok := hz["uptime_seconds"].(float64); !ok {
		t.Errorf("healthz uptime missing: %v", hz)
	}
	info := decode[map[string]any](t, get(t, h, "/v1/info"))
	for key, want := range map[string]any{
		"method": "gebep", "users": 20.0, "items": 35.0, "k": 8.0,
		"sigma_scale": 1.5, "sweeps": 7.0, "converged": true,
		"stop_reason": "converged", "train_edges": 5.0,
		"max_inflight": 3.0, "cache_size": 4.0, "deadline_ms": 1000.0,
	} {
		if info[key] != want {
			t.Errorf("info[%s] = %v, want %v", key, info[key], want)
		}
	}
}

func TestDeadline503(t *testing.T) {
	// A 1ns budget is blown before the first scoring tile: the
	// checkpoint fires deterministically. similar and score map it to
	// 503; recommend degrades to a truncated 200 instead (every list is
	// droppable independently, so partial answers beat none).
	s, reg := newTestServer(t, Config{Deadline: time.Nanosecond})
	h := s.Handler()
	for _, req := range []func() *httptest.ResponseRecorder{
		func() *httptest.ResponseRecorder { return get(t, h, "/v1/similar?id=1") },
		func() *httptest.ResponseRecorder { return postJSON(t, h, "/v1/score", `{"pairs":[[0,0]]}`) },
	} {
		w := req()
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503: %s", w.Code, w.Body)
		}
		if w.Header().Get("Retry-After") == "" {
			t.Error("503 without Retry-After")
		}
	}
	if got := reg.Counter("serve_deadline_total", "").Value(); got != 2 {
		t.Errorf("deadline counter = %v, want 2", got)
	}
	w := postJSON(t, h, "/v1/recommend", `{"user":1}`)
	if w.Code != http.StatusOK {
		t.Fatalf("recommend under blown budget: status %d, want 200: %s", w.Code, w.Body)
	}
	if w.Header().Get(TruncatedHeader) != "true" {
		t.Errorf("recommend under blown budget: missing %s header", TruncatedHeader)
	}
	resp := decode[RecommendResponse](t, w)
	if !resp.Truncated {
		t.Error("recommend under blown budget: truncated flag not set")
	}
	if len(resp.Results) != 1 || resp.Results[0].User != 1 || resp.Results[0].Items != nil {
		t.Errorf("truncated results = %+v, want the named user with null items", resp.Results)
	}
	if got := reg.Counter("serve_truncated_total", "").Value(); got != 1 {
		t.Errorf("truncated counter = %v, want 1", got)
	}
	// healthz does no scoring and must stay 200 under the same budget.
	if w := get(t, h, "/v1/healthz"); w.Code != http.StatusOK {
		t.Errorf("healthz under deadline: status %d", w.Code)
	}
}

// TestRecommendTruncatedMidBatch drives both retrieval paths into a
// deterministic mid-batch budget expiry via the testCheckpoint hook:
// the response must be a 200 carrying the completed prefix, the
// truncated flag, and the X-Gebe-Truncated header — never a 503 that
// throws finished work away.
func TestRecommendTruncatedMidBatch(t *testing.T) {
	users := make([]int, 20)
	for i := range users {
		users[i] = i
	}
	body, _ := json.Marshal(users)
	cases := []struct {
		name string
		mode string
		// allow is how many checkpoint calls succeed before the budget
		// "expires". Exact checks once per 16-user GEMM tile, approx once
		// per user.
		allow        int
		wantComplete int
	}{
		{name: "exact first tile lands", mode: "exact", allow: 1, wantComplete: 16},
		{name: "approx two users land", mode: "approx", allow: 2, wantComplete: 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			testCheckpoint = func() func() error {
				calls := 0
				return func() error {
					if calls++; calls > tc.allow {
						return budget.ErrExceeded
					}
					return nil
				}
			}
			defer func() { testCheckpoint = nil }()
			s, reg := newTestServer(t, Config{ANN: &ann.Config{Clusters: 4, Seed: 1}})
			req := fmt.Sprintf(`{"users":%s,"mode":%q}`, body, tc.mode)
			w := postJSON(t, s.Handler(), "/v1/recommend", req)
			if w.Code != http.StatusOK {
				t.Fatalf("status %d, want 200: %s", w.Code, w.Body)
			}
			if w.Header().Get(TruncatedHeader) != "true" {
				t.Errorf("missing %s header", TruncatedHeader)
			}
			resp := decode[RecommendResponse](t, w)
			if !resp.Truncated {
				t.Error("truncated flag not set")
			}
			if len(resp.Results) != len(users) {
				t.Fatalf("%d results, want %d (every requested user named)", len(resp.Results), len(users))
			}
			complete := 0
			for i, r := range resp.Results {
				if r.User != users[i] {
					t.Fatalf("result %d is user %d, want %d", i, r.User, users[i])
				}
				if r.Items == nil {
					continue
				}
				complete++
				if i >= tc.wantComplete {
					t.Errorf("user %d ranked after the budget expired", r.User)
				}
				if len(r.Items) == 0 {
					t.Errorf("user %d has a complete but empty list", r.User)
				}
			}
			if complete != tc.wantComplete {
				t.Errorf("%d complete lists, want %d", complete, tc.wantComplete)
			}
			if got := reg.Counter("serve_truncated_total", "").Value(); got != 1 {
				t.Errorf("truncated counter = %v, want 1", got)
			}
			if got := reg.Counter("serve_deadline_total", "").Value(); got != 0 {
				t.Errorf("deadline counter = %v, want 0 (truncation is not a 503)", got)
			}
		})
	}
}

// TestShardedModelTrainSlicing: a shard is handed the FULL training
// graph (splitting the edge file would scramble ReadEdgeList's
// first-appearance indexing) and must slice it internally — global item
// ids remapped to shard-local rows, off-shard edges dropped.
func TestShardedModelTrainSlicing(t *testing.T) {
	emb, g := testEmbedding(t)
	// Cut V rows [10,20) of the 35-item embedding into a fake shard.
	sharded := *emb
	sharded.V = dense.New(10, emb.V.Cols)
	copy(sharded.V.Data, emb.V.Data[10*emb.V.Cols:20*emb.V.Cols])
	sharded.ShardIndex, sharded.ShardCount = 1, 3
	sharded.ShardOffset, sharded.ShardTotal = 10, 35
	m, err := newModel(1, &sharded, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// testEmbedding's train edges: user 0 → {1,2,3} (all off-shard),
	// user 5 → {10,11} (on-shard, local rows 0 and 1).
	if m.trainItems[0] != nil {
		t.Errorf("user 0 exclusions %v, want none (all items off-shard)", m.trainItems[0])
	}
	if !m.trainItems[5][0] || !m.trainItems[5][1] || len(m.trainItems[5]) != 2 {
		t.Errorf("user 5 exclusions %v, want local rows {0,1}", m.trainItems[5])
	}
	if m.trainEdges != 2 {
		t.Errorf("trainEdges = %d, want 2 (only on-shard edges kept)", m.trainEdges)
	}
	// The full train graph must validate against ShardTotal, not the
	// shard's own (smaller) V side.
	s, err := New(&sharded, g, Config{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	w := get(t, s.Handler(), "/v1/info")
	info := decode[map[string]any](t, w)
	sh, ok := info["shard"].(map[string]any)
	if !ok {
		t.Fatalf("/v1/info has no shard block: %v", info)
	}
	if sh["index"] != 1.0 || sh["count"] != 3.0 || sh["offset"] != 10.0 || sh["total"] != 35.0 {
		t.Errorf("shard block = %v", sh)
	}
}

// TestDeadlineHeader exercises X-Gebe-Deadline-Ms: a caller-propagated
// budget must bound requests on a server with no configured deadline,
// and a malformed value must be ignored rather than rejected.
func TestDeadlineHeader(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	send := func(path, body, header string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("POST", path, strings.NewReader(body))
		if header != "" {
			req.Header.Set(DeadlineHeader, header)
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w
	}
	// An already-spent caller budget expires the request immediately:
	// recommend degrades to truncated, similar stays a 503.
	if w := send("/v1/recommend", `{"user":1}`, "0"); w.Code != http.StatusOK || w.Header().Get(TruncatedHeader) != "true" {
		t.Errorf("spent header budget: status %d truncated %q, want 200/true", w.Code, w.Header().Get(TruncatedHeader))
	}
	req := httptest.NewRequest("GET", "/v1/similar?id=1", nil)
	req.Header.Set(DeadlineHeader, "0")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("similar under spent header budget: status %d, want 503", w.Code)
	}
	// A generous budget and a malformed value both leave the request
	// unconstrained.
	for _, hv := range []string{"60000", "soon", ""} {
		if w := send("/v1/recommend", `{"user":1}`, hv); w.Code != http.StatusOK || w.Header().Get(TruncatedHeader) != "" {
			t.Errorf("header %q: status %d truncated %q, want clean 200", hv, w.Code, w.Header().Get(TruncatedHeader))
		}
	}
}

func TestEndpointMetrics(t *testing.T) {
	s, reg := newTestServer(t, Config{})
	h := s.Handler()
	postJSON(t, h, "/v1/recommend", `{"user":1}`)
	postJSON(t, h, "/v1/recommend", `{"users":[]}`)
	get(t, h, "/v1/healthz")
	if got := reg.Counter("serve_status_recommend_200_total", "").Value(); got != 1 {
		t.Errorf("recommend 200 counter = %v, want 1", got)
	}
	if got := reg.Counter("serve_status_recommend_400_total", "").Value(); got != 1 {
		t.Errorf("recommend 400 counter = %v, want 1", got)
	}
	if got := reg.Histogram("serve_recommend_seconds", "", nil).Count(); got != 2 {
		t.Errorf("recommend histogram count = %v, want 2", got)
	}
	if got := reg.Histogram("serve_healthz_seconds", "", nil).Count(); got != 1 {
		t.Errorf("healthz histogram count = %v, want 1", got)
	}
	// The full metrics surface renders in the Prometheus text format.
	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"serve_inflight", "serve_shed_total", "serve_recommend_seconds_bucket"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("metrics output missing %s", name)
		}
	}
}
