package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"gebe/internal/obs"
)

// blockingHandler answers 200 after release closes, reporting each
// arrival on entered. healthz requests answer immediately so the
// bypass path stays testable while the rest of the server is wedged.
func blockingHandler(entered chan<- struct{}, release <-chan struct{}) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})
}

func TestShed429(t *testing.T) {
	s, reg := newTestServer(t, Config{MaxInflight: 1})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	ts := httptest.NewServer(s.lifecycle(blockingHandler(entered, release)))
	defer ts.Close()

	// Saturate the single slot.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/v1/recommend")
		if err != nil {
			t.Errorf("in-flight request: %v", err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("in-flight request finished %d after release", resp.StatusCode)
		}
	}()
	<-entered

	// The next request must shed immediately, not queue.
	resp, err := http.Get(ts.URL + "/v1/recommend")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Errorf("429 body %q not a JSON error", body)
	}
	if got := reg.Counter("serve_shed_total", "").Value(); got != 1 {
		t.Errorf("shed counter = %v, want 1", got)
	}

	// Liveness probes bypass the limiter even at capacity.
	hz, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Errorf("healthz at capacity: status %d, want 200", hz.StatusCode)
	}

	close(release)
	wg.Wait()
	// The slot frees after drain: a fresh request is served again.
	resp2, err := http.Get(ts.URL + "/v1/recommend")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("post-release request: status %d, want 200", resp2.StatusCode)
	}
}

func TestPanicRecovery(t *testing.T) {
	s, reg := newTestServer(t, Config{MaxInflight: 1})
	boom := http.HandlerFunc(func(http.ResponseWriter, *http.Request) { panic("scoring exploded") })
	h := s.lifecycle(boom)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/v1/similar?id=1", nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", w.Code)
	}
	if got := reg.Counter("serve_panics_total", "").Value(); got != 1 {
		t.Errorf("panic counter = %v, want 1", got)
	}
	if got := reg.Gauge("serve_inflight", "").Value(); got != 0 {
		t.Errorf("inflight gauge = %v after panic, want 0", got)
	}
	// The semaphore slot must have been released: the next request runs.
	ok := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) { w.WriteHeader(200) })
	w2 := httptest.NewRecorder()
	s.lifecycle(ok).ServeHTTP(w2, httptest.NewRequest("GET", "/v1/info", nil))
	if w2.Code != http.StatusOK {
		t.Errorf("request after panic: status %d, want 200", w2.Code)
	}
}

func TestGracefulDrain(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	stop := make(chan os.Signal, 1)
	runDone := make(chan error, 1)
	go func() { runDone <- Run(ln, blockingHandler(entered, release), stop, 5*time.Second, nil) }()

	reqDone := make(chan int, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/v1/recommend")
		if err != nil {
			reqDone <- -1
			return
		}
		resp.Body.Close()
		reqDone <- resp.StatusCode
	}()
	<-entered

	// SIGTERM with a request in flight: Run must keep draining, not exit.
	stop <- syscall.SIGTERM
	select {
	case err := <-runDone:
		t.Fatalf("Run returned %v with a request in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	// Releasing the handler lets the request finish 200 and Run exit nil.
	close(release)
	if code := <-reqDone; code != http.StatusOK {
		t.Errorf("drained request: status %d, want 200", code)
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Errorf("Run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after drain")
	}
}

// TestConcurrentLoad hammers the full handler stack from many
// goroutines with the race detector in mind: every lifecycle layer,
// the scorer pools, the LRU and the metrics registry run concurrently,
// and every response must be a well-formed 200 or a shed 429.
func TestConcurrentLoad(t *testing.T) {
	s, reg := newTestServer(t, Config{MaxInflight: 4, CacheSize: 16})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	const workers = 8
	const iters = 25
	var wg sync.WaitGroup
	var mu sync.Mutex
	statuses := make(map[int]int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var resp *http.Response
				var err error
				switch i % 4 {
				case 0:
					body := fmt.Sprintf(`{"users":[%d,%d],"n":5}`, (w+i)%20, i%20)
					resp, err = client.Post(ts.URL+"/v1/recommend", "application/json", strings.NewReader(body))
				case 1:
					resp, err = client.Get(fmt.Sprintf("%s/v1/similar?side=v&id=%d&n=3", ts.URL, i%35))
				case 2:
					body := fmt.Sprintf(`{"pairs":[[%d,%d]]}`, w%20, i%35)
					resp, err = client.Post(ts.URL+"/v1/score", "application/json", strings.NewReader(body))
				case 3:
					resp, err = client.Get(ts.URL + "/v1/healthz")
				}
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					t.Errorf("worker %d: status %d: %s", w, resp.StatusCode, body)
					return
				}
				if !json.Valid(body) {
					t.Errorf("worker %d: invalid JSON body %q", w, body)
					return
				}
				mu.Lock()
				statuses[resp.StatusCode]++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	if statuses[http.StatusOK] == 0 {
		t.Fatal("no request succeeded under load")
	}
	if got := reg.Gauge("serve_inflight", "").Value(); got != 0 {
		t.Errorf("inflight gauge = %v after load, want 0", got)
	}
	// Accounting must balance: every answered request shows up either in
	// a per-endpoint status counter or in the shed counter.
	total := 0.0
	for _, ep := range endpoints {
		for _, code := range []int{200, 400, 429, 503} {
			total += reg.Counter(fmt.Sprintf("serve_status_%s_%d_total", ep, code), "").Value()
		}
	}
	total += reg.Counter("serve_shed_total", "").Value()
	if want := float64(statuses[200] + statuses[429]); total != want {
		t.Errorf("status counters sum to %v, want %v (statuses %v)", total, want, statuses)
	}
}

// discardWriter is a zero-allocation ResponseWriter for alloc-count
// tests: the header map is preallocated and bodies vanish.
type discardWriter struct{ h http.Header }

func (d *discardWriter) Header() http.Header         { return d.h }
func (d *discardWriter) Write(b []byte) (int, error) { return len(b), nil }
func (d *discardWriter) WriteHeader(int)             {}

// TestStatusRecorderForwardsFlushAndCountsBytes pins the satellite fix:
// wrapping the ResponseWriter must not lose http.Flusher, and the
// recorder reports how many body bytes the handler wrote (the access
// log's bytes field).
func TestStatusRecorderForwardsFlushAndCountsBytes(t *testing.T) {
	under := httptest.NewRecorder()
	rec := &statusRecorder{ResponseWriter: under}

	// The wrapper must satisfy Flusher statically and forward dynamically.
	var flusher http.Flusher = rec
	flusher.Flush()
	if !under.Flushed {
		t.Error("Flush not forwarded to the underlying writer")
	}

	n, err := rec.Write([]byte("hello "))
	if n != 6 || err != nil {
		t.Fatalf("Write = %d, %v", n, err)
	}
	rec.Write([]byte("world"))
	if rec.bytes != 11 {
		t.Errorf("bytes = %d, want 11", rec.bytes)
	}
	if rec.code != http.StatusOK {
		t.Errorf("implicit code = %d, want 200", rec.code)
	}
	// Flushing a non-Flusher base must not panic.
	(&statusRecorder{ResponseWriter: &discardWriter{h: make(http.Header)}}).Flush()
}

// TestHealthzTracingAllocFree guards the liveness fast path: with
// request tracing fully enabled, a /v1/healthz request must pass the
// tracing layer without a single allocation — no id mint, no trace, no
// recorder.
func TestHealthzTracingAllocFree(t *testing.T) {
	s, _ := newTestServer(t, Config{TraceRequests: 64})
	h := s.traced(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	req := httptest.NewRequest("GET", "/v1/healthz", nil)
	w := &discardWriter{h: make(http.Header)}
	if allocs := testing.AllocsPerRun(200, func() { h.ServeHTTP(w, req) }); allocs != 0 {
		t.Errorf("healthz through tracing layer allocates %.1f/op, want 0", allocs)
	}
	// Same for the diagnostics surface itself.
	req = httptest.NewRequest("GET", "/debug/requests", nil)
	if allocs := testing.AllocsPerRun(200, func() { h.ServeHTTP(w, req) }); allocs != 0 {
		t.Errorf("/debug through tracing layer allocates %.1f/op, want 0", allocs)
	}
}

// TestShedTracingAllocFree guards the shed fast path: enabling request
// tracing must add zero allocations to a shed request — shedding
// happens above the tracing layer, so a 429 never mints an id or a
// trace.
func TestShedTracingAllocFree(t *testing.T) {
	shedAllocs := func(traceRequests int) float64 {
		s, _ := newTestServer(t, Config{MaxInflight: 1, TraceRequests: traceRequests})
		s.limiter <- struct{}{} // saturate so every request sheds
		h := s.lifecycle(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
			panic("shed request must not reach the handler")
		}))
		req := httptest.NewRequest("POST", "/v1/recommend", nil)
		w := &discardWriter{h: make(http.Header)}
		return testing.AllocsPerRun(200, func() { h.ServeHTTP(w, req) })
	}
	traced, untraced := shedAllocs(64), shedAllocs(0)
	if traced != untraced {
		t.Errorf("tracing adds allocations to the shed path: %.1f/op with tracing, %.1f/op without",
			traced, untraced)
	}
}

// BenchmarkHealthzFastPath and BenchmarkShedFastPath are the
// observable form of the alloc guards: run with -benchmem, both must
// report the tracing layer adding 0 allocs/op.
func BenchmarkHealthzFastPath(b *testing.B) {
	emb, g := testEmbedding(b)
	s, err := New(emb, g, Config{TraceRequests: 64, Metrics: obs.NewRegistry()})
	if err != nil {
		b.Fatal(err)
	}
	h := s.traced(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	req := httptest.NewRequest("GET", "/v1/healthz", nil)
	w := &discardWriter{h: make(http.Header)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(w, req)
	}
}

func BenchmarkShedFastPath(b *testing.B) {
	emb, g := testEmbedding(b)
	s, err := New(emb, g, Config{MaxInflight: 1, TraceRequests: 64, Metrics: obs.NewRegistry()})
	if err != nil {
		b.Fatal(err)
	}
	s.limiter <- struct{}{}
	h := s.lifecycle(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	req := httptest.NewRequest("POST", "/v1/recommend", nil)
	w := &discardWriter{h: make(http.Header)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(w, req)
	}
}
