package serve

import (
	"fmt"
	"sync"
	"testing"
)

func items(v float64) []ScoredItem { return []ScoredItem{{Item: 1, Score: v}} }

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	c.add("a", items(1))
	c.add("b", items(2))
	c.add("c", items(3)) // evicts a, the least recently used
	if _, ok := c.get("a"); ok {
		t.Error("a survived past capacity")
	}
	if v, ok := c.get("b"); !ok || v[0].Score != 2 {
		t.Error("b missing")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}

	// get refreshes recency: after touching b, adding d evicts c.
	c.get("b")
	c.add("d", items(4))
	if _, ok := c.get("c"); ok {
		t.Error("c survived although b was fresher")
	}
	if _, ok := c.get("b"); !ok {
		t.Error("recently used b evicted")
	}

	// add on an existing key updates in place without growing.
	c.add("b", items(9))
	if v, _ := c.get("b"); v[0].Score != 9 {
		t.Error("update lost")
	}
	if c.len() != 2 {
		t.Errorf("len after update = %d, want 2", c.len())
	}
}

func TestLRUDisabled(t *testing.T) {
	for _, c := range []*lruCache{nil, newLRU(0), newLRU(-3)} {
		c.add("a", items(1))
		if _, ok := c.get("a"); ok {
			t.Error("disabled cache hit")
		}
		if c.len() != 0 {
			t.Error("disabled cache has length")
		}
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := newLRU(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (w+i)%16)
				if v, ok := c.get(key); ok && len(v) == 0 {
					t.Error("empty cached value")
				}
				c.add(key, items(float64(i)))
			}
		}(w)
	}
	wg.Wait()
	if c.len() > 8 {
		t.Errorf("cache overran its bound: %d", c.len())
	}
}
