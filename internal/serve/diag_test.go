package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gebe/internal/obs"
)

// spanNames flattens a span tree's child names (depth-first).
func spanNames(s *obs.Span) []string {
	if s == nil {
		return nil
	}
	var names []string
	for _, c := range s.Children {
		names = append(names, c.Name)
		names = append(names, spanNames(c)...)
	}
	return names
}

func count(names []string, want string) int {
	n := 0
	for _, name := range names {
		if name == want {
			n++
		}
	}
	return n
}

// TestRequestTraceRetrievableByID is the tentpole's acceptance path: a
// /v1/recommend request answers with an X-Request-ID, and that id
// fetches the full span tree — cache → score (tiles + ranking) →
// encode, attributed with batch and tile counts — from
// /debug/requests/{id}.
func TestRequestTraceRetrievableByID(t *testing.T) {
	s, _ := newTestServer(t, Config{TraceRequests: 8})
	h := s.Handler()

	w := postJSON(t, h, "/v1/recommend", `{"users":[0,1,2,5,7,9],"n":5}`)
	if w.Code != http.StatusOK {
		t.Fatalf("recommend: %d %s", w.Code, w.Body)
	}
	id := w.Header().Get("X-Request-ID")
	if id == "" {
		t.Fatal("response carries no X-Request-ID")
	}

	// Summary lists the request.
	sum := get(t, h, "/debug/requests")
	if sum.Code != http.StatusOK {
		t.Fatalf("/debug/requests: %d %s", sum.Code, sum.Body)
	}
	summary := decode[debugRequestsResponse](t, sum)
	if summary.Capacity != 8 || summary.Count == 0 {
		t.Fatalf("summary = %+v, want capacity 8 and entries", summary)
	}
	found := false
	for _, e := range summary.Requests {
		if e.ID == id {
			found = true
			if e.Trace != nil {
				t.Error("summary entries must not carry span trees")
			}
			if e.Retained == "" {
				t.Error("summary entry missing retention reason")
			}
		}
	}
	if !found {
		t.Fatalf("request %s absent from summary %+v", id, summary.Requests)
	}

	// Full tree by id.
	one := get(t, h, "/debug/requests/"+id)
	if one.Code != http.StatusOK {
		t.Fatalf("/debug/requests/%s: %d %s", id, one.Code, one.Body)
	}
	entry := decode[obs.TraceEntry](t, one)
	if entry.ID != id || entry.Status != http.StatusOK || entry.Name != "recommend" {
		t.Fatalf("entry = %+v", entry)
	}
	if entry.Bytes <= 0 || entry.Elapsed <= 0 {
		t.Errorf("entry bytes=%d elapsed=%d, want both positive", entry.Bytes, entry.Elapsed)
	}
	if entry.Trace == nil || entry.Trace.Name != "recommend" {
		t.Fatalf("entry trace = %+v", entry.Trace)
	}
	names := spanNames(entry.Trace)
	for _, phase := range []string{"cache", "score", "encode"} {
		if count(names, phase) != 1 {
			t.Errorf("trace has %d %q spans, want 1 (tree: %v)", count(names, phase), phase, names)
		}
	}
	// 6 users → one 16-row tile; each scored user gets a rank span.
	if got := count(names, "score.tile"); got != 1 {
		t.Errorf("trace has %d score.tile spans, want 1 (tree: %v)", got, names)
	}
	if got := count(names, "rank"); got != 6 {
		t.Errorf("trace has %d rank spans, want 6 (tree: %v)", got, names)
	}
	// Attribute spot checks: the score span carries batch and tile
	// counts (JSON numbers decode as float64).
	var score *obs.Span
	for _, c := range entry.Trace.Children {
		if c.Name == "score" {
			score = c
		}
	}
	if score == nil {
		t.Fatal("no score child")
	}
	if score.Attrs["users"] != 6.0 || score.Attrs["tiles"] != 1.0 {
		t.Errorf("score attrs = %v, want users=6 tiles=1", score.Attrs)
	}
	tile := score.Children[0]
	if tile.Name != "score.tile" || tile.Attrs["users"] != 6.0 || tile.Attrs["items"] != 35.0 {
		t.Errorf("tile span = %s attrs %v, want score.tile users=6 items=35", tile.Name, tile.Attrs)
	}
}

func TestRequestIDPropagation(t *testing.T) {
	s, _ := newTestServer(t, Config{TraceRequests: 4})
	h := s.Handler()

	// A sane upstream id survives.
	req := httptest.NewRequest("GET", "/v1/similar?id=0&n=3", nil)
	req.Header.Set("X-Request-ID", "upstream-abc-123")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if got := w.Header().Get("X-Request-ID"); got != "upstream-abc-123" {
		t.Errorf("upstream id not propagated: %q", got)
	}
	if _, ok := s.tlog.Get("upstream-abc-123"); !ok {
		t.Error("trace not retrievable under the upstream id")
	}

	// A garbage id (control bytes) is replaced with a minted one.
	req = httptest.NewRequest("GET", "/v1/similar?id=0&n=3", nil)
	req.Header.Set("X-Request-ID", "bad\x00id")
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if got := w.Header().Get("X-Request-ID"); got == "bad\x00id" || got == "" {
		t.Errorf("garbage id survived: %q", got)
	}

	// Two requests without ids get distinct ids.
	w1 := postJSON(t, h, "/v1/recommend", `{"user":0}`)
	w2 := postJSON(t, h, "/v1/recommend", `{"user":1}`)
	id1, id2 := w1.Header().Get("X-Request-ID"), w2.Header().Get("X-Request-ID")
	if id1 == "" || id1 == id2 {
		t.Errorf("minted ids %q and %q, want distinct non-empty", id1, id2)
	}
}

func TestDeadlineTraceRetained(t *testing.T) {
	// similar (unlike recommend, which degrades to a truncated 200) still
	// maps a blown budget to 503, so its trace lands on the error ring.
	s, _ := newTestServer(t, Config{TraceRequests: 4, Deadline: time.Nanosecond})
	h := s.Handler()
	w := get(t, h, "/v1/similar?id=1")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", w.Code)
	}
	id := w.Header().Get("X-Request-ID")
	e, ok := s.tlog.Get(id)
	if !ok {
		t.Fatal("blown-deadline trace not retained")
	}
	if e.Status != http.StatusServiceUnavailable || e.Cause != "deadline" {
		t.Errorf("entry status=%d cause=%q, want 503/deadline", e.Status, e.Cause)
	}
}

func TestDebugRequestsDisabledAndMissing(t *testing.T) {
	// Tracing off: the debug routes are not mounted at all.
	s, _ := newTestServer(t, Config{})
	if w := get(t, s.Handler(), "/debug/requests"); w.Code != http.StatusNotFound {
		t.Errorf("/debug/requests with tracing off: %d, want 404", w.Code)
	}
	// Tracing on, unknown id: 404 with a JSON error.
	s2, _ := newTestServer(t, Config{TraceRequests: 4})
	w := get(t, s2.Handler(), "/debug/requests/nope")
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown id: %d, want 404", w.Code)
	}
	if e := decode[errorResponse](t, w); e.Error == "" {
		t.Error("404 body not a JSON error")
	}
}

func TestDebugRequestsBypassShedding(t *testing.T) {
	s, _ := newTestServer(t, Config{TraceRequests: 4, MaxInflight: 1})
	s.limiter <- struct{}{} // saturate
	defer func() { <-s.limiter }()
	h := s.Handler()
	if w := get(t, h, "/debug/requests"); w.Code != http.StatusOK {
		t.Errorf("/debug/requests at capacity: %d, want 200 (must bypass limiter)", w.Code)
	}
	if w := postJSON(t, h, "/v1/recommend", `{"user":0}`); w.Code != http.StatusTooManyRequests {
		t.Errorf("recommend at capacity: %d, want 429", w.Code)
	}
}

func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	s, _ := newTestServer(t, Config{
		TraceRequests: 4,
		Log:           obs.NewTextLogger(&buf, slog.LevelInfo),
	})
	h := s.Handler()
	w := postJSON(t, h, "/v1/recommend", `{"users":[0,1],"n":3}`)
	if w.Code != http.StatusOK {
		t.Fatalf("recommend: %d", w.Code)
	}
	id := w.Header().Get("X-Request-ID")
	line := buf.String()
	for _, want := range []string{"serve: access", "id=" + id, "endpoint=recommend", "status=200", "bytes="} {
		if !strings.Contains(line, want) {
			t.Errorf("access log %q missing %q", line, want)
		}
	}

	// Shed requests are logged too, with the cause, and no id.
	buf.Reset()
	s2, _ := newTestServer(t, Config{
		MaxInflight: 1,
		Log:         obs.NewTextLogger(&buf, slog.LevelInfo),
	})
	s2.limiter <- struct{}{}
	postJSON(t, s2.Handler(), "/v1/recommend", `{"user":0}`)
	shedLine := buf.String()
	for _, want := range []string{"serve: access", "endpoint=recommend", "status=429", "cause=shed"} {
		if !strings.Contains(shedLine, want) {
			t.Errorf("shed access log %q missing %q", shedLine, want)
		}
	}
}

func TestLatencySnapshot(t *testing.T) {
	s, _ := newTestServer(t, Config{TraceRequests: 4, CacheSize: 8})
	h := s.Handler()
	for i := 0; i < 5; i++ {
		if w := postJSON(t, h, "/v1/recommend", `{"users":[0,1,2],"n":4}`); w.Code != 200 {
			t.Fatalf("recommend %d: %d", i, w.Code)
		}
	}
	if w := get(t, h, "/v1/similar?id=3&n=2"); w.Code != 200 {
		t.Fatalf("similar: %d", w.Code)
	}

	snap := s.LatencySnapshot()
	rec := snap.Endpoints["recommend"]
	if rec.Count != 5 || rec.SumSeconds <= 0 {
		t.Errorf("recommend stats = %+v, want count 5, positive sum", rec)
	}
	for _, q := range []string{"p50", "p90", "p99"} {
		if rec.Quantiles[q] < 0 {
			t.Errorf("quantile %s = %v", q, rec.Quantiles[q])
		}
	}
	if rec.Quantiles["p99"] < rec.Quantiles["p50"] {
		t.Errorf("p99 %v < p50 %v", rec.Quantiles["p99"], rec.Quantiles["p50"])
	}
	if snap.Endpoints["similar"].Count != 1 {
		t.Errorf("similar count = %d, want 1", snap.Endpoints["similar"].Count)
	}
	// Endpoints that saw traffic are not marked empty; endpoints that
	// didn't are — their all-zero quantiles mean "never measured", not
	// "instant", and the marker is what records the difference.
	if rec.Empty {
		t.Error("recommend marked empty despite 5 requests")
	}
	if sc := snap.Endpoints["score"]; !sc.Empty || sc.Count != 0 {
		t.Errorf("untrafficked score endpoint = %+v, want empty marker", sc)
	}
	// 5 identical batches: 3 misses then 12 hits.
	if snap.Counters["cache_hit"] != 12 || snap.Counters["cache_miss"] != 3 {
		t.Errorf("cache counters = %v", snap.Counters)
	}
	if snap.Build.GoVersion == "" {
		t.Error("snapshot missing build provenance")
	}
	if got := SortedEndpoints(snap); len(got) != len(endpoints) || got[0] != "healthz" {
		t.Errorf("sorted endpoints = %v", got)
	}

	// Round-trips through the file form.
	path := filepath.Join(t.TempDir(), "SERVE_LATENCY.json")
	if err := s.WriteLatencySnapshot(path); err != nil {
		t.Fatal(err)
	}
	var back LatencySnapshot
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("snapshot does not parse: %v", err)
	}
	if back.Endpoints["recommend"].Count != 5 {
		t.Errorf("round-tripped count = %d", back.Endpoints["recommend"].Count)
	}
	if !back.Endpoints["score"].Empty || back.Endpoints["recommend"].Empty {
		t.Error("empty markers did not survive the round trip")
	}
}
