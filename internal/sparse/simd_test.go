package sparse

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"gebe/internal/cpu"
	"gebe/internal/dense"
	"gebe/internal/simd"
)

// The SIMD flavor contract at the engine level: for every block width —
// aligned or not — and every strategy, the non-fused vector kernels must
// reproduce the scalar Go kernels bit for bit, and the fused flavor must
// stay within a tight relative tolerance. Widths 1..33 sweep both sides
// of every specialization (k4/k8/k16/panel8) plus the generic fallback;
// the adversarial matrices contribute empty rows, hub rows, and
// zero-nnz edges.

func bitsEqual(a, b []float64) (int, bool) {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i, false
		}
	}
	return -1, true
}

// maxRelErr returns max |a-b| / max(1, |a|) over the slices.
func maxRelErr(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if s := math.Abs(a[i]); s > 1 {
			d /= s
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// fmaRelTol is the documented acceptance bound for the fused flavor:
// each fused multiply-add removes one rounding, so the divergence from
// the non-fused oracle stays well under n·ε for the sum lengths the
// engines see. (On arm64 the flavors alias, so the error is exactly 0.)
const fmaRelTol = 1e-12

func TestSparseSIMDEquivalenceSweep(t *testing.T) {
	if cpu.Resolve(cpu.KernelSIMD) != cpu.KernelSIMD {
		t.Skip("no SIMD kernels on this CPU")
	}
	hasFMA := cpu.Resolve(cpu.KernelFMA) == cpu.KernelFMA
	matrices := []*CSR{
		adversarialCSR(t, 60, 35, 500, 3),
		skewedCSR(t, 120, 40, 2000, 4),
		adversarialCSR(t, 40, 17, 0, 5), // fully empty
	}
	for mi, m := range matrices {
		for k := 1; k <= 33; k++ {
			b := dense.Random(m.Cols, k, rng(uint64(100*mi+k)))
			c := dense.Random(m.Rows, k, rng(uint64(100*mi+k)+7))
			for _, strat := range []Strategy{StrategyAuto, StrategyScatter} {
				for _, threads := range []int{1, 3} {
					tn := Tuning{Threads: threads, Strategy: strat, MinParallelNNZ: 1}
					name := fmt.Sprintf("m%d/k=%d/%v/t=%d", mi, k, strat, threads)

					tn.Kernels = cpu.KernelGo
					wantMul := m.MulDenseOpts(b, tn)
					wantT := m.TMulDenseOpts(c, tn)

					tn.Kernels = cpu.KernelSIMD
					gotMul := m.MulDenseOpts(b, tn)
					gotT := m.TMulDenseOpts(c, tn)
					if i, ok := bitsEqual(gotMul.Data, wantMul.Data); !ok {
						t.Fatalf("%s: SIMD MulDense diverges at %d: %v != %v", name, i, gotMul.Data[i], wantMul.Data[i])
					}
					if i, ok := bitsEqual(gotT.Data, wantT.Data); !ok {
						t.Fatalf("%s: SIMD TMulDense diverges at %d: %v != %v", name, i, gotT.Data[i], wantT.Data[i])
					}

					if !hasFMA {
						continue
					}
					tn.Kernels = cpu.KernelFMA
					if err := maxRelErr(m.MulDenseOpts(b, tn).Data, wantMul.Data); err > fmaRelTol {
						t.Fatalf("%s: FMA MulDense rel err %g > %g", name, err, fmaRelTol)
					}
					if err := maxRelErr(m.TMulDenseOpts(c, tn).Data, wantT.Data); err > fmaRelTol {
						t.Fatalf("%s: FMA TMulDense rel err %g > %g", name, err, fmaRelTol)
					}
				}
			}
		}
	}
}

// TestSparseSIMDPoolRace forces the vector kernels onto the shared
// worker pool from many goroutines at once; with -race this pins the
// wrappers' aliasing discipline (private accumulators, disjoint row
// ranges).
func TestSparseSIMDPoolRace(t *testing.T) {
	if cpu.Resolve(cpu.KernelSIMD) != cpu.KernelSIMD {
		t.Skip("no SIMD kernels on this CPU")
	}
	m := skewedCSR(t, 400, 64, 8000, 21)
	b := dense.Random(m.Cols, 16, rng(22))
	c := dense.Random(m.Rows, 32, rng(23))
	goT := Tuning{Threads: 4, MinParallelNNZ: 1, Kernels: cpu.KernelGo}
	simdT := goT
	simdT.Kernels = cpu.KernelSIMD
	wantMul := m.MulDenseOpts(b, goT)
	wantSc := m.TMulDenseOpts(c, Tuning{Threads: 4, MinParallelNNZ: 1, Strategy: StrategyScatter, Kernels: cpu.KernelGo})
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for it := 0; it < 10; it++ {
				if _, ok := bitsEqual(m.MulDenseOpts(b, simdT).Data, wantMul.Data); !ok {
					done <- fmt.Errorf("concurrent SIMD MulDense diverged")
					return
				}
				sc := Tuning{Threads: 4, MinParallelNNZ: 1, Strategy: StrategyScatter, Kernels: cpu.KernelSIMD}
				if _, ok := bitsEqual(m.TMulDenseOpts(c, sc).Data, wantSc.Data); !ok {
					done <- fmt.Errorf("concurrent SIMD scatter TMulDense diverged")
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestSIMDKernelNames pins the flavor naming the metrics, bench tables,
// and manifests rely on: scalar names stay bare, vector names carry the
// instruction-set suffix.
func TestSIMDKernelNames(t *testing.T) {
	if _, name := dispatchMul(16, cpu.KernelGo); name != "k16" {
		t.Errorf("Go k16 kernel named %q, want k16", name)
	}
	if _, name := dispatchTMul(24, cpu.KernelGo); name != "scatter" {
		t.Errorf("Go scatter kernel named %q, want scatter", name)
	}
	if !simd.HasSIMD() {
		return
	}
	suffix := "+" + simd.SIMDName()
	for _, k := range []int{8, 16, 32} {
		if _, name := dispatchMul(k, cpu.KernelSIMD); !strings.HasSuffix(name, suffix) {
			t.Errorf("SIMD k=%d kernel named %q, want %q suffix", k, name, suffix)
		}
		if _, name := dispatchTMul(k, cpu.KernelSIMD); !strings.HasSuffix(name, suffix) {
			t.Errorf("SIMD scatter k=%d kernel named %q, want %q suffix", k, name, suffix)
		}
	}
	// Unspecialized widths fall back to the scalar kernel and its name.
	if _, name := dispatchMul(5, cpu.KernelSIMD); name != "generic" {
		t.Errorf("SIMD k=5 fell to %q, want generic", name)
	}
	if simd.HasFMA() {
		if _, name := dispatchMul(16, cpu.KernelFMA); !strings.HasSuffix(name, "+"+simd.FMAName()) {
			t.Errorf("FMA k16 kernel named %q, want +%s suffix", name, simd.FMAName())
		}
	}
}
