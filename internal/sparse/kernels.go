package sparse

import "gebe/internal/cpu"

// The inner SpMM kernels. All of them compute out[i,:] += Σ_p Val[p] ·
// b[ColIdx[p],:] for rows i in [lo,hi) over row-major b and out with row
// stride k, and all perform exactly (RowPtr[hi]-RowPtr[lo])·k multiply-
// adds — the engine's fma counter is strategy- and kernel-independent,
// which is what lets the equivalence tests assert identical work across
// dispatch choices.
//
// The specialized widths keep the whole output row in named scalars for
// the duration of a matrix row, so the inner nnz loop does k loads and k
// FMAs per stored entry and no stores at all; the generic kernel must
// read-modify-write the output row per entry instead. Widths 4/8/16 cover
// GEBE's common block sizes (vector ops lowered to k=1 use the dot
// kernel; KSI/RSVD blocks are k or k+oversample); panel8 tiles any
// multiple of 8, and everything else falls through to the generic loop.

// mulKernel computes rows [lo,hi) of m·b into out (row stride k). Output
// rows must be zero on entry.
type mulKernel func(m *CSR, bd, od []float64, k, lo, hi int)

// tmulKernel scatters rows [lo,hi) of mᵀ·b into out (m.Cols × k). Racy
// under row-sharding unless each worker owns a private out.
type tmulKernel func(m *CSR, bd, od []float64, k, lo, hi int)

// The dispatch tables. Scalar Go kernels are installed here; the vector
// flavors register from kernels_simd.go when the CPU supports them, and
// Pick applies the shared width classification plus fma → simd → go
// fallback from internal/cpu.
var (
	mulKernels  = cpu.NewTable[mulKernel](mulGeneric, "generic")
	tmulKernels = cpu.NewTable[tmulKernel](tMulGeneric, "scatter")
)

func init() {
	mulKernels.SetGo(cpu.WidthK4, mulK4, "k4")
	mulKernels.SetGo(cpu.WidthK8, mulK8, "k8")
	mulKernels.SetGo(cpu.WidthK16, mulK16, "k16")
	mulKernels.SetGo(cpu.WidthPanel8, mulPanel8, "panel8")
}

// dispatchMul picks the widest kernel that tiles a k-column block under
// the requested flavor.
func dispatchMul(k int, mode cpu.KernelMode) (mulKernel, string) {
	return mulKernels.Pick(k, mode)
}

// dispatchTMul picks the scatter kernel for a k-column block.
func dispatchTMul(k int, mode cpu.KernelMode) (tmulKernel, string) {
	return tmulKernels.Pick(k, mode)
}

func mulGeneric(m *CSR, bd, od []float64, k, lo, hi int) {
	for i := lo; i < hi; i++ {
		orow := od[i*k : (i+1)*k]
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			w := m.Val[p]
			brow := bd[m.ColIdx[p]*k:][:k]
			for j, bv := range brow {
				orow[j] += w * bv
			}
		}
	}
}

func mulK4(m *CSR, bd, od []float64, _, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s0, s1, s2, s3 float64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			w := m.Val[p]
			b := bd[m.ColIdx[p]*4:][:4]
			s0 += w * b[0]
			s1 += w * b[1]
			s2 += w * b[2]
			s3 += w * b[3]
		}
		o := od[i*4:][:4]
		o[0], o[1], o[2], o[3] = s0, s1, s2, s3
	}
}

func mulK8(m *CSR, bd, od []float64, _, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s0, s1, s2, s3, s4, s5, s6, s7 float64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			w := m.Val[p]
			b := bd[m.ColIdx[p]*8:][:8]
			s0 += w * b[0]
			s1 += w * b[1]
			s2 += w * b[2]
			s3 += w * b[3]
			s4 += w * b[4]
			s5 += w * b[5]
			s6 += w * b[6]
			s7 += w * b[7]
		}
		o := od[i*8:][:8]
		o[0], o[1], o[2], o[3] = s0, s1, s2, s3
		o[4], o[5], o[6], o[7] = s4, s5, s6, s7
	}
}

func mulK16(m *CSR, bd, od []float64, _, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s0, s1, s2, s3, s4, s5, s6, s7 float64
		var s8, s9, sa, sb, sc, sd, se, sf float64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			w := m.Val[p]
			b := bd[m.ColIdx[p]*16:][:16]
			s0 += w * b[0]
			s1 += w * b[1]
			s2 += w * b[2]
			s3 += w * b[3]
			s4 += w * b[4]
			s5 += w * b[5]
			s6 += w * b[6]
			s7 += w * b[7]
			s8 += w * b[8]
			s9 += w * b[9]
			sa += w * b[10]
			sb += w * b[11]
			sc += w * b[12]
			sd += w * b[13]
			se += w * b[14]
			sf += w * b[15]
		}
		o := od[i*16:][:16]
		o[0], o[1], o[2], o[3] = s0, s1, s2, s3
		o[4], o[5], o[6], o[7] = s4, s5, s6, s7
		o[8], o[9], o[10], o[11] = s8, s9, sa, sb
		o[12], o[13], o[14], o[15] = sc, sd, se, sf
	}
}

// mulPanel8 tiles a k%8==0 block into 8-column panels, re-scanning the
// row's (index, value) pairs once per panel; for GEBE's row lengths those
// stay L1-resident, and each panel keeps its accumulators in registers.
func mulPanel8(m *CSR, bd, od []float64, k, lo, hi int) {
	for i := lo; i < hi; i++ {
		rs, re := m.RowPtr[i], m.RowPtr[i+1]
		if rs == re {
			continue
		}
		for j0 := 0; j0 < k; j0 += 8 {
			var s0, s1, s2, s3, s4, s5, s6, s7 float64
			for p := rs; p < re; p++ {
				w := m.Val[p]
				b := bd[m.ColIdx[p]*k+j0:][:8]
				s0 += w * b[0]
				s1 += w * b[1]
				s2 += w * b[2]
				s3 += w * b[3]
				s4 += w * b[4]
				s5 += w * b[5]
				s6 += w * b[6]
				s7 += w * b[7]
			}
			o := od[i*k+j0:][:8]
			o[0], o[1], o[2], o[3] = s0, s1, s2, s3
			o[4], o[5], o[6], o[7] = s4, s5, s6, s7
		}
	}
}

// mulVecRange is the k=1 gather kernel: out[i] = Σ Val[p]·x[ColIdx[p]].
func mulVecRange(m *CSR, x, out []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s float64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			s += m.Val[p] * x[m.ColIdx[p]]
		}
		out[i] = s
	}
}

// tMulGeneric adapts tMulRange to the tmulKernel shape for the table.
func tMulGeneric(m *CSR, bd, od []float64, k, lo, hi int) {
	m.tMulRange(bd, od, k, lo, hi)
}

// tMulRange is the scatter kernel for mᵀ·b: rows [lo,hi) of m are
// scattered into out (m.Cols × k). Racy under row-sharding unless each
// worker owns a private out.
func (m *CSR) tMulRange(b, out []float64, k, lo, hi int) {
	for i := lo; i < hi; i++ {
		brow := b[i*k:][:k]
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			w := m.Val[p]
			orow := out[m.ColIdx[p]*k:][:k]
			for j, bv := range brow {
				orow[j] += w * bv
			}
		}
	}
}

// tMulVecRange is the scatter kernel for mᵀ·x.
func (m *CSR) tMulVecRange(x, out []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		xv := x[i]
		if xv == 0 {
			continue
		}
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			out[m.ColIdx[p]] += m.Val[p] * xv
		}
	}
}
