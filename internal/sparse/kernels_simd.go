package sparse

import (
	"gebe/internal/cpu"
	"gebe/internal/simd"
)

// The vector kernel flavors: thin wrappers over internal/simd gather and
// scatter primitives, registered once per process when the CPU supports
// them. Each wrapper walks rows exactly like its scalar twin — ascending
// i, ascending p, panels left to right — so every output element sees
// its terms in the same order and the non-fused flavor stays bitwise
// identical to the Go oracle. Panel blocks use 16-wide sub-panels when
// they fit (half the re-scans of the row's index/value pairs); that
// regroups only independent output elements, never a sum.

func init() {
	if !simd.HasSIMD() {
		return
	}
	sn := "+" + simd.SIMDName()
	mulKernels.Register(cpu.WidthK8, cpu.KernelSIMD, mulK8SIMD, "k8"+sn)
	mulKernels.Register(cpu.WidthK16, cpu.KernelSIMD, mulK16SIMD, "k16"+sn)
	mulKernels.Register(cpu.WidthPanel8, cpu.KernelSIMD, mulPanel8SIMD, "panel8"+sn)
	tmulKernels.Register(cpu.WidthK8, cpu.KernelSIMD, tMulK8SIMD, "scatter8"+sn)
	tmulKernels.Register(cpu.WidthK16, cpu.KernelSIMD, tMulK16SIMD, "scatter16"+sn)
	tmulKernels.Register(cpu.WidthPanel8, cpu.KernelSIMD, tMulPanel8SIMD, "scatterp8"+sn)
	if !simd.HasFMA() {
		return
	}
	fn := "+" + simd.FMAName()
	mulKernels.Register(cpu.WidthK8, cpu.KernelFMA, mulK8FMA, "k8"+fn)
	mulKernels.Register(cpu.WidthK16, cpu.KernelFMA, mulK16FMA, "k16"+fn)
	mulKernels.Register(cpu.WidthPanel8, cpu.KernelFMA, mulPanel8FMA, "panel8"+fn)
	tmulKernels.Register(cpu.WidthK8, cpu.KernelFMA, tMulK8FMA, "scatter8"+fn)
	tmulKernels.Register(cpu.WidthK16, cpu.KernelFMA, tMulK16FMA, "scatter16"+fn)
	tmulKernels.Register(cpu.WidthPanel8, cpu.KernelFMA, tMulPanel8FMA, "scatterp8"+fn)
}

func mulK8SIMD(m *CSR, bd, od []float64, _, lo, hi int) {
	for i := lo; i < hi; i++ {
		rs, re := m.RowPtr[i], m.RowPtr[i+1]
		var acc [8]float64
		simd.GatherSaxpy8(m.Val[rs:re], m.ColIdx[rs:re], bd, 8, &acc)
		copy(od[i*8:][:8], acc[:])
	}
}

func mulK8FMA(m *CSR, bd, od []float64, _, lo, hi int) {
	for i := lo; i < hi; i++ {
		rs, re := m.RowPtr[i], m.RowPtr[i+1]
		var acc [8]float64
		simd.GatherSaxpy8FMA(m.Val[rs:re], m.ColIdx[rs:re], bd, 8, &acc)
		copy(od[i*8:][:8], acc[:])
	}
}

func mulK16SIMD(m *CSR, bd, od []float64, _, lo, hi int) {
	for i := lo; i < hi; i++ {
		rs, re := m.RowPtr[i], m.RowPtr[i+1]
		var acc [16]float64
		simd.GatherSaxpy16(m.Val[rs:re], m.ColIdx[rs:re], bd, 16, &acc)
		copy(od[i*16:][:16], acc[:])
	}
}

func mulK16FMA(m *CSR, bd, od []float64, _, lo, hi int) {
	for i := lo; i < hi; i++ {
		rs, re := m.RowPtr[i], m.RowPtr[i+1]
		var acc [16]float64
		simd.GatherSaxpy16FMA(m.Val[rs:re], m.ColIdx[rs:re], bd, 16, &acc)
		copy(od[i*16:][:16], acc[:])
	}
}

func mulPanel8SIMD(m *CSR, bd, od []float64, k, lo, hi int) {
	for i := lo; i < hi; i++ {
		rs, re := m.RowPtr[i], m.RowPtr[i+1]
		if rs == re {
			continue
		}
		val, idx := m.Val[rs:re], m.ColIdx[rs:re]
		j0 := 0
		for ; j0+16 <= k; j0 += 16 {
			var acc [16]float64
			simd.GatherSaxpy16(val, idx, bd[j0:], k, &acc)
			copy(od[i*k+j0:][:16], acc[:])
		}
		for ; j0 < k; j0 += 8 {
			var acc [8]float64
			simd.GatherSaxpy8(val, idx, bd[j0:], k, &acc)
			copy(od[i*k+j0:][:8], acc[:])
		}
	}
}

func mulPanel8FMA(m *CSR, bd, od []float64, k, lo, hi int) {
	for i := lo; i < hi; i++ {
		rs, re := m.RowPtr[i], m.RowPtr[i+1]
		if rs == re {
			continue
		}
		val, idx := m.Val[rs:re], m.ColIdx[rs:re]
		j0 := 0
		for ; j0+16 <= k; j0 += 16 {
			var acc [16]float64
			simd.GatherSaxpy16FMA(val, idx, bd[j0:], k, &acc)
			copy(od[i*k+j0:][:16], acc[:])
		}
		for ; j0 < k; j0 += 8 {
			var acc [8]float64
			simd.GatherSaxpy8FMA(val, idx, bd[j0:], k, &acc)
			copy(od[i*k+j0:][:8], acc[:])
		}
	}
}

func tMulK8SIMD(m *CSR, bd, od []float64, _, lo, hi int) {
	for i := lo; i < hi; i++ {
		rs, re := m.RowPtr[i], m.RowPtr[i+1]
		if rs == re {
			continue
		}
		var brow [8]float64
		copy(brow[:], bd[i*8:][:8])
		simd.ScatterSaxpy8(m.Val[rs:re], m.ColIdx[rs:re], &brow, od, 8)
	}
}

func tMulK8FMA(m *CSR, bd, od []float64, _, lo, hi int) {
	for i := lo; i < hi; i++ {
		rs, re := m.RowPtr[i], m.RowPtr[i+1]
		if rs == re {
			continue
		}
		var brow [8]float64
		copy(brow[:], bd[i*8:][:8])
		simd.ScatterSaxpy8FMA(m.Val[rs:re], m.ColIdx[rs:re], &brow, od, 8)
	}
}

func tMulK16SIMD(m *CSR, bd, od []float64, _, lo, hi int) {
	for i := lo; i < hi; i++ {
		rs, re := m.RowPtr[i], m.RowPtr[i+1]
		if rs == re {
			continue
		}
		var brow [16]float64
		copy(brow[:], bd[i*16:][:16])
		simd.ScatterSaxpy16(m.Val[rs:re], m.ColIdx[rs:re], &brow, od, 16)
	}
}

func tMulK16FMA(m *CSR, bd, od []float64, _, lo, hi int) {
	for i := lo; i < hi; i++ {
		rs, re := m.RowPtr[i], m.RowPtr[i+1]
		if rs == re {
			continue
		}
		var brow [16]float64
		copy(brow[:], bd[i*16:][:16])
		simd.ScatterSaxpy16FMA(m.Val[rs:re], m.ColIdx[rs:re], &brow, od, 16)
	}
}

func tMulPanel8SIMD(m *CSR, bd, od []float64, k, lo, hi int) {
	for i := lo; i < hi; i++ {
		rs, re := m.RowPtr[i], m.RowPtr[i+1]
		if rs == re {
			continue
		}
		val, idx := m.Val[rs:re], m.ColIdx[rs:re]
		brow := bd[i*k:][:k]
		j0 := 0
		for ; j0+16 <= k; j0 += 16 {
			var b16 [16]float64
			copy(b16[:], brow[j0:])
			simd.ScatterSaxpy16(val, idx, &b16, od[j0:], k)
		}
		for ; j0 < k; j0 += 8 {
			var b8 [8]float64
			copy(b8[:], brow[j0:])
			simd.ScatterSaxpy8(val, idx, &b8, od[j0:], k)
		}
	}
}

func tMulPanel8FMA(m *CSR, bd, od []float64, k, lo, hi int) {
	for i := lo; i < hi; i++ {
		rs, re := m.RowPtr[i], m.RowPtr[i+1]
		if rs == re {
			continue
		}
		val, idx := m.Val[rs:re], m.ColIdx[rs:re]
		brow := bd[i*k:][:k]
		j0 := 0
		for ; j0+16 <= k; j0 += 16 {
			var b16 [16]float64
			copy(b16[:], brow[j0:])
			simd.ScatterSaxpy16FMA(val, idx, &b16, od[j0:], k)
		}
		for ; j0 < k; j0 += 8 {
			var b8 [8]float64
			copy(b8[:], brow[j0:])
			simd.ScatterSaxpy8FMA(val, idx, &b8, od[j0:], k)
		}
	}
}
