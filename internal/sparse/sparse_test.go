package sparse

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"gebe/internal/dense"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed+1)) }

func randomCSR(t testing.TB, rows, cols, nnz int, seed uint64) *CSR {
	r := rng(seed)
	entries := make([]Entry, nnz)
	for i := range entries {
		entries[i] = Entry{Row: r.IntN(rows), Col: r.IntN(cols), Val: r.Float64()*2 - 1}
	}
	m, err := New(rows, cols, entries)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestNewEmpty(t *testing.T) {
	m, err := New(3, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 0 || m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("bad empty matrix: %+v", m)
	}
	if m.At(2, 3) != 0 {
		t.Error("At on empty should be 0")
	}
}

func TestNewRejectsOutOfRange(t *testing.T) {
	if _, err := New(2, 2, []Entry{{Row: 2, Col: 0, Val: 1}}); err == nil {
		t.Error("expected error for row out of range")
	}
	if _, err := New(2, 2, []Entry{{Row: 0, Col: -1, Val: 1}}); err == nil {
		t.Error("expected error for negative col")
	}
	if _, err := New(-1, 2, nil); err == nil {
		t.Error("expected error for negative dims")
	}
}

func TestDuplicatesSummedZerosDropped(t *testing.T) {
	m, err := New(2, 2, []Entry{
		{0, 0, 1}, {0, 0, 2}, // duplicate -> 3
		{1, 1, 5}, {1, 1, -5}, // cancels -> dropped
		{0, 1, 0}, // explicit zero -> dropped
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 3 {
		t.Errorf("At(0,0)=%v want 3", m.At(0, 0))
	}
	if m.NNZ() != 1 {
		t.Errorf("NNZ=%d want 1", m.NNZ())
	}
}

func TestRowsSortedByColumn(t *testing.T) {
	m := randomCSR(t, 10, 10, 60, 1)
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i] + 1; p < m.RowPtr[i+1]; p++ {
			if m.ColIdx[p-1] >= m.ColIdx[p] {
				t.Fatalf("row %d columns not strictly increasing", i)
			}
		}
	}
}

func TestAtMatchesDense(t *testing.T) {
	m := randomCSR(t, 7, 9, 30, 2)
	d := m.ToDense()
	for i := 0; i < 7; i++ {
		for j := 0; j < 9; j++ {
			if m.At(i, j) != d.At(i, j) {
				t.Fatalf("At(%d,%d) sparse %v dense %v", i, j, m.At(i, j), d.At(i, j))
			}
		}
	}
}

func TestTransposeMatchesDense(t *testing.T) {
	m := randomCSR(t, 6, 11, 40, 3)
	if !dense.Equal(m.T().ToDense(), m.ToDense().T(), 0) {
		t.Error("sparse transpose disagrees with dense transpose")
	}
	// Double transpose is identity.
	if !dense.Equal(m.T().T().ToDense(), m.ToDense(), 0) {
		t.Error("(Mᵀ)ᵀ != M")
	}
}

func TestMulDenseMatchesDense(t *testing.T) {
	for _, threads := range []int{1, 4} {
		m := randomCSR(t, 15, 8, 50, 4)
		b := dense.Random(8, 5, rng(5))
		got := m.MulDense(b, threads)
		want := dense.Mul(m.ToDense(), b)
		if !dense.Equal(got, want, 1e-12) {
			t.Errorf("threads=%d: MulDense mismatch", threads)
		}
	}
}

func TestTMulDenseMatchesDense(t *testing.T) {
	for _, threads := range []int{1, 4} {
		m := randomCSR(t, 15, 8, 50, 6)
		b := dense.Random(15, 5, rng(7))
		got := m.TMulDense(b, threads)
		want := dense.Mul(m.ToDense().T(), b)
		if !dense.Equal(got, want, 1e-12) {
			t.Errorf("threads=%d: TMulDense mismatch", threads)
		}
	}
}

func TestParallelMatchesSequentialOnLargeMatrix(t *testing.T) {
	// Exceed the 4096-row threshold so the parallel path actually runs.
	m := randomCSR(t, 5000, 40, 30000, 8)
	b := dense.Random(40, 8, rng(9))
	if !dense.Equal(m.MulDense(b, 1), m.MulDense(b, 8), 1e-10) {
		t.Error("parallel MulDense differs from sequential")
	}
	c := dense.Random(5000, 8, rng(10))
	if !dense.Equal(m.TMulDense(c, 1), m.TMulDense(c, 8), 1e-10) {
		t.Error("parallel TMulDense differs from sequential")
	}
}

func TestParallelVecMatchesSequential(t *testing.T) {
	// Exceed the 4096-row threshold so the parallel path actually runs.
	m := randomCSR(t, 5000, 40, 30000, 13)
	x := make([]float64, 40)
	y := make([]float64, 5000)
	r := rng(14)
	for i := range x {
		x[i] = r.Float64()
	}
	for i := range y {
		y[i] = r.Float64()
	}
	seq, par := m.MulVec(x, 1), m.MulVec(x, 8)
	for i := range seq {
		if math.Abs(seq[i]-par[i]) > 1e-10 {
			t.Fatalf("parallel MulVec differs at row %d: %v vs %v", i, par[i], seq[i])
		}
	}
	seqT, parT := m.TMulVec(y, 1), m.TMulVec(y, 8)
	for j := range seqT {
		if math.Abs(seqT[j]-parT[j]) > 1e-10 {
			t.Fatalf("parallel TMulVec differs at col %d: %v vs %v", j, parT[j], seqT[j])
		}
	}
}

func TestMulVecAndTMulVec(t *testing.T) {
	m := randomCSR(t, 9, 7, 30, 11)
	x := make([]float64, 7)
	y := make([]float64, 9)
	r := rng(12)
	for i := range x {
		x[i] = r.Float64()
	}
	for i := range y {
		y[i] = r.Float64()
	}
	mx := m.MulVec(x, 1)
	d := m.ToDense()
	for i := 0; i < 9; i++ {
		if math.Abs(mx[i]-dense.Dot(d.Row(i), x)) > 1e-12 {
			t.Fatalf("MulVec row %d mismatch", i)
		}
	}
	mty := m.TMulVec(y, 1)
	dT := d.T()
	for j := 0; j < 7; j++ {
		if math.Abs(mty[j]-dense.Dot(dT.Row(j), y)) > 1e-12 {
			t.Fatalf("TMulVec col %d mismatch", j)
		}
	}
}

func TestRowColSums(t *testing.T) {
	m, err := New(2, 3, []Entry{{0, 0, 1}, {0, 2, 2}, {1, 2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	rs := m.RowSums()
	if rs[0] != 3 || rs[1] != 4 {
		t.Errorf("RowSums=%v", rs)
	}
	cs := m.ColSums()
	if cs[0] != 1 || cs[1] != 0 || cs[2] != 6 {
		t.Errorf("ColSums=%v", cs)
	}
}

func TestScaledAndFrobenius(t *testing.T) {
	m, _ := New(2, 2, []Entry{{0, 0, 3}, {1, 1, 4}})
	if got := m.FrobeniusNormSq(); got != 25 {
		t.Errorf("FrobeniusNormSq=%v want 25", got)
	}
	s := m.Scaled(2)
	if s.At(0, 0) != 6 || s.At(1, 1) != 8 {
		t.Error("Scaled wrong")
	}
	if m.At(0, 0) != 3 {
		t.Error("Scaled mutated the original")
	}
}

// Property: for random sparse matrices, (Mᵀ·b) computed sparsely always
// matches the dense computation.
func TestPropertySparseDenseAgree(t *testing.T) {
	f := func(seed uint64) bool {
		rows := 2 + int(seed%40)
		cols := 2 + int((seed/7)%40)
		nnz := int(seed % 200)
		m := randomCSR(t, rows, cols, nnz, seed)
		b := dense.Random(cols, 3, rng(seed^0xabc))
		got := m.MulDense(b, 2)
		want := dense.Mul(m.ToDense(), b)
		return dense.Equal(got, want, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMulDense(b *testing.B) {
	m := randomCSR(b, 20000, 5000, 200000, 99)
	q := dense.Random(5000, 32, rng(100))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulDense(q, 1)
	}
}
