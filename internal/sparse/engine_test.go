package sparse

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"gebe/internal/cpu"
	"gebe/internal/dense"
	"gebe/internal/obs"
)

// adversarialCSR builds a matrix with the shapes that break naive
// scheduling: a leading block of empty rows, one hub row holding ~40% of
// the nonzeros (the power-law tail), a hub column, and a sparse random
// remainder. Some rows/cols stay empty.
func adversarialCSR(t testing.TB, rows, cols, nnz int, seed uint64) *CSR {
	r := rng(seed)
	entries := make([]Entry, 0, nnz)
	hubRow := rows / 2
	hubCol := cols / 3
	for i := 0; i < nnz; i++ {
		var e Entry
		switch {
		case i < nnz*4/10: // hub row
			e = Entry{Row: hubRow, Col: r.IntN(cols), Val: r.Float64()*2 - 1}
		case i < nnz*5/10: // hub column
			e = Entry{Row: r.IntN(rows), Col: hubCol, Val: r.Float64()*2 - 1}
		default: // random fill, skipping the first rows to keep them empty
			row := r.IntN(rows)
			if row < 3 && rows > 6 {
				row += 3
			}
			e = Entry{Row: row, Col: r.IntN(cols), Val: r.Float64()*2 - 1}
		}
		entries = append(entries, e)
	}
	m, err := New(rows, cols, entries)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

// skewedCSR draws row indices from a heavily skewed (cubed-uniform)
// distribution, approximating the power-law degree sequences of the
// paper's datasets; uniformCSR is the balanced control.
func skewedCSR(t testing.TB, rows, cols, nnz int, seed uint64) *CSR {
	r := rng(seed)
	entries := make([]Entry, nnz)
	for i := range entries {
		u := r.Float64()
		row := int(u * u * u * float64(rows))
		if row >= rows {
			row = rows - 1
		}
		entries[i] = Entry{Row: row, Col: r.IntN(cols), Val: r.Float64()*2 - 1}
	}
	m, err := New(rows, cols, entries)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

var allStrategies = []Strategy{StrategyAuto, StrategyScatter, StrategyLegacy}

// TestEngineEquivalenceAdversarial pins every strategy, kernel width, and
// thread count to the dense reference on shapes chosen to break them:
// empty rows, hub rows/columns, and every block width from 1 through 17
// (covering each specialized kernel, the panel path, and the generic
// fallback on either side of them).
func TestEngineEquivalenceAdversarial(t *testing.T) {
	shapes := []struct {
		rows, cols, nnz int
	}{
		{1, 9, 5},   // single row
		{9, 1, 5},   // single column
		{40, 17, 0}, // empty matrix
		{60, 30, 400},
		{31, 200, 900}, // short and wide
	}
	for _, sh := range shapes {
		m := adversarialCSR(t, sh.rows, sh.cols, sh.nnz, uint64(sh.rows*1000+sh.cols))
		md := m.ToDense()
		mdT := md.T()
		for k := 1; k <= 17; k++ {
			b := dense.Random(sh.cols, k, rng(uint64(k)))
			c := dense.Random(sh.rows, k, rng(uint64(k)+99))
			wantMul := dense.Mul(md, b)
			wantTMul := dense.Mul(mdT, c)
			for _, strat := range allStrategies {
				for _, threads := range []int{1, 4} {
					// Force the parallel path even on tiny shapes.
					tn := Tuning{Threads: threads, Strategy: strat, MinParallelNNZ: 1}
					name := fmt.Sprintf("%dx%d/k=%d/%v/t=%d", sh.rows, sh.cols, k, strat, threads)
					if got := m.MulDenseOpts(b, tn); !dense.Equal(got, wantMul, 1e-10) {
						t.Errorf("%s: MulDense mismatch", name)
					}
					if got := m.TMulDenseOpts(c, tn); !dense.Equal(got, wantTMul, 1e-10) {
						t.Errorf("%s: TMulDense mismatch", name)
					}
				}
			}
		}
		// Vector paths (k=1 lowering).
		x := dense.Random(sh.cols, 1, rng(7)).Data
		y := dense.Random(sh.rows, 1, rng(8)).Data
		for _, strat := range allStrategies {
			tn := Tuning{Threads: 4, Strategy: strat, MinParallelNNZ: 1}
			mx := m.MulVecOpts(x, tn)
			for i := range mx {
				if math.Abs(mx[i]-dense.Dot(md.Row(i), x)) > 1e-10 {
					t.Fatalf("%dx%d/%v: MulVec row %d mismatch", sh.rows, sh.cols, strat, i)
				}
			}
			my := m.TMulVecOpts(y, tn)
			for j := range my {
				if math.Abs(my[j]-dense.Dot(mdT.Row(j), y)) > 1e-10 {
					t.Fatalf("%dx%d/%v: TMulVec col %d mismatch", sh.rows, sh.cols, strat, j)
				}
			}
		}
	}
}

func TestNNZPartitionProperties(t *testing.T) {
	cases := []*CSR{
		adversarialCSR(t, 100, 50, 2000, 1),
		skewedCSR(t, 500, 40, 8000, 2),
		randomCSR(t, 64, 64, 1000, 3),
	}
	for ci, m := range cases {
		total := m.NNZ()
		maxRow := 0
		for i := 0; i < m.Rows; i++ {
			if d := m.RowPtr[i+1] - m.RowPtr[i]; d > maxRow {
				maxRow = d
			}
		}
		for _, nw := range []int{1, 2, 3, 7, 16} {
			bounds := nnzPartition(m.RowPtr, nw)
			if len(bounds) != nw+1 || bounds[0] != 0 || bounds[nw] != m.Rows {
				t.Fatalf("case %d nw=%d: bad boundary array %v", ci, nw, bounds)
			}
			ideal := (total + nw - 1) / nw
			for w := 0; w < nw; w++ {
				if bounds[w] > bounds[w+1] {
					t.Fatalf("case %d nw=%d: non-monotone bounds %v", ci, nw, bounds)
				}
				part := m.RowPtr[bounds[w+1]] - m.RowPtr[bounds[w]]
				// A part can exceed the even share by at most one row's
				// nonzeros (the straddling row stays whole).
				if part > ideal+maxRow {
					t.Errorf("case %d nw=%d part %d: %d nnz exceeds ideal %d + max row %d",
						ci, nw, w, part, ideal, maxRow)
				}
			}
		}
	}
}

// TestWorkersGateOnNNZ pins the satellite fix: the parallelism gate keys
// on nonzeros, so a short-and-wide matrix with many nonzeros (a Wᵀ block)
// parallelizes while a tall near-empty one stays sequential.
func TestWorkersGateOnNNZ(t *testing.T) {
	tn := Tuning{Threads: 8}
	if got := tn.workers(1_000_000, 100); got != 8 {
		t.Errorf("short-and-wide with 1M nnz: workers=%d, want 8", got)
	}
	if got := tn.workers(100, 1_000_000); got != 1 {
		t.Errorf("tall near-empty: workers=%d, want 1", got)
	}
	// Legacy gate would have serialized the first case.
	if got := legacyWorkerCount(100, 8); got != 1 {
		t.Errorf("legacy gate on 100 rows: %d, want 1 (documents the old bug)", got)
	}
	// Worker count never exceeds rows.
	if got := tn.workers(1_000_000, 3); got != 3 {
		t.Errorf("3-row matrix: workers=%d, want 3", got)
	}
	// Custom gate.
	tn.MinParallelNNZ = 10
	if got := tn.workers(50, 100); got != 8 {
		t.Errorf("custom gate 10, nnz 50: workers=%d, want 8", got)
	}
}

func TestTuningValidate(t *testing.T) {
	good := []Tuning{
		{},
		{Threads: 16, Strategy: StrategyScatter, MinParallelNNZ: 1024},
		{Strategy: StrategyLegacy},
	}
	for _, tn := range good {
		if err := tn.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", tn, err)
		}
	}
	bad := []Tuning{
		{Threads: -1},
		{MinParallelNNZ: -5},
		{Strategy: Strategy(42)},
	}
	for _, tn := range bad {
		if err := tn.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", tn)
		}
	}
}

// TestTransposeCached verifies the lazy transpose is built once, matches
// T(), and that concurrent first callers race safely (run with -race).
func TestTransposeCached(t *testing.T) {
	m := skewedCSR(t, 300, 120, 5000, 11)
	var wg sync.WaitGroup
	results := make([]*CSR, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = m.Transpose()
		}(g)
	}
	wg.Wait()
	for g := 1; g < 16; g++ {
		if results[g] != results[0] {
			t.Fatal("Transpose returned different instances to concurrent callers")
		}
	}
	if !dense.Equal(results[0].ToDense(), m.T().ToDense(), 0) {
		t.Error("cached transpose disagrees with T()")
	}
}

// TestConcurrentProductsOnSharedPool hammers the persistent pool from
// many goroutines sharing one matrix — the usage pattern of concurrent
// solver runs — and checks every result (run with -race).
func TestConcurrentProductsOnSharedPool(t *testing.T) {
	m := skewedCSR(t, 2000, 300, 40000, 21)
	b := dense.Random(300, 8, rng(22))
	c := dense.Random(2000, 8, rng(23))
	wantMul := m.MulDenseOpts(b, Tuning{})
	wantTMul := m.TMulDenseOpts(c, Tuning{})
	tn := Tuning{Threads: 4, MinParallelNNZ: 1}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				if got := m.MulDenseOpts(b, tn); !dense.Equal(got, wantMul, 1e-10) {
					errs <- "MulDense under concurrency"
					return
				}
				if got := m.TMulDenseOpts(c, tn); !dense.Equal(got, wantTMul, 1e-10) {
					errs <- "TMulDense under concurrency"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestFMACountsStrategyInvariant pins the acceptance invariant: every
// strategy books exactly nnz·k multiply-adds per product, so the fma
// counter certifies identical work across dispatch choices.
func TestFMACountsStrategyInvariant(t *testing.T) {
	m := adversarialCSR(t, 80, 40, 600, 31)
	b := dense.Random(40, 8, rng(32))
	c := dense.Random(80, 8, rng(33))
	x := dense.Random(40, 1, rng(34)).Data
	y := dense.Random(80, 1, rng(35)).Data
	defer EnableMetrics(nil)
	for _, strat := range allStrategies {
		reg := obs.NewRegistry()
		EnableMetrics(reg)
		tn := Tuning{Threads: 4, Strategy: strat, MinParallelNNZ: 1}
		m.MulDenseOpts(b, tn)
		m.TMulDenseOpts(c, tn)
		m.MulVecOpts(x, tn)
		m.TMulVecOpts(y, tn)
		want := float64(m.NNZ())*8*2 + float64(m.NNZ())*1*2
		got := reg.Counter("sparse_spmm_fma_total", "").Value()
		if got != want {
			t.Errorf("%v: fma=%v, want %v", strat, got, want)
		}
		for _, name := range []string{
			"sparse_spmm_calls_total", "sparse_spmm_t_calls_total",
			"sparse_spmv_calls_total", "sparse_spmv_t_calls_total",
		} {
			if v := reg.Counter(name, "").Value(); v != 1 {
				t.Errorf("%v: %s=%v, want 1", strat, name, v)
			}
		}
	}
}

// TestStrategyAndKernelCounters checks the per-strategy dispatch counters
// the engine exports.
func TestStrategyAndKernelCounters(t *testing.T) {
	m := randomCSR(t, 50, 30, 400, 41)
	defer EnableMetrics(nil)
	reg := obs.NewRegistry()
	EnableMetrics(reg)
	// Kernel flavor pinned to the scalar Go kernels so the expected
	// counter names hold on every CPU; flavor naming is covered by
	// TestSIMDKernelNames.
	goK := Tuning{Kernels: cpu.KernelGo}
	m.MulDenseOpts(dense.Random(30, 8, rng(42)), goK)                                                       // rowpar + k8
	m.TMulDenseOpts(dense.Random(50, 16, rng(43)), goK)                                                     // gather + k16
	m.TMulDenseOpts(dense.Random(50, 3, rng(44)), Tuning{Strategy: StrategyScatter, Kernels: cpu.KernelGo}) // scatter
	m.MulDenseOpts(dense.Random(30, 24, rng(45)), Tuning{Strategy: StrategyLegacy})                         // legacy
	m.MulDenseOpts(dense.Random(30, 24, rng(46)), goK)                                                      // rowpar + panel8
	checks := map[string]float64{
		"sparse_spmm_strategy_rowpar_total":  2,
		"sparse_spmm_strategy_gather_total":  1,
		"sparse_spmm_strategy_scatter_total": 1,
		"sparse_spmm_strategy_legacy_total":  1,
		"sparse_spmm_kernel_k8_total":        1,
		"sparse_spmm_kernel_k16_total":       1,
		"sparse_spmm_kernel_panel8_total":    1,
		"sparse_spmm_kernel_scatter_total":   1,
		"sparse_spmm_kernel_generic_total":   1,
	}
	for name, want := range checks {
		if got := reg.Counter(name, "").Value(); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

// --- Benchmarks (CI smoke: go test -bench=SpMM -benchtime=1x) ---

func benchMatrices(b *testing.B) (uniform, skewed *CSR) {
	return randomCSR(b, 30000, 8000, 600000, 91), skewedCSR(b, 30000, 8000, 600000, 92)
}

func BenchmarkSpMMMulDense(b *testing.B) {
	uniform, skewed := benchMatrices(b)
	blk := dense.Random(8000, 32, rng(93))
	for _, tc := range []struct {
		name string
		m    *CSR
		tn   Tuning
	}{
		{"uniform/legacy", uniform, Tuning{Threads: 4, Strategy: StrategyLegacy}},
		{"uniform/tuned", uniform, Tuning{Threads: 4}},
		{"skewed/legacy", skewed, Tuning{Threads: 4, Strategy: StrategyLegacy}},
		{"skewed/tuned", skewed, Tuning{Threads: 4}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tc.m.MulDenseOpts(blk, tc.tn)
			}
		})
	}
}

// TMulDense is benchmarked in both orientations: tall (output on the
// small side) and wide (output on the large side — the Wᵀ-block shape
// where the scatter plan's per-worker accumulators are most expensive).
func BenchmarkSpMMTMulDense(b *testing.B) {
	uniform, skewed := benchMatrices(b)
	wide := skewedCSR(b, 8000, 30000, 600000, 95)
	tall := dense.Random(30000, 32, rng(94))
	short := dense.Random(8000, 32, rng(96))
	uniform.Transpose() // pay the one-time builds outside the timer
	skewed.Transpose()
	wide.Transpose()
	for _, tc := range []struct {
		name string
		m    *CSR
		blk  *dense.Matrix
		tn   Tuning
	}{
		{"uniform/legacy", uniform, tall, Tuning{Threads: 4, Strategy: StrategyLegacy}},
		{"uniform/tuned", uniform, tall, Tuning{Threads: 4}},
		{"skewed/legacy", skewed, tall, Tuning{Threads: 4, Strategy: StrategyLegacy}},
		{"skewed/tuned", skewed, tall, Tuning{Threads: 4}},
		{"skewed-wide/legacy", wide, short, Tuning{Threads: 4, Strategy: StrategyLegacy}},
		{"skewed-wide/tuned", wide, short, Tuning{Threads: 4}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tc.m.TMulDenseOpts(tc.blk, tc.tn)
			}
		})
	}
}
