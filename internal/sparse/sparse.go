// Package sparse implements compressed sparse row (CSR) matrices with the
// kernels GEBE's solvers are built on: sparse-times-dense products for the
// weight matrix W and its transpose, row/column aggregates, and scaling.
//
// The representation is immutable after construction: GEBE never mutates
// W, and immutability lets multiple goroutines share one matrix without
// synchronization.
package sparse

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gebe/internal/dense"
	"gebe/internal/obs"
)

// Entry is a coordinate-form (COO) element used to build a CSR matrix.
type Entry struct {
	Row, Col int
	Val      float64
}

// CSR is a compressed sparse row matrix.
type CSR struct {
	Rows, Cols int
	RowPtr     []int     // len Rows+1; row i occupies [RowPtr[i], RowPtr[i+1])
	ColIdx     []int     // len NNZ, column index per stored value
	Val        []float64 // len NNZ
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// New builds a CSR matrix from coordinate entries. Duplicate (row,col)
// coordinates are summed. Entries with Val==0 are kept out of the
// structure. It returns an error (rather than panicking) because entries
// typically come straight from parsed input files.
func New(rows, cols int, entries []Entry) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("sparse: negative dimension %dx%d", rows, cols)
	}
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) outside %dx%d", e.Row, e.Col, rows, cols)
		}
	}
	// Count per-row entries, bucket, then sort each row by column and
	// merge duplicates.
	counts := make([]int, rows+1)
	for _, e := range entries {
		counts[e.Row+1]++
	}
	for i := 0; i < rows; i++ {
		counts[i+1] += counts[i]
	}
	colIdx := make([]int, len(entries))
	val := make([]float64, len(entries))
	next := make([]int, rows)
	copy(next, counts[:rows])
	for _, e := range entries {
		p := next[e.Row]
		colIdx[p] = e.Col
		val[p] = e.Val
		next[e.Row]++
	}
	// Sort within each row and compact duplicates/zeros.
	outPtr := make([]int, rows+1)
	w := 0
	for i := 0; i < rows; i++ {
		lo, hi := counts[i], counts[i+1]
		row := rowSorter{colIdx[lo:hi], val[lo:hi]}
		sort.Sort(row)
		outPtr[i] = w
		for p := lo; p < hi; {
			c := colIdx[p]
			var s float64
			for p < hi && colIdx[p] == c {
				s += val[p]
				p++
			}
			if s != 0 {
				colIdx[w] = c
				val[w] = s
				w++
			}
		}
	}
	outPtr[rows] = w
	return &CSR{
		Rows:   rows,
		Cols:   cols,
		RowPtr: outPtr,
		ColIdx: colIdx[:w:w],
		Val:    val[:w:w],
	}, nil
}

type rowSorter struct {
	idx []int
	val []float64
}

func (r rowSorter) Len() int           { return len(r.idx) }
func (r rowSorter) Less(i, j int) bool { return r.idx[i] < r.idx[j] }
func (r rowSorter) Swap(i, j int) {
	r.idx[i], r.idx[j] = r.idx[j], r.idx[i]
	r.val[i], r.val[j] = r.val[j], r.val[i]
}

// At returns the (i,j) element (0 if not stored). O(log nnz(row i)).
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	p := lo + sort.SearchInts(m.ColIdx[lo:hi], j)
	if p < hi && m.ColIdx[p] == j {
		return m.Val[p]
	}
	return 0
}

// T returns the transpose as a new CSR matrix.
func (m *CSR) T() *CSR {
	counts := make([]int, m.Cols+1)
	for _, c := range m.ColIdx {
		counts[c+1]++
	}
	for i := 0; i < m.Cols; i++ {
		counts[i+1] += counts[i]
	}
	colIdx := make([]int, m.NNZ())
	val := make([]float64, m.NNZ())
	next := make([]int, m.Cols)
	copy(next, counts[:m.Cols])
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			c := m.ColIdx[p]
			q := next[c]
			colIdx[q] = i
			val[q] = m.Val[p]
			next[c]++
		}
	}
	return &CSR{Rows: m.Cols, Cols: m.Rows, RowPtr: counts, ColIdx: colIdx, Val: val}
}

// Scaled returns a copy of m with every stored value multiplied by s.
func (m *CSR) Scaled(s float64) *CSR {
	out := &CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: m.RowPtr, ColIdx: m.ColIdx, Val: make([]float64, len(m.Val))}
	for i, v := range m.Val {
		out.Val[i] = s * v
	}
	return out
}

// RowSums returns the per-row sum of stored values (weighted out-degrees).
func (m *CSR) RowSums() []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			s += m.Val[p]
		}
		out[i] = s
	}
	return out
}

// ColSums returns the per-column sum of stored values.
func (m *CSR) ColSums() []float64 {
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			out[m.ColIdx[p]] += m.Val[p]
		}
	}
	return out
}

// FrobeniusNormSq returns Σ w².
func (m *CSR) FrobeniusNormSq() float64 {
	var s float64
	for _, v := range m.Val {
		s += v * v
	}
	return s
}

// ToDense materializes the matrix densely (tests and tiny graphs only).
func (m *CSR) ToDense() *dense.Matrix {
	out := dense.New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := out.Row(i)
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			row[m.ColIdx[p]] = m.Val[p]
		}
	}
	return out
}

// kernelMetrics holds pre-resolved metric handles for the SpMM hot
// paths. Kernel telemetry is off by default — the only per-call cost is
// one atomic pointer load — and is switched on by EnableMetrics (wired
// to -v/-vv/-debug-addr in the commands).
type kernelMetrics struct {
	mulSeconds, tmulSeconds *obs.Histogram
	mulCalls, tmulCalls     *obs.Counter
	fma                     *obs.Counter
}

var kernels atomic.Pointer[kernelMetrics]

// EnableMetrics records SpMM kernel timings and multiply-add counts into
// r; nil disables collection again.
func EnableMetrics(r *obs.Registry) {
	if r == nil {
		kernels.Store(nil)
		return
	}
	kernels.Store(&kernelMetrics{
		mulSeconds:  r.Histogram("sparse_spmm_seconds", "wall-clock of W·B products", nil),
		tmulSeconds: r.Histogram("sparse_spmm_t_seconds", "wall-clock of Wᵀ·B products", nil),
		mulCalls:    r.Counter("sparse_spmm_calls_total", "number of W·B products"),
		tmulCalls:   r.Counter("sparse_spmm_t_calls_total", "number of Wᵀ·B products"),
		fma:         r.Counter("sparse_spmm_fma_total", "multiply-adds performed (nnz × block cols)"),
	})
}

// MulDense computes m · b for dense b, sharding output rows across at most
// threads goroutines (threads <= 1 means sequential). This is the
// O(|E|·k) kernel at the heart of Algorithm 1.
func (m *CSR) MulDense(b *dense.Matrix, threads int) *dense.Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("sparse: MulDense shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	km := kernels.Load()
	var t0 time.Time
	if km != nil {
		t0 = time.Now()
	}
	out := dense.New(m.Rows, b.Cols)
	parallelRows(m.Rows, threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.Row(i)
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				w := m.Val[p]
				brow := b.Row(m.ColIdx[p])
				for j, bv := range brow {
					orow[j] += w * bv
				}
			}
		}
	})
	if km != nil {
		km.mulSeconds.ObserveSince(t0)
		km.mulCalls.Inc()
		km.fma.Add(float64(m.NNZ()) * float64(b.Cols))
	}
	return out
}

// TMulDense computes mᵀ · b without materializing the transpose. The
// scatter pattern makes naive row-sharding racy, so each worker owns a
// private accumulator that is reduced at the end; for GEBE's shapes
// (k ≤ a few hundred) the accumulators are small.
func (m *CSR) TMulDense(b *dense.Matrix, threads int) *dense.Matrix {
	if m.Rows != b.Rows {
		panic(fmt.Sprintf("sparse: TMulDense shape mismatch (%dx%d)ᵀ * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	km := kernels.Load()
	var t0 time.Time
	if km != nil {
		t0 = time.Now()
	}
	nw := workerCount(m.Rows, threads)
	if nw <= 1 {
		out := dense.New(m.Cols, b.Cols)
		m.tMulRange(b, out, 0, m.Rows)
		km.recordTMul(t0, m, b)
		return out
	}
	partials := make([]*dense.Matrix, nw)
	var wg sync.WaitGroup
	chunk := (m.Rows + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := min(lo+chunk, m.Rows)
		partials[w] = dense.New(m.Cols, b.Cols)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			m.tMulRange(b, partials[w], lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	out := partials[0]
	for w := 1; w < nw; w++ {
		out.AddScaled(1, partials[w])
	}
	km.recordTMul(t0, m, b)
	return out
}

// recordTMul is nil-safe so the disabled path stays branch-only.
func (km *kernelMetrics) recordTMul(t0 time.Time, m *CSR, b *dense.Matrix) {
	if km == nil {
		return
	}
	km.tmulSeconds.ObserveSince(t0)
	km.tmulCalls.Inc()
	km.fma.Add(float64(m.NNZ()) * float64(b.Cols))
}

func (m *CSR) tMulRange(b, out *dense.Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		brow := b.Row(i)
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			w := m.Val[p]
			orow := out.Row(m.ColIdx[p])
			for j, bv := range brow {
				orow[j] += w * bv
			}
		}
	}
}

// MulVec computes m · x for a dense vector x, sharding output rows
// across at most threads goroutines (threads <= 1 means sequential),
// mirroring MulDense.
func (m *CSR) MulVec(x []float64, threads int) []float64 {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("sparse: MulVec shape mismatch %dx%d * %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	parallelRows(m.Rows, threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var s float64
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				s += m.Val[p] * x[m.ColIdx[p]]
			}
			out[i] = s
		}
	})
	return out
}

// TMulVec computes mᵀ · x. Like TMulDense, the scatter pattern makes
// naive row-sharding racy, so each worker owns a private accumulator
// that is reduced at the end.
func (m *CSR) TMulVec(x []float64, threads int) []float64 {
	if m.Rows != len(x) {
		panic(fmt.Sprintf("sparse: TMulVec shape mismatch (%dx%d)ᵀ * %d", m.Rows, m.Cols, len(x)))
	}
	nw := workerCount(m.Rows, threads)
	if nw <= 1 {
		out := make([]float64, m.Cols)
		m.tMulVecRange(x, out, 0, m.Rows)
		return out
	}
	partials := make([][]float64, nw)
	var wg sync.WaitGroup
	chunk := (m.Rows + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := min(lo+chunk, m.Rows)
		partials[w] = make([]float64, m.Cols)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			m.tMulVecRange(x, partials[w], lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	out := partials[0]
	for w := 1; w < nw; w++ {
		for j, v := range partials[w] {
			out[j] += v
		}
	}
	return out
}

func (m *CSR) tMulVecRange(x, out []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		xv := x[i]
		if xv == 0 {
			continue
		}
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			out[m.ColIdx[p]] += m.Val[p] * xv
		}
	}
}

func workerCount(rows, threads int) int {
	if threads < 1 {
		threads = 1
	}
	if rows < 4096 { // parallelism not worth the fork/join below this
		return 1
	}
	return threads
}

func parallelRows(rows, threads int, f func(lo, hi int)) {
	nw := workerCount(rows, threads)
	if nw <= 1 {
		f(0, rows)
		return
	}
	chunk := (rows + nw - 1) / nw
	var wg sync.WaitGroup
	for lo := 0; lo < rows; lo += chunk {
		hi := min(lo+chunk, rows)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
