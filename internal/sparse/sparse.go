// Package sparse implements compressed sparse row (CSR) matrices and the
// shape-aware SpMM engine GEBE's solvers are built on: sparse-times-dense
// products for the weight matrix W and its transpose, row/column
// aggregates, and scaling.
//
// The representation is immutable after construction: GEBE never mutates
// W, and immutability lets multiple goroutines share one matrix without
// synchronization — and lets the engine build the transpose once and
// reuse it for every Wᵀ product (see Transpose).
//
// The product entry points come in pairs: MulDense/MulVec and their
// transposed forms take a plain thread count and run the shape-aware
// defaults; the *Opts variants accept a Tuning that call sites use to
// pass scheduling hints (strategy, parallelism gate) down the stack.
package sparse

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gebe/internal/dense"
	"gebe/internal/obs"
)

// Entry is a coordinate-form (COO) element used to build a CSR matrix.
type Entry struct {
	Row, Col int
	Val      float64
}

// CSR is a compressed sparse row matrix. The exported structure is
// immutable after construction; the unexported fields cache the lazily
// built transpose, so a CSR must not be copied by value once in use.
type CSR struct {
	Rows, Cols int
	RowPtr     []int     // len Rows+1; row i occupies [RowPtr[i], RowPtr[i+1])
	ColIdx     []int     // len NNZ, column index per stored value
	Val        []float64 // len NNZ

	tOnce  sync.Once
	tCache *CSR
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// New builds a CSR matrix from coordinate entries. Duplicate (row,col)
// coordinates are summed. Entries with Val==0 are kept out of the
// structure. It returns an error (rather than panicking) because entries
// typically come straight from parsed input files.
func New(rows, cols int, entries []Entry) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("sparse: negative dimension %dx%d", rows, cols)
	}
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) outside %dx%d", e.Row, e.Col, rows, cols)
		}
	}
	// Count per-row entries, bucket, then sort each row by column and
	// merge duplicates.
	counts := make([]int, rows+1)
	for _, e := range entries {
		counts[e.Row+1]++
	}
	for i := 0; i < rows; i++ {
		counts[i+1] += counts[i]
	}
	colIdx := make([]int, len(entries))
	val := make([]float64, len(entries))
	next := make([]int, rows)
	copy(next, counts[:rows])
	for _, e := range entries {
		p := next[e.Row]
		colIdx[p] = e.Col
		val[p] = e.Val
		next[e.Row]++
	}
	// Sort within each row and compact duplicates/zeros.
	outPtr := make([]int, rows+1)
	w := 0
	for i := 0; i < rows; i++ {
		lo, hi := counts[i], counts[i+1]
		row := rowSorter{colIdx[lo:hi], val[lo:hi]}
		sort.Sort(row)
		outPtr[i] = w
		for p := lo; p < hi; {
			c := colIdx[p]
			var s float64
			for p < hi && colIdx[p] == c {
				s += val[p]
				p++
			}
			if s != 0 {
				colIdx[w] = c
				val[w] = s
				w++
			}
		}
	}
	outPtr[rows] = w
	return &CSR{
		Rows:   rows,
		Cols:   cols,
		RowPtr: outPtr,
		ColIdx: colIdx[:w:w],
		Val:    val[:w:w],
	}, nil
}

type rowSorter struct {
	idx []int
	val []float64
}

func (r rowSorter) Len() int           { return len(r.idx) }
func (r rowSorter) Less(i, j int) bool { return r.idx[i] < r.idx[j] }
func (r rowSorter) Swap(i, j int) {
	r.idx[i], r.idx[j] = r.idx[j], r.idx[i]
	r.val[i], r.val[j] = r.val[j], r.val[i]
}

// At returns the (i,j) element (0 if not stored). O(log nnz(row i)).
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	p := lo + sort.SearchInts(m.ColIdx[lo:hi], j)
	if p < hi && m.ColIdx[p] == j {
		return m.Val[p]
	}
	return 0
}

// T returns the transpose as a new, independent CSR matrix. Callers on
// the product hot path should prefer Transpose, which builds once and
// caches.
func (m *CSR) T() *CSR {
	counts := make([]int, m.Cols+1)
	for _, c := range m.ColIdx {
		counts[c+1]++
	}
	for i := 0; i < m.Cols; i++ {
		counts[i+1] += counts[i]
	}
	colIdx := make([]int, m.NNZ())
	val := make([]float64, m.NNZ())
	next := make([]int, m.Cols)
	copy(next, counts[:m.Cols])
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			c := m.ColIdx[p]
			q := next[c]
			colIdx[q] = i
			val[q] = m.Val[p]
			next[c]++
		}
	}
	return &CSR{Rows: m.Cols, Cols: m.Rows, RowPtr: counts, ColIdx: colIdx, Val: val}
}

// Transpose returns mᵀ, building it on first call and caching it for the
// life of m (safe for concurrent first callers via sync.Once). Because
// the matrix is immutable the cache can never go stale; it is what turns
// every Wᵀ product from a scatter with per-worker accumulators into a
// race-free row-parallel gather. The cost is one counting sort over the
// nonzeros plus a second copy of the matrix in memory — pass
// StrategyScatter for one-shot products where that trade is wrong.
func (m *CSR) Transpose() *CSR {
	m.tOnce.Do(func() {
		km := kernels.Load()
		start := time.Now()
		m.tCache = m.T()
		if km != nil {
			km.transposeBuilds.Inc()
			km.transposeSeconds.ObserveSince(start)
		}
	})
	return m.tCache
}

// Scaled returns a copy of m with every stored value multiplied by s.
func (m *CSR) Scaled(s float64) *CSR {
	out := &CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: m.RowPtr, ColIdx: m.ColIdx, Val: make([]float64, len(m.Val))}
	for i, v := range m.Val {
		out.Val[i] = s * v
	}
	return out
}

// RowSums returns the per-row sum of stored values (weighted out-degrees).
func (m *CSR) RowSums() []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			s += m.Val[p]
		}
		out[i] = s
	}
	return out
}

// ColSums returns the per-column sum of stored values.
func (m *CSR) ColSums() []float64 {
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			out[m.ColIdx[p]] += m.Val[p]
		}
	}
	return out
}

// FrobeniusNormSq returns Σ w².
func (m *CSR) FrobeniusNormSq() float64 {
	var s float64
	for _, v := range m.Val {
		s += v * v
	}
	return s
}

// ToDense materializes the matrix densely (tests and tiny graphs only).
func (m *CSR) ToDense() *dense.Matrix {
	out := dense.New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := out.Row(i)
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			row[m.ColIdx[p]] = m.Val[p]
		}
	}
	return out
}

// MulDense computes m · b with the shape-aware defaults, capping
// parallelism at threads goroutines (threads <= 1 means sequential).
func (m *CSR) MulDense(b *dense.Matrix, threads int) *dense.Matrix {
	return m.MulDenseOpts(b, Tuning{Threads: threads})
}

// TMulDense computes mᵀ · b with the shape-aware defaults; see
// TMulDenseOpts for the execution plan.
func (m *CSR) TMulDense(b *dense.Matrix, threads int) *dense.Matrix {
	return m.TMulDenseOpts(b, Tuning{Threads: threads})
}

// MulVec computes m · x with the shape-aware defaults, mirroring MulDense.
func (m *CSR) MulVec(x []float64, threads int) []float64 {
	return m.MulVecOpts(x, Tuning{Threads: threads})
}

// TMulVec computes mᵀ · x with the shape-aware defaults, mirroring
// TMulDense.
func (m *CSR) TMulVec(x []float64, threads int) []float64 {
	return m.TMulVecOpts(x, Tuning{Threads: threads})
}

// op indexes the four product entry points in kernelMetrics.
type op int

const (
	opMul op = iota
	opTMul
	opMulVec
	opTMulVec
	numOps
)

// kernelMetrics holds pre-resolved metric handles for the SpMM hot
// paths. Kernel telemetry is off by default — the only per-call cost is
// one atomic pointer load — and is switched on by EnableMetrics (wired
// to -v/-vv/-debug-addr in the commands).
type kernelMetrics struct {
	seconds [numOps]*obs.Histogram
	calls   [numOps]*obs.Counter
	fma     *obs.Counter
	// strategy and kernel count which execution plan and which inner
	// kernel each product dispatched to, one counter per label.
	strategy, kernel *obs.CounterVec
	transposeBuilds  *obs.Counter
	transposeSeconds *obs.Histogram
}

var kernels atomic.Pointer[kernelMetrics]

// EnableMetrics records SpMM kernel timings, dispatch counts and
// multiply-add counts into r; nil disables collection again. All four
// product entry points are instrumented — MulVec/TMulVec drive
// TopSingularValue and are as hot as the block products.
func EnableMetrics(r *obs.Registry) {
	if r == nil {
		kernels.Store(nil)
		return
	}
	km := &kernelMetrics{
		fma:              r.Counter("sparse_spmm_fma_total", "multiply-adds performed (nnz × block cols)"),
		strategy:         r.CounterVec("sparse_spmm_strategy", "products executed per engine strategy"),
		kernel:           r.CounterVec("sparse_spmm_kernel", "products executed per inner kernel"),
		transposeBuilds:  r.Counter("sparse_transpose_builds_total", "cached transposes materialized"),
		transposeSeconds: r.Histogram("sparse_transpose_build_seconds", "wall-clock to build a cached transpose", nil),
	}
	km.seconds[opMul] = r.Histogram("sparse_spmm_seconds", "wall-clock of W·B products", nil)
	km.seconds[opTMul] = r.Histogram("sparse_spmm_t_seconds", "wall-clock of Wᵀ·B products", nil)
	// The vector products sit on FastBuckets: one SpMV is a single pass
	// over nnz — sub-millisecond on every stand-in — and it is the hop
	// kernel of the point-query path (core.hColumn), where DefBuckets'
	// 100µs floor lumped the whole distribution into two buckets. The
	// block products stay on DefBuckets: they stream nnz×k and land in
	// the millisecond-to-second solver-phase range DefBuckets covers.
	km.seconds[opMulVec] = r.Histogram("sparse_spmv_seconds", "wall-clock of W·x products", obs.FastBuckets)
	km.seconds[opTMulVec] = r.Histogram("sparse_spmv_t_seconds", "wall-clock of Wᵀ·x products", obs.FastBuckets)
	km.calls[opMul] = r.Counter("sparse_spmm_calls_total", "number of W·B products")
	km.calls[opTMul] = r.Counter("sparse_spmm_t_calls_total", "number of Wᵀ·B products")
	km.calls[opMulVec] = r.Counter("sparse_spmv_calls_total", "number of W·x products")
	km.calls[opTMulVec] = r.Counter("sparse_spmv_t_calls_total", "number of Wᵀ·x products")
	kernels.Store(km)
}

// record books one product: wall-clock, call count, multiply-adds (nnz·k
// regardless of strategy or kernel — the invariant the equivalence tests
// pin), and the dispatch counters. Nil-safe so the disabled path stays
// branch-only.
func (km *kernelMetrics) record(o op, t0 time.Time, nnz, k int, strategy, kernel string) {
	if km == nil {
		return
	}
	km.seconds[o].ObserveSince(t0)
	km.calls[o].Inc()
	km.fma.Add(float64(nnz) * float64(k))
	km.strategy.With(strategy).Inc()
	km.kernel.With(kernel).Inc()
}
