package sparse

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gebe/internal/cpu"
	"gebe/internal/dense"
	"gebe/internal/par"
)

// Strategy selects how the engine executes W and Wᵀ products.
type Strategy int

const (
	// StrategyAuto is the shape-aware default: nnz-balanced row
	// partitions on the persistent worker pool, register-blocked kernels
	// picked per block width, and Wᵀ products routed through a cached
	// transpose so they run as race-free row-parallel gathers.
	StrategyAuto Strategy = iota
	// StrategyScatter keeps nnz-balanced scheduling and blocked kernels
	// but never builds the cached transpose: Wᵀ products scatter into
	// per-worker private accumulators that are reduced at the end. Use it
	// for one-shot products on throwaway matrices where doubling the
	// matrix footprint for a single call is a bad trade.
	StrategyScatter
	// StrategyLegacy reproduces the pre-engine behavior exactly —
	// equal-row-count shards, a fresh goroutine set per call, the generic
	// kernel, parallelism gated on row count — and exists as the measured
	// baseline for BENCH_SPMM and the equivalence tests.
	StrategyLegacy
)

// String names the strategy as it appears in metrics and BENCH_SPMM.json.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyScatter:
		return "scatter"
	case StrategyLegacy:
		return "legacy"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// DefaultMinParallelNNZ is the nonzero count below which products run
// sequentially: under ~32Ki multiply-adds per output column the fork/join
// costs more than it saves.
const DefaultMinParallelNNZ = 1 << 15

// Tuning carries the SpMM engine knobs call sites pass down with each
// product. The zero value selects the shape-aware defaults, so existing
// callers that only know a thread count lose nothing.
type Tuning struct {
	// Threads caps the number of parallel partitions (<=1 sequential).
	Threads int
	// Strategy picks the execution plan; see the Strategy constants.
	Strategy Strategy
	// MinParallelNNZ gates parallelism on the product's nonzero count;
	// 0 selects DefaultMinParallelNNZ. The gate deliberately ignores row
	// count: a short-and-wide matrix with millions of nonzeros (a Wᵀ
	// block) parallelizes fine even with few rows.
	MinParallelNNZ int
	// Kernels picks the kernel flavor (Go scalar, SIMD, or fused SIMD).
	// The zero value KernelAuto follows GEBE_SIMD and hardware support;
	// explicit requests are clamped to what the CPU can run. Ignored by
	// StrategyLegacy, which always runs the scalar generic kernels.
	Kernels cpu.KernelMode
}

// Validate rejects tunings no engine path can honor.
func (t Tuning) Validate() error {
	if t.Threads < 0 {
		return fmt.Errorf("sparse: Tuning.Threads must be non-negative, got %d", t.Threads)
	}
	if t.MinParallelNNZ < 0 {
		return fmt.Errorf("sparse: Tuning.MinParallelNNZ must be non-negative, got %d", t.MinParallelNNZ)
	}
	if !t.Kernels.Valid() {
		return fmt.Errorf("sparse: unknown Tuning.Kernels %d", int(t.Kernels))
	}
	switch t.Strategy {
	case StrategyAuto, StrategyScatter, StrategyLegacy:
		return nil
	default:
		return fmt.Errorf("sparse: unknown Tuning.Strategy %d", int(t.Strategy))
	}
}

// workers returns the partition count for a product with the given shape:
// the thread cap, gated on nonzeros and clamped to the row count.
func (t Tuning) workers(nnz, rows int) int {
	nw := t.Threads
	if nw < 1 {
		nw = 1
	}
	gate := t.MinParallelNNZ
	if gate <= 0 {
		gate = DefaultMinParallelNNZ
	}
	if nnz < gate {
		return 1
	}
	if nw > rows {
		nw = rows
	}
	return nw
}

// nnzPartition splits rows [0,rows) into nw contiguous parts of ~equal
// nonzero count by binary-searching the CSR row-pointer array, so on
// power-law graphs no worker drags the tail behind a few hub rows. The
// returned boundaries are non-decreasing with bounds[0]=0 and
// bounds[nw]=rows; a part may be empty when a single hub row outweighs an
// even share.
func nnzPartition(rowPtr []int, nw int) []int {
	rows := len(rowPtr) - 1
	nnz := rowPtr[rows]
	bounds := make([]int, nw+1)
	bounds[nw] = rows
	for w := 1; w < nw; w++ {
		target := rowPtr[0] + nnz*w/nw
		// First boundary r with rowPtr[r] >= target; rows [r-1,r) keep
		// the straddling nonzeros in the earlier part.
		r := sort.SearchInts(rowPtr, target)
		if r > rows {
			r = rows
		}
		if r < bounds[w-1] {
			r = bounds[w-1]
		}
		bounds[w] = r
	}
	return bounds
}

// MulDenseOpts computes m · b under the given tuning. This is the
// O(|E|·k) kernel at the heart of Algorithm 1.
func (m *CSR) MulDenseOpts(b *dense.Matrix, t Tuning) *dense.Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("sparse: MulDense shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	km := kernelsEnabled()
	t0 := kernelsNow(km)
	if t.Strategy == StrategyLegacy {
		out := m.legacyMulDense(b, t.Threads)
		km.record(opMul, t0, m.NNZ(), b.Cols, "legacy", "generic")
		return out
	}
	out, kname := m.mulRowParallel(b, t)
	km.record(opMul, t0, m.NNZ(), b.Cols, "rowpar", kname)
	return out
}

// mulRowParallel is the shared gather plan: nnz-balanced row partitions on
// the pool, blocked kernel per partition. It also serves Wᵀ products once
// they are rewritten as products of the cached transpose.
func (m *CSR) mulRowParallel(b *dense.Matrix, t Tuning) (*dense.Matrix, string) {
	out := dense.New(m.Rows, b.Cols)
	k := b.Cols
	kern, kname := dispatchMul(k, t.Kernels)
	nw := t.workers(m.NNZ(), m.Rows)
	if nw <= 1 {
		kern(m, b.Data, out.Data, k, 0, m.Rows)
		return out, kname
	}
	bounds := nnzPartition(m.RowPtr, nw)
	par.Parts(nw, func(w int) {
		kern(m, b.Data, out.Data, k, bounds[w], bounds[w+1])
	})
	return out, kname
}

// TMulDenseOpts computes mᵀ · b under the given tuning. The default plan
// routes through the cached transpose (built once per matrix) and runs
// the same race-free row-parallel gather as MulDenseOpts, eliminating the
// per-worker private accumulators and the O(workers·Cols·k) reduction the
// scatter plan pays on every call.
func (m *CSR) TMulDenseOpts(b *dense.Matrix, t Tuning) *dense.Matrix {
	if m.Rows != b.Rows {
		panic(fmt.Sprintf("sparse: TMulDense shape mismatch (%dx%d)ᵀ * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	km := kernelsEnabled()
	t0 := kernelsNow(km)
	switch t.Strategy {
	case StrategyLegacy:
		out := m.legacyTMulDense(b, t.Threads)
		km.record(opTMul, t0, m.NNZ(), b.Cols, "legacy", "generic")
		return out
	case StrategyScatter:
		out, kname := m.scatterTMulDense(b, t)
		km.record(opTMul, t0, m.NNZ(), b.Cols, "scatter", kname)
		return out
	default:
		out, kname := m.Transpose().mulRowParallel(b, t)
		km.record(opTMul, t0, m.NNZ(), b.Cols, "gather", kname)
		return out
	}
}

// scatterTMulDense is the transpose-free plan: nnz-balanced partitions of
// m's rows scatter into private accumulators reduced at the end.
func (m *CSR) scatterTMulDense(b *dense.Matrix, t Tuning) (*dense.Matrix, string) {
	k := b.Cols
	kern, kname := dispatchTMul(k, t.Kernels)
	nw := t.workers(m.NNZ(), m.Rows)
	if nw <= 1 {
		out := dense.New(m.Cols, k)
		kern(m, b.Data, out.Data, k, 0, m.Rows)
		return out, kname
	}
	bounds := nnzPartition(m.RowPtr, nw)
	partials := make([]*dense.Matrix, nw)
	par.Parts(nw, func(w int) {
		partials[w] = dense.New(m.Cols, k)
		kern(m, b.Data, partials[w].Data, k, bounds[w], bounds[w+1])
	})
	out := partials[0]
	for w := 1; w < nw; w++ {
		out.AddScaled(1, partials[w])
	}
	return out, kname
}

// MulVecOpts computes m · x under the given tuning.
func (m *CSR) MulVecOpts(x []float64, t Tuning) []float64 {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("sparse: MulVec shape mismatch %dx%d * %d", m.Rows, m.Cols, len(x)))
	}
	km := kernelsEnabled()
	t0 := kernelsNow(km)
	out := make([]float64, m.Rows)
	if t.Strategy == StrategyLegacy {
		legacyParallelRows(m.Rows, t.Threads, func(lo, hi int) {
			mulVecRange(m, x, out, lo, hi)
		})
		km.record(opMulVec, t0, m.NNZ(), 1, "legacy", "dot")
		return out
	}
	nw := t.workers(m.NNZ(), m.Rows)
	if nw <= 1 {
		mulVecRange(m, x, out, 0, m.Rows)
	} else {
		bounds := nnzPartition(m.RowPtr, nw)
		par.Parts(nw, func(w int) {
			mulVecRange(m, x, out, bounds[w], bounds[w+1])
		})
	}
	km.record(opMulVec, t0, m.NNZ(), 1, "rowpar", "dot")
	return out
}

// TMulVecOpts computes mᵀ · x under the given tuning; the default plan is
// the same cached-transpose gather as TMulDenseOpts.
func (m *CSR) TMulVecOpts(x []float64, t Tuning) []float64 {
	if m.Rows != len(x) {
		panic(fmt.Sprintf("sparse: TMulVec shape mismatch (%dx%d)ᵀ * %d", m.Rows, m.Cols, len(x)))
	}
	km := kernelsEnabled()
	t0 := kernelsNow(km)
	switch t.Strategy {
	case StrategyLegacy:
		out := m.legacyTMulVec(x, t.Threads)
		km.record(opTMulVec, t0, m.NNZ(), 1, "legacy", "scatter")
		return out
	case StrategyScatter:
		out := m.scatterTMulVec(x, t)
		km.record(opTMulVec, t0, m.NNZ(), 1, "scatter", "scatter")
		return out
	default:
		wt := m.Transpose()
		out := make([]float64, m.Cols)
		nw := t.workers(wt.NNZ(), wt.Rows)
		if nw <= 1 {
			mulVecRange(wt, x, out, 0, wt.Rows)
		} else {
			bounds := nnzPartition(wt.RowPtr, nw)
			par.Parts(nw, func(w int) {
				mulVecRange(wt, x, out, bounds[w], bounds[w+1])
			})
		}
		km.record(opTMulVec, t0, m.NNZ(), 1, "gather", "dot")
		return out
	}
}

func (m *CSR) scatterTMulVec(x []float64, t Tuning) []float64 {
	nw := t.workers(m.NNZ(), m.Rows)
	if nw <= 1 {
		out := make([]float64, m.Cols)
		m.tMulVecRange(x, out, 0, m.Rows)
		return out
	}
	bounds := nnzPartition(m.RowPtr, nw)
	partials := make([][]float64, nw)
	par.Parts(nw, func(w int) {
		partials[w] = make([]float64, m.Cols)
		m.tMulVecRange(x, partials[w], bounds[w], bounds[w+1])
	})
	out := partials[0]
	for w := 1; w < nw; w++ {
		for j, v := range partials[w] {
			out[j] += v
		}
	}
	return out
}

// --- Legacy plan (pre-engine behavior, kept as the measured baseline) ---

// legacyWorkerCount is the historical gate: parallelism keyed on row
// count alone, which leaves short-and-wide products sequential no matter
// how many nonzeros they carry.
func legacyWorkerCount(rows, threads int) int {
	if threads < 1 {
		threads = 1
	}
	if rows < 4096 {
		return 1
	}
	return threads
}

func legacyParallelRows(rows, threads int, f func(lo, hi int)) {
	nw := legacyWorkerCount(rows, threads)
	if nw <= 1 {
		f(0, rows)
		return
	}
	chunk := (rows + nw - 1) / nw
	var wg sync.WaitGroup
	for lo := 0; lo < rows; lo += chunk {
		hi := min(lo+chunk, rows)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func (m *CSR) legacyMulDense(b *dense.Matrix, threads int) *dense.Matrix {
	out := dense.New(m.Rows, b.Cols)
	legacyParallelRows(m.Rows, threads, func(lo, hi int) {
		mulGeneric(m, b.Data, out.Data, b.Cols, lo, hi)
	})
	return out
}

func (m *CSR) legacyTMulDense(b *dense.Matrix, threads int) *dense.Matrix {
	nw := legacyWorkerCount(m.Rows, threads)
	k := b.Cols
	if nw <= 1 {
		out := dense.New(m.Cols, k)
		m.tMulRange(b.Data, out.Data, k, 0, m.Rows)
		return out
	}
	partials := make([]*dense.Matrix, nw)
	var wg sync.WaitGroup
	chunk := (m.Rows + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := min(lo+chunk, m.Rows)
		partials[w] = dense.New(m.Cols, k)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			m.tMulRange(b.Data, partials[w].Data, k, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	out := partials[0]
	for w := 1; w < nw; w++ {
		out.AddScaled(1, partials[w])
	}
	return out
}

func (m *CSR) legacyTMulVec(x []float64, threads int) []float64 {
	nw := legacyWorkerCount(m.Rows, threads)
	if nw <= 1 {
		out := make([]float64, m.Cols)
		m.tMulVecRange(x, out, 0, m.Rows)
		return out
	}
	partials := make([][]float64, nw)
	var wg sync.WaitGroup
	chunk := (m.Rows + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := min(lo+chunk, m.Rows)
		partials[w] = make([]float64, m.Cols)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			m.tMulVecRange(x, partials[w], lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	out := partials[0]
	for w := 1; w < nw; w++ {
		for j, v := range partials[w] {
			out[j] += v
		}
	}
	return out
}

// kernelsEnabled/kernelsNow keep the disabled-metrics path branch-only.
func kernelsEnabled() *kernelMetrics { return kernels.Load() }

func kernelsNow(km *kernelMetrics) time.Time {
	if km == nil {
		return time.Time{}
	}
	return time.Now()
}
