package sparse

import (
	"runtime"
	"sync"
)

// The engine runs every parallel product on one process-wide pool of
// worker goroutines instead of forking a fresh goroutine set per call.
// GEBE's solvers issue thousands of SpMM calls per run (t sweeps × τ hops
// for KSI alone), so the per-call fork/join — goroutine allocation,
// scheduling, and stack growth — is pure overhead on the hot path. The
// pool is sized to GOMAXPROCS, started lazily on first use, and lives for
// the process: workers block on the task channel when idle, which costs
// nothing.
var (
	poolOnce  sync.Once
	poolTasks chan func()
)

func poolStart() {
	n := runtime.GOMAXPROCS(0)
	poolTasks = make(chan func(), 4*n)
	for i := 0; i < n; i++ {
		go func() {
			for f := range poolTasks {
				f()
			}
		}()
	}
}

// parallelParts runs f(0), …, f(parts-1) and returns when all parts have
// finished. Part 0 always runs on the calling goroutine; the rest are
// handed to the pool, falling back to inline execution when the pool's
// queue is full. Submission never blocks, so a task that itself calls
// parallelParts cannot deadlock the pool — it just runs its sub-parts
// inline.
func parallelParts(parts int, f func(part int)) {
	if parts <= 1 {
		f(0)
		return
	}
	poolOnce.Do(poolStart)
	var wg sync.WaitGroup
	wg.Add(parts - 1)
	for w := 1; w < parts; w++ {
		task := func(w int) func() {
			return func() {
				defer wg.Done()
				f(w)
			}
		}(w)
		select {
		case poolTasks <- task:
		default:
			task()
		}
	}
	f(0)
	wg.Wait()
}
