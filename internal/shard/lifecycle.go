package shard

// The coordinator's request lifecycle mirrors serve's minus load
// shedding (the coordinator does ~no compute — backpressure belongs on
// the shards, whose 429s degrade a gather the same way any shard error
// does):
//
//	recover → in-flight gauge → tracing → deadline stamp → mux
//
// Deadline stamping runs before the mux so the context deadline bounds
// the whole scatter; scatterHeaders re-derives the REMAINING budget at
// fan-out time, so shard calls never get more time than the coordinator
// has left.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"gebe/internal/budget"
	"gebe/internal/obs"
	"gebe/internal/serve"
)

// lifecycle wraps the routed mux in the outer layers.
func (c *Coordinator) lifecycle(next http.Handler) http.Handler {
	return c.recovered(c.counted(c.traced(c.stamped(next))))
}

// bypassed mirrors serve's rule: probes, admin reload, and diagnostics
// skip tracing — they must stay cheap and reachable while the fleet is
// misbehaving.
func bypassed(path string) bool {
	return path == "/v1/healthz" || path == "/v1/reload" || strings.HasPrefix(path, "/debug/")
}

// recovered converts handler panics into JSON 500s; a bad gather must
// not take the coordinator (and the whole serving fleet's front door)
// down with it.
func (c *Coordinator) recovered(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				c.m.panics.Inc()
				c.cfg.Log.Error("coord: handler panic", "path", r.URL.Path, "panic", fmt.Sprint(v))
				c.fail(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// counted maintains the in-flight gauge across every request.
func (c *Coordinator) counted(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.m.inflight.Add(1)
		defer c.m.inflight.Add(-1)
		next.ServeHTTP(w, r)
	})
}

// traced mints or propagates X-Request-ID (the same id every shard call
// carries, so one request correlates across the whole fleet's logs),
// opens the per-request trace the scatter/gather spans hang off, emits
// the access-log line, and offers the finished trace to the retention
// ring.
func (c *Coordinator) traced(next http.Handler) http.Handler {
	if c.tlog == nil && c.cfg.Log == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if bypassed(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		t0 := time.Now()
		id := c.requestID(r)
		ep := endpointName(r)
		var tr *obs.Trace
		req := r
		if c.tlog != nil {
			tr = obs.NewTrace(ep)
			req = r.WithContext(obs.ContextWithTrace(r.Context(), tr))
		}
		// Shard calls read the id from the inbound header; make the
		// minted one visible to them and to the client alike.
		req.Header.Set("X-Request-ID", id)
		w.Header().Set("X-Request-ID", id)
		rec := &statusRecorder{ResponseWriter: w}
		panicked := true
		defer func() {
			status := rec.code
			if status == 0 {
				status = http.StatusOK
			}
			cause := ""
			switch {
			case panicked:
				status, cause = http.StatusInternalServerError, "panic"
			case status == http.StatusServiceUnavailable:
				cause = "unavailable"
			case status >= 500:
				cause = "error"
			case rec.Header().Get(serve.TruncatedHeader) != "":
				cause = "truncated"
			}
			elapsed := time.Since(t0)
			if c.cfg.Log.Enabled(obs.LevelInfo) {
				args := []any{
					"id", id, "endpoint", ep, "status", status,
					"bytes", rec.bytes, "elapsed", elapsed,
				}
				if v := rec.Header().Get("X-Model-Version"); v != "" {
					args = append(args, "model_version", v)
				}
				if cause != "" {
					args = append(args, "cause", cause)
				}
				c.cfg.Log.Info("coord: access", args...)
			}
			if tr != nil {
				c.tlog.Add(obs.TraceEntry{
					ID: id, Name: ep, Status: status, Bytes: rec.bytes,
					Start: t0, Elapsed: elapsed, Cause: cause, Trace: tr.Root(),
				})
			}
		}()
		next.ServeHTTP(rec, req)
		panicked = false
	})
}

// stamped attaches the coordinator's compute deadline as a context
// deadline so every scatter inherits it. The configured budget composes
// with a caller's X-Gebe-Deadline-Ms header through budget.Earliest —
// the same two-source rule the shards apply, so a coordinator behind
// another coordinator still honors the tightest bound.
func (c *Coordinator) stamped(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var dl time.Time
		if c.cfg.Deadline > 0 {
			dl = time.Now().Add(c.cfg.Deadline)
		}
		if raw := r.Header.Get(serve.DeadlineHeader); raw != "" {
			if ms, err := strconv.ParseInt(raw, 10, 64); err == nil {
				dl = budget.Earliest(dl, time.Now().Add(time.Duration(ms)*time.Millisecond))
			}
		}
		if dl.IsZero() {
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithDeadline(r.Context(), dl)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// requestID propagates a sane client-supplied X-Request-ID and mints a
// process-unique one otherwise.
func (c *Coordinator) requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); id != "" && len(id) <= 64 && printableASCII(id) {
		return id
	}
	return c.ridPrefix + strconv.FormatUint(c.rid.Add(1), 10)
}

func printableASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] <= ' ' || s[i] > '~' {
			return false
		}
	}
	return true
}

// endpointName maps a request path to the instrumented endpoint label;
// unrouted paths share one bucket so an URL-shaped attack cannot mint
// unbounded label values.
func endpointName(r *http.Request) string {
	switch r.URL.Path {
	case "/v1/recommend":
		return "recommend"
	case "/v1/similar":
		return "similar"
	case "/v1/score":
		return "score"
	case "/v1/healthz":
		return "healthz"
	case "/v1/info":
		return "info"
	case "/v1/reload":
		return "reload"
	}
	return "other"
}

// statusRecorder captures the response code and byte count for
// instrumentation and the access log.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusRecorder) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps one endpoint with its latency histogram and the
// per-endpoint status-code counters.
func (c *Coordinator) instrument(name string, h http.HandlerFunc) http.Handler {
	hist := c.m.seconds[name]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rec, ok := w.(*statusRecorder)
		if !ok {
			rec = &statusRecorder{ResponseWriter: w}
		}
		h(rec, r)
		code := rec.code
		if code == 0 {
			code = http.StatusOK
		}
		hist.ObserveSince(t0)
		c.m.status.With(fmt.Sprintf("%s_%d", name, code)).Inc()
	})
}

// handleDebugRequests mirrors serve's /debug/requests summary over the
// coordinator's own retention ring.
func (c *Coordinator) handleDebugRequests(w http.ResponseWriter, _ *http.Request) {
	entries := c.tlog.Entries()
	c.writeJSON(w, http.StatusOK, map[string]any{
		"capacity": c.tlog.Cap(),
		"count":    len(entries),
		"requests": entries,
	})
}

// handleDebugRequest returns one retained request in full.
func (c *Coordinator) handleDebugRequest(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := c.tlog.Get(id)
	if !ok {
		c.fail(w, http.StatusNotFound,
			fmt.Errorf("request %q not retained (kept: %d slowest + recent errored)", id, c.tlog.Cap()))
		return
	}
	c.writeJSON(w, http.StatusOK, e)
}

// LatencySnapshot captures the coordinator's latency state in the same
// schema serve emits, so cmd/gebe-regress's latency mode gates
// results/COORD_LATENCY.json with zero new tooling.
func (c *Coordinator) LatencySnapshot() serve.LatencySnapshot {
	snap := serve.LatencySnapshot{
		CreatedAt:     time.Now().UTC(),
		Build:         obs.BuildInfo(),
		UptimeSeconds: time.Since(c.start).Seconds(),
		Endpoints:     make(map[string]serve.EndpointLatency, len(endpoints)),
		Counters: map[string]float64{
			"panics":           c.m.panics.Value(),
			"truncated":        c.m.truncated.Value(),
			"shard_unhealthy":  c.m.ejections.Value(),
			"shard_readmit":    c.m.readmissions.Value(),
			"shard_hedge":      c.m.hedges.Value(),
			"shard_retry":      c.m.retries.Value(),
			"scatter_calls":    c.m.scatterCalls.Value(),
			"scatter_failures": c.m.scatterFailures.Value(),
		},
	}
	for _, ep := range endpoints {
		h := c.m.seconds[ep]
		lat := serve.EndpointLatency{
			Count:      h.Count(),
			SumSeconds: h.Sum(),
			Empty:      h.Count() == 0,
			Quantiles:  make(map[string]float64, len(serve.SnapshotQuantiles)),
		}
		for name, q := range serve.SnapshotQuantiles {
			lat.Quantiles[name] = h.Quantile(q)
		}
		snap.Endpoints[ep] = lat
	}
	return snap
}

// WriteLatencySnapshot persists the snapshot as indented JSON.
func (c *Coordinator) WriteLatencySnapshot(path string) error {
	b, err := json.MarshalIndent(c.LatencySnapshot(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
