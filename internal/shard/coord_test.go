package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"math/rand/v2"

	"gebe/internal/bigraph"
	"gebe/internal/core"
	"gebe/internal/dense"
	"gebe/internal/obs"
	"gebe/internal/serve"
)

// testEmbedding mirrors the serve test fixture: a deterministic 20×35
// embedding and a training graph giving a few users exclusion sets.
func testEmbedding(t testing.TB) (*core.Embedding, *bigraph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewPCG(42, 0))
	emb := &core.Embedding{
		U:      dense.Random(20, 8, rng),
		V:      dense.Random(35, 8, rng),
		Method: "gebep",
	}
	edges := []bigraph.Edge{
		{U: 0, V: 1, W: 1}, {U: 0, V: 2, W: 1}, {U: 0, V: 3, W: 1},
		{U: 5, V: 10, W: 1}, {U: 5, V: 11, W: 2},
		{U: 7, V: 30, W: 1}, {U: 7, V: 34, W: 1},
	}
	g, err := bigraph.New(20, 35, edges)
	if err != nil {
		t.Fatal(err)
	}
	return emb, g
}

// toggleHandler fronts one shard and fails every request with 503 while
// down — the in-process stand-in for a killed shard process (the CI
// smoke test kills real processes).
type toggleHandler struct {
	down atomic.Bool
	h    http.Handler
}

func (th *toggleHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if th.down.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"shard down"}` + "\n"))
		return
	}
	th.h.ServeHTTP(w, r)
}

// fleet is a test topology: one unsharded comparator server plus count
// sharded servers behind toggleHandlers, all over the same embedding.
type fleet struct {
	unsharded *serve.Server
	shards    []*serve.Server
	toggles   []*toggleHandler
	servers   []*httptest.Server
	coord     *Coordinator
}

func newFleet(t *testing.T, count int, cfg Config) *fleet {
	t.Helper()
	emb, g := testEmbedding(t)
	f := &fleet{}
	un, err := serve.New(emb, g, serve.Config{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	f.unsharded = un
	p, err := NewPartition(emb.V.Rows, count)
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, count)
	for i := 0; i < count; i++ {
		slice := Slice(emb, p, i)
		// Every shard loads the FULL train graph; serve slices the
		// exclusion sets to its rows internally.
		srv, err := serve.New(slice, g, serve.Config{
			Metrics: obs.NewRegistry(),
			Reload: func() (*core.Embedding, *bigraph.Graph, error) {
				return Slice(emb, p, i), g, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		th := &toggleHandler{h: srv.Handler()}
		hs := httptest.NewServer(th)
		t.Cleanup(hs.Close)
		f.shards = append(f.shards, srv)
		f.toggles = append(f.toggles, th)
		f.servers = append(f.servers, hs)
		urls[i] = hs.URL
	}
	cfg.Shards = urls
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.coord = c
	return f
}

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	return w
}

// TestGatherBitwiseIdentical is the tentpole invariant: with every
// shard healthy, the coordinator's response bytes equal an unsharded
// server's for the same request — recommend, score, and similar alike.
func TestGatherBitwiseIdentical(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 5} {
		f := newFleet(t, shards, Config{})
		ch, uh := f.coord.Handler(), f.unsharded.Handler()
		posts := []string{
			`{"users":[0,5,7],"n":6}`,
			`{"user":3,"n":1}`,
			`{"users":[0],"n":35}`,
			`{"users":[0,1,2,3,4],"n":10,"mask_train":true}`,
			`{"users":[19]}`,
		}
		for _, body := range posts {
			cw := postJSON(t, ch, "/v1/recommend", body)
			uw := postJSON(t, uh, "/v1/recommend", body)
			if cw.Code != http.StatusOK || uw.Code != http.StatusOK {
				t.Fatalf("shards=%d body=%s: status coord=%d unsharded=%d (%s)",
					shards, body, cw.Code, uw.Code, cw.Body.String())
			}
			if !bytes.Equal(cw.Body.Bytes(), uw.Body.Bytes()) {
				t.Errorf("shards=%d recommend %s:\ncoord:     %s\nunsharded: %s",
					shards, body, cw.Body.String(), uw.Body.String())
			}
			if cw.Header().Get(serve.TruncatedHeader) != "" {
				t.Errorf("shards=%d: full-health gather marked truncated", shards)
			}
		}
		score := `{"pairs":[[0,0],[5,34],[19,17],[7,1]]}`
		cw := postJSON(t, ch, "/v1/score", score)
		uw := postJSON(t, uh, "/v1/score", score)
		if !bytes.Equal(cw.Body.Bytes(), uw.Body.Bytes()) {
			t.Errorf("shards=%d score:\ncoord:     %s\nunsharded: %s", shards, cw.Body.String(), uw.Body.String())
		}
		cs := get(t, ch, "/v1/similar?id=4&side=u&n=7")
		us := get(t, uh, "/v1/similar?id=4&side=u&n=7")
		if !bytes.Equal(cs.Body.Bytes(), us.Body.Bytes()) {
			t.Errorf("shards=%d similar:\ncoord:     %s\nunsharded: %s", shards, cs.Body.String(), us.Body.String())
		}
		// Model-version agreement surfaces as the unsharded header.
		if got, want := cw.Header().Get("X-Model-Version"), uw.Header().Get("X-Model-Version"); got != want {
			t.Errorf("shards=%d: X-Model-Version %q != %q", shards, got, want)
		}
	}
}

// TestBadRequestPropagatesVerbatim: shard-side validation answers are
// the coordinator's answers, byte for byte — identical requests meet
// identical validation on every shard.
func TestBadRequestPropagatesVerbatim(t *testing.T) {
	f := newFleet(t, 3, Config{})
	ch, uh := f.coord.Handler(), f.unsharded.Handler()
	body := `{"users":[99],"n":5}` // user out of range shard-side
	cw := postJSON(t, ch, "/v1/recommend", body)
	uw := postJSON(t, uh, "/v1/recommend", body)
	if cw.Code != http.StatusBadRequest || uw.Code != http.StatusBadRequest {
		t.Fatalf("status coord=%d unsharded=%d", cw.Code, uw.Code)
	}
	if !bytes.Equal(cw.Body.Bytes(), uw.Body.Bytes()) {
		t.Errorf("400 body:\ncoord:     %s\nunsharded: %s", cw.Body.String(), uw.Body.String())
	}
}

// TestCoordinatorValidation: requests the coordinator can reject
// without a scatter never reach a shard.
func TestCoordinatorValidation(t *testing.T) {
	f := newFleet(t, 2, Config{MaxBatch: 3})
	h := f.coord.Handler()
	for _, tc := range []struct {
		body string
		want string
	}{
		{`{"users":[]}`, "users is required"},
		{`{}`, "users is required"},
		{`{"user":1,"users":[2]}`, "not both"},
		{`{"users":[1,2,3,4]}`, "exceeds limit"},
		{`{"users":[1],"n":-2}`, "must be positive"},
		{`{"users":[1],"n":5000}`, "exceeds limit"},
		{`{"users":[1],"bogus":true}`, "unknown field"},
		{`not json`, "bad request body"},
	} {
		w := postJSON(t, h, "/v1/recommend", tc.body)
		if w.Code != http.StatusBadRequest || !strings.Contains(w.Body.String(), tc.want) {
			t.Errorf("%s: got %d %s, want 400 containing %q", tc.body, w.Code, w.Body.String(), tc.want)
		}
	}
	if calls := f.coord.m.scatterCalls.Value(); calls != 0 {
		t.Errorf("validation failures scattered %v shard calls", calls)
	}
}

// TestKilledShardDegrades: a down shard turns into a partial answer —
// 200 with truncated=true and the X-Gebe-Truncated header, never a 5xx
// — and the prober ejects then readmits it around the outage.
func TestKilledShardDegrades(t *testing.T) {
	f := newFleet(t, 3, Config{FailAfter: 1})
	h := f.coord.Handler()
	f.toggles[1].down.Store(true)

	w := postJSON(t, h, "/v1/recommend", `{"users":[0,5],"n":8}`)
	if w.Code != http.StatusOK {
		t.Fatalf("degraded gather: got %d %s, want 200", w.Code, w.Body.String())
	}
	if w.Header().Get(serve.TruncatedHeader) != "true" {
		t.Error("degraded gather missing X-Gebe-Truncated")
	}
	var resp serve.RecommendResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated {
		t.Error("degraded gather missing truncated flag")
	}
	// The merged lists still rank the surviving shards' rows.
	for _, ur := range resp.Results {
		if len(ur.Items) == 0 {
			t.Errorf("user %d: no items from surviving shards", ur.User)
		}
	}

	// The prober ejects the shard (FailAfter=1) and healthz degrades.
	f.coord.probeAll(context.Background())
	if got := f.coord.m.ejections.Value(); got < 1 {
		t.Errorf("shard_unhealthy_total = %v, want >= 1", got)
	}
	hw := get(t, h, "/v1/healthz")
	if hw.Code != http.StatusOK || !strings.Contains(hw.Body.String(), "degraded") {
		t.Errorf("healthz during outage: %d %s", hw.Code, hw.Body.String())
	}
	if got := f.coord.m.healthyShards.Value(); got != 2 {
		t.Errorf("shard_healthy = %v, want 2", got)
	}

	// Ejected shards are skipped entirely: the gather stays truncated
	// but issues no calls to the dead shard.
	before := f.coord.m.scatterFailures.Value()
	w = postJSON(t, h, "/v1/recommend", `{"users":[0],"n":4}`)
	if w.Code != http.StatusOK || w.Header().Get(serve.TruncatedHeader) != "true" {
		t.Fatalf("post-ejection gather: %d truncated=%q", w.Code, w.Header().Get(serve.TruncatedHeader))
	}
	if got := f.coord.m.scatterFailures.Value(); got != before {
		t.Errorf("ejected shard still scattered to: failures %v -> %v", before, got)
	}

	// Recovery: the shard comes back, a probe readmits it, and the
	// gather is whole — and bitwise-identical to unsharded — again.
	f.toggles[1].down.Store(false)
	f.coord.probeAll(context.Background())
	if got := f.coord.m.readmissions.Value(); got != 1 {
		t.Errorf("shard_readmit_total = %v, want 1", got)
	}
	cw := postJSON(t, h, "/v1/recommend", `{"users":[0,5],"n":8}`)
	uw := postJSON(t, f.unsharded.Handler(), "/v1/recommend", `{"users":[0,5],"n":8}`)
	if cw.Code != http.StatusOK || cw.Header().Get(serve.TruncatedHeader) != "" {
		t.Fatalf("post-recovery gather: %d truncated=%q", cw.Code, cw.Header().Get(serve.TruncatedHeader))
	}
	if !bytes.Equal(cw.Body.Bytes(), uw.Body.Bytes()) {
		t.Errorf("post-recovery not identical:\ncoord:     %s\nunsharded: %s", cw.Body.String(), uw.Body.String())
	}
}

// TestAllShardsDown: with nothing to gather from, the coordinator is
// honestly unavailable — its only 5xx.
func TestAllShardsDown(t *testing.T) {
	f := newFleet(t, 2, Config{FailAfter: 1})
	h := f.coord.Handler()
	for _, th := range f.toggles {
		th.down.Store(true)
	}
	w := postJSON(t, h, "/v1/recommend", `{"users":[0]}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("all-down recommend: got %d, want 503", w.Code)
	}
	f.coord.probeAll(context.Background())
	if w := get(t, h, "/v1/healthz"); w.Code != http.StatusServiceUnavailable {
		t.Errorf("all-down healthz: got %d, want 503", w.Code)
	}
}

// TestScoreDegrades: pairs owned by a dead shard come back as zero
// scores listed in missing, the rest are exact.
func TestScoreDegrades(t *testing.T) {
	f := newFleet(t, 3, Config{FailAfter: 1})
	f.toggles[0].down.Store(true) // owns rows [0,12)
	f.coord.probeAll(context.Background())
	f.coord.probeAll(context.Background()) // second failure not needed (FailAfter=1) but harmless
	h := f.coord.Handler()
	w := postJSON(t, h, "/v1/score", `{"pairs":[[0,0],[5,34],[3,1],[19,20]]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("degraded score: %d %s", w.Code, w.Body.String())
	}
	var resp scoreResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated {
		t.Error("degraded score missing truncated flag")
	}
	if len(resp.Missing) != 2 || resp.Missing[0] != 0 || resp.Missing[1] != 2 {
		t.Errorf("missing = %v, want [0 2]", resp.Missing)
	}
	for _, i := range resp.Missing {
		if resp.Scores[i] != 0 {
			t.Errorf("missing pair %d scored %v, want 0", i, resp.Scores[i])
		}
	}
	// The surviving pairs match the unsharded answer exactly.
	uw := postJSON(t, f.unsharded.Handler(), "/v1/score", `{"pairs":[[0,0],[5,34],[3,1],[19,20]]}`)
	var uresp struct {
		Scores []float64 `json:"scores"`
	}
	if err := json.Unmarshal(uw.Body.Bytes(), &uresp); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 3} {
		if resp.Scores[i] != uresp.Scores[i] {
			t.Errorf("pair %d: %v != unsharded %v", i, resp.Scores[i], uresp.Scores[i])
		}
	}
}

// TestSimilarItemSide501: item rows are partitioned, so item-side
// similarity is explicitly unimplemented rather than silently wrong.
func TestSimilarItemSide501(t *testing.T) {
	f := newFleet(t, 2, Config{})
	w := get(t, f.coord.Handler(), "/v1/similar?id=3&side=v")
	if w.Code != http.StatusNotImplemented {
		t.Errorf("side=v: got %d, want 501", w.Code)
	}
}

// TestVersionMismatchFailsReadiness: a shard serving a different model
// version flips the gauge and fails the coordinator's healthz until a
// coordinated reload reconverges the fleet.
func TestVersionMismatchFailsReadiness(t *testing.T) {
	f := newFleet(t, 2, Config{})
	h := f.coord.Handler()

	// Skew the fleet: reload shard 0 directly, behind the coordinator's
	// back (the restarted-shard scenario).
	if w := postJSON(t, f.shards[0].Handler(), "/v1/reload", ""); w.Code != http.StatusOK {
		t.Fatalf("direct shard reload: %d %s", w.Code, w.Body.String())
	}
	f.coord.probeAll(context.Background())
	if got := f.coord.m.versionMismatch.Value(); got != 1 {
		t.Fatalf("shard_version_mismatch = %v, want 1", got)
	}
	if w := get(t, h, "/v1/healthz"); w.Code != http.StatusServiceUnavailable ||
		!strings.Contains(w.Body.String(), "disagree") {
		t.Errorf("mismatch healthz: %d %s", w.Code, w.Body.String())
	}

	// Recommends still answer (each shard's lists are internally
	// consistent) but readiness steers traffic away until the
	// coordinated reload below reconverges the versions.
	if w := postJSON(t, h, "/v1/recommend", `{"users":[0]}`); w.Code != http.StatusOK {
		t.Errorf("mismatch recommend: %d", w.Code)
	}

	if w := postJSON(t, h, "/v1/reload", ""); w.Code != http.StatusOK {
		t.Fatalf("coordinated reload: %d %s", w.Code, w.Body.String())
	}
	if got := f.coord.m.versionMismatch.Value(); got != 0 {
		t.Errorf("post-reload shard_version_mismatch = %v, want 0", got)
	}
	if w := get(t, h, "/v1/healthz"); w.Code != http.StatusOK {
		t.Errorf("post-reload healthz: %d %s", w.Code, w.Body.String())
	}
}

// TestReloadRequiresToken: the coordinator gates its own reload and
// forwards the token to shards.
func TestReloadRequiresToken(t *testing.T) {
	f := newFleet(t, 2, Config{AdminToken: "sesame"})
	h := f.coord.Handler()
	if w := postJSON(t, h, "/v1/reload", ""); w.Code != http.StatusForbidden {
		t.Errorf("tokenless reload: got %d, want 403", w.Code)
	}
	req := httptest.NewRequest("POST", "/v1/reload", nil)
	req.Header.Set("X-Admin-Token", "sesame")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Errorf("tokened reload: got %d %s, want 200", w.Code, w.Body.String())
	}
}

// TestInfoAggregates: /v1/info names every shard with its slice and
// health, plus the fleet totals.
func TestInfoAggregates(t *testing.T) {
	f := newFleet(t, 3, Config{})
	w := get(t, f.coord.Handler(), "/v1/info")
	if w.Code != http.StatusOK {
		t.Fatalf("info: %d", w.Code)
	}
	var info struct {
		Shards       []map[string]any `json:"shards"`
		ShardsTotal  int              `json:"shards_total"`
		Users, Items int
	}
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.ShardsTotal != 3 || len(info.Shards) != 3 {
		t.Fatalf("shards_total=%d len=%d, want 3", info.ShardsTotal, len(info.Shards))
	}
	if info.Users != 20 || info.Items != 35 {
		t.Errorf("users=%d items=%d, want 20/35", info.Users, info.Items)
	}
	rows := 0
	for _, s := range info.Shards {
		if s["healthy"] != true {
			t.Errorf("shard %v unhealthy in full-health fleet", s["addr"])
		}
		rows += int(s["rows"].(float64))
	}
	if rows != 35 {
		t.Errorf("shard rows sum to %d, want 35", rows)
	}
}

// TestDeadlinePropagation: the coordinator's remaining budget reaches
// shards as X-Gebe-Deadline-Ms, so an exhausted coordinator budget
// surfaces as a truncated 200 (shards cut scoring cooperatively), and
// requests arriving with the header already expired degrade the same
// way without burning a scatter's worth of shard compute.
func TestDeadlinePropagation(t *testing.T) {
	f := newFleet(t, 2, Config{})
	h := f.coord.Handler()
	req := httptest.NewRequest("POST", "/v1/recommend", strings.NewReader(`{"users":[0,5],"n":4}`))
	req.Header.Set(serve.DeadlineHeader, "0")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	// An already-expired budget either gathers nothing (503) or gathers
	// shard-truncated responses (200 + truncated); it must never claim a
	// complete answer.
	switch w.Code {
	case http.StatusOK:
		if w.Header().Get(serve.TruncatedHeader) != "true" {
			t.Errorf("expired-deadline 200 without truncation: %s", w.Body.String())
		}
	case http.StatusServiceUnavailable:
	default:
		t.Errorf("expired deadline: got %d %s", w.Code, w.Body.String())
	}
}

// TestCoordLatencySnapshot: the snapshot is serve-schema so the regress
// gate reads it unchanged.
func TestCoordLatencySnapshot(t *testing.T) {
	f := newFleet(t, 2, Config{})
	h := f.coord.Handler()
	postJSON(t, h, "/v1/recommend", `{"users":[0]}`)
	snap := f.coord.LatencySnapshot()
	rec, ok := snap.Endpoints["recommend"]
	if !ok || rec.Count != 1 || rec.Empty {
		t.Errorf("recommend endpoint latency = %+v, want count 1", rec)
	}
	if _, ok := snap.Counters["shard_hedge"]; !ok {
		t.Error("snapshot missing shard_hedge counter")
	}
	dir := t.TempDir()
	path := dir + "/COORD_LATENCY.json"
	if err := f.coord.WriteLatencySnapshot(path); err != nil {
		t.Fatal(err)
	}
	var back serve.LatencySnapshot
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if len(back.Endpoints) != len(endpoints) {
		t.Errorf("snapshot has %d endpoints, want %d", len(back.Endpoints), len(endpoints))
	}
}

// TestProberLifecycle: Start runs the background prober; Close stops it
// without leaking its goroutine.
func TestProberLifecycle(t *testing.T) {
	f := newFleet(t, 2, Config{ProbeInterval: 5 * time.Millisecond, FailAfter: 1})
	f.coord.Start()
	f.toggles[0].down.Store(true)
	deadline := time.Now().Add(2 * time.Second)
	for f.coord.m.healthyShards.Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("prober never ejected the downed shard")
		}
		time.Sleep(2 * time.Millisecond)
	}
	f.toggles[0].down.Store(false)
	for f.coord.m.healthyShards.Value() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("prober never readmitted the recovered shard")
		}
		time.Sleep(2 * time.Millisecond)
	}
	f.coord.Close()
}
