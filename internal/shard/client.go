package shard

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"gebe/internal/obs"
)

// maxAttempts bounds how many HTTP attempts one logical shard call may
// make: the primary plus one more — either a hedge (the primary is
// slow) or a retry (the primary failed in transport). One spare keeps
// tail latency bounded without doubling shard load under stress.
const maxAttempts = 2

// maxShardBody bounds a shard response read; the largest legitimate
// body is a MaxBatch×MaxN recommend list, far under this.
const maxShardBody = 64 << 20

// Response is one shard's HTTP answer, fully read. Any status counts:
// transport succeeded, so the caller classifies 4xx/5xx itself (a 400
// propagates to the client, a 5xx degrades the gather) — neither is
// retried or hedged over.
type Response struct {
	Status int
	Header http.Header
	Body   []byte
}

// clientMetrics counts the fan-out behaviors shared by every Client of
// one Coordinator.
type clientMetrics struct {
	hedges  *obs.Counter
	retries *obs.Counter
}

// Client issues HTTP calls to one shard with bounded redundancy: a
// retry on transport error, and a hedged second request when the first
// is still unanswered after hedgeAfter. Whichever attempt answers
// first wins; the loser's request context is cancelled so its
// connection and goroutine wind down immediately — attempts report on
// a buffered channel, so no goroutine ever blocks on a lost race.
type Client struct {
	addr       string // base URL, e.g. "http://127.0.0.1:8091"
	hc         *http.Client
	hedgeAfter time.Duration // 0 disables hedging
	m          *clientMetrics
}

type attemptResult struct {
	resp *Response
	err  error
}

// Do performs one logical call: method+path+body against the shard,
// with hdr (may be nil) copied onto every attempt. The context bounds
// the whole call — deadline and cancellation included; callers
// propagate the request's remaining budget both here and in the
// X-Gebe-Deadline-Ms header so the shard stops computing when the
// coordinator stops waiting.
func (c *Client) Do(ctx context.Context, method, path string, hdr http.Header, body []byte) (*Response, error) {
	cctx, cancel := context.WithCancel(ctx)
	// Cancelling on return kills the losing in-flight attempt; the
	// winner's body is fully read before its result is sent, so the
	// cancel can never truncate it.
	defer cancel()

	results := make(chan attemptResult, maxAttempts)
	launched := 0
	launch := func() {
		launched++
		go func() {
			resp, err := c.once(cctx, method, path, hdr, body)
			results <- attemptResult{resp, err}
		}()
	}
	launch()

	var hedge <-chan time.Time
	if c.hedgeAfter > 0 {
		t := time.NewTimer(c.hedgeAfter)
		defer t.Stop()
		hedge = t.C
	}

	var firstErr error
	done := 0
	for {
		select {
		case <-cctx.Done():
			if firstErr != nil {
				return nil, fmt.Errorf("%s%s: %w (after %v)", c.addr, path, firstErr, cctx.Err())
			}
			return nil, fmt.Errorf("%s%s: %w", c.addr, path, cctx.Err())
		case <-hedge:
			hedge = nil
			if launched < maxAttempts {
				c.m.hedges.Inc()
				launch()
			}
		case a := <-results:
			if a.err == nil {
				return a.resp, nil
			}
			done++
			if firstErr == nil {
				firstErr = a.err
			}
			if launched < maxAttempts && cctx.Err() == nil {
				c.m.retries.Inc()
				launch()
				continue
			}
			if done == launched {
				return nil, fmt.Errorf("%s%s: %w", c.addr, path, firstErr)
			}
		}
	}
}

// once is a single HTTP attempt: build, send, read the body to
// completion. Everything runs under ctx so a cancelled loser aborts
// mid-transfer.
func (c *Client) once(ctx context.Context, method, path string, hdr http.Header, body []byte) (*Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.addr+path, rd)
	if err != nil {
		return nil, err
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxShardBody))
	if err != nil {
		return nil, err
	}
	return &Response{Status: resp.StatusCode, Header: resp.Header, Body: b}, nil
}
