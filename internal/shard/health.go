package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// shardState is everything the coordinator knows about one shard
// process: its client, its health, and the identity it advertised —
// model version (from the X-Model-Version header every serve response
// carries) and the item-row slice it holds (from /v1/info's shard
// block). The slice is what turns a shard-local item id back into a
// global one: global = local + offset.
type shardState struct {
	addr   string
	client *Client

	mu      sync.Mutex
	healthy bool
	ejected bool // was healthy once, then ejected (distinguishes readmission from first admission)
	fails   int  // consecutive probe/scatter failures
	version string
	// known marks the identity fields below as learned from /v1/info.
	known        bool
	index, count int
	offset, rows int
	total, users int
	lastProbe    time.Time
	lastErr      string
}

// snapshotState is a consistent copy of a shard's mutable fields, the
// form handlers read so no lock is held across a scatter.
type snapshotState struct {
	addr         string
	healthy      bool
	known        bool
	version      string
	index, count int
	offset, rows int
	total, users int
	lastErr      string
}

func (s *shardState) snapshot() snapshotState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return snapshotState{
		addr: s.addr, healthy: s.healthy, known: s.known, version: s.version,
		index: s.index, count: s.count, offset: s.offset, rows: s.rows,
		total: s.total, users: s.users, lastErr: s.lastErr,
	}
}

// shardInfo mirrors the fields the coordinator reads from a shard's
// /v1/info body.
type shardInfo struct {
	ModelVersion uint64 `json:"model_version"`
	Users        int    `json:"users"`
	Items        int    `json:"items"`
	Shard        *struct {
		Index  int `json:"index"`
		Count  int `json:"count"`
		Offset int `json:"offset"`
		Total  int `json:"total"`
	} `json:"shard"`
}

// probeAll probes every shard once, synchronously. Called on startup
// (so the coordinator starts with a live view), by the background
// prober, and after a reload fan-out (so version agreement recovers
// without waiting an interval).
func (c *Coordinator) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, s := range c.shards {
		wg.Add(1)
		go func(s *shardState) {
			defer wg.Done()
			c.probe(ctx, s)
		}(s)
	}
	wg.Wait()
	c.updateAggregates()
}

// probe checks one shard's liveness via /v1/healthz — shed-exempt on
// the serve side, so overload can never masquerade as death — and
// refreshes its identity from /v1/info only when the version header
// changed or was never learned (info is NOT shed-exempt; probing it
// every tick could eject a merely busy shard).
func (c *Coordinator) probe(ctx context.Context, s *shardState) {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
	defer cancel()
	resp, err := s.client.Do(pctx, http.MethodGet, "/v1/healthz", nil, nil)
	if err != nil || resp.Status != http.StatusOK {
		if err == nil {
			err = fmt.Errorf("healthz status %d", resp.Status)
		}
		c.noteFailure(s, err)
		return
	}
	version := resp.Header.Get("X-Model-Version")
	s.mu.Lock()
	needInfo := !s.known || s.version != version
	s.mu.Unlock()
	if needInfo {
		if err := c.refreshInfo(pctx, s); err != nil {
			c.noteFailure(s, err)
			return
		}
	}
	c.noteSuccess(s, version)
}

// refreshInfo learns (or relearns) a shard's identity from /v1/info.
// An unsharded server (no shard block) fronts as a single full slice —
// the degenerate 1-shard topology used by tests and migrations.
func (c *Coordinator) refreshInfo(ctx context.Context, s *shardState) error {
	resp, err := s.client.Do(ctx, http.MethodGet, "/v1/info", nil, nil)
	if err != nil {
		return err
	}
	if resp.Status != http.StatusOK {
		return fmt.Errorf("info status %d", resp.Status)
	}
	var info shardInfo
	if err := json.Unmarshal(resp.Body, &info); err != nil {
		return fmt.Errorf("info body: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.users = info.Users
	s.rows = info.Items
	if info.Shard != nil {
		s.index, s.count = info.Shard.Index, info.Shard.Count
		s.offset, s.total = info.Shard.Offset, info.Shard.Total
	} else {
		s.index, s.count, s.offset, s.total = 0, 1, 0, info.Items
	}
	s.known = true
	return nil
}

// noteFailure records one failed probe or scatter call; FailAfter
// consecutive failures eject the shard from the healthy set.
func (c *Coordinator) noteFailure(s *shardState, err error) {
	s.mu.Lock()
	s.fails++
	s.lastErr = err.Error()
	s.lastProbe = time.Now()
	eject := s.healthy && s.fails >= c.cfg.FailAfter
	if eject {
		s.healthy = false
		s.ejected = true
	}
	s.mu.Unlock()
	c.m.probeFailures.Inc()
	if eject {
		c.m.ejections.Inc()
		c.cfg.Log.Warn("coord: shard ejected", "addr", s.addr, "err", err.Error())
		c.updateAggregates()
	}
}

// noteSuccess records a healthy answer, readmitting an ejected shard.
func (c *Coordinator) noteSuccess(s *shardState, version string) {
	s.mu.Lock()
	readmit := s.ejected
	s.ejected = false
	s.healthy = true
	s.fails = 0
	s.lastErr = ""
	s.version = version
	s.lastProbe = time.Now()
	s.mu.Unlock()
	if readmit {
		c.m.readmissions.Inc()
		c.cfg.Log.Info("coord: shard readmitted", "addr", s.addr, "model_version", version)
	}
	c.updateAggregates()
}

// updateAggregates recomputes the health gauges: the healthy count and
// the version-agreement flag. Versions must agree across every healthy
// shard — a coordinator merging two model versions would produce lists
// no single model ranked, so disagreement fails readiness (healthz 503)
// until a coordinated /v1/reload brings the fleet back in step.
func (c *Coordinator) updateAggregates() {
	healthy, mismatch := c.agreement()
	c.m.healthyShards.Set(float64(healthy))
	if mismatch {
		c.m.versionMismatch.Set(1)
	} else {
		c.m.versionMismatch.Set(0)
	}
}

// agreement counts healthy shards and reports whether their model
// versions disagree.
func (c *Coordinator) agreement() (healthy int, mismatch bool) {
	version := ""
	for _, s := range c.shards {
		st := s.snapshot()
		if !st.healthy {
			continue
		}
		healthy++
		if version == "" {
			version = st.version
		} else if st.version != version {
			mismatch = true
		}
	}
	return healthy, mismatch
}

// prober is the background probe loop; Close stops it.
func (c *Coordinator) prober(ctx context.Context) {
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.probeAll(ctx)
		}
	}
}
