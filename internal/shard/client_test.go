package shard

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"gebe/internal/obs"
)

func newTestClient(t *testing.T, h http.Handler, hedgeAfter time.Duration) (*Client, *clientMetrics) {
	t.Helper()
	hs := httptest.NewServer(h)
	t.Cleanup(hs.Close)
	reg := obs.NewRegistry()
	m := &clientMetrics{
		hedges:  reg.Counter("shard_hedge_total", ""),
		retries: reg.Counter("shard_retry_total", ""),
	}
	return &Client{addr: hs.URL, hc: hs.Client(), hedgeAfter: hedgeAfter, m: m}, m
}

func TestClientPlainCall(t *testing.T) {
	c, m := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-Request-ID") != "rid-1" {
			t.Errorf("header not forwarded: %q", r.Header.Get("X-Request-ID"))
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok"))
	}), 0)
	hdr := http.Header{}
	hdr.Set("X-Request-ID", "rid-1")
	resp, err := c.Do(context.Background(), http.MethodGet, "/v1/healthz", hdr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusOK || string(resp.Body) != "ok" {
		t.Errorf("got %d %q", resp.Status, resp.Body)
	}
	if m.hedges.Value() != 0 || m.retries.Value() != 0 {
		t.Errorf("plain call counted hedges=%v retries=%v", m.hedges.Value(), m.retries.Value())
	}
}

// TestClientErrorStatusIsNotRetried: any HTTP status is a transport
// success — a 503 comes back as a Response for the gather to classify,
// and the shard is not hit again.
func TestClientErrorStatusIsNotRetried(t *testing.T) {
	var calls atomic.Int32
	c, m := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}), 0)
	resp, err := c.Do(context.Background(), http.MethodGet, "/v1/similar", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.Status)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("shard saw %d calls, want 1", got)
	}
	if m.retries.Value() != 0 {
		t.Errorf("503 was retried")
	}
}

// TestClientRetriesTransportError: a connection that dies mid-request
// is retried once; the retry succeeds.
func TestClientRetriesTransportError(t *testing.T) {
	var calls atomic.Int32
	c, m := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("recorder is not a hijacker")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			conn.Close() // transport error on the client side
			return
		}
		w.Write([]byte("recovered"))
	}), 0)
	resp, err := c.Do(context.Background(), http.MethodGet, "/v1/info", nil, nil)
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if string(resp.Body) != "recovered" {
		t.Errorf("body = %q", resp.Body)
	}
	if m.retries.Value() != 1 {
		t.Errorf("shard_retry_total = %v, want 1", m.retries.Value())
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("shard saw %d calls, want 2", got)
	}
}

// TestClientRetryExhaustion: both attempts failing surfaces the first
// error; maxAttempts bounds the damage.
func TestClientRetryExhaustion(t *testing.T) {
	var calls atomic.Int32
	c, _ := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		hj := w.(http.Hijacker)
		conn, _, _ := hj.Hijack()
		conn.Close()
	}), 0)
	if _, err := c.Do(context.Background(), http.MethodGet, "/v1/info", nil, nil); err == nil {
		t.Fatal("want error after exhausted retries")
	}
	if got := calls.Load(); got != int32(maxAttempts) {
		t.Errorf("shard saw %d calls, want %d", got, maxAttempts)
	}
}

// TestClientHedgeWins: when the primary stalls, the hedge answers and
// the stalled attempt is cancelled — Do returns the hedge's response
// well before the primary would have finished.
func TestClientHedgeWins(t *testing.T) {
	var calls atomic.Int32
	c, m := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Primary: stall until cancelled. Selecting on the request
			// context keeps the server goroutine from outliving the test.
			<-r.Context().Done()
			return
		}
		w.Write([]byte("hedge"))
	}), 5*time.Millisecond)
	t0 := time.Now()
	resp, err := c.Do(context.Background(), http.MethodGet, "/v1/similar", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "hedge" {
		t.Errorf("body = %q, want hedge's answer", resp.Body)
	}
	if m.hedges.Value() != 1 {
		t.Errorf("shard_hedge_total = %v, want 1", m.hedges.Value())
	}
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Errorf("hedged call took %v — waited for the stalled primary", elapsed)
	}
}

// TestClientContextCancel: cancelling the caller's context aborts the
// call with the context error.
func TestClientContextCancel(t *testing.T) {
	started := make(chan struct{}, maxAttempts)
	c, _ := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-r.Context().Done()
	}), 0)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
	}()
	if _, err := c.Do(ctx, http.MethodGet, "/v1/similar", nil, nil); err == nil {
		t.Fatal("want error from cancelled context")
	}
}

// TestClientNoGoroutineLeak is satellite coverage for the hedging
// contract: after many hedged calls whose losers were in flight when
// the winner returned, the goroutine count settles back to baseline —
// losing attempts are context-cancelled, not abandoned.
func TestClientNoGoroutineLeak(t *testing.T) {
	var calls atomic.Int32
	c, _ := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1)%2 == 1 {
			<-r.Context().Done() // every odd call stalls until cancelled
			return
		}
		w.Write([]byte("ok"))
	}), time.Millisecond)
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		if _, err := c.Do(context.Background(), http.MethodGet, "/v1/similar", nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Cancelled losers unwind asynchronously; poll until they are gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
