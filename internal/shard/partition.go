// Package shard partitions the item side of a trained embedding across
// processes and coordinates queries over the resulting fleet: a
// deterministic contiguous row partition (cmd/gebe-shard splits one
// embedding file into N self-describing shard files), and a
// scatter/gather coordinator (cmd/gebe-coord) that fronts N gebe-serve
// item-shard processes behind the same /v1 API — scattering each query
// to every shard under the request's remaining internal/budget
// deadline, hedging slow shards, and merging per-shard top-N lists
// through the shared eval.TopNHeap so a full-health gather is
// bitwise-identical to a single unsharded server.
package shard

import (
	"fmt"

	"gebe/internal/core"
	"gebe/internal/dense"
)

// Partition is the deterministic contiguous row partition of a
// Total-row item side across Count shards: shard i holds rows
// [Range(i)). The first Total%Count shards take one extra row, so shard
// sizes differ by at most one and the mapping is a pure function of
// (Total, Count) — any process that knows both reconstructs the same
// partition with no coordination.
type Partition struct {
	Total, Count int
}

// NewPartition validates a partition shape. Empty shards are rejected:
// a shard with no rows would serve nothing and still cost a scatter
// call, so Count may not exceed Total.
func NewPartition(total, count int) (Partition, error) {
	if total < 0 {
		return Partition{}, fmt.Errorf("shard: negative item count %d", total)
	}
	if count <= 0 {
		return Partition{}, fmt.Errorf("shard: shard count must be positive, got %d", count)
	}
	if count > total {
		return Partition{}, fmt.Errorf("shard: %d shards over %d items leaves empty shards", count, total)
	}
	return Partition{Total: total, Count: count}, nil
}

// Range returns the half-open global row interval [lo, hi) shard i
// holds. i outside [0, Count) panics — like matrix row access, a bad
// shard index is a programming bug.
func (p Partition) Range(i int) (lo, hi int) {
	if i < 0 || i >= p.Count {
		panic(fmt.Sprintf("shard: index %d outside [0,%d)", i, p.Count))
	}
	base, rem := p.Total/p.Count, p.Total%p.Count
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

// Rows returns the number of rows shard i holds.
func (p Partition) Rows(i int) int {
	lo, hi := p.Range(i)
	return hi - lo
}

// Of returns the shard holding global row v. v outside [0, Total)
// panics.
func (p Partition) Of(v int) int {
	if v < 0 || v >= p.Total {
		panic(fmt.Sprintf("shard: row %d outside [0,%d)", v, p.Total))
	}
	base, rem := p.Total/p.Count, p.Total%p.Count
	// The first rem shards hold base+1 rows each.
	if cut := rem * (base + 1); v < cut {
		return v / (base + 1)
	} else {
		return rem + (v-cut)/base
	}
}

// Slice copies shard i of e: the full U side, the V rows of Range(i),
// and the shard identity stamped into the meta fields so the slice is
// self-describing (persisted as "#meta shard" by gebe.WriteEmbedding).
// Solver diagnostics are carried over unchanged — a shard of a
// converged embedding is still that embedding.
func Slice(e *core.Embedding, p Partition, i int) *core.Embedding {
	lo, hi := p.Range(i)
	if e.V.Rows != p.Total {
		panic(fmt.Sprintf("shard: partition covers %d items but embedding has %d", p.Total, e.V.Rows))
	}
	out := *e // shallow copy carries Method and the solver diagnostics
	out.U = e.U.Clone()
	out.V = dense.New(hi-lo, e.V.Cols)
	copy(out.V.Data, e.V.Data[lo*e.V.Cols:hi*e.V.Cols])
	if len(e.Values) > 0 {
		out.Values = append([]float64(nil), e.Values...)
	}
	out.ShardIndex, out.ShardCount = i, p.Count
	out.ShardOffset, out.ShardTotal = lo, p.Total
	return &out
}
