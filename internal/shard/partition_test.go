package shard

import (
	"math"
	"math/rand/v2"
	"testing"

	"gebe/internal/core"
	"gebe/internal/dense"
)

func TestPartitionCoversDisjointly(t *testing.T) {
	for _, tc := range []struct{ total, count int }{
		{10, 1}, {10, 2}, {10, 3}, {11, 4}, {7, 7}, {1000, 13},
	} {
		p, err := NewPartition(tc.total, tc.count)
		if err != nil {
			t.Fatalf("NewPartition(%d,%d): %v", tc.total, tc.count, err)
		}
		next := 0
		for i := 0; i < p.Count; i++ {
			lo, hi := p.Range(i)
			if lo != next {
				t.Fatalf("%d/%d shard %d starts at %d, want %d", tc.total, tc.count, i, lo, next)
			}
			if hi <= lo {
				t.Fatalf("%d/%d shard %d is empty [%d,%d)", tc.total, tc.count, i, lo, hi)
			}
			if d := (hi - lo) - tc.total/tc.count; d != 0 && d != 1 {
				t.Fatalf("%d/%d shard %d holds %d rows, want balanced", tc.total, tc.count, i, hi-lo)
			}
			for v := lo; v < hi; v++ {
				if got := p.Of(v); got != i {
					t.Fatalf("%d/%d Of(%d) = %d, want %d", tc.total, tc.count, v, got, i)
				}
			}
			next = hi
		}
		if next != tc.total {
			t.Fatalf("%d/%d covers %d rows", tc.total, tc.count, next)
		}
	}
}

func TestPartitionRejectsBadShapes(t *testing.T) {
	for _, tc := range []struct{ total, count int }{
		{-1, 2}, {10, 0}, {10, -3}, {3, 4},
	} {
		if _, err := NewPartition(tc.total, tc.count); err == nil {
			t.Errorf("NewPartition(%d,%d) accepted", tc.total, tc.count)
		}
	}
}

// testEmb builds a deterministic embedding for slicing tests.
func testEmb(nu, nv, k int) *core.Embedding {
	rng := rand.New(rand.NewPCG(7, 1))
	return &core.Embedding{
		U: dense.Random(nu, k, rng), V: dense.Random(nv, k, rng),
		Method: "gebep", SigmaScale: 1.25, Sweeps: 3, Converged: true,
		StopReason: "converged", Values: []float64{3, 2, 1},
	}
}

func TestSliceCarriesRowsAndMeta(t *testing.T) {
	e := testEmb(6, 11, 4)
	p, _ := NewPartition(11, 3)
	covered := 0
	for i := 0; i < p.Count; i++ {
		s := Slice(e, p, i)
		lo, hi := p.Range(i)
		if s.ShardIndex != i || s.ShardCount != 3 || s.ShardOffset != lo || s.ShardTotal != 11 {
			t.Fatalf("shard %d meta: %+v", i, s)
		}
		if !s.Sharded() {
			t.Fatalf("shard %d not marked sharded", i)
		}
		if s.U.Rows != e.U.Rows || s.V.Rows != hi-lo {
			t.Fatalf("shard %d shape %dx%d", i, s.U.Rows, s.V.Rows)
		}
		if s.Method != e.Method || s.SigmaScale != e.SigmaScale || !s.Converged {
			t.Fatalf("shard %d dropped diagnostics: %+v", i, s)
		}
		for r := lo; r < hi; r++ {
			got, want := s.V.Row(r-lo), e.V.Row(r)
			for c := range want {
				if math.Float64bits(got[c]) != math.Float64bits(want[c]) {
					t.Fatalf("shard %d row %d differs from global row %d at col %d", i, r-lo, r, c)
				}
			}
		}
		// The slice must be a copy: mutating it may not reach the source.
		s.V.Row(0)[0] += 1
		s.U.Row(0)[0] += 1
		covered += s.V.Rows
	}
	if covered != 11 {
		t.Fatalf("slices cover %d rows", covered)
	}
	if e.V.Row(0)[0] != testEmb(6, 11, 4).V.Row(0)[0] {
		t.Fatal("Slice aliases the source V matrix")
	}
	if e.U.Row(0)[0] != testEmb(6, 11, 4).U.Row(0)[0] {
		t.Fatal("Slice aliases the source U matrix")
	}
}
