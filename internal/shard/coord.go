package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gebe/internal/budget"
	"gebe/internal/eval"
	"gebe/internal/obs"
	"gebe/internal/serve"
)

// Config parameterizes a Coordinator. Shards is required; everything
// else defaults to match an unsharded gebe-serve, which is what makes
// the full-health gather bitwise-identical to a single server.
type Config struct {
	// Shards lists the shard base URLs (e.g. "http://127.0.0.1:8091"),
	// one gebe-serve process per entry. Order is irrelevant — each shard
	// self-describes its row slice via /v1/info.
	Shards []string
	// Deadline bounds one coordinator request end to end; the remaining
	// budget is propagated to every shard call as X-Gebe-Deadline-Ms.
	// 0 disables it.
	Deadline time.Duration
	// HedgeAfter launches a second identical shard request when the
	// first has not answered after this long; first answer wins, the
	// loser is context-cancelled. 0 disables hedging.
	HedgeAfter time.Duration
	// ProbeInterval is the background health-probe period (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round-trip (default 500ms).
	ProbeTimeout time.Duration
	// FailAfter is the consecutive-failure count that ejects a shard
	// from the healthy set (default 2). Probes and scatter calls both
	// count; a successful probe readmits.
	FailAfter int
	// DefaultN, MaxN, MaxBatch mirror the serve limits; they MUST match
	// the shard configuration for merged responses to be identical to an
	// unsharded server's.
	DefaultN int
	MaxN     int
	MaxBatch int
	// TraceRequests sets the trace retention ring size, as in serve.
	TraceRequests int
	// AdminToken gates POST /v1/reload on the coordinator and is
	// forwarded to every shard's reload.
	AdminToken string
	// Metrics receives the coord_*/shard_* instrumentation; nil selects
	// the process-wide default registry.
	Metrics *obs.Registry
	// Log receives coordinator logging; nil disables it.
	Log *obs.Logger
}

// Coordinator fronts a fleet of item-sharded gebe-serve processes
// behind the unsharded /v1 API: it scatters each query to every healthy
// shard under the request's remaining deadline, gathers the per-shard
// top-N lists, remaps shard-local item ids to global ones, and merges
// through eval.TopNHeap — the same selection core the shards themselves
// rank with, so a full-health merge reproduces a single unsharded
// server bit for bit.
type Coordinator struct {
	cfg    Config
	start  time.Time
	shards []*shardState

	tlog      *obs.TraceLog
	ridPrefix string
	rid       atomic.Uint64

	stop context.CancelFunc

	m coordMetrics
}

type coordMetrics struct {
	inflight        *obs.Gauge
	panics          *obs.Counter
	truncated       *obs.Counter
	healthyShards   *obs.Gauge
	versionMismatch *obs.Gauge
	ejections       *obs.Counter
	readmissions    *obs.Counter
	probeFailures   *obs.Counter
	scatterCalls    *obs.Counter
	scatterFailures *obs.Counter
	hedges          *obs.Counter
	retries         *obs.Counter
	status          *obs.CounterVec
	seconds         map[string]*obs.Histogram
}

// endpoints mirrors serve's instrumented route set.
var endpoints = []string{"recommend", "similar", "score", "healthz", "info", "reload"}

// New builds a Coordinator and synchronously probes every shard once,
// so the first request already sees a live topology. Call Start to run
// the background prober and Close to stop it.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("shard: coordinator needs at least one shard URL")
	}
	if cfg.DefaultN <= 0 {
		cfg.DefaultN = 10
	}
	if cfg.MaxN <= 0 {
		cfg.MaxN = 1000
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1024
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 500 * time.Millisecond
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 2
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.DefaultRegistry()
	}
	c := &Coordinator{cfg: cfg, start: time.Now()}
	c.tlog = obs.NewTraceLog(cfg.TraceRequests)
	c.ridPrefix = fmt.Sprintf("%08x-", uint32(time.Now().UnixNano()))
	r := cfg.Metrics
	c.m = coordMetrics{
		inflight:        r.Gauge("coord_inflight", "requests currently being coordinated"),
		panics:          r.Counter("coord_panics_total", "handler panics recovered to 500"),
		truncated:       r.Counter("coord_truncated_total", "gathers answered partially (shard down, failed, or shard-side truncation)"),
		healthyShards:   r.Gauge("shard_healthy", "shards currently in the healthy set"),
		versionMismatch: r.Gauge("shard_version_mismatch", "1 when healthy shards disagree on model version (coordinator not ready)"),
		ejections:       r.Counter("shard_unhealthy_total", "shard ejections from the healthy set"),
		readmissions:    r.Counter("shard_readmit_total", "ejected shards readmitted by a successful probe"),
		probeFailures:   r.Counter("shard_probe_failures_total", "failed shard probes and scatter calls"),
		scatterCalls:    r.Counter("shard_scatter_calls_total", "shard calls issued by scatters"),
		scatterFailures: r.Counter("shard_scatter_failures_total", "shard calls that failed after retry/hedging"),
		hedges:          r.Counter("shard_hedge_total", "hedged second requests launched"),
		retries:         r.Counter("shard_retry_total", "transport-error retries launched"),
		status:          r.CounterVec("coord_status", "responses per endpoint and status code"),
		seconds:         make(map[string]*obs.Histogram, len(endpoints)),
	}
	for _, ep := range endpoints {
		c.m.seconds[ep] = r.Histogram("coord_"+ep+"_seconds",
			"wall-clock of coordinated /v1/"+ep+" requests", obs.FastBuckets)
	}
	cm := &clientMetrics{hedges: c.m.hedges, retries: c.m.retries}
	hc := &http.Client{} // per-call contexts bound every request; no global timeout
	c.shards = make([]*shardState, len(cfg.Shards))
	for i, addr := range cfg.Shards {
		c.shards[i] = &shardState{
			addr:   addr,
			client: &Client{addr: addr, hc: hc, hedgeAfter: cfg.HedgeAfter, m: cm},
		}
	}
	c.probeAll(context.Background())
	return c, nil
}

// Start launches the background health prober.
func (c *Coordinator) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	c.stop = cancel
	go c.prober(ctx)
}

// Close stops the background prober (if started).
func (c *Coordinator) Close() {
	if c.stop != nil {
		c.stop()
	}
}

// Handler returns the coordinator's serving surface: the same /v1
// routes an unsharded gebe-serve exposes, wrapped in the lifecycle
// layer, plus /debug/requests when tracing is on.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/recommend", c.instrument("recommend", c.handleRecommend))
	mux.Handle("GET /v1/similar", c.instrument("similar", c.handleSimilar))
	mux.Handle("POST /v1/score", c.instrument("score", c.handleScore))
	mux.Handle("GET /v1/healthz", c.instrument("healthz", c.handleHealthz))
	mux.Handle("GET /v1/info", c.instrument("info", c.handleInfo))
	mux.Handle("POST /v1/reload", c.instrument("reload", c.handleReload))
	if c.tlog != nil {
		mux.HandleFunc("GET /debug/requests", c.handleDebugRequests)
		mux.HandleFunc("GET /debug/requests/{id}", c.handleDebugRequest)
	}
	return c.lifecycle(mux)
}

// healthyShards returns a stable snapshot of the currently healthy,
// identity-known shards.
func (c *Coordinator) healthyShards() []snapshotState {
	out := make([]snapshotState, 0, len(c.shards))
	for _, s := range c.shards {
		st := s.snapshot()
		if st.healthy && st.known {
			out = append(out, st)
		}
	}
	return out
}

// scatterHeaders builds the headers every shard call carries: the
// propagated request id and the remaining deadline in milliseconds.
func scatterHeaders(r *http.Request) http.Header {
	h := http.Header{}
	if id := r.Header.Get("X-Request-ID"); id != "" {
		h.Set("X-Request-ID", id)
	}
	if dl, ok := r.Context().Deadline(); ok {
		ms := budget.Remaining(dl).Milliseconds()
		h.Set(serve.DeadlineHeader, strconv.FormatInt(ms, 10))
	}
	return h
}

// shardCall is one gathered shard result.
type shardCall struct {
	shard snapshotState
	resp  *Response
	err   error
}

// scatter fans body out to every listed shard concurrently and gathers
// all results. Each shard call is hedged/retried by its Client; a call
// that still fails counts toward the shard's ejection threshold. The
// parent span gets one detached child per shard, so concurrent shard
// spans cannot close each other.
func (c *Coordinator) scatter(r *http.Request, shards []snapshotState, method, path string, body []byte, parent *obs.Span) []shardCall {
	hdr := scatterHeaders(r)
	if body != nil {
		hdr.Set("Content-Type", "application/json")
	}
	calls := make([]shardCall, len(shards))
	var wg sync.WaitGroup
	for i, st := range shards {
		wg.Add(1)
		go func(i int, st snapshotState) {
			defer wg.Done()
			sp := parent.StartChild("shard").Set("addr", st.addr)
			c.m.scatterCalls.Inc()
			resp, err := c.shards[c.indexOf(st.addr)].client.Do(r.Context(), method, path, hdr, body)
			calls[i] = shardCall{shard: st, resp: resp, err: err}
			if err != nil {
				c.m.scatterFailures.Inc()
				c.noteFailure(c.shards[c.indexOf(st.addr)], err)
				sp.Set("err", err.Error())
			} else {
				sp.Set("status", resp.Status)
			}
			sp.End()
		}(i, st)
	}
	wg.Wait()
	return calls
}

// indexOf maps a shard address back to its state slot.
func (c *Coordinator) indexOf(addr string) int {
	for i, s := range c.shards {
		if s.addr == addr {
			return i
		}
	}
	panic("shard: unknown address " + addr)
}

// --- /v1/recommend -------------------------------------------------

// recommendRequest mirrors the fields the coordinator must read to
// merge; the body itself is forwarded to shards verbatim, so any field
// the coordinator does not understand is still honored shard-side.
type recommendRequest struct {
	Users     []int  `json:"users"`
	User      *int   `json:"user"`
	N         int    `json:"n"`
	MaskTrain *bool  `json:"mask_train"`
	Mode      string `json:"mode"`
	Nprobe    int    `json:"nprobe"`
}

func (c *Coordinator) handleRecommend(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err != nil {
		c.fail(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
		return
	}
	var req recommendRequest
	dec := json.NewDecoder(bytesReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		c.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	users := req.Users
	if req.User != nil {
		if len(users) > 0 {
			c.fail(w, http.StatusBadRequest, errors.New("set either user or users, not both"))
			return
		}
		users = []int{*req.User}
	}
	if len(users) == 0 {
		c.fail(w, http.StatusBadRequest, errors.New("users is required and must be non-empty"))
		return
	}
	if len(users) > c.cfg.MaxBatch {
		c.fail(w, http.StatusBadRequest, fmt.Errorf("batch of %d users exceeds limit %d", len(users), c.cfg.MaxBatch))
		return
	}
	n, err := c.clampN(req.N)
	if err != nil {
		c.fail(w, http.StatusBadRequest, err)
		return
	}
	shards := c.healthyShards()
	if len(shards) == 0 {
		c.failUnavailable(w, errors.New("no healthy shards"))
		return
	}
	c.stampVersion(w, shards)

	tr := obs.FromContext(r.Context())
	scatterSp := tr.StartSpan("scatter").Set("shards", len(shards)).Set("users", len(users))
	calls := c.scatter(r, shards, http.MethodPost, "/v1/recommend", body, scatterSp)
	scatterSp.End()

	// Classify: a 400 means the request itself is bad — every shard saw
	// the same bytes, so the first 400 is THE answer, proxied verbatim.
	gathered := make([]*serve.RecommendResponse, 0, len(calls))
	truncated := len(calls) < len(c.shards) // ejected shards contribute nothing
	for _, call := range calls {
		switch {
		case call.err != nil:
			truncated = true
		case call.resp.Status == http.StatusBadRequest:
			c.proxyResponse(w, call.resp)
			return
		case call.resp.Status != http.StatusOK:
			truncated = true
		default:
			var sr serve.RecommendResponse
			if err := json.Unmarshal(call.resp.Body, &sr); err != nil {
				truncated = true
				continue
			}
			if sr.Truncated {
				truncated = true
			}
			// Remap shard-local item ids to global rows before merging.
			off := call.shard.offset
			for _, ur := range sr.Results {
				for j := range ur.Items {
					ur.Items[j].Item += off
				}
			}
			gathered = append(gathered, &sr)
		}
	}
	if len(gathered) == 0 {
		c.failUnavailable(w, errors.New("all shards failed"))
		return
	}

	gatherSp := tr.StartSpan("gather").Set("responses", len(gathered))
	resp := serve.RecommendResponse{N: n, Results: make([]serve.UserRecommendation, len(users))}
	var heap eval.TopNHeap
	for i, u := range users {
		resp.Results[i] = serve.UserRecommendation{User: u}
		heap.Reset(n)
		contributed := 0
		for _, sr := range gathered {
			if i >= len(sr.Results) || sr.Results[i].Items == nil {
				// This shard's answer is missing the user (shard-side
				// truncation); the merged list is incomplete.
				truncated = true
				continue
			}
			contributed++
			for _, it := range sr.Results[i].Items {
				heap.Push(it.Item, it.Score)
			}
		}
		if contributed == 0 {
			continue // prefilled null items mark the user unanswered
		}
		ids, scores := heap.Ranked()
		items := make([]serve.ScoredItem, len(ids))
		for j := range ids {
			items[j] = serve.ScoredItem{Item: ids[j], Score: scores[j]}
		}
		resp.Results[i].Items = items
	}
	resp.Truncated = truncated
	gatherSp.Set("truncated", truncated).End()
	if truncated {
		c.m.truncated.Inc()
		w.Header().Set(serve.TruncatedHeader, "true")
	}
	c.writeJSON(w, http.StatusOK, resp)
}

// --- /v1/similar ---------------------------------------------------

// handleSimilar proxies side=u queries to one healthy shard verbatim —
// every shard holds the full user matrix, so any shard's answer is the
// unsharded answer byte for byte. side=v would need a cross-shard
// cosine gather over rows no single process holds; it is explicitly
// unimplemented on a sharded deployment (501).
func (c *Coordinator) handleSimilar(w http.ResponseWriter, r *http.Request) {
	side := r.URL.Query().Get("side")
	if side != "" && side != "u" && side != "v" {
		c.fail(w, http.StatusBadRequest, fmt.Errorf("side must be u or v, got %q", side))
		return
	}
	if side == "v" {
		c.fail(w, http.StatusNotImplemented,
			errors.New("item-side similarity is not available on a sharded deployment (items are partitioned across shards)"))
		return
	}
	shards := c.healthyShards()
	if len(shards) == 0 {
		c.failUnavailable(w, errors.New("no healthy shards"))
		return
	}
	tr := obs.FromContext(r.Context())
	path := r.URL.Path
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	hdr := scatterHeaders(r)
	// One shard suffices; walk the healthy set until one answers.
	for _, st := range shards {
		sp := tr.StartSpan("proxy").Set("addr", st.addr)
		c.m.scatterCalls.Inc()
		resp, err := c.shards[c.indexOf(st.addr)].client.Do(r.Context(), http.MethodGet, path, hdr, nil)
		sp.End()
		if err != nil {
			c.m.scatterFailures.Inc()
			c.noteFailure(c.shards[c.indexOf(st.addr)], err)
			continue
		}
		c.proxyResponse(w, resp)
		return
	}
	c.failUnavailable(w, errors.New("all shards failed"))
}

// --- /v1/score -----------------------------------------------------

type scoreRequest struct {
	Pairs [][2]int `json:"pairs"`
}

// scoreResponse extends serve's {"scores": [...]} with degradation
// markers; both extras are omitempty, so a full-health response is
// byte-identical to an unsharded server's.
type scoreResponse struct {
	Scores []float64 `json:"scores"`
	// Missing lists pair indices whose owning shard was down or failed;
	// their scores are 0.
	Missing   []int `json:"missing,omitempty"`
	Truncated bool  `json:"truncated,omitempty"`
}

func (c *Coordinator) handleScore(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err != nil {
		c.fail(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
		return
	}
	var req scoreRequest
	dec := json.NewDecoder(bytesReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		c.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Pairs) == 0 {
		c.fail(w, http.StatusBadRequest, errors.New("pairs is required and must be non-empty"))
		return
	}
	if len(req.Pairs) > c.cfg.MaxBatch {
		c.fail(w, http.StatusBadRequest, fmt.Errorf("batch of %d pairs exceeds limit %d", len(req.Pairs), c.cfg.MaxBatch))
		return
	}
	shards := c.healthyShards()
	if len(shards) == 0 {
		c.failUnavailable(w, errors.New("no healthy shards"))
		return
	}
	c.stampVersion(w, shards)
	users, total := c.dimensions(shards)
	// Validate globally before scattering, mirroring serve's message.
	for i, p := range req.Pairs {
		if p[0] < 0 || p[0] >= users || p[1] < 0 || p[1] >= total {
			c.fail(w, http.StatusBadRequest, fmt.Errorf("pair %d: (%d,%d) outside %dx%d", i, p[0], p[1], users, total))
			return
		}
	}

	// Group pairs by owning shard, remapping item ids to local rows.
	type group struct {
		shard   snapshotState
		pairs   [][2]int
		indices []int
	}
	groups := make(map[string]*group)
	var missing []int
	for i, p := range req.Pairs {
		owner := ownerOf(shards, p[1])
		if owner == nil {
			missing = append(missing, i)
			continue
		}
		g := groups[owner.addr]
		if g == nil {
			g = &group{shard: *owner}
			groups[owner.addr] = g
		}
		g.pairs = append(g.pairs, [2]int{p[0], p[1] - owner.offset})
		g.indices = append(g.indices, i)
	}

	tr := obs.FromContext(r.Context())
	scatterSp := tr.StartSpan("scatter").Set("shards", len(groups)).Set("pairs", len(req.Pairs))
	resp := scoreResponse{Scores: make([]float64, len(req.Pairs))}
	var mu sync.Mutex
	var bad *Response
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g *group) {
			defer wg.Done()
			sp := scatterSp.StartChild("shard").Set("addr", g.shard.addr).Set("pairs", len(g.pairs))
			defer sp.End()
			gb, _ := json.Marshal(scoreRequest{Pairs: g.pairs})
			c.m.scatterCalls.Inc()
			sres, err := c.shards[c.indexOf(g.shard.addr)].client.Do(r.Context(), http.MethodPost, "/v1/score", scatterHeadersJSON(r), gb)
			if err != nil || sres.Status != http.StatusOK {
				if err != nil {
					c.m.scatterFailures.Inc()
					c.noteFailure(c.shards[c.indexOf(g.shard.addr)], err)
				}
				mu.Lock()
				if err == nil && sres.Status == http.StatusBadRequest && bad == nil {
					bad = sres
				}
				missing = append(missing, g.indices...)
				mu.Unlock()
				return
			}
			var out struct {
				Scores []float64 `json:"scores"`
			}
			if jerr := json.Unmarshal(sres.Body, &out); jerr != nil || len(out.Scores) != len(g.pairs) {
				mu.Lock()
				missing = append(missing, g.indices...)
				mu.Unlock()
				return
			}
			mu.Lock()
			for k, idx := range g.indices {
				resp.Scores[idx] = out.Scores[k]
			}
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	scatterSp.End()
	if bad != nil {
		c.proxyResponse(w, bad)
		return
	}
	if len(missing) == len(req.Pairs) {
		c.failUnavailable(w, errors.New("all shards failed"))
		return
	}
	if len(missing) > 0 {
		sortInts(missing)
		resp.Missing = missing
		resp.Truncated = true
		c.m.truncated.Inc()
		w.Header().Set(serve.TruncatedHeader, "true")
	}
	c.writeJSON(w, http.StatusOK, resp)
}

// ownerOf finds the healthy shard whose row slice covers global item v.
func ownerOf(shards []snapshotState, v int) *snapshotState {
	for i := range shards {
		if v >= shards[i].offset && v < shards[i].offset+shards[i].rows {
			return &shards[i]
		}
	}
	return nil
}

// dimensions returns the fleet's (users, total items) as advertised by
// the healthy shards.
func (c *Coordinator) dimensions(shards []snapshotState) (users, total int) {
	for _, st := range shards {
		if st.users > users {
			users = st.users
		}
		if st.total > total {
			total = st.total
		}
	}
	return users, total
}

// --- /v1/healthz and /v1/info --------------------------------------

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	healthy, mismatch := c.agreement()
	switch {
	case healthy == 0:
		c.failUnavailable(w, errors.New("no healthy shards"))
	case mismatch:
		c.failUnavailable(w, errors.New("healthy shards disagree on model version (run /v1/reload)"))
	default:
		status := "ok"
		if healthy < len(c.shards) {
			status = "degraded"
		}
		c.writeJSON(w, http.StatusOK, map[string]any{
			"status":         status,
			"shards_healthy": healthy,
			"shards_total":   len(c.shards),
			"uptime_seconds": time.Since(c.start).Seconds(),
		})
	}
}

func (c *Coordinator) handleInfo(w http.ResponseWriter, _ *http.Request) {
	shards := make([]map[string]any, len(c.shards))
	for i, s := range c.shards {
		st := s.snapshot()
		shards[i] = map[string]any{
			"addr":          st.addr,
			"healthy":       st.healthy,
			"model_version": st.version,
			"offset":        st.offset,
			"rows":          st.rows,
		}
		if st.lastErr != "" {
			shards[i]["last_error"] = st.lastErr
		}
	}
	healthy, mismatch := c.agreement()
	users, total := c.dimensions(c.healthyShards())
	c.writeJSON(w, http.StatusOK, map[string]any{
		"build":            obs.BuildInfo(),
		"shards":           shards,
		"shards_healthy":   healthy,
		"shards_total":     len(c.shards),
		"version_mismatch": mismatch,
		"users":            users,
		"items":            total,
		"deadline_ms":      c.cfg.Deadline.Milliseconds(),
		"hedge_after_ms":   c.cfg.HedgeAfter.Milliseconds(),
	})
}

// --- /v1/reload ----------------------------------------------------

// handleReload fans the reload out to EVERY shard — healthy or not;
// a version-lagging ejected shard is exactly the one that needs the
// new model — then reprobes so version agreement recovers immediately.
func (c *Coordinator) handleReload(w http.ResponseWriter, r *http.Request) {
	if c.cfg.AdminToken != "" && r.Header.Get("X-Admin-Token") != c.cfg.AdminToken {
		c.fail(w, http.StatusForbidden, errors.New("reload requires a valid X-Admin-Token"))
		return
	}
	tr := obs.FromContext(r.Context())
	hdr := scatterHeaders(r)
	if tok := r.Header.Get("X-Admin-Token"); tok != "" {
		hdr.Set("X-Admin-Token", tok)
	}
	type shardReload struct {
		Addr         string `json:"addr"`
		Ok           bool   `json:"ok"`
		ModelVersion uint64 `json:"model_version,omitempty"`
		Error        string `json:"error,omitempty"`
	}
	results := make([]shardReload, len(c.shards))
	fanSp := tr.StartSpan("reload_fanout").Set("shards", len(c.shards))
	var wg sync.WaitGroup
	for i, s := range c.shards {
		wg.Add(1)
		go func(i int, s *shardState) {
			defer wg.Done()
			sp := fanSp.StartChild("shard").Set("addr", s.addr)
			defer sp.End()
			resp, err := s.client.Do(r.Context(), http.MethodPost, "/v1/reload", hdr, nil)
			res := shardReload{Addr: s.addr}
			if err != nil {
				res.Error = err.Error()
			} else if resp.Status != http.StatusOK {
				res.Error = fmt.Sprintf("status %d: %s", resp.Status, truncateBody(resp.Body))
			} else {
				var rr struct {
					ModelVersion uint64 `json:"model_version"`
				}
				if jerr := json.Unmarshal(resp.Body, &rr); jerr != nil {
					res.Error = jerr.Error()
				} else {
					res.Ok, res.ModelVersion = true, rr.ModelVersion
				}
			}
			results[i] = res
		}(i, s)
	}
	wg.Wait()
	fanSp.End()
	// Reprobe so the agreement gauge and offsets reflect the new fleet
	// state before the response lands, then reconcile any version skew
	// the fan-out could not erase on its own.
	c.probeAll(r.Context())
	c.reconcile(r.Context(), hdr)
	ok := true
	for _, res := range results {
		ok = ok && res.Ok
	}
	code := http.StatusOK
	if !ok {
		code = http.StatusBadGateway
	}
	c.writeJSON(w, code, map[string]any{"ok": ok, "shards": results})
}

// reconcile repairs version skew a single fan-out cannot: a shard's
// version is its per-process swap counter, not a content hash, so a
// restarted shard trails the fleet even after reloading once. Each
// round reloads only the healthy shards trailing the fleet maximum —
// every reload serves the same latest model file, so converging the
// counters converges the content — and stops as soon as the healthy
// set agrees (or after a bounded number of rounds, leaving readiness
// failing honestly).
func (c *Coordinator) reconcile(ctx context.Context, hdr http.Header) {
	const maxRounds = 16
	for range maxRounds {
		if _, mismatch := c.agreement(); !mismatch {
			return
		}
		var max uint64
		for _, s := range c.shards {
			if st := s.snapshot(); st.healthy {
				if v, err := strconv.ParseUint(st.version, 10, 64); err == nil && v > max {
					max = v
				}
			}
		}
		advanced := false
		for _, s := range c.shards {
			st := s.snapshot()
			if !st.healthy {
				continue
			}
			if v, err := strconv.ParseUint(st.version, 10, 64); err != nil || v >= max {
				continue
			}
			if resp, err := s.client.Do(ctx, http.MethodPost, "/v1/reload", hdr, nil); err == nil && resp.Status == http.StatusOK {
				advanced = true
			}
		}
		c.probeAll(ctx)
		if !advanced {
			return
		}
	}
}

// --- shared helpers ------------------------------------------------

// proxyResponse relays a shard response verbatim: status, body bytes,
// and the serve headers that matter to clients. Used where one shard's
// answer IS the coordinator's answer (similar proxy, propagated 400s).
func (c *Coordinator) proxyResponse(w http.ResponseWriter, resp *Response) {
	for _, k := range []string{"Content-Type", "X-Model-Version", "X-Retrieval-Mode", "Retry-After", serve.TruncatedHeader} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(resp.Status)
	w.Write(resp.Body)
}

// stampVersion puts the fleet's agreed model version on the response
// when the healthy shards agree; on disagreement the header is omitted
// (and readiness is already failing).
func (c *Coordinator) stampVersion(w http.ResponseWriter, shards []snapshotState) {
	if len(shards) == 0 {
		return
	}
	v := shards[0].version
	for _, st := range shards[1:] {
		if st.version != v {
			return
		}
	}
	w.Header().Set("X-Model-Version", v)
}

func (c *Coordinator) clampN(n int) (int, error) {
	if n == 0 {
		return c.cfg.DefaultN, nil
	}
	if n < 0 {
		return 0, fmt.Errorf("n must be positive, got %d", n)
	}
	if n > c.cfg.MaxN {
		return 0, fmt.Errorf("n %d exceeds limit %d", n, c.cfg.MaxN)
	}
	return n, nil
}

const maxBody = 1 << 20

type errorResponse struct {
	Error string `json:"error"`
}

func (c *Coordinator) fail(w http.ResponseWriter, code int, err error) {
	c.writeJSON(w, code, errorResponse{Error: err.Error()})
}

// failUnavailable is the coordinator's 503: the fleet cannot answer at
// all (every shard down or the topology inconsistent). Partial fleet
// failures never land here — they degrade to truncated 200s.
func (c *Coordinator) failUnavailable(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", "1")
	c.fail(w, http.StatusServiceUnavailable, err)
}

func (c *Coordinator) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		c.cfg.Log.Warn("coord: encoding response", "err", err)
	}
}

func truncateBody(b []byte) string {
	const max = 256
	if len(b) > max {
		b = b[:max]
	}
	return string(b)
}

// scatterHeadersJSON is scatterHeaders plus the JSON content type.
func scatterHeadersJSON(r *http.Request) http.Header {
	h := scatterHeaders(r)
	h.Set("Content-Type", "application/json")
	return h
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }
