package eval

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"gebe/internal/dense"
	"gebe/internal/obs"
)

// TileUsers is the GEMM tile height the scorer batches users into: one
// U_tile·Vᵀ product streams V once for the whole tile instead of once
// per user, which is where scoring time goes when the item side is
// large.
const TileUsers = 16

// Scorer is the tiled GEMM scoring core shared by the top-N evaluation
// protocol and the serving layer: it streams full score rows
// U[u]·Vᵀ (one float per item) for any set of users, TileUsers rows per
// dense product. The two sides only need matching widths, so the same
// type scores U against V (recommendation) or a side against itself
// (same-side similarity).
//
// A Scorer owns its tile buffers and is NOT safe for concurrent use;
// create one per goroutine (allocation is deferred until the first
// Score call and sized to the largest batch actually seen, so idle or
// single-user scorers stay small).
type Scorer struct {
	u, v   *dense.Matrix
	ubatch *dense.Matrix // gathered user rows, tile-height × k
	tile   *dense.Matrix // score tile, tile-height × |V|
}

// NewScorer builds a scorer over the given row sets. It panics when the
// widths differ — like the dense package, a shape mismatch is a
// programming bug, not a runtime condition.
func NewScorer(u, v *dense.Matrix) *Scorer {
	if u.Cols != v.Cols {
		panic(fmt.Sprintf("eval: scorer sides have widths %d and %d", u.Cols, v.Cols))
	}
	return &Scorer{u: u, v: v}
}

// Users returns the number of scoreable users (rows of the left side).
func (s *Scorer) Users() int { return s.u.Rows }

// Items returns the number of scored items (rows of the right side).
func (s *Scorer) Items() int { return s.v.Rows }

// Score streams the full score row for each listed user, in order,
// batching TileUsers users per GEMM. checkpoint (optional) runs once
// before every tile — the cooperative cancellation hook for deadlines
// and shared abort flags; a non-nil error stops scoring and is returned
// as-is. emit receives each user id with its score row; the row is a
// view into the scorer's tile buffer and is only valid until emit
// returns. User ids outside [0, Users()) panic, mirroring dense row
// access.
func (s *Scorer) Score(users []int, checkpoint func() error, emit func(user int, scores []float64)) error {
	return s.score(nil, users, checkpoint, emit)
}

// ScoreCtx is Score with request-scoped tracing: when ctx carries an
// obs.Trace (the serve layer's per-request trace), every GEMM tile is
// recorded as a "score.tile" span attributed with its user count and
// item width — the per-tile visibility that turns "this request was
// slow" into "tile 37 was slow". An untraced context is exactly Score.
func (s *Scorer) ScoreCtx(ctx context.Context, users []int, checkpoint func() error, emit func(user int, scores []float64)) error {
	return s.score(obs.FromContext(ctx), users, checkpoint, emit)
}

func (s *Scorer) score(tr *obs.Trace, users []int, checkpoint func() error, emit func(user int, scores []float64)) error {
	if len(users) == 0 {
		return nil
	}
	h := TileUsers
	if len(users) < h {
		h = len(users)
	}
	if s.ubatch == nil || s.ubatch.Rows < h {
		s.ubatch = dense.New(h, s.u.Cols)
		s.tile = dense.New(h, s.v.Rows)
	}
	m := scorerMetrics.Load()
	for lo := 0; lo < len(users); lo += TileUsers {
		if checkpoint != nil {
			if err := checkpoint(); err != nil {
				return err
			}
		}
		hi := lo + TileUsers
		if hi > len(users) {
			hi = len(users)
		}
		batch := users[lo:hi]
		ub, st := s.ubatch, s.tile
		if len(batch) < ub.Rows {
			ub = &dense.Matrix{Rows: len(batch), Cols: s.u.Cols, Data: s.ubatch.Data[:len(batch)*s.u.Cols]}
			st = &dense.Matrix{Rows: len(batch), Cols: s.v.Rows, Data: s.tile.Data[:len(batch)*s.v.Rows]}
		}
		for bi, uu := range batch {
			copy(ub.Row(bi), s.u.Row(uu))
		}
		// Tuning{} keeps the product sequential: scorer callers supply the
		// parallelism (eval workers, concurrent serve requests).
		sp := tr.StartSpan("score.tile")
		t0 := time.Now()
		dense.MulTInto(st, ub, s.v, dense.Tuning{})
		sp.Set("users", len(batch)).Set("items", s.v.Rows).End()
		if m != nil {
			m.tileSeconds.ObserveSince(t0)
			m.tiles.Inc()
			m.users.Add(float64(len(batch)))
		}
		for bi, uu := range batch {
			emit(uu, st.Row(bi))
		}
	}
	return nil
}

// TopN scores one user and returns the ids and scores of their n
// best items in descending order, excluding any id in skip.
func (s *Scorer) TopN(user, n int, skip map[int]bool) (ids []int, scores []float64) {
	_ = s.Score([]int{user}, nil, func(_ int, row []float64) {
		ids = TopNIndices(row, n, skip)
		scores = make([]float64, len(ids))
		for i, id := range ids {
			scores[i] = row[id]
		}
	})
	return ids, scores
}

// evalMetrics instruments the scoring core; installed by EnableMetrics
// and read with one atomic load per tile so the disabled path stays
// branch-only, like the sparse and dense engines' kernel metrics.
type evalMetrics struct {
	tileSeconds *obs.Histogram
	tiles       *obs.Counter
	users       *obs.Counter
}

var scorerMetrics atomic.Pointer[evalMetrics]

// EnableMetrics records scoring-tile timings and throughput counters
// into r; nil disables collection again. The tile histogram uses
// obs.FastBuckets: one 16×k by |V|×k product sits well under a
// millisecond at evaluation and serving shapes, where obs.DefBuckets
// would lump every observation into its first bucket (the eval/query
// half of the ROADMAP histogram-bucket review).
func EnableMetrics(r *obs.Registry) {
	if r == nil {
		scorerMetrics.Store(nil)
		return
	}
	scorerMetrics.Store(&evalMetrics{
		tileSeconds: r.Histogram("eval_score_tile_seconds", "wall-clock of one U-tile·Vᵀ scoring product", obs.FastBuckets),
		tiles:       r.Counter("eval_score_tiles_total", "scoring GEMM tiles executed"),
		users:       r.Counter("eval_scored_users_total", "users scored against the full item side"),
	})
}
