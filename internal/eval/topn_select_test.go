package eval

import (
	"math/rand/v2"
	"testing"
)

// TestTopNIndicesExcludingMatchesMap pins the fast path to the map
// form it replaces: for random scores with heavy ties, excluding one
// index must produce exactly the list TopNIndices produces with a
// one-entry skip map.
func TestTopNIndicesExcludingMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 7))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.IntN(100)
		scores := make([]float64, m)
		for i := range scores {
			// Few distinct values so ties are the common case.
			scores[i] = float64(rng.IntN(5))
		}
		n := 1 + rng.IntN(m+3)
		exclude := rng.IntN(m+2) - 1 // occasionally -1 (none) or out of range
		var skip map[int]bool
		if exclude >= 0 {
			skip = map[int]bool{exclude: true}
		}
		want := TopNIndices(scores, n, skip)
		got := TopNIndicesExcluding(scores, n, exclude)
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d vs %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: rank %d: got %d want %d (n=%d exclude=%d)", trial, i, got[i], want[i], n, exclude)
			}
		}
	}
}

// TestTopNHeapOrderIndependent: the selected list depends only on the
// pushed set, not on push order — the property the ANN path's
// cluster-order candidate enumeration relies on.
func TestTopNHeapOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	scores := make([]float64, 64)
	for i := range scores {
		scores[i] = float64(rng.IntN(4))
	}
	want := TopNIndices(scores, 10, nil)
	perm := rng.Perm(len(scores))
	var h TopNHeap
	h.Reset(10)
	for _, i := range perm {
		h.Push(i, scores[i])
	}
	ids, ranked := h.Ranked()
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("rank %d: got %d want %d", i, ids[i], want[i])
		}
		if ranked[i] != scores[want[i]] {
			t.Fatalf("rank %d: score %g want %g", i, ranked[i], scores[want[i]])
		}
	}
}

// TestTopNIndicesExcludingAllocs guards the hot-path win: selection
// allocates only its heap and the result slice — no skip map.
func TestTopNIndicesExcludingAllocs(t *testing.T) {
	scores := make([]float64, 4096)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := range scores {
		scores[i] = rng.Float64()
	}
	allocs := testing.AllocsPerRun(100, func() {
		TopNIndicesExcluding(scores, 10, 17)
	})
	if allocs > 2 {
		t.Errorf("TopNIndicesExcluding allocates %.1f/op, want ≤ 2 (heap + result)", allocs)
	}
}

// BenchmarkTopNIndicesExcluding is the observable form of the alloc
// guard (run with -benchmem), mirroring the healthz/shed fast-path
// benchmarks in internal/serve.
func BenchmarkTopNIndicesExcluding(b *testing.B) {
	scores := make([]float64, 8192)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := range scores {
		scores[i] = rng.Float64()
	}
	b.Run("excludeOne", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			TopNIndicesExcluding(scores, 10, 17)
		}
	})
	b.Run("skipMap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			TopNIndices(scores, 10, map[int]bool{17: true})
		}
	})
}
