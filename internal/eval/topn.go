package eval

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gebe/internal/bigraph"
	"gebe/internal/budget"
	"gebe/internal/dense"
)

// TopNResult aggregates per-user recommendation metrics (§6.3).
type TopNResult struct {
	F1, NDCG, MRR float64
	// Users is the number of users with at least one held-out edge
	// (the denominator of the averages).
	Users int
	// Skipped counts test edges that referenced a node outside the
	// training graph's index range and were therefore excluded from the
	// protocol instead of panicking the scorer. Non-zero values usually
	// mean the split was built against a different graph.
	Skipped int
}

// TopNConfig parameterizes TopNRun; the zero value matches TopN's
// historical behavior (all CPUs, no deadline).
type TopNConfig struct {
	// N is the recommendation list length (the paper's N).
	N int
	// Threads caps scorer parallelism; <1 selects GOMAXPROCS.
	Threads int
	// Deadline optionally bounds the evaluation (cooperative, checked
	// once per scored user batch); when it fires TopNRun returns
	// budget.ErrExceeded.
	Deadline time.Time
}

// TopN runs the paper's top-N recommendation protocol: for every user
// with held-out edges, rank all items by U[u]·V[v] excluding training
// edges, compare the top n against the user's ground-truth list (their
// held-out neighbors ranked by edge weight, truncated to n), and average
// F1/NDCG/MRR over users.
func TopN(train *bigraph.Graph, test []bigraph.Edge, u, v *dense.Matrix, n int, threads int) TopNResult {
	res, _ := TopNRun(train, test, u, v, TopNConfig{N: n, Threads: threads})
	return res
}

// TopNRun is the configurable form of TopN. Test edges whose endpoints
// fall outside the training graph are skipped (and counted in
// Skipped) rather than crashing the run.
func TopNRun(train *bigraph.Graph, test []bigraph.Edge, u, v *dense.Matrix, cfg TopNConfig) (TopNResult, error) {
	threads := cfg.Threads
	if threads < 1 {
		threads = runtime.GOMAXPROCS(0)
	}
	n := cfg.N
	// Per-user training items to exclude and held-out edges.
	trainItems := make([]map[int]bool, train.NU)
	for _, e := range train.Edges {
		if trainItems[e.U] == nil {
			trainItems[e.U] = make(map[int]bool)
		}
		trainItems[e.U][e.V] = true
	}
	heldOut := make([][]bigraph.Edge, train.NU)
	skipped := 0
	for _, e := range test {
		if e.U < 0 || e.U >= train.NU || e.V < 0 || e.V >= train.NV {
			skipped++
			continue
		}
		heldOut[e.U] = append(heldOut[e.U], e)
	}
	var users []int
	for uu, edges := range heldOut {
		if len(edges) > 0 {
			users = append(users, uu)
		}
	}
	res := TopNResult{Users: len(users), Skipped: skipped}
	if len(users) == 0 {
		return res, nil
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	var expired atomic.Bool
	chunk := (len(users) + threads - 1) / threads
	for lo := 0; lo < len(users); lo += chunk {
		hi := lo + chunk
		if hi > len(users) {
			hi = len(users)
		}
		wg.Add(1)
		go func(users []int) {
			defer wg.Done()
			// Per-worker scorer: its tile buffers are reused across batches,
			// and its sequential GEMM keeps the workers as the only
			// parallelism here.
			sc := NewScorer(u, v)
			var f1, ndcg, mrr float64
			err := sc.Score(users, func() error {
				if expired.Load() {
					return budget.ErrExceeded
				}
				if budget.Exceeded(cfg.Deadline) {
					expired.Store(true)
					return budget.ErrExceeded
				}
				return nil
			}, func(uu int, scores []float64) {
				rec := TopNIndices(scores, n, trainItems[uu])
				truth := groundTruth(heldOut[uu], n)
				f1 += F1At(rec, truth, n)
				ndcg += NDCGAt(rec, truth, n)
				mrr += MRRAt(rec, truth, n)
			})
			if err != nil {
				return
			}
			mu.Lock()
			res.F1 += f1
			res.NDCG += ndcg
			res.MRR += mrr
			mu.Unlock()
		}(users[lo:hi])
	}
	wg.Wait()
	if expired.Load() {
		return TopNResult{Users: len(users), Skipped: skipped},
			fmt.Errorf("eval: top-N over %d users: %w", len(users), budget.ErrExceeded)
	}
	res.F1 /= float64(len(users))
	res.NDCG /= float64(len(users))
	res.MRR /= float64(len(users))
	return res, nil
}

// groundTruth ranks a user's held-out neighbors by edge weight (ties by
// item index for determinism) and keeps the top n — the paper's
// "top-N ground-truth list".
func groundTruth(edges []bigraph.Edge, n int) map[int]bool {
	sorted := make([]bigraph.Edge, len(edges))
	copy(sorted, edges)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].W != sorted[b].W {
			return sorted[a].W > sorted[b].W
		}
		return sorted[a].V < sorted[b].V
	})
	if len(sorted) > n {
		sorted = sorted[:n]
	}
	truth := make(map[int]bool, len(sorted))
	for _, e := range sorted {
		truth[e.V] = true
	}
	return truth
}
