package eval

import (
	"runtime"
	"sort"
	"sync"

	"gebe/internal/bigraph"
	"gebe/internal/dense"
)

// TopNResult aggregates per-user recommendation metrics (§6.3).
type TopNResult struct {
	F1, NDCG, MRR float64
	// Users is the number of users with at least one held-out edge
	// (the denominator of the averages).
	Users int
}

// TopN runs the paper's top-N recommendation protocol: for every user
// with held-out edges, rank all items by U[u]·V[v] excluding training
// edges, compare the top n against the user's ground-truth list (their
// held-out neighbors ranked by edge weight, truncated to n), and average
// F1/NDCG/MRR over users.
func TopN(train *bigraph.Graph, test []bigraph.Edge, u, v *dense.Matrix, n int, threads int) TopNResult {
	if threads < 1 {
		threads = runtime.GOMAXPROCS(0)
	}
	// Per-user training items to exclude and held-out edges.
	trainItems := make([]map[int]bool, train.NU)
	for _, e := range train.Edges {
		if trainItems[e.U] == nil {
			trainItems[e.U] = make(map[int]bool)
		}
		trainItems[e.U][e.V] = true
	}
	heldOut := make([][]bigraph.Edge, train.NU)
	for _, e := range test {
		heldOut[e.U] = append(heldOut[e.U], e)
	}
	var users []int
	for uu, edges := range heldOut {
		if len(edges) > 0 {
			users = append(users, uu)
		}
	}
	res := TopNResult{Users: len(users)}
	if len(users) == 0 {
		return res
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	chunk := (len(users) + threads - 1) / threads
	for lo := 0; lo < len(users); lo += chunk {
		hi := lo + chunk
		if hi > len(users) {
			hi = len(users)
		}
		wg.Add(1)
		go func(users []int) {
			defer wg.Done()
			scores := make([]float64, train.NV)
			var f1, ndcg, mrr float64
			for _, uu := range users {
				urow := u.Row(uu)
				for vv := 0; vv < train.NV; vv++ {
					scores[vv] = dense.Dot(urow, v.Row(vv))
				}
				rec := TopNIndices(scores, n, trainItems[uu])
				truth := groundTruth(heldOut[uu], n)
				f1 += F1At(rec, truth, n)
				ndcg += NDCGAt(rec, truth, n)
				mrr += MRRAt(rec, truth, n)
			}
			mu.Lock()
			res.F1 += f1
			res.NDCG += ndcg
			res.MRR += mrr
			mu.Unlock()
		}(users[lo:hi])
	}
	wg.Wait()
	res.F1 /= float64(len(users))
	res.NDCG /= float64(len(users))
	res.MRR /= float64(len(users))
	return res
}

// groundTruth ranks a user's held-out neighbors by edge weight (ties by
// item index for determinism) and keeps the top n — the paper's
// "top-N ground-truth list".
func groundTruth(edges []bigraph.Edge, n int) map[int]bool {
	sorted := make([]bigraph.Edge, len(edges))
	copy(sorted, edges)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].W != sorted[b].W {
			return sorted[a].W > sorted[b].W
		}
		return sorted[a].V < sorted[b].V
	})
	if len(sorted) > n {
		sorted = sorted[:n]
	}
	truth := make(map[int]bool, len(sorted))
	for _, e := range sorted {
		truth[e.V] = true
	}
	return truth
}
