package eval

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"gebe/internal/bigraph"
	"gebe/internal/budget"
	"gebe/internal/dense"
)

func TestF1At(t *testing.T) {
	truth := map[int]bool{1: true, 2: true, 3: true}
	// rec hits 2 of 3 in top-3: P=2/3, R=2/3, F1=2/3.
	if got := F1At([]int{1, 9, 2}, truth, 3); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("F1=%v want 2/3", got)
	}
	if F1At([]int{9, 8}, truth, 2) != 0 {
		t.Error("no hits should be F1=0")
	}
	if F1At([]int{1}, map[int]bool{}, 1) != 0 {
		t.Error("empty truth should be F1=0")
	}
	// Perfect: rec == truth.
	if got := F1At([]int{1, 2, 3}, truth, 3); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect F1=%v", got)
	}
}

func TestNDCGAt(t *testing.T) {
	truth := map[int]bool{5: true}
	// Hit at rank 1: NDCG = 1.
	if got := NDCGAt([]int{5, 1, 2}, truth, 3); math.Abs(got-1) > 1e-12 {
		t.Errorf("NDCG=%v want 1", got)
	}
	// Hit at rank 3: DCG = 1/log2(4) = 0.5; IDCG = 1.
	if got := NDCGAt([]int{1, 2, 5}, truth, 3); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("NDCG=%v want 0.5", got)
	}
}

func TestMRRAt(t *testing.T) {
	truth := map[int]bool{7: true, 9: true}
	if got := MRRAt([]int{0, 7, 9}, truth, 3); got != 0.5 {
		t.Errorf("MRR=%v want 0.5", got)
	}
	if MRRAt([]int{0, 1}, truth, 2) != 0 {
		t.Error("no hit should be MRR=0")
	}
}

func TestAUCROCPerfectAndRandom(t *testing.T) {
	// Perfectly separated.
	roc, err := AUCROC([]float64{0.9, 0.8, 0.2, 0.1}, []bool{true, true, false, false})
	if err != nil || roc != 1 {
		t.Errorf("perfect AUC=%v err=%v", roc, err)
	}
	// Perfectly inverted.
	roc, _ = AUCROC([]float64{0.1, 0.2, 0.8, 0.9}, []bool{true, true, false, false})
	if roc != 0 {
		t.Errorf("inverted AUC=%v want 0", roc)
	}
	// All-equal scores: AUC = 0.5 via tie handling.
	roc, _ = AUCROC([]float64{0.5, 0.5, 0.5, 0.5}, []bool{true, false, true, false})
	if math.Abs(roc-0.5) > 1e-12 {
		t.Errorf("tied AUC=%v want 0.5", roc)
	}
	if _, err := AUCROC([]float64{1, 2}, []bool{true, true}); err == nil {
		t.Error("single-class input accepted")
	}
	if _, err := AUCROC([]float64{1}, []bool{true, false}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestAUCPRKnown(t *testing.T) {
	// Scores rank: pos, neg, pos. AP = (1/1 + 2/3)/2 = 5/6.
	pr, err := AUCPR([]float64{0.9, 0.8, 0.7}, []bool{true, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pr-5.0/6) > 1e-12 {
		t.Errorf("AP=%v want 5/6", pr)
	}
	if _, err := AUCPR([]float64{1, 2}, []bool{false, false}); err == nil {
		t.Error("no-positive input accepted")
	}
}

// Property: AUC-ROC is invariant under monotone transforms of scores.
func TestAUCROCMonotoneInvariance(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := 10 + int(seed%50)
		scores := make([]float64, n)
		labels := make([]bool, n)
		pos := false
		neg := false
		for i := range scores {
			scores[i] = rng.Float64()
			labels[i] = rng.IntN(2) == 0
			if labels[i] {
				pos = true
			} else {
				neg = true
			}
		}
		if !pos || !neg {
			return true
		}
		a, err1 := AUCROC(scores, labels)
		trans := make([]float64, n)
		for i, s := range scores {
			trans[i] = math.Exp(3*s) + 1
		}
		b, err2 := AUCROC(trans, labels)
		return err1 == nil && err2 == nil && math.Abs(a-b) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTopNIndices(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.7, 0.3}
	got := TopNIndices(scores, 3, nil)
	want := []int{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopNIndices=%v want %v", got, want)
		}
	}
	// Skip the best item.
	got = TopNIndices(scores, 2, map[int]bool{1: true})
	if got[0] != 3 || got[1] != 2 {
		t.Errorf("with skip: %v", got)
	}
	// n larger than available.
	got = TopNIndices([]float64{1, 2}, 5, nil)
	if len(got) != 2 || got[0] != 1 {
		t.Errorf("short input: %v", got)
	}
	if TopNIndices(scores, 0, nil) != nil {
		t.Error("n=0 should give nil")
	}
}

// Property: TopNIndices returns distinct indices ordered by descending
// score, never including skipped indices.
func TestTopNIndicesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		n := 1 + int(seed%40)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(rng.IntN(10)) // deliberate ties
		}
		skip := map[int]bool{0: true}
		k := 1 + int(seed%7)
		got := TopNIndices(scores, k, skip)
		seen := map[int]bool{}
		for i, idx := range got {
			if skip[idx] || seen[idx] {
				return false
			}
			seen[idx] = true
			if i > 0 && scores[got[i-1]] < scores[idx] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLogRegSeparable(t *testing.T) {
	// y = 1 iff x0 > x1, clearly separable.
	rng := rand.New(rand.NewPCG(7, 8))
	var x [][]float64
	var y []bool
	for i := 0; i < 400; i++ {
		a, b := rng.Float64(), rng.Float64()
		x = append(x, []float64{a, b})
		y = append(y, a > b)
	}
	clf, err := TrainLogReg(x, y, LogRegOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range x {
		if (clf.Predict(x[i]) > 0.5) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(x)); acc < 0.95 {
		t.Errorf("separable accuracy %.3f < 0.95", acc)
	}
}

func TestLogRegErrors(t *testing.T) {
	if _, err := TrainLogReg(nil, nil, LogRegOptions{}); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := TrainLogReg([][]float64{{1}}, []bool{true, false}, LogRegOptions{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := TrainLogReg([][]float64{{1, 2}, {1}}, []bool{true, false}, LogRegOptions{}); err == nil {
		t.Error("ragged features accepted")
	}
}

func TestTopNProtocol(t *testing.T) {
	// 2 users, 4 items. Embeddings crafted so user0 scores items as
	// 3,2,1,0 and user1 as 0,1,2,3.
	u := dense.FromRows([][]float64{{1, 0}, {0, 1}})
	v := dense.FromRows([][]float64{{3, 0}, {2, 1}, {1, 2}, {0, 3}})
	// Training: user0 already has item0 (excluded from ranking).
	train, err := bigraph.New(2, 4, []bigraph.Edge{{U: 0, V: 0, W: 1}, {U: 1, V: 3, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Held out: user0→item1 (their top remaining pick ⇒ hit at rank 1),
	// user1→item0 (their worst pick ⇒ miss in top-1).
	test := []bigraph.Edge{{U: 0, V: 1, W: 5}, {U: 1, V: 0, W: 5}}
	res := TopN(train, test, u, v, 1, 1)
	if res.Users != 2 {
		t.Fatalf("users=%d", res.Users)
	}
	// user0: F1=1, user1: F1=0 → mean 0.5. Same for NDCG and MRR at n=1.
	if math.Abs(res.F1-0.5) > 1e-12 || math.Abs(res.NDCG-0.5) > 1e-12 || math.Abs(res.MRR-0.5) > 1e-12 {
		t.Errorf("TopN=%+v want 0.5s", res)
	}
}

func TestTopNEmptyTest(t *testing.T) {
	u := dense.New(2, 2)
	v := dense.New(2, 2)
	train, _ := bigraph.New(2, 2, []bigraph.Edge{{U: 0, V: 0, W: 1}})
	res := TopN(train, nil, u, v, 5, 1)
	if res.Users != 0 || res.F1 != 0 {
		t.Errorf("empty test: %+v", res)
	}
}

func TestLinkPredDiscriminates(t *testing.T) {
	// Block graph: users 0-9 like items 0-9, users 10-19 like items 10-19.
	var edges []bigraph.Edge
	for u := 0; u < 20; u++ {
		base := (u / 10) * 10
		for d := 0; d < 10; d++ {
			edges = append(edges, bigraph.Edge{U: u, V: base + d, W: 1})
		}
	}
	full, err := bigraph.New(20, 20, edges)
	if err != nil {
		t.Fatal(err)
	}
	train, testPos := full.Split(0.6, 3)
	// Informative embeddings: block indicator coordinates.
	u := dense.New(20, 2)
	v := dense.New(20, 2)
	for i := 0; i < 20; i++ {
		u.Set(i, i/10, 1)
		v.Set(i, i/10, 1)
	}
	// Hadamard features let the linear classifier express block matching
	// (concatenation cannot represent this XOR-like structure — that is a
	// property of the paper's protocol, not a bug here).
	res, err := LinkPred(full, train, testPos, u, v, LinkPredOptions{Seed: 5, Features: FeatureHadamard})
	if err != nil {
		t.Fatal(err)
	}
	if res.AUCROC < 0.9 || res.AUCPR < 0.9 {
		t.Errorf("informative embeddings scored poorly: %+v", res)
	}
	// Uninformative embeddings should hover near chance.
	rng := rand.New(rand.NewPCG(9, 9))
	ru := dense.Random(20, 2, rng)
	rv := dense.Random(20, 2, rng)
	res2, err := LinkPred(full, train, testPos, ru, rv, LinkPredOptions{Seed: 5, Features: FeatureHadamard})
	if err != nil {
		t.Fatal(err)
	}
	if res2.AUCROC > res.AUCROC {
		t.Errorf("random embeddings (%.3f) beat informative ones (%.3f)", res2.AUCROC, res.AUCROC)
	}
	// The concat protocol must at least run end-to-end and return finite
	// scores in [0,1].
	res3, err := LinkPred(full, train, testPos, u, v, LinkPredOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res3.AUCROC < 0 || res3.AUCROC > 1 || res3.AUCPR < 0 || res3.AUCPR > 1 {
		t.Errorf("concat protocol out of range: %+v", res3)
	}
}

func TestLinkPredEmptyTest(t *testing.T) {
	g, _ := bigraph.New(2, 2, []bigraph.Edge{{U: 0, V: 0, W: 1}})
	u := dense.New(2, 1)
	v := dense.New(2, 1)
	if _, err := LinkPred(g, g, nil, u, v, LinkPredOptions{}); err == nil {
		t.Error("empty test set accepted")
	}
}

// TestTopNSkipsOutOfRange: test edges referencing nodes outside the
// training graph are excluded and counted instead of panicking the
// scorer, and the valid edges still score normally.
func TestTopNSkipsOutOfRange(t *testing.T) {
	u := dense.FromRows([][]float64{{1, 0}, {0, 1}})
	v := dense.FromRows([][]float64{{3, 0}, {2, 1}, {1, 2}, {0, 3}})
	train, err := bigraph.New(2, 4, []bigraph.Edge{{U: 0, V: 0, W: 1}, {U: 1, V: 3, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	test := []bigraph.Edge{
		{U: 0, V: 1, W: 5},  // valid: user0's top remaining pick
		{U: 2, V: 0, W: 1},  // user index past NU
		{U: -1, V: 0, W: 1}, // negative user
		{U: 0, V: 4, W: 1},  // item index past NV
		{U: 0, V: -2, W: 1}, // negative item
	}
	res, err := TopNRun(train, test, u, v, TopNConfig{N: 1, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 4 {
		t.Errorf("Skipped=%d, want 4", res.Skipped)
	}
	if res.Users != 1 || res.F1 != 1 {
		t.Errorf("valid edge mis-scored: %+v", res)
	}
}

// TestTopNDeadlineExpired: an already-blown deadline aborts the
// evaluation with budget.ErrExceeded instead of returning partial
// averages as if they were complete.
func TestTopNDeadlineExpired(t *testing.T) {
	u := dense.FromRows([][]float64{{1, 0}, {0, 1}})
	v := dense.FromRows([][]float64{{3, 0}, {2, 1}})
	train, err := bigraph.New(2, 2, []bigraph.Edge{{U: 0, V: 0, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	test := []bigraph.Edge{{U: 0, V: 1, W: 5}, {U: 1, V: 0, W: 5}}
	res, err := TopNRun(train, test, u, v, TopNConfig{N: 1, Threads: 1,
		Deadline: time.Now().Add(-time.Second)})
	if !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("want budget.ErrExceeded, got %v", err)
	}
	if res.F1 != 0 || res.NDCG != 0 || res.MRR != 0 {
		t.Errorf("partial averages leaked past a deadline error: %+v", res)
	}
}
