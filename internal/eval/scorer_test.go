package eval

import (
	"context"
	"errors"
	"math/rand/v2"
	"testing"

	"gebe/internal/dense"
	"gebe/internal/obs"
)

// naiveScores is the pre-Scorer reference loop: one dot product per
// (user, item) pair. The tiled GEMM path must reproduce it bitwise —
// MulTInto with the sequential Tuning{} accumulates each output cell in
// the same order as a plain dot product.
func naiveScores(u, v *dense.Matrix, user int) []float64 {
	out := make([]float64, v.Rows)
	for j := 0; j < v.Rows; j++ {
		out[j] = dense.Dot(u.Row(user), v.Row(j))
	}
	return out
}

func TestScorerMatchesNaiveLoop(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 0))
	for _, shape := range []struct{ nu, nv, k int }{
		{1, 9, 4}, {17, 33, 8}, {40, 21, 5}, {16, 50, 16},
	} {
		u := dense.Random(shape.nu, shape.k, rng)
		v := dense.Random(shape.nv, shape.k, rng)
		sc := NewScorer(u, v)
		if sc.Users() != shape.nu || sc.Items() != shape.nv {
			t.Fatalf("scorer reports %dx%d, want %dx%d", sc.Users(), sc.Items(), shape.nu, shape.nv)
		}
		users := make([]int, shape.nu)
		for i := range users {
			users[i] = i
		}
		seen := 0
		err := sc.Score(users, nil, func(uu int, scores []float64) {
			if uu != users[seen] {
				t.Fatalf("emit order: got user %d at position %d", uu, seen)
			}
			seen++
			want := naiveScores(u, v, uu)
			for j := range want {
				if scores[j] != want[j] {
					t.Fatalf("shape %+v user %d item %d: tiled %v != naive %v",
						shape, uu, j, scores[j], want[j])
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if seen != shape.nu {
			t.Fatalf("emitted %d users, want %d", seen, shape.nu)
		}
	}
}

func TestScorerTopNMatchesTopNIndices(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 0))
	u := dense.Random(6, 7, rng)
	v := dense.Random(40, 7, rng)
	sc := NewScorer(u, v)
	skip := map[int]bool{3: true, 17: true}
	ids, scores := sc.TopN(2, 5, skip)
	want := TopNIndices(naiveScores(u, v, 2), 5, skip)
	if len(ids) != len(want) {
		t.Fatalf("got %d ids, want %d", len(ids), len(want))
	}
	row := naiveScores(u, v, 2)
	for i := range ids {
		if ids[i] != want[i] {
			t.Errorf("ids[%d] = %d, want %d", i, ids[i], want[i])
		}
		if scores[i] != row[ids[i]] {
			t.Errorf("scores[%d] = %v, want %v", i, scores[i], row[ids[i]])
		}
	}
	for _, id := range ids {
		if skip[id] {
			t.Errorf("skipped item %d recommended", id)
		}
	}
}

func TestScorerCheckpointAborts(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 0))
	u := dense.Random(3 * TileUsers, 4, rng)
	v := dense.Random(10, 4, rng)
	sc := NewScorer(u, v)
	users := make([]int, u.Rows)
	for i := range users {
		users[i] = i
	}
	boom := errors.New("boom")
	calls, emits := 0, 0
	err := sc.Score(users, func() error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	}, func(int, []float64) { emits++ })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if emits != TileUsers {
		t.Fatalf("emitted %d users before abort, want exactly one tile (%d)", emits, TileUsers)
	}
}

func TestScorerMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	EnableMetrics(reg)
	defer EnableMetrics(nil)
	rng := rand.New(rand.NewPCG(5, 0))
	u := dense.Random(2*TileUsers+3, 4, rng)
	v := dense.Random(12, 4, rng)
	sc := NewScorer(u, v)
	users := make([]int, u.Rows)
	for i := range users {
		users[i] = i
	}
	if err := sc.Score(users, nil, func(int, []float64) {}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("eval_score_tiles_total", "").Value(); got != 3 {
		t.Errorf("tiles counter = %v, want 3", got)
	}
	if got := reg.Counter("eval_scored_users_total", "").Value(); got != float64(u.Rows) {
		t.Errorf("users counter = %v, want %d", got, u.Rows)
	}
	if got := reg.Histogram("eval_score_tile_seconds", "", nil).Count(); got != 3 {
		t.Errorf("tile histogram count = %v, want 3", got)
	}
}

// TestScoreCtxTileSpans: with a request-scoped trace in the context,
// every GEMM tile appears as a "score.tile" span attributed with its
// user count and item width; an untraced context behaves exactly like
// Score.
func TestScoreCtxTileSpans(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 0))
	u := dense.Random(40, 8, rng)
	v := dense.Random(30, 8, rng)
	sc := NewScorer(u, v)
	users := make([]int, 40)
	for i := range users {
		users[i] = i
	}

	tr := obs.NewTrace("req")
	ctx := obs.ContextWithTrace(context.Background(), tr)
	emitted := 0
	if err := sc.ScoreCtx(ctx, users, nil, func(int, []float64) { emitted++ }); err != nil {
		t.Fatal(err)
	}
	if emitted != 40 {
		t.Fatalf("emitted %d rows, want 40", emitted)
	}
	root := tr.Root()
	// 40 users at 16 per tile → 3 tiles.
	if len(root.Children) != 3 {
		t.Fatalf("trace has %d spans, want 3 tiles: %+v", len(root.Children), root.Children)
	}
	usersSeen := 0
	for i, sp := range root.Children {
		if sp.Name != "score.tile" {
			t.Errorf("span %d = %q, want score.tile", i, sp.Name)
		}
		if sp.Attrs["items"] != 30 {
			t.Errorf("span %d items = %v, want 30", i, sp.Attrs["items"])
		}
		usersSeen += sp.Attrs["users"].(int)
	}
	if usersSeen != 40 {
		t.Errorf("tile spans account for %d users, want 40", usersSeen)
	}

	// Untraced context: same scoring, no spans, no panic.
	emitted = 0
	if err := sc.ScoreCtx(context.Background(), users, nil, func(int, []float64) { emitted++ }); err != nil {
		t.Fatal(err)
	}
	if emitted != 40 {
		t.Fatalf("untraced emitted %d rows, want 40", emitted)
	}
}
