package eval

import (
	"fmt"
	"math/rand/v2"
	"time"

	"gebe/internal/bigraph"
	"gebe/internal/budget"
	"gebe/internal/dense"
)

// LPResult holds link-prediction scores (§6.4).
type LPResult struct {
	AUCROC, AUCPR float64
}

// FeatureMode selects how a node pair's embeddings become a classifier
// feature vector.
type FeatureMode int

const (
	// FeatureConcat is the paper's protocol: concat(U[u],V[v]), length 2k.
	FeatureConcat FeatureMode = iota
	// FeatureHadamard uses the element-wise product U[u]⊙V[v] (length k),
	// the standard alternative from the node2vec/BiNE literature; unlike
	// concatenation it lets a linear classifier express the dot-product
	// score.
	FeatureHadamard
	// FeatureConcatHadamard concatenates both (length 3k).
	FeatureConcatHadamard
)

// LinkPredOptions tunes the protocol; zero values select defaults.
type LinkPredOptions struct {
	// MaxTrainPairs caps the logistic-regression training set (positives
	// plus the same number of negatives); default 20000. Larger graphs are
	// subsampled, which matches how reference implementations keep the
	// classifier cheap relative to embedding time.
	MaxTrainPairs int
	// Features selects the pair feature map (default FeatureConcat, the
	// paper's choice).
	Features FeatureMode
	Seed     uint64
	LogReg   LogRegOptions
	// Deadline optionally bounds the protocol (cooperative, checked
	// between its phases: feature building, classifier training, test
	// scoring); when it fires LinkPred returns budget.ErrExceeded.
	Deadline time.Time
}

func (o LinkPredOptions) withDefaults() LinkPredOptions {
	if o.MaxTrainPairs == 0 {
		o.MaxTrainPairs = 20000
	}
	return o
}

// LinkPred runs the paper's link-prediction protocol: the graph's removed
// edges (testPos) are the positive test set; an equal number of sampled
// non-edges are negatives; a logistic-regression classifier is trained on
// the residual graph's edges (positives) plus sampled non-edges
// (negatives), with concat(U[u],V[v]) as the length-2k feature vector.
//
// full must be the graph *before* edge removal so negatives are true
// non-edges.
func LinkPred(full, train *bigraph.Graph, testPos []bigraph.Edge, u, v *dense.Matrix, opt LinkPredOptions) (LPResult, error) {
	opt = opt.withDefaults()
	if len(testPos) == 0 {
		return LPResult{}, fmt.Errorf("eval: empty test set")
	}
	rng := rand.New(rand.NewPCG(opt.Seed, opt.Seed^0x6a09e667f3bcc908))
	exists := full.HasEdgeSet()

	feature := func(uu, vv int) []float64 {
		ur, vr := u.Row(uu), v.Row(vv)
		switch opt.Features {
		case FeatureHadamard:
			f := make([]float64, len(ur))
			for i := range f {
				f[i] = ur[i] * vr[i]
			}
			return f
		case FeatureConcatHadamard:
			f := make([]float64, 2*len(ur)+len(vr))
			copy(f, ur)
			copy(f[len(ur):], vr)
			for i := range ur {
				f[len(ur)+len(vr)+i] = ur[i] * vr[i]
			}
			return f
		default:
			f := make([]float64, len(ur)+len(vr))
			copy(f, ur)
			copy(f[len(ur):], vr)
			return f
		}
	}
	sampleNeg := func(n int) []bigraph.Edge {
		out := make([]bigraph.Edge, 0, n)
		for len(out) < n {
			uu, vv := rng.IntN(full.NU), rng.IntN(full.NV)
			if exists[bigraph.PackEdge(uu, vv)] {
				continue
			}
			out = append(out, bigraph.Edge{U: uu, V: vv, W: 1})
		}
		return out
	}

	// Training set: residual-graph edges (subsampled) + equal negatives.
	nPos := len(train.Edges)
	if nPos > opt.MaxTrainPairs/2 {
		nPos = opt.MaxTrainPairs / 2
	}
	perm := rng.Perm(len(train.Edges))
	var x [][]float64
	var y []bool
	for _, p := range perm[:nPos] {
		e := train.Edges[p]
		x = append(x, feature(e.U, e.V))
		y = append(y, true)
	}
	for _, e := range sampleNeg(nPos) {
		x = append(x, feature(e.U, e.V))
		y = append(y, false)
	}
	if err := budget.Check(opt.Deadline); err != nil {
		return LPResult{}, fmt.Errorf("eval: link prediction before training: %w", err)
	}
	clf, err := TrainLogReg(x, y, func() LogRegOptions {
		lo := opt.LogReg
		if lo.Seed == 0 {
			lo.Seed = opt.Seed + 1
		}
		return lo
	}())
	if err != nil {
		return LPResult{}, err
	}

	if err := budget.Check(opt.Deadline); err != nil {
		return LPResult{}, fmt.Errorf("eval: link prediction before scoring: %w", err)
	}
	// Test set: removed edges + equal sampled negatives.
	testNeg := sampleNeg(len(testPos))
	scores := make([]float64, 0, 2*len(testPos))
	labels := make([]bool, 0, 2*len(testPos))
	for _, e := range testPos {
		scores = append(scores, clf.Predict(feature(e.U, e.V)))
		labels = append(labels, true)
	}
	for _, e := range testNeg {
		scores = append(scores, clf.Predict(feature(e.U, e.V)))
		labels = append(labels, false)
	}
	roc, err := AUCROC(scores, labels)
	if err != nil {
		return LPResult{}, err
	}
	pr, err := AUCPR(scores, labels)
	if err != nil {
		return LPResult{}, err
	}
	return LPResult{AUCROC: roc, AUCPR: pr}, nil
}
