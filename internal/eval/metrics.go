// Package eval implements the paper's downstream evaluation protocols:
// top-N recommendation (§6.3) with F1/NDCG/MRR, and link prediction
// (§6.4) as binary classification with a logistic-regression classifier
// over concatenated embeddings, scored by AUC-ROC and AUC-PR.
package eval

import (
	"fmt"
	"math"
	"sort"
)

// F1At computes F1@N for one user given the recommended ranking and the
// ground-truth set (both already truncated to N by the caller's protocol).
func F1At(rec []int, truth map[int]bool, n int) float64 {
	if n <= 0 || len(truth) == 0 {
		return 0
	}
	hits := 0
	for i, item := range rec {
		if i >= n {
			break
		}
		if truth[item] {
			hits++
		}
	}
	if hits == 0 {
		return 0
	}
	den := len(rec)
	if den > n {
		den = n
	}
	p := float64(hits) / float64(den)
	r := float64(hits) / float64(len(truth))
	return 2 * p * r / (p + r)
}

// NDCGAt computes NDCG@N with binary relevance for one user.
func NDCGAt(rec []int, truth map[int]bool, n int) float64 {
	if n <= 0 || len(truth) == 0 {
		return 0
	}
	var dcg float64
	for i, item := range rec {
		if i >= n {
			break
		}
		if truth[item] {
			dcg += 1 / math.Log2(float64(i)+2)
		}
	}
	ideal := len(truth)
	if ideal > n {
		ideal = n
	}
	var idcg float64
	for i := 0; i < ideal; i++ {
		idcg += 1 / math.Log2(float64(i)+2)
	}
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

// MRRAt computes the reciprocal rank of the first relevant item within
// the top n (0 when none appears).
func MRRAt(rec []int, truth map[int]bool, n int) float64 {
	for i, item := range rec {
		if i >= n {
			break
		}
		if truth[item] {
			return 1 / float64(i+1)
		}
	}
	return 0
}

// AUCROC computes the area under the ROC curve from scores and binary
// labels via the rank-sum (Mann–Whitney) formulation; ties share ranks.
func AUCROC(scores []float64, labels []bool) (float64, error) {
	if len(scores) != len(labels) {
		return 0, fmt.Errorf("eval: %d scores vs %d labels", len(scores), len(labels))
	}
	nPos, nNeg := 0, 0
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
		if labels[i] {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0, fmt.Errorf("eval: AUC-ROC needs both classes (pos=%d neg=%d)", nPos, nNeg)
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	// Average ranks over tie groups.
	var rankSumPos float64
	i := 0
	for i < len(idx) {
		j := i
		for j < len(idx) && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		avgRank := float64(i+j+1) / 2 // ranks are 1-based: (i+1 + j) / 2
		for t := i; t < j; t++ {
			if labels[idx[t]] {
				rankSumPos += avgRank
			}
		}
		i = j
	}
	u := rankSumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg)), nil
}

// AUCPR computes the area under the precision-recall curve as average
// precision (the step-function integral used by scikit-learn).
func AUCPR(scores []float64, labels []bool) (float64, error) {
	if len(scores) != len(labels) {
		return 0, fmt.Errorf("eval: %d scores vs %d labels", len(scores), len(labels))
	}
	nPos := 0
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
		if labels[i] {
			nPos++
		}
	}
	if nPos == 0 {
		return 0, fmt.Errorf("eval: AUC-PR needs at least one positive")
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	var ap float64
	tp := 0
	for rank, id := range idx {
		if labels[id] {
			tp++
			precision := float64(tp) / float64(rank+1)
			ap += precision / float64(nPos)
		}
	}
	return ap, nil
}

// TopNIndices returns the indices of the n largest values in scores, in
// descending score order, excluding any index in skip. It uses partial
// selection, O(len·log n).
func TopNIndices(scores []float64, n int, skip map[int]bool) []int {
	if n <= 0 {
		return nil
	}
	// Simple bounded min-heap over (score, idx).
	type pair struct {
		s float64
		i int
	}
	heap := make([]pair, 0, n)
	less := func(a, b pair) bool {
		if a.s != b.s {
			return a.s < b.s
		}
		return a.i > b.i // deterministic tie-break: prefer smaller index
	}
	siftDown := func(h []pair, i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h) && less(h[l], h[m]) {
				m = l
			}
			if r < len(h) && less(h[r], h[m]) {
				m = r
			}
			if m == i {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	for i, s := range scores {
		if skip != nil && skip[i] {
			continue
		}
		p := pair{s, i}
		if len(heap) < n {
			heap = append(heap, p)
			// sift up
			c := len(heap) - 1
			for c > 0 {
				par := (c - 1) / 2
				if less(heap[c], heap[par]) {
					heap[c], heap[par] = heap[par], heap[c]
					c = par
				} else {
					break
				}
			}
		} else if less(heap[0], p) {
			heap[0] = p
			siftDown(heap, 0)
		}
	}
	sort.Slice(heap, func(a, b int) bool { return less(heap[b], heap[a]) })
	out := make([]int, len(heap))
	for i, p := range heap {
		out[i] = p.i
	}
	return out
}
