// Package eval implements the paper's downstream evaluation protocols:
// top-N recommendation (§6.3) with F1/NDCG/MRR, and link prediction
// (§6.4) as binary classification with a logistic-regression classifier
// over concatenated embeddings, scored by AUC-ROC and AUC-PR.
package eval

import (
	"fmt"
	"math"
	"sort"
)

// F1At computes F1@N for one user given the recommended ranking and the
// ground-truth set (both already truncated to N by the caller's protocol).
func F1At(rec []int, truth map[int]bool, n int) float64 {
	if n <= 0 || len(truth) == 0 {
		return 0
	}
	hits := 0
	for i, item := range rec {
		if i >= n {
			break
		}
		if truth[item] {
			hits++
		}
	}
	if hits == 0 {
		return 0
	}
	den := len(rec)
	if den > n {
		den = n
	}
	p := float64(hits) / float64(den)
	r := float64(hits) / float64(len(truth))
	return 2 * p * r / (p + r)
}

// NDCGAt computes NDCG@N with binary relevance for one user.
func NDCGAt(rec []int, truth map[int]bool, n int) float64 {
	if n <= 0 || len(truth) == 0 {
		return 0
	}
	var dcg float64
	for i, item := range rec {
		if i >= n {
			break
		}
		if truth[item] {
			dcg += 1 / math.Log2(float64(i)+2)
		}
	}
	ideal := len(truth)
	if ideal > n {
		ideal = n
	}
	var idcg float64
	for i := 0; i < ideal; i++ {
		idcg += 1 / math.Log2(float64(i)+2)
	}
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

// MRRAt computes the reciprocal rank of the first relevant item within
// the top n (0 when none appears).
func MRRAt(rec []int, truth map[int]bool, n int) float64 {
	for i, item := range rec {
		if i >= n {
			break
		}
		if truth[item] {
			return 1 / float64(i+1)
		}
	}
	return 0
}

// AUCROC computes the area under the ROC curve from scores and binary
// labels via the rank-sum (Mann–Whitney) formulation; ties share ranks.
func AUCROC(scores []float64, labels []bool) (float64, error) {
	if len(scores) != len(labels) {
		return 0, fmt.Errorf("eval: %d scores vs %d labels", len(scores), len(labels))
	}
	nPos, nNeg := 0, 0
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
		if labels[i] {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0, fmt.Errorf("eval: AUC-ROC needs both classes (pos=%d neg=%d)", nPos, nNeg)
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	// Average ranks over tie groups.
	var rankSumPos float64
	i := 0
	for i < len(idx) {
		j := i
		for j < len(idx) && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		avgRank := float64(i+j+1) / 2 // ranks are 1-based: (i+1 + j) / 2
		for t := i; t < j; t++ {
			if labels[idx[t]] {
				rankSumPos += avgRank
			}
		}
		i = j
	}
	u := rankSumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg)), nil
}

// AUCPR computes the area under the precision-recall curve as average
// precision (the step-function integral used by scikit-learn).
func AUCPR(scores []float64, labels []bool) (float64, error) {
	if len(scores) != len(labels) {
		return 0, fmt.Errorf("eval: %d scores vs %d labels", len(scores), len(labels))
	}
	nPos := 0
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
		if labels[i] {
			nPos++
		}
	}
	if nPos == 0 {
		return 0, fmt.Errorf("eval: AUC-PR needs at least one positive")
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	var ap float64
	tp := 0
	for rank, id := range idx {
		if labels[id] {
			tp++
			precision := float64(tp) / float64(rank+1)
			ap += precision / float64(nPos)
		}
	}
	return ap, nil
}

// topPair is one (score, id) entry in a TopNHeap.
type topPair struct {
	s float64
	i int
}

// topLess is the total order every top-N selection in this repository
// ranks by: higher score wins, ties prefer the smaller index. Having
// exactly one comparator is what lets the approximate retrieval path
// (internal/ann) reproduce the exact scorer bit for bit at full probe —
// candidate enumeration order can differ, the selected list cannot.
func topLess(a, b topPair) bool {
	if a.s != b.s {
		return a.s < b.s
	}
	return a.i > b.i // deterministic tie-break: prefer smaller index
}

// TopNHeap selects the n largest (id, score) pairs pushed into it, in
// descending score order with ties broken toward smaller ids — a
// bounded min-heap, O(log n) per Push. It is the shared selection core
// behind TopNIndices and the ANN candidate merge: the result depends
// only on the pushed set, never on push order. The zero value is unusable;
// call Reset first. Ranked/IDs consume the heap — Reset before reuse.
type TopNHeap struct {
	n    int
	heap []topPair
}

// Reset empties the heap and sets its capacity to n, reusing the backing
// array when it is large enough.
func (t *TopNHeap) Reset(n int) {
	t.n = n
	if cap(t.heap) < n {
		t.heap = make([]topPair, 0, n)
	} else {
		t.heap = t.heap[:0]
	}
}

// Push offers one candidate. Pushing the same id twice ranks both
// entries; callers enumerate each id at most once.
func (t *TopNHeap) Push(id int, score float64) {
	if t.n <= 0 {
		return
	}
	p := topPair{score, id}
	if len(t.heap) < t.n {
		t.heap = append(t.heap, p)
		// sift up
		c := len(t.heap) - 1
		for c > 0 {
			par := (c - 1) / 2
			if topLess(t.heap[c], t.heap[par]) {
				t.heap[c], t.heap[par] = t.heap[par], t.heap[c]
				c = par
			} else {
				break
			}
		}
		return
	}
	if topLess(t.heap[0], p) {
		t.heap[0] = p
		t.siftDown(0, len(t.heap))
	}
}

// siftDown restores the min-heap property for h[i:len], considering
// only the first len entries of the backing array.
func (t *TopNHeap) siftDown(i, len int) {
	h := t.heap
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len && topLess(h[l], h[m]) {
			m = l
		}
		if r < len && topLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// IDs sorts the selected pairs into descending rank order and returns
// the ids. The heap is consumed: Reset before pushing again.
func (t *TopNHeap) IDs() []int {
	t.sortDesc()
	out := make([]int, len(t.heap))
	for i, p := range t.heap {
		out[i] = p.i
	}
	return out
}

// Ranked is IDs plus the matching scores.
func (t *TopNHeap) Ranked() (ids []int, scores []float64) {
	t.sortDesc()
	ids = make([]int, len(t.heap))
	scores = make([]float64, len(t.heap))
	for i, p := range t.heap {
		ids[i] = p.i
		scores[i] = p.s
	}
	return ids, scores
}

// sortDesc heapsorts in place: popping the min-heap's root to the
// shrinking end leaves the array in descending rank order, without the
// interface boxing sort.Slice would allocate on the serving hot path.
func (t *TopNHeap) sortDesc() {
	h := t.heap
	for end := len(h) - 1; end > 0; end-- {
		h[0], h[end] = h[end], h[0]
		t.siftDown(0, end)
	}
}

// TopNIndices returns the indices of the n largest values in scores, in
// descending score order, excluding any index in skip. It uses partial
// selection, O(len·log n).
func TopNIndices(scores []float64, n int, skip map[int]bool) []int {
	if n <= 0 {
		return nil
	}
	var t TopNHeap
	t.Reset(n)
	for i, s := range scores {
		if skip != nil && skip[i] {
			continue
		}
		t.Push(i, s)
	}
	return t.IDs()
}

// TopNIndicesExcluding is TopNIndices with a single excluded index
// (negative excludes nothing) — the /v1/similar hot path, which
// otherwise allocated a one-entry skip map per request just to drop the
// query vertex from its own neighbor list.
func TopNIndicesExcluding(scores []float64, n, exclude int) []int {
	if n <= 0 {
		return nil
	}
	var t TopNHeap
	t.Reset(n)
	for i, s := range scores {
		if i == exclude {
			continue
		}
		t.Push(i, s)
	}
	return t.IDs()
}
