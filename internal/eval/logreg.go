package eval

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// LogReg is an L2-regularized binary logistic regression classifier
// trained by mini-batch SGD — the classifier the paper's link-prediction
// protocol trains on concatenated node embeddings.
type LogReg struct {
	// W are the learned weights, Bias the intercept.
	W    []float64
	Bias float64
}

// LogRegOptions configures training; zero values select defaults.
type LogRegOptions struct {
	Epochs    int     // default 30
	LearnRate float64 // default 0.1
	L2        float64 // default 1e-4
	BatchSize int     // default 64
	Seed      uint64
}

func (o LogRegOptions) withDefaults() LogRegOptions {
	if o.Epochs == 0 {
		o.Epochs = 60
	}
	if o.LearnRate == 0 {
		o.LearnRate = 0.5
	}
	if o.L2 == 0 {
		o.L2 = 1e-4
	}
	if o.BatchSize == 0 {
		o.BatchSize = 64
	}
	return o
}

// TrainLogReg fits the classifier on feature rows x (all equal length)
// with binary labels y.
func TrainLogReg(x [][]float64, y []bool, opt LogRegOptions) (*LogReg, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("eval: no training rows")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("eval: %d rows vs %d labels", len(x), len(y))
	}
	dim := len(x[0])
	for i, row := range x {
		if len(row) != dim {
			return nil, fmt.Errorf("eval: row %d has %d features, want %d", i, len(row), dim)
		}
	}
	opt = opt.withDefaults()
	m := &LogReg{W: make([]float64, dim)}
	rng := rand.New(rand.NewPCG(opt.Seed, opt.Seed^0xb5297a4d))
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	grad := make([]float64, dim)
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		lr := opt.LearnRate / (1 + 0.1*float64(epoch))
		for start := 0; start < len(idx); start += opt.BatchSize {
			end := start + opt.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			for j := range grad {
				grad[j] = 0
			}
			var gradB float64
			for _, i := range idx[start:end] {
				p := m.Predict(x[i])
				t := 0.0
				if y[i] {
					t = 1
				}
				d := p - t
				for j, xv := range x[i] {
					grad[j] += d * xv
				}
				gradB += d
			}
			scale := lr / float64(end-start)
			for j := range m.W {
				m.W[j] -= scale*grad[j] + lr*opt.L2*m.W[j]
			}
			m.Bias -= scale * gradB
		}
	}
	return m, nil
}

// Predict returns the probability of the positive class.
func (m *LogReg) Predict(x []float64) float64 {
	z := m.Bias
	for j, w := range m.W {
		z += w * x[j]
	}
	return sigmoid(z)
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}
