package bpr

import (
	"testing"
	"time"

	"gebe/internal/bigraph"
	"gebe/internal/dense"
)

// preferenceGraph: users 0..9 interact only with items 0..4; users 10..19
// only with items 5..9.
func preferenceGraph(t testing.TB) *bigraph.Graph {
	var edges []bigraph.Edge
	for u := 0; u < 20; u++ {
		base := (u / 10) * 5
		for d := 0; d < 4; d++ {
			edges = append(edges, bigraph.Edge{U: u, V: base + d, W: 1})
		}
	}
	g, err := bigraph.New(20, 10, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTrainLearnsPreferences(t *testing.T) {
	g := preferenceGraph(t)
	u, v, err := Train(g, Config{Dim: 8, Epochs: 80, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// User 0 interacted with items 0-3; the held-out same-block item 4
	// should outscore every cross-block item for most users.
	wins, total := 0, 0
	for uu := 0; uu < 20; uu++ {
		heldOut := (uu/10)*5 + 4
		cross := ((uu/10+1)%2)*5 + 2
		if dense.Dot(u.Row(uu), v.Row(heldOut)) > dense.Dot(u.Row(uu), v.Row(cross)) {
			wins++
		}
		total++
	}
	if rate := float64(wins) / float64(total); rate < 0.8 {
		t.Errorf("held-out same-block item wins only %.0f%% of the time", rate*100)
	}
}

func TestTrainValidationAndDeadline(t *testing.T) {
	g := preferenceGraph(t)
	if _, _, err := Train(g, Config{Dim: 0}); err == nil {
		t.Error("Dim=0 accepted")
	}
	empty, _ := bigraph.New(2, 2, nil)
	if _, _, err := Train(empty, Config{Dim: 2}); err == nil {
		t.Error("empty graph accepted")
	}
	if _, _, err := Train(g, Config{Dim: 4, Deadline: time.Now().Add(-time.Second)}); err == nil {
		t.Error("expired deadline ignored")
	}
}

func TestTrainDeterministic(t *testing.T) {
	g := preferenceGraph(t)
	u1, _, err := Train(g, Config{Dim: 4, Epochs: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	u2, _, err := Train(g, Config{Dim: 4, Epochs: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equal(u1, u2, 0) {
		t.Error("BPR not deterministic for equal seeds")
	}
}
