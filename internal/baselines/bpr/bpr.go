// Package bpr re-implements Bayesian Personalized Ranking (Rendle et
// al., UAI 2009): matrix factorization trained with the pairwise ranking
// objective ln σ(x̂_ui − x̂_uj) over sampled (user, positive, negative)
// triples.
package bpr

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"gebe/internal/budget"

	"gebe/internal/bigraph"
	"gebe/internal/dense"
)

// Config holds BPR hyperparameters.
type Config struct {
	Dim int
	// Epochs, each drawing |E| triples (default 60).
	Epochs int
	// LearnRate for SGD (default 0.05) and L2 regularization (default 0.01).
	LearnRate, Reg float64
	Seed           uint64
	// Deadline optionally bounds training (cooperative; zero = none).
	Deadline time.Time
}

func (c Config) withDefaults() Config {
	if c.Epochs == 0 {
		c.Epochs = 60
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.05
	}
	if c.Reg == 0 {
		c.Reg = 0.01
	}
	return c
}

// Train fits BPR-MF and returns the user and item factor matrices.
func Train(g *bigraph.Graph, cfg Config) (u, v *dense.Matrix, err error) {
	cfg = cfg.withDefaults()
	if cfg.Dim <= 0 {
		return nil, nil, fmt.Errorf("bpr: Dim must be positive")
	}
	if g.NumEdges() == 0 {
		return nil, nil, fmt.Errorf("bpr: empty graph")
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x3bd39e10cb0ef593))
	u = dense.New(g.NU, cfg.Dim)
	v = dense.New(g.NV, cfg.Dim)
	for i := range u.Data {
		u.Data[i] = rng.NormFloat64() * 0.1
	}
	for i := range v.Data {
		v.Data[i] = rng.NormFloat64() * 0.1
	}
	liked := g.HasEdgeSet()
	steps := cfg.Epochs * len(g.Edges)
	for s := 0; s < steps; s++ {
		if s%8192 == 0 {
			if err := budget.Check(cfg.Deadline); err != nil {
				return nil, nil, fmt.Errorf("bpr: %w", err)
			}
		}
		e := g.Edges[rng.IntN(len(g.Edges))]
		uu, pos := e.U, e.V
		// Sample a negative item for this user.
		var neg int
		for tries := 0; ; tries++ {
			neg = rng.IntN(g.NV)
			if !liked[bigraph.PackEdge(uu, neg)] {
				break
			}
			if tries > 50 {
				break // pathological dense row; accept a liked item rather than spin
			}
		}
		urow := u.Row(uu)
		prow := v.Row(pos)
		nrow := v.Row(neg)
		var diff float64
		for j := 0; j < cfg.Dim; j++ {
			diff += urow[j] * (prow[j] - nrow[j])
		}
		gstep := cfg.LearnRate * sigmoidNeg(diff)
		for j := 0; j < cfg.Dim; j++ {
			du := gstep*(prow[j]-nrow[j]) - cfg.LearnRate*cfg.Reg*urow[j]
			dp := gstep*urow[j] - cfg.LearnRate*cfg.Reg*prow[j]
			dn := -gstep*urow[j] - cfg.LearnRate*cfg.Reg*nrow[j]
			urow[j] += du
			prow[j] += dp
			nrow[j] += dn
		}
	}
	return u, v, nil
}

// sigmoidNeg computes σ(−x) stably.
func sigmoidNeg(x float64) float64 {
	if x > 30 {
		return 0
	}
	if x < -30 {
		return 1
	}
	return 1 / (1 + math.Exp(x))
}
