package deepwalk

import (
	"testing"
	"time"

	"gebe/internal/bigraph"
	"gebe/internal/dense"
)

func twoBlockGraph(t testing.TB) *bigraph.Graph {
	var edges []bigraph.Edge
	for u := 0; u < 12; u++ {
		base := (u / 6) * 4
		for d := 0; d < 3; d++ {
			edges = append(edges, bigraph.Edge{U: u, V: base + d, W: 1})
		}
	}
	g, err := bigraph.New(12, 8, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSplitEmbedding(t *testing.T) {
	emb := dense.FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	u, v, err := SplitEmbedding(emb, 2)
	if err != nil {
		t.Fatal(err)
	}
	if u.Rows != 2 || v.Rows != 1 {
		t.Fatalf("split %d/%d", u.Rows, v.Rows)
	}
	if u.At(1, 1) != 4 || v.At(0, 0) != 5 {
		t.Error("split copied wrong values")
	}
}

func TestTrainCommunityStructure(t *testing.T) {
	g := twoBlockGraph(t)
	u, _, err := Train(g, Config{Dim: 8, WalksPerNode: 12, WalkLength: 20, Epochs: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	within := cosine(u.Row(0), u.Row(1))  // same block
	across := cosine(u.Row(0), u.Row(10)) // other block (disconnected!)
	if within <= across {
		t.Errorf("within-block cos %.3f <= across-block %.3f", within, across)
	}
}

func cosine(a, b []float64) float64 {
	na, nb := dense.Norm2(a), dense.Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return dense.Dot(a, b) / (na * nb)
}

func TestTrainDeadline(t *testing.T) {
	g := twoBlockGraph(t)
	if _, _, err := Train(g, Config{Dim: 4, Deadline: time.Now().Add(-time.Second)}); err == nil {
		t.Error("expired deadline ignored")
	}
}
