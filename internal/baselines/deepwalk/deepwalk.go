// Package deepwalk re-implements DeepWalk (Perozzi et al., KDD 2014)
// applied to a bipartite graph as a typeless homogeneous graph — the
// paper's "homogeneous network embedding" competitor family.
package deepwalk

import (
	"time"

	"gebe/internal/baselines/sgns"
	"gebe/internal/baselines/walk"
	"gebe/internal/bigraph"
	"gebe/internal/dense"
)

// Config holds DeepWalk hyperparameters; zero values select the usual
// defaults (10 walks of length 40, window 5, 5 negatives).
type Config struct {
	Dim                      int
	WalksPerNode, WalkLength int
	Window, Negatives        int
	Epochs                   int
	Seed                     uint64
	Threads                  int
	// Deadline optionally bounds training (cooperative; zero = none).
	Deadline time.Time
}

// Train runs DeepWalk and splits the homogeneous embedding table back
// into the U-side and V-side matrices.
func Train(g *bigraph.Graph, cfg Config) (u, v *dense.Matrix, err error) {
	wg := walk.NewGraph(g)
	walks, err := walk.Generate(wg, walk.Config{
		WalksPerNode: cfg.WalksPerNode, WalkLength: cfg.WalkLength,
		P: 1, Q: 1, Seed: cfg.Seed, Deadline: cfg.Deadline,
	})
	if err != nil {
		return nil, nil, err
	}
	emb, err := sgns.Train(walks, wg.N, sgns.Config{
		Dim: cfg.Dim, Window: cfg.Window, Negatives: cfg.Negatives,
		Epochs: cfg.Epochs, Threads: cfg.Threads, Seed: cfg.Seed,
		Deadline: cfg.Deadline,
	})
	if err != nil {
		return nil, nil, err
	}
	return SplitEmbedding(emb, g.NU)
}

// SplitEmbedding slices a (|U|+|V|)×k homogeneous embedding table into
// its U and V halves.
func SplitEmbedding(emb *dense.Matrix, nu int) (u, v *dense.Matrix, err error) {
	u = dense.New(nu, emb.Cols)
	v = dense.New(emb.Rows-nu, emb.Cols)
	for i := 0; i < nu; i++ {
		copy(u.Row(i), emb.Row(i))
	}
	for i := nu; i < emb.Rows; i++ {
		copy(v.Row(i-nu), emb.Row(i))
	}
	return u, v, nil
}
