// Package ncf re-implements Neural Collaborative Filtering (He et al.,
// WWW 2017) in its NeuMF form, scaled down: a GMF branch (element-wise
// product of user/item embeddings through a learned linear head) fused
// with a one-hidden-layer MLP branch over the concatenated embeddings,
// trained on observed edges against sampled negatives with log loss.
//
// The experiment harness consumes (U,V) matrices scored by dot products,
// so Train exports the GMF tables folded with the learned head weights:
// U'[u] = U[u]·√|h|·sign-split, V'[v] = V[v]·√|h|, which reproduces the
// GMF branch's score as a plain dot product (the MLP branch still shapes
// the embeddings through shared training).
package ncf

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"gebe/internal/budget"

	"gebe/internal/bigraph"
	"gebe/internal/dense"
)

// Config holds NCF hyperparameters.
type Config struct {
	Dim int
	// Hidden is the MLP hidden width (default Dim).
	Hidden int
	// Epochs over the edge set (default 20); Negatives per positive
	// (default 4).
	Epochs, Negatives int
	LearnRate, Reg    float64
	Seed              uint64
	// Deadline optionally bounds training (cooperative; zero = none).
	Deadline time.Time
}

func (c Config) withDefaults() Config {
	if c.Hidden == 0 {
		c.Hidden = c.Dim
	}
	if c.Epochs == 0 {
		c.Epochs = 20
	}
	if c.Negatives == 0 {
		c.Negatives = 4
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.02
	}
	if c.Reg == 0 {
		c.Reg = 1e-5
	}
	return c
}

// Train fits NeuMF-lite and returns dot-product-compatible embeddings.
func Train(g *bigraph.Graph, cfg Config) (u, v *dense.Matrix, err error) {
	cfg = cfg.withDefaults()
	if cfg.Dim <= 0 {
		return nil, nil, fmt.Errorf("ncf: Dim must be positive")
	}
	if g.NumEdges() == 0 {
		return nil, nil, fmt.Errorf("ncf: empty graph")
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x24a19947b3916cf7))
	d, hid := cfg.Dim, cfg.Hidden
	ue := dense.New(g.NU, d)
	ve := dense.New(g.NV, d)
	for i := range ue.Data {
		ue.Data[i] = rng.NormFloat64() * 0.1
	}
	for i := range ve.Data {
		ve.Data[i] = rng.NormFloat64() * 0.1
	}
	// GMF head h (d), MLP: W1 (hid × 2d), b1 (hid), w2 (hid), fusion bias.
	h := make([]float64, d)
	for i := range h {
		h[i] = 1 + rng.NormFloat64()*0.01
	}
	w1 := make([]float64, hid*2*d)
	for i := range w1 {
		w1[i] = rng.NormFloat64() * math.Sqrt(2/float64(2*d))
	}
	b1 := make([]float64, hid)
	w2 := make([]float64, hid)
	for i := range w2 {
		w2[i] = rng.NormFloat64() * 0.1
	}
	var bias float64

	z := make([]float64, hid)   // hidden pre-activations
	act := make([]float64, hid) // hidden activations (ReLU)
	steps := cfg.Epochs * len(g.Edges)
	for s := 0; s < steps; s++ {
		if s%4096 == 0 {
			if err := budget.Check(cfg.Deadline); err != nil {
				return nil, nil, fmt.Errorf("ncf: %w", err)
			}
		}
		lr := cfg.LearnRate * (1 - float64(s)/float64(steps))
		if lr < cfg.LearnRate*1e-2 {
			lr = cfg.LearnRate * 1e-2
		}
		e := g.Edges[rng.IntN(len(g.Edges))]
		for neg := 0; neg <= cfg.Negatives; neg++ {
			uu := e.U
			vv := e.V
			label := 1.0
			if neg > 0 {
				vv = rng.IntN(g.NV)
				label = 0
			}
			urow := ue.Row(uu)
			vrow := ve.Row(vv)
			// Forward: GMF score + MLP score.
			var gmf float64
			for j := 0; j < d; j++ {
				gmf += h[j] * urow[j] * vrow[j]
			}
			for k := 0; k < hid; k++ {
				zk := b1[k]
				wrow := w1[k*2*d : (k+1)*2*d]
				for j := 0; j < d; j++ {
					zk += wrow[j]*urow[j] + wrow[d+j]*vrow[j]
				}
				z[k] = zk
				if zk > 0 {
					act[k] = zk
				} else {
					act[k] = 0
				}
			}
			var mlp float64
			for k := 0; k < hid; k++ {
				mlp += w2[k] * act[k]
			}
			p := sigmoid(gmf + mlp + bias)
			gout := (label - p) * lr
			// Backward.
			bias += gout
			for k := 0; k < hid; k++ {
				gw2 := gout * act[k]
				var gz float64
				if z[k] > 0 {
					gz = gout * w2[k]
				}
				w2[k] += gw2 - lr*cfg.Reg*w2[k]
				if gz != 0 {
					b1[k] += gz
					wrow := w1[k*2*d : (k+1)*2*d]
					for j := 0; j < d; j++ {
						gu := gz * wrow[j]
						gv := gz * wrow[d+j]
						wrow[j] += gz * urow[j]
						wrow[d+j] += gz * vrow[j]
						urow[j] += gu
						vrow[j] += gv
					}
				}
			}
			for j := 0; j < d; j++ {
				gh := gout * urow[j] * vrow[j]
				gu := gout * h[j] * vrow[j]
				gv := gout * h[j] * urow[j]
				h[j] += gh
				urow[j] += gu - lr*cfg.Reg*urow[j]
				vrow[j] += gv - lr*cfg.Reg*vrow[j]
			}
		}
	}
	// Fold the GMF head into the tables so dot(U'[u], V'[v]) = GMF score.
	u = ue.Clone()
	v = ve.Clone()
	for j := 0; j < d; j++ {
		r := math.Sqrt(math.Abs(h[j]))
		sign := 1.0
		if h[j] < 0 {
			sign = -1
		}
		for i := 0; i < g.NU; i++ {
			u.Data[i*d+j] *= r * sign
		}
		for i := 0; i < g.NV; i++ {
			v.Data[i*d+j] *= r
		}
	}
	return u, v, nil
}

func sigmoid(z float64) float64 {
	if z > 12 {
		return 1
	}
	if z < -12 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}
