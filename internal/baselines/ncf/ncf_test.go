package ncf

import (
	"math"
	"testing"
	"time"

	"gebe/internal/bigraph"
	"gebe/internal/dense"
)

func ratingGraph(t testing.TB) *bigraph.Graph {
	var edges []bigraph.Edge
	for u := 0; u < 16; u++ {
		for d := 0; d < 4; d++ {
			edges = append(edges, bigraph.Edge{U: u, V: (u + d*3) % 10, W: 1})
		}
	}
	g, err := bigraph.New(16, 10, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTrainProducesFiniteDotScores(t *testing.T) {
	g := ratingGraph(t)
	u, v, err := Train(g, Config{Dim: 6, Epochs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for uu := 0; uu < g.NU; uu++ {
		for vv := 0; vv < g.NV; vv++ {
			s := dense.Dot(u.Row(uu), v.Row(vv))
			if math.IsNaN(s) || math.IsInf(s, 0) {
				t.Fatalf("score (%d,%d) not finite", uu, vv)
			}
		}
	}
}

func TestTrainSeparatesObservedFromRandom(t *testing.T) {
	g := ratingGraph(t)
	u, v, err := Train(g, Config{Dim: 8, Epochs: 12, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	liked := g.HasEdgeSet()
	var posSum, negSum float64
	var posN, negN int
	for uu := 0; uu < g.NU; uu++ {
		for vv := 0; vv < g.NV; vv++ {
			s := dense.Dot(u.Row(uu), v.Row(vv))
			if liked[bigraph.PackEdge(uu, vv)] {
				posSum += s
				posN++
			} else {
				negSum += s
				negN++
			}
		}
	}
	if posSum/float64(posN) <= negSum/float64(negN) {
		t.Error("observed pairs do not outscore unobserved ones on average")
	}
}

func TestValidationAndDeadline(t *testing.T) {
	g := ratingGraph(t)
	if _, _, err := Train(g, Config{Dim: 0}); err == nil {
		t.Error("Dim=0 accepted")
	}
	empty, _ := bigraph.New(2, 2, nil)
	if _, _, err := Train(empty, Config{Dim: 2}); err == nil {
		t.Error("empty graph accepted")
	}
	if _, _, err := Train(g, Config{Dim: 4, Deadline: time.Now().Add(-time.Second)}); err == nil {
		t.Error("expired deadline ignored")
	}
}
