package nrp

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"gebe/internal/bigraph"
	"gebe/internal/dense"
	"gebe/internal/pmf"
)

func smallGraph(t testing.TB) *bigraph.Graph {
	var edges []bigraph.Edge
	for u := 0; u < 12; u++ {
		for d := 0; d < 3; d++ {
			edges = append(edges, bigraph.Edge{U: u, V: (u + d) % 8, W: float64(1 + d)})
		}
	}
	g, err := bigraph.New(12, 8, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPPROperatorMatchesDense verifies applyM against an explicit dense
// construction of M = Σ ω(ℓ)(W_r W_cᵀ)^ℓ W_r.
func TestPPROperatorMatchesDense(t *testing.T) {
	g := smallGraph(t)
	w := buildW(g)
	wr := normalizeRows(w)
	wcT := normalizeRows(w.T())
	om := pmf.NewGeometric(0.15)
	tau := 4
	op := pprOperator{wr: wr, wcT: wcT, omega: om, tau: tau, threads: 1}

	// Dense M.
	wrD := wr.ToDense()
	wcD := wcT.ToDense().T()     // column-normalized W (|U|×|V|)
	step := dense.MulT(wrD, wcD) // W_r · W_cᵀ (MulT(a,b) = a·bᵀ)
	m := wrD.Clone()
	m.Scale(om.Weight(0))
	cur := wrD
	for ell := 1; ell <= tau; ell++ {
		cur = dense.Mul(step, cur)
		m.AddScaled(om.Weight(ell), cur)
	}
	// Compare M·x.
	x := dense.Random(g.NV, 3, newTestRand())
	got := op.applyM(x)
	want := dense.Mul(m, x)
	if !dense.Equal(got, want, 1e-10) {
		t.Errorf("applyM mismatch (max dev %g)", dense.Sub(got, want).MaxAbs())
	}
	// Compare Mᵀ·y.
	y := dense.Random(g.NU, 3, newTestRand())
	gotT := op.applyMT(y)
	wantT := dense.Mul(m.T(), y)
	if !dense.Equal(gotT, wantT, 1e-10) {
		t.Errorf("applyMT mismatch (max dev %g)", dense.Sub(gotT, wantT).MaxAbs())
	}
}

func newTestRand() *rand.Rand {
	return rand.New(rand.NewPCG(12345, 678))
}

func TestTrainShapesAndReweighting(t *testing.T) {
	g := smallGraph(t)
	u, v, err := Train(g, Config{Dim: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if u.Rows != g.NU || v.Rows != g.NV || u.Cols != 4 {
		t.Fatalf("shapes %dx%d %dx%d", u.Rows, u.Cols, v.Rows, v.Cols)
	}
	// Reweighting fits row sums toward weighted degrees: the total score
	// mass Σ_v U[u]·V[v] should correlate with deg(u).
	du := degrees(g, true)
	vSum := make([]float64, 4)
	for j := 0; j < g.NV; j++ {
		for c := 0; c < 4; c++ {
			vSum[c] += v.At(j, c)
		}
	}
	var num, den1, den2 float64
	for i := 0; i < g.NU; i++ {
		s := dense.Dot(u.Row(i), vSum)
		num += s * du[i]
		den1 += s * s
		den2 += du[i] * du[i]
	}
	if corr := num / math.Sqrt(den1*den2); corr < 0.8 {
		t.Errorf("degree correlation %.3f too weak for reweighted PPR", corr)
	}
}

func TestTrainValidation(t *testing.T) {
	g := smallGraph(t)
	if _, _, err := Train(g, Config{Dim: 0}); err == nil {
		t.Error("Dim=0 accepted")
	}
	if _, _, err := Train(g, Config{Dim: 100}); err == nil {
		t.Error("Dim > min(|U|,|V|) accepted")
	}
	empty, _ := bigraph.New(3, 3, nil)
	if _, _, err := Train(empty, Config{Dim: 2}); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestTrainDeadline(t *testing.T) {
	g := smallGraph(t)
	if _, _, err := Train(g, Config{Dim: 4, Deadline: time.Now().Add(-time.Second)}); err == nil {
		t.Error("expired deadline ignored")
	}
}

func TestClampPos(t *testing.T) {
	if clampPos(math.NaN()) != 1e-3 || clampPos(-5) != 1e-3 {
		t.Error("clampPos lower bound wrong")
	}
	if clampPos(1e9) != 1e3 {
		t.Error("clampPos upper bound wrong")
	}
	if clampPos(2.5) != 2.5 {
		t.Error("clampPos altered a valid value")
	}
}
