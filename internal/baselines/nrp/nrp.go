// Package nrp re-implements NRP (Yang et al., PVLDB 2020) — "homogeneous
// network embedding for massive graphs via reweighted personalized
// PageRank" — the strongest scalable competitor in the paper's tables.
//
// NRP builds a low-rank factorization of the PPR matrix of the (typeless)
// graph and then learns per-node positive weights so that the factored
// scores reproduce node degrees, correcting PPR's bias. Following §4's
// "Connection to NRP", the bipartite specialization factorizes
// Π = Σ_ℓ α(1−α)^ℓ T^ℓ restricted to U×V pairs, where T alternates the
// row- and column-normalized weight matrices; the forward/backward node
// weights are fitted by the same alternating least-squares scheme as the
// original.
package nrp

import (
	"fmt"
	"math"
	"time"

	"gebe/internal/budget"

	"gebe/internal/bigraph"
	"gebe/internal/dense"
	"gebe/internal/linalg"
	"gebe/internal/pmf"
	"gebe/internal/sparse"
)

// Config holds NRP hyperparameters; defaults follow the NRP paper
// (α=0.15, a handful of reweighting rounds).
type Config struct {
	Dim int
	// Alpha is the PPR restart probability (default 0.15).
	Alpha float64
	// Tau truncates the PPR series (default 10 — (1−α)^10 ≈ 0.2).
	Tau int
	// Rounds of alternating reweighting (default 10).
	Rounds int
	// Iters/Tol drive the eigen-solver.
	Iters   int
	Tol     float64
	Seed    uint64
	Threads int
	// Deadline optionally bounds training (cooperative; zero = none).
	Deadline time.Time
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 0.15
	}
	if c.Tau == 0 {
		c.Tau = 10
	}
	if c.Rounds == 0 {
		c.Rounds = 10
	}
	if c.Iters == 0 {
		c.Iters = 100
	}
	if c.Tol == 0 {
		c.Tol = 1e-6
	}
	if c.Threads == 0 {
		c.Threads = 1
	}
	return c
}

// pprOperator applies M·Mᵀ where M = Σ_ℓ ω_geo(ℓ)(W_r·W_cᵀ)^ℓ · W_r is the
// U→V block of the truncated PPR series. Used to extract M's top-k left
// singular pairs by subspace iteration.
type pprOperator struct {
	// wr is the row-normalized W (|U|×|V|); wcT is the column-normalized
	// W *stored transposed* (|V|×|U|), i.e. the row-normalized Wᵀ.
	wr, wcT *sparse.CSR
	omega   pmf.PMF
	tau     int
	threads int
}

func (o pprOperator) Dim() int { return o.wr.Rows }

// applyM computes M·x for x of shape |V|×k.
func (o pprOperator) applyM(x *dense.Matrix) *dense.Matrix {
	// M·x = Σ_ℓ ω(ℓ)(W_r W_cᵀ)^ℓ (W_r x), with W_cᵀ stored as wcT.
	base := o.wr.MulDense(x, o.threads)
	acc := base.Clone()
	acc.Scale(o.omega.Weight(0))
	cur := base
	for ell := 1; ell <= o.tau; ell++ {
		cur = o.wr.MulDense(o.wcT.MulDense(cur, o.threads), o.threads)
		acc.AddScaled(o.omega.Weight(ell), cur)
	}
	return acc
}

// applyMT computes Mᵀ·y for y of shape |U|×k.
func (o pprOperator) applyMT(y *dense.Matrix) *dense.Matrix {
	// Mᵀ·y = W_rᵀ Σ_ℓ ω(ℓ)(W_c W_rᵀ)^ℓ y, where W_c = wcTᵀ.
	acc := y.Clone()
	acc.Scale(o.omega.Weight(0))
	cur := y
	for ell := 1; ell <= o.tau; ell++ {
		cur = o.wcT.TMulDense(o.wr.TMulDense(cur, o.threads), o.threads)
		acc.AddScaled(o.omega.Weight(ell), cur)
	}
	return o.wr.TMulDense(acc, o.threads)
}

func (o pprOperator) Apply(x *dense.Matrix) *dense.Matrix {
	return o.applyM(o.applyMT(x))
}

// Train embeds g with the bipartite NRP specialization.
func Train(g *bigraph.Graph, cfg Config) (u, v *dense.Matrix, err error) {
	cfg = cfg.withDefaults()
	if cfg.Dim <= 0 {
		return nil, nil, fmt.Errorf("nrp: Dim must be positive")
	}
	if g.NumEdges() == 0 {
		return nil, nil, fmt.Errorf("nrp: empty graph")
	}
	if cfg.Dim > g.NU || cfg.Dim > g.NV {
		return nil, nil, fmt.Errorf("nrp: Dim=%d exceeds min(|U|,|V|)=%d", cfg.Dim, min(g.NU, g.NV))
	}
	w := buildW(g)
	wr := normalizeRows(w)
	wc := normalizeRows(w.T()) // row-normalized transpose == column-normalized W, transposed
	op := pprOperator{wr: wr, wcT: wc, omega: pmf.NewGeometric(cfg.Alpha), tau: cfg.Tau, threads: cfg.Threads}
	res := linalg.KSIDeadline(op, cfg.Dim, cfg.Iters, cfg.Tol, cfg.Seed, cfg.Deadline)
	if res.DeadlineHit {
		return nil, nil, fmt.Errorf("nrp: %w", budget.ErrExceeded)
	}
	// Base factorization M ≈ Φ·(MᵀΦ)ᵀ: U₀ = Φ·Σ^{1/2}, V₀ = (MᵀΦ)·Σ^{-1/2}.
	phi := res.Vectors
	mtPhi := op.applyMT(phi)
	su := make([]float64, cfg.Dim)
	sv := make([]float64, cfg.Dim)
	for i, lam := range res.Values {
		if lam < 0 {
			lam = 0
		}
		s := sqrt(sqrt(lam)) // σ^{1/2}
		su[i] = s
		if s > 0 {
			sv[i] = 1 / s
		}
	}
	u0 := phi.Clone()
	u0.ScaleCols(su)
	v0 := mtPhi
	v0.ScaleCols(sv)

	// Reweighting: find positive scalars ω_u, ω_v with
	// ω_u·(U₀[u]·Σ_v ω_v V₀[v]) ≈ deg(u) and symmetrically for v. The
	// closed-form per-coordinate update is a least-squares step with a
	// positivity clamp, as in NRP's coordinate descent.
	du := degrees(g, true)
	dv := degrees(g, false)
	omU := ones(g.NU)
	omV := ones(g.NV)
	for round := 0; round < cfg.Rounds; round++ {
		vSum := weightedColSum(v0, omV)
		for i := 0; i < g.NU; i++ {
			s := dense.Dot(u0.Row(i), vSum)
			omU[i] = clampPos(du[i] / s)
		}
		uSum := weightedColSum(u0, omU)
		for j := 0; j < g.NV; j++ {
			s := dense.Dot(v0.Row(j), uSum)
			omV[j] = clampPos(dv[j] / s)
		}
	}
	u = u0.Clone()
	v = v0.Clone()
	for i := 0; i < g.NU; i++ {
		scaleRow(u.Row(i), omU[i])
	}
	for j := 0; j < g.NV; j++ {
		scaleRow(v.Row(j), omV[j])
	}
	return u, v, nil
}

func buildW(g *bigraph.Graph) *sparse.CSR {
	entries := make([]sparse.Entry, len(g.Edges))
	for i, e := range g.Edges {
		entries[i] = sparse.Entry{Row: e.U, Col: e.V, Val: e.W}
	}
	w, err := sparse.New(g.NU, g.NV, entries)
	if err != nil {
		panic(fmt.Sprintf("nrp: invalid graph: %v", err))
	}
	return w
}

func normalizeRows(w *sparse.CSR) *sparse.CSR {
	sums := w.RowSums()
	out := &sparse.CSR{Rows: w.Rows, Cols: w.Cols, RowPtr: w.RowPtr, ColIdx: w.ColIdx, Val: make([]float64, len(w.Val))}
	for i := 0; i < w.Rows; i++ {
		s := sums[i]
		if s == 0 {
			continue
		}
		inv := 1 / s
		for p := w.RowPtr[i]; p < w.RowPtr[i+1]; p++ {
			out.Val[p] = w.Val[p] * inv
		}
	}
	return out
}

func degrees(g *bigraph.Graph, uSide bool) []float64 {
	var d []float64
	if uSide {
		d = make([]float64, g.NU)
		for _, e := range g.Edges {
			d[e.U] += e.W
		}
	} else {
		d = make([]float64, g.NV)
		for _, e := range g.Edges {
			d[e.V] += e.W
		}
	}
	return d
}

func ones(n int) []float64 {
	o := make([]float64, n)
	for i := range o {
		o[i] = 1
	}
	return o
}

func weightedColSum(m *dense.Matrix, w []float64) []float64 {
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		wi := w[i]
		for j, x := range row {
			out[j] += wi * x
		}
	}
	return out
}

func clampPos(x float64) float64 {
	const lo, hi = 1e-3, 1e3
	if x != x || x < lo { // NaN or tiny/negative
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func scaleRow(row []float64, s float64) {
	for j := range row {
		row[j] *= s
	}
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
