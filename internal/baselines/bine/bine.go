// Package bine re-implements BiNE (Gao et al., SIGIR 2018) in its
// essential form: truncated biased random walks are generated on the two
// implicit homogeneous projections (U-to-U via shared items, V-to-V via
// shared users) to preserve the long-tail vertex distribution; SGNS over
// those corpora preserves high-order implicit relations, while an
// explicit-relation term (KL on observed edges, realized as sigmoid dot
// products with negative sampling) ties the two spaces together — the
// three-part joint objective of the original.
package bine

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"gebe/internal/budget"

	"gebe/internal/baselines/sgns"
	"gebe/internal/baselines/walk"
	"gebe/internal/bigraph"
	"gebe/internal/dense"
	"gebe/internal/sampling"
)

// Config holds BiNE hyperparameters.
type Config struct {
	Dim int
	// WalksPerNode/MaxWalkLength control the projected-graph corpora
	// (defaults 8 and 20 same-type hops). BiNE's percentage-based walk
	// stopping is approximated by per-node walk counts proportional to
	// degree, matching its long-tail design goal.
	WalksPerNode, MaxWalkLength int
	Window, Negatives           int
	// ExplicitSamples controls SGD steps of the explicit-relation term
	// per edge (default 20).
	ExplicitSamples int
	LearnRate       float64
	Seed            uint64
	Threads         int
	// Deadline optionally bounds training (cooperative; zero = none).
	Deadline time.Time
}

func (c Config) withDefaults() Config {
	if c.WalksPerNode == 0 {
		c.WalksPerNode = 8
	}
	if c.MaxWalkLength == 0 {
		c.MaxWalkLength = 20
	}
	if c.Window == 0 {
		c.Window = 5
	}
	if c.Negatives == 0 {
		c.Negatives = 4
	}
	if c.ExplicitSamples == 0 {
		c.ExplicitSamples = 20
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.025
	}
	if c.Threads == 0 {
		c.Threads = 1
	}
	return c
}

// Train fits BiNE and returns user/item embeddings.
func Train(g *bigraph.Graph, cfg Config) (u, v *dense.Matrix, err error) {
	cfg = cfg.withDefaults()
	if cfg.Dim <= 0 {
		return nil, nil, fmt.Errorf("bine: Dim must be positive")
	}
	if g.NumEdges() == 0 {
		return nil, nil, fmt.Errorf("bine: empty graph")
	}
	wg := walk.NewGraph(g)
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x0f1e2d3c4b5a6978))

	// Same-type corpora from the implicit projections: a "U walk" takes
	// two bipartite hops per same-type step.
	uWalks, err := projectedWalks(wg, 0, g.NU, cfg, rng)
	if err != nil {
		return nil, nil, err
	}
	vWalks, err := projectedWalks(wg, g.NU, g.NV, cfg, rng)
	if err != nil {
		return nil, nil, err
	}
	uEmb, err := sgns.Train(uWalks, g.NU, sgns.Config{
		Dim: cfg.Dim, Window: cfg.Window, Negatives: cfg.Negatives,
		Threads: cfg.Threads, Seed: cfg.Seed + 1, Deadline: cfg.Deadline,
	})
	if err != nil {
		return nil, nil, err
	}
	vEmb, err := sgns.Train(vWalks, g.NV, sgns.Config{
		Dim: cfg.Dim, Window: cfg.Window, Negatives: cfg.Negatives,
		Threads: cfg.Threads, Seed: cfg.Seed + 2, Deadline: cfg.Deadline,
	})
	if err != nil {
		return nil, nil, err
	}

	// Explicit-relation term: align the two spaces on observed edges.
	ew := make([]float64, len(g.Edges))
	for i, e := range g.Edges {
		ew[i] = e.W
	}
	edgeAlias := sampling.MustAlias(ew)
	steps := cfg.ExplicitSamples * len(g.Edges)
	grad := make([]float64, cfg.Dim)
	for s := 0; s < steps; s++ {
		if s%8192 == 0 {
			if err := budget.Check(cfg.Deadline); err != nil {
				return nil, nil, fmt.Errorf("bine: %w", err)
			}
		}
		lr := cfg.LearnRate * (1 - float64(s)/float64(steps))
		if lr < cfg.LearnRate*1e-3 {
			lr = cfg.LearnRate * 1e-3
		}
		e := g.Edges[edgeAlias.Sample(rng)]
		urow := uEmb.Row(e.U)
		for j := range grad {
			grad[j] = 0
		}
		for neg := 0; neg <= cfg.Negatives; neg++ {
			target := e.V
			label := 1.0
			if neg > 0 {
				target = rng.IntN(g.NV)
				if target == e.V {
					continue
				}
				label = 0
			}
			vrow := vEmb.Row(target)
			f := sigmoid(dense.Dot(urow, vrow))
			gstep := (label - f) * lr
			for j := 0; j < cfg.Dim; j++ {
				grad[j] += gstep * vrow[j]
				vrow[j] += gstep * urow[j]
			}
		}
		for j := 0; j < cfg.Dim; j++ {
			urow[j] += grad[j]
		}
	}
	return uEmb, vEmb, nil
}

// projectedWalks produces same-type walks for the side whose homogeneous
// ids start at off and span n nodes; tokens are re-based to [0,n).
func projectedWalks(wg *walk.Graph, off, n int, cfg Config, rng *rand.Rand) ([][]int32, error) {
	var walks [][]int32
	for w := 0; w < cfg.WalksPerNode; w++ {
		if err := budget.Check(cfg.Deadline); err != nil {
			return nil, fmt.Errorf("bine: %w", err)
		}
		for s := 0; s < n; s++ {
			start := int32(off + s)
			wk := make([]int32, 0, cfg.MaxWalkLength)
			wk = append(wk, int32(s))
			cur := start
			for len(wk) < cfg.MaxWalkLength {
				mid := wg.Step(cur, rng)
				if mid < 0 {
					break
				}
				nxt := wg.Step(mid, rng)
				if nxt < 0 {
					break
				}
				cur = nxt
				wk = append(wk, cur-int32(off))
			}
			if len(wk) > 1 {
				walks = append(walks, wk)
			}
		}
	}
	return walks, nil
}

func sigmoid(z float64) float64 {
	if z > 8 {
		return 1
	}
	if z < -8 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}
