package bine

import (
	"testing"
	"time"

	"gebe/internal/bigraph"
	"gebe/internal/dense"
)

func smallGraph(t testing.TB) *bigraph.Graph {
	var edges []bigraph.Edge
	for u := 0; u < 12; u++ {
		base := (u / 6) * 4
		for d := 0; d < 3; d++ {
			edges = append(edges, bigraph.Edge{U: u, V: base + d, W: float64(1 + d)})
		}
	}
	g, err := bigraph.New(12, 8, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTrainShapesAndSignal(t *testing.T) {
	g := smallGraph(t)
	u, v, err := Train(g, Config{Dim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if u.Rows != 12 || v.Rows != 8 {
		t.Fatalf("shapes %dx%d %dx%d", u.Rows, u.Cols, v.Rows, v.Cols)
	}
	// The explicit-relation term aligns the two spaces: an observed edge
	// should outscore a cross-block non-edge.
	pos := dense.Dot(u.Row(0), v.Row(0)) // block-0 edge
	neg := dense.Dot(u.Row(0), v.Row(5)) // block-1 item, no path
	if pos <= neg {
		t.Errorf("edge score %.3f <= cross-block score %.3f", pos, neg)
	}
}

func TestProjectedWalksStayOnSide(t *testing.T) {
	g := smallGraph(t)
	// Walks over the U projection must only emit tokens < |U|.
	u, v, err := Train(g, Config{Dim: 4, WalksPerNode: 2, MaxWalkLength: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	_ = u
	_ = v
	// The invariant is enforced structurally (tokens are re-based); this
	// test exists to exercise the path with non-default walk parameters.
}

func TestValidationAndDeadline(t *testing.T) {
	g := smallGraph(t)
	if _, _, err := Train(g, Config{Dim: 0}); err == nil {
		t.Error("Dim=0 accepted")
	}
	empty, _ := bigraph.New(2, 2, nil)
	if _, _, err := Train(empty, Config{Dim: 2}); err == nil {
		t.Error("empty graph accepted")
	}
	if _, _, err := Train(g, Config{Dim: 4, Deadline: time.Now().Add(-time.Second)}); err == nil {
		t.Error("expired deadline ignored")
	}
}
