package cse

import (
	"testing"
	"time"

	"gebe/internal/bigraph"
	"gebe/internal/dense"
)

func smallGraph(t testing.TB) *bigraph.Graph {
	var edges []bigraph.Edge
	for u := 0; u < 14; u++ {
		for d := 0; d < 3; d++ {
			edges = append(edges, bigraph.Edge{U: u, V: (u + d) % 8, W: float64(1 + d%2)})
		}
	}
	g, err := bigraph.New(14, 8, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTrainShapes(t *testing.T) {
	g := smallGraph(t)
	u, v, err := Train(g, Config{Dim: 6, SamplesPerEdge: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if u.Rows != 14 || v.Rows != 8 || u.Cols != 6 || v.Cols != 6 {
		t.Fatalf("shapes %dx%d %dx%d", u.Rows, u.Cols, v.Rows, v.Cols)
	}
	if u.FrobeniusNorm() == 0 || v.FrobeniusNorm() == 0 {
		t.Error("zero embeddings")
	}
}

func TestObservedEdgesOutscoreRandomPairs(t *testing.T) {
	g := smallGraph(t)
	u, v, err := Train(g, Config{Dim: 8, SamplesPerEdge: 60, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	liked := g.HasEdgeSet()
	wins, total := 0, 0
	for _, e := range g.Edges {
		neg := (e.V + 4) % g.NV
		if liked[bigraph.PackEdge(e.U, neg)] {
			continue
		}
		if dense.Dot(u.Row(e.U), v.Row(e.V)) > dense.Dot(u.Row(e.U), v.Row(neg)) {
			wins++
		}
		total++
	}
	if total > 0 && float64(wins)/float64(total) < 0.7 {
		t.Errorf("edge-vs-nonedge win rate %.2f too low", float64(wins)/float64(total))
	}
}

func TestValidationAndDeadline(t *testing.T) {
	g := smallGraph(t)
	if _, _, err := Train(g, Config{Dim: 0}); err == nil {
		t.Error("Dim=0 accepted")
	}
	empty, _ := bigraph.New(2, 2, nil)
	if _, _, err := Train(empty, Config{Dim: 2}); err == nil {
		t.Error("empty graph accepted")
	}
	if _, _, err := Train(g, Config{Dim: 4, Deadline: time.Now().Add(-time.Second)}); err == nil {
		t.Error("expired deadline ignored")
	}
}
