// Package cse re-implements CSE (Chen et al., WWW 2019) — collaborative
// similarity embedding — in its joint-learning form: a direct user-item
// proximity model (sigmoid matrix factorization with negative sampling)
// combined with k-order neighborhood proximity losses over same-type
// node pairs sampled from short random walks.
package cse

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"gebe/internal/budget"

	"gebe/internal/baselines/walk"
	"gebe/internal/bigraph"
	"gebe/internal/dense"
	"gebe/internal/sampling"
)

// Config holds CSE hyperparameters.
type Config struct {
	Dim int
	// Order is the random-walk order k for neighborhood proximity
	// (default 2, i.e. same-type pairs two hops apart).
	Order int
	// SamplesPerEdge controls total SGD steps (default 40).
	SamplesPerEdge int
	// Lambda balances the neighborhood loss against the direct loss
	// (default 0.5).
	Lambda         float64
	Negatives      int
	LearnRate, Reg float64
	Seed           uint64
	Threads        int // kept for interface symmetry
	// Deadline optionally bounds training (cooperative; zero = none).
	Deadline time.Time
}

func (c Config) withDefaults() Config {
	if c.Order == 0 {
		c.Order = 2
	}
	if c.SamplesPerEdge == 0 {
		c.SamplesPerEdge = 40
	}
	if c.Lambda == 0 {
		c.Lambda = 0.5
	}
	if c.Negatives == 0 {
		c.Negatives = 5
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.05
	}
	if c.Reg == 0 {
		c.Reg = 1e-4
	}
	return c
}

// Train fits CSE and returns user/item embeddings.
func Train(g *bigraph.Graph, cfg Config) (u, v *dense.Matrix, err error) {
	cfg = cfg.withDefaults()
	if cfg.Dim <= 0 {
		return nil, nil, fmt.Errorf("cse: Dim must be positive")
	}
	if g.NumEdges() == 0 {
		return nil, nil, fmt.Errorf("cse: empty graph")
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x2ffd72dbd01adfb7))
	u = dense.New(g.NU, cfg.Dim)
	v = dense.New(g.NV, cfg.Dim)
	for i := range u.Data {
		u.Data[i] = rng.NormFloat64() * 0.1
	}
	for i := range v.Data {
		v.Data[i] = rng.NormFloat64() * 0.1
	}
	// Context tables for the neighborhood losses.
	cu := dense.New(g.NU, cfg.Dim)
	cv := dense.New(g.NV, cfg.Dim)

	wg := walk.NewGraph(g)
	ew := make([]float64, len(g.Edges))
	for i, e := range g.Edges {
		ew[i] = e.W
	}
	edgeAlias := sampling.MustAlias(ew)
	negU := degreeAlias(g, true)
	negV := degreeAlias(g, false)

	steps := cfg.SamplesPerEdge * len(g.Edges)
	for s := 0; s < steps; s++ {
		if s%8192 == 0 {
			if err := budget.Check(cfg.Deadline); err != nil {
				return nil, nil, fmt.Errorf("cse: %w", err)
			}
		}
		lr := cfg.LearnRate * (1 - float64(s)/float64(steps))
		if lr < cfg.LearnRate*1e-3 {
			lr = cfg.LearnRate * 1e-3
		}
		e := g.Edges[edgeAlias.Sample(rng)]
		// Direct user-item term with negative sampling.
		sgnsStep(u.Row(e.U), v, e.V, negV, cfg, lr, rng)
		sgnsStep(v.Row(e.V), u, e.U, negU, cfg, lr, rng)
		// k-order neighborhood term: walk 2·Order steps from each endpoint
		// to reach a same-type node, then pull the pair together.
		if rng.Float64() < cfg.Lambda {
			if peer := sameTypeWalk(wg, int32(e.U), cfg.Order, rng); peer >= 0 {
				sgnsStepCtx(u.Row(e.U), cu, int(peer), negU, cfg, lr, rng)
			}
			if peer := sameTypeWalk(wg, int32(g.NU+e.V), cfg.Order, rng); peer >= int32(g.NU) {
				sgnsStepCtx(v.Row(e.V), cv, int(peer)-g.NU, negV, cfg, lr, rng)
			}
		}
	}
	return u, v, nil
}

// sameTypeWalk walks 2*order steps (always an even count, so it lands on
// the start's side) and returns the endpoint, or -1 for dead ends.
func sameTypeWalk(wg *walk.Graph, start int32, order int, rng *rand.Rand) int32 {
	cur := start
	for h := 0; h < 2*order; h++ {
		next := wg.Step(cur, rng)
		if next < 0 {
			return -1
		}
		cur = next
	}
	return cur
}

// sgnsStep trains vec against target row `pos` of table with negatives.
func sgnsStep(vec []float64, table *dense.Matrix, pos int, neg *sampling.Alias, cfg Config, lr float64, rng *rand.Rand) {
	dim := len(vec)
	grad := make([]float64, dim)
	for s := 0; s <= cfg.Negatives; s++ {
		target := pos
		label := 1.0
		if s > 0 {
			target = neg.Sample(rng)
			if target == pos {
				continue
			}
			label = 0
		}
		trow := table.Row(target)
		f := sigmoid(dense.Dot(vec, trow))
		gstep := (label - f) * lr
		for j := 0; j < dim; j++ {
			grad[j] += gstep * trow[j]
			trow[j] += gstep*vec[j] - lr*cfg.Reg*trow[j]
		}
	}
	for j := 0; j < dim; j++ {
		vec[j] += grad[j] - lr*cfg.Reg*vec[j]
	}
}

// sgnsStepCtx is sgnsStep against a context table (neighborhood loss).
func sgnsStepCtx(vec []float64, ctx *dense.Matrix, pos int, neg *sampling.Alias, cfg Config, lr float64, rng *rand.Rand) {
	sgnsStep(vec, ctx, pos, neg, cfg, lr, rng)
}

func degreeAlias(g *bigraph.Graph, uSide bool) *sampling.Alias {
	var d []float64
	if uSide {
		d = make([]float64, g.NU)
		for _, e := range g.Edges {
			d[e.U]++
		}
	} else {
		d = make([]float64, g.NV)
		for _, e := range g.Edges {
			d[e.V]++
		}
	}
	for i := range d {
		d[i] = math.Pow(d[i]+1e-9, 0.75)
	}
	return sampling.MustAlias(d)
}

func sigmoid(z float64) float64 {
	if z > 8 {
		return 1
	}
	if z < -8 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}
