// Package node2vec re-implements node2vec (Grover & Leskovec, KDD 2016):
// DeepWalk with second-order (p,q)-biased walks, realized by rejection
// sampling so hub-heavy bipartite graphs need no per-edge alias tables.
package node2vec

import (
	"time"

	"gebe/internal/baselines/deepwalk"
	"gebe/internal/baselines/sgns"
	"gebe/internal/baselines/walk"
	"gebe/internal/bigraph"
	"gebe/internal/dense"
)

// Config holds node2vec hyperparameters; P and Q default to the paper's
// common 4 and 0.25 grid midpoint of (1, 1) — we default to p=4, q=1
// which favours outward exploration on bipartite structures.
type Config struct {
	Dim                      int
	WalksPerNode, WalkLength int
	Window, Negatives        int
	Epochs                   int
	P, Q                     float64
	Seed                     uint64
	Threads                  int
	// Deadline optionally bounds training (cooperative; zero = none).
	Deadline time.Time
}

// Train runs node2vec on the homogeneous view of g.
func Train(g *bigraph.Graph, cfg Config) (u, v *dense.Matrix, err error) {
	if cfg.P == 0 {
		cfg.P = 4
	}
	if cfg.Q == 0 {
		cfg.Q = 1
	}
	wg := walk.NewGraph(g)
	walks, err := walk.Generate(wg, walk.Config{
		WalksPerNode: cfg.WalksPerNode, WalkLength: cfg.WalkLength,
		P: cfg.P, Q: cfg.Q, Seed: cfg.Seed, Deadline: cfg.Deadline,
	})
	if err != nil {
		return nil, nil, err
	}
	emb, err := sgns.Train(walks, wg.N, sgns.Config{
		Dim: cfg.Dim, Window: cfg.Window, Negatives: cfg.Negatives,
		Epochs: cfg.Epochs, Threads: cfg.Threads, Seed: cfg.Seed,
		Deadline: cfg.Deadline,
	})
	if err != nil {
		return nil, nil, err
	}
	return deepwalk.SplitEmbedding(emb, g.NU)
}
