package node2vec

import (
	"testing"
	"time"

	"gebe/internal/bigraph"
)

func smallGraph(t testing.TB) *bigraph.Graph {
	var edges []bigraph.Edge
	for u := 0; u < 10; u++ {
		for d := 0; d < 3; d++ {
			edges = append(edges, bigraph.Edge{U: u, V: (u + d) % 6, W: 1})
		}
	}
	g, err := bigraph.New(10, 6, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTrainDefaultsPQ(t *testing.T) {
	g := smallGraph(t)
	u, v, err := Train(g, Config{Dim: 6, WalksPerNode: 4, WalkLength: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if u.Rows != 10 || v.Rows != 6 {
		t.Fatalf("shapes %dx%d %dx%d", u.Rows, u.Cols, v.Rows, v.Cols)
	}
}

func TestTrainRejectsNegativePQ(t *testing.T) {
	g := smallGraph(t)
	if _, _, err := Train(g, Config{Dim: 4, P: -1, Q: 1}); err == nil {
		t.Error("negative P accepted")
	}
}

func TestTrainDeadline(t *testing.T) {
	g := smallGraph(t)
	if _, _, err := Train(g, Config{Dim: 4, Deadline: time.Now().Add(-time.Second)}); err == nil {
		t.Error("expired deadline ignored")
	}
}
