// Package baselines re-implements the competitor methods the paper
// evaluates against (§6.1), and exposes them behind one uniform Train
// signature for the experiment harness. Each sub-package contains one
// method with its own configuration surface; this package wires paper
// defaults, scaled to the stand-in dataset sizes.
package baselines

import (
	"fmt"
	"time"

	"gebe/internal/baselines/bigi"
	"gebe/internal/baselines/bine"
	"gebe/internal/baselines/bpr"
	"gebe/internal/baselines/cse"
	"gebe/internal/baselines/deepwalk"
	"gebe/internal/baselines/lightgcn"
	"gebe/internal/baselines/line"
	"gebe/internal/baselines/ncf"
	"gebe/internal/baselines/node2vec"
	"gebe/internal/baselines/nrp"
	"gebe/internal/bigraph"
	"gebe/internal/dense"
)

// TrainFunc is the uniform baseline signature: embed graph g with
// dimensionality k. A non-zero deadline is a cooperative time budget;
// trainers that exceed it return budget.ErrExceeded.
type TrainFunc func(g *bigraph.Graph, k int, seed uint64, threads int, deadline time.Time) (u, v *dense.Matrix, err error)

// Method couples a paper-facing name with its trainer and a rough cost
// class used by the harness to order work.
type Method struct {
	Name  string
	Train TrainFunc
	// Slow marks methods the paper itself reports as timing out on large
	// inputs (walk- and NN-based); the harness gives them the same time
	// budget but expects the dashes.
	Slow bool
}

// All returns the re-implemented competitor set in the display order of
// the paper's tables.
func All() []Method {
	return []Method{
		{Name: "DeepWalk", Slow: true, Train: func(g *bigraph.Graph, k int, seed uint64, threads int, deadline time.Time) (*dense.Matrix, *dense.Matrix, error) {
			return deepwalk.Train(g, deepwalk.Config{Dim: k, Seed: seed, Threads: threads, Deadline: deadline})
		}},
		{Name: "node2vec", Slow: true, Train: func(g *bigraph.Graph, k int, seed uint64, threads int, deadline time.Time) (*dense.Matrix, *dense.Matrix, error) {
			return node2vec.Train(g, node2vec.Config{Dim: k, Seed: seed, Threads: threads, Deadline: deadline})
		}},
		{Name: "LINE", Train: func(g *bigraph.Graph, k int, seed uint64, threads int, deadline time.Time) (*dense.Matrix, *dense.Matrix, error) {
			return line.Train(g, line.Config{Dim: k, Seed: seed, Threads: threads, Deadline: deadline})
		}},
		{Name: "NRP", Train: func(g *bigraph.Graph, k int, seed uint64, threads int, deadline time.Time) (*dense.Matrix, *dense.Matrix, error) {
			return nrp.Train(g, nrp.Config{Dim: k, Seed: seed, Threads: threads, Deadline: deadline})
		}},
		{Name: "BiNE", Slow: true, Train: func(g *bigraph.Graph, k int, seed uint64, threads int, deadline time.Time) (*dense.Matrix, *dense.Matrix, error) {
			return bine.Train(g, bine.Config{Dim: k, Seed: seed, Threads: threads, Deadline: deadline})
		}},
		{Name: "BiGI", Slow: true, Train: func(g *bigraph.Graph, k int, seed uint64, threads int, deadline time.Time) (*dense.Matrix, *dense.Matrix, error) {
			return bigi.Train(g, bigi.Config{Dim: k, Seed: seed, Threads: threads, Deadline: deadline})
		}},
		{Name: "BPR", Train: func(g *bigraph.Graph, k int, seed uint64, threads int, deadline time.Time) (*dense.Matrix, *dense.Matrix, error) {
			return bpr.Train(g, bpr.Config{Dim: k, Seed: seed, Deadline: deadline})
		}},
		{Name: "NCF", Slow: true, Train: func(g *bigraph.Graph, k int, seed uint64, threads int, deadline time.Time) (*dense.Matrix, *dense.Matrix, error) {
			return ncf.Train(g, ncf.Config{Dim: k, Seed: seed, Deadline: deadline})
		}},
		{Name: "LightGCN", Slow: true, Train: func(g *bigraph.Graph, k int, seed uint64, threads int, deadline time.Time) (*dense.Matrix, *dense.Matrix, error) {
			return lightgcn.Train(g, lightgcn.Config{Dim: k, Seed: seed, Threads: threads, Deadline: deadline})
		}},
		{Name: "CSE", Slow: true, Train: func(g *bigraph.Graph, k int, seed uint64, threads int, deadline time.Time) (*dense.Matrix, *dense.Matrix, error) {
			return cse.Train(g, cse.Config{Dim: k, Seed: seed, Threads: threads, Deadline: deadline})
		}},
	}
}

// ByName finds a method by (case-sensitive) display name.
func ByName(name string) (Method, error) {
	for _, m := range All() {
		if m.Name == name {
			return m, nil
		}
	}
	return Method{}, fmt.Errorf("baselines: unknown method %q", name)
}
