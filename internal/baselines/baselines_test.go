package baselines

import (
	"math"
	"testing"
	"time"

	"gebe/internal/bigraph"
	"gebe/internal/dense"
	"gebe/internal/gen"
)

// blockGraph builds a small two-community bipartite graph with a few
// cross edges — enough structure for every baseline to learn something.
func blockGraph(t testing.TB) *bigraph.Graph {
	t.Helper()
	g, err := gen.LatentFactor(gen.LFConfig{
		NU: 60, NV: 40, NE: 600, Clusters: 3, Skew: 0.5,
		CrossRate: 0.15, Weighted: true, MinDegree: 2, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func checkEmbedding(t *testing.T, name string, u, v *dense.Matrix, nu, nv, k int) {
	t.Helper()
	if u == nil || v == nil {
		t.Fatalf("%s: nil embeddings", name)
	}
	if u.Rows != nu || u.Cols != k || v.Rows != nv || v.Cols != k {
		t.Fatalf("%s: shapes U=%dx%d V=%dx%d want %dx%d %dx%d",
			name, u.Rows, u.Cols, v.Rows, v.Cols, nu, k, nv, k)
	}
	for _, x := range u.Data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("%s: non-finite U entry", name)
		}
	}
	for _, x := range v.Data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("%s: non-finite V entry", name)
		}
	}
	if u.FrobeniusNorm() == 0 || v.FrobeniusNorm() == 0 {
		t.Fatalf("%s: all-zero embedding", name)
	}
}

func TestAllBaselinesProduceValidEmbeddings(t *testing.T) {
	g := blockGraph(t)
	const k = 8
	for _, m := range All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			u, v, err := m.Train(g, k, 7, 1, time.Time{})
			if err != nil {
				t.Fatalf("%s: %v", m.Name, err)
			}
			checkEmbedding(t, m.Name, u, v, g.NU, g.NV, k)
		})
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("NRP"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nrp"); err == nil {
		t.Error("lookup should be case-sensitive")
	}
	if _, err := ByName("GEBE"); err == nil {
		t.Error("GEBE is not a baseline")
	}
}

func TestBaselinesRejectEmptyGraph(t *testing.T) {
	empty, err := bigraph.New(5, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range All() {
		if _, _, err := m.Train(empty, 4, 1, 1, time.Time{}); err == nil {
			t.Errorf("%s accepted an empty graph", m.Name)
		}
	}
}

func TestBaselinesRejectBadDim(t *testing.T) {
	g := blockGraph(t)
	for _, m := range All() {
		if _, _, err := m.Train(g, 0, 1, 1, time.Time{}); err == nil {
			t.Errorf("%s accepted Dim=0", m.Name)
		}
	}
}

// TestBaselineRecommendationSignal: every baseline should rank a user's
// actual neighbors above random items more often than chance on the
// structured block graph. This is a weak but universal signal check.
func TestBaselineRecommendationSignal(t *testing.T) {
	g := blockGraph(t)
	const k = 8
	for _, m := range All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			u, v, err := m.Train(g, k, 11, 1, time.Time{})
			if err != nil {
				t.Fatal(err)
			}
			wins, total := 0, 0
			liked := g.HasEdgeSet()
			for i, e := range g.Edges {
				if i%7 != 0 {
					continue
				}
				pos := dense.Dot(u.Row(e.U), v.Row(e.V))
				neg := (e.V + 13) % g.NV
				if liked[bigraph.PackEdge(e.U, neg)] {
					continue
				}
				negScore := dense.Dot(u.Row(e.U), v.Row(neg))
				if pos > negScore {
					wins++
				}
				total++
			}
			if total == 0 {
				t.Skip("no comparable pairs")
			}
			if rate := float64(wins) / float64(total); rate < 0.55 {
				t.Errorf("%s: positive-vs-negative win rate %.2f barely above chance", m.Name, rate)
			}
		})
	}
}

// TestDeadlineCooperative: an already-expired deadline must make every
// baseline return budget.ErrExceeded promptly instead of training.
func TestDeadlineCooperative(t *testing.T) {
	g := blockGraph(t)
	past := time.Now().Add(-time.Second)
	for _, m := range All() {
		start := time.Now()
		_, _, err := m.Train(g, 8, 1, 1, past)
		if err == nil {
			t.Errorf("%s ignored an expired deadline", m.Name)
		}
		if time.Since(start) > 2*time.Second {
			t.Errorf("%s took %v to notice the expired deadline", m.Name, time.Since(start))
		}
	}
}
