package lightgcn

import (
	"math"
	"testing"
	"time"

	"gebe/internal/bigraph"
	"gebe/internal/dense"
)

func smallGraph(t testing.TB) *bigraph.Graph {
	var edges []bigraph.Edge
	for u := 0; u < 15; u++ {
		for d := 0; d < 3; d++ {
			edges = append(edges, bigraph.Edge{U: u, V: (u*2 + d) % 9, W: 1})
		}
	}
	g, err := bigraph.New(15, 9, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTrainShapesFinite(t *testing.T) {
	g := smallGraph(t)
	u, v, err := Train(g, Config{Dim: 6, Epochs: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if u.Rows != 15 || v.Rows != 9 || u.Cols != 6 {
		t.Fatalf("shapes %dx%d %dx%d", u.Rows, u.Cols, v.Rows, v.Cols)
	}
	for _, x := range append(append([]float64{}, u.Data...), v.Data...) {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatal("non-finite embedding entry")
		}
	}
}

// TestPropagationSmooths: after training, embeddings of users sharing all
// items should be closer than embeddings of users sharing none — the
// effect of LightGCN's neighborhood averaging.
func TestPropagationSmooths(t *testing.T) {
	var edges []bigraph.Edge
	// Users 0,1 share items 0,1,2; user 2 has items 3,4,5.
	for _, u := range []int{0, 1} {
		for v := 0; v < 3; v++ {
			edges = append(edges, bigraph.Edge{U: u, V: v, W: 1})
		}
	}
	for v := 3; v < 6; v++ {
		edges = append(edges, bigraph.Edge{U: 2, V: v, W: 1})
	}
	g, err := bigraph.New(3, 6, edges)
	if err != nil {
		t.Fatal(err)
	}
	u, _, err := Train(g, Config{Dim: 8, Epochs: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	same := cosine(u.Row(0), u.Row(1))
	diff := cosine(u.Row(0), u.Row(2))
	if same <= diff {
		t.Errorf("twin users cos %.3f <= disjoint users cos %.3f", same, diff)
	}
}

func cosine(a, b []float64) float64 {
	na, nb := dense.Norm2(a), dense.Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return dense.Dot(a, b) / (na * nb)
}

func TestValidationAndDeadline(t *testing.T) {
	g := smallGraph(t)
	if _, _, err := Train(g, Config{Dim: 0}); err == nil {
		t.Error("Dim=0 accepted")
	}
	empty, _ := bigraph.New(2, 2, nil)
	if _, _, err := Train(empty, Config{Dim: 2}); err == nil {
		t.Error("empty graph accepted")
	}
	if _, _, err := Train(g, Config{Dim: 4, Deadline: time.Now().Add(-time.Second)}); err == nil {
		t.Error("expired deadline ignored")
	}
}
