// Package lightgcn re-implements LightGCN (He et al., SIGIR 2020): base
// embeddings are propagated L times over the symmetrically normalized
// bipartite adjacency, the layer outputs are averaged, and the averaged
// embeddings are trained with the BPR pairwise loss. Gradients flow back
// through the propagation by applying the (symmetric) propagation
// operator to the batch gradient — the full-graph formulation of the
// reference implementation.
package lightgcn

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"gebe/internal/budget"

	"gebe/internal/bigraph"
	"gebe/internal/dense"
	"gebe/internal/sparse"
)

// Config holds LightGCN hyperparameters.
type Config struct {
	Dim int
	// Layers of propagation (default 3).
	Layers int
	// Epochs over the edge set (default 40), processed in Batch-sized
	// chunks (default 2048 triples).
	Epochs, Batch  int
	LearnRate, Reg float64
	Seed           uint64
	Threads        int
	// Deadline optionally bounds training (cooperative; zero = none).
	Deadline time.Time
}

func (c Config) withDefaults() Config {
	if c.Layers == 0 {
		c.Layers = 3
	}
	if c.Epochs == 0 {
		c.Epochs = 40
	}
	if c.Batch == 0 {
		c.Batch = 2048
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.05
	}
	if c.Reg == 0 {
		c.Reg = 1e-4
	}
	if c.Threads == 0 {
		c.Threads = 1
	}
	return c
}

// Train fits LightGCN and returns the final (propagated) embeddings.
func Train(g *bigraph.Graph, cfg Config) (u, v *dense.Matrix, err error) {
	cfg = cfg.withDefaults()
	if cfg.Dim <= 0 {
		return nil, nil, fmt.Errorf("lightgcn: Dim must be positive")
	}
	if g.NumEdges() == 0 {
		return nil, nil, fmt.Errorf("lightgcn: empty graph")
	}
	// Normalized adjacency Ã = D_u^{-1/2} W D_v^{-1/2}.
	du := make([]float64, g.NU)
	dv := make([]float64, g.NV)
	for _, e := range g.Edges {
		du[e.U] += e.W
		dv[e.V] += e.W
	}
	entries := make([]sparse.Entry, len(g.Edges))
	for i, e := range g.Edges {
		entries[i] = sparse.Entry{Row: e.U, Col: e.V,
			Val: e.W / math.Sqrt(du[e.U]*dv[e.V])}
	}
	a, err := sparse.New(g.NU, g.NV, entries)
	if err != nil {
		return nil, nil, fmt.Errorf("lightgcn: %w", err)
	}

	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xd1310ba698dfb5ac))
	e0u := dense.New(g.NU, cfg.Dim)
	e0v := dense.New(g.NV, cfg.Dim)
	for i := range e0u.Data {
		e0u.Data[i] = rng.NormFloat64() * 0.1
	}
	for i := range e0v.Data {
		e0v.Data[i] = rng.NormFloat64() * 0.1
	}
	liked := g.HasEdgeSet()

	propagate := func(bu, bv *dense.Matrix) (*dense.Matrix, *dense.Matrix) {
		// Mean over layers 0..L of alternating propagation.
		outU := bu.Clone()
		outV := bv.Clone()
		curU, curV := bu, bv
		for l := 1; l <= cfg.Layers; l++ {
			nextU := a.MulDense(curV, cfg.Threads)
			nextV := a.TMulDense(curU, cfg.Threads)
			outU.AddScaled(1, nextU)
			outV.AddScaled(1, nextV)
			curU, curV = nextU, nextV
		}
		outU.Scale(1 / float64(cfg.Layers+1))
		outV.Scale(1 / float64(cfg.Layers+1))
		return outU, outV
	}

	batches := (len(g.Edges) + cfg.Batch - 1) / cfg.Batch
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for b := 0; b < batches; b++ {
			if err := budget.Check(cfg.Deadline); err != nil {
				return nil, nil, fmt.Errorf("lightgcn: %w", err)
			}
			eu, ev := propagate(e0u, e0v)
			gradU := dense.New(g.NU, cfg.Dim)
			gradV := dense.New(g.NV, cfg.Dim)
			for s := 0; s < cfg.Batch; s++ {
				e := g.Edges[rng.IntN(len(g.Edges))]
				uu, pos := e.U, e.V
				neg := rng.IntN(g.NV)
				for tries := 0; liked[bigraph.PackEdge(uu, neg)] && tries < 50; tries++ {
					neg = rng.IntN(g.NV)
				}
				urow := eu.Row(uu)
				prow := ev.Row(pos)
				nrow := ev.Row(neg)
				var diff float64
				for j := 0; j < cfg.Dim; j++ {
					diff += urow[j] * (prow[j] - nrow[j])
				}
				gs := sigmoidNeg(diff)
				gu := gradU.Row(uu)
				gp := gradV.Row(pos)
				gn := gradV.Row(neg)
				for j := 0; j < cfg.Dim; j++ {
					gu[j] += gs * (prow[j] - nrow[j])
					gp[j] += gs * urow[j]
					gn[j] -= gs * urow[j]
				}
			}
			// Backprop the batch gradient through the propagation: the
			// operator is symmetric, so grad_E0 = mean over layers of the
			// same alternating propagation applied to grad_E.
			bgU, bgV := propagate(gradU, gradV)
			scale := cfg.LearnRate / float64(cfg.Batch)
			e0u.AddScaled(scale, bgU)
			e0v.AddScaled(scale, bgV)
			e0u.AddScaled(-cfg.LearnRate*cfg.Reg, e0u.Clone())
			e0v.AddScaled(-cfg.LearnRate*cfg.Reg, e0v.Clone())
		}
	}
	u, v = propagate(e0u, e0v)
	return u, v, nil
}

func sigmoidNeg(x float64) float64 {
	if x > 30 {
		return 0
	}
	if x < -30 {
		return 1
	}
	return 1 / (1 + math.Exp(x))
}
