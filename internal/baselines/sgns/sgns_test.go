package sgns

import (
	"math"
	"testing"
	"time"

	"gebe/internal/dense"
)

// cliqueCorpus builds walks where tokens {0,1,2} always co-occur and
// tokens {3,4,5} always co-occur, never across groups.
func cliqueCorpus(n int) [][]int32 {
	var walks [][]int32
	for i := 0; i < n; i++ {
		walks = append(walks, []int32{0, 1, 2, 0, 1, 2, 0, 1, 2})
		walks = append(walks, []int32{3, 4, 5, 3, 4, 5, 3, 4, 5})
	}
	return walks
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, 5, Config{Dim: 4}); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, err := Train([][]int32{{0}}, 5, Config{Dim: 0}); err == nil {
		t.Error("Dim=0 accepted")
	}
	if _, err := Train([][]int32{{7}}, 5, Config{Dim: 4}); err == nil {
		t.Error("out-of-vocabulary token accepted")
	}
	if _, err := Train([][]int32{{0}}, 0, Config{Dim: 4}); err == nil {
		t.Error("empty vocabulary accepted")
	}
}

func TestTrainSeparatesCliques(t *testing.T) {
	emb, err := Train(cliqueCorpus(150), 6, Config{Dim: 8, Window: 3, Epochs: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	within := cos(emb.Row(0), emb.Row(1))
	across := cos(emb.Row(0), emb.Row(3))
	if within <= across {
		t.Errorf("within-clique cos %.3f should exceed across-clique %.3f", within, across)
	}
	if within < 0.5 {
		t.Errorf("within-clique cos %.3f implausibly low", within)
	}
}

func TestUnseenTokensStayZero(t *testing.T) {
	emb, err := Train([][]int32{{0, 1, 0, 1}}, 4, Config{Dim: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Tokens 2 and 3 never appear; their input vectors keep random init
	// but receive no gradient — check they are tiny (init scale 1/(2·Dim)).
	for _, tok := range []int{2, 3} {
		if n := dense.Norm2(emb.Row(tok)); n > 0.5 {
			t.Errorf("unseen token %d norm %.3f", tok, n)
		}
	}
}

func TestTrainDeterministicSingleThread(t *testing.T) {
	a, err := Train(cliqueCorpus(20), 6, Config{Dim: 4, Seed: 7, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(cliqueCorpus(20), 6, Config{Dim: 4, Seed: 7, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equal(a, b, 0) {
		t.Error("single-thread SGNS not deterministic")
	}
}

func TestTrainDeadline(t *testing.T) {
	_, err := Train(cliqueCorpus(50), 6, Config{Dim: 4, Seed: 1,
		Deadline: time.Now().Add(-time.Second)})
	if err == nil {
		t.Error("expired deadline ignored")
	}
}

func cos(a, b []float64) float64 {
	na, nb := dense.Norm2(a), dense.Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return dense.Dot(a, b) / (na * nb)
}

func TestSigmoidBounds(t *testing.T) {
	if sigmoid(100) != 1 || sigmoid(-100) != 0 {
		t.Error("sigmoid clamps wrong")
	}
	if math.Abs(sigmoid(0)-0.5) > 1e-12 {
		t.Error("sigmoid(0) != 0.5")
	}
}
