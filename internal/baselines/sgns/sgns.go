// Package sgns implements skip-gram with negative sampling (Mikolov et
// al.), the training core of DeepWalk, node2vec, LINE and BiNE. Walks are
// treated as sentences; each (center, context) pair inside the window is
// trained against Negatives sampled from the unigram^{3/4} distribution.
package sgns

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gebe/internal/budget"

	"gebe/internal/dense"
	"gebe/internal/sampling"
)

// Config controls SGNS training; zero values select the usual defaults.
type Config struct {
	// Dim is the embedding dimensionality (required).
	Dim int
	// Window is the skip-gram context radius (default 5).
	Window int
	// Negatives per positive pair (default 5).
	Negatives int
	// Epochs over the walk corpus (default 2).
	Epochs int
	// LearnRate is the initial SGD step, linearly decayed (default 0.025).
	LearnRate float64
	// Threads shards walks across goroutines Hogwild-style (default 1;
	// >1 trades bitwise determinism for speed, as word2vec does).
	Threads int
	Seed    uint64
	// Deadline optionally bounds training (cooperative; zero = none).
	Deadline time.Time
}

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = 5
	}
	if c.Negatives == 0 {
		c.Negatives = 5
	}
	if c.Epochs == 0 {
		c.Epochs = 2
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.025
	}
	if c.Threads == 0 {
		c.Threads = 1
	}
	if c.Threads > runtime.GOMAXPROCS(0) {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	return c
}

// Train runs SGNS over the walk corpus and returns the input ("center")
// embedding matrix, vocabSize×Dim. Nodes that never appear keep zero
// vectors.
func Train(walks [][]int32, vocabSize int, cfg Config) (*dense.Matrix, error) {
	cfg = cfg.withDefaults()
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("sgns: Dim must be positive")
	}
	if vocabSize <= 0 {
		return nil, fmt.Errorf("sgns: empty vocabulary")
	}
	counts := make([]float64, vocabSize)
	total := 0
	for _, w := range walks {
		for _, x := range w {
			if int(x) >= vocabSize || x < 0 {
				return nil, fmt.Errorf("sgns: token %d outside vocabulary %d", x, vocabSize)
			}
			counts[x]++
			total++
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("sgns: empty corpus")
	}
	for i := range counts {
		counts[i] = math.Pow(counts[i], 0.75)
	}
	negTable := sampling.MustAlias(counts)

	in := dense.New(vocabSize, cfg.Dim)
	out := dense.New(vocabSize, cfg.Dim)
	initRng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xbe5466cf34e90c6c))
	for i := range in.Data {
		in.Data[i] = (initRng.Float64() - 0.5) / float64(cfg.Dim)
	}

	steps := cfg.Epochs * len(walks)
	var done int64
	var hitDeadline atomic.Bool
	var mu sync.Mutex
	var wg sync.WaitGroup
	chunk := (len(walks) + cfg.Threads - 1) / cfg.Threads
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for lo := 0; lo < len(walks); lo += chunk {
			hi := lo + chunk
			if hi > len(walks) {
				hi = len(walks)
			}
			wg.Add(1)
			go func(walks [][]int32, seed uint64) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(seed, seed^0xc0ac29b7c97c50dd))
				grad := make([]float64, cfg.Dim)
				for wi, w := range walks {
					if wi%256 == 0 && budget.Exceeded(cfg.Deadline) {
						hitDeadline.Store(true)
						return
					}
					mu.Lock()
					progress := float64(done) / float64(steps)
					done++
					mu.Unlock()
					lr := cfg.LearnRate * (1 - progress)
					if lr < cfg.LearnRate*1e-4 {
						lr = cfg.LearnRate * 1e-4
					}
					trainWalk(w, in, out, negTable, cfg, lr, rng, grad)
				}
			}(walks[lo:hi], cfg.Seed+uint64(epoch)*1000003+uint64(lo))
		}
		wg.Wait()
		if hitDeadline.Load() {
			return nil, fmt.Errorf("sgns: %w", budget.ErrExceeded)
		}
	}
	return in, nil
}

func trainWalk(w []int32, in, out *dense.Matrix, negTable *sampling.Alias, cfg Config, lr float64, rng *rand.Rand, grad []float64) {
	dim := cfg.Dim
	for ci, center := range w {
		// Dynamic window, as in word2vec.
		win := 1 + rng.IntN(cfg.Window)
		lo := ci - win
		if lo < 0 {
			lo = 0
		}
		hi := ci + win
		if hi >= len(w) {
			hi = len(w) - 1
		}
		cvec := in.Row(int(center))
		for pos := lo; pos <= hi; pos++ {
			if pos == ci {
				continue
			}
			context := int(w[pos])
			for j := range grad {
				grad[j] = 0
			}
			// Positive pair + negatives.
			for s := 0; s <= cfg.Negatives; s++ {
				var target int
				var label float64
				if s == 0 {
					target = context
					label = 1
				} else {
					target = negTable.Sample(rng)
					if target == context {
						continue
					}
					label = 0
				}
				tvec := out.Row(target)
				f := sigmoid(dense.Dot(cvec, tvec))
				g := (label - f) * lr
				for j := 0; j < dim; j++ {
					grad[j] += g * tvec[j]
					tvec[j] += g * cvec[j]
				}
			}
			for j := 0; j < dim; j++ {
				cvec[j] += grad[j]
			}
		}
	}
}

func sigmoid(z float64) float64 {
	if z > 8 {
		return 1
	}
	if z < -8 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}
