// Package bigi re-implements BiGI (Cao et al., WSDM 2021) in a reduced
// form: bipartite graph infomax. Node representations come from a
// one-layer normalized propagation of trainable base embeddings through
// a learned linear encoder; training maximizes mutual information
// between local (edge) representations and a global graph summary via a
// bilinear discriminator, against corrupted (shuffled) negatives — the
// local-global infomax objective of the original, with its multi-layer
// perceptron stack reduced to the single layer that carries the signal.
package bigi

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"gebe/internal/budget"

	"gebe/internal/bigraph"
	"gebe/internal/dense"
	"gebe/internal/sparse"
)

// Config holds BiGI hyperparameters.
type Config struct {
	Dim int
	// Epochs of full-graph training (default 60).
	Epochs    int
	LearnRate float64
	Seed      uint64
	Threads   int
	// Deadline optionally bounds training (cooperative; zero = none).
	Deadline time.Time
}

func (c Config) withDefaults() Config {
	if c.Epochs == 0 {
		c.Epochs = 60
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.02
	}
	if c.Threads == 0 {
		c.Threads = 1
	}
	return c
}

// Train fits BiGI-lite and returns the encoded user/item embeddings.
func Train(g *bigraph.Graph, cfg Config) (u, v *dense.Matrix, err error) {
	cfg = cfg.withDefaults()
	if cfg.Dim <= 0 {
		return nil, nil, fmt.Errorf("bigi: Dim must be positive")
	}
	if g.NumEdges() == 0 {
		return nil, nil, fmt.Errorf("bigi: empty graph")
	}
	// Normalized adjacency for propagation.
	du := make([]float64, g.NU)
	dv := make([]float64, g.NV)
	for _, e := range g.Edges {
		du[e.U] += e.W
		dv[e.V] += e.W
	}
	entries := make([]sparse.Entry, len(g.Edges))
	for i, e := range g.Edges {
		entries[i] = sparse.Entry{Row: e.U, Col: e.V, Val: e.W / math.Sqrt(du[e.U]*dv[e.V])}
	}
	a, err := sparse.New(g.NU, g.NV, entries)
	if err != nil {
		return nil, nil, fmt.Errorf("bigi: %w", err)
	}

	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xc97c50dd3f84d5b5))
	d := cfg.Dim
	baseU := dense.New(g.NU, d)
	baseV := dense.New(g.NV, d)
	for i := range baseU.Data {
		baseU.Data[i] = rng.NormFloat64() * 0.1
	}
	for i := range baseV.Data {
		baseV.Data[i] = rng.NormFloat64() * 0.1
	}
	// Bilinear discriminator weights (diagonal, as in efficient DGI
	// variants) between local edge representation and global summary.
	disc := make([]float64, d)
	for i := range disc {
		disc[i] = 1
	}

	encode := func() (*dense.Matrix, *dense.Matrix) {
		eu := a.MulDense(baseV, cfg.Threads)
		ev := a.TMulDense(baseU, cfg.Threads)
		eu.AddScaled(1, baseU)
		ev.AddScaled(1, baseV)
		return eu, ev
	}

	batch := len(g.Edges)
	if batch > 4096 {
		batch = 4096
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if err := budget.Check(cfg.Deadline); err != nil {
			return nil, nil, fmt.Errorf("bigi: %w", err)
		}
		eu, ev := encode()
		// Global summary: mean of all encoded nodes, squashed.
		summary := make([]float64, d)
		for i := 0; i < g.NU; i++ {
			addInto(summary, eu.Row(i))
		}
		for i := 0; i < g.NV; i++ {
			addInto(summary, ev.Row(i))
		}
		for j := range summary {
			summary[j] = tanh(summary[j] / float64(g.NU+g.NV))
		}
		gradU := dense.New(g.NU, d)
		gradV := dense.New(g.NV, d)
		lr := cfg.LearnRate
		for s := 0; s < batch; s++ {
			// Positive: a real edge's local representation u⊙v.
			e := g.Edges[rng.IntN(len(g.Edges))]
			applyInfomax(eu.Row(e.U), ev.Row(e.V), summary, disc, 1,
				gradU.Row(e.U), gradV.Row(e.V))
			// Negative: a corrupted pair.
			cu := rng.IntN(g.NU)
			cv := rng.IntN(g.NV)
			applyInfomax(eu.Row(cu), ev.Row(cv), summary, disc, 0,
				gradU.Row(cu), gradV.Row(cv))
		}
		// Backprop through the (linear) encoder: base gets the encoded
		// gradient plus its propagated image.
		bgU := a.MulDense(gradV, cfg.Threads)
		bgV := a.TMulDense(gradU, cfg.Threads)
		bgU.AddScaled(1, gradU)
		bgV.AddScaled(1, gradV)
		scale := lr / float64(batch)
		baseU.AddScaled(scale, bgU)
		baseV.AddScaled(scale, bgV)
	}
	u, v = encode()
	return u, v, nil
}

// applyInfomax accumulates the gradient of log σ(±D(u⊙v, s)) for one
// local-global pair into gu/gv and returns nothing; disc is updated in
// place (its learning rate is folded into the caller's scale by keeping
// updates small).
func applyInfomax(urow, vrow, summary, disc []float64, label float64, gu, gv []float64) {
	var score float64
	for j := range urow {
		score += disc[j] * urow[j] * vrow[j] * summary[j]
	}
	g := label - sigmoid(score)
	for j := range urow {
		common := g * disc[j] * summary[j]
		gu[j] += common * vrow[j]
		gv[j] += common * urow[j]
		disc[j] += 1e-4 * g * urow[j] * vrow[j] * summary[j]
	}
}

func addInto(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}

func tanh(x float64) float64 { return math.Tanh(x) }

func sigmoid(z float64) float64 {
	if z > 12 {
		return 1
	}
	if z < -12 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}
