package bigi

import (
	"math"
	"testing"
	"time"

	"gebe/internal/bigraph"
)

func smallGraph(t testing.TB) *bigraph.Graph {
	var edges []bigraph.Edge
	for u := 0; u < 12; u++ {
		for d := 0; d < 3; d++ {
			edges = append(edges, bigraph.Edge{U: u, V: (u*2 + d) % 7, W: 1})
		}
	}
	g, err := bigraph.New(12, 7, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTrainShapesFinite(t *testing.T) {
	g := smallGraph(t)
	u, v, err := Train(g, Config{Dim: 6, Epochs: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if u.Rows != 12 || v.Rows != 7 || u.Cols != 6 {
		t.Fatalf("shapes %dx%d %dx%d", u.Rows, u.Cols, v.Rows, v.Cols)
	}
	for _, x := range append(append([]float64{}, u.Data...), v.Data...) {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatal("non-finite entry")
		}
	}
}

func TestValidationAndDeadline(t *testing.T) {
	g := smallGraph(t)
	if _, _, err := Train(g, Config{Dim: 0}); err == nil {
		t.Error("Dim=0 accepted")
	}
	empty, _ := bigraph.New(2, 2, nil)
	if _, _, err := Train(empty, Config{Dim: 2}); err == nil {
		t.Error("empty graph accepted")
	}
	if _, _, err := Train(g, Config{Dim: 4, Deadline: time.Now().Add(-time.Second)}); err == nil {
		t.Error("expired deadline ignored")
	}
}

func TestEncoderUsesPropagation(t *testing.T) {
	// Two users with identical neighborhoods get near-identical encodings
	// at epoch 0 scale (the encoder is propagation + base).
	var edges []bigraph.Edge
	for _, u := range []int{0, 1} {
		for v := 0; v < 3; v++ {
			edges = append(edges, bigraph.Edge{U: u, V: v, W: 1})
		}
	}
	edges = append(edges, bigraph.Edge{U: 2, V: 3, W: 1})
	g, err := bigraph.New(3, 4, edges)
	if err != nil {
		t.Fatal(err)
	}
	u, _, err := Train(g, Config{Dim: 6, Epochs: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Twins share the propagated component; their distance should be far
	// smaller than to the unrelated user.
	dTwin := rowDist(u.Row(0), u.Row(1))
	dOther := rowDist(u.Row(0), u.Row(2))
	if dTwin >= dOther {
		t.Errorf("twin distance %.3f >= unrelated distance %.3f", dTwin, dOther)
	}
}

func rowDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
