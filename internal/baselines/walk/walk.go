// Package walk provides the random-walk engine shared by the
// walk-sampling baselines (DeepWalk, node2vec, BiNE, CSE). Bipartite
// graphs are walked as homogeneous graphs over |U|+|V| nodes — exactly
// how the paper applies homogeneous embedding methods to BNE — with
// node ids 0..|U|-1 for U and |U|..|U|+|V|-1 for V.
package walk

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"gebe/internal/budget"

	"gebe/internal/bigraph"
	"gebe/internal/sampling"
)

// Graph is the homogeneous walk view of a bipartite graph.
type Graph struct {
	// N is the total node count |U|+|V|; NU the size of the U side.
	N, NU int
	// Nbrs[x] lists x's neighbors in ascending order; W the weights.
	Nbrs [][]int32
	W    [][]float64
	// alias[x] samples a neighbor index of x proportionally to weight.
	alias []*sampling.Alias
}

// NewGraph builds the homogeneous view of g.
func NewGraph(g *bigraph.Graph) *Graph {
	n := g.NU + g.NV
	w := &Graph{N: n, NU: g.NU, Nbrs: make([][]int32, n), W: make([][]float64, n)}
	for _, e := range g.Edges {
		u := int32(e.U)
		v := int32(g.NU + e.V)
		w.Nbrs[u] = append(w.Nbrs[u], v)
		w.W[u] = append(w.W[u], e.W)
		w.Nbrs[v] = append(w.Nbrs[v], u)
		w.W[v] = append(w.W[v], e.W)
	}
	for x := 0; x < n; x++ {
		sortNbrs(w.Nbrs[x], w.W[x])
		if len(w.Nbrs[x]) > 0 {
			w.alias = append(w.alias, sampling.MustAlias(w.W[x]))
		} else {
			w.alias = append(w.alias, nil)
		}
	}
	return w
}

func sortNbrs(nbrs []int32, weights []float64) {
	idx := make([]int, len(nbrs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return nbrs[idx[a]] < nbrs[idx[b]] })
	n2 := make([]int32, len(nbrs))
	w2 := make([]float64, len(weights))
	for i, p := range idx {
		n2[i] = nbrs[p]
		w2[i] = weights[p]
	}
	copy(nbrs, n2)
	copy(weights, w2)
}

// HasEdge reports whether y is a neighbor of x (binary search).
func (g *Graph) HasEdge(x, y int32) bool {
	nbrs := g.Nbrs[x]
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= y })
	return i < len(nbrs) && nbrs[i] == y
}

// Step samples a weighted uniform next hop from x (-1 for isolated x).
func (g *Graph) Step(x int32, rng *rand.Rand) int32 {
	return g.step(x, rng)
}

// step samples a weighted uniform next hop from x (-1 for isolated x).
func (g *Graph) step(x int32, rng *rand.Rand) int32 {
	a := g.alias[x]
	if a == nil {
		return -1
	}
	return g.Nbrs[x][a.Sample(rng)]
}

// Config controls walk generation.
type Config struct {
	// WalksPerNode and WalkLength follow the DeepWalk conventions
	// (defaults 10 and 40).
	WalksPerNode, WalkLength int
	// P and Q are node2vec's return and in-out parameters; both 1 gives
	// uniform (DeepWalk) walks.
	P, Q float64
	// Seed drives all walk randomness.
	Seed uint64
	// Deadline optionally bounds generation (cooperative; zero = none).
	Deadline time.Time
}

func (c Config) withDefaults() Config {
	if c.WalksPerNode == 0 {
		c.WalksPerNode = 10
	}
	if c.WalkLength == 0 {
		c.WalkLength = 40
	}
	if c.P == 0 {
		c.P = 1
	}
	if c.Q == 0 {
		c.Q = 1
	}
	return c
}

// Generate produces WalksPerNode truncated random walks from every
// non-isolated node. P=Q=1 walks are first-order; otherwise node2vec's
// second-order bias is applied by rejection sampling (KnightKing-style),
// which avoids the per-edge alias tables whose memory blows up on graphs
// with hubs.
func Generate(g *Graph, cfg Config) ([][]int32, error) {
	cfg = cfg.withDefaults()
	if cfg.P <= 0 || cfg.Q <= 0 {
		return nil, fmt.Errorf("walk: P and Q must be positive, got %g, %g", cfg.P, cfg.Q)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x452821e638d01377))
	uniform := cfg.P == 1 && cfg.Q == 1
	// Upper envelope for rejection sampling.
	maxBias := max3(1/cfg.P, 1, 1/cfg.Q)
	walks := make([][]int32, 0, g.N*cfg.WalksPerNode)
	order := rng.Perm(g.N)
	for w := 0; w < cfg.WalksPerNode; w++ {
		if err := budget.Check(cfg.Deadline); err != nil {
			return nil, fmt.Errorf("walk: %w", err)
		}
		for i, s := range order {
			if i%1024 == 0 {
				if err := budget.Check(cfg.Deadline); err != nil {
					return nil, fmt.Errorf("walk: %w", err)
				}
			}
			start := int32(s)
			if g.alias[start] == nil {
				continue
			}
			walk := make([]int32, 1, cfg.WalkLength)
			walk[0] = start
			for len(walk) < cfg.WalkLength {
				cur := walk[len(walk)-1]
				var next int32
				if uniform || len(walk) == 1 {
					next = g.step(cur, rng)
				} else {
					prev := walk[len(walk)-2]
					next = g.biasedStep(prev, cur, cfg, maxBias, rng)
				}
				if next < 0 {
					break
				}
				walk = append(walk, next)
			}
			walks = append(walks, walk)
		}
	}
	return walks, nil
}

// biasedStep performs one node2vec transition from cur (having arrived
// from prev) by rejection sampling against the weighted first-order
// proposal.
func (g *Graph) biasedStep(prev, cur int32, cfg Config, maxBias float64, rng *rand.Rand) int32 {
	for tries := 0; tries < 100; tries++ {
		cand := g.step(cur, rng)
		if cand < 0 {
			return -1
		}
		var bias float64
		switch {
		case cand == prev:
			bias = 1 / cfg.P
		case g.HasEdge(prev, cand):
			bias = 1
		default:
			bias = 1 / cfg.Q
		}
		if rng.Float64()*maxBias <= bias {
			return cand
		}
	}
	// Pathological acceptance rate; fall back to the unbiased step so the
	// walk still terminates.
	return g.step(cur, rng)
}

func max3(a, b, c float64) float64 {
	m := a
	if b > m {
		m = b
	}
	if c > m {
		m = c
	}
	return m
}
