package walk

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"gebe/internal/bigraph"
)

func pathGraph(t testing.TB) *bigraph.Graph {
	// u0-v0, u1-v0, u1-v1, u2-v1: a path in the homogeneous view.
	g, err := bigraph.New(3, 2, []bigraph.Edge{
		{U: 0, V: 0, W: 1}, {U: 1, V: 0, W: 1}, {U: 1, V: 1, W: 1}, {U: 2, V: 1, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGraphAdjacency(t *testing.T) {
	g := pathGraph(t)
	wg := NewGraph(g)
	if wg.N != 5 || wg.NU != 3 {
		t.Fatalf("N=%d NU=%d", wg.N, wg.NU)
	}
	// u1 (id 1) connects to v0 (id 3) and v1 (id 4).
	if len(wg.Nbrs[1]) != 2 || wg.Nbrs[1][0] != 3 || wg.Nbrs[1][1] != 4 {
		t.Errorf("Nbrs[1]=%v", wg.Nbrs[1])
	}
	if !wg.HasEdge(1, 3) || wg.HasEdge(0, 4) || !wg.HasEdge(4, 2) {
		t.Error("HasEdge wrong")
	}
}

func TestStepStaysOnNeighbors(t *testing.T) {
	g := pathGraph(t)
	wg := NewGraph(g)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 200; i++ {
		next := wg.Step(1, rng)
		if next != 3 && next != 4 {
			t.Fatalf("Step(1) went to %d", next)
		}
	}
}

func TestStepIsolatedNode(t *testing.T) {
	g, err := bigraph.New(2, 1, []bigraph.Edge{{U: 0, V: 0, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	wg := NewGraph(g)
	rng := rand.New(rand.NewPCG(3, 4))
	if wg.Step(1, rng) != -1 {
		t.Error("isolated node should return -1")
	}
}

// TestWalksAlternateSides: on a bipartite graph every walk must
// alternate between U ids (< NU) and V ids (>= NU).
func TestWalksAlternateSides(t *testing.T) {
	g := pathGraph(t)
	wg := NewGraph(g)
	for _, cfg := range []Config{
		{WalksPerNode: 3, WalkLength: 15, Seed: 5},
		{WalksPerNode: 3, WalkLength: 15, P: 4, Q: 0.5, Seed: 5},
	} {
		walks, err := Generate(wg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(walks) == 0 {
			t.Fatal("no walks generated")
		}
		for _, w := range walks {
			for i := 1; i < len(w); i++ {
				aU := int(w[i-1]) < wg.NU
				bU := int(w[i]) < wg.NU
				if aU == bU {
					t.Fatalf("walk %v does not alternate at %d", w, i)
				}
				if !wg.HasEdge(w[i-1], w[i]) {
					t.Fatalf("walk %v uses a non-edge at %d", w, i)
				}
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	g := pathGraph(t)
	wg := NewGraph(g)
	if _, err := Generate(wg, Config{P: -1, Q: 1}); err == nil {
		t.Error("negative P accepted")
	}
}

func TestGenerateDeadline(t *testing.T) {
	g := pathGraph(t)
	wg := NewGraph(g)
	_, err := Generate(wg, Config{Deadline: time.Now().Add(-time.Second)})
	if err == nil {
		t.Error("expired deadline ignored")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := pathGraph(t)
	wg := NewGraph(g)
	a, _ := Generate(wg, Config{WalksPerNode: 2, WalkLength: 10, Seed: 9})
	b, _ := Generate(wg, Config{WalksPerNode: 2, WalkLength: 10, Seed: 9})
	if len(a) != len(b) {
		t.Fatal("walk counts differ")
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("walk %d lengths differ", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("walks differ for equal seeds")
			}
		}
	}
}

// Property: node2vec with P=Q=1 visits the same node set reachable by
// uniform walks — every visited node is a valid id.
func TestPropertyWalksInRange(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		nu := 2 + int(seed%8)
		nv := 2 + int((seed/3)%8)
		var edges []bigraph.Edge
		for u := 0; u < nu; u++ {
			edges = append(edges, bigraph.Edge{U: u, V: rng.IntN(nv), W: 1})
		}
		g, err := bigraph.New(nu, nv, edges)
		if err != nil {
			return false
		}
		wg := NewGraph(g)
		walks, err := Generate(wg, Config{WalksPerNode: 1, WalkLength: 8, P: 2, Q: 0.5, Seed: seed})
		if err != nil {
			return false
		}
		for _, w := range walks {
			for _, x := range w {
				if x < 0 || int(x) >= wg.N {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
