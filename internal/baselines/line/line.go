// Package line re-implements LINE (Tang et al., WWW 2015) with first- and
// second-order proximity, trained by weighted edge sampling with negative
// sampling on the homogeneous view of the bipartite graph. The final
// embedding concatenates the two halves (dim/2 each), the configuration
// the original paper recommends.
package line

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"gebe/internal/budget"

	"gebe/internal/baselines/deepwalk"
	"gebe/internal/bigraph"
	"gebe/internal/dense"
	"gebe/internal/sampling"
)

// Config holds LINE hyperparameters.
type Config struct {
	Dim int
	// SamplesPerEdge controls total SGD steps: |E|·SamplesPerEdge per
	// order (default 50).
	SamplesPerEdge int
	Negatives      int
	LearnRate      float64
	Seed           uint64
	Threads        int // accepted for interface symmetry; LINE trains single-threaded here
	// Deadline optionally bounds training (cooperative; zero = none).
	Deadline time.Time
}

func (c Config) withDefaults() Config {
	if c.SamplesPerEdge == 0 {
		c.SamplesPerEdge = 50
	}
	if c.Negatives == 0 {
		c.Negatives = 5
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.025
	}
	return c
}

// Train embeds g with LINE(1st)+LINE(2nd).
func Train(g *bigraph.Graph, cfg Config) (u, v *dense.Matrix, err error) {
	cfg = cfg.withDefaults()
	if cfg.Dim < 2 {
		return nil, nil, fmt.Errorf("line: Dim must be >= 2, got %d", cfg.Dim)
	}
	if g.NumEdges() == 0 {
		return nil, nil, fmt.Errorf("line: empty graph")
	}
	half := cfg.Dim / 2
	rest := cfg.Dim - half
	first, err := trainOrder(g, rest, cfg, 1)
	if err != nil {
		return nil, nil, err
	}
	second, err := trainOrder(g, half, cfg, 2)
	if err != nil {
		return nil, nil, err
	}
	n := g.NU + g.NV
	emb := dense.New(n, cfg.Dim)
	for i := 0; i < n; i++ {
		copy(emb.Row(i)[:rest], first.Row(i))
		copy(emb.Row(i)[rest:], second.Row(i))
	}
	return deepwalk.SplitEmbedding(emb, g.NU)
}

// trainOrder runs one LINE order. Order 1 ties the two endpoint vectors
// directly; order 2 uses separate context vectors.
func trainOrder(g *bigraph.Graph, dim int, cfg Config, order int) (*dense.Matrix, error) {
	n := g.NU + g.NV
	// Edge alias by weight; node alias for negatives by degree^{3/4}.
	ew := make([]float64, len(g.Edges))
	degW := make([]float64, n)
	for i, e := range g.Edges {
		ew[i] = e.W
		degW[e.U] += e.W
		degW[g.NU+e.V] += e.W
	}
	for i := range degW {
		degW[i] = math.Pow(degW[i], 0.75)
	}
	edgeAlias := sampling.MustAlias(ew)
	negAlias := sampling.MustAlias(degW)

	rng := rand.New(rand.NewPCG(cfg.Seed+uint64(order), cfg.Seed^0x9216d5d98979fb1b))
	emb := dense.New(n, dim)
	for i := range emb.Data {
		emb.Data[i] = (rng.Float64() - 0.5) / float64(dim)
	}
	ctx := emb
	if order == 2 {
		ctx = dense.New(n, dim)
	}
	steps := cfg.SamplesPerEdge * len(g.Edges)
	grad := make([]float64, dim)
	for s := 0; s < steps; s++ {
		if s%8192 == 0 {
			if err := budget.Check(cfg.Deadline); err != nil {
				return nil, fmt.Errorf("line: %w", err)
			}
		}
		lr := cfg.LearnRate * (1 - float64(s)/float64(steps))
		if lr < cfg.LearnRate*1e-4 {
			lr = cfg.LearnRate * 1e-4
		}
		ei := edgeAlias.Sample(rng)
		src := g.Edges[ei].U
		dst := g.NU + g.Edges[ei].V
		// Undirected: flip direction half the time.
		if rng.IntN(2) == 0 {
			src, dst = dst, src
		}
		svec := emb.Row(src)
		for j := range grad {
			grad[j] = 0
		}
		for neg := 0; neg <= cfg.Negatives; neg++ {
			var target int
			var label float64
			if neg == 0 {
				target = dst
				label = 1
			} else {
				target = negAlias.Sample(rng)
				if target == dst {
					continue
				}
				label = 0
			}
			tvec := ctx.Row(target)
			f := sigmoid(dense.Dot(svec, tvec))
			gstep := (label - f) * lr
			for j := 0; j < dim; j++ {
				grad[j] += gstep * tvec[j]
				tvec[j] += gstep * svec[j]
			}
		}
		for j := 0; j < dim; j++ {
			svec[j] += grad[j]
		}
	}
	return emb, nil
}

func sigmoid(z float64) float64 {
	if z > 8 {
		return 1
	}
	if z < -8 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}
