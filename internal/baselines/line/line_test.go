package line

import (
	"testing"
	"time"

	"gebe/internal/bigraph"
)

func lineGraph(t testing.TB) *bigraph.Graph {
	var edges []bigraph.Edge
	for u := 0; u < 10; u++ {
		edges = append(edges, bigraph.Edge{U: u, V: u % 6, W: 1})
		edges = append(edges, bigraph.Edge{U: u, V: (u + 1) % 6, W: 2})
	}
	g, err := bigraph.New(10, 6, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTrainDimSplit(t *testing.T) {
	g := lineGraph(t)
	// Odd dimensionality: the two orders split as floor/ceil.
	u, v, err := Train(g, Config{Dim: 7, SamplesPerEdge: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if u.Cols != 7 || v.Cols != 7 || u.Rows != 10 || v.Rows != 6 {
		t.Fatalf("shapes %dx%d %dx%d", u.Rows, u.Cols, v.Rows, v.Cols)
	}
}

func TestTrainValidation(t *testing.T) {
	g := lineGraph(t)
	if _, _, err := Train(g, Config{Dim: 1}); err == nil {
		t.Error("Dim=1 accepted (needs >= 2 for the two orders)")
	}
	empty, _ := bigraph.New(2, 2, nil)
	if _, _, err := Train(empty, Config{Dim: 4}); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestTrainDeadline(t *testing.T) {
	g := lineGraph(t)
	if _, _, err := Train(g, Config{Dim: 4, Deadline: time.Now().Add(-time.Second)}); err == nil {
		t.Error("expired deadline ignored")
	}
}

func TestTrainDeterministic(t *testing.T) {
	g := lineGraph(t)
	u1, v1, err := Train(g, Config{Dim: 4, SamplesPerEdge: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	u2, v2, err := Train(g, Config{Dim: 4, SamplesPerEdge: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range u1.Data {
		if u1.Data[i] != u2.Data[i] {
			t.Fatal("U differs for equal seeds")
		}
	}
	for i := range v1.Data {
		if v1.Data[i] != v2.Data[i] {
			t.Fatal("V differs for equal seeds")
		}
	}
}
