package linalg

import (
	"time"

	"gebe/internal/dense"
)

// InPlaceOperator is an Operator that can write its product into a
// caller-owned block. KSI applies the operator once per sweep to a block
// of fixed shape, so an operator that implements this lets the
// steady-state sweep loop run without allocating (see ksiSweep).
type InPlaceOperator interface {
	Operator
	// ApplyInto writes the operator applied to x into dst (Dim()×x.Cols,
	// must not alias x) and returns dst.
	ApplyInto(dst, x *dense.Matrix) *dense.Matrix
}

// ksiSweep is KSIRun's per-run workspace: every buffer the steady-state
// sweep loop touches, allocated once up front. After the first sweep a
// sweep allocates nothing when the operator supports ApplyInto and the
// flop gate keeps the dense products sequential (pinned by
// TestKSISweepSteadyStateAllocs).
type ksiSweep struct {
	op   Operator
	into InPlaceOperator // non-nil when op supports ApplyInto
	dn   dense.Tuning
	z    *dense.Matrix // current orthonormal basis (owned)
	hz   *dense.Matrix // ApplyInto destination (nil when into == nil)
	qrws dense.QRWork
	p    *dense.Matrix // k×k   zᵀ·zNew
	proj *dense.Matrix // n×k   z·p
	diff *dense.Matrix // n×k   zNew − proj
}

// newKSISweep takes ownership of the starting basis z.
func newKSISweep(op Operator, z *dense.Matrix, dn dense.Tuning) *ksiSweep {
	n, k := z.Rows, z.Cols
	s := &ksiSweep{op: op, dn: dn, z: z,
		p: dense.New(k, k), proj: dense.New(n, k), diff: dense.New(n, k)}
	if ip, ok := op.(InPlaceOperator); ok {
		s.into = ip
		s.hz = dense.New(n, k)
	}
	return s
}

// apply returns op·z, reusing the hz buffer when the operator allows it.
// The result is only valid until the next apply call.
func (s *ksiSweep) apply() *dense.Matrix {
	if s.into != nil {
		return s.into.ApplyInto(s.hz, s.z)
	}
	return s.op.Apply(s.z)
}

// finish completes one KSI sweep from the operator product hz (as
// returned by apply): Z ← orth(hz), leaving the new basis in s.z. It
// returns the raw Frobenius norm of the part of the new basis outside
// the old span, and the QR wall time. Split from apply so KSIRun can
// read Ritz values off the pre-sweep basis in between.
func (s *ksiSweep) finish(hz *dense.Matrix) (frob float64, qrDur time.Duration) {
	qrStart := time.Now()
	zNew := s.qrws.Orthonormalize(hz, s.dn)
	qrDur = time.Since(qrStart)
	// Subspace change: the part of the new basis outside span(z).
	dense.TMulInto(s.p, s.z, zNew, s.dn)  // k×k
	dense.MulInto(s.proj, s.z, s.p, s.dn) // n×k
	dense.SubInto(s.diff, zNew, s.proj)   // residual outside the old span
	frob = s.diff.FrobeniusNorm()
	copy(s.z.Data, zNew.Data)
	return frob, qrDur
}
