package linalg

import (
	"math/rand/v2"

	"gebe/internal/dense"
	"gebe/internal/obs"
	"gebe/internal/sparse"
)

// Warm starts. Both iterative solvers accept a previously converged
// basis as the starting block: block Krylov subspace iteration seeds its
// orthonormal block from a prior eigenbasis (KSIConfig.InitQ), and the
// randomized SVD seeds its first Krylov block from prior singular-vector
// estimates (SVDConfig.InitU/InitV). When the operator changed only a
// little — edges arrived on an otherwise-stable bipartite graph — the
// warm basis already lies within a small principal angle of the new
// invariant subspace, so the adaptive stopping controller (PR 2) exits
// after a handful of sweeps instead of re-burning the whole budget. The
// saving is reported, not asserted: KSIResult.SweepsSaved counts the
// unused budget and a "warm_start" span lands in the run trace.
//
// Dimension changes are tolerated by construction: a warm basis from a
// smaller graph (fewer rows) or a narrower solve (fewer columns) is
// copied into the overlap, new columns are filled with fresh Gaussian
// directions, and rows for newly arrived vertices start at zero — one
// sweep of the operator populates them. The assembled block is
// orthonormalized before use, so any scaling on the warm input (for
// example U = Z·√Λ instead of Z itself) is irrelevant.

// warmStartBlock assembles an n×k starting block from a prior basis:
// the overlap of init is copied, columns beyond init.Cols get fresh
// Gaussian entries, and rows beyond init.Rows stay zero in the carried
// columns. Returns the block plus the copied extent for telemetry.
func warmStartBlock(init *dense.Matrix, n, k int, rng *rand.Rand) (b *dense.Matrix, rows, cols int) {
	b = dense.New(n, k)
	rows = min(init.Rows, n)
	cols = min(init.Cols, k)
	for i := 0; i < rows; i++ {
		copy(b.Row(i)[:cols], init.Row(i)[:cols])
	}
	// Fresh random directions for the widened part of the solve. The QR
	// below orthogonalizes them against the carried columns, so they
	// explore only what the warm basis does not already span.
	for i := 0; i < n; i++ {
		row := b.Row(i)
		for j := cols; j < k; j++ {
			row[j] = rng.NormFloat64()
		}
	}
	return b, rows, cols
}

// ksiStartBlock returns the orthonormal starting basis for one KSI run:
// a warm block from cfg.InitQ when set (with a "warm_start" span
// recording the carried extent), a Gaussian block otherwise.
func ksiStartBlock(cfg KSIConfig, n, k int, rng *rand.Rand, run *obs.Run) *dense.Matrix {
	if cfg.InitQ == nil {
		return dense.OrthonormalizeOpts(dense.Random(n, k, rng), cfg.Dense)
	}
	sp := run.Span("warm_start")
	b, rows, cols := warmStartBlock(cfg.InitQ, n, k, rng)
	z := dense.OrthonormalizeOpts(b, cfg.Dense)
	sp.Set("init_rows", cfg.InitQ.Rows).Set("init_cols", cfg.InitQ.Cols).
		Set("carried_rows", rows).Set("carried_cols", cols)
	sp.End()
	run.Logger().Debug("ksi: warm start", "init_rows", cfg.InitQ.Rows,
		"init_cols", cfg.InitQ.Cols, "carried_rows", rows, "carried_cols", cols)
	return z
}

// rsvdSeedBlock builds the raw Rows×b seed block for one randomized SVD
// run (the caller orthonormalizes it). Cold runs use W·G for a Gaussian
// test matrix G, warm runs assemble [InitU | W·InitV | W·G]: carried left
// vectors land directly, carried right vectors are mapped through W
// (W·v ≈ σ·u), and any remaining columns come from fresh random probes so
// spectrum that entered with the new edges is still discoverable.
func rsvdSeedBlock(w *sparse.CSR, cfg SVDConfig, b int, rng *rand.Rand, tn sparse.Tuning, run *obs.Run) *dense.Matrix {
	if cfg.InitU == nil && cfg.InitV == nil {
		return w.MulDenseOpts(dense.Random(w.Cols, b, rng), tn)
	}
	sp := run.Span("warm_start")
	y := dense.New(w.Rows, b)
	used := 0
	if cfg.InitU != nil {
		rows := min(cfg.InitU.Rows, w.Rows)
		cols := min(cfg.InitU.Cols, b)
		for i := 0; i < rows; i++ {
			copy(y.Row(i)[:cols], cfg.InitU.Row(i)[:cols])
		}
		used = cols
	}
	if used < b && cfg.InitV != nil {
		cols := min(cfg.InitV.Cols, b-used)
		rows := min(cfg.InitV.Rows, w.Cols)
		g := dense.New(w.Cols, cols)
		for i := 0; i < rows; i++ {
			copy(g.Row(i), cfg.InitV.Row(i)[:cols])
		}
		wv := w.MulDenseOpts(g, tn)
		for i := 0; i < w.Rows; i++ {
			copy(y.Row(i)[used:used+cols], wv.Row(i))
		}
		used += cols
	}
	if used < b {
		wg := w.MulDenseOpts(dense.Random(w.Cols, b-used, rng), tn)
		for i := 0; i < w.Rows; i++ {
			copy(y.Row(i)[used:], wg.Row(i))
		}
	}
	sp.Set("warm_cols", used).Set("block_cols", b)
	sp.End()
	run.Logger().Debug("rsvd: warm start", "warm_cols", used, "block_cols", b)
	return y
}
