// Package linalg implements the iterative eigenvalue/singular-value
// machinery GEBE needs: power iteration for the spectral norm, block
// Krylov subspace iteration (KSI) for top-k eigenpairs of an implicitly
// defined symmetric operator, and randomized block-Krylov SVD for sparse
// matrices (Musco & Musco, NeurIPS 2015 — the algorithm the paper cites
// as reference [47] and uses in Line 1 of Algorithm 2).
package linalg

import (
	"math"
	"math/rand/v2"
	"time"

	"gebe/internal/budget"
	"gebe/internal/dense"
	"gebe/internal/obs"
	"gebe/internal/sparse"
)

// Operator is a symmetric linear operator applied to dense blocks. GEBE's
// H = Σ ω(ℓ)(WWᵀ)^ℓ implements this without ever materializing H.
type Operator interface {
	// Dim returns the (square) dimension of the operator.
	Dim() int
	// Apply returns the product of the operator with a Dim()-by-k block.
	Apply(x *dense.Matrix) *dense.Matrix
}

// NewRand returns a deterministic PCG-backed generator for the seed.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// PowerConfig parameterizes the σ₁ power iteration.
type PowerConfig struct {
	// Iters is the iteration budget; 0 selects a default that is plenty
	// for the 2-digit accuracy the spectral scaling needs.
	Iters int
	// Seed drives the random starting vector.
	Seed uint64
	// Threads caps MulVec/TMulVec parallelism.
	Threads int
	// SpMM carries scheduling hints for the sparse products (strategy,
	// parallelism gate); Threads above overrides SpMM.Threads.
	SpMM sparse.Tuning
	// Dense carries scheduling hints for dense block work. The power
	// iteration itself is vector-only, so today the field only keeps the
	// config surface symmetric with KSIConfig/SVDConfig; block-power
	// variants would consume it.
	Dense dense.Tuning
	// Deadline is a cooperative cutoff checked once per iteration; zero
	// never fires.
	Deadline time.Time
}

// PowerResult carries the σ₁ estimate plus termination diagnostics.
type PowerResult struct {
	// Sigma is the σ₁(W) estimate (best so far when DeadlineHit).
	Sigma float64
	// Iterations is the number of power iterations performed.
	Iterations int
	// DeadlineHit reports that the iteration stopped because the
	// cooperative deadline passed.
	DeadlineHit bool
}

// TopSingularValue estimates σ₁(W) by power iteration on WᵀW. iters=0
// selects the default budget.
func TopSingularValue(w *sparse.CSR, iters int, seed uint64, threads int) float64 {
	return TopSingularValueRun(w, PowerConfig{Iters: iters, Seed: seed, Threads: threads}).Sigma
}

// TopSingularValueRun is the configurable entry point behind
// TopSingularValue; it honors cfg.Threads in the sparse products and the
// cooperative cfg.Deadline between iterations.
func TopSingularValueRun(w *sparse.CSR, cfg PowerConfig) PowerResult {
	if w.NNZ() == 0 {
		return PowerResult{}
	}
	iters := cfg.Iters
	if iters <= 0 {
		iters = 50
	}
	rng := NewRand(cfg.Seed)
	v := make([]float64, w.Cols)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	normalize(v)
	tn := cfg.SpMM
	tn.Threads = cfg.Threads
	res := PowerResult{}
	for it := 0; it < iters; it++ {
		if budget.Exceeded(cfg.Deadline) {
			res.DeadlineHit = true
			return res
		}
		wv := w.MulVecOpts(v, tn)
		v = w.TMulVecOpts(wv, tn)
		n := normalize(v)
		res.Iterations = it + 1
		if n == 0 {
			res.Sigma = 0 // started orthogonal to the range; caller's W is degenerate
			return res
		}
		next := math.Sqrt(n)
		if it > 4 && math.Abs(next-res.Sigma) < 1e-9*next {
			res.Sigma = next
			return res
		}
		res.Sigma = next
	}
	return res
}

func normalize(v []float64) float64 {
	n := dense.Norm2(v)
	if n == 0 {
		return 0
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
	return n
}

// KSIResult carries the output of block Krylov subspace iteration.
type KSIResult struct {
	// Vectors holds the approximate top-k eigenvectors as columns (n×k).
	Vectors *dense.Matrix
	// Values holds the matching eigenvalue estimates, descending.
	Values []float64
	// Sweeps is the number of KSI sweeps actually performed.
	Sweeps int
	// Converged reports whether the subspace-change tolerance was met
	// before the sweep budget ran out.
	Converged bool
	// DeadlineHit reports that the iteration stopped early because a
	// cooperative deadline passed.
	DeadlineHit bool
	// StopReason explains why sweeping stopped.
	StopReason StopReason
	// DecayRate is the controller's last per-sweep geometric residual
	// decay estimate (0 until the sliding window fills).
	DecayRate float64
	// SweepsSaved is the part of the sweep budget left unused.
	SweepsSaved int
}

// KSI runs block Krylov subspace iteration (simultaneous orthogonal
// iteration) on op: starting from a random semi-unitary n×k block Z, it
// repeats Z, R ← QR(op·Z) — the loop of the paper's Algorithm 1 — until
// the spanned subspace stabilizes or t sweeps have run. Per §4.1 the
// diagonal of R converges to the top-k eigenvalues; because that inner
// rotation converges much more slowly than the subspace itself (rate
// λ_{j+1}/λ_j between neighbours), the extraction is finished with a
// single Rayleigh–Ritz rotation (Rutishauser's classic refinement): it
// costs one extra operator application and makes the returned eigenpairs
// exact within the converged subspace.
//
// tol is the relative subspace-residual threshold; 0 selects 1e-7.
func KSI(op Operator, k, t int, tol float64, seed uint64) KSIResult {
	return KSIRun(op, KSIConfig{K: k, Sweeps: t, Tol: tol, Seed: seed})
}

// KSIDeadline is KSI with a cooperative deadline checked once per sweep;
// a zero deadline never fires. When the deadline passes mid-iteration the
// current (partially converged) subspace is still Rayleigh–Ritz-refined
// and returned, with DeadlineHit set so callers can decide whether a
// partial result counts.
func KSIDeadline(op Operator, k, t int, tol float64, seed uint64, deadline time.Time) KSIResult {
	return KSIRun(op, KSIConfig{K: k, Sweeps: t, Tol: tol, Seed: seed, Deadline: deadline})
}

// KSIConfig parameterizes one KSI run.
type KSIConfig struct {
	// K is the subspace dimension (required, 0 < K <= op.Dim()).
	K int
	// Sweeps is the sweep budget t; 0 selects 200.
	Sweeps int
	// Tol is the relative subspace-residual threshold; 0 selects 1e-7.
	Tol float64
	// Seed drives the random starting block.
	Seed uint64
	// Deadline is a cooperative cutoff checked once per sweep; zero never
	// fires.
	Deadline time.Time
	// Window is the sliding-window length (in sweeps) the adaptive
	// stopping controller uses to estimate the residual decay rate;
	// 0 selects 16, minimum 2.
	Window int
	// Flatness is the per-sweep geometric decay rate at or above which
	// the controller declares the residual stagnant and exits early;
	// 0 selects 0.99. Must lie in (0,1).
	Flatness float64
	// NoAdaptive disables the early-exit controller: the sweep loop then
	// runs until Tol, Deadline or the sweep budget, exactly as before.
	NoAdaptive bool
	// InitQ, when set, warm-starts the iteration from a previous basis
	// instead of a Gaussian block (see warmstart.go): the overlap is
	// carried, new columns get fresh random directions, new rows start at
	// zero, and the block is re-orthonormalized. Any column scaling on the
	// input is irrelevant. The matrix is read, never written.
	InitQ *dense.Matrix
	// Dense carries scheduling hints for the dense engine behind every
	// per-sweep QR and block product (strategy, thread cap, parallelism
	// gate); the zero value runs the sequential blocked defaults.
	Dense dense.Tuning
	// Obs receives per-sweep telemetry (spans, residual logs, metrics,
	// progress events). nil runs silent.
	Obs *obs.Run
}

// KSIRun is the fully configurable entry point behind KSI/KSIDeadline.
// When cfg.Obs is set it emits, per sweep: a "ksi.sweep" trace span, a
// debug log line with the subspace residual, an upper bound on the
// largest principal angle moved, the orthonormalization time, and the
// remaining deadline slack; plus counters/histograms in the registry and
// a Progress event.
func KSIRun(op Operator, cfg KSIConfig) KSIResult {
	n := op.Dim()
	k, t, tol := cfg.K, cfg.Sweeps, cfg.Tol
	if k <= 0 || k > n {
		panic("linalg: KSI requires 0 < k <= Dim()")
	}
	if t <= 0 {
		t = 200
	}
	if tol <= 0 {
		tol = 1e-7
	}
	run := cfg.Obs
	log := run.Logger()
	reg := run.Registry()
	sweepsTotal := reg.Counter("linalg_ksi_sweeps_total", "KSI sweeps performed")
	sweepSeconds := reg.Histogram("linalg_ksi_sweep_seconds", "wall-clock per KSI sweep", nil)
	orthoSeconds := reg.Histogram("linalg_orthonormalize_seconds", "wall-clock per QR orthonormalization", obs.FastBuckets)
	residualGauge := reg.Gauge("linalg_ksi_residual", "latest KSI subspace residual")

	var ctrl *decayController
	if !cfg.NoAdaptive {
		ctrl = newDecayController(cfg.Window, cfg.Flatness, tol, t)
	}
	rng := NewRand(cfg.Seed)
	sw := newKSISweep(op, ksiStartBlock(cfg, n, k, rng, run), cfg.Dense)
	res := KSIResult{StopReason: StopBudget}
	for sweep := 1; sweep <= t; sweep++ {
		sweepStart := time.Now()
		sp := run.Span("ksi.sweep")
		hz := sw.apply()
		var ritz []float64
		if ctrl != nil {
			// Rayleigh–Ritz values of the pre-sweep basis, from the H·Z
			// product the sweep computes anyway — the controller's quality
			// signal, at O(n·k²) on top of the sweep's O(n·k·τ) SpMMs.
			ritz = ritzValues(sw.z, hz)
		}
		frob, qrDur := sw.finish(hz)
		change := frob / math.Sqrt(float64(k))
		res.Sweeps = sweep

		elapsed := time.Since(sweepStart)
		sweepsTotal.Inc()
		sweepSeconds.Observe(elapsed.Seconds())
		orthoSeconds.Observe(qrDur.Seconds())
		residualGauge.Set(change)
		if sp != nil {
			// Guarded: Set boxes its value operand, which would be the one
			// allocation left in the silent steady-state sweep.
			sp.Set("sweep", sweep).Set("residual", change).Set("qr_seconds", qrDur.Seconds())
			sp.End()
		}
		if log.Enabled(obs.LevelDebug) {
			// The Frobenius norm of the out-of-span residual bounds the sine
			// of the largest principal angle the subspace moved this sweep.
			angle := math.Asin(math.Min(1, frob))
			args := []any{"sweep", sweep, "of", t, "residual", change,
				"angle_bound_rad", angle, "qr_s", qrDur.Seconds(), "sweep_s", elapsed.Seconds()}
			if !cfg.Deadline.IsZero() {
				args = append(args, "deadline_slack_s", time.Until(cfg.Deadline).Seconds())
			}
			log.Debug("ksi: sweep", args...)
		}
		run.Emit(obs.Progress{Phase: "ksi.sweep", Step: sweep, Total: t, Residual: change, Elapsed: elapsed})

		if change < tol {
			res.Converged = true
			res.StopReason = StopConverged
			break
		}
		if budget.Exceeded(cfg.Deadline) {
			res.DeadlineHit = true
			res.StopReason = StopDeadline
			log.Warn("ksi: deadline hit", "sweep", sweep, "residual", change)
			break
		}
		if ctrl != nil {
			verdict := ctrl.observe(sweep, change, ritz)
			res.DecayRate = verdict.rate
			if verdict.stop {
				res.StopReason = verdict.reason
				res.SweepsSaved = t - sweep
				sp := run.Span("ksi.controller")
				sp.Set("sweep", sweep).Set("reason", string(verdict.reason)).
					Set("decay_rate", verdict.rate).Set("residual", change).
					Set("projected_residual", verdict.projected).Set("sweeps_saved", t-sweep)
				sp.End()
				reg.Counter("linalg_ksi_early_exits_total", "KSI runs cut short by the adaptive stopping controller").Inc()
				log.Info("ksi: adaptive early exit", "sweep", sweep, "of", t,
					"reason", string(verdict.reason), "decay_rate", verdict.rate,
					"residual", change, "projected_residual", verdict.projected,
					"sweeps_saved", t-sweep)
				break
			}
		}
	}
	if res.SweepsSaved == 0 && res.Sweeps < t {
		res.SweepsSaved = t - res.Sweeps
	}
	// Rayleigh–Ritz: diagonalize the projected operator B = Zᵀ(H·Z) and
	// rotate Z onto the Ritz vectors. SymEig returns descending order.
	rr := run.Span("ksi.rayleigh_ritz")
	hz := sw.apply()
	b := dense.TMulOpts(sw.z, hz, cfg.Dense)
	vals, c := dense.SymEig(b)
	rr.End()
	for i := range vals {
		if vals[i] < 0 {
			vals[i] = 0 // H is PSD; clamp round-off
		}
	}
	res.Vectors = dense.MulOpts(sw.z, c, cfg.Dense)
	res.Values = vals
	return res
}

// RSVDResult carries the randomized SVD output for a sparse matrix W.
type RSVDResult struct {
	// U holds approximate top-k left singular vectors (Rows(W)×k).
	U *dense.Matrix
	// Sigma holds the matching singular value estimates, descending.
	Sigma []float64
	// KrylovDim is the dimension of the Krylov space actually used.
	KrylovDim int
	// Iterations is the number of block-Krylov expansion steps q.
	Iterations int
	// DeadlineHit reports that the cooperative deadline passed during the
	// Krylov expansion. When at least the seed block landed, U/Sigma hold
	// the (less accurate) result from the partial basis; when the deadline
	// had already passed on entry, U is nil.
	DeadlineHit bool
}

// RandomizedSVD computes approximate top-k left singular vectors and
// singular values of the sparse matrix w using the randomized block
// Krylov method. eps is the relative spectral error target from Theorem 1
// of Musco–Musco: the iteration count grows as log(n)/√eps. threads caps
// SpMM parallelism.
//
// The Krylov basis K = [Π, (WWᵀ)Π, …, (WWᵀ)^q Π] with Π = orth(W·G) is
// orthonormalized blockwise and then globally; the small projected
// operator Kᵀ(WWᵀ)K is solved exactly by Jacobi.
func RandomizedSVD(w *sparse.CSR, k int, eps float64, seed uint64, threads int) RSVDResult {
	return RandomizedSVDRun(w, SVDConfig{K: k, Eps: eps, Seed: seed, Threads: threads})
}

// SVDConfig parameterizes one randomized block-Krylov SVD run.
type SVDConfig struct {
	// K is the number of singular pairs (required).
	K int
	// Eps is the relative spectral error target; 0 selects 0.1.
	Eps float64
	// Seed drives the Gaussian test matrix.
	Seed uint64
	// Threads caps SpMM parallelism.
	Threads int
	// SpMM carries scheduling hints for the sparse products (strategy,
	// parallelism gate); Threads above overrides SpMM.Threads.
	SpMM sparse.Tuning
	// Dense carries scheduling hints for the dense engine behind the
	// blockwise and global QR factorizations and the projection products.
	Dense dense.Tuning
	// Deadline is a cooperative cutoff checked before every Krylov block;
	// zero never fires. On expiry the basis built so far (if any) is still
	// projected and returned, with DeadlineHit set.
	Deadline time.Time
	// InitU / InitV, when set, warm-start the seed block from previous
	// left / right singular-vector estimates (see warmstart.go): InitU
	// columns are carried directly, InitV columns are mapped through W
	// (W·v ≈ σ·u), and any remaining block columns come from W times a
	// fresh Gaussian test matrix. Either may be nil; both are read-only.
	InitU *dense.Matrix
	InitV *dense.Matrix
	// Obs receives per-block telemetry; nil runs silent.
	Obs *obs.Run
}

// RandomizedSVDRun is the configurable entry point behind RandomizedSVD.
// With cfg.Obs set it emits one "rsvd.block" span + debug log + Progress
// event per Krylov expansion step, and spans around the global QR, the
// projection and the dense eigensolve.
func RandomizedSVDRun(w *sparse.CSR, cfg SVDConfig) RSVDResult {
	k, eps, seed := cfg.K, cfg.Eps, cfg.Seed
	tn := cfg.SpMM
	tn.Threads = cfg.Threads
	minDim := w.Rows
	if w.Cols < minDim {
		minDim = w.Cols
	}
	if k <= 0 || k > minDim {
		panic("linalg: RandomizedSVD requires 0 < k <= min(rows, cols)")
	}
	if eps <= 0 {
		eps = 0.1
	}
	// Block size with modest oversampling; cap at the small dimension.
	b := k + 8
	if b > minDim {
		b = minDim
	}
	// q per Musco–Musco: Θ(log n / sqrt(eps)); small constants suffice in
	// practice. The total Krylov dimension (q+1)·b must stay tractable for
	// the global QR and cannot exceed the row count (thin QR needs rows ≥
	// cols). When even a 2-block basis does not fit — tiny, near-square
	// matrices — fall back to a single block capped at the row count; with
	// b ≥ rank that single block already spans range(W).
	q := int(math.Ceil(math.Log(float64(w.Cols)+2) / (4 * math.Sqrt(eps))))
	if q < 2 {
		q = 2
	}
	maxKrylov := 6 * b
	if maxKrylov > w.Rows {
		maxKrylov = w.Rows
	}
	for q > 1 && (q+1)*b > maxKrylov {
		q--
	}
	if (q+1)*b > maxKrylov {
		// Prefer shrinking the block over dropping the power step: one
		// Gram application buys far more accuracy than extra oversampling.
		b = maxKrylov / 2
		if b < k {
			b = k // maxKrylov = w.Rows ≥ minDim ≥ k, so b=k always fits q=0
			q = maxKrylov/b - 1
			if q < 0 {
				q = 0
			}
		}
	}
	run := cfg.Obs
	log := run.Logger()
	reg := run.Registry()
	blocksTotal := reg.Counter("linalg_rsvd_blocks_total", "Krylov blocks built (seed block included)")
	blockSeconds := reg.Histogram("linalg_rsvd_block_seconds", "wall-clock per Krylov block (seed block included)", nil)
	orthoSeconds := reg.Histogram("linalg_orthonormalize_seconds", "wall-clock per QR orthonormalization", obs.FastBuckets)

	res := RSVDResult{Iterations: q}
	if budget.Exceeded(cfg.Deadline) {
		// Expired before any work: nothing to project, return empty-handed.
		log.Warn("rsvd: deadline expired before seed block")
		res.DeadlineHit = true
		res.Iterations = 0
		return res
	}
	rng := NewRand(seed)
	// One QR workspace serves every blockwise orthonormalization and the
	// global QR: across q+2 factorizations only the largest shape
	// allocates. The returned Q is a view, so each block is consumed
	// (copied into kry) before the workspace is reused.
	var qrws dense.QRWork
	sp := run.Span("rsvd.block")
	blockStart := time.Now()
	block := qrws.Orthonormalize(rsvdSeedBlock(w, cfg, b, rng, tn, run), cfg.Dense)
	sp.Set("block", 0).Set("of", q)
	sp.End()
	blocksTotal.Inc()
	blockSeconds.ObserveSince(blockStart)
	log.Debug("rsvd: seed block", "cols", b, "krylov_dim", (q+1)*b, "block_s", time.Since(blockStart).Seconds())
	run.Emit(obs.Progress{Phase: "rsvd.block", Step: 1, Total: q + 1, Elapsed: time.Since(blockStart)})
	// Assemble the Krylov matrix K (Rows×(q+1)b), blockwise orthonormalized.
	kry := dense.New(w.Rows, (q+1)*b)
	copyBlock(kry, block, 0)
	for i := 1; i <= q; i++ {
		if budget.Exceeded(cfg.Deadline) {
			// Truncate to the blocks already built (≥ b ≥ k columns) and
			// finish with the partial basis, mirroring KSI's partial return.
			res.DeadlineHit = true
			res.Iterations = i - 1
			kry = kry.SliceCols(0, i*b)
			log.Warn("rsvd: deadline hit", "blocks_built", i, "of", q+1)
			break
		}
		blockStart = time.Now()
		sp = run.Span("rsvd.block")
		block = qrws.Orthonormalize(applyGram(w, block, tn), cfg.Dense)
		copyBlock(kry, block, i*b)
		elapsed := time.Since(blockStart)
		sp.Set("block", i).Set("of", q)
		sp.End()
		blocksTotal.Inc()
		blockSeconds.Observe(elapsed.Seconds())
		log.Debug("rsvd: block", "block", i, "of", q, "block_s", elapsed.Seconds())
		run.Emit(obs.Progress{Phase: "rsvd.block", Step: i + 1, Total: q + 1, Elapsed: elapsed})
	}
	qrStart := time.Now()
	sp = run.Span("rsvd.global_qr")
	kq := qrws.Orthonormalize(kry, cfg.Dense)
	sp.End()
	orthoSeconds.ObserveSince(qrStart)
	// Project: M = Kᵀ (WWᵀ) K = (WᵀK)ᵀ (WᵀK).
	sp = run.Span("rsvd.project")
	wtk := w.TMulDenseOpts(kq, tn)
	m := dense.TMulOpts(wtk, wtk, cfg.Dense)
	sp.End()
	sp = run.Span("rsvd.eig")
	vals, vecs := dense.SymEig(m)
	u := dense.MulOpts(kq, vecs.SliceCols(0, k), cfg.Dense)
	sp.End()
	sigma := make([]float64, k)
	for i := 0; i < k; i++ {
		v := vals[i]
		if v < 0 {
			v = 0
		}
		sigma[i] = math.Sqrt(v)
	}
	res.U = u
	res.Sigma = sigma
	res.KrylovDim = kq.Cols
	return res
}

// applyGram returns (W Wᵀ)·x using two sparse products.
func applyGram(w *sparse.CSR, x *dense.Matrix, tn sparse.Tuning) *dense.Matrix {
	return w.MulDenseOpts(w.TMulDenseOpts(x, tn), tn)
}

func copyBlock(dst, src *dense.Matrix, colOff int) {
	for i := 0; i < src.Rows; i++ {
		copy(dst.Row(i)[colOff:colOff+src.Cols], src.Row(i))
	}
}
