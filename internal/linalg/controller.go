package linalg

import (
	"math"

	"gebe/internal/dense"
)

// StopReason explains why an iterative solver stopped.
type StopReason string

const (
	// StopConverged: the subspace residual fell below Tol.
	StopConverged StopReason = "converged"
	// StopStagnated: the residual decay rate flattened (rate ≥ Flatness),
	// so further sweeps cannot make measurable progress.
	StopStagnated StopReason = "stagnated"
	// StopUnreachable: even at the fastest decay rate observed in the
	// window, the residual cannot reach Tol within the sweep budget.
	StopUnreachable StopReason = "tol-unreachable"
	// StopDeadline: the cooperative deadline passed mid-iteration.
	StopDeadline StopReason = "deadline"
	// StopBudget: the full sweep budget ran out without converging.
	StopBudget StopReason = "sweep-budget"
)

// controllerDefaults for KSIConfig.Window / KSIConfig.Flatness. The
// window is deliberately generous: subspace iteration's per-sweep
// residual is non-monotone while the basis rotates through near-
// degenerate directions (transient plateaus of a dozen sweeps occur on
// ordinary PSD operators), and any window short enough to sit entirely
// inside such a plateau cannot tell it apart from a terminal floor.
const (
	defaultStopWindow   = 16
	defaultStopFlatness = 0.99
)

// ritzStability is the per-eigenvalue movement (relative to 1+|λ|)
// below which the Ritz values count as settled. It sits three orders of
// magnitude under the 1e-6 agreement the fast solvers promise against
// their non-adaptive runs, and well above machine-precision jitter.
const ritzStability = 1e-9

// decayController implements the adaptive stopping rule for KSI. Raw
// per-sweep residuals are too noisy to fit a decay rate — they rise and
// fall while the basis rotates through near-degenerate directions — so
// the controller tracks the monotone best-so-far envelope of the
// residual and estimates geometric decay on that. Once the window is
// full it asks to stop when
//
//   - decay has flattened: the envelope contracted no faster than
//     Flatness per sweep across the whole window AND the Ritz values
//     went still (moved < ritzStability over the window). The Ritz gate
//     is what separates a terminal floor from a mid-run rotation
//     plateau: plateaus of arbitrary length occur on ordinary PSD
//     operators and look exactly like floors to any residual-only
//     window statistic, but their eigenvalue estimates are still in
//     motion; or
//   - the tolerance is provably out of reach: even contracting every
//     remaining sweep at the *fastest* per-sweep envelope improvement
//     seen in the window (an optimistic bound), the residual at budget
//     exhaustion would still exceed Tol. This rule only runs while the
//     envelope is genuinely contracting (rate < Flatness), which keeps
//     the bound's optimism below Flatness and out of plateau territory.
//
// Both rules only fire once the window is full, so short healthy runs
// are never cut, and both are gated on Ritz stability: an early exit of
// either kind is only sound once the remaining sweeps can no longer
// move the eigenvalues, which is what keeps every adaptive stop within
// 1e-6 of the corresponding fixed-budget run.
type decayController struct {
	window   int
	flat     float64
	tol      float64
	budget   int         // total sweep budget t
	best     float64     // best-so-far residual (the envelope value)
	history  []float64   // last window+1 envelope values, oldest first
	ritzHist [][]float64 // last window+1 Ritz-value snapshots, oldest first
}

// controllerVerdict is one observe() decision.
type controllerVerdict struct {
	stop      bool
	reason    StopReason
	rate      float64 // geometric-mean envelope decay over the window
	projected float64 // optimistic residual bound at budget exhaustion
}

func newDecayController(window int, flatness, tol float64, budget int) *decayController {
	if window <= 0 {
		window = defaultStopWindow
	}
	if window < 2 {
		window = 2
	}
	if flatness <= 0 {
		flatness = defaultStopFlatness
	}
	return &decayController{window: window, flat: flatness, tol: tol, budget: budget, best: math.Inf(1)}
}

// observe records the residual and Rayleigh–Ritz values of the given
// sweep (1-based) and decides whether to stop early.
func (c *decayController) observe(sweep int, residual float64, ritz []float64) controllerVerdict {
	if residual < c.best {
		c.best = residual
	}
	c.history = append(c.history, c.best)
	c.ritzHist = append(c.ritzHist, ritz)
	if len(c.history) > c.window+1 {
		c.history = c.history[1:]
		c.ritzHist = c.ritzHist[1:]
	}
	if len(c.history) < c.window+1 {
		return controllerVerdict{}
	}
	oldest, cur := c.history[0], c.history[len(c.history)-1]
	if oldest <= 0 || cur <= 0 || math.IsInf(oldest, 1) {
		// A zero residual means the subspace is exact; the convergence
		// check owns that case.
		return controllerVerdict{}
	}
	// Geometric-mean envelope decay over the window, and the single
	// fastest per-sweep envelope improvement (the optimistic bound; the
	// envelope is monotone, so every ratio is in (0,1]).
	rate := math.Pow(cur/oldest, 1/float64(c.window))
	fastest := 1.0
	for i := 1; i < len(c.history); i++ {
		if r := c.history[i] / c.history[i-1]; r < fastest {
			fastest = r
		}
	}
	v := controllerVerdict{rate: rate}
	if rate >= c.flat {
		if c.ritzSettled() {
			v.stop = true
			v.reason = StopStagnated
			v.projected = cur
		}
		return v
	}
	remaining := c.budget - sweep
	if remaining <= 0 || fastest <= 0 {
		return v
	}
	// Optimistic projection: residual after the remaining sweeps if every
	// one of them contracted at the fastest rate seen in the window. The
	// Ritz gate applies here too — an unreachable tolerance justifies
	// skipping the remaining sweeps only once those sweeps have stopped
	// moving the eigenvalues, which is what keeps every early exit within
	// the promised 1e-6 agreement with the full fixed-budget run.
	logProj := math.Log(cur) + float64(remaining)*math.Log(fastest)
	if logProj > math.Log(c.tol) && c.ritzSettled() {
		v.stop = true
		v.reason = StopUnreachable
		v.projected = math.Exp(logProj)
	}
	return v
}

// ritzValues returns the eigenvalues of the projected operator ZᵀHZ
// given q = H·Z — the same values the post-loop Rayleigh–Ritz
// refinement computes. The product is symmetrized against round-off
// before the eigensolve.
func ritzValues(z, q *dense.Matrix) []float64 {
	b := dense.TMul(z, q)
	for i := 0; i < b.Rows; i++ {
		for j := i + 1; j < b.Cols; j++ {
			m := (b.At(i, j) + b.At(j, i)) / 2
			b.Set(i, j, m)
			b.Set(j, i, m)
		}
	}
	vals, _ := dense.SymEig(b)
	return vals
}

// ritzSettled reports whether every Ritz value moved less than
// ritzStability·(1+|λ|) across the window.
func (c *decayController) ritzSettled() bool {
	old, cur := c.ritzHist[0], c.ritzHist[len(c.ritzHist)-1]
	if len(old) == 0 || len(old) != len(cur) {
		return false
	}
	for i := range cur {
		if math.Abs(cur[i]-old[i]) > ritzStability*(1+math.Abs(cur[i])) {
			return false
		}
	}
	return true
}
