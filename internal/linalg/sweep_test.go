package linalg

import (
	"testing"

	"gebe/internal/dense"
)

// inPlaceOp wraps an explicit symmetric matrix as an InPlaceOperator.
type inPlaceOp struct{ m *dense.Matrix }

func (o inPlaceOp) Dim() int                            { return o.m.Rows }
func (o inPlaceOp) Apply(x *dense.Matrix) *dense.Matrix { return dense.Mul(o.m, x) }
func (o inPlaceOp) ApplyInto(dst, x *dense.Matrix) *dense.Matrix {
	return dense.MulInto(dst, o.m, x, dense.Tuning{})
}

// TestKSISweepSteadyStateAllocs pins the zero-alloc sweep contract: with
// an InPlaceOperator, silent observability, and the flop gate keeping
// the dense products sequential, a steady-state KSI sweep performs no
// allocations at all.
func TestKSISweepSteadyStateAllocs(t *testing.T) {
	op := inPlaceOp{m: psdRandom(60, 3)}
	z := dense.Orthonormalize(dense.Random(60, 8, NewRand(4)))
	sw := newKSISweep(op, z, dense.Tuning{})
	if sw.into == nil {
		t.Fatal("inPlaceOp should be detected as an InPlaceOperator")
	}
	sw.finish(sw.apply()) // warm the QR workspace
	if n := testing.AllocsPerRun(20, func() {
		sw.finish(sw.apply())
	}); n != 0 {
		t.Errorf("steady-state KSI sweep allocated %v times per run, want 0", n)
	}
}

// TestKSIRunInPlaceOperatorMatchesApply: the ApplyInto fast path must
// be invisible in the results — same eigenpairs, same termination.
func TestKSIRunInPlaceOperatorMatchesApply(t *testing.T) {
	m := psdRandom(40, 7)
	cfg := KSIConfig{K: 5, Sweeps: 30, Seed: 9, NoAdaptive: true}
	plain := KSIRun(denseOp{m: m}, cfg)
	inplace := KSIRun(inPlaceOp{m: m}, cfg)
	if d := dense.Sub(plain.Vectors, inplace.Vectors).MaxAbs(); d != 0 {
		t.Errorf("ApplyInto path diverges from Apply path by %g", d)
	}
	for i := range plain.Values {
		if plain.Values[i] != inplace.Values[i] {
			t.Errorf("value %d: %g vs %g", i, plain.Values[i], inplace.Values[i])
		}
	}
	if plain.Sweeps != inplace.Sweeps || plain.Converged != inplace.Converged {
		t.Errorf("termination differs: %+v vs %+v", plain, inplace)
	}
}

// TestKSIRunDenseTuningEquivalence: tuning changes scheduling, never
// results — the sequential auto engine paths are bitwise identical, so
// a forced-parallel QR/Mul run must agree to round-off only where the
// parallel Aᵀ·B reduction reorders sums.
func TestKSIRunDenseTuningEquivalence(t *testing.T) {
	m := psdRandom(50, 11)
	base := KSIRun(denseOp{m: m}, KSIConfig{K: 4, Sweeps: 25, Seed: 3, NoAdaptive: true})
	tuned := KSIRun(denseOp{m: m}, KSIConfig{K: 4, Sweeps: 25, Seed: 3, NoAdaptive: true,
		Dense: dense.Tuning{Threads: 4, MinParallelFlops: 1}})
	if d := dense.Sub(base.Vectors, tuned.Vectors).MaxAbs(); d > 1e-9 {
		t.Errorf("parallel dense tuning changes KSI result by %g", d)
	}
	legacy := KSIRun(denseOp{m: m}, KSIConfig{K: 4, Sweeps: 25, Seed: 3, NoAdaptive: true,
		Dense: dense.Tuning{Strategy: dense.StrategyLegacy}})
	if d := dense.Sub(base.Vectors, legacy.Vectors).MaxAbs(); d != 0 {
		t.Errorf("auto sequential dense engine diverges from legacy inside KSI by %g", d)
	}
}
