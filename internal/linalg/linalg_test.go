package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"gebe/internal/dense"
	"gebe/internal/sparse"
)

// denseOp wraps an explicit symmetric matrix as an Operator.
type denseOp struct{ m *dense.Matrix }

func (o denseOp) Dim() int                            { return o.m.Rows }
func (o denseOp) Apply(x *dense.Matrix) *dense.Matrix { return dense.Mul(o.m, x) }

func symRandom(n int, seed uint64) *dense.Matrix {
	b := dense.Random(n, n, NewRand(seed))
	return dense.Add(b, b.T())
}

// psdRandom returns BᵀB, a PSD matrix (KSI's eigenvalue-from-R trick
// assumes a PSD operator like GEBE's H).
func psdRandom(n int, seed uint64) *dense.Matrix {
	b := dense.Random(n, n, NewRand(seed))
	return dense.TMul(b, b)
}

func randomSparse(t testing.TB, rows, cols, nnz int, seed uint64) *sparse.CSR {
	r := NewRand(seed)
	entries := make([]sparse.Entry, nnz)
	for i := range entries {
		entries[i] = sparse.Entry{Row: r.IntN(rows), Col: r.IntN(cols), Val: r.Float64()}
	}
	m, err := sparse.New(rows, cols, entries)
	if err != nil {
		t.Fatalf("sparse.New: %v", err)
	}
	return m
}

func TestTopSingularValueDiagonal(t *testing.T) {
	// W = diag(5, 3, 1): σ₁ = 5.
	w, _ := sparse.New(3, 3, []sparse.Entry{{Row: 0, Col: 0, Val: 5}, {Row: 1, Col: 1, Val: 3}, {Row: 2, Col: 2, Val: 1}})
	got := TopSingularValue(w, 0, 1, 1)
	if math.Abs(got-5) > 1e-6 {
		t.Errorf("σ₁=%v want 5", got)
	}
}

func TestTopSingularValueMatchesExactSVD(t *testing.T) {
	w := randomSparse(t, 40, 25, 300, 2)
	_, s, _ := dense.SVD(w.ToDense())
	got := TopSingularValue(w, 200, 3, 1)
	if math.Abs(got-s[0]) > 1e-5*s[0] {
		t.Errorf("σ₁=%v exact %v", got, s[0])
	}
}

func TestTopSingularValueEmpty(t *testing.T) {
	w, _ := sparse.New(5, 5, nil)
	if got := TopSingularValue(w, 0, 1, 1); got != 0 {
		t.Errorf("σ₁ of empty = %v want 0", got)
	}
}

func TestKSIRecoversTopEigenpairsPSD(t *testing.T) {
	n, k := 30, 4
	a := psdRandom(n, 5)
	wantVals, wantVecs := dense.SymEig(a)
	res := KSI(denseOp{a}, k, 500, 1e-10, 7)
	if !res.Converged {
		t.Fatalf("KSI did not converge in %d sweeps", res.Sweeps)
	}
	for i := 0; i < k; i++ {
		if math.Abs(res.Values[i]-wantVals[i]) > 1e-6*(1+wantVals[i]) {
			t.Errorf("eigenvalue %d: got %v want %v", i, res.Values[i], wantVals[i])
		}
		// Eigenvector agreement up to sign.
		got := res.Vectors.Col(i)
		want := wantVecs.Col(i)
		d := math.Abs(dense.Dot(got, want))
		if d < 1-1e-6 {
			t.Errorf("eigenvector %d: |cos| = %v", i, d)
		}
	}
}

func TestKSIEigenResidual(t *testing.T) {
	n, k := 50, 6
	a := psdRandom(n, 9)
	res := KSI(denseOp{a}, k, 500, 1e-10, 11)
	av := dense.Mul(a, res.Vectors)
	vl := res.Vectors.Clone()
	vl.ScaleCols(res.Values)
	r := dense.Sub(av, vl)
	if rn := r.FrobeniusNorm() / av.FrobeniusNorm(); rn > 1e-5 {
		t.Errorf("relative eigen residual %g too large", rn)
	}
}

func TestKSIKEqualsDim(t *testing.T) {
	a := psdRandom(6, 13)
	res := KSI(denseOp{a}, 6, 500, 1e-10, 1)
	wantVals, _ := dense.SymEig(a)
	for i := range wantVals {
		if math.Abs(res.Values[i]-wantVals[i]) > 1e-5*(1+wantVals[i]) {
			t.Errorf("full-k eigenvalue %d: got %v want %v", i, res.Values[i], wantVals[i])
		}
	}
}

func TestKSIPanicsOnBadK(t *testing.T) {
	a := psdRandom(4, 1)
	for _, k := range []int{0, 5, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d: expected panic", k)
				}
			}()
			KSI(denseOp{a}, k, 10, 0, 1)
		}()
	}
}

func TestRandomizedSVDMatchesExact(t *testing.T) {
	w := randomSparse(t, 60, 40, 500, 17)
	_, s, _ := dense.SVD(w.ToDense())
	res := RandomizedSVD(w, 5, 0.01, 19, 1)
	for i := 0; i < 5; i++ {
		if math.Abs(res.Sigma[i]-s[i]) > 1e-3*(1+s[i]) {
			t.Errorf("σ_%d: got %v exact %v", i, res.Sigma[i], s[i])
		}
	}
	// Left singular vectors: U should satisfy ‖WᵀU[:,i]‖ = σ_i and UᵀU = I.
	utu := dense.TMul(res.U, res.U)
	if !dense.Equal(utu, dense.Identity(5), 1e-8) {
		t.Error("U columns not orthonormal")
	}
	wtu := w.TMulDense(res.U, 1)
	for i := 0; i < 5; i++ {
		n := dense.Norm2(wtu.Col(i))
		if math.Abs(n-s[i]) > 1e-3*(1+s[i]) {
			t.Errorf("‖WᵀU[:,%d]‖ = %v want σ=%v", i, n, s[i])
		}
	}
}

func TestRandomizedSVDLowRankExactRecovery(t *testing.T) {
	// Build a rank-3 sparse-ish matrix: W = Σ σ_i u_i v_iᵀ on small support.
	// Use outer products of indicator-ish vectors for exact structure.
	entries := []sparse.Entry{}
	for i := 0; i < 10; i++ {
		entries = append(entries, sparse.Entry{Row: i, Col: i % 4, Val: 2})
		entries = append(entries, sparse.Entry{Row: i, Col: 4 + i%3, Val: 1})
	}
	w, err := sparse.New(10, 8, entries)
	if err != nil {
		t.Fatal(err)
	}
	_, s, _ := dense.SVD(w.ToDense())
	res := RandomizedSVD(w, 3, 0.05, 23, 1)
	for i := 0; i < 3; i++ {
		if math.Abs(res.Sigma[i]-s[i]) > 1e-4*(1+s[i]) {
			t.Errorf("σ_%d: got %v exact %v", i, res.Sigma[i], s[i])
		}
	}
}

func TestRandomizedSVDPanicsOnBadK(t *testing.T) {
	w := randomSparse(t, 10, 5, 20, 29)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k > min dim")
		}
	}()
	RandomizedSVD(w, 6, 0.1, 1, 1)
}

func TestRandomizedSVDDeterministicForSeed(t *testing.T) {
	w := randomSparse(t, 30, 20, 200, 31)
	a := RandomizedSVD(w, 4, 0.1, 42, 1)
	b := RandomizedSVD(w, 4, 0.1, 42, 2) // threads must not affect results
	for i := range a.Sigma {
		if math.Abs(a.Sigma[i]-b.Sigma[i]) > 1e-12 {
			t.Errorf("σ_%d differs across runs: %v vs %v", i, a.Sigma[i], b.Sigma[i])
		}
	}
	if !dense.Equal(a.U, b.U, 1e-12) {
		t.Error("U differs across identical-seed runs")
	}
}

// Property: randomized SVD's σ₁ is within a few percent of the power
// iteration estimate on random sparse matrices.
func TestPropertySigma1Consistency(t *testing.T) {
	f := func(seed uint64) bool {
		rows := 10 + int(seed%30)
		cols := 10 + int((seed/3)%30)
		w := randomSparse(t, rows, cols, 5*(rows+cols), seed)
		if w.NNZ() == 0 {
			return true
		}
		p := TopSingularValue(w, 300, seed+1, 1)
		r := RandomizedSVD(w, 1, 0.05, seed+2, 1)
		return math.Abs(p-r.Sigma[0]) < 0.02*(1+p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
