package linalg

import (
	"math"
	"testing"
	"time"

	"gebe/internal/dense"
	"gebe/internal/obs"
)

// settledRitz returns a constant Ritz snapshot — eigenvalues that have
// stopped moving.
func settledRitz() []float64 { return []float64{2, 1, 0.5} }

// movingRitz returns Ritz values that still drift by ~1e-6 per sweep,
// three orders of magnitude above the controller's stability threshold.
func movingRitz(sweep int) []float64 {
	return []float64{2 + 1e-6*float64(sweep), 1, 0.5}
}

// TestControllerHealthyDecayNeverStops feeds a clean geometric decay
// whose tolerance is comfortably reachable: the controller must stay
// silent for the whole budget.
func TestControllerHealthyDecayNeverStops(t *testing.T) {
	c := newDecayController(0, 0, 1e-20, 100)
	r := 1.0
	for sweep := 1; sweep <= 100; sweep++ {
		r *= 0.5
		if v := c.observe(sweep, r, settledRitz()); v.stop {
			t.Fatalf("sweep %d: spurious stop (%s) on healthy 0.5-rate decay", sweep, v.reason)
		}
	}
}

// TestControllerUnreachableTol checks the budget projection: decaying at
// 0.9 per sweep toward Tol=1e-30 with 60 sweeps total cannot get there,
// and the controller must say so at the first full window — but only
// once the Ritz values have gone still.
func TestControllerUnreachableTol(t *testing.T) {
	c := newDecayController(0, 0, 1e-30, 60)
	r := 1.0
	var fired int
	for sweep := 1; sweep <= 60; sweep++ {
		r *= 0.9
		v := c.observe(sweep, r, settledRitz())
		if v.stop {
			if v.reason != StopUnreachable {
				t.Fatalf("sweep %d: reason %s, want %s", sweep, v.reason, StopUnreachable)
			}
			if v.projected <= 1e-30 {
				t.Errorf("projected residual %g should exceed tol", v.projected)
			}
			fired = sweep
			break
		}
	}
	if fired != defaultStopWindow+1 {
		t.Errorf("unreachable verdict at sweep %d, want %d (first full window)", fired, defaultStopWindow+1)
	}

	// Same decay with still-moving Ritz values: no early exit.
	c = newDecayController(0, 0, 1e-30, 60)
	r = 1.0
	for sweep := 1; sweep <= 60; sweep++ {
		r *= 0.9
		if v := c.observe(sweep, r, movingRitz(sweep)); v.stop {
			t.Fatalf("sweep %d: stopped (%s) while eigenvalues still moving", sweep, v.reason)
		}
	}
}

// TestControllerStagnation checks the flatness rule: a residual stuck at
// a floor stops the run once the Ritz values settle, and never before.
func TestControllerStagnation(t *testing.T) {
	c := newDecayController(0, 0, 1e-12, 200)
	var fired int
	for sweep := 1; sweep <= 200; sweep++ {
		v := c.observe(sweep, 1e-9, settledRitz())
		if sweep <= defaultStopWindow && v.stop {
			t.Fatalf("sweep %d: verdict before the window filled", sweep)
		}
		if v.stop {
			if v.reason != StopStagnated {
				t.Fatalf("sweep %d: reason %s, want %s", sweep, v.reason, StopStagnated)
			}
			fired = sweep
			break
		}
	}
	if fired != defaultStopWindow+1 {
		t.Errorf("stagnation verdict at sweep %d, want %d", fired, defaultStopWindow+1)
	}

	// A flat residual with rotating Ritz values is a transient plateau,
	// not a floor: the controller must wait it out.
	c = newDecayController(0, 0, 1e-12, 200)
	for sweep := 1; sweep <= 200; sweep++ {
		if v := c.observe(sweep, 1e-9, movingRitz(sweep)); v.stop {
			t.Fatalf("sweep %d: stopped (%s) on a rotation plateau", sweep, v.reason)
		}
	}
}

// gappedPSD builds QΛQᵀ with a geometric spectrum λ_i = 0.4^i, whose
// decisive eigengap makes KSI reach its residual floor long before a
// 200-sweep budget.
func gappedPSD(n int, seed uint64) *dense.Matrix {
	q, _ := dense.QR(dense.Random(n, n, NewRand(seed)))
	lam := make([]float64, n)
	v := 1.0
	for i := range lam {
		lam[i] = v
		v *= 0.4
	}
	ql := q.Clone()
	ql.ScaleCols(lam)
	return dense.Mul(ql, q.T())
}

// TestKSIAdaptiveEarlyExit is the end-to-end controller contract: with a
// tolerance below the numerical floor the run must exit on a controller
// verdict strictly before the sweep budget, report the saved sweeps and
// telemetry, and still return eigenpairs within 1e-6 of a dense
// reference solve.
func TestKSIAdaptiveEarlyExit(t *testing.T) {
	a := gappedPSD(40, 3)
	wantVals, wantVecs := dense.SymEig(a)
	reg := obs.NewRegistry()
	tr := obs.NewTrace("test")
	run := &obs.Run{Metrics: reg, Trace: tr}
	res := KSIRun(denseOp{a}, KSIConfig{K: 3, Sweeps: 200, Tol: 1e-18, Seed: 7, Obs: run})
	if res.StopReason != StopStagnated && res.StopReason != StopUnreachable {
		t.Fatalf("stop reason %q, want a controller verdict (sweeps=%d)", res.StopReason, res.Sweeps)
	}
	if res.Sweeps >= 200 {
		t.Errorf("used the full %d-sweep budget", res.Sweeps)
	}
	if res.SweepsSaved != 200-res.Sweeps {
		t.Errorf("SweepsSaved=%d, want %d", res.SweepsSaved, 200-res.Sweeps)
	}
	if res.DecayRate <= 0 {
		t.Errorf("DecayRate=%v, want a positive estimate", res.DecayRate)
	}
	for i := 0; i < 3; i++ {
		if math.Abs(res.Values[i]-wantVals[i]) > 1e-6*(1+wantVals[i]) {
			t.Errorf("eigenvalue %d: got %v want %v", i, res.Values[i], wantVals[i])
		}
		if d := math.Abs(dense.Dot(res.Vectors.Col(i), wantVecs.Col(i))); d < 1-1e-6 {
			t.Errorf("eigenvector %d: |cos| = %v", i, d)
		}
	}
	if got := reg.Counter("linalg_ksi_early_exits_total", "").Value(); got != 1 {
		t.Errorf("early-exit counter = %v, want 1", got)
	}
	var ctrlSpans int
	for _, c := range tr.Root().Children {
		if c.Name == "ksi.controller" {
			ctrlSpans++
		}
	}
	if ctrlSpans != 1 {
		t.Errorf("ksi.controller spans = %d, want 1", ctrlSpans)
	}

	// The same run with the controller disabled must spend every sweep.
	fixed := KSIRun(denseOp{a}, KSIConfig{K: 3, Sweeps: 200, Tol: 1e-18, Seed: 7, NoAdaptive: true})
	if fixed.Sweeps != 200 || fixed.StopReason != StopBudget {
		t.Errorf("NoAdaptive run stopped at %d (%s), want the full budget", fixed.Sweeps, fixed.StopReason)
	}
	for i := 0; i < 3; i++ {
		rel := math.Abs(res.Values[i]-fixed.Values[i]) / (1 + math.Abs(fixed.Values[i]))
		if rel > 1e-6 {
			t.Errorf("eigenvalue %d: adaptive %v vs fixed %v (rel %g)", i, res.Values[i], fixed.Values[i], rel)
		}
	}
}

// TestKSIDeadlineExpired: an already-expired deadline stops the sweep
// loop at the first check but still returns a Rayleigh–Ritz-refined
// partial subspace.
func TestKSIDeadlineExpired(t *testing.T) {
	a := psdRandom(20, 5)
	res := KSIRun(denseOp{a}, KSIConfig{K: 3, Sweeps: 50, Seed: 1,
		Deadline: time.Now().Add(-time.Second)})
	if !res.DeadlineHit || res.StopReason != StopDeadline {
		t.Fatalf("DeadlineHit=%v StopReason=%q, want deadline stop", res.DeadlineHit, res.StopReason)
	}
	if res.Sweeps != 1 {
		t.Errorf("ran %d sweeps on an expired deadline, want 1", res.Sweeps)
	}
	if res.Vectors == nil || len(res.Values) != 3 {
		t.Error("partial result missing after deadline stop")
	}
}

// TestTopSingularValueDeadlineExpired: the power iteration must not do
// any work on a blown budget.
func TestTopSingularValueDeadlineExpired(t *testing.T) {
	w := randomSparse(t, 30, 20, 100, 2)
	res := TopSingularValueRun(w, PowerConfig{Seed: 1, Threads: 1,
		Deadline: time.Now().Add(-time.Second)})
	if !res.DeadlineHit {
		t.Fatal("DeadlineHit not set")
	}
	if res.Iterations != 0 || res.Sigma != 0 {
		t.Errorf("did work on an expired deadline: iters=%d sigma=%v", res.Iterations, res.Sigma)
	}
}

// TestRandomizedSVDDeadline covers both deadline regimes: expired on
// entry returns empty-handed, and a generous deadline must not perturb
// the result at all.
func TestRandomizedSVDDeadline(t *testing.T) {
	w := randomSparse(t, 60, 40, 400, 17)
	res := RandomizedSVDRun(w, SVDConfig{K: 4, Seed: 19, Threads: 1,
		Deadline: time.Now().Add(-time.Second)})
	if !res.DeadlineHit {
		t.Fatal("DeadlineHit not set on expired deadline")
	}
	if res.U != nil || res.Iterations != 0 {
		t.Errorf("expired run built a basis: U=%v iters=%d", res.U != nil, res.Iterations)
	}

	slack := RandomizedSVDRun(w, SVDConfig{K: 4, Seed: 19, Threads: 1,
		Deadline: time.Now().Add(time.Hour)})
	plain := RandomizedSVD(w, 4, 0, 19, 1)
	if slack.DeadlineHit {
		t.Error("generous deadline fired")
	}
	for i := range plain.Sigma {
		if slack.Sigma[i] != plain.Sigma[i] {
			t.Errorf("deadline plumbing changed sigma[%d]: %v vs %v", i, slack.Sigma[i], plain.Sigma[i])
		}
	}
}

// TestRSVDSeedBlockCounted pins the metrics fix: the seed block counts
// toward linalg_rsvd_blocks_total and linalg_rsvd_block_seconds, so both
// agree with Iterations+1 (and with the rsvd.block span census).
func TestRSVDSeedBlockCounted(t *testing.T) {
	w := randomSparse(t, 60, 40, 400, 11)
	reg := obs.NewRegistry()
	run := &obs.Run{Metrics: reg}
	res := RandomizedSVDRun(w, SVDConfig{K: 5, Eps: 0.1, Seed: 7, Threads: 1, Obs: run})
	want := float64(res.Iterations + 1)
	if got := reg.Counter("linalg_rsvd_blocks_total", "").Value(); got != want {
		t.Errorf("blocks counter = %v, want %v (seed block included)", got, want)
	}
	if got := reg.Histogram("linalg_rsvd_block_seconds", "", nil).Count(); got != uint64(res.Iterations+1) {
		t.Errorf("block timer count = %d, want %d", got, res.Iterations+1)
	}
}
