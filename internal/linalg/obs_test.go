package linalg

import (
	"bytes"
	"strings"
	"testing"

	"gebe/internal/obs"
)

// TestKSIRunObservability verifies the instrumented path reports every
// sweep consistently across all four sinks.
func TestKSIRunObservability(t *testing.T) {
	a := psdRandom(40, 3)
	var buf bytes.Buffer
	tr := obs.NewTrace("test")
	reg := obs.NewRegistry()
	var events []obs.Progress
	run := &obs.Run{
		Log:      obs.NewTextLogger(&buf, obs.LevelDebug),
		Trace:    tr,
		Metrics:  reg,
		Progress: func(p obs.Progress) { events = append(events, p) },
	}
	res := KSIRun(denseOp{a}, KSIConfig{K: 4, Sweeps: 50, Tol: 1e-10, Seed: 3, Obs: run})
	if res.Sweeps == 0 {
		t.Fatal("no sweeps ran")
	}
	if len(events) != res.Sweeps {
		t.Errorf("progress events = %d, want %d (one per sweep)", len(events), res.Sweeps)
	}
	if events[0].Phase != "ksi.sweep" || events[0].Step != 1 {
		t.Errorf("first event = %+v", events[0])
	}
	if got := reg.Counter("linalg_ksi_sweeps_total", "").Value(); got != float64(res.Sweeps) {
		t.Errorf("sweep counter = %v, want %d", got, res.Sweeps)
	}
	if got := reg.Histogram("linalg_orthonormalize_seconds", "", nil).Count(); got != uint64(res.Sweeps) {
		t.Errorf("ortho timer count = %d, want %d", got, res.Sweeps)
	}
	root := tr.Root()
	var sweeps, rr int
	for _, c := range root.Children {
		switch c.Name {
		case "ksi.sweep":
			sweeps++
		case "ksi.rayleigh_ritz":
			rr++
		}
	}
	if sweeps != res.Sweeps || rr != 1 {
		t.Errorf("trace has %d sweep spans and %d rayleigh_ritz spans, want %d and 1", sweeps, rr, res.Sweeps)
	}
	if out := buf.String(); !strings.Contains(out, "msg=\"ksi: sweep\"") || !strings.Contains(out, "residual=") {
		t.Errorf("debug log missing sweep telemetry:\n%s", out)
	}
}

// TestRandomizedSVDRunObservability checks block progress events and
// phase spans, and that the instrumented path returns identical results
// to the silent one.
func TestRandomizedSVDRunObservability(t *testing.T) {
	w := randomSparse(t, 60, 40, 400, 11)
	var events []obs.Progress
	tr := obs.NewTrace("test")
	run := &obs.Run{Trace: tr, Metrics: obs.NewRegistry(),
		Progress: func(p obs.Progress) { events = append(events, p) }}
	got := RandomizedSVDRun(w, SVDConfig{K: 5, Eps: 0.1, Seed: 7, Threads: 1, Obs: run})
	want := RandomizedSVD(w, 5, 0.1, 7, 1)
	for i := range want.Sigma {
		if got.Sigma[i] != want.Sigma[i] {
			t.Fatalf("instrumentation changed results: sigma[%d] = %v vs %v", i, got.Sigma[i], want.Sigma[i])
		}
	}
	if len(events) != got.Iterations+1 {
		t.Errorf("progress events = %d, want %d (seed block + expansions)", len(events), got.Iterations+1)
	}
	names := map[string]int{}
	for _, c := range tr.Root().Children {
		names[c.Name]++
	}
	if names["rsvd.block"] != got.Iterations+1 || names["rsvd.global_qr"] != 1 || names["rsvd.project"] != 1 || names["rsvd.eig"] != 1 {
		t.Errorf("span census wrong: %v", names)
	}
}
