package linalg

import (
	"math"
	"testing"

	"gebe/internal/dense"
)

// A warm start from a converged eigenbasis must make the very first
// sweep's subspace residual vanish: the adaptive run stops at sweep 1
// with nearly the whole budget reported saved, and the eigenvalues
// match the cold solve.
func TestKSIWarmStartConvergesImmediately(t *testing.T) {
	n, k, budget := 40, 5, 300
	op := denseOp{psdRandom(n, 11)}
	cold := KSIRun(op, KSIConfig{K: k, Sweeps: budget, Seed: 1})
	if !cold.Converged && cold.StopReason != StopStagnated {
		t.Fatalf("cold solve did not settle: %+v", cold)
	}
	warm := KSIRun(op, KSIConfig{K: k, Sweeps: budget, Seed: 2, InitQ: cold.Vectors})
	if !warm.Converged {
		t.Fatalf("warm solve did not converge: reason=%s sweeps=%d", warm.StopReason, warm.Sweeps)
	}
	if warm.Sweeps > 2 {
		t.Errorf("warm solve took %d sweeps, want <= 2", warm.Sweeps)
	}
	if warm.SweepsSaved <= 0 {
		t.Errorf("SweepsSaved = %d, want > 0", warm.SweepsSaved)
	}
	if warm.SweepsSaved <= cold.SweepsSaved {
		t.Errorf("warm saved %d sweeps, cold saved %d — warm should save more",
			warm.SweepsSaved, cold.SweepsSaved)
	}
	for i := range warm.Values {
		if math.Abs(warm.Values[i]-cold.Values[i]) > 1e-6*math.Max(1, cold.Values[i]) {
			t.Errorf("eigenvalue %d: warm %v cold %v", i, warm.Values[i], cold.Values[i])
		}
	}
}

// Warm bases from a differently-shaped previous solve (fewer rows: the
// graph grew; fewer or more columns: k changed) must be padded, not
// rejected — and still converge to the right eigenvalues.
func TestKSIWarmStartDimensionMismatch(t *testing.T) {
	n, k := 36, 4
	op := denseOp{psdRandom(n, 7)}
	cold := KSIRun(op, KSIConfig{K: k, Sweeps: 80, Seed: 1})

	cases := []struct {
		name       string
		rows, cols int
	}{
		{"fewer_rows", n - 10, k},
		{"fewer_cols", n, k - 2},
		{"more_cols", n, k + 3},
		{"both_smaller", n - 5, k - 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			init := dense.New(tc.rows, tc.cols)
			for i := 0; i < tc.rows; i++ {
				src := cold.Vectors.Row(i)
				dst := init.Row(i)
				for j := 0; j < tc.cols; j++ {
					if j < len(src) {
						dst[j] = src[j]
					} else {
						dst[j] = float64(i+j) / float64(n) // arbitrary extra column
					}
				}
			}
			warm := KSIRun(op, KSIConfig{K: k, Sweeps: 80, Seed: 3, InitQ: init})
			for i := range warm.Values {
				if math.Abs(warm.Values[i]-cold.Values[i]) > 1e-5*math.Max(1, cold.Values[i]) {
					t.Errorf("eigenvalue %d: warm %v cold %v", i, warm.Values[i], cold.Values[i])
				}
			}
		})
	}
}

// warmStartBlock's copy/pad contract, checked directly.
func TestWarmStartBlockPadding(t *testing.T) {
	init := dense.New(3, 2)
	for i := 0; i < 3; i++ {
		init.Row(i)[0] = float64(10 + i)
		init.Row(i)[1] = float64(20 + i)
	}
	b, rows, cols := warmStartBlock(init, 5, 4, NewRand(1))
	if rows != 3 || cols != 2 {
		t.Fatalf("carried extent = (%d,%d), want (3,2)", rows, cols)
	}
	for i := 0; i < 3; i++ {
		if b.Row(i)[0] != init.Row(i)[0] || b.Row(i)[1] != init.Row(i)[1] {
			t.Errorf("row %d overlap not carried: %v", i, b.Row(i))
		}
	}
	for i := 3; i < 5; i++ {
		if b.Row(i)[0] != 0 || b.Row(i)[1] != 0 {
			t.Errorf("new row %d carried columns not zero: %v", i, b.Row(i))
		}
	}
	nonzero := 0
	for i := 0; i < 5; i++ {
		for j := 2; j < 4; j++ {
			if b.Row(i)[j] != 0 {
				nonzero++
			}
		}
	}
	if nonzero == 0 {
		t.Error("new columns were not filled with random directions")
	}
}

// Warm-started randomized SVD seeded from exact singular vectors must be
// at least as accurate as the cold run, for each of the three warm
// shapes: U only, V only, and both.
func TestRandomizedSVDWarmStart(t *testing.T) {
	w := randomSparse(t, 60, 45, 700, 9)
	k := 6
	u, s, v := dense.SVD(w.ToDense())
	uk, vk := u.SliceCols(0, k), v.SliceCols(0, k)

	cases := []struct {
		name         string
		initU, initV *dense.Matrix
	}{
		{"cold", nil, nil},
		{"warm_u", uk, nil},
		{"warm_v", nil, vk},
		{"warm_uv", uk, vk},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := RandomizedSVDRun(w, SVDConfig{K: k, Seed: 4, InitU: tc.initU, InitV: tc.initV})
			if res.U == nil || len(res.Sigma) != k {
				t.Fatalf("bad result: %+v", res)
			}
			for i := 0; i < k; i++ {
				if math.Abs(res.Sigma[i]-s[i]) > 1e-3*s[0] {
					t.Errorf("sigma[%d] = %v, exact %v", i, res.Sigma[i], s[i])
				}
				if math.IsNaN(res.Sigma[i]) {
					t.Fatalf("sigma[%d] is NaN", i)
				}
			}
		})
	}
}
