package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"gebe/internal/obs"
)

// Duration behaves like time.Duration in code but marshals as float
// seconds, the unit run reports and manifests use.
type Duration time.Duration

// Seconds returns the duration in seconds.
func (d Duration) Seconds() float64 { return time.Duration(d).Seconds() }

// MarshalJSON renders the duration as float seconds.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).Seconds())
}

// Manifest is the machine-readable record one experiment run leaves
// behind (Config.ManifestDir): everything needed to interpret, compare,
// or regress-check the run later — configuration, per-row results, the
// phase-timing trace tree, and process memory statistics.
type Manifest struct {
	Experiment string    `json:"experiment"`
	CreatedAt  time.Time `json:"created_at"`
	GoVersion  string    `json:"go_version"`
	// Build pins the VCS revision and toolchain the numbers were measured
	// with; regression comparisons across manifests are only meaningful
	// when both sides name their commit.
	Build          obs.Build      `json:"build"`
	Config         ManifestConfig `json:"config"`
	ElapsedSeconds float64        `json:"elapsed_seconds"`
	Rows           any            `json:"rows"`
	Trace          *obs.Span      `json:"trace,omitempty"`
	Memory         MemoryStats    `json:"memory"`
}

// ManifestConfig is the subset of Config worth recording.
type ManifestConfig struct {
	K                 int      `json:"k"`
	Seed              uint64   `json:"seed"`
	Threads           int      `json:"threads"`
	TimeBudgetSeconds float64  `json:"time_budget_seconds"`
	Datasets          []string `json:"datasets,omitempty"`
	Methods           []string `json:"methods,omitempty"`
}

// MemoryStats snapshots runtime.MemStats at the end of the run. Sys is
// the peak bytes obtained from the OS (the closest stdlib proxy for
// peak RSS); TotalAlloc is cumulative heap allocation.
type MemoryStats struct {
	SysBytes        uint64 `json:"sys_bytes"`
	HeapInuseBytes  uint64 `json:"heap_inuse_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	NumGC           uint32 `json:"num_gc"`
}

// writeManifest persists the run manifest as
// <ManifestDir>/RUN_<exp>.json; a no-op when ManifestDir is unset.
func (c Config) writeManifest(exp string, rows any, tr *obs.Trace, start time.Time) error {
	if c.ManifestDir == "" {
		return nil
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m := Manifest{
		Experiment: exp,
		CreatedAt:  time.Now().UTC(),
		GoVersion:  runtime.Version(),
		Build:      obs.BuildInfo(),
		Config: ManifestConfig{
			K: c.K, Seed: c.Seed, Threads: c.Threads,
			TimeBudgetSeconds: c.TimeBudget.Seconds(),
			Datasets:          c.Datasets, Methods: c.Methods,
		},
		ElapsedSeconds: time.Since(start).Seconds(),
		Rows:           rows,
		Trace:          tr.Root(),
		Memory: MemoryStats{
			SysBytes:        ms.Sys,
			HeapInuseBytes:  ms.HeapInuse,
			TotalAllocBytes: ms.TotalAlloc,
			NumGC:           ms.NumGC,
		},
	}
	if err := os.MkdirAll(c.ManifestDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(c.ManifestDir, "RUN_"+exp+".json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	obs.Default().Info("experiments: wrote run manifest", "experiment", exp, "path", path)
	return nil
}
