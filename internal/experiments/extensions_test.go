package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableNSmoke(t *testing.T) {
	var buf bytes.Buffer
	cfg := fastCfg(&buf)
	cfg.Datasets = []string{"dblp"}
	cfg.Methods = []string{"GEBE^p", "BPR"}
	rows, err := TableN(cfg, []int{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2 methods × 2 Ns.
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rows))
	}
	byKey := map[string]TableNRow{}
	for _, r := range rows {
		if !r.OK {
			t.Fatalf("%s failed", r.Method)
		}
		byKey[r.Method+"@"+itoa(r.N)] = r
	}
	// Recall can only grow with N, so F1@10 >= ... not strictly; but MRR
	// at larger N is monotone non-decreasing (more chances to hit).
	for _, m := range cfg.Methods {
		if byKey[m+"@10"].MRR+1e-12 < byKey[m+"@1"].MRR {
			t.Errorf("%s: MRR@10 %.3f < MRR@1 %.3f (must be monotone in N)",
				m, byKey[m+"@10"].MRR, byKey[m+"@1"].MRR)
		}
	}
	if !strings.Contains(buf.String(), "top-N sweep") {
		t.Error("missing sweep header")
	}
}

func itoa(n int) string {
	if n == 1 {
		return "1"
	}
	return "10"
}

func TestIncrementalSmoke(t *testing.T) {
	var buf bytes.Buffer
	cfg := fastCfg(&buf)
	res, err := Incremental(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(res.Rows))
	}
	byPhase := map[string]IncrementalRow{}
	for _, r := range res.Rows {
		byPhase[r.Phase] = r
		if !r.Converged {
			t.Errorf("%s did not converge (%s after %d sweeps)", r.Phase, r.StopReason, r.Sweeps)
		}
	}
	if byPhase["cold_base"].WarmStart || byPhase["cold_full"].WarmStart {
		t.Error("cold rows flagged warm")
	}
	warm := byPhase["warm_full"]
	if !warm.WarmStart {
		t.Error("warm row not flagged warm")
	}
	if !res.WarmFaster {
		t.Errorf("warm_faster = false: cold %d sweeps, warm %d", res.ColdSweeps, res.WarmSweeps)
	}
	if warm.SweepsSaved <= byPhase["cold_full"].SweepsSaved {
		t.Errorf("warm saved %d sweeps of budget, cold saved %d — warm must leave more unused",
			warm.SweepsSaved, byPhase["cold_full"].SweepsSaved)
	}
	if !strings.Contains(buf.String(), "warm_faster=true") {
		t.Errorf("output missing verdict:\n%s", buf.String())
	}
}

func TestAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations run several solver configurations")
	}
	var buf bytes.Buffer
	cfg := fastCfg(&buf)
	cfg.K = 8
	rows, err := Ablations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	studies := map[string]int{}
	for _, r := range rows {
		studies[r.Study]++
	}
	if studies["scaling"] != 2 || studies["ksi-sweeps"] != 5 || studies["rsvd-eps"] != 4 {
		t.Errorf("unexpected study counts: %v", studies)
	}
	// RSVD error should not increase as eps tightens (allow small noise).
	var errs []float64
	for _, r := range rows {
		if r.Study == "rsvd-eps" {
			errs = append(errs, r.Metric)
		}
	}
	if len(errs) == 4 && errs[3] > errs[0]+0.05 {
		t.Errorf("sigma1 error grew as eps tightened: %v", errs)
	}
}
