package experiments

import (
	"fmt"
	"time"

	"gebe/internal/core"
	"gebe/internal/eval"
	"gebe/internal/gen"
	"gebe/internal/linalg"
	"gebe/internal/pmf"
)

// AblationRow records one design-choice ablation measurement.
type AblationRow struct {
	Study   string   `json:"study"`
	Setting string   `json:"setting"`
	Metric  float64  `json:"metric"`
	Elapsed Duration `json:"elapsed_seconds"`
}

// Ablations measures the repository's own design choices (DESIGN.md §4),
// beyond what the paper reports:
//
//  1. spectral scaling of W on/off (GEBE^p stability and accuracy);
//  2. KSI sweep budget (subspace quality vs time, standing in for the
//     plain-diag(R) vs Rayleigh–Ritz comparison, which differ exactly
//     when sweeps are scarce);
//  3. randomized-SVD ε (Krylov depth) against achieved singular-value
//     accuracy.
func Ablations(cfg Config) ([]AblationRow, error) {
	cfg, begun := cfg.begin("ablation")
	ds, err := gen.ByName("dblp")
	if err != nil {
		return nil, err
	}
	prep, err := prepare(ds, cfg.Seed, true)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow

	// 1. Spectral scaling on/off: weighted graphs keep λσ₁² well below
	// overflow only when scaled; measure F1 and report stability.
	fmt.Fprintf(cfg.Out, "\n== Ablation: spectral scaling (GEBE^p, %s) ==\n", ds.Name)
	var printed [][]string
	for _, noScale := range []bool{false, true} {
		setting := "scaled"
		if noScale {
			setting = "raw-weights"
		}
		sp := cfg.Trace.StartSpan("cell").Set("study", "scaling").Set("setting", setting)
		start := time.Now()
		emb, err := core.GEBEP(prep.train, core.Options{
			K: cfg.K, Lambda: 1, Epsilon: 0.1, Seed: cfg.Seed,
			Threads: cfg.Threads, NoScale: noScale, Trace: cfg.Trace,
		})
		elapsed := time.Since(start)
		sp.End()
		f1 := 0.0
		if err == nil && finiteMatrix(emb.U) {
			f1 = eval.TopN(prep.train, prep.test, emb.U, emb.V, 10, cfg.Threads).F1
		}
		rows = append(rows, AblationRow{Study: "scaling", Setting: setting, Metric: f1, Elapsed: Duration(elapsed)})
		printed = append(printed, []string{setting, fmt.Sprintf("%.3f", f1), fmt.Sprintf("%.2fs", elapsed.Seconds())})
	}
	printTable(cfg.Out, []string{"setting", "F1@10", "time"}, printed)

	// 2. KSI sweep budget: how many sweeps the GEBE eigenbasis needs.
	fmt.Fprintf(cfg.Out, "\n== Ablation: KSI sweep budget (GEBE Poisson, %s) ==\n", ds.Name)
	printed = nil
	for _, iters := range []int{1, 3, 10, 30, 100} {
		sp := cfg.Trace.StartSpan("cell").Set("study", "ksi-sweeps").Set("setting", iters)
		start := time.Now()
		// Adaptive stopping off: this study measures the quality a *fixed*
		// budget of t sweeps buys, so the controller must not cut it short.
		emb, err := core.GEBE(prep.train, core.Options{
			K: cfg.K, PMF: pmf.NewPoisson(1), Tau: 20, Iters: iters, Tol: 1e-12,
			Seed: cfg.Seed, Threads: cfg.Threads, NoAdaptiveStop: true, Trace: cfg.Trace,
		})
		elapsed := time.Since(start)
		sp.End()
		if err != nil {
			return nil, err
		}
		f1 := eval.TopN(prep.train, prep.test, emb.U, emb.V, 10, cfg.Threads).F1
		rows = append(rows, AblationRow{Study: "ksi-sweeps", Setting: fmt.Sprintf("t=%d", iters), Metric: f1, Elapsed: Duration(elapsed)})
		printed = append(printed, []string{fmt.Sprintf("%d", iters), fmt.Sprintf("%.3f", f1), fmt.Sprintf("%.2fs", elapsed.Seconds())})
	}
	printTable(cfg.Out, []string{"sweeps", "F1@10", "time"}, printed)

	// 3. RSVD ε vs σ accuracy: compare σ₁ estimates against a long power
	// iteration reference.
	fmt.Fprintf(cfg.Out, "\n== Ablation: randomized-SVD epsilon (sigma_1 accuracy, %s) ==\n", ds.Name)
	printed = nil
	w := core.WeightMatrix(prep.train)
	ref := linalg.TopSingularValue(w, 500, cfg.Seed, cfg.Threads)
	for _, eps := range []float64{0.5, 0.3, 0.1, 0.05} {
		sp := cfg.Trace.StartSpan("cell").Set("study", "rsvd-eps").Set("setting", eps)
		start := time.Now()
		res := linalg.RandomizedSVD(w, cfg.K, eps, cfg.Seed, cfg.Threads)
		elapsed := time.Since(start)
		sp.End()
		relErr := 0.0
		if ref > 0 {
			relErr = (ref - res.Sigma[0]) / ref
			if relErr < 0 {
				relErr = -relErr
			}
		}
		rows = append(rows, AblationRow{Study: "rsvd-eps", Setting: fmt.Sprintf("eps=%.2f", eps), Metric: relErr, Elapsed: Duration(elapsed)})
		printed = append(printed, []string{fmt.Sprintf("%.2f", eps),
			fmt.Sprintf("%d", res.KrylovDim), fmt.Sprintf("%.2e", relErr), fmt.Sprintf("%.2fs", elapsed.Seconds())})
	}
	printTable(cfg.Out, []string{"eps", "krylov-dim", "sigma1 rel err", "time"}, printed)
	return rows, cfg.writeManifest("ablation", rows, cfg.Trace, begun)
}

func finiteMatrix(m interface{ MaxAbs() float64 }) bool {
	mx := m.MaxAbs()
	return mx == mx && mx < 1e308 // NaN-safe finite check
}
