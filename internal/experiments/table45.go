package experiments

import (
	"fmt"

	"gebe/internal/eval"
	"gebe/internal/gen"
)

// Table4Row is one (method, dataset) recommendation result.
type Table4Row struct {
	Method  string   `json:"method"`
	Dataset string   `json:"dataset"`
	F1      float64  `json:"f1"`
	NDCG    float64  `json:"ndcg"`
	MRR     float64  `json:"mrr"`
	Elapsed Duration `json:"elapsed_seconds"`
	OK      bool     `json:"ok"`
	// Solver diagnostics (our methods only; empty for baselines).
	Sweeps      int    `json:"sweeps,omitempty"`
	SweepsSaved int    `json:"sweeps_saved,omitempty"`
	StopReason  string `json:"stop_reason,omitempty"`
}

// Table4 reproduces the paper's Table 4: top-N (N=10) recommendation on
// the five weighted stand-ins, reporting F1, NDCG and MRR per method.
func Table4(cfg Config) ([]Table4Row, error) {
	cfg, start := cfg.begin("table4")
	const n = 10
	names := sortedNames(cfg, gen.WeightedNames())
	specs := Methods(cfg)
	var rows []Table4Row
	for _, name := range names {
		ds, err := gen.ByName(name)
		if err != nil {
			return nil, err
		}
		prep, err := prepare(ds, cfg.Seed, true)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(cfg.Out, "\n== Table 4: top-%d recommendation on %s (%v) ==\n", n, name, prep.train.Stats())
		var printed [][]string
		for _, spec := range specs {
			u, v, info, elapsed, ok := timedRun(cfg, spec, prep.train, name)
			row := Table4Row{Method: spec.Name, Dataset: name, Elapsed: Duration(elapsed), OK: ok,
				Sweeps: info.Sweeps, SweepsSaved: info.SweepsSaved, StopReason: info.StopReason}
			if ok {
				res := eval.TopN(prep.train, prep.test, u, v, n, cfg.Threads)
				row.F1, row.NDCG, row.MRR = res.F1, res.NDCG, res.MRR
			}
			rows = append(rows, row)
			printed = append(printed, []string{
				spec.Name,
				fmtCell(row.F1, ok), fmtCell(row.NDCG, ok), fmtCell(row.MRR, ok),
				fmt.Sprintf("%.1fs", elapsed.Seconds()),
			})
		}
		printTable(cfg.Out, []string{"Method", "F1@10", "NDCG@10", "MRR@10", "time"}, printed)
	}
	return rows, cfg.writeManifest("table4", rows, cfg.Trace, start)
}

// Table5Row is one (method, dataset) link-prediction result.
type Table5Row struct {
	Method  string   `json:"method"`
	Dataset string   `json:"dataset"`
	AUCROC  float64  `json:"auc_roc"`
	AUCPR   float64  `json:"auc_pr"`
	Elapsed Duration `json:"elapsed_seconds"`
	OK      bool     `json:"ok"`
	// Solver diagnostics (our methods only; empty for baselines).
	Sweeps      int    `json:"sweeps,omitempty"`
	SweepsSaved int    `json:"sweeps_saved,omitempty"`
	StopReason  string `json:"stop_reason,omitempty"`
}

// Table5 reproduces the paper's Table 5: link prediction on the five
// unweighted stand-ins with a logistic-regression classifier over
// concatenated embeddings, reporting AUC-ROC and AUC-PR.
func Table5(cfg Config) ([]Table5Row, error) {
	cfg, start := cfg.begin("table5")
	names := sortedNames(cfg, gen.UnweightedNames())
	specs := Methods(cfg)
	var rows []Table5Row
	for _, name := range names {
		ds, err := gen.ByName(name)
		if err != nil {
			return nil, err
		}
		prep, err := prepare(ds, cfg.Seed, false)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(cfg.Out, "\n== Table 5: link prediction on %s (%v) ==\n", name, prep.train.Stats())
		var printed [][]string
		for _, spec := range specs {
			u, v, info, elapsed, ok := timedRun(cfg, spec, prep.train, name)
			row := Table5Row{Method: spec.Name, Dataset: name, Elapsed: Duration(elapsed), OK: ok,
				Sweeps: info.Sweeps, SweepsSaved: info.SweepsSaved, StopReason: info.StopReason}
			if ok {
				res, err := eval.LinkPred(prep.full, prep.train, prep.test, u, v,
					eval.LinkPredOptions{Seed: cfg.Seed + 17, Features: cfg.LPFeatures})
				if err != nil {
					row.OK = false
				} else {
					row.AUCROC, row.AUCPR = res.AUCROC, res.AUCPR
				}
			}
			rows = append(rows, row)
			printed = append(printed, []string{
				spec.Name,
				fmtCell(row.AUCROC, row.OK), fmtCell(row.AUCPR, row.OK),
				fmt.Sprintf("%.1fs", elapsed.Seconds()),
			})
		}
		printTable(cfg.Out, []string{"Method", "AUC-ROC", "AUC-PR", "time"}, printed)
	}
	return rows, cfg.writeManifest("table5", rows, cfg.Trace, start)
}
