package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func fastCfg(out *bytes.Buffer) Config {
	return Config{
		K:          16,
		Seed:       1,
		Threads:    2,
		TimeBudget: 2 * time.Minute,
		Out:        out,
	}
}

func TestMethodsRoster(t *testing.T) {
	var buf bytes.Buffer
	specs := Methods(fastCfg(&buf))
	if len(specs) != 16 {
		t.Fatalf("want 16 methods (6 ours + 10 competitors), got %d", len(specs))
	}
	if specs[0].Name != "GEBE^p" || !specs[0].Ours {
		t.Errorf("GEBE^p must lead the roster, got %q", specs[0].Name)
	}
	// Filtering.
	cfg := fastCfg(&buf)
	cfg.Methods = []string{"NRP", "GEBE^p"}
	if got := Methods(cfg); len(got) != 2 {
		t.Errorf("method filter broken: %d", len(got))
	}
}

func TestTable4SmokeDBLP(t *testing.T) {
	var buf bytes.Buffer
	cfg := fastCfg(&buf)
	cfg.Datasets = []string{"dblp"}
	cfg.Methods = []string{"GEBE^p", "GEBE (Poisson)", "NRP", "BPR"}
	rows, err := Table4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if !r.OK {
			t.Errorf("%s timed out or failed on dblp", r.Method)
			continue
		}
		if r.F1 < 0 || r.F1 > 1 || r.NDCG < 0 || r.NDCG > 1 || r.MRR < 0 || r.MRR > 1 {
			t.Errorf("%s: metrics out of range: %+v", r.Method, r)
		}
		if r.F1 == 0 {
			t.Errorf("%s: F1 exactly zero is implausible on the structured stand-in", r.Method)
		}
	}
	if !strings.Contains(buf.String(), "Table 4") {
		t.Error("output missing table header")
	}
}

func TestTable5SmokeWikipedia(t *testing.T) {
	var buf bytes.Buffer
	cfg := fastCfg(&buf)
	cfg.Datasets = []string{"wikipedia"}
	cfg.Methods = []string{"GEBE^p", "LINE", "NRP"}
	rows, err := Table5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if !r.OK {
			t.Errorf("%s failed", r.Method)
			continue
		}
		if r.AUCROC < 0.5 {
			t.Errorf("%s: AUC-ROC %.3f below chance", r.Method, r.AUCROC)
		}
	}
}

func TestFig2Smoke(t *testing.T) {
	var buf bytes.Buffer
	cfg := fastCfg(&buf)
	cfg.Datasets = []string{"dblp"}
	cfg.Methods = []string{"GEBE^p", "GEBE (Poisson)"}
	rows, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	var gp, gpois Duration
	for _, r := range rows {
		if !r.OK {
			t.Fatalf("%s failed", r.Method)
		}
		switch r.Method {
		case "GEBE^p":
			gp = r.Elapsed
		case "GEBE (Poisson)":
			gpois = r.Elapsed
			// The manifest must explain how the KSI run ended so sweep
			// counts are comparable across configurations.
			if r.Sweeps == 0 || r.StopReason == "" {
				t.Errorf("GEBE row missing solver diagnostics: sweeps=%d stop_reason=%q", r.Sweeps, r.StopReason)
			}
		}
	}
	// The paper's headline: GEBE^p is faster than GEBE.
	if gp > gpois {
		t.Errorf("GEBE^p (%v) slower than GEBE (Poisson) (%v)", gp, gpois)
	}
}

func TestFig3SmokeTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("fig3 runs full-size grids")
	}
	// Fig3 at its real sizes takes minutes; exercised by the benchmark
	// harness. Here we only validate the ER helper.
	g, err := erGraph(100, 100, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1000 {
		t.Errorf("ER helper produced %d edges", g.NumEdges())
	}
}

func TestConfigFilters(t *testing.T) {
	cfg := Config{Datasets: []string{"dblp"}, Methods: []string{"NRP"}}
	if !cfg.wantDataset("dblp") || cfg.wantDataset("mag") {
		t.Error("dataset filter broken")
	}
	if !cfg.wantMethod("NRP") || cfg.wantMethod("BPR") {
		t.Error("method filter broken")
	}
	open := Config{}
	if !open.wantDataset("anything") || !open.wantMethod("anything") {
		t.Error("empty filters must accept everything")
	}
}
