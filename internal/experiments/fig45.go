package experiments

import (
	"fmt"
	"time"

	"gebe/internal/core"
	"gebe/internal/eval"
	"gebe/internal/gen"
	"gebe/internal/pmf"
)

// SweepRow is one parameter-sweep measurement: metric value at one
// parameter setting on one dataset.
type SweepRow struct {
	Dataset string  `json:"dataset"`
	Param   string  `json:"param"`
	Value   float64 `json:"value"`  // parameter value
	Metric  float64 `json:"metric"` // F1@10 (Fig 4) or AUC-ROC (Fig 5)
}

// fig45 datasets follow §6.5: recommendation sweeps on weighted
// stand-ins, link-prediction sweeps on unweighted ones. Three stand-ins
// per figure keep the suite fast (the paper plots 3–4 lines each).
var (
	fig4Datasets = []string{"dblp", "movielens", "lastfm"}
	fig5Datasets = []string{"wikipedia", "pinterest", "yelp"}
)

// Fig4 reproduces the paper's Figure 4: top-10 recommendation F1 of
// GEBE^p varying λ ∈ {1..5} and ε ∈ {0.1..0.9}, and of GEBE (Poisson)
// varying τ ∈ {1,2,5,10,20,30}.
func Fig4(cfg Config) ([]SweepRow, error) {
	cfg, start := cfg.begin("fig4")
	return paramSweep(cfg, "fig4", start, fig4Datasets, true)
}

// Fig5 reproduces the paper's Figure 5: the same sweeps measured by
// link-prediction AUC-ROC on unweighted stand-ins.
func Fig5(cfg Config) ([]SweepRow, error) {
	cfg, start := cfg.begin("fig5")
	return paramSweep(cfg, "fig5", start, fig5Datasets, false)
}

func paramSweep(cfg Config, exp string, start time.Time, datasets []string, rec bool) ([]SweepRow, error) {
	lambdas := []float64{1, 2, 3, 4, 5}
	epsilons := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	taus := []int{1, 2, 5, 10, 20, 30}
	metricName := "AUC-ROC"
	figName := "Figure 5"
	if rec {
		metricName = "F1@10"
		figName = "Figure 4"
	}
	var rows []SweepRow
	for _, name := range sortedNames(cfg, datasets) {
		ds, err := gen.ByName(name)
		if err != nil {
			return nil, err
		}
		prep, err := prepare(ds, cfg.Seed, rec)
		if err != nil {
			return nil, err
		}
		evalEmb := func(e *core.Embedding) float64 {
			if rec {
				return eval.TopN(prep.train, prep.test, e.U, e.V, 10, cfg.Threads).F1
			}
			res, err := eval.LinkPred(prep.full, prep.train, prep.test, e.U, e.V,
				eval.LinkPredOptions{Seed: cfg.Seed + 17})
			if err != nil {
				return 0
			}
			return res.AUCROC
		}

		fmt.Fprintf(cfg.Out, "\n== %s on %s: GEBE^p varying lambda (%s) ==\n", figName, name, metricName)
		var printed [][]string
		for _, lam := range lambdas {
			sp := cfg.Trace.StartSpan("cell").Set("dataset", name).Set("param", "lambda").Set("value", lam)
			e, err := core.GEBEP(prep.train, core.Options{K: cfg.K, Lambda: lam, Epsilon: 0.1,
				PMF: pmf.NewPoisson(lam), Seed: cfg.Seed, Threads: cfg.Threads, Trace: cfg.Trace})
			sp.End()
			if err != nil {
				return nil, err
			}
			m := evalEmb(e)
			rows = append(rows, SweepRow{Dataset: name, Param: "lambda", Value: lam, Metric: m})
			printed = append(printed, []string{fmt.Sprintf("%.0f", lam), fmt.Sprintf("%.3f", m)})
		}
		printTable(cfg.Out, []string{"lambda", metricName}, printed)

		fmt.Fprintf(cfg.Out, "\n== %s on %s: GEBE^p varying epsilon (%s) ==\n", figName, name, metricName)
		printed = nil
		for _, eps := range epsilons {
			sp := cfg.Trace.StartSpan("cell").Set("dataset", name).Set("param", "epsilon").Set("value", eps)
			e, err := core.GEBEP(prep.train, core.Options{K: cfg.K, Lambda: 1, Epsilon: eps,
				Seed: cfg.Seed, Threads: cfg.Threads, Trace: cfg.Trace})
			sp.End()
			if err != nil {
				return nil, err
			}
			m := evalEmb(e)
			rows = append(rows, SweepRow{Dataset: name, Param: "epsilon", Value: eps, Metric: m})
			printed = append(printed, []string{fmt.Sprintf("%.1f", eps), fmt.Sprintf("%.3f", m)})
		}
		printTable(cfg.Out, []string{"epsilon", metricName}, printed)

		fmt.Fprintf(cfg.Out, "\n== %s on %s: GEBE (Poisson) varying tau (%s) ==\n", figName, name, metricName)
		printed = nil
		for _, tau := range taus {
			sp := cfg.Trace.StartSpan("cell").Set("dataset", name).Set("param", "tau").Set("value", tau)
			e, err := core.GEBE(prep.train, core.Options{K: cfg.K, PMF: pmf.NewPoisson(1),
				Tau: tau, Iters: 200, Tol: 1e-5, Seed: cfg.Seed, Threads: cfg.Threads, Trace: cfg.Trace})
			sp.End()
			if err != nil {
				return nil, err
			}
			m := evalEmb(e)
			rows = append(rows, SweepRow{Dataset: name, Param: "tau", Value: float64(tau), Metric: m})
			printed = append(printed, []string{fmt.Sprintf("%d", tau), fmt.Sprintf("%.3f", m)})
		}
		printTable(cfg.Out, []string{"tau", metricName}, printed)
	}
	return rows, cfg.writeManifest(exp, rows, cfg.Trace, start)
}
