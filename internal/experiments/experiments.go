// Package experiments regenerates the paper's evaluation section on the
// synthetic stand-in datasets: Table 4 (top-N recommendation), Table 5
// (link prediction), Figure 2 (embedding time for all methods on all ten
// datasets), Figure 3 (scalability on bipartite Erdős–Rényi graphs), and
// Figures 4–5 (parameter sweeps for λ, ε and τ). See DESIGN.md §2 for
// the experiment index and EXPERIMENTS.md for paper-vs-measured results.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"gebe/internal/baselines"
	"gebe/internal/bigraph"
	"gebe/internal/core"
	"gebe/internal/dense"
	"gebe/internal/eval"
	"gebe/internal/gen"
	"gebe/internal/obs"
	"gebe/internal/pmf"
)

// Config controls a harness run.
type Config struct {
	// K is the embedding dimensionality. The paper uses 128 on the
	// full-size datasets; the default 32 matches the ~30× smaller
	// stand-ins.
	K int
	// Seed drives dataset generation, splits and every solver.
	Seed uint64
	// Threads caps solver parallelism (default 1, the paper's setting).
	Threads int
	// TimeBudget bounds each (method, dataset) cell; methods that exceed
	// it are reported as "-", mirroring the paper's three-day cutoff
	// (default 60s).
	TimeBudget time.Duration
	// Deadline optionally bounds the whole harness run with an absolute
	// cutoff. Cells whose per-cell budget would outlast it are clamped to
	// it, so one slow method cannot push the harness past the cutoff.
	// Zero means no overall limit.
	Deadline time.Time
	// Datasets optionally restricts runs to the named stand-ins.
	Datasets []string
	// Methods optionally restricts runs to the named methods.
	Methods []string
	// LPFeatures selects the link-prediction pair feature map (default
	// FeatureConcat, the paper's protocol; see eval.FeatureMode).
	LPFeatures eval.FeatureMode
	// Out receives the formatted tables (required).
	Out io.Writer
	// ManifestDir, when non-empty, makes each experiment write a
	// machine-readable run manifest (RUN_<exp>.json: config, rows, phase
	// trace, memory stats) into that directory.
	ManifestDir string
	// Trace receives the experiment's phase spans; the paper's solvers
	// nest their own spans under it. When nil, each experiment creates a
	// private trace so the manifest is always complete.
	Trace *obs.Trace
}

// begin normalizes cfg for one experiment run: defaults applied, a trace
// rooted at the experiment name, and the start time for the manifest.
func (c Config) begin(exp string) (Config, time.Time) {
	c = c.withDefaults()
	if c.Trace == nil {
		c.Trace = obs.NewTrace(exp)
	}
	return c, time.Now()
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 32
	}
	if c.Threads == 0 {
		c.Threads = 1
	}
	if c.TimeBudget == 0 {
		c.TimeBudget = 60 * time.Second
	}
	return c
}

func (c Config) wantDataset(name string) bool {
	if len(c.Datasets) == 0 {
		return true
	}
	for _, d := range c.Datasets {
		if d == name {
			return true
		}
	}
	return false
}

func (c Config) wantMethod(name string) bool {
	if len(c.Methods) == 0 {
		return true
	}
	for _, m := range c.Methods {
		if m == name {
			return true
		}
	}
	return false
}

// RunInfo carries solver diagnostics from one cell into the tables and
// manifests. Baselines report the zero value.
type RunInfo struct {
	// Sweeps is the number of KSI sweeps the solver used (0 for GEBE^p
	// and the baselines).
	Sweeps int `json:"sweeps"`
	// SweepsSaved is the part of the sweep budget the adaptive stopping
	// controller (or convergence) left unused.
	SweepsSaved int `json:"sweeps_saved"`
	// StopReason explains why the solver stopped ("converged",
	// "stagnated", "tol-unreachable", "sweep-budget"; empty for
	// baselines).
	StopReason string `json:"stop_reason,omitempty"`
}

// Spec is one embedding method under test.
type Spec struct {
	Name string
	Run  func(g *bigraph.Graph, deadline time.Time) (u, v *dense.Matrix, info RunInfo, err error)
	// Ours marks the paper's methods (printed first, like the tables).
	Ours bool
}

// Methods returns the full method roster for cfg: the paper's methods
// (GEBE^p, three GEBE instantiations, the two ablations) followed by the
// re-implemented competitors.
func Methods(cfg Config) []Spec {
	cfg = cfg.withDefaults()
	k, seed, threads := cfg.K, cfg.Seed, cfg.Threads
	ours := func(name string, f func(*bigraph.Graph, core.Options) (*core.Embedding, error), opt core.Options) Spec {
		return Spec{Name: name, Ours: true, Run: func(g *bigraph.Graph, deadline time.Time) (*dense.Matrix, *dense.Matrix, RunInfo, error) {
			o := opt
			o.K = k
			o.Seed = seed
			o.Threads = threads
			o.Deadline = deadline
			o.Trace = cfg.Trace
			e, err := f(g, o)
			if err != nil {
				return nil, nil, RunInfo{}, err
			}
			info := RunInfo{Sweeps: e.Sweeps, SweepsSaved: e.SweepsSaved, StopReason: e.StopReason}
			return e.U, e.V, info, nil
		}}
	}
	specs := []Spec{
		ours("GEBE^p", core.GEBEP, core.Options{Lambda: 1, Epsilon: 0.1}),
		ours("GEBE (Poisson)", core.GEBE, core.Options{PMF: pmf.NewPoisson(1), Tau: 20, Iters: 200, Tol: 1e-5}),
		ours("GEBE (Geometric)", core.GEBE, core.Options{PMF: pmf.NewGeometric(0.5), Tau: 20, Iters: 200, Tol: 1e-5}),
		ours("GEBE (Uniform)", core.GEBE, core.Options{PMF: pmf.NewUniform(20), Tau: 20, Iters: 200, Tol: 1e-5}),
		ours("MHP-BNE", core.MHPBNE, core.Options{PMF: pmf.NewPoisson(1), Tau: 20, Iters: 200, Tol: 1e-5}),
		ours("MHS-BNE", core.MHSBNE, core.Options{PMF: pmf.NewPoisson(1), Tau: 20, Iters: 200, Tol: 1e-5}),
	}
	for _, m := range baselines.All() {
		m := m
		specs = append(specs, Spec{Name: m.Name, Run: func(g *bigraph.Graph, deadline time.Time) (*dense.Matrix, *dense.Matrix, RunInfo, error) {
			u, v, err := m.Train(g, k, seed, threads, deadline)
			return u, v, RunInfo{}, err
		}})
	}
	var filtered []Spec
	for _, s := range specs {
		if cfg.wantMethod(s.Name) {
			filtered = append(filtered, s)
		}
	}
	return filtered
}

// timedRun executes spec.Run under cfg.TimeBudget. The deadline is
// cooperative — every solver checks it at sweep/epoch granularity and
// aborts with budget.ErrExceeded — so a timed-out method releases the
// machine instead of lingering; overruns report ok=false, which the
// tables print as the paper's "-". Each cell gets a span in cfg.Trace;
// the paper's solvers nest their phase spans beneath it.
func timedRun(cfg Config, spec Spec, g *bigraph.Graph, dataset string) (u, v *dense.Matrix, info RunInfo, elapsed time.Duration, ok bool) {
	sp := cfg.Trace.StartSpan("cell").Set("method", spec.Name).Set("dataset", dataset)
	start := time.Now()
	cellDeadline := start.Add(cfg.TimeBudget)
	if !cfg.Deadline.IsZero() && cfg.Deadline.Before(cellDeadline) {
		cellDeadline = cfg.Deadline
	}
	ru, rv, ri, err := spec.Run(g, cellDeadline)
	elapsed = time.Since(start)
	ok = err == nil
	sp.Set("ok", ok)
	if ri.StopReason != "" {
		sp.Set("stop_reason", ri.StopReason).Set("sweeps", ri.Sweeps)
	}
	sp.End()
	if !ok {
		return nil, nil, RunInfo{}, elapsed, false
	}
	return ru, rv, ri, elapsed, true
}

// prepared caches one dataset's graph and split so multiple experiments
// share the work.
type prepared struct {
	ds          gen.Dataset
	full, train *bigraph.Graph
	test        []bigraph.Edge
}

// prepare builds the stand-in, applies the k-core for recommendation
// datasets (per §6.3's 10-core protocol, scaled), and splits 60/40.
func prepare(ds gen.Dataset, seed uint64, rec bool) (*prepared, error) {
	g, err := ds.Build(seed)
	if err != nil {
		return nil, err
	}
	if rec && ds.CoreK > 1 {
		g, _, _ = g.KCore(ds.CoreK)
		if g.NumEdges() == 0 {
			return nil, fmt.Errorf("experiments: %s: %d-core is empty", ds.Name, ds.CoreK)
		}
	}
	train, test := g.Split(0.6, seed^0x517cc1b727220a95)
	return &prepared{ds: ds, full: g, train: train, test: test}, nil
}

// fmtCell renders a metric, or "-" for a timed-out/failed method.
func fmtCell(v float64, ok bool) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

// printTable writes an aligned table.
func printTable(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = dashes(widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}

// sortedNames returns dataset names filtered by cfg, in registry order.
func sortedNames(cfg Config, names []string) []string {
	var out []string
	for _, n := range names {
		if cfg.wantDataset(n) {
			out = append(out, n)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return registryIndex(out[i]) < registryIndex(out[j]) })
	return out
}

func registryIndex(name string) int {
	for i, d := range gen.Datasets() {
		if d.Name == name {
			return i
		}
	}
	return 1 << 30
}
