package experiments

import (
	"fmt"

	"gebe/internal/eval"
	"gebe/internal/gen"
)

// TableNRow is one (method, dataset, N) recommendation result — the
// varying-N study the paper reports in its technical-report appendix
// (N ∈ {1, 5, 10, 20, 30}).
type TableNRow struct {
	Method  string   `json:"method"`
	Dataset string   `json:"dataset"`
	N       int      `json:"n"`
	F1      float64  `json:"f1"`
	NDCG    float64  `json:"ndcg"`
	MRR     float64  `json:"mrr"`
	Elapsed Duration `json:"elapsed_seconds"`
	OK      bool     `json:"ok"`
}

// TableN runs the appendix experiment: top-N recommendation at several
// cutoffs. To keep the sweep affordable it embeds each method once per
// dataset and re-ranks for every N.
func TableN(cfg Config, ns []int) ([]TableNRow, error) {
	cfg, start := cfg.begin("tablen")
	if len(ns) == 0 {
		ns = []int{1, 5, 10, 20, 30}
	}
	names := sortedNames(cfg, gen.WeightedNames())
	specs := Methods(cfg)
	var rows []TableNRow
	for _, name := range names {
		ds, err := gen.ByName(name)
		if err != nil {
			return nil, err
		}
		prep, err := prepare(ds, cfg.Seed, true)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(cfg.Out, "\n== Appendix: top-N sweep on %s (%v) ==\n", name, prep.train.Stats())
		var printed [][]string
		for _, spec := range specs {
			u, v, _, elapsed, ok := timedRun(cfg, spec, prep.train, name)
			line := []string{spec.Name}
			for _, n := range ns {
				row := TableNRow{Method: spec.Name, Dataset: name, N: n, Elapsed: Duration(elapsed), OK: ok}
				if ok {
					res := eval.TopN(prep.train, prep.test, u, v, n, cfg.Threads)
					row.F1, row.NDCG, row.MRR = res.F1, res.NDCG, res.MRR
				}
				rows = append(rows, row)
				line = append(line, fmtCell(row.F1, ok))
			}
			printed = append(printed, line)
		}
		header := []string{"Method"}
		for _, n := range ns {
			header = append(header, fmt.Sprintf("F1@%d", n))
		}
		printTable(cfg.Out, header, printed)
	}
	return rows, cfg.writeManifest("tablen", rows, cfg.Trace, start)
}
