package experiments

import (
	"fmt"

	"gebe/internal/gen"
)

// Fig2Row is one (method, dataset) timing measurement.
type Fig2Row struct {
	Method  string   `json:"method"`
	Dataset string   `json:"dataset"`
	Elapsed Duration `json:"elapsed_seconds"`
	OK      bool     `json:"ok"`
	// Solver diagnostics (zero for baselines): sweeps actually run, the
	// part of the sweep budget the adaptive controller saved, and why the
	// solver stopped.
	Sweeps      int    `json:"sweeps"`
	SweepsSaved int    `json:"sweeps_saved"`
	StopReason  string `json:"stop_reason,omitempty"`
}

// Fig2 reproduces the paper's Figure 2: wall-clock embedding
// construction time for every method on all ten stand-ins (time to build
// embeddings only — loading and output are excluded, as in §6.2).
func Fig2(cfg Config) ([]Fig2Row, error) {
	cfg, start := cfg.begin("fig2")
	specs := Methods(cfg)
	var rows []Fig2Row
	all := make([]string, 0, 10)
	for _, d := range gen.Datasets() {
		all = append(all, d.Name)
	}
	for _, name := range sortedNames(cfg, all) {
		ds, err := gen.ByName(name)
		if err != nil {
			return nil, err
		}
		g, err := ds.Build(cfg.Seed)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(cfg.Out, "\n== Figure 2: embedding time on %s (%v) ==\n", name, g.Stats())
		var printed [][]string
		for _, spec := range specs {
			_, _, info, elapsed, ok := timedRun(cfg, spec, g, name)
			rows = append(rows, Fig2Row{Method: spec.Name, Dataset: name, Elapsed: Duration(elapsed), OK: ok,
				Sweeps: info.Sweeps, SweepsSaved: info.SweepsSaved, StopReason: info.StopReason})
			cell := "-"
			if ok {
				cell = fmt.Sprintf("%.2fs", elapsed.Seconds())
			}
			printed = append(printed, []string{spec.Name, cell})
		}
		printTable(cfg.Out, []string{"Method", "time"}, printed)
	}
	return rows, cfg.writeManifest("fig2", rows, cfg.Trace, start)
}
