package experiments

import (
	"fmt"
	"math/rand/v2"
	"time"

	"gebe/internal/bigraph"
	"gebe/internal/core"
)

// IncrementalRow is one solve in the continuous-update scenario: the
// same GEBE configuration run cold on the base graph, cold on the grown
// graph, and warm-started on the grown graph from the base embedding.
type IncrementalRow struct {
	Phase       string   `json:"phase"` // cold_base | cold_full | warm_full
	Nodes       int      `json:"nodes"`
	Edges       int      `json:"edges"`
	WarmStart   bool     `json:"warm_start"`
	Sweeps      int      `json:"sweeps"`
	SweepsSaved int      `json:"sweeps_saved"`
	StopReason  string   `json:"stop_reason"`
	Converged   bool     `json:"converged"`
	Elapsed     Duration `json:"elapsed_seconds"`
}

// IncrementalResult is the manifest payload: the three rows plus the
// headline verdict the regression gate and CI assert on.
type IncrementalResult struct {
	Rows []IncrementalRow `json:"rows"`
	// WarmFaster is the experiment's claim: the warm-started solve on the
	// grown graph converged in fewer sweeps than the cold solve, with
	// budget left over. Sweep counts are deterministic for a fixed seed,
	// so this flag is stable where wall-clock would be noisy.
	WarmFaster bool `json:"warm_faster"`
	// ColdSweeps/WarmSweeps are the full-graph sweep counts behind the flag.
	ColdSweeps int `json:"cold_sweeps"`
	WarmSweeps int `json:"warm_sweeps"`
}

// Incremental measures what the warm-start entry points buy in the
// continuous-update loop gebe-serve's hot swap closes: retrain on a
// slightly grown graph starting from yesterday's embedding instead of
// from scratch.
//
// The graph is a planted co-cluster bipartite graph rather than one of
// the ER stand-ins: the cluster structure gives the modulation matrix a
// clear spectral gap after the top-c eigenvalues, so KSI at K=c
// genuinely converges — on ER spectra the solver runs to its sweep
// budget cold and warm alike and the comparison measures nothing. For
// the same reason K is pinned to the planted cluster count instead of
// cfg.K.
func Incremental(cfg Config) (*IncrementalResult, error) {
	cfg, begun := cfg.begin("incremental")
	const (
		nu, nv   = 240, 160
		clusters = 4
		pin      = 0.4
		pout     = 0.02
	)
	base, err := plantedCoCluster(nu, nv, clusters, pin, pout, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: incremental: %w", err)
	}
	// Grow by ~2% fresh edges: the overnight-batch shape the warm start
	// exists for — the spectrum moves a little, the basis barely.
	extra := base.NumEdges() / 50
	full, err := addFreshEdges(base, extra, cfg.Seed^0xda3e39cb94b95bdb)
	if err != nil {
		return nil, fmt.Errorf("experiments: incremental: %w", err)
	}

	var rows []IncrementalRow
	solve := func(phase string, g *bigraph.Graph, warm *core.Embedding) (*core.Embedding, error) {
		opt := core.Options{
			K: clusters, Seed: cfg.Seed, Threads: cfg.Threads,
			Deadline: time.Now().Add(cfg.TimeBudget), Trace: cfg.Trace,
			WarmStart: warm,
		}
		sp := cfg.Trace.StartSpan("cell").Set("phase", phase).Set("warm", warm != nil)
		start := time.Now()
		e, err := core.GEBE(g, opt)
		elapsed := time.Since(start)
		sp.Set("ok", err == nil)
		if err == nil {
			sp.Set("sweeps", e.Sweeps).Set("stop_reason", e.StopReason)
		}
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("experiments: incremental %s: %w", phase, err)
		}
		rows = append(rows, IncrementalRow{
			Phase: phase, Nodes: g.NU + g.NV, Edges: g.NumEdges(),
			WarmStart: e.WarmStarted, Sweeps: e.Sweeps, SweepsSaved: e.SweepsSaved,
			StopReason: e.StopReason, Converged: e.Converged, Elapsed: Duration(elapsed),
		})
		return e, nil
	}

	fmt.Fprintf(cfg.Out, "\n== Incremental warm-start: planted %dx%d (c=%d), +%d edges ==\n",
		nu, nv, clusters, extra)
	baseEmb, err := solve("cold_base", base, nil)
	if err != nil {
		return nil, err
	}
	coldFull, err := solve("cold_full", full, nil)
	if err != nil {
		return nil, err
	}
	warmFull, err := solve("warm_full", full, baseEmb)
	if err != nil {
		return nil, err
	}

	res := &IncrementalResult{
		Rows:       rows,
		WarmFaster: warmFull.Sweeps < coldFull.Sweeps && warmFull.SweepsSaved > 0,
		ColdSweeps: coldFull.Sweeps,
		WarmSweeps: warmFull.Sweeps,
	}
	var printed [][]string
	for _, r := range rows {
		printed = append(printed, []string{
			r.Phase, fmt.Sprintf("%d", r.Edges), fmt.Sprintf("%v", r.WarmStart),
			fmt.Sprintf("%d", r.Sweeps), fmt.Sprintf("%d", r.SweepsSaved),
			r.StopReason, fmt.Sprintf("%.3fs", r.Elapsed.Seconds()),
		})
	}
	printTable(cfg.Out, []string{"phase", "edges", "warm", "sweeps", "saved", "stop", "time"}, printed)
	fmt.Fprintf(cfg.Out, "warm_faster=%v (cold %d sweeps, warm %d)\n",
		res.WarmFaster, res.ColdSweeps, res.WarmSweeps)
	return res, cfg.writeManifest("incremental", res, cfg.Trace, begun)
}

// plantedCoCluster builds a bipartite graph with c planted co-clusters:
// within-cluster pairs connect with probability pin, cross-cluster with
// pout.
func plantedCoCluster(nu, nv, c int, pin, pout float64, seed uint64) (*bigraph.Graph, error) {
	rng := rand.New(rand.NewPCG(seed, seed+7))
	var edges []bigraph.Edge
	for u := 0; u < nu; u++ {
		for v := 0; v < nv; v++ {
			p := pout
			if u*c/nu == v*c/nv {
				p = pin
			}
			if rng.Float64() < p {
				edges = append(edges, bigraph.Edge{U: u, V: v, W: 1})
			}
		}
	}
	return bigraph.New(nu, nv, edges)
}

// addFreshEdges returns g plus extra edges it does not already have.
func addFreshEdges(g *bigraph.Graph, extra int, seed uint64) (*bigraph.Graph, error) {
	edges := append([]bigraph.Edge(nil), g.Edges...)
	have := g.HasEdgeSet()
	rng := rand.New(rand.NewPCG(seed, seed+7))
	for added := 0; added < extra; {
		u, v := rng.IntN(g.NU), rng.IntN(g.NV)
		if have[bigraph.PackEdge(u, v)] {
			continue
		}
		have[bigraph.PackEdge(u, v)] = true
		edges = append(edges, bigraph.Edge{U: u, V: v, W: 1})
		added++
	}
	return bigraph.New(g.NU, g.NV, edges)
}
