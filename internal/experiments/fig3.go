package experiments

import (
	"fmt"
	"time"

	"gebe/internal/bigraph"
	"gebe/internal/core"
	"gebe/internal/gen"
	"gebe/internal/pmf"
)

// Fig3Row is one scalability measurement.
type Fig3Row struct {
	Method string `json:"method"`
	// Nodes is |U|+|V|; Edges is |E|.
	Nodes   int      `json:"nodes"`
	Edges   int      `json:"edges"`
	Elapsed Duration `json:"elapsed_seconds"`
}

// Fig3 reproduces the paper's Figure 3 scalability study on bipartite
// Erdős–Rényi graphs, scaled 200× down: (a) varying the node count at a
// fixed edge count, (b) varying the edge count at a fixed node count.
// Only GEBE (Poisson) and GEBE^p run, as in the paper.
func Fig3(cfg Config) ([]Fig3Row, error) {
	cfg, begun := cfg.begin("fig3")
	// Paper: nodes 2e5..1e6 at 1e7 edges; edges 2e7..1e8 at 1e6 nodes.
	// Scaled /200 with the same 5-point grids so the sweep finishes on a
	// single core.
	nodeGrid := []int{1000, 2000, 3000, 4000, 5000}
	const edgesForNodeGrid = 50000
	edgeGrid := []int{100000, 200000, 300000, 400000, 500000}
	const nodesForEdgeGrid = 5000

	var rows []Fig3Row
	runBoth := func(nu, nv, ne int) error {
		g, err := erGraph(nu, nv, ne, cfg.Seed)
		if err != nil {
			return err
		}
		for _, m := range []string{"GEBE (Poisson)", "GEBE^p"} {
			var elapsed time.Duration
			sp := cfg.Trace.StartSpan("cell").Set("method", m).Set("nodes", nu+nv).Set("edges", ne)
			start := time.Now()
			switch m {
			case "GEBE (Poisson)":
				// Fixed sweep count, adaptive stopping off: the measurement is
				// how time scales with graph size, and ER spectra have tiny
				// eigengaps that would otherwise make the stopping point (not
				// the per-sweep cost) dominate the curve.
				_, err = core.GEBE(g, core.Options{K: cfg.K, PMF: pmf.NewPoisson(1),
					Tau: 20, Iters: 30, Tol: 1e-9, Seed: cfg.Seed, Threads: cfg.Threads,
					NoAdaptiveStop: true, Trace: cfg.Trace})
			case "GEBE^p":
				_, err = core.GEBEP(g, core.Options{K: cfg.K, Lambda: 1, Epsilon: 0.1,
					Seed: cfg.Seed, Threads: cfg.Threads, Trace: cfg.Trace})
			}
			elapsed = time.Since(start)
			sp.Set("ok", err == nil)
			sp.End()
			if err != nil {
				return fmt.Errorf("experiments: fig3 %s on %d nodes / %d edges: %w", m, nu+nv, ne, err)
			}
			rows = append(rows, Fig3Row{Method: m, Nodes: nu + nv, Edges: ne, Elapsed: Duration(elapsed)})
		}
		return nil
	}

	fmt.Fprintf(cfg.Out, "\n== Figure 3(a): vary nodes, |E|=%d ==\n", edgesForNodeGrid)
	for _, n := range nodeGrid {
		if err := runBoth(n/2, n/2, edgesForNodeGrid); err != nil {
			return nil, err
		}
	}
	printFig3(cfg, rows[:0:0], rows, true, edgesForNodeGrid)

	before := len(rows)
	fmt.Fprintf(cfg.Out, "\n== Figure 3(b): vary edges, nodes=%d ==\n", nodesForEdgeGrid)
	for _, e := range edgeGrid {
		if err := runBoth(nodesForEdgeGrid/2, nodesForEdgeGrid/2, e); err != nil {
			return nil, err
		}
	}
	printFig3(cfg, rows[:before], rows[before:], false, nodesForEdgeGrid)
	return rows, cfg.writeManifest("fig3", rows, cfg.Trace, begun)
}

func printFig3(cfg Config, _, rows []Fig3Row, byNodes bool, fixed int) {
	var printed [][]string
	for _, r := range rows {
		x := r.Nodes
		if !byNodes {
			x = r.Edges
		}
		printed = append(printed, []string{r.Method, fmt.Sprintf("%d", x), fmt.Sprintf("%.2fs", r.Elapsed.Seconds())})
	}
	head := "nodes"
	if !byNodes {
		head = "edges"
	}
	printTable(cfg.Out, []string{"Method", head, "time"}, printed)
}

func erGraph(nu, nv, ne int, seed uint64) (*bigraph.Graph, error) {
	return gen.ER(nu, nv, ne, false, seed)
}
