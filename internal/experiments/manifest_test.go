package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"gebe/internal/obs"
)

// TestManifestWritten runs a one-cell Fig2 with ManifestDir set and
// checks the RUN_fig2.json manifest round-trips with rows, trace, and
// memory stats populated.
func TestManifestWritten(t *testing.T) {
	var buf bytes.Buffer
	cfg := fastCfg(&buf)
	cfg.Datasets = []string{"dblp"}
	cfg.Methods = []string{"GEBE^p"}
	cfg.ManifestDir = t.TempDir()
	if _, err := Fig2(cfg); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(cfg.ManifestDir, "RUN_fig2.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.Experiment != "fig2" || m.GoVersion == "" || m.ElapsedSeconds <= 0 {
		t.Errorf("header fields wrong: %+v", m)
	}
	if m.Config.K != cfg.K || m.Config.Threads != cfg.Threads {
		t.Errorf("config not recorded: %+v", m.Config)
	}
	rows, ok := m.Rows.([]any)
	if !ok || len(rows) != 1 {
		t.Fatalf("want 1 row, got %#v", m.Rows)
	}
	row := rows[0].(map[string]any)
	if row["method"] != "GEBE^p" || row["dataset"] != "dblp" || row["ok"] != true {
		t.Errorf("row fields wrong: %v", row)
	}
	if _, ok := row["elapsed_seconds"].(float64); !ok {
		t.Errorf("elapsed_seconds not a float: %v", row["elapsed_seconds"])
	}
	if m.Trace == nil || m.Trace.Name != "fig2" || len(m.Trace.Children) == 0 {
		t.Fatalf("trace missing or empty: %+v", m.Trace)
	}
	if m.Memory.SysBytes == 0 {
		t.Error("memory stats not recorded")
	}
}

// TestManifestCellSpans checks the experiment trace nests solver phase
// spans under each cell span.
func TestManifestCellSpans(t *testing.T) {
	var buf bytes.Buffer
	cfg := fastCfg(&buf)
	cfg.Datasets = []string{"dblp"}
	cfg.Methods = []string{"GEBE (Poisson)"}
	cfg.Trace = obs.NewTrace("test")
	if _, err := Fig2(cfg); err != nil {
		t.Fatal(err)
	}
	root := cfg.Trace.Root()
	var cell *obs.Span
	for _, c := range root.Children {
		if c.Name == "cell" {
			cell = c
		}
	}
	if cell == nil {
		t.Fatalf("no cell span in %+v", root.Children)
	}
	if cell.Attrs["method"] != "GEBE (Poisson)" || cell.Attrs["dataset"] != "dblp" {
		t.Errorf("cell attrs wrong: %v", cell.Attrs)
	}
	var solver bool
	for _, c := range cell.Children {
		if c.Name == "gebe" {
			solver = true
		}
	}
	if !solver {
		t.Errorf("solver span not nested under cell: %+v", cell.Children)
	}
}
