package dense

import (
	"fmt"

	"gebe/internal/par"
)

// The dense engine: tuned, parallel, allocation-aware entry points for
// the three GEMM orientations. Mirrors the sparse engine's shape: each
// orientation has a plain helper (allocates the result, default tuning),
// an Opts variant (explicit Tuning), and an Into variant (caller-owned
// destination, nothing allocated). Parallel scheduling partitions output
// rows across the shared internal/par pool, gated on the multiply-add
// count so small blocks never pay fork/join.

func checkMul(a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("dense: Mul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// MulOpts returns a·b under the given tuning.
func MulOpts(a, b *Matrix, t Tuning) *Matrix {
	checkMul(a, b)
	out := New(a.Rows, b.Cols)
	mulExec(out, a, b, t)
	return out
}

// MulInto computes a·b into dst and returns dst. dst must be
// a.Rows×b.Cols and must not alias a or b; its previous contents are
// discarded. Allocation-free on every path.
func MulInto(dst, a, b *Matrix, t Tuning) *Matrix {
	checkMul(a, b)
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("dense: MulInto destination is %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	clear(dst.Data)
	mulExec(dst, a, b, t)
	return dst
}

func mulExec(out, a, b *Matrix, t Tuning) {
	gm := gemms.Load()
	t0 := gemmNow(gm)
	inner, k := a.Cols, b.Cols
	flops := float64(a.Rows) * float64(inner) * float64(k)
	if t.Strategy == StrategyLegacy {
		mulGeneric(a.Data, b.Data, out.Data, inner, k, 0, a.Rows)
		gm.record(dopMul, t0, flops, "legacy", "generic")
		return
	}
	kern, kname := dispatchMul(k, t.Kernels)
	nw := t.workers(flops, a.Rows)
	if nw <= 1 {
		kern(a.Data, b.Data, out.Data, inner, k, 0, a.Rows)
		gm.record(dopMul, t0, flops, "serial", kname)
		return
	}
	rows := a.Rows
	par.Parts(nw, func(w int) {
		kern(a.Data, b.Data, out.Data, inner, k, rows*w/nw, rows*(w+1)/nw)
	})
	gm.record(dopMul, t0, flops, "rowpar", kname)
}

// MulTOpts returns a·bᵀ under the given tuning.
func MulTOpts(a, b *Matrix, t Tuning) *Matrix {
	checkMulT(a, b)
	out := New(a.Rows, b.Rows)
	mulTExec(out, a, b, t)
	return out
}

func checkMulT(a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("dense: MulT shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// MulTInto computes a·bᵀ into dst and returns dst. dst must be
// a.Rows×b.Rows and must not alias a or b; every element is overwritten.
// Allocation-free on every path.
func MulTInto(dst, a, b *Matrix, t Tuning) *Matrix {
	checkMulT(a, b)
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("dense: MulTInto destination is %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	mulTExec(dst, a, b, t)
	return dst
}

func mulTExec(out, a, b *Matrix, t Tuning) {
	gm := gemms.Load()
	t0 := gemmNow(gm)
	inner, p := a.Cols, b.Rows
	flops := float64(a.Rows) * float64(inner) * float64(p)
	if t.Strategy == StrategyLegacy {
		mulTGeneric(a.Data, b.Data, out.Data, inner, p, 0, a.Rows)
		gm.record(dopMulT, t0, flops, "legacy", "generic")
		return
	}
	kern, kname := dispatchMulT(p, t.Kernels)
	nw := t.workers(flops, a.Rows)
	if nw <= 1 {
		kern(a.Data, b.Data, out.Data, inner, p, 0, a.Rows)
		gm.record(dopMulT, t0, flops, "serial", kname)
		return
	}
	rows := a.Rows
	par.Parts(nw, func(w int) {
		kern(a.Data, b.Data, out.Data, inner, p, rows*w/nw, rows*(w+1)/nw)
	})
	gm.record(dopMulT, t0, flops, "rowpar", kname)
}

// TMulOpts returns aᵀ·b under the given tuning.
func TMulOpts(a, b *Matrix, t Tuning) *Matrix {
	checkTMul(a, b)
	out := New(a.Cols, b.Cols)
	tmulExec(out, a, b, t)
	return out
}

func checkTMul(a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("dense: TMul shape mismatch (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// TMulInto computes aᵀ·b into dst and returns dst. dst must be
// a.Cols×b.Cols and must not alias a or b; its previous contents are
// discarded. Allocation-free whenever the flop gate keeps the product
// sequential (always true for the solvers' k×k Gram blocks); the
// parallel path allocates per-worker partial accumulators.
func TMulInto(dst, a, b *Matrix, t Tuning) *Matrix {
	checkTMul(a, b)
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("dense: TMulInto destination is %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	clear(dst.Data)
	tmulExec(dst, a, b, t)
	return dst
}

func tmulExec(out, a, b *Matrix, t Tuning) {
	gm := gemms.Load()
	t0 := gemmNow(gm)
	k1, k2 := a.Cols, b.Cols
	flops := float64(a.Rows) * float64(k1) * float64(k2)
	if t.Strategy == StrategyLegacy {
		tmulGeneric(a.Data, b.Data, out.Data, k1, k2, 0, a.Rows)
		gm.record(dopTMul, t0, flops, "legacy", "generic")
		return
	}
	kern, kname := dispatchTMul(k1, k2, t.Kernels)
	nw := t.workers(flops, a.Rows)
	if nw <= 1 {
		kern(a.Data, b.Data, out.Data, k1, k2, 0, a.Rows)
		gm.record(dopTMul, t0, flops, "serial", kname)
		return
	}
	// Every worker reduces its row range into the full k1×k2 output, so
	// workers past the first accumulate into private partials that are
	// folded in afterwards.
	rows := a.Rows
	partials := make([]*Matrix, nw)
	partials[0] = out
	for w := 1; w < nw; w++ {
		partials[w] = New(k1, k2)
	}
	par.Parts(nw, func(w int) {
		kern(a.Data, b.Data, partials[w].Data, k1, k2, rows*w/nw, rows*(w+1)/nw)
	})
	for w := 1; w < nw; w++ {
		od := out.Data
		for i, v := range partials[w].Data {
			od[i] += v
		}
	}
	gm.record(dopTMul, t0, flops, "partials", kname)
}

// SubInto computes a−b elementwise into dst and returns dst. All three
// must share a shape; dst may alias a or b. Allocation-free.
func SubInto(dst, a, b *Matrix) *Matrix {
	sameShape(a, b, "SubInto")
	sameShape(dst, a, "SubInto")
	bd := b.Data
	dd := dst.Data
	for i, v := range a.Data {
		dd[i] = v - bd[i]
	}
	return dst
}
