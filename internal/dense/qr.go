package dense

import (
	"fmt"
	"math"
)

// QR computes the thin (economy) QR factorization of an m-by-n matrix A
// with m >= n using Householder reflections: A = Q·R with Q m-by-n having
// orthonormal columns and R n-by-n upper triangular.
//
// Householder QR is backwards stable, unlike classical Gram–Schmidt; this
// matters because the Krylov subspace iteration in GEBE re-orthonormalizes
// a nearly rank-deficient block every sweep.
func QR(a *Matrix) (q, r *Matrix) {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("dense: QR requires rows >= cols, got %dx%d", m, n))
	}
	// Work on a copy; we accumulate the Householder vectors in-place below
	// the diagonal and R above it.
	w := a.Clone()
	// betas[k] is the scalar of the k-th reflector H_k = I - beta v vᵀ.
	betas := make([]float64, n)
	for k := 0; k < n; k++ {
		// Compute the norm of the k-th column below (and including) row k.
		var norm float64
		for i := k; i < m; i++ {
			x := w.Data[i*n+k]
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			betas[k] = 0
			continue
		}
		alpha := w.Data[k*n+k]
		// Choose the sign that avoids cancellation.
		if alpha > 0 {
			norm = -norm
		}
		// v = x - norm*e1, stored in place with v[0] implicit.
		v0 := alpha - norm
		w.Data[k*n+k] = norm // R[k,k]
		// beta = 2 / (vᵀv); with v0 and the untouched tail.
		var vtv float64 = v0 * v0
		for i := k + 1; i < m; i++ {
			x := w.Data[i*n+k]
			vtv += x * x
		}
		if vtv == 0 {
			betas[k] = 0
			continue
		}
		beta := 2 / vtv
		betas[k] = beta
		// Apply H_k to the trailing columns: for each column j>k,
		// col_j -= beta * (vᵀ col_j) * v.
		for j := k + 1; j < n; j++ {
			s := v0 * w.Data[k*n+j]
			for i := k + 1; i < m; i++ {
				s += w.Data[i*n+k] * w.Data[i*n+j]
			}
			s *= beta
			w.Data[k*n+j] -= s * v0
			for i := k + 1; i < m; i++ {
				w.Data[i*n+j] -= s * w.Data[i*n+k]
			}
		}
		// Store v0 in place of the (now consumed) subdiagonal head: we keep
		// v's tail below the diagonal and remember v0 separately by scaling.
		// To keep a single backing store, normalize so v0 divides out:
		// store v_tail / v0 and fold v0² into beta.
		if v0 != 0 {
			inv := 1 / v0
			for i := k + 1; i < m; i++ {
				w.Data[i*n+k] *= inv
			}
			betas[k] = beta * v0 * v0
		}
	}
	// Extract R.
	r = New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Data[i*n+j] = w.Data[i*n+j]
		}
	}
	// Form thin Q by applying the reflectors to the first n columns of I,
	// in reverse order: Q = H_0 H_1 ... H_{n-1} [I_n; 0].
	q = New(m, n)
	for i := 0; i < n; i++ {
		q.Data[i*n+i] = 1
	}
	for k := n - 1; k >= 0; k-- {
		beta := betas[k]
		if beta == 0 {
			continue
		}
		// v = [1; w[k+1:m, k]] (v0 normalized to 1).
		for j := 0; j < n; j++ {
			s := q.Data[k*n+j]
			for i := k + 1; i < m; i++ {
				s += w.Data[i*n+k] * q.Data[i*n+j]
			}
			s *= beta
			q.Data[k*n+j] -= s
			for i := k + 1; i < m; i++ {
				q.Data[i*n+j] -= s * w.Data[i*n+k]
			}
		}
	}
	return q, r
}

// Orthonormalize returns a matrix with orthonormal columns spanning the
// column space of a (the Q factor of its thin QR).
func Orthonormalize(a *Matrix) *Matrix {
	q, _ := QR(a)
	return q
}
