package dense

import (
	"fmt"
	"math"

	"gebe/internal/par"
)

// Householder QR, two ways.
//
// qrLegacy is the original column-order implementation: every reflector
// application walks columns with stride n, so at solver shapes (n rows in
// the hundreds of thousands, panel width k ≤ 128) each inner-loop load
// touches a new cache line. QRWork.Factor is the engine version: the
// same reflector sequence restructured into row-major passes and
// panel-blocked so a panel's reflectors stream the trailing block once
// per reflector in row order, with the trailing update and thin-Q
// formation column-tile-parallel on the shared internal/par pool.
//
// The engine path is bitwise identical to qrLegacy, which is what lets
// the equivalence tests assert diff == 0: per column j, a reflector
// application accumulates s_j in the same ascending row order either
// way (the row-major version just interleaves the j's), and panel
// columns keep their raw (unnormalized) reflector tails until the
// panel's trailing update has run, so every product sees exactly the
// operands the legacy code used. Normalization (divide the tail by v0,
// fold v0² into beta) happens after, exactly as legacy does per column.

// QR computes the thin (economy) QR factorization of an m-by-n matrix A
// with m >= n using Householder reflections: A = Q·R with Q m-by-n having
// orthonormal columns and R n-by-n upper triangular.
//
// Householder QR is backwards stable, unlike classical Gram–Schmidt; this
// matters because the Krylov subspace iteration in GEBE re-orthonormalizes
// a nearly rank-deficient block every sweep.
func QR(a *Matrix) (q, r *Matrix) {
	return QROpts(a, Tuning{})
}

// QROpts is QR with explicit engine tuning.
func QROpts(a *Matrix, t Tuning) (q, r *Matrix) {
	var ws QRWork
	return ws.Factor(a, t)
}

// Orthonormalize returns a matrix with orthonormal columns spanning the
// column space of a (the Q factor of its thin QR).
func Orthonormalize(a *Matrix) *Matrix {
	q, _ := QR(a)
	return q
}

// OrthonormalizeOpts is Orthonormalize with explicit engine tuning.
func OrthonormalizeOpts(a *Matrix, t Tuning) *Matrix {
	q, _ := QROpts(a, t)
	return q
}

// qrPanel is the panel width of the blocked factorization: reflectors are
// computed qrPanel columns at a time against the panel itself, then swept
// across the trailing block together while its rows are cache-hot.
const qrPanel = 8

// QRWork is a reusable QR workspace. A zero QRWork is ready to use;
// buffers grow to the largest shape factored and are reused across
// calls, so steady-state factorizations of one shape allocate nothing.
//
// The returned factors are views into the workspace: they are valid
// until the next Factor call, which overwrites them. Factor copies its
// input before touching the q buffer, so passing the previous call's Q
// (as KSI's sweep loop does) is safe.
type QRWork struct {
	w     []float64 // m×n: R above the diagonal, reflector tails below
	betas []float64
	s     []float64 // per-column reflector dot products; workers own disjoint ranges
	v0s   [qrPanel]float64
	q, r  Matrix
}

func (ws *QRWork) ensure(m, n int) {
	if cap(ws.w) < m*n {
		ws.w = make([]float64, m*n)
	}
	ws.w = ws.w[:m*n]
	if cap(ws.betas) < n {
		ws.betas = make([]float64, n)
	}
	ws.betas = ws.betas[:n]
	if cap(ws.s) < n {
		ws.s = make([]float64, n)
	}
	ws.s = ws.s[:n]
	if cap(ws.q.Data) < m*n {
		ws.q.Data = make([]float64, m*n)
	}
	ws.q = Matrix{Rows: m, Cols: n, Data: ws.q.Data[:m*n]}
	if cap(ws.r.Data) < n*n {
		ws.r.Data = make([]float64, n*n)
	}
	ws.r = Matrix{Rows: n, Cols: n, Data: ws.r.Data[:n*n]}
}

// Orthonormalize is Factor keeping only the Q view.
func (ws *QRWork) Orthonormalize(a *Matrix, t Tuning) *Matrix {
	q, _ := ws.Factor(a, t)
	return q
}

// Factor computes the thin QR of a into the workspace and returns views
// of Q and R; see the QRWork doc for their lifetime. With
// StrategyLegacy it delegates to the original column-order code (fresh
// allocations, workspace untouched).
func (ws *QRWork) Factor(a *Matrix, t Tuning) (q, r *Matrix) {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("dense: QR requires rows >= cols, got %dx%d", m, n))
	}
	gm := gemms.Load()
	t0 := gemmNow(gm)
	if t.Strategy == StrategyLegacy {
		lq, lr := qrLegacy(a)
		gm.record(dopQR, t0, qrFlops(m, n), "legacy", "colmajor")
		return lq, lr
	}
	ws.ensure(m, n)
	wd, betas := ws.w, ws.betas
	copy(wd, a.Data)
	nw := t.workers(qrFlops(m, n), n)

	for k0 := 0; k0 < n; k0 += qrPanel {
		k1 := min(k0+qrPanel, n)
		// Panel factorization: build each reflector from the current
		// column and apply it to the rest of the panel immediately. Tails
		// stay raw (unnormalized) so the trailing update below multiplies
		// the exact operands the legacy code did.
		for k := k0; k < k1; k++ {
			betas[k] = 0
			ws.v0s[k-k0] = 0
			var norm float64
			for i := k; i < m; i++ {
				x := wd[i*n+k]
				norm += x * x
			}
			norm = math.Sqrt(norm)
			if norm == 0 {
				continue
			}
			alpha := wd[k*n+k]
			// Choose the sign that avoids cancellation.
			if alpha > 0 {
				norm = -norm
			}
			v0 := alpha - norm
			wd[k*n+k] = norm // R[k,k]
			vtv := v0 * v0
			for i := k + 1; i < m; i++ {
				x := wd[i*n+k]
				vtv += x * x
			}
			if vtv == 0 {
				continue
			}
			betas[k] = 2 / vtv
			ws.v0s[k-k0] = v0
			applyReflector(wd, ws.s, m, n, k, v0, betas[k], k+1, k1)
		}
		// Trailing update: sweep the panel's reflectors across columns
		// [k1,n) in parallel column tiles. Workers read the (frozen)
		// reflector columns and write disjoint column ranges of wd and s.
		// The 1-tile case skips Parts so no closure is materialized —
		// that keeps steady-state sequential Factor calls allocation-free.
		if tiles := min(nw, n-k1); tiles == 1 {
			ws.trailingTile(m, n, k0, k1, k1, n)
		} else if tiles > 1 {
			par.Parts(tiles, func(p int) {
				ws.trailingTile(m, n, k0, k1, k1+(n-k1)*p/tiles, k1+(n-k1)*(p+1)/tiles)
			})
		}
		// Normalize the panel's reflector tails so v0 divides out and fold
		// v0² into beta — same single-backing-store trick as qrLegacy
		// (and the same left-associated beta·v0·v0, for bitwise identity).
		for k := k0; k < k1; k++ {
			v0 := ws.v0s[k-k0]
			if betas[k] == 0 || v0 == 0 {
				continue
			}
			inv := 1 / v0
			for i := k + 1; i < m; i++ {
				wd[i*n+k] *= inv
			}
			betas[k] = betas[k] * v0 * v0
		}
	}
	// Extract R.
	clear(ws.r.Data)
	for i := 0; i < n; i++ {
		copy(ws.r.Data[i*n+i:(i+1)*n], wd[i*n+i:(i+1)*n])
	}
	formQ(wd, betas, ws.q.Data, ws.s, m, n, nw)
	strat := "serial"
	if nw > 1 {
		strat = "colpar"
	}
	gm.record(dopQR, t0, qrFlops(m, n), strat, "rowmajor")
	return &ws.q, &ws.r
}

// trailingTile applies the panel's reflectors [k0,k1), in order, to
// columns [jlo,jhi) of the working matrix.
func (ws *QRWork) trailingTile(m, n, k0, k1, jlo, jhi int) {
	for k := k0; k < k1; k++ {
		if ws.betas[k] == 0 {
			continue
		}
		applyReflector(ws.w, ws.s, m, n, k, ws.v0s[k-k0], ws.betas[k], jlo, jhi)
	}
}

// applyReflector applies H_k = I − beta·v·vᵀ (v0 at row k, raw tail in
// column k of wd) to columns [jlo,jhi) of wd as two row-major passes:
// accumulate s_j = vᵀ·col_j streaming rows downward, then subtract
// (beta·s_j)·v the same way. Uses s[jlo:jhi] as scratch.
func applyReflector(wd, s []float64, m, n, k int, v0, beta float64, jlo, jhi int) {
	if jlo >= jhi {
		return
	}
	sv := s[jlo:jhi]
	head := wd[k*n+jlo : k*n+jhi]
	for j, x := range head {
		sv[j] = v0 * x
	}
	for i := k + 1; i < m; i++ {
		vi := wd[i*n+k]
		row := wd[i*n+jlo : i*n+jhi]
		for j, x := range row {
			sv[j] += vi * x
		}
	}
	for j := range sv {
		sv[j] *= beta
	}
	for j, x := range sv {
		head[j] -= x * v0
	}
	for i := k + 1; i < m; i++ {
		vi := wd[i*n+k]
		row := wd[i*n+jlo : i*n+jhi]
		for j := range row {
			row[j] -= sv[j] * vi
		}
	}
}

// formQ forms thin Q by applying the reflectors to the first n columns
// of I in reverse order, Q = H_0 H_1 … H_{n-1} [I_n; 0], as row-major
// passes over parallel column tiles (reflector tails in wd are
// normalized, v0 ≡ 1).
func formQ(wd, betas, qd, s []float64, m, n, nw int) {
	clear(qd)
	for i := 0; i < n; i++ {
		qd[i*n+i] = 1
	}
	tiles := min(nw, n)
	if tiles == 1 {
		formQTile(wd, betas, qd, s, m, n, 0, n)
	} else if tiles > 1 {
		par.Parts(tiles, func(p int) {
			formQTile(wd, betas, qd, s, m, n, n*p/tiles, n*(p+1)/tiles)
		})
	}
}

// formQTile applies the reflectors, in reverse, to columns [jlo,jhi) of
// the identity-seeded Q buffer.
func formQTile(wd, betas, qd, s []float64, m, n, jlo, jhi int) {
	if jlo >= jhi {
		return
	}
	sv := s[jlo:jhi]
	for k := n - 1; k >= 0; k-- {
		beta := betas[k]
		if beta == 0 {
			continue
		}
		head := qd[k*n+jlo : k*n+jhi]
		copy(sv, head) // s_j = 1 · q[k,j]
		for i := k + 1; i < m; i++ {
			vi := wd[i*n+k]
			row := qd[i*n+jlo : i*n+jhi]
			for j, x := range row {
				sv[j] += vi * x
			}
		}
		for j := range sv {
			sv[j] *= beta
		}
		for j, x := range sv {
			head[j] -= x
		}
		for i := k + 1; i < m; i++ {
			vi := wd[i*n+k]
			row := qd[i*n+jlo : i*n+jhi]
			for j := range row {
				row[j] -= sv[j] * vi
			}
		}
	}
}

// qrFlops is the nominal multiply-add count of a thin m×n Householder
// factorization plus thin-Q formation — a pure shape function, so both
// strategies book identical values into dense_gemm_fma_total.
func qrFlops(m, n int) float64 {
	fm, fn := float64(m), float64(n)
	return 2*fm*fn*fn - 2*fn*fn*fn/3 + 2*fm*fn*fn
}

// qrLegacy is the original column-order Householder QR, kept verbatim as
// the StrategyLegacy baseline for BENCH_DENSE and the equivalence tests.
func qrLegacy(a *Matrix) (q, r *Matrix) {
	m, n := a.Rows, a.Cols
	// Work on a copy; we accumulate the Householder vectors in-place below
	// the diagonal and R above it.
	w := a.Clone()
	// betas[k] is the scalar of the k-th reflector H_k = I - beta v vᵀ.
	betas := make([]float64, n)
	for k := 0; k < n; k++ {
		// Compute the norm of the k-th column below (and including) row k.
		var norm float64
		for i := k; i < m; i++ {
			x := w.Data[i*n+k]
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			betas[k] = 0
			continue
		}
		alpha := w.Data[k*n+k]
		// Choose the sign that avoids cancellation.
		if alpha > 0 {
			norm = -norm
		}
		// v = x - norm*e1, stored in place with v[0] implicit.
		v0 := alpha - norm
		w.Data[k*n+k] = norm // R[k,k]
		// beta = 2 / (vᵀv); with v0 and the untouched tail.
		var vtv float64 = v0 * v0
		for i := k + 1; i < m; i++ {
			x := w.Data[i*n+k]
			vtv += x * x
		}
		if vtv == 0 {
			betas[k] = 0
			continue
		}
		beta := 2 / vtv
		betas[k] = beta
		// Apply H_k to the trailing columns: for each column j>k,
		// col_j -= beta * (vᵀ col_j) * v.
		for j := k + 1; j < n; j++ {
			s := v0 * w.Data[k*n+j]
			for i := k + 1; i < m; i++ {
				s += w.Data[i*n+k] * w.Data[i*n+j]
			}
			s *= beta
			w.Data[k*n+j] -= s * v0
			for i := k + 1; i < m; i++ {
				w.Data[i*n+j] -= s * w.Data[i*n+k]
			}
		}
		// Store v0 in place of the (now consumed) subdiagonal head: we keep
		// v's tail below the diagonal and remember v0 separately by scaling.
		// To keep a single backing store, normalize so v0 divides out:
		// store v_tail / v0 and fold v0² into beta.
		if v0 != 0 {
			inv := 1 / v0
			for i := k + 1; i < m; i++ {
				w.Data[i*n+k] *= inv
			}
			betas[k] = beta * v0 * v0
		}
	}
	// Extract R.
	r = New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Data[i*n+j] = w.Data[i*n+j]
		}
	}
	// Form thin Q by applying the reflectors to the first n columns of I,
	// in reverse order: Q = H_0 H_1 ... H_{n-1} [I_n; 0].
	q = New(m, n)
	for i := 0; i < n; i++ {
		q.Data[i*n+i] = 1
	}
	for k := n - 1; k >= 0; k-- {
		beta := betas[k]
		if beta == 0 {
			continue
		}
		// v = [1; w[k+1:m, k]] (v0 normalized to 1).
		for j := 0; j < n; j++ {
			s := q.Data[k*n+j]
			for i := k + 1; i < m; i++ {
				s += w.Data[i*n+k] * q.Data[i*n+j]
			}
			s *= beta
			q.Data[k*n+j] -= s
			for i := k + 1; i < m; i++ {
				q.Data[i*n+j] -= s * w.Data[i*n+k]
			}
		}
	}
	return q, r
}
