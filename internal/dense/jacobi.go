package dense

import (
	"fmt"
	"math"
	"sort"
)

// SymEig computes the full eigendecomposition of a symmetric n-by-n matrix
// using the cyclic Jacobi method. It returns the eigenvalues in descending
// order and the matching eigenvectors as the columns of V, so that
// A·V[:,i] = vals[i]·V[:,i] and VᵀV = I.
//
// Jacobi is quadratically convergent once the off-diagonal mass is small
// and is more than fast enough for the small (k+p)·q sized matrices that
// appear inside the randomized SVD; it is also used as the exact reference
// solver in tests.
func SymEig(a *Matrix) (vals []float64, vecs *Matrix) {
	n := a.Rows
	if a.Cols != n {
		panic(fmt.Sprintf("dense: SymEig requires square matrix, got %dx%d", a.Rows, a.Cols))
	}
	w := a.Clone()
	// Symmetrize defensively: callers sometimes hand us QᵀAQ computed in
	// floating point, which is symmetric only to round-off.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := (w.Data[i*n+j] + w.Data[j*n+i]) / 2
			w.Data[i*n+j] = s
			w.Data[j*n+i] = s
		}
	}
	v := Identity(n)
	const maxSweeps = 60
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.Data[i*n+j] * w.Data[i*n+j]
			}
		}
		if off < 1e-24*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.Data[p*n+q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := w.Data[p*n+p]
				aqq := w.Data[q*n+q]
				// Compute the rotation that annihilates w[p,q].
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply the rotation: W ← JᵀWJ, V ← VJ.
				for i := 0; i < n; i++ {
					wip := w.Data[i*n+p]
					wiq := w.Data[i*n+q]
					w.Data[i*n+p] = c*wip - s*wiq
					w.Data[i*n+q] = s*wip + c*wiq
				}
				for j := 0; j < n; j++ {
					wpj := w.Data[p*n+j]
					wqj := w.Data[q*n+j]
					w.Data[p*n+j] = c*wpj - s*wqj
					w.Data[q*n+j] = s*wpj + c*wqj
				}
				for i := 0; i < n; i++ {
					vip := v.Data[i*n+p]
					viq := v.Data[i*n+q]
					v.Data[i*n+p] = c*vip - s*viq
					v.Data[i*n+q] = s*vip + c*viq
				}
			}
		}
	}
	// Collect and sort eigenpairs by descending eigenvalue.
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{w.Data[i*n+i], i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].val > pairs[j].val })
	vals = make([]float64, n)
	vecs = New(n, n)
	for out, p := range pairs {
		vals[out] = p.val
		for i := 0; i < n; i++ {
			vecs.Data[i*n+out] = v.Data[i*n+p.idx]
		}
	}
	return vals, vecs
}

// SVD computes the full singular value decomposition of a dense matrix A
// (m-by-n): A = U·diag(s)·Vᵀ with singular values in descending order.
// It works via the symmetric eigendecomposition of the smaller Gram
// matrix, which is accurate enough for the test-reference role it plays
// here (it loses half the digits for tiny singular values, which the
// callers tolerate).
func SVD(a *Matrix) (u *Matrix, s []float64, v *Matrix) {
	m, n := a.Rows, a.Cols
	if m >= n {
		// Eigendecompose AᵀA (n-by-n).
		g := TMul(a, a)
		vals, vecs := SymEig(g)
		s = make([]float64, n)
		for i, lam := range vals {
			if lam < 0 {
				lam = 0
			}
			s[i] = math.Sqrt(lam)
		}
		v = vecs
		// U = A V Σ⁻¹ (columns with zero σ are filled by orthonormal completion
		// only if needed; downstream only uses columns with σ > 0).
		u = Mul(a, v)
		for j := 0; j < n; j++ {
			if s[j] > 1e-12 {
				inv := 1 / s[j]
				for i := 0; i < m; i++ {
					u.Data[i*n+j] *= inv
				}
			}
		}
		return u, s, v
	}
	// m < n: decompose the transpose and swap factors.
	vT, s, uT := SVD(a.T())
	return uT, s, vT
}
