package dense

import (
	"fmt"
	"sync/atomic"
	"time"

	"gebe/internal/cpu"
	"gebe/internal/obs"
)

// Strategy selects how the dense engine executes block products and QR.
type Strategy int

const (
	// StrategyAuto is the default: row/panel-parallel scheduling on the
	// shared internal/par worker pool, register-blocked inner kernels
	// picked per block width, and the row-major blocked Householder QR.
	// Parallelism is gated on the multiply-add count, so small blocks run
	// sequentially with no fork/join cost.
	StrategyAuto Strategy = iota
	// StrategyLegacy reproduces the pre-engine behavior exactly — the
	// serial generic loops and the column-order Householder QR — and
	// exists as the measured baseline for BENCH_DENSE and the
	// equivalence tests.
	StrategyLegacy
)

// String names the strategy as it appears in metrics and BENCH_DENSE.json.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyLegacy:
		return "legacy"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// DefaultMinParallelFlops is the multiply-add count below which dense
// operations run sequentially: under ~128Ki fused multiply-adds the
// fork/join on the shared pool costs more than it saves.
const DefaultMinParallelFlops = 1 << 17

// Tuning carries the dense engine knobs call sites pass down with each
// operation. The zero value selects the sequential shape-aware defaults
// (register-blocked kernels, no parallel fan-out), so existing callers
// lose nothing.
type Tuning struct {
	// Threads caps the number of parallel partitions (<=1 sequential).
	Threads int
	// Strategy picks the execution plan; see the Strategy constants.
	Strategy Strategy
	// MinParallelFlops gates parallelism on the operation's multiply-add
	// count (rows·inner·cols for a product, ~n²(m−n/3) for QR);
	// 0 selects DefaultMinParallelFlops.
	MinParallelFlops int
	// Kernels picks the kernel flavor (Go scalar, SIMD, or fused SIMD).
	// The zero value KernelAuto follows GEBE_SIMD and hardware support;
	// explicit requests are clamped to what the CPU can run. Ignored by
	// StrategyLegacy, which always runs the scalar generic kernels.
	Kernels cpu.KernelMode
}

// Validate rejects tunings no engine path can honor.
func (t Tuning) Validate() error {
	if t.Threads < 0 {
		return fmt.Errorf("dense: Tuning.Threads must be non-negative, got %d", t.Threads)
	}
	if t.MinParallelFlops < 0 {
		return fmt.Errorf("dense: Tuning.MinParallelFlops must be non-negative, got %d", t.MinParallelFlops)
	}
	if !t.Kernels.Valid() {
		return fmt.Errorf("dense: unknown Tuning.Kernels %d", int(t.Kernels))
	}
	switch t.Strategy {
	case StrategyAuto, StrategyLegacy:
		return nil
	default:
		return fmt.Errorf("dense: unknown Tuning.Strategy %d", int(t.Strategy))
	}
}

// workers returns the partition count for an operation with the given
// multiply-add count: the thread cap, gated on flops and clamped to the
// partitionable extent (rows or column tiles).
func (t Tuning) workers(flops float64, parts int) int {
	nw := t.Threads
	if nw < 1 {
		nw = 1
	}
	gate := t.MinParallelFlops
	if gate <= 0 {
		gate = DefaultMinParallelFlops
	}
	if flops < float64(gate) {
		return 1
	}
	if nw > parts {
		nw = parts
	}
	return nw
}

// dop indexes the instrumented dense entry points in gemmMetrics.
type dop int

const (
	dopMul dop = iota
	dopTMul
	dopMulT
	dopQR
	numDops
)

// gemmMetrics holds pre-resolved metric handles for the dense hot paths.
// Telemetry is off by default — the only per-call cost is one atomic
// pointer load — and is switched on by EnableMetrics (wired to
// -v/-vv/-debug-addr in the commands, like the sparse engine's).
type gemmMetrics struct {
	seconds [numDops]*obs.Histogram
	calls   [numDops]*obs.Counter
	fma     *obs.Counter
	// strategy and kernel count which execution plan and which inner
	// kernel each operation dispatched to, one counter per label.
	strategy, kernel *obs.CounterVec
}

var gemms atomic.Pointer[gemmMetrics]

// EnableMetrics records dense kernel timings, dispatch counts and
// multiply-add counts into r; nil disables collection again. The span
// histograms use obs.FastBuckets — dense GEMM and QR calls at solver
// shapes sit well under a millisecond, where obs.DefBuckets would lump
// everything into one bucket.
func EnableMetrics(r *obs.Registry) {
	if r == nil {
		gemms.Store(nil)
		return
	}
	gm := &gemmMetrics{
		fma:      r.Counter("dense_gemm_fma_total", "dense multiply-adds performed (rows × inner × cols; QR booked by its shape formula)"),
		strategy: r.CounterVec("dense_strategy", "dense operations executed per engine strategy"),
		kernel:   r.CounterVec("dense_kernel", "dense operations executed per inner kernel"),
	}
	gm.seconds[dopMul] = r.Histogram("dense_gemm_seconds", "wall-clock of A·B products", obs.FastBuckets)
	gm.seconds[dopTMul] = r.Histogram("dense_gemm_t_seconds", "wall-clock of Aᵀ·B products", obs.FastBuckets)
	gm.seconds[dopMulT] = r.Histogram("dense_gemm_nt_seconds", "wall-clock of A·Bᵀ products", obs.FastBuckets)
	gm.seconds[dopQR] = r.Histogram("dense_qr_seconds", "wall-clock of Householder QR factorizations", obs.FastBuckets)
	gm.calls[dopMul] = r.Counter("dense_gemm_calls_total", "number of A·B products")
	gm.calls[dopTMul] = r.Counter("dense_gemm_t_calls_total", "number of Aᵀ·B products")
	gm.calls[dopMulT] = r.Counter("dense_gemm_nt_calls_total", "number of A·Bᵀ products")
	gm.calls[dopQR] = r.Counter("dense_qr_calls_total", "number of QR factorizations")
	gemms.Store(gm)
}

// record books one operation: wall-clock, call count, multiply-adds
// (a pure shape function, identical across strategies and kernels — the
// invariant the equivalence tests and BENCH_DENSE pin), and the dispatch
// counters. Nil-safe so the disabled path stays branch-only.
func (gm *gemmMetrics) record(o dop, t0 time.Time, flops float64, strategy, kernel string) {
	if gm == nil {
		return
	}
	gm.seconds[o].ObserveSince(t0)
	gm.calls[o].Inc()
	gm.fma.Add(flops)
	gm.strategy.With(strategy).Inc()
	gm.kernel.With(kernel).Inc()
}

// gemmNow keeps the disabled-metrics path branch-only.
func gemmNow(gm *gemmMetrics) time.Time {
	if gm == nil {
		return time.Time{}
	}
	return time.Now()
}
