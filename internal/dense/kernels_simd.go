package dense

import (
	"gebe/internal/cpu"
	"gebe/internal/simd"
)

// The vector kernel flavors: thin wrappers over internal/simd row and
// tile primitives, registered once per process when the CPU supports
// them. Each wrapper visits elements in the same order as its scalar
// twin, so the non-fused flavor stays bitwise identical to the Go
// oracle. Two deliberate regroupings that do NOT change any per-element
// sum: panel blocks use 16-wide sub-panels when they fit (half the
// re-scans of the input row), and the Aᵀ·B tile kernel accumulates over
// 32-row chunks instead of 8 (the tile is seeded from the output and
// stored back, so chunk length never splits a sum).

func init() {
	if !simd.HasSIMD() {
		return
	}
	sn := "+" + simd.SIMDName()
	mulKernels.Register(cpu.WidthK8, cpu.KernelSIMD, mulK8SIMD, "k8"+sn)
	mulKernels.Register(cpu.WidthK16, cpu.KernelSIMD, mulK16SIMD, "k16"+sn)
	mulKernels.Register(cpu.WidthPanel8, cpu.KernelSIMD, mulPanel8SIMD, "panel8"+sn)
	mulTKernels.Register(cpu.KernelSIMD, mulTDot4SIMD, "dot4"+sn)
	tmulKernels.Register(cpu.KernelSIMD, tmulBlockedSIMD, "b2x4"+sn)
	if !simd.HasFMA() {
		return
	}
	fn := "+" + simd.FMAName()
	mulKernels.Register(cpu.WidthK8, cpu.KernelFMA, mulK8FMA, "k8"+fn)
	mulKernels.Register(cpu.WidthK16, cpu.KernelFMA, mulK16FMA, "k16"+fn)
	mulKernels.Register(cpu.WidthPanel8, cpu.KernelFMA, mulPanel8FMA, "panel8"+fn)
	mulTKernels.Register(cpu.KernelFMA, mulTDot4FMA, "dot4"+fn)
	tmulKernels.Register(cpu.KernelFMA, tmulBlockedFMA, "b2x4"+fn)
}

func mulK8SIMD(ad, bd, od []float64, inner, _, lo, hi int) {
	for i := lo; i < hi; i++ {
		var acc [8]float64
		simd.SaxpyRows8(ad[i*inner:][:inner], bd, 8, &acc)
		copy(od[i*8:][:8], acc[:])
	}
}

func mulK8FMA(ad, bd, od []float64, inner, _, lo, hi int) {
	for i := lo; i < hi; i++ {
		var acc [8]float64
		simd.SaxpyRows8FMA(ad[i*inner:][:inner], bd, 8, &acc)
		copy(od[i*8:][:8], acc[:])
	}
}

func mulK16SIMD(ad, bd, od []float64, inner, _, lo, hi int) {
	for i := lo; i < hi; i++ {
		var acc [16]float64
		simd.SaxpyRows16(ad[i*inner:][:inner], bd, 16, &acc)
		copy(od[i*16:][:16], acc[:])
	}
}

func mulK16FMA(ad, bd, od []float64, inner, _, lo, hi int) {
	for i := lo; i < hi; i++ {
		var acc [16]float64
		simd.SaxpyRows16FMA(ad[i*inner:][:inner], bd, 16, &acc)
		copy(od[i*16:][:16], acc[:])
	}
}

func mulPanel8SIMD(ad, bd, od []float64, inner, k, lo, hi int) {
	if inner == 0 {
		// Nothing to accumulate and bd is empty; output rows are zero
		// on entry (the mulKernel contract), matching the scalar kernel's
		// explicit zero stores.
		return
	}
	for i := lo; i < hi; i++ {
		arow := ad[i*inner:][:inner]
		j0 := 0
		for ; j0+16 <= k; j0 += 16 {
			var acc [16]float64
			simd.SaxpyRows16(arow, bd[j0:], k, &acc)
			copy(od[i*k+j0:][:16], acc[:])
		}
		for ; j0 < k; j0 += 8 {
			var acc [8]float64
			simd.SaxpyRows8(arow, bd[j0:], k, &acc)
			copy(od[i*k+j0:][:8], acc[:])
		}
	}
}

func mulPanel8FMA(ad, bd, od []float64, inner, k, lo, hi int) {
	if inner == 0 {
		return
	}
	for i := lo; i < hi; i++ {
		arow := ad[i*inner:][:inner]
		j0 := 0
		for ; j0+16 <= k; j0 += 16 {
			var acc [16]float64
			simd.SaxpyRows16FMA(arow, bd[j0:], k, &acc)
			copy(od[i*k+j0:][:16], acc[:])
		}
		for ; j0 < k; j0 += 8 {
			var acc [8]float64
			simd.SaxpyRows8FMA(arow, bd[j0:], k, &acc)
			copy(od[i*k+j0:][:8], acc[:])
		}
	}
}

func mulTDot4SIMD(ad, bd, od []float64, inner, p, lo, hi int) {
	j4 := p - p%4
	for i := lo; i < hi; i++ {
		arow := ad[i*inner:][:inner]
		orow := od[i*p:][:p]
		for j := 0; j < j4; j += 4 {
			var s [4]float64
			simd.DotCols4(arow, bd[j*inner:], inner, &s)
			copy(orow[j:][:4], s[:])
		}
		for j := j4; j < p; j++ {
			orow[j] = Dot(arow, bd[j*inner:][:inner])
		}
	}
}

func mulTDot4FMA(ad, bd, od []float64, inner, p, lo, hi int) {
	j4 := p - p%4
	for i := lo; i < hi; i++ {
		arow := ad[i*inner:][:inner]
		orow := od[i*p:][:p]
		for j := 0; j < j4; j += 4 {
			var s [4]float64
			simd.DotCols4FMA(arow, bd[j*inner:], inner, &s)
			copy(orow[j:][:4], s[:])
		}
		for j := j4; j < p; j++ {
			orow[j] = Dot(arow, bd[j*inner:][:inner])
		}
	}
}

// tmulChunkRowsSIMD is the row-chunk length of the vector Aᵀ·B kernel.
// Wider than the scalar kernel's: the asm tile loop retires rows ~4×
// faster, so the output read-modify-write is amortized over more rows.
const tmulChunkRowsSIMD = 32

// The two tile-kernel bodies are spelled out rather than shared through
// a function value: an indirect call would hide simd.Tile2x4's
// go:noescape from the compiler and heap-allocate the tile accumulator
// on every call, breaking the Into variants' allocation-free guarantee.

func tmulBlockedSIMD(ad, bd, od []float64, k1, k2, lo, hi int) {
	i2 := k1 - k1%2
	j4 := k2 - k2%4
	for l0 := lo; l0 < hi; l0 += tmulChunkRowsSIMD {
		le := min(l0+tmulChunkRowsSIMD, hi)
		n := le - l0
		for i := 0; i < i2; i += 2 {
			for j := 0; j < j4; j += 4 {
				o0 := od[i*k2+j:][:4]
				o1 := od[(i+1)*k2+j:][:4]
				var acc [8]float64
				copy(acc[:4], o0)
				copy(acc[4:], o1)
				simd.Tile2x4(ad[l0*k1+i:], bd[l0*k2+j:], k1, k2, n, &acc)
				copy(o0, acc[:4])
				copy(o1, acc[4:])
			}
			tmulScalarColsTail(ad, bd, od, k1, k2, l0, le, i, j4)
		}
		tmulScalarRowsTail(ad, bd, od, k1, k2, l0, le, i2)
	}
}

func tmulBlockedFMA(ad, bd, od []float64, k1, k2, lo, hi int) {
	i2 := k1 - k1%2
	j4 := k2 - k2%4
	for l0 := lo; l0 < hi; l0 += tmulChunkRowsSIMD {
		le := min(l0+tmulChunkRowsSIMD, hi)
		n := le - l0
		for i := 0; i < i2; i += 2 {
			for j := 0; j < j4; j += 4 {
				o0 := od[i*k2+j:][:4]
				o1 := od[(i+1)*k2+j:][:4]
				var acc [8]float64
				copy(acc[:4], o0)
				copy(acc[4:], o1)
				simd.Tile2x4FMA(ad[l0*k1+i:], bd[l0*k2+j:], k1, k2, n, &acc)
				copy(o0, acc[:4])
				copy(o1, acc[4:])
			}
			tmulScalarColsTail(ad, bd, od, k1, k2, l0, le, i, j4)
		}
		tmulScalarRowsTail(ad, bd, od, k1, k2, l0, le, i2)
	}
}

// tmulScalarColsTail finishes the k2%4 trailing columns of a 2-row band
// over rows [l0,le), exactly like the scalar tmulBlocked remainder.
func tmulScalarColsTail(ad, bd, od []float64, k1, k2, l0, le, i, j4 int) {
	for j := j4; j < k2; j++ {
		s0, s1 := od[i*k2+j], od[(i+1)*k2+j]
		for l := l0; l < le; l++ {
			bv := bd[l*k2+j]
			s0 += ad[l*k1+i] * bv
			s1 += ad[l*k1+i+1] * bv
		}
		od[i*k2+j] = s0
		od[(i+1)*k2+j] = s1
	}
}

// tmulScalarRowsTail finishes the k1%2 trailing output row over rows
// [l0,le), exactly like the scalar tmulBlocked remainder.
func tmulScalarRowsTail(ad, bd, od []float64, k1, k2, l0, le, i2 int) {
	for i := i2; i < k1; i++ {
		for j := 0; j < k2; j++ {
			s := od[i*k2+j]
			for l := l0; l < le; l++ {
				s += ad[l*k1+i] * bd[l*k2+j]
			}
			od[i*k2+j] = s
		}
	}
}
