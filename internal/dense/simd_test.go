package dense

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"gebe/internal/cpu"
	"gebe/internal/simd"
)

// Engine-level SIMD flavor contract for the three GEMM orientations:
// the non-fused vector kernels reproduce the scalar kernels bit for
// bit across widths 1..33 (both sides of every specialization), short
// and empty inner dimensions included; the fused flavor stays within
// the documented relative tolerance.

func bitsEqual(a, b []float64) (int, bool) {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i, false
		}
	}
	return -1, true
}

func maxRelErr(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if s := math.Abs(a[i]); s > 1 {
			d /= s
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

const fmaRelTol = 1e-12

func TestDenseSIMDEquivalenceSweep(t *testing.T) {
	if cpu.Resolve(cpu.KernelSIMD) != cpu.KernelSIMD {
		t.Skip("no SIMD kernels on this CPU")
	}
	hasFMA := cpu.Resolve(cpu.KernelFMA) == cpu.KernelFMA
	check := func(name string, simdOut, goOut *Matrix, fmaOut *Matrix) {
		t.Helper()
		if i, ok := bitsEqual(simdOut.Data, goOut.Data); !ok {
			t.Fatalf("%s: SIMD diverges at %d: %v != %v", name, i, simdOut.Data[i], goOut.Data[i])
		}
		if fmaOut != nil {
			if err := maxRelErr(fmaOut.Data, goOut.Data); err > fmaRelTol {
				t.Fatalf("%s: FMA rel err %g > %g", name, err, fmaRelTol)
			}
		}
	}
	for _, inner := range []int{0, 1, 2, 7, 40} {
		for k := 1; k <= 33; k++ {
			rows := 9
			a := Random(rows, inner, rng(uint64(inner*100+k)))
			b := Random(inner, k, rng(uint64(inner*100+k)+1))
			bt := Random(k, inner, rng(uint64(inner*100+k)+2)) // for A·Bᵀ, p=k
			c := Random(rows, k, rng(uint64(inner*100+k)+3))   // for Aᵀ·B, k2=k
			for _, threads := range []int{1, 3} {
				goT := Tuning{Threads: threads, MinParallelFlops: 1, Kernels: cpu.KernelGo}
				sT := goT
				sT.Kernels = cpu.KernelSIMD
				fT := goT
				fT.Kernels = cpu.KernelFMA
				name := fmt.Sprintf("inner=%d/k=%d/t=%d", inner, k, threads)

				var fm *Matrix
				if hasFMA {
					fm = MulOpts(a, b, fT)
				}
				check("mul/"+name, MulOpts(a, b, sT), MulOpts(a, b, goT), fm)

				if hasFMA {
					fm = MulTOpts(a, bt, fT)
				}
				check("mult/"+name, MulTOpts(a, bt, sT), MulTOpts(a, bt, goT), fm)

				// Aᵀ·B reduces per-worker partials in a fixed fold order,
				// so identical tunings compare bitwise across flavors too.
				if hasFMA {
					fm = TMulOpts(a, c, fT)
				}
				check("tmul/"+name, TMulOpts(a, c, sT), TMulOpts(a, c, goT), fm)
			}
		}
	}
}

// TestDenseSIMDPoolRace hammers the vector kernels on the shared pool
// from concurrent goroutines; with -race this pins the wrappers'
// aliasing discipline across partitioned output rows.
func TestDenseSIMDPoolRace(t *testing.T) {
	if cpu.Resolve(cpu.KernelSIMD) != cpu.KernelSIMD {
		t.Skip("no SIMD kernels on this CPU")
	}
	a := Random(300, 24, rng(51))
	b := Random(24, 16, rng(52))
	goT := Tuning{Threads: 4, MinParallelFlops: 1, Kernels: cpu.KernelGo}
	sT := goT
	sT.Kernels = cpu.KernelSIMD
	want := MulOpts(a, b, goT)
	wantT := TMulOpts(a, a, goT)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for it := 0; it < 10; it++ {
				if _, ok := bitsEqual(MulOpts(a, b, sT).Data, want.Data); !ok {
					done <- fmt.Errorf("concurrent SIMD Mul diverged")
					return
				}
				if _, ok := bitsEqual(TMulOpts(a, a, sT).Data, wantT.Data); !ok {
					done <- fmt.Errorf("concurrent SIMD TMul diverged")
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestDenseSIMDKernelNames pins the flavor naming used by metrics and
// BENCH_DENSE.
func TestDenseSIMDKernelNames(t *testing.T) {
	if _, name := dispatchMul(32, cpu.KernelGo); name != "panel8" {
		t.Errorf("Go panel kernel named %q, want panel8", name)
	}
	if _, name := dispatchMulT(8, cpu.KernelGo); name != "dot4" {
		t.Errorf("Go dot4 kernel named %q, want dot4", name)
	}
	if _, name := dispatchTMul(8, 8, cpu.KernelGo); name != "b2x4" {
		t.Errorf("Go tile kernel named %q, want b2x4", name)
	}
	if !simd.HasSIMD() {
		return
	}
	suffix := "+" + simd.SIMDName()
	if _, name := dispatchMul(16, cpu.KernelSIMD); !strings.HasSuffix(name, suffix) {
		t.Errorf("SIMD k16 kernel named %q, want %q suffix", name, suffix)
	}
	if _, name := dispatchMulT(8, cpu.KernelSIMD); !strings.HasSuffix(name, suffix) {
		t.Errorf("SIMD dot4 kernel named %q, want %q suffix", name, suffix)
	}
	if _, name := dispatchTMul(8, 8, cpu.KernelSIMD); !strings.HasSuffix(name, suffix) {
		t.Errorf("SIMD tile kernel named %q, want %q suffix", name, suffix)
	}
	// Below the tile thresholds every flavor uses the scalar generic.
	if _, name := dispatchTMul(1, 3, cpu.KernelSIMD); name != "generic" {
		t.Errorf("sub-tile TMul dispatched %q, want generic", name)
	}
}
