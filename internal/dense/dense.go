// Package dense provides row-major dense float64 matrices and the small
// set of BLAS-like kernels the GEBE algorithms need: products, transposes,
// norms, Householder QR, and a cyclic Jacobi symmetric eigensolver.
//
// Matrices are deliberately simple: a header (Rows, Cols) over a flat
// []float64 backing slice. All operations validate shapes and panic on
// mismatch, mirroring how Go's runtime treats out-of-range slice indexing:
// a shape error is a programming bug, not a runtime condition to handle.
package dense

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strings"
)

// Matrix is a row-major dense matrix. The zero value is an empty 0x0
// matrix ready to use.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// New returns a zeroed r-by-c matrix.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("dense: negative dimension %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("dense: ragged rows: row 0 has %d cols, row %d has %d", c, i, len(row)))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Random returns an r-by-c matrix with entries drawn i.i.d. from the
// standard normal distribution using rng.
func Random(r, c int, rng *rand.Rand) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("dense: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("dense: row %d out of range %d", i, m.Rows))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// Mul returns a*b, dispatched through the dense engine's default tuning
// (register-blocked kernels, sequential — the zero Tuning). Call sites
// with a thread budget should pass it via MulOpts.
func Mul(a, b *Matrix) *Matrix {
	return MulOpts(a, b, Tuning{})
}

// MulT returns a * bᵀ under the engine's default tuning; see Mul.
func MulT(a, b *Matrix) *Matrix {
	return MulTOpts(a, b, Tuning{})
}

// TMul returns aᵀ * b under the engine's default tuning; see Mul.
func TMul(a, b *Matrix) *Matrix {
	return TMulOpts(a, b, Tuning{})
}

// Add returns a+b.
func Add(a, b *Matrix) *Matrix {
	sameShape(a, b, "Add")
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v + b.Data[i]
	}
	return out
}

// Sub returns a-b.
func Sub(a, b *Matrix) *Matrix {
	sameShape(a, b, "Sub")
	return SubInto(New(a.Rows, a.Cols), a, b)
}

// AddScaled sets a ← a + s*b in place.
func (m *Matrix) AddScaled(s float64, b *Matrix) {
	sameShape(m, b, "AddScaled")
	for i, v := range b.Data {
		m.Data[i] += s * v
	}
}

// Scale multiplies every entry of m by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// ScaleCols multiplies column j of m by s[j] in place.
func (m *Matrix) ScaleCols(s []float64) {
	if len(s) != m.Cols {
		panic(fmt.Sprintf("dense: ScaleCols wants %d factors, got %d", m.Cols, len(s)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= s[j]
		}
	}
}

func sameShape(a, b *Matrix, op string) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("dense: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("dense: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// FrobeniusNorm returns ‖m‖_F.
func (m *Matrix) FrobeniusNorm() float64 {
	return Norm2(m.Data)
}

// MaxAbs returns the largest absolute entry of m (0 for an empty matrix).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Col returns a copy of column j as a slice.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("dense: col %d out of range %d", j, m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := range out {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// SliceCols returns a copy of columns [lo,hi) of m.
func (m *Matrix) SliceCols(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Cols || lo > hi {
		panic(fmt.Sprintf("dense: SliceCols [%d,%d) out of range %d", lo, hi, m.Cols))
	}
	out := New(m.Rows, hi-lo)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[lo:hi])
	}
	return out
}

// Equal reports whether a and b have the same shape and all entries agree
// within absolute tolerance tol.
func Equal(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a small matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d[", m.Rows, m.Cols)
	for i := 0; i < m.Rows && i < 8; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.Cols && j < 8; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.4g", m.At(i, j))
		}
	}
	if m.Rows > 8 || m.Cols > 8 {
		b.WriteString(" ...")
	}
	b.WriteByte(']')
	return b.String()
}
