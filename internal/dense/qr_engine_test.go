package dense

import (
	"math"
	"math/rand/v2"
	"testing"
)

// The blocked QR's contract: bitwise identity with qrLegacy (see the
// file comment in qr.go), plus the usual factorization invariants on
// shapes chosen to stress the panel logic — widths straddling the panel
// boundary, m≈n, rank deficiency, exact zero columns.

func qrShapes() []*Matrix {
	r := rand.New(rand.NewPCG(42, 0x5eed))
	shapes := []*Matrix{
		Random(1, 1, r),
		Random(5, 5, r),    // m == n
		Random(9, 8, r),    // m = n+1 at exactly one panel
		Random(40, 7, r),   // sub-panel width
		Random(40, 8, r),   // exactly one panel
		Random(40, 9, r),   // panel + 1 remainder column
		Random(200, 16, r), // two full panels
		Random(300, 21, r), // panels + remainder
		Random(64, 64, r),  // square multi-panel
		New(30, 6),         // all-zero matrix
	}
	// Rank-deficient: duplicate and zero columns across panel boundaries.
	rd := Random(120, 12, r)
	for i := 0; i < rd.Rows; i++ {
		rd.Set(i, 5, rd.At(i, 2)) // col 5 = col 2 (same panel)
		rd.Set(i, 9, rd.At(i, 0)) // col 9 = col 0 (across panels)
		rd.Set(i, 11, 0)          // zero column
	}
	shapes = append(shapes, rd)
	// Nearly dependent columns — the ill-conditioned case KSI feeds QR.
	nc := Random(150, 10, r)
	for i := 0; i < nc.Rows; i++ {
		nc.Set(i, 7, nc.At(i, 1)+1e-13*nc.At(i, 3))
	}
	return append(shapes, nc)
}

func TestQRMatchesLegacyBitwise(t *testing.T) {
	for _, a := range qrShapes() {
		wantQ, wantR := QROpts(a, Tuning{Strategy: StrategyLegacy})
		for _, threads := range []int{1, 2, 4} {
			gotQ, gotR := QROpts(a, Tuning{Threads: threads, MinParallelFlops: 1})
			if d := maxAbsDiff(wantQ, gotQ); d != 0 {
				t.Fatalf("%dx%d threads=%d: Q diff %g, want bitwise match", a.Rows, a.Cols, threads, d)
			}
			if d := maxAbsDiff(wantR, gotR); d != 0 {
				t.Fatalf("%dx%d threads=%d: R diff %g, want bitwise match", a.Rows, a.Cols, threads, d)
			}
		}
	}
}

func TestQRInvariants(t *testing.T) {
	for _, a := range qrShapes() {
		for _, tn := range []Tuning{{}, {Threads: 4, MinParallelFlops: 1}, {Strategy: StrategyLegacy}} {
			q, r := QROpts(a, tn)
			n := a.Cols
			// Orthonormal columns: ‖QᵀQ − I‖_max small. Rank-deficient
			// inputs still give orthonormal Q (reflectors of zero columns
			// are identity, and the affected Q columns stay unit vectors).
			qtq := TMul(q, q)
			for i := 0; i < n; i++ {
				qtq.Set(i, i, qtq.At(i, i)-1)
			}
			if d := qtq.MaxAbs(); d > 1e-12 {
				t.Errorf("%dx%d %+v: ‖QᵀQ−I‖ = %g", a.Rows, a.Cols, tn, d)
			}
			// Reconstruction: ‖QR − A‖ small relative to ‖A‖.
			recon := maxAbsDiff(Mul(q, r), a)
			scale := a.MaxAbs()
			if scale == 0 {
				scale = 1
			}
			if recon/scale > 1e-12 {
				t.Errorf("%dx%d %+v: ‖QR−A‖/‖A‖ = %g", a.Rows, a.Cols, tn, recon/scale)
			}
			// R upper triangular.
			for i := 0; i < n; i++ {
				for j := 0; j < i; j++ {
					if r.At(i, j) != 0 {
						t.Fatalf("%dx%d: R[%d,%d] = %g below the diagonal", a.Rows, a.Cols, i, j, r.At(i, j))
					}
				}
			}
		}
	}
}

func TestQRWorkReuseAndAliasing(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 11))
	var ws QRWork
	tn := Tuning{}
	// Steady state at one shape must not allocate (after the first call
	// grows the workspace).
	a := Random(80, 8, r)
	ws.Factor(a, tn)
	if n := testing.AllocsPerRun(10, func() { ws.Factor(a, tn) }); n != 0 {
		t.Errorf("QRWork.Factor allocated %v times per steady-state run, want 0", n)
	}
	// KSI's aliasing pattern: the next input is built from (here: is) the
	// previous output view.
	q1 := ws.Orthonormalize(a, tn)
	want, _ := qrLegacy(q1.Clone())
	q2 := ws.Orthonormalize(q1, tn)
	if d := maxAbsDiff(want, q2); d != 0 {
		t.Errorf("Factor with input aliasing previous Q: diff %g, want bitwise match", d)
	}
	// Shrinking then regrowing shapes reuses the workspace correctly.
	for _, shape := range [][2]int{{30, 4}, {200, 16}, {10, 10}} {
		m := Random(shape[0], shape[1], r)
		gotQ, gotR := ws.Factor(m, tn)
		wantQ, wantR := qrLegacy(m)
		if maxAbsDiff(wantQ, gotQ) != 0 || maxAbsDiff(wantR, gotR) != 0 {
			t.Errorf("workspace reuse at %dx%d diverges from legacy", shape[0], shape[1])
		}
	}
}

func TestQRRequiresTallInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for m < n")
		}
	}()
	QROpts(Random(3, 5, rand.New(rand.NewPCG(1, 2))), Tuning{})
}

func TestOrthonormalizeOptsMatches(t *testing.T) {
	a := Random(60, 6, rand.New(rand.NewPCG(3, 4)))
	q1 := Orthonormalize(a)
	q2 := OrthonormalizeOpts(a, Tuning{Threads: 2, MinParallelFlops: 1})
	if d := maxAbsDiff(q1, q2); d != 0 {
		t.Errorf("OrthonormalizeOpts diverges by %g", d)
	}
	if math.Abs(Norm2(q1.Col(0))-1) > 1e-12 {
		t.Errorf("Q columns not unit length")
	}
}
