package dense

import (
	"math"
	"math/rand/v2"
	"testing"

	"gebe/internal/obs"
)

// newTestRegistry enables dense metrics against a fresh registry and
// restores the disabled default when the test ends.
func newTestRegistry(t *testing.T) *obs.Registry {
	t.Helper()
	reg := obs.NewRegistry()
	EnableMetrics(reg)
	t.Cleanup(func() { EnableMetrics(nil) })
	return reg
}

// The engine's contract: every auto path agrees with StrategyLegacy.
// All sequential kernels and QR are bitwise identical by construction
// (same per-element accumulation order), so single-worker runs compare
// with tol 0; only the parallel Aᵀ·B partial-fold reorders a reduction
// and gets a round-off tolerance scaled by the accumulation length.

func engineRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xbeef))
}

// forceParallel drops the flop gate so even tiny matrices exercise the
// partitioned paths.
func forceParallel(threads int) Tuning {
	return Tuning{Threads: threads, MinParallelFlops: 1}
}

func maxAbsDiff(a, b *Matrix) float64 {
	return Sub(a, b).MaxAbs()
}

func TestMulMatchesLegacyBitwise(t *testing.T) {
	rng := engineRand(1)
	// Widths cover every dispatch: generic (3, 5), k4, k8, k16, panel8 (24).
	for _, k := range []int{1, 3, 4, 5, 8, 16, 24, 32} {
		for _, rows := range []int{1, 7, 65, 200} {
			for _, inner := range []int{1, 9, 33} {
				a := Random(rows, inner, rng)
				b := Random(inner, k, rng)
				want := MulOpts(a, b, Tuning{Strategy: StrategyLegacy})
				for _, threads := range []int{1, 2, 4} {
					got := MulOpts(a, b, forceParallel(threads))
					if d := maxAbsDiff(want, got); d != 0 {
						t.Fatalf("Mul %dx%d·%dx%d threads=%d: max diff %g, want bitwise match",
							rows, inner, inner, k, threads, d)
					}
				}
			}
		}
	}
}

func TestMulTMatchesLegacyBitwise(t *testing.T) {
	rng := engineRand(2)
	for _, p := range []int{1, 3, 4, 6, 17} {
		for _, rows := range []int{1, 8, 120} {
			for _, inner := range []int{1, 5, 40} {
				a := Random(rows, inner, rng)
				b := Random(p, inner, rng)
				want := MulTOpts(a, b, Tuning{Strategy: StrategyLegacy})
				for _, threads := range []int{1, 3} {
					got := MulTOpts(a, b, forceParallel(threads))
					if d := maxAbsDiff(want, got); d != 0 {
						t.Fatalf("MulT %dx%d·(%dx%d)ᵀ threads=%d: max diff %g, want bitwise match",
							rows, inner, p, inner, threads, d)
					}
				}
			}
		}
	}
}

func TestTMulMatchesLegacy(t *testing.T) {
	rng := engineRand(3)
	for _, k1 := range []int{1, 2, 3, 8, 17} {
		for _, k2 := range []int{1, 3, 4, 9, 16} {
			for _, rows := range []int{1, 7, 8, 9, 250} {
				a := Random(rows, k1, rng)
				b := Random(rows, k2, rng)
				want := TMulOpts(a, b, Tuning{Strategy: StrategyLegacy})
				for _, threads := range []int{1, 2, 5} {
					got := TMulOpts(a, b, forceParallel(threads))
					// A single worker is bitwise; the parallel fold
					// reorders an n-term sum and gets round-off slack.
					tol := 0.0
					if threads > 1 {
						tol = 1e-13 * float64(rows) * math.Sqrt(float64(rows))
					}
					if d := maxAbsDiff(want, got); d > tol {
						t.Fatalf("TMul (%dx%d)ᵀ·%dx%d threads=%d: max diff %g > %g",
							rows, k1, rows, k2, threads, d, tol)
					}
				}
			}
		}
	}
}

func TestIntoVariantsMatchAllocating(t *testing.T) {
	rng := engineRand(4)
	a := Random(50, 12, rng)
	b := Random(12, 16, rng)
	c := Random(50, 16, rng)
	tn := Tuning{}

	dst := Random(50, 16, rng) // dirty destination: Into must overwrite
	if d := maxAbsDiff(MulInto(dst, a, b, tn), MulOpts(a, b, tn)); d != 0 {
		t.Errorf("MulInto differs from Mul by %g", d)
	}
	dst2 := Random(12, 16, rng)
	if d := maxAbsDiff(TMulInto(dst2, a, c, tn), TMulOpts(a, c, tn)); d != 0 {
		t.Errorf("TMulInto differs from TMul by %g", d)
	}
	dst3 := Random(50, 50, rng)
	if d := maxAbsDiff(MulTInto(dst3, a, a, tn), MulTOpts(a, a, tn)); d != 0 {
		t.Errorf("MulTInto differs from MulT by %g", d)
	}
	dst4 := Random(50, 16, rng)
	if d := maxAbsDiff(SubInto(dst4, c, MulOpts(a, b, tn)), Sub(c, MulOpts(a, b, tn))); d != 0 {
		t.Errorf("SubInto differs from Sub by %g", d)
	}
}

func TestEngineEmptyShapes(t *testing.T) {
	tn := forceParallel(4)
	if got := MulOpts(New(0, 5), New(5, 3), tn); got.Rows != 0 || got.Cols != 3 {
		t.Errorf("Mul with 0 rows: got %dx%d", got.Rows, got.Cols)
	}
	if got := MulOpts(New(4, 0), New(0, 3), tn); got.MaxAbs() != 0 {
		t.Errorf("Mul with empty inner dimension should be zero")
	}
	if got := TMulOpts(New(0, 4), New(0, 3), tn); got.Rows != 4 || got.Cols != 3 || got.MaxAbs() != 0 {
		t.Errorf("TMul over 0 rows should be a zero 4x3")
	}
	if got := MulTOpts(New(3, 0), New(2, 0), tn); got.Rows != 3 || got.Cols != 2 || got.MaxAbs() != 0 {
		t.Errorf("MulT with empty inner dimension should be a zero 3x2")
	}
}

func TestIntoVariantsSteadyStateAllocs(t *testing.T) {
	rng := engineRand(5)
	a := Random(64, 8, rng)
	b := Random(8, 8, rng)
	c := Random(64, 8, rng)
	dst := New(64, 8)
	gram := New(8, 8)
	scores := New(64, 64)
	tn := Tuning{}
	if n := testing.AllocsPerRun(20, func() {
		MulInto(dst, a, b, tn)
		TMulInto(gram, a, c, tn)
		MulTInto(scores, a, c, tn)
		SubInto(dst, a, c)
	}); n != 0 {
		t.Errorf("Into variants allocated %v times per sequential run, want 0", n)
	}
}

func TestTuningValidate(t *testing.T) {
	for _, tc := range []struct {
		tn Tuning
		ok bool
	}{
		{Tuning{}, true},
		{Tuning{Threads: 8, Strategy: StrategyLegacy, MinParallelFlops: 100}, true},
		{Tuning{Threads: -1}, false},
		{Tuning{MinParallelFlops: -5}, false},
		{Tuning{Strategy: Strategy(9)}, false},
	} {
		if err := tc.tn.Validate(); (err == nil) != tc.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", tc.tn, err, tc.ok)
		}
	}
	if s := StrategyAuto.String(); s != "auto" {
		t.Errorf("StrategyAuto.String() = %q", s)
	}
	if s := Strategy(9).String(); s != "Strategy(9)" {
		t.Errorf("Strategy(9).String() = %q", s)
	}
}

func TestEngineMetricsRecorded(t *testing.T) {
	// Covered indirectly elsewhere; here: the fma counter books identical
	// pure-shape counts for legacy and auto on every orientation.
	rng := engineRand(6)
	a := Random(30, 8, rng)
	b := Random(8, 8, rng)
	for _, strat := range []Strategy{StrategyAuto, StrategyLegacy} {
		reg := newTestRegistry(t)
		MulOpts(a, b, Tuning{Strategy: strat})
		TMulOpts(a, a, Tuning{Strategy: strat})
		MulTOpts(a, a, Tuning{Strategy: strat})
		QROpts(a, Tuning{Strategy: strat})
		want := 30.*8*8 + 30.*8*8 + 30.*8*30 + qrFlops(30, 8)
		if got := reg.Counter("dense_gemm_fma_total", "").Value(); got != want {
			t.Errorf("strategy %v booked %g fma, want %g", strat, got, want)
		}
	}
}
