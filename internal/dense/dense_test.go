package dense

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)) }

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("entry %d not zero: %v", i, v)
		}
	}
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	want := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	for i := range want {
		for j := range want[i] {
			if m.At(i, j) != want[i][j] {
				t.Errorf("At(%d,%d)=%v want %v", i, j, m.At(i, j), want[i][j])
			}
		}
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	m.At(2, 0)
}

func TestIdentityMul(t *testing.T) {
	a := Random(4, 4, rng(1))
	i4 := Identity(4)
	if !Equal(Mul(a, i4), a, 1e-14) {
		t.Error("A*I != A")
	}
	if !Equal(Mul(i4, a), a, 1e-14) {
		t.Error("I*A != A")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	got := Mul(a, b)
	want := FromRows([][]float64{{58, 64}, {139, 154}})
	if !Equal(got, want, 1e-14) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

func TestTransposeInvolution(t *testing.T) {
	a := Random(5, 3, rng(2))
	if !Equal(a.T().T(), a, 0) {
		t.Error("(Aᵀ)ᵀ != A")
	}
}

func TestMulTAndTMulAgainstExplicit(t *testing.T) {
	r := rng(3)
	a := Random(4, 6, r)
	b := Random(5, 6, r)
	if !Equal(MulT(a, b), Mul(a, b.T()), 1e-12) {
		t.Error("MulT(a,b) != a*bᵀ")
	}
	c := Random(4, 3, r)
	if !Equal(TMul(a, c), Mul(a.T(), c), 1e-12) {
		t.Error("TMul(a,c) != aᵀ*c")
	}
}

func TestAddSubScale(t *testing.T) {
	r := rng(4)
	a := Random(3, 3, r)
	b := Random(3, 3, r)
	if !Equal(Sub(Add(a, b), b), a, 1e-12) {
		t.Error("(a+b)-b != a")
	}
	c := a.Clone()
	c.Scale(2)
	if !Equal(c, Add(a, a), 1e-12) {
		t.Error("2a != a+a")
	}
	d := a.Clone()
	d.AddScaled(-1, a)
	if d.MaxAbs() > 1e-15 {
		t.Error("a + (-1)a != 0")
	}
}

func TestScaleCols(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	a.ScaleCols([]float64{10, 100})
	want := FromRows([][]float64{{10, 200}, {30, 400}})
	if !Equal(a, want, 0) {
		t.Errorf("got %v want %v", a, want)
	}
}

func TestDotNorm(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot=%v want 32", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2=%v want 5", got)
	}
}

func TestColAndSliceCols(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	col := a.Col(1)
	if col[0] != 2 || col[1] != 5 {
		t.Errorf("Col(1)=%v", col)
	}
	s := a.SliceCols(1, 3)
	want := FromRows([][]float64{{2, 3}, {5, 6}})
	if !Equal(s, want, 0) {
		t.Errorf("SliceCols got %v want %v", s, want)
	}
}

// ---- QR ----

func TestQRIdentities(t *testing.T) {
	for _, shape := range [][2]int{{4, 4}, {8, 3}, {20, 7}, {50, 1}, {5, 5}} {
		m, n := shape[0], shape[1]
		a := Random(m, n, rng(uint64(m*100+n)))
		q, r := QR(a)
		if q.Rows != m || q.Cols != n || r.Rows != n || r.Cols != n {
			t.Fatalf("QR shape wrong for %dx%d", m, n)
		}
		// QᵀQ = I
		qtq := TMul(q, q)
		if !Equal(qtq, Identity(n), 1e-10) {
			t.Errorf("%dx%d: QᵀQ != I (max dev %g)", m, n, Sub(qtq, Identity(n)).MaxAbs())
		}
		// A = QR
		if !Equal(Mul(q, r), a, 1e-10) {
			t.Errorf("%dx%d: QR != A", m, n)
		}
		// R upper-triangular
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				if math.Abs(r.At(i, j)) > 1e-12 {
					t.Errorf("R[%d,%d]=%g not zero", i, j, r.At(i, j))
				}
			}
		}
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Two identical columns: QR must still produce finite output with A=QR.
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	q, r := QR(a)
	if !Equal(Mul(q, r), a, 1e-12) {
		t.Error("QR != A for rank-deficient input")
	}
	for _, v := range q.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite entry in Q")
		}
	}
}

func TestQRZeroMatrix(t *testing.T) {
	a := New(4, 2)
	q, r := QR(a)
	if !Equal(Mul(q, r), a, 1e-14) {
		t.Error("QR != 0 for zero input")
	}
}

func TestQRPropertyBased(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng(seed)
		m := 2 + int(seed%20)
		n := 1 + int(seed%uint64(m))
		a := Random(m, n, r)
		q, rr := QR(a)
		return Equal(TMul(q, q), Identity(n), 1e-9) && Equal(Mul(q, rr), a, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// ---- SymEig / SVD ----

func TestSymEigKnown(t *testing.T) {
	// Eigenvalues of [[2,1],[1,2]] are 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs := SymEig(a)
	if math.Abs(vals[0]-3) > 1e-12 || math.Abs(vals[1]-1) > 1e-12 {
		t.Errorf("vals=%v want [3 1]", vals)
	}
	// Check A v = λ v for each.
	for j := 0; j < 2; j++ {
		v := vecs.Col(j)
		av := Mul(a, FromRows([][]float64{{v[0]}, {v[1]}}))
		for i := 0; i < 2; i++ {
			if math.Abs(av.At(i, 0)-vals[j]*v[i]) > 1e-12 {
				t.Errorf("eigenpair %d residual too large", j)
			}
		}
	}
}

func TestSymEigResidualAndOrthogonality(t *testing.T) {
	r := rng(7)
	for _, n := range []int{1, 2, 5, 12, 30} {
		b := Random(n, n, r)
		a := Add(b, b.T()) // symmetric
		vals, vecs := SymEig(a)
		// VᵀV = I
		if !Equal(TMul(vecs, vecs), Identity(n), 1e-9) {
			t.Errorf("n=%d: eigenvectors not orthonormal", n)
		}
		// AV = VΛ
		av := Mul(a, vecs)
		vl := vecs.Clone()
		vl.ScaleCols(vals)
		if !Equal(av, vl, 1e-8) {
			t.Errorf("n=%d: AV != VΛ (max dev %g)", n, Sub(av, vl).MaxAbs())
		}
		// Descending order.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				t.Errorf("n=%d: eigenvalues not descending: %v", n, vals)
			}
		}
	}
}

func TestSymEigTraceInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng(seed)
		n := 2 + int(seed%10)
		b := Random(n, n, r)
		a := Add(b, b.T())
		vals, _ := SymEig(a)
		var trace, sum float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
		}
		for _, v := range vals {
			sum += v
		}
		return math.Abs(trace-sum) < 1e-8*(1+math.Abs(trace))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSVDReconstruction(t *testing.T) {
	r := rng(11)
	for _, shape := range [][2]int{{6, 4}, {4, 6}, {5, 5}, {10, 2}} {
		m, n := shape[0], shape[1]
		a := Random(m, n, r)
		u, s, v := SVD(a)
		// Rebuild A = U diag(s) Vᵀ.
		us := u.Clone()
		us.ScaleCols(s)
		rec := MulT(us, v)
		if !Equal(rec, a, 1e-8) {
			t.Errorf("%dx%d: SVD reconstruction off by %g", m, n, Sub(rec, a).MaxAbs())
		}
		// Singular values non-negative, descending.
		for i, sv := range s {
			if sv < 0 {
				t.Errorf("negative singular value %g", sv)
			}
			if i > 0 && sv > s[i-1]+1e-10 {
				t.Errorf("singular values not sorted: %v", s)
			}
		}
	}
}

func TestSVDSingularValuesKnown(t *testing.T) {
	// diag(3,2) has singular values 3,2.
	a := FromRows([][]float64{{3, 0}, {0, 2}})
	_, s, _ := SVD(a)
	if math.Abs(s[0]-3) > 1e-10 || math.Abs(s[1]-2) > 1e-10 {
		t.Errorf("s=%v want [3 2]", s)
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(3, 3, rng(42))
	b := Random(3, 3, rng(42))
	if !Equal(a, b, 0) {
		t.Error("Random not deterministic for equal seeds")
	}
}
