package dense

import "gebe/internal/cpu"

// The inner GEMM kernels. Every kernel performs exactly rows·inner·cols
// multiply-adds for its assigned row range — the engine's fma counter is
// strategy- and kernel-independent, which is what lets the equivalence
// tests and BENCH_DENSE assert identical work across dispatch choices.
//
// Mul (A·B) mirrors the sparse engine's width dispatch: the specialized
// widths keep the whole output row in named scalars for the duration of
// an input row, so the inner loop does k loads and k FMAs per inner
// element and no stores at all; the generic kernel must read-modify-
// write the output row instead. Because each output element accumulates
// its terms in the same ascending inner order as the generic loop, the
// specialized kernels produce bitwise-identical results.
//
// MulT (A·Bᵀ) blocks four B rows per pass so each A row is streamed once
// per four output columns instead of once per column; each output
// element is still a single ascending-order dot product, so results are
// bitwise identical to the legacy Dot-per-pair loop.
//
// TMul (Aᵀ·B) chunks input rows and holds a 2×4 register tile across
// each chunk, cutting the read-modify-write traffic on the k₁×k₂
// accumulator by the chunk length. The tile is seeded from the output
// and stored back, so each element is still one continuous ascending
// sum — bitwise identical to the legacy scatter loop. (The parallel
// TMul path folds per-worker partials and is the one place in the
// engine that reorders a reduction; it only engages past the flop gate
// with >1 worker.)

// mulKernel computes rows [lo,hi) of a·b into out (a row stride inner,
// b/out row stride k). Output rows must be zero on entry.
type mulKernel func(ad, bd, od []float64, inner, k, lo, hi int)

// The dispatch tables. Scalar Go kernels are installed here; the vector
// flavors register from kernels_simd.go when the CPU supports them, and
// Pick applies the shared width classification plus fma → simd → go
// fallback from internal/cpu. MulT and TMul pick by shape threshold
// rather than width class, so they use the width-free Variants form.
var (
	mulKernels  = cpu.NewTable[mulKernel](mulGeneric, "generic")
	mulTKernels = cpu.NewVariants[mulTKernel](mulTDot4, "dot4")
	tmulKernels = cpu.NewVariants[tmulKernel](tmulBlocked, "b2x4")
)

func init() {
	mulKernels.SetGo(cpu.WidthK4, mulK4, "k4")
	mulKernels.SetGo(cpu.WidthK8, mulK8, "k8")
	mulKernels.SetGo(cpu.WidthK16, mulK16, "k16")
	mulKernels.SetGo(cpu.WidthPanel8, mulPanel8, "panel8")
}

// dispatchMul picks the widest kernel that tiles a k-column block under
// the requested flavor.
func dispatchMul(k int, mode cpu.KernelMode) (mulKernel, string) {
	return mulKernels.Pick(k, mode)
}

// mulGeneric is the pre-engine ikj loop, byte-for-byte the old Mul body:
// stream b's rows, accumulate into out's rows.
func mulGeneric(ad, bd, od []float64, inner, k, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := ad[i*inner : (i+1)*inner]
		orow := od[i*k : (i+1)*k]
		for l, av := range arow {
			if av == 0 {
				continue
			}
			brow := bd[l*k : (l+1)*k]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

func mulK4(ad, bd, od []float64, inner, _, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := ad[i*inner:][:inner]
		var s0, s1, s2, s3 float64
		for l, av := range arow {
			b := bd[l*4:][:4]
			s0 += av * b[0]
			s1 += av * b[1]
			s2 += av * b[2]
			s3 += av * b[3]
		}
		o := od[i*4:][:4]
		o[0], o[1], o[2], o[3] = s0, s1, s2, s3
	}
}

func mulK8(ad, bd, od []float64, inner, _, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := ad[i*inner:][:inner]
		var s0, s1, s2, s3, s4, s5, s6, s7 float64
		for l, av := range arow {
			b := bd[l*8:][:8]
			s0 += av * b[0]
			s1 += av * b[1]
			s2 += av * b[2]
			s3 += av * b[3]
			s4 += av * b[4]
			s5 += av * b[5]
			s6 += av * b[6]
			s7 += av * b[7]
		}
		o := od[i*8:][:8]
		o[0], o[1], o[2], o[3] = s0, s1, s2, s3
		o[4], o[5], o[6], o[7] = s4, s5, s6, s7
	}
}

func mulK16(ad, bd, od []float64, inner, _, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := ad[i*inner:][:inner]
		var s0, s1, s2, s3, s4, s5, s6, s7 float64
		var s8, s9, sa, sb, sc, sd, se, sf float64
		for l, av := range arow {
			b := bd[l*16:][:16]
			s0 += av * b[0]
			s1 += av * b[1]
			s2 += av * b[2]
			s3 += av * b[3]
			s4 += av * b[4]
			s5 += av * b[5]
			s6 += av * b[6]
			s7 += av * b[7]
			s8 += av * b[8]
			s9 += av * b[9]
			sa += av * b[10]
			sb += av * b[11]
			sc += av * b[12]
			sd += av * b[13]
			se += av * b[14]
			sf += av * b[15]
		}
		o := od[i*16:][:16]
		o[0], o[1], o[2], o[3] = s0, s1, s2, s3
		o[4], o[5], o[6], o[7] = s4, s5, s6, s7
		o[8], o[9], o[10], o[11] = s8, s9, sa, sb
		o[12], o[13], o[14], o[15] = sc, sd, se, sf
	}
}

// mulPanel8 tiles a k%8==0 block into 8-column panels, re-scanning the
// input row once per panel; for GEBE's inner dimensions (k or the Krylov
// width) the row stays L1-resident, and each panel keeps its
// accumulators in registers.
func mulPanel8(ad, bd, od []float64, inner, k, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := ad[i*inner:][:inner]
		for j0 := 0; j0 < k; j0 += 8 {
			var s0, s1, s2, s3, s4, s5, s6, s7 float64
			for l, av := range arow {
				b := bd[l*k+j0:][:8]
				s0 += av * b[0]
				s1 += av * b[1]
				s2 += av * b[2]
				s3 += av * b[3]
				s4 += av * b[4]
				s5 += av * b[5]
				s6 += av * b[6]
				s7 += av * b[7]
			}
			o := od[i*k+j0:][:8]
			o[0], o[1], o[2], o[3] = s0, s1, s2, s3
			o[4], o[5], o[6], o[7] = s4, s5, s6, s7
		}
	}
}

// mulTKernel computes rows [lo,hi) of a·bᵀ into out: a is ·×inner
// (row stride inner), b is p×inner, out row stride p. Rows are fully
// overwritten; zeroing is not required.
type mulTKernel func(ad, bd, od []float64, inner, p, lo, hi int)

// mulTGeneric is the pre-engine loop: one Dot per output element.
func mulTGeneric(ad, bd, od []float64, inner, p, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := ad[i*inner:][:inner]
		orow := od[i*p:][:p]
		for j := 0; j < p; j++ {
			orow[j] = Dot(arow, bd[j*inner:][:inner])
		}
	}
}

// mulTDot4 computes four output columns per pass over the A row: four
// dot-product accumulators stay in registers and the A row is loaded
// once per four B rows instead of once per B row. Each element is still
// one ascending-order dot product — bitwise identical to mulTGeneric.
func mulTDot4(ad, bd, od []float64, inner, p, lo, hi int) {
	j4 := p - p%4
	for i := lo; i < hi; i++ {
		arow := ad[i*inner:][:inner]
		orow := od[i*p:][:p]
		for j := 0; j < j4; j += 4 {
			b0 := bd[j*inner:][:inner]
			b1 := bd[(j+1)*inner:][:inner]
			b2 := bd[(j+2)*inner:][:inner]
			b3 := bd[(j+3)*inner:][:inner]
			var s0, s1, s2, s3 float64
			for l, av := range arow {
				s0 += av * b0[l]
				s1 += av * b1[l]
				s2 += av * b2[l]
				s3 += av * b3[l]
			}
			orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
		}
		for j := j4; j < p; j++ {
			orow[j] = Dot(arow, bd[j*inner:][:inner])
		}
	}
}

// dispatchMulT picks the blocked kernel whenever there are enough output
// columns to fill a 4-wide tile at least once.
func dispatchMulT(p int, mode cpu.KernelMode) (mulTKernel, string) {
	if p >= 4 {
		return mulTKernels.Pick(mode)
	}
	return mulTGeneric, "generic"
}

// tmulKernel accumulates rows [lo,hi) of aᵀ·b into out (k1×k2): a row
// stride k1, b row stride k2. Racy unless each worker owns a private out.
type tmulKernel func(ad, bd, od []float64, k1, k2, lo, hi int)

// tmulGeneric is the pre-engine loop: per input row, scatter the outer
// product of the a-row and b-row into the k1×k2 accumulator.
func tmulGeneric(ad, bd, od []float64, k1, k2, lo, hi int) {
	for l := lo; l < hi; l++ {
		arow := ad[l*k1:][:k1]
		brow := bd[l*k2:][:k2]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := od[i*k2:][:k2]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// tmulChunkRows is the row-chunk length of the blocked Aᵀ·B kernel: the
// 2×4 register tiles accumulate across this many input rows before
// touching the k1×k2 output, dividing its read-modify-write traffic by
// the chunk length while the chunk's A/B rows stay L1-resident.
const tmulChunkRows = 8

// tmulBlocked is the chunked 2×4 register-tile kernel; see the package
// comment for the blocking scheme.
func tmulBlocked(ad, bd, od []float64, k1, k2, lo, hi int) {
	i2 := k1 - k1%2
	j4 := k2 - k2%4
	for l0 := lo; l0 < hi; l0 += tmulChunkRows {
		le := min(l0+tmulChunkRows, hi)
		for i := 0; i < i2; i += 2 {
			for j := 0; j < j4; j += 4 {
				// Seed the tile from the output and store back, rather
				// than adding a separately-accumulated chunk sum: the
				// per-element FP sequence is then the same ascending
				// continuous accumulation as tmulGeneric — bitwise
				// identical — at the same load/store cost.
				o0 := od[i*k2+j:][:4]
				o1 := od[(i+1)*k2+j:][:4]
				s00, s01, s02, s03 := o0[0], o0[1], o0[2], o0[3]
				s10, s11, s12, s13 := o1[0], o1[1], o1[2], o1[3]
				for l := l0; l < le; l++ {
					a := ad[l*k1+i:][:2]
					b := bd[l*k2+j:][:4]
					s00 += a[0] * b[0]
					s01 += a[0] * b[1]
					s02 += a[0] * b[2]
					s03 += a[0] * b[3]
					s10 += a[1] * b[0]
					s11 += a[1] * b[1]
					s12 += a[1] * b[2]
					s13 += a[1] * b[3]
				}
				o0[0], o0[1], o0[2], o0[3] = s00, s01, s02, s03
				o1[0], o1[1], o1[2], o1[3] = s10, s11, s12, s13
			}
			for j := j4; j < k2; j++ {
				s0, s1 := od[i*k2+j], od[(i+1)*k2+j]
				for l := l0; l < le; l++ {
					bv := bd[l*k2+j]
					s0 += ad[l*k1+i] * bv
					s1 += ad[l*k1+i+1] * bv
				}
				od[i*k2+j] = s0
				od[(i+1)*k2+j] = s1
			}
		}
		for i := i2; i < k1; i++ {
			for j := 0; j < k2; j++ {
				s := od[i*k2+j]
				for l := l0; l < le; l++ {
					s += ad[l*k1+i] * bd[l*k2+j]
				}
				od[i*k2+j] = s
			}
		}
	}
}

// dispatchTMul picks the blocked kernel whenever a 2×4 tile fits.
func dispatchTMul(k1, k2 int, mode cpu.KernelMode) (tmulKernel, string) {
	if k1 >= 2 && k2 >= 4 {
		return tmulKernels.Pick(mode)
	}
	return tmulGeneric, "generic"
}
