package core

import (
	"errors"
	"testing"
	"time"

	"gebe/internal/budget"
	"gebe/internal/obs"
)

// TestValidateBoundaries exercises validate directly (GEBE's withDefaults
// replaces zero Lambda/Epsilon before validation, so the boundary values
// are only reachable here) and pins the messages to the checks: Lambda
// must be positive, so 0 is invalid; Epsilon must lie in the open
// interval (0,1), so both endpoints are invalid.
func TestValidateBoundaries(t *testing.T) {
	g := figure1Graph(t)
	base := Options{K: 2, Tau: 20, Lambda: 1, Epsilon: 0.1}
	cases := []struct {
		name   string
		mutate func(*Options)
		wantOK bool
	}{
		{"valid", func(o *Options) {}, true},
		{"lambda zero", func(o *Options) { o.Lambda = 0 }, false},
		{"lambda negative", func(o *Options) { o.Lambda = -1 }, false},
		{"lambda tiny positive", func(o *Options) { o.Lambda = 1e-12 }, true},
		{"epsilon zero", func(o *Options) { o.Epsilon = 0 }, false},
		{"epsilon one", func(o *Options) { o.Epsilon = 1 }, false},
		{"epsilon negative", func(o *Options) { o.Epsilon = -0.1 }, false},
		{"epsilon near zero", func(o *Options) { o.Epsilon = 1e-9 }, true},
		{"epsilon near one", func(o *Options) { o.Epsilon = 0.999999 }, true},
	}
	for _, tc := range cases {
		opt := base
		tc.mutate(&opt)
		err := opt.validate(g, false)
		if tc.wantOK && err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		}
		if !tc.wantOK && err == nil {
			t.Errorf("%s: validate accepted %+v", tc.name, opt)
		}
	}
}

// TestGEBEDeadlineExceeded checks the cooperative-timeout contract: an
// already-expired deadline makes GEBE abort with budget.ErrExceeded, a
// nil embedding, a fully closed trace — and leaves the process able to
// run the same problem to completion immediately afterwards.
func TestGEBEDeadlineExceeded(t *testing.T) {
	g := randomBipartite(t, 60, 40, 400, true, 5)
	tr := obs.NewTrace("deadline-test")
	opt := Options{K: 4, Seed: 1, Deadline: time.Now().Add(-time.Second), Trace: tr}
	emb, err := GEBE(g, opt)
	if err == nil {
		t.Fatal("GEBE ignored an expired deadline")
	}
	if !errors.Is(err, budget.ErrExceeded) {
		t.Errorf("error does not wrap budget.ErrExceeded: %v", err)
	}
	if emb != nil {
		t.Errorf("timed-out run returned a partial embedding: %+v", emb)
	}
	root := tr.Root()
	var assertClosed func(s *obs.Span)
	assertClosed = func(s *obs.Span) {
		if s.Duration <= 0 {
			t.Errorf("span %q left open after timeout", s.Name)
		}
		for _, c := range s.Children {
			assertClosed(c)
		}
	}
	assertClosed(root)

	opt.Deadline = time.Time{}
	emb, err = GEBE(g, opt)
	if err != nil || emb == nil {
		t.Fatalf("run after timeout failed: %v", err)
	}
}

// TestAblationDeadlineExceeded covers the same contract for the two
// ablation solvers, whose deadline plumbing is separate.
func TestAblationDeadlineExceeded(t *testing.T) {
	g := randomBipartite(t, 60, 40, 400, true, 5)
	expired := time.Now().Add(-time.Second)
	if _, err := MHPBNE(g, Options{K: 4, Seed: 1, Deadline: expired}); !errors.Is(err, budget.ErrExceeded) {
		t.Errorf("MHPBNE: want budget.ErrExceeded, got %v", err)
	}
	if _, err := MHSBNE(g, Options{K: 4, Seed: 1, Deadline: expired}); !errors.Is(err, budget.ErrExceeded) {
		t.Errorf("MHSBNE: want budget.ErrExceeded, got %v", err)
	}
}
