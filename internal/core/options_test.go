package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"gebe/internal/bigraph"
	"gebe/internal/budget"
	"gebe/internal/dense"
	"gebe/internal/linalg"
	"gebe/internal/obs"
)

// TestValidateBoundaries exercises validate directly (GEBE's withDefaults
// replaces zero Lambda/Epsilon before validation, so the boundary values
// are only reachable here) and pins the messages to the checks: Lambda
// must be positive, so 0 is invalid; Epsilon must lie in the open
// interval (0,1), so both endpoints are invalid.
func TestValidateBoundaries(t *testing.T) {
	g := figure1Graph(t)
	base := Options{K: 2, Tau: 20, Lambda: 1, Epsilon: 0.1}
	cases := []struct {
		name   string
		mutate func(*Options)
		wantOK bool
	}{
		{"valid", func(o *Options) {}, true},
		{"lambda zero", func(o *Options) { o.Lambda = 0 }, false},
		{"lambda negative", func(o *Options) { o.Lambda = -1 }, false},
		{"lambda tiny positive", func(o *Options) { o.Lambda = 1e-12 }, true},
		{"epsilon zero", func(o *Options) { o.Epsilon = 0 }, false},
		{"epsilon one", func(o *Options) { o.Epsilon = 1 }, false},
		{"epsilon negative", func(o *Options) { o.Epsilon = -0.1 }, false},
		{"epsilon near zero", func(o *Options) { o.Epsilon = 1e-9 }, true},
		{"epsilon near one", func(o *Options) { o.Epsilon = 0.999999 }, true},
		{"iters negative", func(o *Options) { o.Iters = -1 }, false},
		{"tol negative", func(o *Options) { o.Tol = -1e-7 }, false},
		{"threads negative", func(o *Options) { o.Threads = -2 }, false},
		{"stop window negative", func(o *Options) { o.StopWindow = -1 }, false},
		{"stop window zero default", func(o *Options) { o.StopWindow = 0 }, true},
		{"stop flatness negative", func(o *Options) { o.StopFlatness = -0.5 }, false},
		{"stop flatness one", func(o *Options) { o.StopFlatness = 1 }, false},
		{"stop flatness valid", func(o *Options) { o.StopFlatness = 0.95 }, true},
		{"dense tuning valid", func(o *Options) { o.Dense = dense.Tuning{Strategy: dense.StrategyLegacy, MinParallelFlops: 100} }, true},
		{"dense threads negative", func(o *Options) { o.Dense.Threads = -3 }, false},
		{"dense flop gate negative", func(o *Options) { o.Dense.MinParallelFlops = -1 }, false},
		{"dense strategy unknown", func(o *Options) { o.Dense.Strategy = dense.Strategy(7) }, false},
	}
	for _, tc := range cases {
		opt := base
		tc.mutate(&opt)
		err := opt.validate(g, false)
		if tc.wantOK && err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		}
		if !tc.wantOK && err == nil {
			t.Errorf("%s: validate accepted %+v", tc.name, opt)
		}
	}
}

// TestGEBEDeadlineExceeded checks the cooperative-timeout contract: an
// already-expired deadline makes GEBE abort with budget.ErrExceeded, a
// nil embedding, a fully closed trace — and leaves the process able to
// run the same problem to completion immediately afterwards.
func TestGEBEDeadlineExceeded(t *testing.T) {
	g := randomBipartite(t, 60, 40, 400, true, 5)
	tr := obs.NewTrace("deadline-test")
	opt := Options{K: 4, Seed: 1, Deadline: time.Now().Add(-time.Second), Trace: tr}
	emb, err := GEBE(g, opt)
	if err == nil {
		t.Fatal("GEBE ignored an expired deadline")
	}
	if !errors.Is(err, budget.ErrExceeded) {
		t.Errorf("error does not wrap budget.ErrExceeded: %v", err)
	}
	if emb != nil {
		t.Errorf("timed-out run returned a partial embedding: %+v", emb)
	}
	root := tr.Root()
	var assertClosed func(s *obs.Span)
	assertClosed = func(s *obs.Span) {
		if s.Duration <= 0 {
			t.Errorf("span %q left open after timeout", s.Name)
		}
		for _, c := range s.Children {
			assertClosed(c)
		}
	}
	assertClosed(root)

	opt.Deadline = time.Time{}
	emb, err = GEBE(g, opt)
	if err != nil || emb == nil {
		t.Fatalf("run after timeout failed: %v", err)
	}
}

// TestAblationDeadlineExceeded covers the same contract for every
// solver whose deadline plumbing is separate from GEBE's: GEBE^p (whose
// randomized SVD must not run at all on a blown budget) and the two
// ablation baselines.
func TestAblationDeadlineExceeded(t *testing.T) {
	g := randomBipartite(t, 60, 40, 400, true, 5)
	expired := time.Now().Add(-time.Second)
	solvers := []struct {
		name string
		run  func(*bigraph.Graph, Options) (*Embedding, error)
		opt  Options
	}{
		{"GEBEP", GEBEP, Options{K: 4, Seed: 1, Deadline: expired}},
		// NoScale skips the σ₁ power iteration, so the deadline must be
		// caught inside RandomizedSVDRun itself.
		{"GEBEP-noscale", GEBEP, Options{K: 4, Seed: 1, Deadline: expired, NoScale: true}},
		{"MHPBNE", MHPBNE, Options{K: 4, Seed: 1, Deadline: expired}},
		{"MHSBNE", MHSBNE, Options{K: 4, Seed: 1, Deadline: expired}},
	}
	for _, tc := range solvers {
		emb, err := tc.run(g, tc.opt)
		if err == nil {
			t.Errorf("%s: ignored an expired deadline", tc.name)
			continue
		}
		if !errors.Is(err, budget.ErrExceeded) {
			t.Errorf("%s: want budget.ErrExceeded, got %v", tc.name, err)
		}
		if emb != nil {
			t.Errorf("%s: timed-out run returned a partial embedding", tc.name)
		}
	}
}

// TestAdaptiveStopMatchesFixedRun is the quality contract of the
// adaptive KSI stopping controller: with a tolerance below the
// subspace's numerical floor and a 200-sweep budget, the controller
// must exit strictly before the fixed run exhausts its budget, and
// every eigenvalue it returns must agree with the full fixed-budget run
// to 1e-6 relative error.
func TestAdaptiveStopMatchesFixedRun(t *testing.T) {
	g := twoBlockGraph(t)
	// Tol below the subspace's numerical floor, so plain convergence can
	// never fire and the controller has to recognize the floor itself.
	base := Options{K: 2, Seed: 9, Iters: 200, Tol: 1e-18}
	adaptive, err := GEBE(g, base)
	if err != nil {
		t.Fatal(err)
	}
	fixedOpt := base
	fixedOpt.NoAdaptiveStop = true
	fixed, err := GEBE(g, fixedOpt)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Sweeps != 200 {
		t.Fatalf("fixed run stopped at %d sweeps (%s); budget semantics changed", fixed.Sweeps, fixed.StopReason)
	}
	if adaptive.Sweeps >= fixed.Sweeps {
		t.Errorf("adaptive run used %d sweeps, not fewer than the fixed %d", adaptive.Sweeps, fixed.Sweeps)
	}
	if adaptive.StopReason != string(linalg.StopStagnated) && adaptive.StopReason != string(linalg.StopUnreachable) {
		t.Errorf("adaptive run stopped for %q, want a controller reason", adaptive.StopReason)
	}
	if adaptive.SweepsSaved != 200-adaptive.Sweeps {
		t.Errorf("SweepsSaved=%d, want %d", adaptive.SweepsSaved, 200-adaptive.Sweeps)
	}
	for i := range adaptive.Values {
		rel := math.Abs(adaptive.Values[i]-fixed.Values[i]) / (1 + math.Abs(fixed.Values[i]))
		if rel > 1e-6 {
			t.Errorf("eigenvalue %d: adaptive %v vs fixed %v (rel %g)", i, adaptive.Values[i], fixed.Values[i], rel)
		}
	}
}

// twoBlockGraph plants two dense bipartite blocks with distinct weight
// scales plus sparse noise — a stand-in for the fig2 benchmark graphs
// with a decisive eigengap, so KSI reaches its residual floor well
// inside a 200-sweep budget.
func twoBlockGraph(t *testing.T) *bigraph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	var edges []bigraph.Edge
	for u := 0; u < 30; u++ {
		for v := 0; v < 20; v++ {
			edges = append(edges, bigraph.Edge{U: u, V: v, W: 4 + rng.Float64()})
		}
	}
	for u := 30; u < 60; u++ {
		for v := 20; v < 40; v++ {
			edges = append(edges, bigraph.Edge{U: u, V: v, W: 2 + rng.Float64()})
		}
	}
	for i := 0; i < 80; i++ {
		edges = append(edges, bigraph.Edge{U: rng.Intn(60), V: rng.Intn(40), W: 0.05 * rng.Float64()})
	}
	g, err := bigraph.New(60, 40, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
