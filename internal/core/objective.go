package core

import (
	"math"

	"gebe/internal/bigraph"
	"gebe/internal/dense"
	"gebe/internal/pmf"
)

// Loss evaluates the unified BNE objective L(U,V) of Eq. (9) exactly,
// materializing the MHP matrix P and the MHS matrix S densely. Quadratic
// in |U| and |U|·|V| — a test-scale diagnostic, not a training device
// (GEBE never materializes these matrices; that is the point of §3).
//
// The MHS term uses the algebraic identity ‖û_i−û_l‖² = 2−2·cos(u_i,u_l),
// so each summand is (2·s(u_i,u_l) − 2·cos(u_i,u_l))².
func Loss(g *bigraph.Graph, u, v *dense.Matrix, omega pmf.PMF, tau int) float64 {
	w := WeightMatrix(g)
	h := ExactH(w, omega, tau)
	s := MHSFromH(h)
	p := w.TMulDense(h, 1).T() // P = H·W

	nu, nv := g.NU, g.NV
	var lossP float64
	for i := 0; i < nu; i++ {
		ui := u.Row(i)
		for j := 0; j < nv; j++ {
			d := dense.Dot(ui, v.Row(j)) - p.At(i, j)
			lossP += d * d
		}
	}
	lossP /= float64(nu) * float64(nv)

	// Pre-normalize U's rows once.
	norms := make([]float64, nu)
	for i := 0; i < nu; i++ {
		norms[i] = dense.Norm2(u.Row(i))
	}
	var lossS float64
	for i := 0; i < nu; i++ {
		for l := 0; l < nu; l++ {
			var cos float64
			if norms[i] > 0 && norms[l] > 0 {
				cos = dense.Dot(u.Row(i), u.Row(l)) / (norms[i] * norms[l])
			}
			d := 2*cos - 2*s.At(i, l)
			lossS += d * d
		}
	}
	lossS /= float64(nu) * float64(nu)
	return lossP + lossS
}

// VSideMHSDeviation measures how far the v-side identity of Lemma 2.2 is
// from holding: it returns the maximum over v-pairs of
// |½‖v̂_j−v̂_h‖² − (1 − s(v_j,v_h))|, which is zero when L(U,V)=0.
//
// Note on the reference matrix: the lemma as printed defines s on the V
// side with weights Σ_{ℓ=1}^{τ} ω(ℓ)(WᵀW)^ℓ, but the identity that its
// own proof derives is the index-shifted Wᵀ·H·W = Σ_{ℓ=0}^{τ}
// ω(ℓ)(WᵀW)^{ℓ+1} (the two coincide after normalization only for the
// Geometric PMF, whose weights are proportional under a shift). We verify
// the proof's version.
func VSideMHSDeviation(g *bigraph.Graph, v *dense.Matrix, omega pmf.PMF, tau int) float64 {
	w := WeightMatrix(g)
	h := ExactH(w, omega, tau)
	hw := w.TMulDense(h, 1).T() // H·W as |U|×|V|
	hv := w.TMulDense(hw, 1)    // Wᵀ·H·W, |V|×|V|
	sv := MHSFromH(hv)

	norms := make([]float64, g.NV)
	for j := 0; j < g.NV; j++ {
		norms[j] = dense.Norm2(v.Row(j))
	}
	var worst float64
	for j := 0; j < g.NV; j++ {
		for h := 0; h < g.NV; h++ {
			if norms[j] == 0 || norms[h] == 0 {
				continue
			}
			cos := dense.Dot(v.Row(j), v.Row(h)) / (norms[j] * norms[h])
			// ½‖v̂_j−v̂_h‖² = 1 − cos.
			dev := math.Abs((1 - cos) - (1 - sv.At(j, h)))
			if dev > worst {
				worst = dev
			}
		}
	}
	return worst
}
