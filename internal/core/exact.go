package core

import (
	"fmt"

	"gebe/internal/bigraph"
	"gebe/internal/dense"
)

// ExactEmbedding computes the reference solution U* = Z_k√Λ_k,
// V* = WᵀU* of Eq. (13) by materializing H densely and running the exact
// Jacobi eigensolver. Quadratic in |U| — used by tests and by the tiny
// graphs of the paper's running example to validate the fast solvers.
func ExactEmbedding(g *bigraph.Graph, opt Options) (*Embedding, error) {
	opt = opt.withDefaults()
	if err := opt.validate(g, false); err != nil {
		return nil, err
	}
	w, sigma, err := scaledWeightMatrix(g, opt, opt.obsRun())
	if err != nil {
		return nil, fmt.Errorf("core: ExactEmbedding: %w", err)
	}
	h := ExactH(w, opt.PMF, opt.Tau)
	vals, vecs := dense.SymEig(h)
	zk := vecs.SliceCols(0, opt.K)
	u, v := embedFromEigen(w, zk, vals[:opt.K], opt.spmm())
	return &Embedding{
		U: u, V: v,
		Values:     vals[:opt.K],
		Method:     "exact-" + opt.PMF.Name(),
		Converged:  true,
		SigmaScale: sigma,
	}, nil
}
