package core

import (
	"math"

	"gebe/internal/bigraph"
	"gebe/internal/linalg"
)

func sqrtf(x float64) float64 { return math.Sqrt(x) }

// GEBEP computes bipartite network embeddings with Algorithm 2 of the
// paper, the solver specialized for the Poisson instantiation. It
// exploits the identity e^λ·H_λ = e^{λWWᵀ} = Φ e^{λΣ²} Φᵀ (Eq. (16)–(17)):
// the top-k eigenvectors of H_λ are exactly the top-k left singular
// vectors of W, and the eigenvalues are the monotone map
// λ_i = e^{-λ}·e^{λσ_i²} of the singular values. A randomized block-Krylov
// SVD of W therefore replaces the entire KSI loop, removing both the τ
// truncation and the t-sweep budget.
//
// Time complexity: O((|E|·k + |U|·k²)·log(|V|)/ε).
func GEBEP(g *bigraph.Graph, opt Options) (*Embedding, error) {
	opt = opt.withDefaults()
	if err := opt.validate(g, true); err != nil {
		return nil, err
	}
	w, sigma := scaledWeightMatrix(g, opt)
	svd := linalg.RandomizedSVD(w, opt.K, opt.Epsilon, opt.Seed, opt.Threads)
	// Λ'_k = e^{-λ}·e^{λΣ'²} (Line 2 of Algorithm 2).
	vals := make([]float64, opt.K)
	for i, s := range svd.Sigma {
		vals[i] = math.Exp(opt.Lambda * (s*s - 1))
	}
	u, v := embedFromEigen(w, svd.U, vals, opt.Threads)
	return &Embedding{
		U: u, V: v,
		Values:     vals,
		Method:     "gebep",
		Sweeps:     0,
		Converged:  true,
		SigmaScale: sigma,
	}, nil
}
