package core

import (
	"fmt"
	"math"
	"time"

	"gebe/internal/bigraph"
	"gebe/internal/budget"
	"gebe/internal/linalg"
)

func sqrtf(x float64) float64 { return math.Sqrt(x) }

// GEBEP computes bipartite network embeddings with Algorithm 2 of the
// paper, the solver specialized for the Poisson instantiation. It
// exploits the identity e^λ·H_λ = e^{λWWᵀ} = Φ e^{λΣ²} Φᵀ (Eq. (16)–(17)):
// the top-k eigenvectors of H_λ are exactly the top-k left singular
// vectors of W, and the eigenvalues are the monotone map
// λ_i = e^{-λ}·e^{λσ_i²} of the singular values. A randomized block-Krylov
// SVD of W therefore replaces the entire KSI loop, removing both the τ
// truncation and the t-sweep budget.
//
// Time complexity: O((|E|·k + |U|·k²)·log(|V|)/ε).
func GEBEP(g *bigraph.Graph, opt Options) (*Embedding, error) {
	opt = opt.withDefaults()
	if err := opt.validate(g, true); err != nil {
		return nil, err
	}
	run := opt.obsRun()
	start := time.Now()
	run.Logger().Info("gebep: start", "nu", g.NU, "nv", g.NV, "edges", g.NumEdges(),
		"k", opt.K, "lambda", opt.Lambda, "epsilon", opt.Epsilon)
	root := run.Span("gebep")
	w, sigma, err := scaledWeightMatrix(g, opt, run)
	if err != nil {
		root.End()
		run.Logger().Warn("gebep: deadline exceeded", "phase", "sigma1")
		return nil, fmt.Errorf("core: GEBEP: %w", err)
	}
	svdCfg := linalg.SVDConfig{
		K: opt.K, Eps: opt.Epsilon, Seed: opt.Seed, Threads: opt.Threads,
		SpMM: opt.SpMM, Dense: opt.dn(), Deadline: opt.Deadline, Obs: run,
	}
	if opt.WarmStart != nil {
		svdCfg.InitU = opt.WarmStart.U
		svdCfg.InitV = opt.WarmStart.V
	}
	rsvd := run.Span("rsvd")
	svd := linalg.RandomizedSVDRun(w, svdCfg)
	rsvd.Set("krylov_dim", svd.KrylovDim).Set("iterations", svd.Iterations).Set("deadline_hit", svd.DeadlineHit)
	rsvd.End()
	if svd.DeadlineHit {
		root.End()
		run.Logger().Warn("gebep: deadline exceeded", "phase", "rsvd",
			"blocks", svd.Iterations, "elapsed_s", time.Since(start).Seconds())
		return nil, fmt.Errorf("core: GEBEP: %w", budget.ErrExceeded)
	}
	// Λ'_k = e^{-λ}·e^{λΣ'²} (Line 2 of Algorithm 2).
	mapStart := time.Now()
	mapSp := run.Span("spectral_map")
	vals := make([]float64, opt.K)
	for i, s := range svd.Sigma {
		vals[i] = math.Exp(opt.Lambda * (s*s - 1))
	}
	mapSp.End()
	mapDur := time.Since(mapStart)
	embedSp := run.Span("embed")
	u, v := embedFromEigen(w, svd.U, vals, opt.spmm())
	embedSp.End()
	root.End()
	finishRun(run, start, 0)
	run.Logger().Info("gebep: done", "krylov_dim", svd.KrylovDim, "block_steps", svd.Iterations,
		"spectral_map_s", mapDur.Seconds(), "elapsed_s", time.Since(start).Seconds())
	return &Embedding{
		U: u, V: v,
		Values:     vals,
		Method:     "gebep",
		Sweeps:     0,
		Converged:   true,
		StopReason:  string(linalg.StopConverged),
		SigmaScale:  sigma,
		WarmStarted: opt.WarmStart != nil,
	}, nil
}
