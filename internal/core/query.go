package core

import (
	"fmt"
	"sort"
	"time"

	"gebe/internal/bigraph"
	"gebe/internal/budget"
	"gebe/internal/pmf"
	"gebe/internal/sparse"
)

// The point-query API computes exact MHS/MHP values for individual node
// pairs without materializing H: one application of the H operator to an
// indicator vector yields a full column of H in O(τ·|E|) time — the
// single-pair analogue of §4.1's block computation. This is what
// cmd/gebe-sim exposes. Every query takes a cooperative deadline
// (checked once per hop, the coarse granularity internal/budget
// prescribes); a zero deadline never fires, and a blown one surfaces as
// budget.ErrExceeded.

// MHSQuery returns the exact (truncated at tau) multi-hop homogeneous
// similarity s(u_i, u_l) of Eq. (4) between two U-side nodes.
func MHSQuery(g *bigraph.Graph, omega pmf.PMF, tau, i, l int, deadline time.Time) (float64, error) {
	if err := checkPair(g.NU, i, l, "U"); err != nil {
		return 0, err
	}
	w := WeightMatrix(g)
	colI, err := hColumn(w, omega, tau, i, deadline)
	if err != nil {
		return 0, err
	}
	if i == l {
		return 1, nil
	}
	colL, err := hColumn(w, omega, tau, l, deadline)
	if err != nil {
		return 0, err
	}
	hii, hll, hil := colI[i], colL[l], colI[l]
	if hii <= 0 || hll <= 0 {
		return 0, nil
	}
	return hil / sqrtf(hii*hll), nil
}

// MHSQueryV is MHSQuery for two V-side nodes (Lemma 2.2's measure).
func MHSQueryV(g *bigraph.Graph, omega pmf.PMF, tau, j, h int, deadline time.Time) (float64, error) {
	if err := checkPair(g.NV, j, h, "V"); err != nil {
		return 0, err
	}
	w := WeightMatrix(g).T()
	colJ, err := hColumn(w, omega, tau, j, deadline)
	if err != nil {
		return 0, err
	}
	if j == h {
		return 1, nil
	}
	colH, err := hColumn(w, omega, tau, h, deadline)
	if err != nil {
		return 0, err
	}
	hjj, hhh, hjh := colJ[j], colH[h], colJ[h]
	if hjj <= 0 || hhh <= 0 {
		return 0, nil
	}
	return hjh / sqrtf(hjj*hhh), nil
}

// MHPQuery returns the exact (truncated) multi-hop heterogeneous
// proximity P[u_i, v_j] of Eq. (5).
func MHPQuery(g *bigraph.Graph, omega pmf.PMF, tau, i, j int, deadline time.Time) (float64, error) {
	if i < 0 || i >= g.NU {
		return 0, fmt.Errorf("core: u index %d outside [0,%d)", i, g.NU)
	}
	if j < 0 || j >= g.NV {
		return 0, fmt.Errorf("core: v index %d outside [0,%d)", j, g.NV)
	}
	w := WeightMatrix(g)
	col, err := hColumn(w, omega, tau, i, deadline) // row i of H (H is symmetric)
	if err != nil {
		return 0, err
	}
	// P[i,j] = (H·W)[i,j] = Σ_l H[i,l]·W[l,j] = colᵀ·W[:,j] = (Wᵀ·col)[j].
	return w.TMulVec(col, 1)[j], nil
}

// hColumn computes H[:,idx] = Σ ω(ℓ)(WWᵀ)^ℓ e_idx by repeated
// sparse matrix-vector products.
func hColumn(w *sparse.CSR, omega pmf.PMF, tau, idx int, deadline time.Time) ([]float64, error) {
	n := w.Rows
	cur := make([]float64, n)
	cur[idx] = 1
	acc := make([]float64, n)
	acc[idx] = omega.Weight(0)
	for ell := 1; ell <= tau; ell++ {
		if err := budget.Check(deadline); err != nil {
			return nil, fmt.Errorf("core: query at hop %d/%d: %w", ell, tau, err)
		}
		cur = w.MulVec(w.TMulVec(cur, 1), 1)
		if wl := omega.Weight(ell); wl != 0 {
			for x, v := range cur {
				acc[x] += wl * v
			}
		}
	}
	return acc, nil
}

func checkPair(n, a, b int, side string) error {
	if a < 0 || a >= n || b < 0 || b >= n {
		return fmt.Errorf("core: %s pair (%d,%d) outside [0,%d)", side, a, b, n)
	}
	return nil
}

// TopSimilar returns the ids of the topN nodes most similar to u_i under
// the truncated MHS measure, excluding u_i itself, ordered descending.
func TopSimilar(g *bigraph.Graph, omega pmf.PMF, tau, i, topN int, deadline time.Time) ([]int, []float64, error) {
	if i < 0 || i >= g.NU {
		return nil, nil, fmt.Errorf("core: u index %d outside [0,%d)", i, g.NU)
	}
	w := WeightMatrix(g)
	col, err := hColumn(w, omega, tau, i, deadline)
	if err != nil {
		return nil, nil, err
	}
	// Diagonal entries: need H[l,l] for every candidate. Computing all
	// diagonals exactly would cost |U| operator applies; instead reuse the
	// identity diag(H) ≥ ω(0) and compute the exact diagonal only for the
	// nonzero candidates of col (connected nodes), each via one apply.
	type cand struct {
		id int
		s  float64
	}
	var cands []cand
	hii := col[i]
	for l, hil := range col {
		if l == i || hil == 0 {
			continue
		}
		colL, err := hColumn(w, omega, tau, l, deadline)
		if err != nil {
			return nil, nil, err
		}
		hll := colL[l]
		if hii <= 0 || hll <= 0 {
			continue
		}
		cands = append(cands, cand{l, hil / sqrtf(hii*hll)})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].s != cands[b].s {
			return cands[a].s > cands[b].s
		}
		return cands[a].id < cands[b].id
	})
	if len(cands) > topN {
		cands = cands[:topN]
	}
	ids := make([]int, len(cands))
	sims := make([]float64, len(cands))
	for x, c := range cands {
		ids[x] = c.id
		sims[x] = c.s
	}
	return ids, sims, nil
}
