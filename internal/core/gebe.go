package core

import (
	"fmt"

	"gebe/internal/bigraph"
	"gebe/internal/budget"
	"gebe/internal/dense"
	"gebe/internal/linalg"
	"gebe/internal/pmf"
	"gebe/internal/sparse"
)

// hOperator applies H = Σ_{ℓ=0}^{τ} ω(ℓ)·(WWᵀ)^ℓ to a dense block without
// materializing H — Lines 3–6 of Algorithm 1, including the critical
// re-association W·(WᵀQ) that turns an O(|E|·|U|) product into O(|E|·k).
type hOperator struct {
	w       *sparse.CSR
	omega   pmf.PMF
	tau     int
	threads int
}

func (o hOperator) Dim() int { return o.w.Rows }

func (o hOperator) Apply(z *dense.Matrix) *dense.Matrix {
	q := z.Clone()
	q.Scale(o.omega.Weight(0))
	ql := z
	for ell := 1; ell <= o.tau; ell++ {
		ql = o.w.MulDense(o.w.TMulDense(ql, o.threads), o.threads)
		if wl := o.omega.Weight(ell); wl != 0 {
			q.AddScaled(wl, ql)
		}
	}
	return q
}

// scaledWeightMatrix builds W and applies the spectral scaling W/σ₁
// unless disabled, returning the matrix and the scale used.
func scaledWeightMatrix(g *bigraph.Graph, opt Options) (*sparse.CSR, float64) {
	w := WeightMatrix(g)
	if opt.NoScale {
		return w, 1
	}
	sigma := linalg.TopSingularValue(w, 0, opt.Seed^0x5ca1ab1e, opt.Threads)
	if sigma <= 0 {
		return w, 1
	}
	return w.Scaled(1 / sigma), sigma
}

// GEBE computes bipartite network embeddings with Algorithm 1 of the
// paper: Krylov subspace iteration over the implicit multi-hop matrix H
// instantiated by opt.PMF, followed by U = Z√Λ and V = WᵀU (Eq. (13)).
//
// Time complexity is O(k·t·τ·|E| + k²·t·|U|); space is
// O((|U|+|V|)·k + |E|).
func GEBE(g *bigraph.Graph, opt Options) (*Embedding, error) {
	opt = opt.withDefaults()
	if err := opt.validate(g, false); err != nil {
		return nil, err
	}
	w, sigma := scaledWeightMatrix(g, opt)
	op := hOperator{w: w, omega: opt.PMF, tau: opt.Tau, threads: opt.Threads}
	res := linalg.KSIDeadline(op, opt.K, opt.Iters, opt.Tol, opt.Seed, opt.Deadline)
	if res.DeadlineHit {
		return nil, fmt.Errorf("core: GEBE: %w", budget.ErrExceeded)
	}
	u, v := embedFromEigen(w, res.Vectors, res.Values, opt.Threads)
	return &Embedding{
		U: u, V: v,
		Values:     res.Values,
		Method:     "gebe-" + opt.PMF.Name(),
		Sweeps:     res.Sweeps,
		Converged:  res.Converged,
		SigmaScale: sigma,
	}, nil
}

// embedFromEigen realizes Eq. (13): U = Z·√Λ, V = Wᵀ·U. Tiny negative
// eigenvalue estimates (QR round-off on a PSD operator) are clamped.
func embedFromEigen(w *sparse.CSR, z *dense.Matrix, vals []float64, threads int) (u, v *dense.Matrix) {
	scales := make([]float64, len(vals))
	for i, lam := range vals {
		if lam < 0 {
			lam = 0
		}
		scales[i] = sqrtf(lam)
	}
	u = z.Clone()
	u.ScaleCols(scales)
	v = w.TMulDense(u, threads)
	return u, v
}
