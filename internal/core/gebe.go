package core

import (
	"fmt"
	"time"

	"gebe/internal/bigraph"
	"gebe/internal/budget"
	"gebe/internal/dense"
	"gebe/internal/linalg"
	"gebe/internal/obs"
	"gebe/internal/pmf"
	"gebe/internal/sparse"
)

// hOperator applies H = Σ_{ℓ=0}^{τ} ω(ℓ)·(WWᵀ)^ℓ to a dense block without
// materializing H — Lines 3–6 of Algorithm 1, including the critical
// re-association W·(WᵀQ) that turns an O(|E|·|U|) product into O(|E|·k).
type hOperator struct {
	w     *sparse.CSR
	omega pmf.PMF
	tau   int
	spmm  sparse.Tuning
}

func (o hOperator) Dim() int { return o.w.Rows }

func (o hOperator) Apply(z *dense.Matrix) *dense.Matrix {
	q := z.Clone()
	q.Scale(o.omega.Weight(0))
	ql := z
	for ell := 1; ell <= o.tau; ell++ {
		ql = o.w.MulDenseOpts(o.w.TMulDenseOpts(ql, o.spmm), o.spmm)
		if wl := o.omega.Weight(ell); wl != 0 {
			q.AddScaled(wl, ql)
		}
	}
	return q
}

// scaledWeightMatrix builds W and applies the spectral scaling W/σ₁
// unless disabled, returning the matrix and the scale used. The σ₁ power
// iteration is traced and timed through run (nil-safe) and honors the
// cooperative opt.Deadline: when it fires, budget.ErrExceeded is
// returned so no solver starts its main loop on a blown budget.
func scaledWeightMatrix(g *bigraph.Graph, opt Options, run *obs.Run) (*sparse.CSR, float64, error) {
	w := WeightMatrix(g)
	if opt.NoScale {
		return w, 1, nil
	}
	sp := run.Span("sigma1")
	start := time.Now()
	pr := linalg.TopSingularValueRun(w, linalg.PowerConfig{
		Seed: opt.Seed ^ 0x5ca1ab1e, Threads: opt.Threads, SpMM: opt.SpMM, Dense: opt.dn(), Deadline: opt.Deadline,
	})
	sp.Set("sigma1", pr.Sigma).Set("iterations", pr.Iterations).Set("deadline_hit", pr.DeadlineHit)
	sp.End()
	run.Registry().Histogram("core_sigma1_seconds", "wall-clock of σ₁ power iteration", nil).ObserveSince(start)
	run.Logger().Debug("sigma1: estimated", "sigma1", pr.Sigma, "elapsed_s", time.Since(start).Seconds())
	if pr.DeadlineHit {
		return nil, 0, budget.ErrExceeded
	}
	if pr.Sigma <= 0 {
		return w, 1, nil
	}
	return w.Scaled(1 / pr.Sigma), pr.Sigma, nil
}

// GEBE computes bipartite network embeddings with Algorithm 1 of the
// paper: Krylov subspace iteration over the implicit multi-hop matrix H
// instantiated by opt.PMF, followed by U = Z√Λ and V = WᵀU (Eq. (13)).
//
// Time complexity is O(k·t·τ·|E| + k²·t·|U|); space is
// O((|U|+|V|)·k + |E|).
func GEBE(g *bigraph.Graph, opt Options) (*Embedding, error) {
	opt = opt.withDefaults()
	if err := opt.validate(g, false); err != nil {
		return nil, err
	}
	run := opt.obsRun()
	start := time.Now()
	method := "gebe-" + opt.PMF.Name()
	run.Logger().Info("gebe: start", "method", method, "nu", g.NU, "nv", g.NV,
		"edges", g.NumEdges(), "k", opt.K, "tau", opt.Tau, "iters", opt.Iters, "tol", opt.Tol,
		"warm_start", opt.WarmStart != nil)
	root := run.Span("gebe")
	w, sigma, err := scaledWeightMatrix(g, opt, run)
	if err != nil {
		root.End()
		run.Logger().Warn("gebe: deadline exceeded", "method", method, "phase", "sigma1")
		return nil, fmt.Errorf("core: GEBE: %w", err)
	}
	op := hOperator{w: w, omega: opt.PMF, tau: opt.Tau, spmm: opt.spmm()}
	ksi := run.Span("ksi")
	res := linalg.KSIRun(op, opt.ksiConfig(run))
	ksi.Set("sweeps", res.Sweeps).Set("converged", res.Converged).Set("stop_reason", string(res.StopReason))
	ksi.End()
	if res.DeadlineHit {
		root.End()
		run.Logger().Warn("gebe: deadline exceeded", "method", method,
			"sweeps", res.Sweeps, "elapsed_s", time.Since(start).Seconds())
		return nil, fmt.Errorf("core: GEBE: %w", budget.ErrExceeded)
	}
	embedSp := run.Span("embed")
	u, v := embedFromEigen(w, res.Vectors, res.Values, opt.spmm())
	embedSp.End()
	root.End()
	finishRun(run, start, res.Sweeps)
	run.Logger().Info("gebe: done", "method", method, "sweeps", res.Sweeps,
		"converged", res.Converged, "stop_reason", string(res.StopReason),
		"elapsed_s", time.Since(start).Seconds())
	return &Embedding{
		U: u, V: v,
		Values:      res.Values,
		Method:      method,
		Sweeps:      res.Sweeps,
		SweepsSaved: res.SweepsSaved,
		Converged:   res.Converged,
		StopReason:  string(res.StopReason),
		SigmaScale:  sigma,
		WarmStarted: opt.WarmStart != nil,
	}, nil
}

// ksiConfig maps the option fields shared by every KSI-based solver onto
// one linalg.KSIConfig, with the given seed defaulting to opt.Seed. A
// WarmStart embedding seeds the starting block from its U rows (U = Z√Λ
// spans the previous eigenbasis; the block is re-orthonormalized, so the
// √Λ column scaling is irrelevant).
func (o Options) ksiConfig(run *obs.Run) linalg.KSIConfig {
	cfg := linalg.KSIConfig{
		K: o.K, Sweeps: o.Iters, Tol: o.Tol, Seed: o.Seed,
		Deadline: o.Deadline, Dense: o.dn(),
		Window: o.StopWindow, Flatness: o.StopFlatness, NoAdaptive: o.NoAdaptiveStop,
		Obs: run,
	}
	if o.WarmStart != nil {
		cfg.InitQ = o.WarmStart.U
	}
	return cfg
}

// finishRun records the run-level counters every solver shares.
func finishRun(run *obs.Run, start time.Time, sweeps int) {
	reg := run.Registry()
	reg.Counter("core_runs_total", "completed solver runs").Inc()
	reg.Histogram("core_run_seconds", "wall-clock per solver run", nil).ObserveSince(start)
	if sweeps > 0 {
		reg.Gauge("core_last_run_sweeps", "KSI sweeps used by the most recent run").Set(float64(sweeps))
	}
}

// embedFromEigen realizes Eq. (13): U = Z·√Λ, V = Wᵀ·U. Tiny negative
// eigenvalue estimates (QR round-off on a PSD operator) are clamped.
func embedFromEigen(w *sparse.CSR, z *dense.Matrix, vals []float64, tn sparse.Tuning) (u, v *dense.Matrix) {
	scales := make([]float64, len(vals))
	for i, lam := range vals {
		if lam < 0 {
			lam = 0
		}
		scales[i] = sqrtf(lam)
	}
	u = z.Clone()
	u.ScaleCols(scales)
	v = w.TMulDenseOpts(u, tn)
	return u, v
}
