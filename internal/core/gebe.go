package core

import (
	"fmt"
	"time"

	"gebe/internal/bigraph"
	"gebe/internal/budget"
	"gebe/internal/dense"
	"gebe/internal/linalg"
	"gebe/internal/obs"
	"gebe/internal/pmf"
	"gebe/internal/sparse"
)

// hOperator applies H = Σ_{ℓ=0}^{τ} ω(ℓ)·(WWᵀ)^ℓ to a dense block without
// materializing H — Lines 3–6 of Algorithm 1, including the critical
// re-association W·(WᵀQ) that turns an O(|E|·|U|) product into O(|E|·k).
type hOperator struct {
	w       *sparse.CSR
	omega   pmf.PMF
	tau     int
	threads int
}

func (o hOperator) Dim() int { return o.w.Rows }

func (o hOperator) Apply(z *dense.Matrix) *dense.Matrix {
	q := z.Clone()
	q.Scale(o.omega.Weight(0))
	ql := z
	for ell := 1; ell <= o.tau; ell++ {
		ql = o.w.MulDense(o.w.TMulDense(ql, o.threads), o.threads)
		if wl := o.omega.Weight(ell); wl != 0 {
			q.AddScaled(wl, ql)
		}
	}
	return q
}

// scaledWeightMatrix builds W and applies the spectral scaling W/σ₁
// unless disabled, returning the matrix and the scale used. The σ₁ power
// iteration is traced and timed through run (nil-safe).
func scaledWeightMatrix(g *bigraph.Graph, opt Options, run *obs.Run) (*sparse.CSR, float64) {
	w := WeightMatrix(g)
	if opt.NoScale {
		return w, 1
	}
	sp := run.Span("sigma1")
	start := time.Now()
	sigma := linalg.TopSingularValue(w, 0, opt.Seed^0x5ca1ab1e, opt.Threads)
	sp.Set("sigma1", sigma)
	sp.End()
	run.Registry().Histogram("core_sigma1_seconds", "wall-clock of σ₁ power iteration", nil).ObserveSince(start)
	run.Logger().Debug("sigma1: estimated", "sigma1", sigma, "elapsed_s", time.Since(start).Seconds())
	if sigma <= 0 {
		return w, 1
	}
	return w.Scaled(1 / sigma), sigma
}

// GEBE computes bipartite network embeddings with Algorithm 1 of the
// paper: Krylov subspace iteration over the implicit multi-hop matrix H
// instantiated by opt.PMF, followed by U = Z√Λ and V = WᵀU (Eq. (13)).
//
// Time complexity is O(k·t·τ·|E| + k²·t·|U|); space is
// O((|U|+|V|)·k + |E|).
func GEBE(g *bigraph.Graph, opt Options) (*Embedding, error) {
	opt = opt.withDefaults()
	if err := opt.validate(g, false); err != nil {
		return nil, err
	}
	run := opt.obsRun()
	start := time.Now()
	method := "gebe-" + opt.PMF.Name()
	run.Logger().Info("gebe: start", "method", method, "nu", g.NU, "nv", g.NV,
		"edges", g.NumEdges(), "k", opt.K, "tau", opt.Tau, "iters", opt.Iters, "tol", opt.Tol)
	root := run.Span("gebe")
	w, sigma := scaledWeightMatrix(g, opt, run)
	op := hOperator{w: w, omega: opt.PMF, tau: opt.Tau, threads: opt.Threads}
	ksi := run.Span("ksi")
	res := linalg.KSIRun(op, linalg.KSIConfig{
		K: opt.K, Sweeps: opt.Iters, Tol: opt.Tol, Seed: opt.Seed,
		Deadline: opt.Deadline, Obs: run,
	})
	ksi.Set("sweeps", res.Sweeps).Set("converged", res.Converged)
	ksi.End()
	if res.DeadlineHit {
		root.End()
		run.Logger().Warn("gebe: deadline exceeded", "method", method,
			"sweeps", res.Sweeps, "elapsed_s", time.Since(start).Seconds())
		return nil, fmt.Errorf("core: GEBE: %w", budget.ErrExceeded)
	}
	embedSp := run.Span("embed")
	u, v := embedFromEigen(w, res.Vectors, res.Values, opt.Threads)
	embedSp.End()
	root.End()
	finishRun(run, start, res.Sweeps)
	run.Logger().Info("gebe: done", "method", method, "sweeps", res.Sweeps,
		"converged", res.Converged, "elapsed_s", time.Since(start).Seconds())
	return &Embedding{
		U: u, V: v,
		Values:     res.Values,
		Method:     method,
		Sweeps:     res.Sweeps,
		Converged:  res.Converged,
		SigmaScale: sigma,
	}, nil
}

// finishRun records the run-level counters every solver shares.
func finishRun(run *obs.Run, start time.Time, sweeps int) {
	reg := run.Registry()
	reg.Counter("core_runs_total", "completed solver runs").Inc()
	reg.Histogram("core_run_seconds", "wall-clock per solver run", nil).ObserveSince(start)
	if sweeps > 0 {
		reg.Gauge("core_last_run_sweeps", "KSI sweeps used by the most recent run").Set(float64(sweeps))
	}
}

// embedFromEigen realizes Eq. (13): U = Z·√Λ, V = Wᵀ·U. Tiny negative
// eigenvalue estimates (QR round-off on a PSD operator) are clamped.
func embedFromEigen(w *sparse.CSR, z *dense.Matrix, vals []float64, threads int) (u, v *dense.Matrix) {
	scales := make([]float64, len(vals))
	for i, lam := range vals {
		if lam < 0 {
			lam = 0
		}
		scales[i] = sqrtf(lam)
	}
	u = z.Clone()
	u.ScaleCols(scales)
	v = w.TMulDense(u, threads)
	return u, v
}
