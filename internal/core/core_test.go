package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"gebe/internal/bigraph"
	"gebe/internal/dense"
	"gebe/internal/pmf"
)

// figure1Graph builds the paper's running example (Figure 1): each edge
// has weight 0.5; u1,u2 share {v1,v2,v3}, u3 has {v3,v4,v5}, u4 has
// {v2,v3,v4,v5}. Recovered by matching Table 2 exactly.
func figure1Graph(t testing.TB) *bigraph.Graph {
	t.Helper()
	var edges []bigraph.Edge
	add := func(u int, vs ...int) {
		for _, v := range vs {
			edges = append(edges, bigraph.Edge{U: u, V: v, W: 0.5})
		}
	}
	add(0, 0, 1, 2)
	add(1, 0, 1, 2)
	add(2, 2, 3, 4)
	add(3, 1, 2, 3, 4)
	g, err := bigraph.New(4, 5, edges)
	if err != nil {
		t.Fatalf("figure1Graph: %v", err)
	}
	return g
}

func randomBipartite(t testing.TB, nu, nv, ne int, weighted bool, seed uint64) *bigraph.Graph {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed+7))
	seen := map[int64]bool{}
	var edges []bigraph.Edge
	for len(edges) < ne {
		u, v := rng.IntN(nu), rng.IntN(nv)
		key := bigraph.PackEdge(u, v)
		if seen[key] {
			continue
		}
		seen[key] = true
		w := 1.0
		if weighted {
			w = 0.5 + 4.5*rng.Float64()
		}
		edges = append(edges, bigraph.Edge{U: u, V: v, W: w})
	}
	g, err := bigraph.New(nu, nv, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestRunningExample reproduces Table 2 of the paper: H under Poisson
// λ=2 on the Figure 1 graph, plus the MHS ordering conclusion of §2.2.
func TestRunningExample(t *testing.T) {
	g := figure1Graph(t)
	w := WeightMatrix(g)
	h := ExactH(w, pmf.NewPoisson(2), 80)
	want := map[[2]int]float64{
		{0, 0}: 3.641, {0, 1}: 3.506, {0, 3}: 4.064,
		{1, 1}: 3.641, {1, 3}: 4.064, {3, 3}: 5.429,
	}
	for idx, v := range want {
		if got := h.At(idx[0], idx[1]); math.Abs(got-v) > 0.001 {
			t.Errorf("H[u%d,u%d]=%.4f want %.3f", idx[0]+1, idx[1]+1, got, v)
		}
	}
	s := MHSFromH(h)
	// Paper: s(u2,u4) = 0.914.
	if got := s.At(1, 3); math.Abs(got-0.914) > 0.001 {
		t.Errorf("s(u2,u4)=%.4f want 0.914", got)
	}
	// Eq. (4) applied to Table 2 gives s(u1,u2) = 3.506/3.641 = 0.963.
	// (The paper prints 0.981 = √0.963 — inconsistent with its own Eq. (4);
	// see EXPERIMENTS.md.) Either way the §2.2 ordering conclusion holds:
	if got := s.At(0, 1); math.Abs(got-0.963) > 0.001 {
		t.Errorf("s(u1,u2)=%.4f want 0.963", got)
	}
	if s.At(0, 1) <= s.At(1, 3) {
		t.Errorf("MHS ordering violated: s(u1,u2)=%.3f <= s(u2,u4)=%.3f", s.At(0, 1), s.At(1, 3))
	}
	// Raw H shows the counter-intuitive inversion the paper motivates
	// normalization with: H[u2,u4] > H[u2,u1].
	if h.At(1, 3) <= h.At(1, 0) {
		t.Error("expected raw-H inversion H[u2,u4] > H[u2,u1]")
	}
}

// TestLemma21Properties checks Lemma 2.1: s ∈ [0,1], s(u,u)=1, and s=0
// for disconnected pairs, across random graphs and all three PMFs.
func TestLemma21Properties(t *testing.T) {
	pmfs := []pmf.PMF{pmf.NewUniform(5), pmf.NewGeometric(0.5), pmf.NewPoisson(1)}
	f := func(seed uint64) bool {
		nu := 3 + int(seed%10)
		nv := 3 + int((seed/5)%10)
		g := randomBipartite(t, nu, nv, nu+nv, seed%2 == 0, seed)
		w := WeightMatrix(g)
		for _, om := range pmfs {
			s := MHSFromH(ExactH(w, om, 8))
			for i := 0; i < nu; i++ {
				if math.Abs(s.At(i, i)-1) > 1e-12 {
					return false
				}
				for l := 0; l < nu; l++ {
					if s.At(i, l) < -1e-12 || s.At(i, l) > 1+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestMHSDisconnectedIsZero(t *testing.T) {
	// Two disconnected components: {u0,v0} and {u1,v1}.
	g, err := bigraph.New(2, 2, []bigraph.Edge{
		{U: 0, V: 0, W: 1}, {U: 1, V: 1, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := MHSFromH(ExactH(WeightMatrix(g), pmf.NewPoisson(1), 10))
	if s.At(0, 1) != 0 {
		t.Errorf("s across components = %v want 0", s.At(0, 1))
	}
}

// TestExactEmbeddingZeroLossFullRank verifies §3: with k = |U| (full
// eigenbasis) the closed-form solution drives the unified objective to
// (numerically) zero.
func TestExactEmbeddingZeroLossFullRank(t *testing.T) {
	g := figure1Graph(t)
	om := pmf.NewPoisson(1)
	emb, err := ExactEmbedding(g, Options{K: 4, PMF: om, Tau: 40, NoScale: true})
	if err != nil {
		t.Fatal(err)
	}
	loss := Loss(g, emb.U, emb.V, om, 40)
	if loss > 1e-10 {
		t.Errorf("full-rank loss = %g want ~0", loss)
	}
}

// TestLemma22 verifies the v-side identity of Lemma 2.2 at L = 0.
func TestLemma22(t *testing.T) {
	g := figure1Graph(t)
	om := pmf.NewPoisson(1)
	emb, err := ExactEmbedding(g, Options{K: 4, PMF: om, Tau: 40, NoScale: true})
	if err != nil {
		t.Fatal(err)
	}
	dev := VSideMHSDeviation(g, emb.V, om, 40)
	if dev > 1e-8 {
		t.Errorf("Lemma 2.2 deviation = %g want ~0", dev)
	}
}

// TestGEBEMatchesExact cross-checks Algorithm 1 against the dense
// reference solver (Theorem 4.1): same subspace, same eigenvalues, and
// the same Gram matrices U·Uᵀ and U·Vᵀ (which is what downstream tasks
// consume — individual columns may differ by sign/rotation in clusters).
func TestGEBEMatchesExact(t *testing.T) {
	for _, om := range []pmf.PMF{pmf.NewUniform(5), pmf.NewGeometric(0.5), pmf.NewPoisson(1)} {
		g := randomBipartite(t, 25, 18, 120, true, 77)
		// NoAdaptiveStop: the comparison needs the full fixed budget — with
		// Tol this deep the controller would (correctly) declare it
		// unreachable and stop long before the subspace settles.
		opt := Options{K: 4, PMF: om, Tau: 10, Iters: 800, Tol: 1e-12, Seed: 3, NoAdaptiveStop: true}
		fast, err := GEBE(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ExactEmbedding(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range fast.Values {
			if math.Abs(fast.Values[i]-exact.Values[i]) > 1e-5*(1+exact.Values[i]) {
				t.Errorf("%s: eigenvalue %d: %v vs exact %v", om.Name(), i, fast.Values[i], exact.Values[i])
			}
		}
		gramFast := dense.MulT(fast.U, fast.U)
		gramExact := dense.MulT(exact.U, exact.U)
		if !dense.Equal(gramFast, gramExact, 1e-5) {
			t.Errorf("%s: U·Uᵀ mismatch (max dev %g)", om.Name(),
				dense.Sub(gramFast, gramExact).MaxAbs())
		}
		puvFast := dense.MulT(fast.U, fast.V)
		puvExact := dense.MulT(exact.U, exact.V)
		if !dense.Equal(puvFast, puvExact, 1e-5) {
			t.Errorf("%s: U·Vᵀ mismatch", om.Name())
		}
	}
}

// TestGEBEPMatchesExactPoisson: GEBE^p must agree with the exact
// eigendecomposition of H_λ (large-τ truncation) on the reconstructed
// Gram matrices — Theorem 5.1 with small ε.
func TestGEBEPMatchesExactPoisson(t *testing.T) {
	g := randomBipartite(t, 30, 20, 150, true, 13)
	lambda := 1.0
	opt := Options{K: 5, PMF: pmf.NewPoisson(lambda), Lambda: lambda, Tau: 60,
		Epsilon: 0.01, Iters: 800, Tol: 1e-12, Seed: 5}
	gp, err := GEBEP(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactEmbedding(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gp.Values {
		if math.Abs(gp.Values[i]-exact.Values[i]) > 1e-4*(1+exact.Values[i]) {
			t.Errorf("eigenvalue %d: gebep %v exact %v", i, gp.Values[i], exact.Values[i])
		}
	}
	gram1 := dense.MulT(gp.U, gp.U)
	gram2 := dense.MulT(exact.U, exact.U)
	if !dense.Equal(gram1, gram2, 1e-4) {
		t.Errorf("U·Uᵀ mismatch (max dev %g)", dense.Sub(gram1, gram2).MaxAbs())
	}
}

// TestGEBEPBeatsGEBELoss: Theorem 5.1's consequence — GEBE^p solves the
// untruncated Poisson objective at least as well as truncated GEBE.
func TestGEBEPLossClose(t *testing.T) {
	g := randomBipartite(t, 20, 15, 80, false, 21)
	lambda := 1.0
	om := pmf.NewPoisson(lambda)
	opt := Options{K: 4, PMF: om, Lambda: lambda, Epsilon: 0.05, Seed: 9}
	gp, err := GEBEP(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	ge, err := GEBE(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate both against the same (long-τ, scaled-W) objective. Loss
	// uses the raw graph, so rescale a copy of the graph's weights first.
	scaled := scaleGraph(t, g, gp.SigmaScale)
	lossP := Loss(scaled, gp.U, gp.V, om, 60)
	lossG := Loss(scaled, ge.U, ge.V, om, 60)
	if lossP > lossG*1.05+1e-9 {
		t.Errorf("GEBE^p loss %g should not exceed GEBE loss %g", lossP, lossG)
	}
}

func scaleGraph(t testing.TB, g *bigraph.Graph, sigma float64) *bigraph.Graph {
	t.Helper()
	edges := make([]bigraph.Edge, len(g.Edges))
	for i, e := range g.Edges {
		edges[i] = bigraph.Edge{U: e.U, V: e.V, W: e.W / sigma}
	}
	s, err := bigraph.New(g.NU, g.NV, edges)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGEBEDeterministic(t *testing.T) {
	g := randomBipartite(t, 20, 15, 70, true, 31)
	opt := Options{K: 4, Seed: 11}
	a, err := GEBE(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GEBE(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equal(a.U, b.U, 0) || !dense.Equal(a.V, b.V, 0) {
		t.Error("GEBE not deterministic for equal seeds")
	}
}

func TestGEBEPDeterministic(t *testing.T) {
	g := randomBipartite(t, 20, 15, 70, true, 37)
	opt := Options{K: 4, Seed: 11}
	a, err := GEBEP(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GEBEP(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equal(a.U, b.U, 0) || !dense.Equal(a.V, b.V, 0) {
		t.Error("GEBEP not deterministic for equal seeds")
	}
}

func TestOptionValidation(t *testing.T) {
	g := figure1Graph(t)
	cases := []Options{
		{K: 0},
		{K: -3},
		{K: 100},             // K > |U|
		{K: 2, Tau: -1},      // bad tau
		{K: 2, Lambda: -2},   // bad lambda
		{K: 2, Epsilon: 1.5}, // bad epsilon
	}
	for i, opt := range cases {
		if _, err := GEBE(g, opt); err == nil {
			t.Errorf("case %d: GEBE accepted invalid options %+v", i, opt)
		}
	}
	// GEBE^p additionally requires K <= |V|.
	if _, err := GEBEP(g, Options{K: 5}); err == nil {
		t.Error("GEBEP accepted K > min(|U|,|V|)")
	}
	// Empty graph.
	empty, _ := bigraph.New(3, 3, nil)
	if _, err := GEBE(empty, Options{K: 2}); err == nil {
		t.Error("GEBE accepted empty graph")
	}
}

func TestSpectralScaling(t *testing.T) {
	// Large weights would overflow e^{λσ²} without scaling.
	edges := []bigraph.Edge{}
	for u := 0; u < 10; u++ {
		for v := 0; v < 8; v++ {
			edges = append(edges, bigraph.Edge{U: u, V: v, W: 1000})
		}
	}
	g, err := bigraph.New(10, 8, edges)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := GEBEP(g, Options{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if emb.SigmaScale < 1000 {
		t.Errorf("expected large σ scale, got %v", emb.SigmaScale)
	}
	for _, x := range emb.U.Data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatal("non-finite embedding entry despite scaling")
		}
	}
}

func TestEmbeddingScore(t *testing.T) {
	g := figure1Graph(t)
	emb, err := GEBEP(g, Options{K: 3, NoScale: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if emb.K() != 3 {
		t.Errorf("K()=%d", emb.K())
	}
	// u1's strongest associations should include its actual neighbors
	// (v1,v2,v3) rather than v4/v5.
	s3 := emb.Score(0, 3)
	s1 := emb.Score(0, 1)
	if s1 <= s3 {
		t.Errorf("Score(u1,v2)=%.4f should exceed Score(u1,v4)=%.4f", s1, s3)
	}
}

func TestMHPApproximation(t *testing.T) {
	// U·Vᵀ from GEBE^p should approximate P = H_λ·W increasingly well as
	// k grows; at k=min dim it is essentially exact on a low-rank graph.
	g := randomBipartite(t, 15, 10, 60, false, 43)
	om := pmf.NewPoisson(1)
	w := WeightMatrix(g)
	sigma := mustSigma(t, g)
	p := ExactMHP(w.Scaled(1/sigma), om, 60)
	var prev float64 = math.Inf(1)
	for _, k := range []int{2, 5, 10} {
		emb, err := GEBEP(g, Options{K: k, Epsilon: 0.01, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		diff := dense.Sub(dense.MulT(emb.U, emb.V), p).FrobeniusNorm()
		if diff > prev+1e-9 {
			t.Errorf("k=%d: approximation error %g worse than smaller k (%g)", k, diff, prev)
		}
		prev = diff
	}
	if prev > 1e-6*p.FrobeniusNorm()+1e-9 {
		t.Errorf("full-rank MHP approximation error %g not ~0", prev)
	}
}

func mustSigma(t testing.TB, g *bigraph.Graph) float64 {
	t.Helper()
	emb, err := GEBEP(g, Options{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return emb.SigmaScale
}

func TestAblationsRun(t *testing.T) {
	g := randomBipartite(t, 25, 20, 120, true, 53)
	mhp, err := MHPBNE(g, Options{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mhs, err := MHSBNE(g, Options{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mhp.U.Rows != 25 || mhp.V.Rows != 20 || mhs.U.Rows != 25 || mhs.V.Rows != 20 {
		t.Fatal("ablation output shapes wrong")
	}
	// MHS-BNE factorizes the normalized similarity matrix: row norms
	// approximate √S[i,i] = 1 for well-connected nodes, and pairwise dots
	// stay within the MHS range [0, ~1].
	for i := 0; i < mhs.U.Rows; i++ {
		if n := dense.Norm2(mhs.U.Row(i)); n > 1.2 {
			t.Errorf("MHS-BNE U row %d norm %v exceeds the MHS bound", i, n)
		}
	}
}

// TestMHPBNEBestRankK: MHP-BNE's U·Vᵀ equals the projection Φ·Φᵀ·P, whose
// error must match the optimal rank-k error (tail singular values of P).
func TestMHPBNEApproximatesP(t *testing.T) {
	g := randomBipartite(t, 15, 12, 70, false, 59)
	om := pmf.NewPoisson(1)
	emb, err := MHPBNE(g, Options{K: 4, PMF: om, Tau: 20, Iters: 500, Tol: 1e-12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	w := WeightMatrix(g).Scaled(1 / emb.SigmaScale)
	p := ExactMHP(w, om, 20)
	got := dense.Sub(dense.MulT(emb.U, emb.V), p).FrobeniusNorm()
	// Optimal rank-4 error from exact SVD of P.
	_, s, _ := dense.SVD(p)
	var opt float64
	for _, sv := range s[4:] {
		opt += sv * sv
	}
	opt = math.Sqrt(opt)
	if got > opt*1.01+1e-8 {
		t.Errorf("MHP-BNE rank-k error %g exceeds optimal %g", got, opt)
	}
}

// TestTheorem51Bound numerically checks the first bound of Theorem 5.1.
func TestTheorem51Bound(t *testing.T) {
	g := randomBipartite(t, 20, 14, 90, false, 61)
	lambda, eps, k := 1.0, 0.1, 4
	emb, err := GEBEP(g, Options{K: k, Lambda: lambda, Epsilon: eps, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	w := WeightMatrix(g).Scaled(1 / emb.SigmaScale)
	_, s, _ := dense.SVD(w.ToDense())
	// Exact U*_λ via dense route.
	exact, err := ExactEmbedding(g, Options{K: k, PMF: pmf.NewPoisson(lambda), Tau: 80, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	lhs := dense.Sub(dense.MulT(exact.U, exact.U), dense.MulT(emb.U, emb.U)).FrobeniusNorm()
	lhs = lhs * lhs
	var rhs float64
	for i := 0; i < k; i++ {
		rhs += math.Exp(lambda*(s[i]*s[i]-1)) - math.Exp(lambda*(s[i]*s[i]-eps*s[k]*s[k]-1))
	}
	if rhs < 0 {
		rhs = 0
	}
	// The bound is an upper bound on the error of the *randomized SVD*
	// output; allow slack for the σ-estimate in the scaling.
	if lhs > rhs+1e-6 {
		t.Errorf("Theorem 5.1 bound violated: lhs=%g rhs=%g", lhs, rhs)
	}
}
