package core

import (
	"fmt"
	"time"

	"gebe/internal/bigraph"
	"gebe/internal/dense"
	"gebe/internal/obs"
	"gebe/internal/pmf"
	"gebe/internal/sparse"
)

// Options configures the GEBE family of solvers. The zero value is not
// usable — K must be positive; every other field has a paper-default
// filled in by withDefaults.
type Options struct {
	// K is the embedding dimensionality (the paper uses 128).
	K int
	// PMF selects the GEBE instantiation (§2.4). Default: Poisson(λ=1),
	// the configuration the paper found strongest.
	PMF pmf.PMF
	// Tau is the maximum path half-length for GEBE's truncated H
	// (default 20, the paper's practical setting).
	Tau int
	// Iters is the KSI sweep budget t (default 200).
	Iters int
	// Tol is the KSI subspace-convergence tolerance (default 1e-7).
	Tol float64
	// Lambda is the Poisson rate for GEBE^p (default 1).
	Lambda float64
	// Epsilon is the randomized-SVD error threshold for GEBE^p
	// (default 0.1).
	Epsilon float64
	// Seed drives every random choice; equal seeds give equal outputs.
	Seed uint64
	// Threads caps SpMM parallelism. Default 1, matching the paper's
	// single-thread evaluation protocol.
	Threads int
	// SpMM tunes the sparse kernel engine behind every W product: the
	// execution strategy (shape-aware default, scatter, or the legacy
	// baseline) and the nonzero-count parallelism gate. The zero value
	// selects the shape-aware defaults; SpMM.Threads is ignored — the
	// Threads field above governs parallelism.
	SpMM sparse.Tuning
	// Dense tunes the dense engine behind every QR and block product
	// (KSI's per-sweep orthonormalization and subspace residual, GEBE^p's
	// blockwise and global QR and projection): the execution strategy and
	// the multiply-add parallelism gate. The zero value selects the
	// register-blocked defaults; Dense.Threads is ignored — the Threads
	// field above governs parallelism.
	Dense dense.Tuning
	// Deadline optionally bounds solver runtime (cooperative, checked per
	// KSI sweep, per randomized-SVD Krylov block, and per σ₁ power
	// iteration); a zero value means no limit. Every solver that hits it —
	// GEBE, GEBE^p, MHP-BNE and MHS-BNE alike — returns
	// budget.ErrExceeded, mirroring the paper's hard cutoff protocol.
	Deadline time.Time
	// StopWindow is the sliding window (in sweeps) the adaptive KSI
	// stopping controller uses to estimate residual decay; 0 selects 16.
	StopWindow int
	// StopFlatness is the per-sweep residual decay rate at or above which
	// the controller declares stagnation and exits early; 0 selects 0.99.
	// Must lie in (0,1).
	StopFlatness float64
	// NoAdaptiveStop disables the adaptive KSI stopping controller,
	// restoring the fixed Iters/Tol/Deadline stopping behavior.
	NoAdaptiveStop bool
	// WarmStart, when non-nil, seeds the iterative solver from a previous
	// embedding of (a prior version of) the same graph instead of a random
	// block: GEBE/MHP-BNE/MHS-BNE warm-start KSI from the embedding rows
	// (U for the left side, V for MHS-BNE's right side), GEBE^p seeds its
	// randomized-SVD block from U and V. Dimension changes are tolerated —
	// new vertices and extra embedding columns are padded (see
	// linalg/warmstart.go) — and any column scaling is irrelevant because
	// the block is re-orthonormalized. On a mildly perturbed graph the
	// adaptive stopping controller then converges in a handful of sweeps;
	// the saving is reported in Embedding.SweepsSaved and a "warm_start"
	// trace span. The embedding is only read.
	WarmStart *Embedding
	// NoScale disables the spectral scaling of W (division by σ₁). The
	// scaling keeps e^{λσ²} finite for arbitrarily weighted graphs (see
	// DESIGN.md §3.5); turn it off only for tiny hand-built graphs such as
	// the paper's running example.
	NoScale bool
	// Logger receives structured solver telemetry: run begin/end at info
	// level, per-sweep residuals and phase timings at debug level. nil
	// falls back to the process-wide obs.Default(), which is disabled
	// unless a command installed one (-v/-vv), so the zero value is silent
	// and free.
	Logger *obs.Logger
	// Trace, when non-nil, collects a nested phase-span tree (σ₁
	// estimation, KSI sweeps, SVD blocks, embedding realization) for this
	// run. nil falls back to obs.DefaultTrace() (installed by -trace).
	Trace *obs.Trace
	// Metrics receives solver counters/gauges/histograms. nil falls back
	// to obs.DefaultRegistry(), the process-wide registry served by
	// -debug-addr.
	Metrics *obs.Registry
	// Progress, when non-nil, is invoked after every KSI sweep and every
	// randomized-SVD block step — the hook UIs and adaptive controllers
	// build on.
	Progress func(obs.Progress)
}

// obsRun resolves the per-run observability sinks, falling back to the
// process-wide defaults for any field left nil.
func (o Options) obsRun() *obs.Run {
	log := o.Logger
	if log == nil {
		log = obs.Default()
	}
	tr := o.Trace
	if tr == nil {
		tr = obs.DefaultTrace()
	}
	reg := o.Metrics
	if reg == nil {
		reg = obs.DefaultRegistry()
	}
	return &obs.Run{Log: log, Trace: tr, Metrics: reg, Progress: o.Progress}
}

func (o Options) withDefaults() Options {
	if o.PMF == nil {
		o.PMF = pmf.NewPoisson(1)
	}
	if o.Tau == 0 {
		o.Tau = 20
	}
	if o.Iters == 0 {
		o.Iters = 200
	}
	if o.Tol == 0 {
		o.Tol = 1e-7
	}
	if o.Lambda == 0 {
		o.Lambda = 1
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.1
	}
	if o.Threads == 0 {
		o.Threads = 1
	}
	return o
}

func (o Options) validate(g *bigraph.Graph, needBothSides bool) error {
	if o.K <= 0 {
		return fmt.Errorf("core: embedding dimensionality K must be positive, got %d", o.K)
	}
	if g.NumEdges() == 0 {
		return fmt.Errorf("core: graph has no edges")
	}
	if o.K > g.NU {
		return fmt.Errorf("core: K=%d exceeds |U|=%d", o.K, g.NU)
	}
	if needBothSides && o.K > g.NV {
		return fmt.Errorf("core: K=%d exceeds |V|=%d (GEBE^p factorizes W and needs K <= min(|U|,|V|))", o.K, g.NV)
	}
	if o.Tau < 0 {
		return fmt.Errorf("core: Tau must be non-negative, got %d", o.Tau)
	}
	if o.Iters < 0 {
		return fmt.Errorf("core: Iters must be non-negative, got %d", o.Iters)
	}
	if o.Tol < 0 {
		return fmt.Errorf("core: Tol must be non-negative, got %g", o.Tol)
	}
	if o.Threads < 0 {
		return fmt.Errorf("core: Threads must be non-negative, got %d", o.Threads)
	}
	if o.Lambda <= 0 {
		return fmt.Errorf("core: Lambda must be positive, got %g", o.Lambda)
	}
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		return fmt.Errorf("core: Epsilon must lie in (0,1), got %g", o.Epsilon)
	}
	if o.StopWindow < 0 {
		return fmt.Errorf("core: StopWindow must be non-negative, got %d", o.StopWindow)
	}
	if o.StopFlatness < 0 || o.StopFlatness >= 1 {
		return fmt.Errorf("core: StopFlatness must lie in [0,1), got %g", o.StopFlatness)
	}
	if o.WarmStart != nil && o.WarmStart.U == nil {
		return fmt.Errorf("core: WarmStart embedding has no U matrix")
	}
	if err := o.SpMM.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := o.Dense.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// spmm merges the solver thread cap into the SpMM tuning, the form the
// sparse engine consumes.
func (o Options) spmm() sparse.Tuning {
	t := o.SpMM
	t.Threads = o.Threads
	return t
}

// dn merges the solver thread cap into the dense tuning, the form the
// dense engine consumes.
func (o Options) dn() dense.Tuning {
	t := o.Dense
	t.Threads = o.Threads
	return t
}

// Embedding is the output of a BNE solver: one k-dimensional vector per
// node on each side, plus solver diagnostics.
type Embedding struct {
	// U and V hold the embedding vectors row-wise: U is |U|×k, V is |V|×k.
	U, V *dense.Matrix
	// Values holds the top-k eigenvalue estimates of (scaled) H.
	Values []float64
	// Method identifies the solver ("gebe-poisson", "gebep", ...).
	Method string
	// Sweeps is the number of KSI sweeps used (0 for GEBE^p).
	Sweeps int
	// SweepsSaved is the part of the sweep budget left unused (KSI early
	// exit or convergence before the budget; 0 for GEBE^p).
	SweepsSaved int
	// Converged reports KSI convergence (always true for GEBE^p).
	Converged bool
	// StopReason explains why KSI stopped sweeping ("converged",
	// "stagnated", "tol-unreachable", "sweep-budget"; "converged" for
	// GEBE^p, whose SVD always runs to completion).
	StopReason string
	// SigmaScale is the σ₁ estimate W was divided by (1 when unscaled).
	SigmaScale float64
	// WarmStarted reports that the solve was seeded from a previous
	// embedding (Options.WarmStart), persisted as "#meta warm_start" so a
	// written embedding records its provenance.
	WarmStarted bool

	// Shard identity, set when this embedding is one item-side shard of a
	// larger embedding (internal/shard, cmd/gebe-shard): the file holds
	// the full U side but only V rows [ShardOffset, ShardOffset+V.Rows)
	// of a ShardTotal-item embedding — shard ShardIndex of ShardCount.
	// ShardCount == 0 means unsharded; the fields persist as one
	// "#meta shard" line so a shard file is self-describing and the
	// serving layer can remap global item ids without side channels.
	ShardIndex  int
	ShardCount  int
	ShardOffset int
	ShardTotal  int
}

// Sharded reports whether this embedding is an item-side shard of a
// larger embedding.
func (e *Embedding) Sharded() bool { return e.ShardCount > 0 }

// K returns the embedding dimensionality.
func (e *Embedding) K() int { return e.U.Cols }

// Score returns the association strength U[u]·V[v] used for ranking in
// downstream tasks (§2.5).
func (e *Embedding) Score(u, v int) float64 {
	return dense.Dot(e.U.Row(u), e.V.Row(v))
}
