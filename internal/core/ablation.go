package core

import (
	"fmt"

	"gebe/internal/bigraph"
	"gebe/internal/budget"
	"gebe/internal/dense"
	"gebe/internal/linalg"
	"gebe/internal/sparse"
)

// The two ablation baselines of §6.1. Both are Poisson-instantiated (the
// paper's setting: λ=1, τ=20, t=200) and reuse GEBE's machinery, but each
// optimizes only one of the two measures:
//
//   - MHP-BNE preserves only P[u_i,v_j] for heterogeneous pairs, via the
//     best rank-k factorization U·Vᵀ ≈ P.
//   - MHS-BNE preserves only s(·,·) for homogeneous pairs on both sides,
//     via normalized rank-k factorizations of H_U and H_V.

// ppOperator applies P·Pᵀ = H·W·Wᵀ·H to a block (for MHP-BNE's KSI).
type ppOperator struct {
	h hOperator
}

func (o ppOperator) Dim() int { return o.h.w.Rows }

func (o ppOperator) Apply(z *dense.Matrix) *dense.Matrix {
	hz := o.h.Apply(z)
	wwhz := o.h.w.MulDenseOpts(o.h.w.TMulDenseOpts(hz, o.h.spmm), o.h.spmm)
	return o.h.Apply(wwhz)
}

// MHPBNE embeds by factorizing only the MHP matrix: it computes the top-k
// left singular pairs (Φ, Σ) of P = H·W by subspace iteration on P·Pᵀ and
// returns U = Φ·Σ^{1/2}, V = (PᵀΦ)·Σ^{-1/2}, so that U·Vᵀ is the best
// rank-k approximation Φ·Φᵀ·P of P.
func MHPBNE(g *bigraph.Graph, opt Options) (*Embedding, error) {
	opt = opt.withDefaults()
	if err := opt.validate(g, false); err != nil {
		return nil, err
	}
	run := opt.obsRun()
	w, sigma, err := scaledWeightMatrix(g, opt, run)
	if err != nil {
		return nil, fmt.Errorf("core: MHP-BNE: %w", err)
	}
	h := hOperator{w: w, omega: opt.PMF, tau: opt.Tau, spmm: opt.spmm()}
	res := linalg.KSIRun(ppOperator{h: h}, opt.ksiConfig(run))
	if res.DeadlineHit {
		return nil, fmt.Errorf("core: MHP-BNE: %w", budget.ErrExceeded)
	}
	// Eigenvalues of PPᵀ are σ², so σ^{1/2} = λ^{1/4}.
	phi := res.Vectors
	sqrtSigma := make([]float64, opt.K)
	invSqrtSigma := make([]float64, opt.K)
	for i, lam := range res.Values {
		if lam < 0 {
			lam = 0
		}
		s := sqrtf(sqrtf(lam))
		sqrtSigma[i] = s
		if s > 0 {
			invSqrtSigma[i] = 1 / s
		}
	}
	u := phi.Clone()
	u.ScaleCols(sqrtSigma)
	// V = PᵀΦ·Σ^{-1/2} = Wᵀ·(H·Φ)·Σ^{-1/2}, splitting σ evenly between the
	// two factors so U·Vᵀ = Φ·Φᵀ·P.
	v := w.TMulDenseOpts(h.Apply(phi), opt.spmm())
	v.ScaleCols(invSqrtSigma)
	return &Embedding{
		U: u, V: v,
		Values:      res.Values,
		Method:      "mhp-bne",
		Sweeps:      res.Sweeps,
		SweepsSaved: res.SweepsSaved,
		Converged:   res.Converged,
		StopReason:  string(res.StopReason),
		SigmaScale:  sigma,
		WarmStarted: opt.WarmStart != nil,
	}, nil
}

// MHSBNE embeds by preserving only MHS, on both sides: each side's
// multi-hop matrix (H_U ≈ X·Xᵀ, H_V ≈ Y·Yᵀ) is factorized at rank k and
// the rows are normalized, so pairwise cosines equal the MHS of Eq. (4)
// computed from the rank-k H estimate — exactly s(·,·) in the full-rank
// limit, by the identity of Eq. (12). The two independently factorized
// sides are then rotated onto a common basis with an orthogonal
// Procrustes alignment over the observed edges, which leaves all cosines
// (the quantity MHS-BNE preserves) untouched.
func MHSBNE(g *bigraph.Graph, opt Options) (*Embedding, error) {
	opt = opt.withDefaults()
	if err := opt.validate(g, true); err != nil {
		return nil, err
	}
	run := opt.obsRun()
	w, sigma, err := scaledWeightMatrix(g, opt, run)
	if err != nil {
		return nil, fmt.Errorf("core: MHS-BNE: %w", err)
	}
	factorSide := func(h hOperator, seed uint64, init *dense.Matrix) (*dense.Matrix, linalg.KSIResult) {
		cfg := opt.ksiConfig(run)
		cfg.Seed = seed
		cfg.InitQ = init // per-side warm basis: U rows left, V rows right
		res := linalg.KSIRun(h, cfg)
		if res.DeadlineHit {
			return nil, res
		}
		x := res.Vectors.Clone()
		x.ScaleCols(sqrtClamped(res.Values))
		for i := 0; i < x.Rows; i++ {
			row := x.Row(i)
			if n := dense.Norm2(row); n > 0 {
				inv := 1 / n
				for j := range row {
					row[j] *= inv
				}
			}
		}
		return x, res
	}
	hu := hOperator{w: w, omega: opt.PMF, tau: opt.Tau, spmm: opt.spmm()}
	hv := hOperator{w: w.T(), omega: opt.PMF, tau: opt.Tau, spmm: opt.spmm()}
	var warmU, warmV *dense.Matrix
	if opt.WarmStart != nil {
		warmU, warmV = opt.WarmStart.U, opt.WarmStart.V
	}
	x, resU := factorSide(hu, opt.Seed, warmU)
	if resU.DeadlineHit {
		return nil, fmt.Errorf("core: MHS-BNE: %w", budget.ErrExceeded)
	}
	y, resV := factorSide(hv, opt.Seed+1, warmV)
	if resV.DeadlineHit {
		return nil, fmt.Errorf("core: MHS-BNE: %w", budget.ErrExceeded)
	}
	alignSides(x, y, w)
	stop := string(resU.StopReason)
	if resV.StopReason != resU.StopReason {
		stop = fmt.Sprintf("u=%s,v=%s", resU.StopReason, resV.StopReason)
	}
	return &Embedding{
		U: x, V: y,
		Values:      resU.Values,
		Method:      "mhs-bne",
		Sweeps:      resU.Sweeps + resV.Sweeps,
		SweepsSaved: resU.SweepsSaved + resV.SweepsSaved,
		Converged:   resU.Converged && resV.Converged,
		StopReason:  stop,
		SigmaScale:  sigma,
		WarmStarted: opt.WarmStart != nil,
	}, nil
}

// sqrtClamped returns √max(0,v) elementwise.
func sqrtClamped(vals []float64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		if v > 0 {
			out[i] = sqrtf(v)
		}
	}
	return out
}

// alignSides rotates y in place by the orthogonal Procrustes solution
// R = argmin_{RᵀR=I} Σ_{(u,v)∈E} ‖x_u − R·y_v‖², computed from the SVD of
// the k×k cross matrix M = (Wᵀx)ᵀ·y.
func alignSides(x, y *dense.Matrix, w *sparse.CSR) {
	if x.Cols == 0 || y.Rows == 0 {
		return
	}
	wtx := w.TMulDense(x, 1) // |V|×k, Σ_u w(u,v)·x_u per v
	m := dense.TMul(wtx, y)  // k×k
	a, _, b := dense.SVD(m)
	// R = a·bᵀ maps y-coordinates onto x-coordinates; apply y ← y·Rᵀ = y·b·aᵀ.
	r := dense.MulT(a, b)
	rotated := dense.MulT(y, r)
	copy(y.Data, rotated.Data)
}
