package core

import (
	"fmt"
	"math"

	"gebe/internal/bigraph"
	"gebe/internal/dense"
	"gebe/internal/linalg"
	"gebe/internal/sparse"
)

// Attributed bipartite graphs are the paper's stated future work (§8):
// "extend our solutions to handle bipartite attributed graphs by
// augmenting the network embeddings with raw/processed attributes". This
// file implements that extension in the spirit of the GEBE design:
// attributes are compressed to the embedding dimensionality with the
// same randomized block-Krylov SVD used by Algorithm 2, scaled to a
// configurable fraction of the structural embedding's energy, and
// concatenated.

// Attributes carries optional dense attribute matrices for the two node
// sets; either may be nil.
type Attributes struct {
	// UAttrs is |U|×dU (dU arbitrary); VAttrs is |V|×dV.
	UAttrs, VAttrs *dense.Matrix
}

// AttributedOptions extends Options with the attribute-fusion controls.
type AttributedOptions struct {
	Options
	// AttrDim is the number of embedding dimensions given to attributes
	// (default K/4, at least 1). The structural part keeps K−AttrDim.
	AttrDim int
	// AttrWeight scales the attribute block relative to the structural
	// block's root-mean-square entry (default 1 = equal energy).
	AttrWeight float64
}

// AttributedEmbed runs GEBE^p on the graph structure and augments the
// result with spectrally compressed attributes:
//
//	U_out = [ U_struct | β·SVD_k'(A_U) ],  V_out likewise,
//
// so downstream dot products combine multi-hop proximity with attribute
// affinity. Sides without attributes receive zero-padding, keeping the
// two sides' dimensionalities aligned.
func AttributedEmbed(g *bigraph.Graph, attrs Attributes, opt AttributedOptions) (*Embedding, error) {
	opt.Options = opt.Options.withDefaults()
	if opt.AttrWeight == 0 {
		opt.AttrWeight = 1
	}
	if opt.AttrDim == 0 {
		opt.AttrDim = opt.K / 4
		if opt.AttrDim < 1 {
			opt.AttrDim = 1
		}
	}
	if opt.AttrDim >= opt.K {
		return nil, fmt.Errorf("core: AttrDim=%d must leave room for structure (K=%d)", opt.AttrDim, opt.K)
	}
	if attrs.UAttrs != nil && attrs.UAttrs.Rows != g.NU {
		return nil, fmt.Errorf("core: UAttrs has %d rows, graph has %d U nodes", attrs.UAttrs.Rows, g.NU)
	}
	if attrs.VAttrs != nil && attrs.VAttrs.Rows != g.NV {
		return nil, fmt.Errorf("core: VAttrs has %d rows, graph has %d V nodes", attrs.VAttrs.Rows, g.NV)
	}
	structK := opt.K - opt.AttrDim
	structOpt := opt.Options
	structOpt.K = structK
	emb, err := GEBEP(g, structOpt)
	if err != nil {
		return nil, err
	}
	uAttr := compressAttrs(attrs.UAttrs, opt.AttrDim, opt.Seed+101, opt.Threads)
	vAttr := compressAttrs(attrs.VAttrs, opt.AttrDim, opt.Seed+103, opt.Threads)
	// Scale attribute blocks to AttrWeight × the structural RMS.
	scaleToRMS(uAttr, rms(emb.U)*opt.AttrWeight)
	scaleToRMS(vAttr, rms(emb.V)*opt.AttrWeight)
	out := &Embedding{
		U:          hconcat(emb.U, uAttr, g.NU, opt.AttrDim),
		V:          hconcat(emb.V, vAttr, g.NV, opt.AttrDim),
		Values:     emb.Values,
		Method:     "gebep+attrs",
		Converged:  emb.Converged,
		SigmaScale: emb.SigmaScale,
	}
	return out, nil
}

// compressAttrs reduces an attribute matrix to dim columns with the
// randomized SVD (or returns nil for absent attributes).
func compressAttrs(a *dense.Matrix, dim int, seed uint64, threads int) *dense.Matrix {
	if a == nil || a.Cols == 0 {
		return nil
	}
	if a.Cols <= dim {
		// Already small enough: keep as-is (zero-padded by hconcat).
		return a.Clone()
	}
	// Densify through the sparse type to reuse the RSVD entry point; the
	// conversion is cheap relative to the factorization.
	entries := make([]sparse.Entry, 0, a.Rows*a.Cols)
	for i := 0; i < a.Rows; i++ {
		for j, v := range a.Row(i) {
			if v != 0 {
				entries = append(entries, sparse.Entry{Row: i, Col: j, Val: v})
			}
		}
	}
	sp, err := sparse.New(a.Rows, a.Cols, entries)
	if err != nil {
		panic(fmt.Sprintf("core: attribute matrix conversion: %v", err))
	}
	if dim > a.Rows {
		dim = a.Rows
	}
	res := linalg.RandomizedSVD(sp, dim, 0.1, seed, threads)
	out := res.U
	for j, s := range res.Sigma {
		for i := 0; i < out.Rows; i++ {
			out.Data[i*out.Cols+j] *= s
		}
	}
	return out
}

func rms(m *dense.Matrix) float64 {
	if len(m.Data) == 0 {
		return 0
	}
	return m.FrobeniusNorm() / math.Sqrt(float64(len(m.Data)))
}

func scaleToRMS(m *dense.Matrix, target float64) {
	if m == nil {
		return
	}
	cur := rms(m)
	if cur == 0 || target == 0 {
		return
	}
	m.Scale(target / cur)
}

// hconcat glues base (rows×k1) and extra (rows×≤k2, possibly nil) into a
// rows×(k1+k2) matrix, zero-padding missing columns.
func hconcat(base, extra *dense.Matrix, rows, k2 int) *dense.Matrix {
	out := dense.New(rows, base.Cols+k2)
	for i := 0; i < rows; i++ {
		copy(out.Row(i), base.Row(i))
		if extra != nil {
			copy(out.Row(i)[base.Cols:], extra.Row(i))
		}
	}
	return out
}
