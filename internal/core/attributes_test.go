package core

import (
	"math"
	"testing"

	"gebe/internal/bigraph"
	"gebe/internal/dense"
	"gebe/internal/linalg"
)

func TestAttributedEmbedShapes(t *testing.T) {
	g := randomBipartite(t, 20, 15, 80, false, 201)
	attrs := Attributes{
		UAttrs: dense.Random(20, 12, linalg.NewRand(1)),
		VAttrs: dense.Random(15, 7, linalg.NewRand(2)),
	}
	emb, err := AttributedEmbed(g, attrs, AttributedOptions{
		Options: Options{K: 8, Seed: 3}, AttrDim: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if emb.U.Cols != 8 || emb.V.Cols != 8 {
		t.Fatalf("K=%d/%d want 8", emb.U.Cols, emb.V.Cols)
	}
	if emb.Method != "gebep+attrs" {
		t.Errorf("method %q", emb.Method)
	}
	for _, x := range emb.U.Data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatal("non-finite entry")
		}
	}
}

func TestAttributedEmbedNilAttrsZeroPadded(t *testing.T) {
	g := randomBipartite(t, 15, 10, 60, false, 203)
	emb, err := AttributedEmbed(g, Attributes{}, AttributedOptions{
		Options: Options{K: 6, Seed: 1}, AttrDim: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The attribute columns must be exactly zero on both sides.
	for i := 0; i < emb.U.Rows; i++ {
		row := emb.U.Row(i)
		if row[4] != 0 || row[5] != 0 {
			t.Fatalf("U row %d attribute columns not zero: %v", i, row)
		}
	}
}

func TestAttributedEmbedValidation(t *testing.T) {
	g := randomBipartite(t, 10, 8, 40, false, 205)
	if _, err := AttributedEmbed(g, Attributes{}, AttributedOptions{
		Options: Options{K: 4, Seed: 1}, AttrDim: 4,
	}); err == nil {
		t.Error("AttrDim == K accepted")
	}
	bad := Attributes{UAttrs: dense.New(3, 2)} // wrong row count
	if _, err := AttributedEmbed(g, bad, AttributedOptions{
		Options: Options{K: 4, Seed: 1},
	}); err == nil {
		t.Error("mismatched attribute rows accepted")
	}
}

// TestAttributesHelpWhenStructureIsSparse: plant attributes perfectly
// aligned with the latent blocks; on a very sparse graph, attribute-
// augmented embeddings should separate blocks better than structure-only.
func TestAttributesHelpWhenStructureIsSparse(t *testing.T) {
	// Two blocks of users; each user has only ONE structural edge, so
	// structure barely identifies blocks.
	const nu, nv = 40, 10
	var edges []bigraph.Edge
	for u := 0; u < nu; u++ {
		block := u / (nu / 2)
		edges = append(edges, bigraph.Edge{U: u, V: block*(nv/2) + u%(nv/2), W: 1})
	}
	g, err := bigraph.New(nu, nv, edges)
	if err != nil {
		t.Fatal(err)
	}
	// Attributes: block indicator + noise.
	rng := linalg.NewRand(7)
	uAttrs := dense.New(nu, 6)
	for u := 0; u < nu; u++ {
		uAttrs.Set(u, u/(nu/2), 5)
		for j := 2; j < 6; j++ {
			uAttrs.Set(u, j, rng.NormFloat64())
		}
	}
	plain, err := GEBEP(g, Options{K: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	aug, err := AttributedEmbed(g, Attributes{UAttrs: uAttrs}, AttributedOptions{
		Options: Options{K: 6, Seed: 9}, AttrDim: 2, AttrWeight: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sep := blockSeparation(aug.U, nu/2); sep <= blockSeparation(plain.U, nu/2) {
		t.Errorf("attributes did not improve block separation: aug=%.3f plain=%.3f",
			sep, blockSeparation(plain.U, nu/2))
	}
}

// blockSeparation returns mean within-block cosine minus mean
// across-block cosine over a sample of pairs.
func blockSeparation(u *dense.Matrix, blockSize int) float64 {
	cosine := func(a, b []float64) float64 {
		na, nb := dense.Norm2(a), dense.Norm2(b)
		if na == 0 || nb == 0 {
			return 0
		}
		return dense.Dot(a, b) / (na * nb)
	}
	var within, across float64
	var nw, na int
	for i := 0; i < u.Rows; i++ {
		for j := i + 1; j < u.Rows; j += 3 {
			c := cosine(u.Row(i), u.Row(j))
			if i/blockSize == j/blockSize {
				within += c
				nw++
			} else {
				across += c
				na++
			}
		}
	}
	return within/float64(nw) - across/float64(na)
}
