// Package core implements the paper's contribution: the multi-hop
// homogeneous similarity (MHS) and multi-hop heterogeneous proximity
// (MHP) measures, the unified BNE objective, the generic GEBE solver
// (Algorithm 1), the Poisson-specialized GEBE^p solver (Algorithm 2), and
// the MHP-only / MHS-only ablation baselines from §6.1.
package core

import (
	"fmt"
	"math"

	"gebe/internal/bigraph"
	"gebe/internal/dense"
	"gebe/internal/pmf"
	"gebe/internal/sparse"
)

// WeightMatrix builds the |U|×|V| sparse edge weight matrix W of the
// graph. Parallel edges are summed.
func WeightMatrix(g *bigraph.Graph) *sparse.CSR {
	entries := make([]sparse.Entry, len(g.Edges))
	for i, e := range g.Edges {
		entries[i] = sparse.Entry{Row: e.U, Col: e.V, Val: e.W}
	}
	w, err := sparse.New(g.NU, g.NV, entries)
	if err != nil {
		// New validated the same invariants bigraph.New enforces; reaching
		// here means the Graph was built without its constructor.
		panic(fmt.Sprintf("core: invalid graph: %v", err))
	}
	return w
}

// ExactH materializes H = Σ_{ℓ=0}^{τ} ω(ℓ)·(WWᵀ)^ℓ densely (Eq. (3)).
// Exponential in neither time nor space but quadratic in |U| — strictly a
// small-graph reference for tests and the paper's running example.
func ExactH(w *sparse.CSR, omega pmf.PMF, tau int) *dense.Matrix {
	if tau < 0 {
		panic("core: ExactH requires tau >= 0")
	}
	n := w.Rows
	h := dense.New(n, n)
	// term starts as I (ℓ = 0) and is multiplied by WWᵀ each hop.
	term := dense.Identity(n)
	h.AddScaled(omega.Weight(0), term)
	for ell := 1; ell <= tau; ell++ {
		term = w.MulDense(w.TMulDense(term, 1), 1)
		h.AddScaled(omega.Weight(ell), term)
	}
	return h
}

// ExactHV is ExactH on the V side: Σ ω(ℓ)·(WᵀW)^ℓ.
func ExactHV(w *sparse.CSR, omega pmf.PMF, tau int) *dense.Matrix {
	return ExactH(w.T(), omega, tau)
}

// MHSFromH converts a materialized H into the MHS matrix of Eq. (4):
// s(u_i,u_l) = H[u_i,u_l] / √(H[u_i,u_i]·H[u_l,u_l]). Diagonal entries of
// H are strictly positive whenever ω(0) > 0; zero diagonals (possible
// under PMFs with ω(0)=0 for isolated nodes) yield s=0 off-diagonal and
// s=1 on the diagonal, matching Lemma 2.1's conventions.
func MHSFromH(h *dense.Matrix) *dense.Matrix {
	n := h.Rows
	s := dense.New(n, n)
	for i := 0; i < n; i++ {
		hii := h.At(i, i)
		for l := 0; l < n; l++ {
			if i == l {
				s.Set(i, l, 1)
				continue
			}
			hll := h.At(l, l)
			if hii <= 0 || hll <= 0 {
				continue
			}
			s.Set(i, l, h.At(i, l)/math.Sqrt(hii*hll))
		}
	}
	return s
}

// ExactMHP materializes the MHP matrix P = H·W of Eq. (5) densely.
func ExactMHP(w *sparse.CSR, omega pmf.PMF, tau int) *dense.Matrix {
	h := ExactH(w, omega, tau)
	// P = H·W: compute via (Wᵀ·Hᵀ)ᵀ = (Wᵀ·H)ᵀ since H is symmetric.
	return w.TMulDense(h, 1).T()
}
