package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"gebe/internal/bigraph"
)

// plantedGraph builds a bipartite graph with c planted co-clusters:
// within-cluster pairs connect with probability pin, cross-cluster pairs
// with pout. The cluster structure gives H a clear spectral gap after
// the top c eigenvalues, so KSI at K=c genuinely converges — which the
// warm-start assertions below need (warm-starting an unconverged basis
// saves nothing measurable).
func plantedGraph(t testing.TB, nu, nv, c int, pin, pout float64, seed uint64) *bigraph.Graph {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed+7))
	var edges []bigraph.Edge
	for u := 0; u < nu; u++ {
		for v := 0; v < nv; v++ {
			p := pout
			if u*c/nu == v*c/nv {
				p = pin
			}
			if rng.Float64() < p {
				edges = append(edges, bigraph.Edge{U: u, V: v, W: 1})
			}
		}
	}
	g, err := bigraph.New(nu, nv, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// perturb returns g plus extra fresh edges, the incremental-update shape
// the warm start exists for.
func perturb(t *testing.T, g *bigraph.Graph, extra int, seed uint64) *bigraph.Graph {
	t.Helper()
	edges := append([]bigraph.Edge(nil), g.Edges...)
	have := g.HasEdgeSet()
	rng := rand.New(rand.NewPCG(seed, seed+7))
	for added := 0; added < extra; {
		u, v := rng.IntN(g.NU), rng.IntN(g.NV)
		if have[bigraph.PackEdge(u, v)] {
			continue
		}
		have[bigraph.PackEdge(u, v)] = true
		edges = append(edges, bigraph.Edge{U: u, V: v, W: 1})
		added++
	}
	ng, err := bigraph.New(g.NU, g.NV, edges)
	if err != nil {
		t.Fatal(err)
	}
	return ng
}

// maxScoreDiff samples the score matrix U·Vᵀ on a grid and returns the
// largest absolute difference plus the largest absolute score seen, the
// rotation-invariant way to compare two embeddings of the same graph.
func maxScoreDiff(a, b *Embedding) (diff, scale float64) {
	for u := 0; u < a.U.Rows; u += 3 {
		for v := 0; v < a.V.Rows; v += 3 {
			sa, sb := a.Score(u, v), b.Score(u, v)
			if d := math.Abs(sa - sb); d > diff {
				diff = d
			}
			if s := math.Abs(sa); s > scale {
				scale = s
			}
		}
	}
	return diff, scale
}

// Warm-starting GEBE from its own converged embedding must reproduce the
// cold result within tolerance while spending almost no sweep budget.
func TestGEBEWarmStartSameGraph(t *testing.T) {
	g := plantedGraph(t, 60, 40, 4, 0.5, 0.02, 3)
	opt := Options{K: 4, Seed: 1}
	cold, err := GEBE(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Converged {
		t.Fatalf("cold solve did not converge: %d sweeps, %s", cold.Sweeps, cold.StopReason)
	}
	warmOpt := opt
	warmOpt.Seed = 2 // the carried basis, not the RNG, must drive the result
	warmOpt.WarmStart = cold
	warm, err := GEBE(g, warmOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted {
		t.Error("WarmStarted not set on warm solve")
	}
	if cold.WarmStarted {
		t.Error("WarmStarted set on cold solve")
	}
	if warm.SweepsSaved <= 0 {
		t.Errorf("SweepsSaved = %d, want > 0", warm.SweepsSaved)
	}
	if warm.Sweeps > 3 {
		t.Errorf("warm solve used %d sweeps (cold used %d), want <= 3", warm.Sweeps, cold.Sweeps)
	}
	diff, scale := maxScoreDiff(cold, warm)
	if diff > 1e-5*math.Max(1, scale) {
		t.Errorf("cold/warm score mismatch: max diff %g (scale %g)", diff, scale)
	}
}

// On a mildly perturbed graph the warm solve must agree with a cold
// solve of the same graph while spending fewer sweeps — the incremental
// train→serve loop in one assertion.
func TestGEBEWarmStartPerturbedGraph(t *testing.T) {
	base := plantedGraph(t, 60, 40, 4, 0.5, 0.02, 3)
	grown := perturb(t, base, 6, 99)
	opt := Options{K: 4, Seed: 1}
	prev, err := GEBE(base, opt)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := GEBE(grown, opt)
	if err != nil {
		t.Fatal(err)
	}
	warmOpt := opt
	warmOpt.WarmStart = prev
	warm, err := GEBE(grown, warmOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Converged {
		t.Fatalf("warm solve did not converge: %d sweeps, %s", warm.Sweeps, warm.StopReason)
	}
	if warm.SweepsSaved <= 0 {
		t.Errorf("SweepsSaved = %d, want > 0", warm.SweepsSaved)
	}
	if warm.Sweeps >= cold.Sweeps {
		t.Errorf("warm used %d sweeps, cold used %d — warm should use fewer", warm.Sweeps, cold.Sweeps)
	}
	diff, scale := maxScoreDiff(cold, warm)
	if diff > 1e-4*math.Max(1, scale) {
		t.Errorf("cold/warm score mismatch on perturbed graph: max diff %g (scale %g)", diff, scale)
	}
}

// GEBEP's randomized SVD takes the warm seed through InitU/InitV; the
// result must match the cold factorization.
func TestGEBEPWarmStart(t *testing.T) {
	g := plantedGraph(t, 60, 40, 4, 0.5, 0.02, 3)
	opt := Options{K: 4, Seed: 1}
	cold, err := GEBEP(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	warmOpt := opt
	warmOpt.Seed = 2
	warmOpt.WarmStart = cold
	warm, err := GEBEP(g, warmOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted {
		t.Error("WarmStarted not set")
	}
	diff, scale := maxScoreDiff(cold, warm)
	if diff > 1e-3*math.Max(1, scale) {
		t.Errorf("cold/warm score mismatch: max diff %g (scale %g)", diff, scale)
	}
}

// The ablation solvers accept the same option; MHS-BNE threads each side
// through its own warm basis.
func TestAblationWarmStart(t *testing.T) {
	g := plantedGraph(t, 60, 40, 4, 0.5, 0.02, 5)
	opt := Options{K: 4, Seed: 1}
	for _, solver := range []struct {
		name string
		f    func(*bigraph.Graph, Options) (*Embedding, error)
	}{
		{"mhp-bne", MHPBNE},
		{"mhs-bne", MHSBNE},
	} {
		t.Run(solver.name, func(t *testing.T) {
			cold, err := solver.f(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			warmOpt := opt
			warmOpt.WarmStart = cold
			warm, err := solver.f(g, warmOpt)
			if err != nil {
				t.Fatal(err)
			}
			if !warm.WarmStarted {
				t.Error("WarmStarted not set")
			}
			if warm.SweepsSaved <= 0 {
				t.Errorf("SweepsSaved = %d, want > 0", warm.SweepsSaved)
			}
			if warm.Sweeps > cold.Sweeps {
				t.Errorf("warm used %d sweeps, cold used %d", warm.Sweeps, cold.Sweeps)
			}
		})
	}
}

// A WarmStart embedding without U is a configuration error, not a panic.
func TestWarmStartValidation(t *testing.T) {
	g := plantedGraph(t, 20, 15, 2, 0.5, 0.05, 7)
	_, err := GEBE(g, Options{K: 4, WarmStart: &Embedding{}})
	if err == nil {
		t.Fatal("want error for WarmStart with nil U")
	}
}
