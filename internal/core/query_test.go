package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"gebe/internal/budget"
	"gebe/internal/pmf"
)

// TestQueriesMatchDenseReference: point queries must agree with the
// materialized H / P matrices entry for entry.
func TestQueriesMatchDenseReference(t *testing.T) {
	g := randomBipartite(t, 12, 9, 50, true, 101)
	om := pmf.NewPoisson(1)
	const tau = 8
	w := WeightMatrix(g)
	h := ExactH(w, om, tau)
	s := MHSFromH(h)
	p := ExactMHP(w, om, tau)
	for i := 0; i < g.NU; i++ {
		for l := 0; l < g.NU; l++ {
			got, err := MHSQuery(g, om, tau, i, l, time.Time{})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-s.At(i, l)) > 1e-10 {
				t.Fatalf("MHSQuery(%d,%d)=%v dense %v", i, l, got, s.At(i, l))
			}
		}
		for j := 0; j < g.NV; j++ {
			got, err := MHPQuery(g, om, tau, i, j, time.Time{})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-p.At(i, j)) > 1e-10 {
				t.Fatalf("MHPQuery(%d,%d)=%v dense %v", i, j, got, p.At(i, j))
			}
		}
	}
}

func TestMHSQueryVMatchesDense(t *testing.T) {
	g := randomBipartite(t, 10, 8, 40, false, 103)
	om := pmf.NewGeometric(0.4)
	const tau = 6
	sv := MHSFromH(ExactHV(WeightMatrix(g), om, tau))
	for j := 0; j < g.NV; j++ {
		for h := 0; h < g.NV; h++ {
			got, err := MHSQueryV(g, om, tau, j, h, time.Time{})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-sv.At(j, h)) > 1e-10 {
				t.Fatalf("MHSQueryV(%d,%d)=%v dense %v", j, h, got, sv.At(j, h))
			}
		}
	}
}

func TestQueryValidation(t *testing.T) {
	g := figure1Graph(t)
	om := pmf.NewPoisson(1)
	if _, err := MHSQuery(g, om, 5, -1, 0, time.Time{}); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := MHSQuery(g, om, 5, 0, 99, time.Time{}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := MHPQuery(g, om, 5, 0, 99, time.Time{}); err == nil {
		t.Error("out-of-range v index accepted")
	}
	if _, err := MHSQueryV(g, om, 5, 99, 0, time.Time{}); err == nil {
		t.Error("out-of-range v pair accepted")
	}
	if _, _, err := TopSimilar(g, om, 5, 99, 3, time.Time{}); err == nil {
		t.Error("out-of-range TopSimilar index accepted")
	}
}

// TestTopSimilarRunningExample: on the Figure 1 graph, u1's most similar
// node must be u2 (they share all neighbors).
func TestTopSimilarRunningExample(t *testing.T) {
	g := figure1Graph(t)
	ids, sims, err := TopSimilar(g, pmf.NewPoisson(2), 60, 0, 3, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 || ids[0] != 1 {
		t.Fatalf("TopSimilar(u1) = %v (sims %v), want u2 first", ids, sims)
	}
	for x := 1; x < len(sims); x++ {
		if sims[x] > sims[x-1] {
			t.Error("similarities not descending")
		}
	}
}

func TestMHSQuerySelfIsOne(t *testing.T) {
	g := figure1Graph(t)
	got, err := MHSQuery(g, pmf.NewUniform(5), 5, 2, 2, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("s(u,u)=%v want 1", got)
	}
}

// TestQueryDeadlineExceeded: every point-query entry point honors the
// cooperative deadline and surfaces budget.ErrExceeded.
func TestQueryDeadlineExceeded(t *testing.T) {
	g := randomBipartite(t, 12, 9, 50, true, 101)
	om := pmf.NewPoisson(1)
	expired := time.Now().Add(-time.Second)
	if _, err := MHSQuery(g, om, 8, 0, 1, expired); !errors.Is(err, budget.ErrExceeded) {
		t.Errorf("MHSQuery: want budget.ErrExceeded, got %v", err)
	}
	if _, err := MHSQueryV(g, om, 8, 0, 1, expired); !errors.Is(err, budget.ErrExceeded) {
		t.Errorf("MHSQueryV: want budget.ErrExceeded, got %v", err)
	}
	if _, err := MHPQuery(g, om, 8, 0, 1, expired); !errors.Is(err, budget.ErrExceeded) {
		t.Errorf("MHPQuery: want budget.ErrExceeded, got %v", err)
	}
	if _, _, err := TopSimilar(g, om, 8, 0, 3, expired); !errors.Is(err, budget.ErrExceeded) {
		t.Errorf("TopSimilar: want budget.ErrExceeded, got %v", err)
	}
}
