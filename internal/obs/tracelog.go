package obs

import (
	"sort"
	"sync"
	"time"
)

// TraceEntry is one finished request trace plus the metadata needed to
// find it again: the request id, the endpoint, how the request ended,
// and the full span tree. Entries are immutable once added.
type TraceEntry struct {
	ID       string        `json:"id"`
	Name     string        `json:"name"`
	Status   int           `json:"status"`
	Bytes    int64         `json:"bytes"`
	Start    time.Time     `json:"start"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	Cause    string        `json:"cause,omitempty"` // "", "deadline", "panic", "error"
	Retained string        `json:"retained,omitempty"`
	Trace    *Span         `json:"trace,omitempty"`
}

// errored reports whether the entry should be kept on the error ring:
// server-side failures and any request with an explicit failure cause.
func (e *TraceEntry) errored() bool {
	return e.Status >= 500 || e.Cause != ""
}

// TraceLog is a tail-sampling retention buffer for request traces. Most
// requests are healthy and fast, and keeping all of them would be an
// unbounded memory leak — what an operator needs after the fact is the
// outliers. The log therefore retains two bounded sets:
//
//   - the n slowest requests seen so far (evicting the fastest), and
//   - the n most recent errored requests (5xx, deadline, panic), FIFO.
//
// An entry may sit in both sets; it stays addressable by request id
// until it has been evicted from every set. A nil *TraceLog is valid
// and drops everything, so callers instrument unconditionally.
type TraceLog struct {
	mu   sync.Mutex
	n    int
	slow []*logEntry // unordered; evict current minimum Elapsed when full
	errs []*logEntry // FIFO ring, oldest first
	byID map[string]*logEntry
}

// logEntry wraps a TraceEntry with its retention refcount.
type logEntry struct {
	e    TraceEntry
	refs int
}

// NewTraceLog returns a trace log retaining up to n slowest and n
// errored traces; n <= 0 returns nil (retention disabled).
func NewTraceLog(n int) *TraceLog {
	if n <= 0 {
		return nil
	}
	return &TraceLog{n: n, byID: make(map[string]*logEntry, 2*n)}
}

// Cap returns the per-set retention capacity (0 for a nil log).
func (l *TraceLog) Cap() int {
	if l == nil {
		return 0
	}
	return l.n
}

// Add offers a finished request trace for retention. Whether it is kept
// depends on how it compares to what is already retained; Add never
// blocks request completion on anything but the log's own mutex.
func (l *TraceLog) Add(e TraceEntry) {
	if l == nil {
		return
	}
	le := &logEntry{e: e}
	l.mu.Lock()
	defer l.mu.Unlock()
	// Slow set: fill to capacity, then displace the current fastest.
	if len(l.slow) < l.n {
		l.retain(le, l.appendSlow)
	} else if mi := l.minSlow(); l.slow[mi].e.Elapsed < e.Elapsed {
		l.release(l.slow[mi])
		l.slow[mi] = le
		l.retain(le, nil)
	}
	// Error ring: every errored request, oldest evicted first.
	if le.e.errored() {
		if len(l.errs) == l.n {
			l.release(l.errs[0])
			copy(l.errs, l.errs[1:])
			l.errs = l.errs[:l.n-1]
		}
		l.errs = append(l.errs, le)
		l.retain(le, nil)
	}
}

func (l *TraceLog) appendSlow(le *logEntry) { l.slow = append(l.slow, le) }

// retain bumps the entry's refcount, indexes it by id on first
// retention, and runs the optional set-insertion hook.
func (l *TraceLog) retain(le *logEntry, insert func(*logEntry)) {
	if le.refs == 0 {
		// A client-reused id overwrites the older entry in the index; both
		// stay retained in their sets, the newer one wins lookup.
		l.byID[le.e.ID] = le
	}
	le.refs++
	if insert != nil {
		insert(le)
	}
}

// release drops one reference; the last release un-indexes the entry.
func (l *TraceLog) release(le *logEntry) {
	le.refs--
	if le.refs == 0 && l.byID[le.e.ID] == le {
		delete(l.byID, le.e.ID)
	}
}

// minSlow returns the index of the fastest retained slow entry.
func (l *TraceLog) minSlow() int {
	mi := 0
	for i, le := range l.slow {
		if le.e.Elapsed < l.slow[mi].e.Elapsed {
			mi = i
		}
	}
	return mi
}

// Get returns the full retained entry (span tree included) for a
// request id.
func (l *TraceLog) Get(id string) (TraceEntry, bool) {
	if l == nil {
		return TraceEntry{}, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	le, ok := l.byID[id]
	if !ok {
		return TraceEntry{}, false
	}
	return le.e, true
}

// Entries returns a summary view of everything currently retained —
// span trees stripped, deduplicated across sets, slowest first, each
// marked with why it was kept ("slow", "error", or "slow,error").
func (l *TraceLog) Entries() []TraceEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	seen := make(map[*logEntry]*TraceEntry, len(l.slow)+len(l.errs))
	out := make([]TraceEntry, 0, len(l.slow)+len(l.errs))
	collect := func(les []*logEntry, reason string) {
		for _, le := range les {
			if prev := seen[le]; prev != nil {
				prev.Retained += "," + reason
				continue
			}
			e := le.e
			e.Trace = nil
			e.Retained = reason
			out = append(out, e)
			seen[le] = &out[len(out)-1]
		}
	}
	collect(l.slow, "slow")
	collect(l.errs, "error")
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Elapsed > out[j].Elapsed })
	return out
}
