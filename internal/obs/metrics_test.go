package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests served")
	c.Inc()
	c.Add(2.5)
	c.Add(-3) // counters are monotone; negative deltas ignored
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}
	if r.Counter("requests_total", "") != c {
		t.Error("get-or-create must return the same handle")
	}
}

func TestGaugeSemantics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("queue_depth", "")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Errorf("gauge = %v, want 6", got)
	}
}

func TestHistogramSemantics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got != 55.65 {
		t.Errorf("sum = %v, want 55.65", got)
	}
}

func TestPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "bees").Add(2)
	r.Gauge("a_gauge", "").Set(1.5)
	h := r.Histogram("lat", "latency", []float64{0.5, 2})
	h.Observe(0.4)
	h.Observe(1)
	h.Observe(99)
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE a_gauge gauge\na_gauge 1.5\n",
		"# HELP b_total bees\n# TYPE b_total counter\nb_total 2\n",
		"# TYPE lat histogram\n",
		"lat_bucket{le=\"0.5\"} 1\n",
		"lat_bucket{le=\"2\"} 2\n",
		"lat_bucket{le=\"+Inf\"} 3\n",
		"lat_sum 100.4\n",
		"lat_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus text missing %q in:\n%s", want, out)
		}
	}
	// Names must be sorted.
	if strings.Index(out, "a_gauge") > strings.Index(out, "b_total") {
		t.Errorf("metrics not sorted by name:\n%s", out)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "").Add(7)
	h := r.Histogram("h", "", nil)
	h.Observe(0.2)
	snap := r.Snapshot()
	if snap["c"] != 7.0 {
		t.Errorf("snapshot counter = %v", snap["c"])
	}
	hv, ok := snap["h"].(map[string]any)
	if !ok || hv["count"] != uint64(1) {
		t.Errorf("snapshot histogram = %v", snap["h"])
	}
}

// TestRegistryConcurrent exercises registration and updates from many
// goroutines; run with -race to verify the registry's synchronization.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("shared_total", "").Inc()
				r.Gauge("shared_gauge", "").Set(float64(i))
				r.Histogram("shared_hist", "", nil).Observe(float64(i) / 100)
				if i%100 == 0 {
					var sb strings.Builder
					if _, err := r.WriteTo(&sb); err != nil {
						t.Error(err)
						return
					}
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total", "").Value(); got != 4000 {
		t.Errorf("concurrent counter = %v, want 4000", got)
	}
	if got := r.Histogram("shared_hist", "", nil).Count(); got != 4000 {
		t.Errorf("concurrent histogram count = %d, want 4000", got)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("x", "").Inc()
	r.Gauge("x", "").Set(1)
	r.Histogram("x", "", nil).Observe(1)
	if _, err := r.WriteTo(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if len(r.Snapshot()) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("spmm_kernel", "products per kernel")
	v.With("k8").Inc()
	v.With("k8").Add(2)
	v.With("generic").Inc()
	if got := v.With("k8").Value(); got != 3 {
		t.Errorf("k8 = %v, want 3", got)
	}
	// Label handles materialize as plain counters with the _total suffix.
	if got := r.Counter("spmm_kernel_k8_total", "").Value(); got != 3 {
		t.Errorf("spmm_kernel_k8_total = %v, want 3", got)
	}
	if got := r.Counter("spmm_kernel_generic_total", "").Value(); got != 1 {
		t.Errorf("spmm_kernel_generic_total = %v, want 1", got)
	}
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "spmm_kernel_k8_total 3") {
		t.Errorf("exposition missing labeled counter:\n%s", sb.String())
	}
	// Nil family and nil registry are no-ops.
	var nilVec *CounterVec
	nilVec.With("x").Inc()
	var nilReg *Registry
	nilReg.CounterVec("a", "b").With("c").Inc()
}

func TestCounterVecConcurrent(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("conc", "")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				v.With("a").Inc()
			}
		}()
	}
	wg.Wait()
	if got := v.With("a").Value(); got != 4000 {
		t.Errorf("concurrent labeled counter = %v, want 4000", got)
	}
}
