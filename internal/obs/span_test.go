package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTrace("run")
	ksi := tr.StartSpan("ksi")
	s1 := tr.StartSpan("ksi.sweep")
	time.Sleep(time.Millisecond)
	s1.Set("sweep", 1).Set("residual", 0.5)
	s1.End()
	s2 := tr.StartSpan("ksi.sweep")
	s2.End()
	ksi.End()
	embed := tr.StartSpan("embed")
	embed.End()
	root := tr.Root()

	if root.Name != "run" || len(root.Children) != 2 {
		t.Fatalf("root = %q with %d children, want run with 2", root.Name, len(root.Children))
	}
	gotKSI := root.Children[0]
	if gotKSI.Name != "ksi" || len(gotKSI.Children) != 2 {
		t.Fatalf("ksi span has %d children, want 2 sweeps", len(gotKSI.Children))
	}
	if gotKSI.Children[0].Attrs["sweep"] != 1 || gotKSI.Children[0].Attrs["residual"] != 0.5 {
		t.Errorf("sweep attrs = %v", gotKSI.Children[0].Attrs)
	}
	if gotKSI.Children[0].Duration < time.Millisecond {
		t.Errorf("sweep duration = %v, want >= 1ms", gotKSI.Children[0].Duration)
	}
	if gotKSI.Duration < gotKSI.Children[0].Duration {
		t.Errorf("parent duration %v < child duration %v", gotKSI.Duration, gotKSI.Children[0].Duration)
	}
	if root.Children[1].Name != "embed" {
		t.Errorf("second child = %q, want embed", root.Children[1].Name)
	}
}

func TestSpanOutOfOrderEnd(t *testing.T) {
	tr := NewTrace("run")
	outer := tr.StartSpan("outer")
	tr.StartSpan("inner") // never explicitly ended
	outer.End()           // must close inner too
	next := tr.StartSpan("next")
	next.End()
	root := tr.Root()
	if len(root.Children) != 2 {
		t.Fatalf("root children = %d, want 2 (next must not nest under outer)", len(root.Children))
	}
	if !root.Children[0].Children[0].ended {
		t.Error("inner span left open")
	}
}

// TestStartChildConcurrentSiblings: detached children are the
// fan-out-safe span form — N goroutines each open one under the same
// parent and End them in arbitrary order without closing each other or
// disturbing the trace's open-span stack.
func TestStartChildConcurrentSiblings(t *testing.T) {
	tr := NewTrace("run")
	gather := tr.StartSpan("gather")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := gather.StartChild("shard")
			c.Set("shard", i)
			c.StartChild("attempt").End() // detached spans nest further
			c.End()
		}(i)
	}
	wg.Wait()
	// The stack is undisturbed: a StartSpan after the fan-out is a
	// sibling of gather, not a child of some shard span.
	gather.End()
	after := tr.StartSpan("encode")
	after.End()
	root := tr.Root()
	if len(root.Children) != 2 || root.Children[1].Name != "encode" {
		t.Fatalf("root children = %+v, want [gather encode]", root.Children)
	}
	shards := root.Children[0].Children
	if len(shards) != 8 {
		t.Fatalf("gather has %d children, want 8", len(shards))
	}
	for _, c := range shards {
		if !c.ended || c.Name != "shard" {
			t.Errorf("shard span %+v left open or misnamed", c)
		}
		if len(c.Children) != 1 || !c.Children[0].ended {
			t.Errorf("nested attempt span wrong: %+v", c.Children)
		}
	}
	// Ending a detached child twice or after its parent is harmless.
	shards[0].End()
}

// TestStartChildNotClosedByStackEnd: an out-of-order End on a stack
// span (which sweeps up everything opened after it) must not touch an
// open detached child — the shard goroutine holding it may still be
// running.
func TestStartChildNotClosedByStackEnd(t *testing.T) {
	tr := NewTrace("run")
	outer := tr.StartSpan("outer")
	c := outer.StartChild("inflight")
	outer.End() // sweeps the stack, not the detached child
	if c.ended {
		t.Fatal("detached child closed by its parent's stack End")
	}
	c.End()
	if !c.ended || c.Duration <= 0 {
		t.Fatalf("detached child did not close itself: %+v", c)
	}
	// Nil safety mirrors StartSpan.
	var nilSpan *Span
	nilSpan.StartChild("x").Set("k", 1).End()
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr := NewTrace("run")
	sp := tr.StartSpan("phase")
	sp.Set("k", 32)
	sp.End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Span
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, buf.String())
	}
	if decoded.Name != "run" || len(decoded.Children) != 1 || decoded.Children[0].Name != "phase" {
		t.Errorf("decoded tree wrong: %+v", decoded)
	}
}

func TestNilTraceAndSpanSafe(t *testing.T) {
	var tr *Trace
	sp := tr.StartSpan("x")
	if sp != nil {
		t.Fatal("nil trace must return nil span")
	}
	sp.Set("k", 1)
	sp.End()
	if err := tr.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	// Package-level StartSpan with no default trace installed.
	StartSpan("y").End()
}

func TestRunNilSafe(t *testing.T) {
	var r *Run
	r.Span("x").End()
	r.Logger().Info("no-op")
	r.Registry().Counter("c", "").Inc()
	r.Emit(Progress{Phase: "ksi.sweep", Step: 1})
	// Non-nil run with nil fields.
	r2 := &Run{}
	r2.Span("x").End()
	r2.Emit(Progress{})
	var got []Progress
	r3 := &Run{Progress: func(p Progress) { got = append(got, p) }}
	r3.Emit(Progress{Phase: "rsvd.block", Step: 2, Total: 5})
	if len(got) != 1 || got[0].Step != 2 {
		t.Errorf("progress hook got %v", got)
	}
}

func TestDebugMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total", "").Add(3)
	srv := httptest.NewServer(NewDebugMux(reg))
	defer srv.Close()
	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "hits_total 3") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Errorf("/debug/vars = %d %q", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ = %d", code)
	}
}
