package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
)

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	l := NewTextLogger(&buf, slog.LevelInfo)
	if l.Enabled(slog.LevelDebug) {
		t.Error("debug must be disabled at info level")
	}
	if !l.Enabled(slog.LevelInfo) || !l.Enabled(slog.LevelError) {
		t.Error("info/error must be enabled at info level")
	}
	l.Debug("hidden", "k", 1)
	l.Info("shown", "sweep", 3, "residual", 0.25)
	l.Warn("warned")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("debug record leaked: %q", out)
	}
	if !strings.Contains(out, "msg=shown") || !strings.Contains(out, "sweep=3") || !strings.Contains(out, "residual=0.25") {
		t.Errorf("info record missing key=value attrs: %q", out)
	}
	if !strings.Contains(out, "level=WARN") {
		t.Errorf("warn level missing: %q", out)
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	if l.Enabled(slog.LevelError) {
		t.Error("nil logger must report disabled")
	}
	// All of these must be no-ops, not panics.
	l.Debug("x")
	l.Info("x", "k", "v")
	l.Warn("x")
	l.Error("x")
	if l.With("a", 1) != nil {
		t.Error("nil.With must stay nil")
	}
}

func TestLoggerWith(t *testing.T) {
	var buf bytes.Buffer
	l := NewTextLogger(&buf, slog.LevelDebug).With("component", "gebe")
	l.Debug("tick")
	if out := buf.String(); !strings.Contains(out, "component=gebe") {
		t.Errorf("With attr missing: %q", out)
	}
}

func TestDefaultLogger(t *testing.T) {
	if Default() != nil {
		t.Fatal("default logger must start disabled")
	}
	var buf bytes.Buffer
	SetDefault(NewTextLogger(&buf, slog.LevelInfo))
	defer SetDefault(nil)
	Default().Info("via default")
	if !strings.Contains(buf.String(), "via default") {
		t.Errorf("default logger did not write: %q", buf.String())
	}
}
