package obs

import (
	"runtime"
	"runtime/debug"
	"sync"

	"gebe/internal/cpu"
)

// Build is the binary's provenance: enough to attribute a trace, a
// latency snapshot, or a run manifest to the exact commit and toolchain
// that produced it. Comparing two measurements is only meaningful when
// both sides know what they measured — the same discipline the
// embedding-quality protocols apply to datasets and splits.
type Build struct {
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit ("unknown" when built outside a
	// checkout, e.g. `go run` without VCS stamping).
	Revision string `json:"revision"`
	// Time is the commit timestamp (RFC 3339), when stamped.
	Time string `json:"time,omitempty"`
	// Modified reports uncommitted changes in the build's working tree.
	Modified bool   `json:"modified,omitempty"`
	GOOS     string `json:"goos"`
	GOARCH   string `json:"goarch"`
	// GOAMD64 is the amd64 microarchitecture level the binary targets
	// (v1..v4) — it decides which register-blocked kernels are eligible,
	// so two snapshots at different levels are not comparable.
	GOAMD64 string `json:"goamd64,omitempty"`
	// CPUFeatures is the runtime-detected vector capability summary
	// ("avx2,fma", "neon", or "none" — always "none" under -tags purego).
	CPUFeatures string `json:"cpu_features"`
	// Kernels is the kernel flavor the engines resolve by default
	// ("go", "simd", or "fma"), after GEBE_SIMD and hardware clamping.
	Kernels string `json:"kernels"`
}

var (
	buildOnce sync.Once
	buildInfo Build
)

// BuildInfo returns the binary's build provenance, read once from
// runtime/debug.ReadBuildInfo.
func BuildInfo() Build {
	buildOnce.Do(func() {
		buildInfo = Build{
			GoVersion:   runtime.Version(),
			Revision:    "unknown",
			GOOS:        runtime.GOOS,
			GOARCH:      runtime.GOARCH,
			CPUFeatures: cpu.Supported().Summary(),
			Kernels:     cpu.Resolve(cpu.KernelAuto).String(),
		}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.time":
				buildInfo.Time = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			case "GOAMD64":
				buildInfo.GOAMD64 = s.Value
			}
		}
	})
	return buildInfo
}
