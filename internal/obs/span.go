package obs

import (
	"encoding/json"
	"io"
	"os"
	runtimemetrics "runtime/metrics"
	"sync"
	"time"
)

// Trace is a per-run tree of phase spans. Spans nest by call order: a
// span started while another is open becomes its child, so sequential
// solver code gets a faithful phase tree with no context plumbing. The
// tree is guarded by a mutex, making concurrent StartSpan/End calls safe
// (they attach to the innermost open span at the time of the call).
//
// A nil *Trace is valid and free: StartSpan returns a nil *Span whose
// methods are all no-ops.
type Trace struct {
	mu    sync.Mutex
	root  *Span
	stack []*Span
}

// Span is one timed phase. All methods are safe on a nil receiver.
type Span struct {
	Name     string         `json:"name"`
	Start    time.Time      `json:"start"`
	Duration time.Duration  `json:"duration_ns"`
	Allocs   uint64         `json:"alloc_bytes,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*Span        `json:"children,omitempty"`

	tr          *Trace
	startAllocs uint64
	ended       bool
	// detached spans live under their parent but off the trace's
	// open-span stack (StartChild); their End closes only themselves.
	detached bool
}

// NewTrace returns a trace whose root span is open from now.
func NewTrace(name string) *Trace {
	t := &Trace{}
	t.root = &Span{Name: name, Start: time.Now(), tr: t, startAllocs: heapAllocBytes()}
	t.stack = []*Span{t.root}
	return t
}

// StartSpan opens a child of the innermost open span.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{Name: name, Start: time.Now(), tr: t, startAllocs: heapAllocBytes()}
	t.mu.Lock()
	parent := t.stack[len(t.stack)-1]
	parent.Children = append(parent.Children, s)
	t.stack = append(t.stack, s)
	t.mu.Unlock()
	return s
}

// StartChild opens a child attached directly to s, bypassing the
// trace's open-span stack. This is the concurrency-safe sibling form:
// N goroutines fanning out under one parent each StartChild their own
// span and End it independently — stack-based StartSpan would
// interleave them, and an out-of-order End would close the lot. A
// detached span's End closes only itself, and further StartChild calls
// on it nest normally.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: time.Now(), tr: s.tr, startAllocs: heapAllocBytes(), detached: true}
	s.tr.mu.Lock()
	s.Children = append(s.Children, c)
	s.tr.mu.Unlock()
	return c
}

// Set attaches an attribute to the span (rendered into the JSON tree).
func (s *Span) Set(key string, v any) *Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	if s.Attrs == nil {
		s.Attrs = make(map[string]any)
	}
	s.Attrs[key] = v
	s.tr.mu.Unlock()
	return s
}

// End closes the span, recording wall-clock duration and heap bytes
// allocated while it was open. Ending out of order closes every span
// opened after it as well.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	allocs := heapAllocBytes()
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.detached {
		if !s.ended {
			s.ended = true
			s.Duration = now.Sub(s.Start)
			s.Allocs = allocs - s.startAllocs
		}
		return
	}
	for i := len(s.tr.stack) - 1; i >= 1; i-- {
		open := s.tr.stack[i]
		if !open.ended {
			open.ended = true
			open.Duration = now.Sub(open.Start)
			open.Allocs = allocs - open.startAllocs
		}
		if open == s {
			s.tr.stack = s.tr.stack[:i]
			return
		}
	}
	// Already ended (or root): nothing to pop.
}

// Root closes the root span (fixing the run's total duration) and
// returns the completed tree.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	if !t.root.ended {
		t.root.ended = true
		t.root.Duration = time.Since(t.root.Start)
		t.root.Allocs = heapAllocBytes() - t.root.startAllocs
	}
	t.stack = t.stack[:1]
	t.mu.Unlock()
	return t.root
}

// WriteJSON serializes the (closed) trace tree as indented JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	root := t.Root()
	t.mu.Lock()
	defer t.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(root)
}

// WriteFile writes the trace tree to a JSON file.
func (t *Trace) WriteFile(path string) error {
	if t == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// heapAllocBytes reads the process's cumulative heap allocation counter
// (cheap, unlike runtime.ReadMemStats, which stops the world).
func heapAllocBytes() uint64 {
	sample := []runtimemetrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	runtimemetrics.Read(sample)
	if sample[0].Value.Kind() != runtimemetrics.KindUint64 {
		return 0
	}
	return sample[0].Value.Uint64()
}
