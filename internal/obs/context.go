package obs

import "context"

// Request-scoped tracing. The original Trace (span.go) nests spans
// through one shared stack, which is exactly right for a sequential
// solver run and exactly wrong for a server: spans opened by concurrent
// requests on a shared trace attach to whatever span happens to be
// innermost, misparenting the tree. Context carriage fixes that by
// giving every request its own *Trace — the tree is private to one
// goroutine chain, so the stack discipline holds again.

// traceKey is the context key for a request-scoped *Trace.
type traceKey struct{}

// ContextWithTrace returns a context carrying tr. A nil tr is allowed
// and simply means "untraced": FromContext will return nil and every
// span operation downstream degrades to a no-op.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, tr)
}

// FromContext returns the trace carried by ctx, or nil when the context
// is untraced. The nil result is safe to use directly:
// FromContext(ctx).StartSpan("x") is a no-op returning a nil span.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// SpanFromContext opens a span on the context's trace: the one-line
// instrumentation idiom for request handlers. No-op on untraced
// contexts.
func SpanFromContext(ctx context.Context, name string) *Span {
	return FromContext(ctx).StartSpan(name)
}
