package obs

import (
	"math"
	"runtime"
	"strings"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	h := NewRegistry().Histogram("q", "", []float64{1, 2, 4, 8})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	// 100 observations uniform in (0,1]: every quantile interpolates
	// inside the first bucket [0,1].
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if got := h.Quantile(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("p50 = %v, want 0.5", got)
	}
	if got := h.Quantile(1); got != 1 {
		t.Errorf("p100 = %v, want 1 (top of first bucket)", got)
	}
	// Push 100 more into (2,4]: p75 now sits in that bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(2 + 2*float64(i)/100)
	}
	if got := h.Quantile(0.75); got <= 2 || got > 4 {
		t.Errorf("p75 = %v, want within (2,4]", got)
	}
	// Observations beyond the last bound clamp to it.
	h.Observe(1000)
	if got := h.Quantile(1); got != 8 {
		t.Errorf("p100 with +Inf observation = %v, want clamp to 8", got)
	}
	// Bounds clamp, nil is safe.
	if got := h.Quantile(-1); got < 0 {
		t.Errorf("q=-1 -> %v", got)
	}
	// NaN slips past the < / > clamps; it must yield 0, not NaN — the
	// quantile lands in JSON output, and encoding/json rejects NaN.
	if got := h.Quantile(math.NaN()); got != 0 {
		t.Errorf("q=NaN -> %v, want 0", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram quantile = %v", got)
	}
	empty := NewRegistry().Histogram("q2", "", []float64{1, 2})
	if got := empty.Quantile(math.NaN()); got != 0 {
		t.Errorf("empty q=NaN -> %v, want 0", got)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	r.GaugeFunc("dynamic", "computed at scrape", func() float64 { return v })
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dynamic 1") || !strings.Contains(sb.String(), "# TYPE dynamic gauge") {
		t.Errorf("exposition missing gauge func:\n%s", sb.String())
	}
	v = 42
	if got := r.Snapshot()["dynamic"]; got != 42.0 {
		t.Errorf("snapshot = %v, want the recomputed 42", got)
	}
	// Re-registering keeps the first function; nil fn and nil registry
	// are no-ops.
	r.GaugeFunc("dynamic", "", func() float64 { return -1 })
	if got := r.Snapshot()["dynamic"]; got != 42.0 {
		t.Errorf("re-register replaced the function: %v", got)
	}
	r.GaugeFunc("nilfn", "", nil)
	var nilR *Registry
	nilR.GaugeFunc("x", "", func() float64 { return 0 })
}

func TestRegisterRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	RegisterRuntimeMetrics(r) // idempotent
	RegisterRuntimeMetrics(nil)
	runtime.GC() // ensure at least one pause sample exists
	snap := r.Snapshot()
	if g, ok := snap["runtime_goroutines"].(float64); !ok || g < 1 {
		t.Errorf("runtime_goroutines = %v", snap["runtime_goroutines"])
	}
	if b, ok := snap["runtime_heap_bytes"].(float64); !ok || b <= 0 {
		t.Errorf("runtime_heap_bytes = %v", snap["runtime_heap_bytes"])
	}
	if c, ok := snap["runtime_gc_cycles"].(float64); !ok || c < 1 {
		t.Errorf("runtime_gc_cycles = %v", snap["runtime_gc_cycles"])
	}
	p50, ok50 := snap["runtime_gc_pause_seconds_p50"].(float64)
	p99, ok99 := snap["runtime_gc_pause_seconds_p99"].(float64)
	if !ok50 || !ok99 || p50 < 0 || p99 < p50 {
		t.Errorf("gc pause quantiles p50=%v p99=%v", p50, p99)
	}
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "runtime_gc_pause_seconds_p90") {
		t.Errorf("exposition missing runtime metrics:\n%s", sb.String())
	}
}
