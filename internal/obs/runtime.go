package obs

import (
	"math"
	"runtime"
	runtimemetrics "runtime/metrics"
)

// The runtime collector exports process health alongside the domain
// metrics: when a latency histogram moves, the first question is
// whether the process itself was struggling (goroutine pileup, heap
// growth, GC pauses). Everything reads runtime/metrics at scrape time
// through GaugeFunc, the same cheap sampling heapAllocBytes uses — no
// background goroutine, no stop-the-world ReadMemStats.

// runtime/metrics sample names the collector reads.
const (
	rmHeapBytes = "/memory/classes/heap/objects:bytes"
	rmGCPauses  = "/sched/pauses/total/gc:seconds"
	rmGCCycles  = "/gc/cycles/total:gc-cycles"
)

// RegisterRuntimeMetrics exposes goroutine count, live heap bytes, GC
// cycle count, and GC pause quantiles (p50/p90/p99) on r. Idempotent;
// safe on a nil registry.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("runtime_goroutines", "goroutines currently live",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("runtime_heap_bytes", "bytes of live heap objects",
		func() float64 { return sampleUint64(rmHeapBytes) })
	r.GaugeFunc("runtime_gc_cycles", "completed GC cycles",
		func() float64 { return sampleUint64(rmGCCycles) })
	for _, q := range []struct {
		name string
		q    float64
	}{{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}} {
		q := q
		r.GaugeFunc("runtime_gc_pause_seconds_"+q.name,
			"GC stop-the-world pause quantile ("+q.name+") over the process lifetime",
			func() float64 { return gcPauseQuantile(q.q) })
	}
}

// sampleUint64 reads one uint64 runtime/metrics sample (0 when the
// metric is unsupported on this Go version).
func sampleUint64(name string) float64 {
	s := []runtimemetrics.Sample{{Name: name}}
	runtimemetrics.Read(s)
	if s[0].Value.Kind() != runtimemetrics.KindUint64 {
		return 0
	}
	return float64(s[0].Value.Uint64())
}

// gcPauseQuantile estimates a quantile of the runtime's cumulative GC
// pause histogram by linear interpolation within the bucket the rank
// falls in, mirroring Histogram.Quantile for the runtime's
// variable-width buckets.
func gcPauseQuantile(q float64) float64 {
	s := []runtimemetrics.Sample{{Name: rmGCPauses}}
	runtimemetrics.Read(s)
	if s[0].Value.Kind() != runtimemetrics.KindFloat64Histogram {
		return 0
	}
	h := s[0].Value.Float64Histogram()
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range h.Counts {
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		// Bucket i spans h.Buckets[i] .. h.Buckets[i+1]; the outermost
		// buckets may be infinite — clamp to the finite edge.
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if math.IsInf(lo, -1) || lo < 0 {
			lo = 0
		}
		if math.IsInf(hi, 1) {
			return lo
		}
		return lo + (hi-lo)*(rank-(cum-float64(c)))/float64(c)
	}
	return 0
}
