package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving the registry in Prometheus
// text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}

// NewDebugMux builds the standard debug surface: the registry's
// Prometheus text at /metrics, expvar JSON at /debug/vars, and the full
// net/http/pprof suite under /debug/pprof/.
func NewDebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug binds addr (":0" picks a free port), serves the debug mux
// on it in a background goroutine, and returns the bound address. Meant
// for long benchmark runs: attach Prometheus scrapes or `go tool pprof`
// while the solver is working.
func ServeDebug(addr string, reg *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	RegisterRuntimeMetrics(reg)
	reg.PublishExpvar("gebe_metrics")
	srv := &http.Server{Handler: NewDebugMux(reg)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
