package obs

import (
	"context"
	"io"
	"log/slog"
	"time"
)

// Logger is a leveled key=value logger backed by a slog.Handler. The nil
// *Logger is a valid, fully disabled logger: every method on it returns
// immediately, which is what makes instrumentation free when off.
type Logger struct {
	h slog.Handler
}

// Level aliases so instrumented packages need not import log/slog.
const (
	LevelDebug = slog.LevelDebug
	LevelInfo  = slog.LevelInfo
	LevelWarn  = slog.LevelWarn
	LevelError = slog.LevelError
)

// NewLogger wraps an arbitrary slog.Handler.
func NewLogger(h slog.Handler) *Logger {
	if h == nil {
		return nil
	}
	return &Logger{h: h}
}

// NewTextLogger returns a key=value text logger writing to w at the
// given minimum level (slog.LevelDebug, slog.LevelInfo, ...).
func NewTextLogger(w io.Writer, level slog.Level) *Logger {
	return &Logger{h: slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})}
}

// Enabled reports whether records at lvl would be emitted. Nil-safe;
// callers guard expensive attribute computation with it.
func (l *Logger) Enabled(lvl slog.Level) bool {
	return l != nil && l.h.Enabled(context.Background(), lvl)
}

// Log emits one record with alternating key/value args, slog-style.
func (l *Logger) Log(lvl slog.Level, msg string, args ...any) {
	if !l.Enabled(lvl) {
		return
	}
	rec := slog.NewRecord(time.Now(), lvl, msg, 0)
	rec.Add(args...)
	_ = l.h.Handle(context.Background(), rec)
}

// Debug logs at slog.LevelDebug.
func (l *Logger) Debug(msg string, args ...any) { l.Log(slog.LevelDebug, msg, args...) }

// Info logs at slog.LevelInfo.
func (l *Logger) Info(msg string, args ...any) { l.Log(slog.LevelInfo, msg, args...) }

// Warn logs at slog.LevelWarn.
func (l *Logger) Warn(msg string, args ...any) { l.Log(slog.LevelWarn, msg, args...) }

// Error logs at slog.LevelError.
func (l *Logger) Error(msg string, args ...any) { l.Log(slog.LevelError, msg, args...) }

// With returns a logger whose records carry the given attributes.
func (l *Logger) With(args ...any) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{h: l.h.WithAttrs(argsToAttrs(args))}
}

func argsToAttrs(args []any) []slog.Attr {
	var attrs []slog.Attr
	for i := 0; i+1 < len(args); i += 2 {
		key, ok := args[i].(string)
		if !ok {
			key = "!BADKEY"
		}
		attrs = append(attrs, slog.Any(key, args[i+1]))
	}
	return attrs
}
