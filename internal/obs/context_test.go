package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestContextTraceConcurrentRequests is the regression test for the
// serve-path misparenting bug: N goroutines, each standing in for one
// request, carry their own *Trace through a context and nest spans
// concurrently. Every resulting tree must contain exactly its own
// goroutine's spans, correctly parented. Run under -race this also
// proves the per-request discipline needs no shared lock ordering.
func TestContextTraceConcurrentRequests(t *testing.T) {
	const requests = 16
	const phases = 8
	traces := make([]*Trace, requests)
	var wg sync.WaitGroup
	for g := 0; g < requests; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tr := NewTrace(fmt.Sprintf("req-%d", g))
			ctx := ContextWithTrace(context.Background(), tr)
			for p := 0; p < phases; p++ {
				outer := SpanFromContext(ctx, fmt.Sprintf("phase-%d", p))
				inner := FromContext(ctx).StartSpan("tile")
				inner.Set("owner", g)
				inner.End()
				outer.End()
			}
			traces[g] = tr
		}(g)
	}
	wg.Wait()

	for g, tr := range traces {
		root := tr.Root()
		if root.Name != fmt.Sprintf("req-%d", g) {
			t.Fatalf("trace %d root = %q", g, root.Name)
		}
		if len(root.Children) != phases {
			t.Fatalf("trace %d has %d phases, want %d (misparented?)", g, len(root.Children), phases)
		}
		for p, ph := range root.Children {
			if ph.Name != fmt.Sprintf("phase-%d", p) {
				t.Errorf("trace %d phase %d = %q", g, p, ph.Name)
			}
			if len(ph.Children) != 1 || ph.Children[0].Name != "tile" {
				t.Fatalf("trace %d phase %d children = %+v", g, p, ph.Children)
			}
			if owner := ph.Children[0].Attrs["owner"]; owner != g {
				t.Errorf("trace %d adopted a span owned by %v", g, owner)
			}
		}
	}
}

// TestGlobalTraceInterleaves documents why the context form exists: on
// one shared Trace, a span opened by goroutine B while goroutine A has
// a span open becomes A's child — the global stack cannot tell
// concurrent requests apart. The interleaving is forced deterministic
// with channels so the misparenting is asserted, not raced.
func TestGlobalTraceInterleaves(t *testing.T) {
	tr := NewTrace("shared")
	aOpen := make(chan struct{})
	bDone := make(chan struct{})
	go func() {
		<-aOpen
		b := tr.StartSpan("request-b")
		b.End()
		close(bDone)
	}()
	a := tr.StartSpan("request-a")
	close(aOpen)
	<-bDone
	a.End()
	root := tr.Root()

	if len(root.Children) != 1 {
		t.Fatalf("shared trace has %d top-level spans, want 1 (b nested under a)", len(root.Children))
	}
	gotA := root.Children[0]
	if gotA.Name != "request-a" || len(gotA.Children) != 1 || gotA.Children[0].Name != "request-b" {
		t.Fatalf("expected request-b misparented under request-a, got %+v", root)
	}
}

func TestFromContextUntraced(t *testing.T) {
	if tr := FromContext(context.Background()); tr != nil {
		t.Fatal("untraced context returned a trace")
	}
	if tr := FromContext(nil); tr != nil { //nolint:staticcheck // nil ctx is the point
		t.Fatal("nil context returned a trace")
	}
	// The nil results must be usable.
	SpanFromContext(context.Background(), "x").Set("k", 1).End()
	ctx := ContextWithTrace(context.Background(), nil)
	if tr := FromContext(ctx); tr != nil {
		t.Fatal("explicitly-nil trace should read back nil")
	}
}
