package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func entry(id string, status int, elapsed time.Duration, cause string) TraceEntry {
	tr := NewTrace("req")
	tr.StartSpan("phase").End()
	return TraceEntry{ID: id, Name: "recommend", Status: status,
		Elapsed: elapsed, Cause: cause, Trace: tr.Root()}
}

func TestTraceLogRetainsSlowest(t *testing.T) {
	l := NewTraceLog(3)
	for i := 1; i <= 10; i++ {
		l.Add(entry(fmt.Sprintf("r%d", i), 200, time.Duration(i)*time.Millisecond, ""))
	}
	got := l.Entries()
	if len(got) != 3 {
		t.Fatalf("retained %d entries, want 3", len(got))
	}
	// Slowest first: r10, r9, r8.
	for i, want := range []string{"r10", "r9", "r8"} {
		if got[i].ID != want {
			t.Errorf("entry %d = %s, want %s", i, got[i].ID, want)
		}
		if got[i].Retained != "slow" {
			t.Errorf("entry %d retained = %q, want slow", i, got[i].Retained)
		}
		if got[i].Trace != nil {
			t.Errorf("summary for %s carries the span tree", got[i].ID)
		}
	}
	// Evicted fast entries are no longer addressable; retained ones are,
	// with their span tree intact.
	if _, ok := l.Get("r1"); ok {
		t.Error("evicted r1 still addressable")
	}
	full, ok := l.Get("r10")
	if !ok || full.Trace == nil || len(full.Trace.Children) != 1 {
		t.Fatalf("Get(r10) = %+v, %v; want full span tree", full, ok)
	}
}

func TestTraceLogRetainsErrored(t *testing.T) {
	l := NewTraceLog(2)
	// Two slow healthy requests fill the slow set.
	l.Add(entry("slow1", 200, 100*time.Millisecond, ""))
	l.Add(entry("slow2", 200, 90*time.Millisecond, ""))
	// Fast errored requests are kept on the error ring even though they
	// would never qualify as slow; the ring is FIFO-bounded.
	l.Add(entry("err1", 500, time.Microsecond, "panic"))
	l.Add(entry("err2", 503, 2*time.Microsecond, "deadline"))
	l.Add(entry("err3", 500, 3*time.Microsecond, ""))

	if _, ok := l.Get("err1"); ok {
		t.Error("err1 should have been evicted from the 2-entry error ring")
	}
	for _, id := range []string{"err2", "err3", "slow1", "slow2"} {
		if _, ok := l.Get(id); !ok {
			t.Errorf("%s not retained", id)
		}
	}
	got := l.Entries()
	if len(got) != 4 {
		t.Fatalf("retained %d entries, want 4: %+v", len(got), got)
	}
	if got[0].ID != "slow1" || got[0].Retained != "slow" {
		t.Errorf("slowest = %s (%s), want slow1 (slow)", got[0].ID, got[0].Retained)
	}
}

func TestTraceLogSlowAndErrored(t *testing.T) {
	// A slow *and* errored entry sits in both sets and must survive
	// eviction from one while referenced by the other.
	l := NewTraceLog(2)
	l.Add(entry("both", 503, time.Second, "deadline"))
	got := l.Entries()
	if len(got) != 1 || !strings.Contains(got[0].Retained, "slow") || !strings.Contains(got[0].Retained, "error") {
		t.Fatalf("entries = %+v, want one entry retained as slow and error", got)
	}
	// Push it off the slow set with slower healthy requests.
	l.Add(entry("s1", 200, 2*time.Second, ""))
	l.Add(entry("s2", 200, 3*time.Second, ""))
	if _, ok := l.Get("both"); !ok {
		t.Error("entry evicted from slow set lost its error-ring retention")
	}
	// Then off the error ring too: now it must disappear entirely.
	l.Add(entry("e1", 500, time.Microsecond, ""))
	l.Add(entry("e2", 500, time.Microsecond, ""))
	if _, ok := l.Get("both"); ok {
		t.Error("entry evicted from both sets still addressable")
	}
	if _, ok := l.Get("s2"); !ok {
		t.Error("slow entry lost")
	}
}

func TestTraceLogNilAndDisabled(t *testing.T) {
	if l := NewTraceLog(0); l != nil {
		t.Fatal("capacity 0 should disable the log (nil)")
	}
	var l *TraceLog
	l.Add(entry("x", 200, time.Second, "")) // must not panic
	if got := l.Entries(); got != nil {
		t.Errorf("nil log entries = %v", got)
	}
	if _, ok := l.Get("x"); ok {
		t.Error("nil log retained an entry")
	}
	if l.Cap() != 0 {
		t.Error("nil log capacity != 0")
	}
}

func TestTraceLogConcurrent(t *testing.T) {
	l := NewTraceLog(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				status := 200
				if i%7 == 0 {
					status = 500
				}
				l.Add(entry(fmt.Sprintf("g%d-%d", g, i), status, time.Duration(g*50+i)*time.Microsecond, ""))
				l.Entries()
				l.Get(fmt.Sprintf("g%d-%d", g, i/2))
			}
		}(g)
	}
	wg.Wait()
	got := l.Entries()
	if len(got) == 0 || len(got) > 16 {
		t.Fatalf("retained %d entries, want 1..16", len(got))
	}
	for _, e := range got {
		if _, ok := l.Get(e.ID); !ok {
			t.Errorf("listed entry %s not addressable", e.ID)
		}
	}
}
