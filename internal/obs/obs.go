// Package obs is the solver observability layer: a leveled structured
// logger (log/slog-backed), a concurrency-safe metrics registry with
// Prometheus-text and expvar output, and lightweight phase spans that
// nest into a per-run trace tree serializable to JSON.
//
// Everything is opt-in and nil-safe: a nil *Logger discards records, a
// nil *Trace makes spans no-ops, and a nil *Registry records nothing, so
// un-instrumented runs pay only a nil check on the hot path. Commands
// install process-wide defaults from their -v/-trace/-debug-addr flags
// (see CLI); library callers inject per-run sinks through
// core.Options.{Logger,Trace,Metrics,Progress}.
//
// The package depends only on the standard library and imports nothing
// from the rest of the repository, so any package (sparse kernels
// included) may report through it without layering cycles.
package obs

import (
	"sync/atomic"
	"time"
)

// Package-wide defaults, installed by CLI.Start (or tests) and picked up
// by solvers whose Options carry no explicit sinks.
var (
	defaultLogger   atomic.Pointer[Logger]
	defaultTrace    atomic.Pointer[Trace]
	defaultRegistry atomic.Pointer[Registry]
)

func init() {
	defaultRegistry.Store(NewRegistry())
}

// Default returns the process-wide logger, or nil when logging is off.
func Default() *Logger { return defaultLogger.Load() }

// SetDefault installs the process-wide logger; nil turns logging off.
func SetDefault(l *Logger) { defaultLogger.Store(l) }

// DefaultTrace returns the process-wide trace, or nil when tracing is off.
func DefaultTrace() *Trace { return defaultTrace.Load() }

// SetDefaultTrace installs the process-wide trace; nil turns tracing off.
func SetDefaultTrace(t *Trace) { defaultTrace.Store(t) }

// DefaultRegistry returns the process-wide metrics registry (never nil).
func DefaultRegistry() *Registry { return defaultRegistry.Load() }

// StartSpan opens a span on the process-wide trace; a no-op (returning a
// nil span whose methods are safe) when no default trace is installed.
func StartSpan(name string) *Span { return DefaultTrace().StartSpan(name) }

// Progress is one solver progress event: a KSI sweep finishing, a
// randomized-SVD Krylov block landing, and so on. Delivered to the
// Options.Progress hook when one is set.
type Progress struct {
	// Phase names the step kind: "ksi.sweep", "rsvd.block", ...
	Phase string
	// Step counts from 1; Total is the budget (0 when open-ended).
	Step, Total int
	// Residual is the phase's convergence measure, when it has one
	// (KSI subspace residual); 0 otherwise.
	Residual float64
	// Elapsed is the wall-clock duration of this step.
	Elapsed time.Duration
}

// Run bundles the observability sinks for one solver run. Any field may
// be nil (and a nil *Run is itself safe): each sink is consulted
// independently, so a caller can ask for a trace without logs, a
// progress callback without metrics, etc.
type Run struct {
	Log      *Logger
	Trace    *Trace
	Metrics  *Registry
	Progress func(Progress)
}

// Span opens a span on the run's trace (no-op when untraced).
func (r *Run) Span(name string) *Span {
	if r == nil {
		return nil
	}
	return r.Trace.StartSpan(name)
}

// Logger returns the run's logger, which may be nil (nil is safe to log to).
func (r *Run) Logger() *Logger {
	if r == nil {
		return nil
	}
	return r.Log
}

// Registry returns the run's metrics registry, which may be nil.
func (r *Run) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.Metrics
}

// Emit delivers a progress event to the run's hook, if any.
func (r *Run) Emit(ev Progress) {
	if r == nil || r.Progress == nil {
		return
	}
	r.Progress(ev)
}
