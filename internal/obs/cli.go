package obs

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
)

// CLI is the standard observability flag bundle shared by every command:
//
//	-v           info-level solver logging to stderr
//	-vv          debug-level logging (per-sweep telemetry; implies -v)
//	-trace FILE  write the run's JSON phase-trace tree to FILE on exit
//	-debug-addr  serve /metrics, /debug/vars and /debug/pprof on an address
type CLI struct {
	Verbose   bool
	Debug     bool
	TracePath string
	DebugAddr string
}

// RegisterFlags installs the observability flags on fs (typically
// flag.CommandLine) and returns the bundle to Start after fs is parsed.
func RegisterFlags(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	fs.BoolVar(&c.Verbose, "v", false, "info-level solver logging to stderr")
	fs.BoolVar(&c.Debug, "vv", false, "debug-level solver logging (per-sweep telemetry)")
	fs.StringVar(&c.TracePath, "trace", "", "write JSON phase-trace tree to this file")
	fs.StringVar(&c.DebugAddr, "debug-addr", "", "serve /metrics and /debug/pprof on this address (e.g. :8080 or :0)")
	return c
}

// Active reports whether any observability sink was requested.
func (c *CLI) Active() bool {
	return c.Verbose || c.Debug || c.TracePath != "" || c.DebugAddr != ""
}

// Start applies the parsed flags: installs the process-wide logger and
// trace and launches the debug server. The returned stop function
// flushes the trace file and must be called before the program exits
// successfully (a skipped stop only loses the trace file).
func (c *CLI) Start(component string) (stop func(), err error) {
	if c.Verbose || c.Debug {
		level := slog.LevelInfo
		if c.Debug {
			level = slog.LevelDebug
		}
		SetDefault(NewTextLogger(os.Stderr, level).With("component", component))
	}
	if c.DebugAddr != "" {
		addr, err := ServeDebug(c.DebugAddr, DefaultRegistry())
		if err != nil {
			return nil, fmt.Errorf("obs: debug server: %w", err)
		}
		fmt.Fprintf(os.Stderr, "%s: debug server on http://%s (metrics, expvar, pprof)\n", component, addr)
	}
	var tr *Trace
	if c.TracePath != "" {
		tr = NewTrace(component)
		SetDefaultTrace(tr)
	}
	return func() {
		if tr == nil {
			return
		}
		SetDefaultTrace(nil)
		if err := tr.WriteFile(c.TracePath); err != nil {
			fmt.Fprintf(os.Stderr, "%s: writing trace: %v\n", component, err)
			return
		}
		fmt.Fprintf(os.Stderr, "%s: wrote trace to %s\n", component, c.TracePath)
	}, nil
}
