package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// atomicFloat is a float64 updated with CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing metric.
type Counter struct{ v atomicFloat }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas are ignored (counters are
// monotone by contract).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	c.v.Add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomicFloat }

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.v.Add(v)
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into a fixed cumulative bucket layout
// (Prometheus semantics: bucket i counts observations ≤ Buckets[i], with
// an implicit +Inf bucket at the end).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomicFloat
	total  atomic.Uint64
}

// DefBuckets is a general-purpose layout for durations in seconds,
// spanning 100µs to ~2 minutes.
var DefBuckets = []float64{
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// FastBuckets is a layout for sub-millisecond spans — dense GEMM/QR
// calls at solver block shapes — spanning 1µs to 0.5s. DefBuckets starts
// at 100µs and would lump most such observations into its first bucket.
var FastBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5,
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket
// counts by linear interpolation inside the bucket the rank falls in —
// the same estimate Prometheus's histogram_quantile computes server-
// side. Observations beyond the last finite bound clamp to that bound.
// Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || len(h.bounds) == 0 {
		return 0
	}
	// Snapshot the counts once; concurrent Observe calls may skew the
	// estimate by a sample, which is fine for diagnostics.
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	// NaN slips through both ordered comparisons below and would poison
	// the rank arithmetic into a NaN estimate; treat it like an empty
	// histogram instead of propagating it into JSON output.
	if math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(h.bounds) {
			// +Inf bucket: the best available answer is the last bound.
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		return lo + (h.bounds[i]-lo)*(rank-(cum-float64(c)))/float64(c)
	}
	return h.bounds[len(h.bounds)-1]
}

// metric unifies the metric kinds for registry output.
type metric struct {
	help string
	c    *Counter
	g    *Gauge
	h    *Histogram
	gf   func() float64
}

// Registry is a concurrency-safe named collection of metrics. Metric
// handles are created once (get-or-create) and then updated lock-free
// with atomics; only registration and output take the lock.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Counter returns the named counter, creating it on first use. A name
// registered as a different kind returns a detached (but safe) handle.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	m := r.getOrCreate(name, help, func() *metric { return &metric{help: help, c: &Counter{}} })
	if m.c == nil {
		return &Counter{}
	}
	return m.c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.getOrCreate(name, help, func() *metric { return &metric{help: help, g: &Gauge{}} })
	if m.g == nil {
		return &Gauge{}
	}
	return m.g
}

// GaugeFunc registers a gauge whose value is computed by fn at
// collection time (WriteTo / Snapshot) instead of being pushed — the
// shape runtime statistics want, where the source of truth is the
// runtime itself and storing a copy would only let it go stale. fn must
// be safe for concurrent calls and must not touch the registry (it runs
// under the registry lock). Registering a name twice keeps the first
// function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.getOrCreate(name, help, func() *metric { return &metric{help: help, gf: fn} })
}

// Histogram returns the named histogram, creating it on first use with
// the given ascending bucket upper bounds (nil selects DefBuckets). The
// layout is fixed at creation; later calls reuse it.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	m := r.getOrCreate(name, help, func() *metric {
		b := buckets
		if len(b) == 0 {
			b = DefBuckets
		}
		bounds := append([]float64(nil), b...)
		return &metric{help: help, h: &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}}
	})
	if m.h == nil {
		return &Histogram{counts: make([]atomic.Uint64, 1)}
	}
	return m.h
}

// CounterVec is a family of counters distinguished by one label value —
// the per-strategy / per-kernel dispatch counters the SpMM engine emits.
// Each label lazily materializes a plain counter named
// "<base>_<label>_total", so the family needs no label support in the
// exposition formats. Handles are cached: With is lock-free after the
// first call for a given label.
type CounterVec struct {
	r          *Registry
	base, help string
	handles    sync.Map // label → *Counter
}

// CounterVec returns a counter family rooted at base (no "_total"
// suffix; With appends it after the label).
func (r *Registry) CounterVec(base, help string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{r: r, base: base, help: help}
}

// With returns the counter for the given label value, creating it on
// first use. Nil-safe: a nil family hands back a nil (no-op) counter.
func (v *CounterVec) With(label string) *Counter {
	if v == nil {
		return nil
	}
	if c, ok := v.handles.Load(label); ok {
		return c.(*Counter)
	}
	c := v.r.Counter(v.base+"_"+label+"_total", v.help+" ["+label+"]")
	actual, _ := v.handles.LoadOrStore(label, c)
	return actual.(*Counter)
}

func (r *Registry) getOrCreate(name, help string, mk func() *metric) *metric {
	r.mu.RLock()
	m := r.metrics[name]
	r.mu.RUnlock()
	if m != nil {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m = r.metrics[name]; m == nil {
		m = mk()
		r.metrics[name] = m
	}
	return m
}

// WriteTo renders the registry in the Prometheus text exposition format,
// metrics sorted by name.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	metrics := make([]*metric, len(names))
	for i, name := range names {
		metrics[i] = r.metrics[name]
	}
	r.mu.RUnlock()

	var n int64
	p := func(format string, args ...any) error {
		k, err := fmt.Fprintf(w, format, args...)
		n += int64(k)
		return err
	}
	for i, name := range names {
		m := metrics[i]
		if m.help != "" {
			if err := p("# HELP %s %s\n", name, m.help); err != nil {
				return n, err
			}
		}
		var err error
		switch {
		case m.c != nil:
			if err = p("# TYPE %s counter\n", name); err == nil {
				err = p("%s %v\n", name, m.c.Value())
			}
		case m.g != nil:
			if err = p("# TYPE %s gauge\n", name); err == nil {
				err = p("%s %v\n", name, m.g.Value())
			}
		case m.gf != nil:
			if err = p("# TYPE %s gauge\n", name); err == nil {
				err = p("%s %v\n", name, m.gf())
			}
		case m.h != nil:
			if err = p("# TYPE %s histogram\n", name); err != nil {
				return n, err
			}
			var cum uint64
			for bi, bound := range m.h.bounds {
				cum += m.h.counts[bi].Load()
				if err = p("%s_bucket{le=%q} %d\n", name, formatBound(bound), cum); err != nil {
					return n, err
				}
			}
			cum += m.h.counts[len(m.h.bounds)].Load()
			if err = p("%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
				return n, err
			}
			if err = p("%s_sum %v\n", name, m.h.Sum()); err != nil {
				return n, err
			}
			err = p("%s_count %d\n", name, m.h.Count())
		}
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}

// Snapshot returns a plain map view of the registry (histograms as
// {count, sum}), the form the expvar bridge publishes.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, m := range r.metrics {
		switch {
		case m.c != nil:
			out[name] = m.c.Value()
		case m.g != nil:
			out[name] = m.g.Value()
		case m.gf != nil:
			out[name] = m.gf()
		case m.h != nil:
			out[name] = map[string]any{"count": m.h.Count(), "sum": m.h.Sum()}
		}
	}
	return out
}

var expvarPublished sync.Map // name → struct{}

// PublishExpvar exposes the registry under the given expvar name
// (visible at /debug/vars). Idempotent per name.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	if _, loaded := expvarPublished.LoadOrStore(name, struct{}{}); loaded {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
