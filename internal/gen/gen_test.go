package gen

import (
	"testing"

	"gebe/internal/bigraph"
)

func TestERBasics(t *testing.T) {
	g, err := ER(50, 30, 200, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NU != 50 || g.NV != 30 || g.NumEdges() != 200 {
		t.Fatalf("shape: %v", g.Stats())
	}
	if g.Weighted {
		t.Error("unweighted ER flagged weighted")
	}
	// No duplicate edges.
	seen := map[int64]bool{}
	for _, e := range g.Edges {
		key := bigraph.PackEdge(e.U, e.V)
		if seen[key] {
			t.Fatalf("duplicate edge (%d,%d)", e.U, e.V)
		}
		seen[key] = true
	}
}

func TestERWeighted(t *testing.T) {
	g, err := ER(20, 20, 100, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	anyAbove1 := false
	for _, e := range g.Edges {
		if e.W < 1 || e.W > 5 {
			t.Fatalf("weight %v outside [1,5]", e.W)
		}
		if e.W > 1 {
			anyAbove1 = true
		}
	}
	if !anyAbove1 {
		t.Error("no weight above 1 in 100 draws is implausible")
	}
}

func TestERErrors(t *testing.T) {
	if _, err := ER(0, 5, 1, false, 1); err == nil {
		t.Error("accepted zero nodes")
	}
	if _, err := ER(2, 2, 5, false, 1); err == nil {
		t.Error("accepted more edges than the biclique holds")
	}
}

func TestERDeterministic(t *testing.T) {
	a, _ := ER(30, 30, 100, true, 42)
	b, _ := ER(30, 30, 100, true, 42)
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("ER not deterministic")
		}
	}
}

func TestLatentFactorBasics(t *testing.T) {
	g, err := LatentFactor(LFConfig{
		NU: 200, NV: 100, NE: 2000, Clusters: 5, Skew: 0.7,
		CrossRate: 0.2, Weighted: true, MinDegree: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NU != 200 || g.NV != 100 || g.NumEdges() != 2000 {
		t.Fatalf("shape: %v", g.Stats())
	}
	// Degree floor honored.
	for u, d := range g.UDegrees() {
		if d < 2 {
			t.Errorf("u%d degree %d < MinDegree", u, d)
		}
	}
	for v, d := range g.VDegrees() {
		if d < 2 {
			t.Errorf("v%d degree %d < MinDegree", v, d)
		}
	}
	if !g.Weighted {
		t.Error("weighted LF graph not flagged")
	}
}

func TestLatentFactorSkewedDegrees(t *testing.T) {
	g, err := LatentFactor(LFConfig{
		NU: 500, NV: 300, NE: 5000, Clusters: 8, Skew: 0.9,
		CrossRate: 0.2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := g.Stats()
	// A Zipf-skewed graph's max degree far exceeds its average.
	if float64(s.MaxUDeg) < 3*s.AvgUDeg {
		t.Errorf("degrees not skewed: max %d avg %.1f", s.MaxUDeg, s.AvgUDeg)
	}
}

func TestLatentFactorValidation(t *testing.T) {
	bad := []LFConfig{
		{NU: 0, NV: 10, NE: 10, Clusters: 2},
		{NU: 10, NV: 10, NE: 10, Clusters: 0},
		{NU: 10, NV: 10, NE: 10, Clusters: 2, CrossRate: 1.5},
		{NU: 10, NV: 10, NE: 10, Clusters: 2, MinDegree: 5},
	}
	for i, cfg := range bad {
		if _, err := LatentFactor(cfg); err == nil {
			t.Errorf("case %d: accepted invalid config %+v", i, cfg)
		}
	}
}

func TestDatasetsRegistry(t *testing.T) {
	ds := Datasets()
	if len(ds) != 10 {
		t.Fatalf("want 10 datasets, got %d", len(ds))
	}
	weighted, unweighted := 0, 0
	for _, d := range ds {
		if d.Weighted {
			weighted++
		} else {
			unweighted++
		}
		if d.NU <= 0 || d.NV <= 0 || d.NE <= 0 {
			t.Errorf("%s: bad sizes", d.Name)
		}
		if d.PaperNE <= d.NE {
			t.Errorf("%s: stand-in not smaller than the original", d.Name)
		}
	}
	if weighted != 5 || unweighted != 5 {
		t.Errorf("want 5 weighted + 5 unweighted, got %d + %d", weighted, unweighted)
	}
	if _, err := ByName("movielens"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
	if len(WeightedNames())+len(UnweightedNames()) != 10 {
		t.Error("task name lists incomplete")
	}
}

func TestDatasetBuildSmall(t *testing.T) {
	d, err := ByName("dblp")
	if err != nil {
		t.Fatal(err)
	}
	g, err := d.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NU != d.NU || g.NV != d.NV || g.NumEdges() != d.NE {
		t.Errorf("built %v, config %+v", g.Stats(), d)
	}
	if g.Weighted != d.Weighted {
		t.Error("weighted flag mismatch")
	}
	// Deterministic.
	g2, _ := d.Build(1)
	if g2.Edges[0] != g.Edges[0] || g2.Edges[len(g2.Edges)-1] != g.Edges[len(g.Edges)-1] {
		t.Error("Build not deterministic")
	}
	// Different seed differs.
	g3, _ := d.Build(2)
	if g3.Edges[0] == g.Edges[0] && g3.Edges[1] == g.Edges[1] && g3.Edges[2] == g.Edges[2] {
		t.Error("different seeds produced the same graph")
	}
}
