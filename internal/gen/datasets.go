package gen

import (
	"fmt"

	"gebe/internal/bigraph"
)

// Dataset describes one of the ten stand-ins for the paper's real
// datasets (Table 3). Sizes are scaled down ~3×–10000× so the whole
// benchmark suite runs on a single core in minutes; |U|:|V| ratio, weightedness, and
// degree skew follow the originals. See DESIGN.md §3 for the
// substitution rationale.
type Dataset struct {
	// Name matches the paper's dataset name, lower-cased.
	Name string
	// Weighted mirrors the original's type column; per the paper's
	// protocol, weighted graphs are used for top-N recommendation and
	// unweighted ones for link prediction.
	Weighted bool
	// CoreK is the k-core applied before recommendation experiments. The
	// paper uses the 10-core; stand-ins whose (scaled) average degree
	// cannot support a 10-core use a proportionally smaller core.
	CoreK int
	// NU, NV, NE are the generated sizes.
	NU, NV, NE int
	// Clusters/Skew/CrossRate parameterize the latent-factor generator.
	Clusters  int
	Skew      float64
	CrossRate float64
	// PaperNU, PaperNV, PaperNE record the original sizes from Table 3.
	PaperNU, PaperNV, PaperNE int
}

// Build generates the stand-in graph deterministically from the seed.
func (d Dataset) Build(seed uint64) (*bigraph.Graph, error) {
	g, err := LatentFactor(LFConfig{
		NU: d.NU, NV: d.NV, NE: d.NE,
		Clusters: d.Clusters, Skew: d.Skew, CrossRate: d.CrossRate,
		Weighted: d.Weighted, MinDegree: 2, Seed: seed ^ hashName(d.Name),
	})
	if err != nil {
		return nil, fmt.Errorf("gen: building %s: %w", d.Name, err)
	}
	return g, nil
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Datasets returns the ten stand-ins in the order of the paper's Table 3.
func Datasets() []Dataset {
	return []Dataset{
		{Name: "dblp", Weighted: true, CoreK: 3,
			NU: 1500, NV: 400, NE: 9000, Clusters: 20, Skew: 0.7, CrossRate: 0.2,
			PaperNU: 6001, PaperNV: 1308, PaperNE: 29256},
		{Name: "wikipedia", Weighted: false, CoreK: 3,
			NU: 3000, NV: 700, NE: 13000, Clusters: 25, Skew: 0.8, CrossRate: 0.2,
			PaperNU: 15000, PaperNV: 3214, PaperNE: 64095},
		{Name: "pinterest", Weighted: false, CoreK: 5,
			NU: 4000, NV: 720, NE: 40000, Clusters: 30, Skew: 0.7, CrossRate: 0.25,
			PaperNU: 55187, PaperNV: 9916, PaperNE: 1500809},
		{Name: "yelp", Weighted: false, CoreK: 5,
			NU: 2300, NV: 2700, NE: 40000, Clusters: 30, Skew: 0.7, CrossRate: 0.25,
			PaperNU: 31668, PaperNV: 38048, PaperNE: 1561406},
		{Name: "movielens", Weighted: true, CoreK: 10,
			NU: 2500, NV: 400, NE: 50000, Clusters: 18, Skew: 0.6, CrossRate: 0.25,
			PaperNU: 69878, PaperNV: 10677, PaperNE: 10000054},
		{Name: "lastfm", Weighted: true, CoreK: 5,
			NU: 4500, NV: 2000, NE: 60000, Clusters: 35, Skew: 0.8, CrossRate: 0.2,
			PaperNU: 359349, PaperNV: 160168, PaperNE: 17559530},
		{Name: "mind", Weighted: false, CoreK: 5,
			NU: 5400, NV: 600, NE: 60000, Clusters: 25, Skew: 0.75, CrossRate: 0.25,
			PaperNU: 876956, PaperNV: 97509, PaperNE: 18149915},
		{Name: "netflix", Weighted: true, CoreK: 10,
			NU: 2400, NV: 90, NE: 55000, Clusters: 12, Skew: 0.6, CrossRate: 0.25,
			PaperNU: 480189, PaperNV: 17770, PaperNE: 100480507},
		{Name: "orkut", Weighted: false, CoreK: 3,
			NU: 5500, NV: 17500, NE: 85000, Clusters: 40, Skew: 0.8, CrossRate: 0.2,
			PaperNU: 2783196, PaperNV: 8730857, PaperNE: 327037487},
		{Name: "mag", Weighted: true, CoreK: 5,
			NU: 9500, NV: 2500, NE: 110000, Clusters: 40, Skew: 0.85, CrossRate: 0.2,
			PaperNU: 10541560, PaperNV: 2784240, PaperNE: 1095315106},
	}
}

// ByName looks up a stand-in dataset by its paper name.
func ByName(name string) (Dataset, error) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("gen: unknown dataset %q", name)
}

// WeightedNames returns the five weighted stand-ins (top-N task).
func WeightedNames() []string {
	return []string{"dblp", "movielens", "lastfm", "netflix", "mag"}
}

// UnweightedNames returns the five unweighted stand-ins (link prediction).
func UnweightedNames() []string {
	return []string{"wikipedia", "pinterest", "yelp", "mind", "orkut"}
}
