// Package gen synthesizes bipartite graphs: the Erdős–Rényi model the
// paper's scalability tests use (§6.2), and a skewed latent-factor model
// that stands in for the paper's ten real datasets (see DESIGN.md §3).
package gen

import (
	"fmt"
	"math/rand/v2"

	"gebe/internal/bigraph"
	"gebe/internal/sampling"
)

func newRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x243f6a8885a308d3))
}

// ER generates a bipartite Erdős–Rényi graph with exactly ne distinct
// edges sampled uniformly from U×V. Weighted graphs draw weights
// uniformly from {1,…,5}.
func ER(nu, nv, ne int, weighted bool, seed uint64) (*bigraph.Graph, error) {
	if nu <= 0 || nv <= 0 {
		return nil, fmt.Errorf("gen: ER needs positive node counts, got %d,%d", nu, nv)
	}
	maxEdges := nu * nv
	if ne > maxEdges {
		return nil, fmt.Errorf("gen: ER cannot place %d edges in a %dx%d biclique", ne, nu, nv)
	}
	rng := newRand(seed)
	seen := make(map[int64]bool, ne)
	edges := make([]bigraph.Edge, 0, ne)
	for len(edges) < ne {
		u, v := rng.IntN(nu), rng.IntN(nv)
		key := bigraph.PackEdge(u, v)
		if seen[key] {
			continue
		}
		seen[key] = true
		w := 1.0
		if weighted {
			w = float64(1 + rng.IntN(5))
		}
		edges = append(edges, bigraph.Edge{U: u, V: v, W: w})
	}
	return bigraph.New(nu, nv, edges)
}

// LFConfig configures the latent-factor generator.
type LFConfig struct {
	// NU, NV, NE are the target node and edge counts.
	NU, NV, NE int
	// Clusters is the number of latent communities shared by both sides.
	Clusters int
	// Skew is the Zipf exponent of the degree distribution (0.6–1.0 covers
	// the shapes of the paper's datasets).
	Skew float64
	// CrossRate is the probability that an edge ignores the cluster
	// structure entirely (noise); 0.1–0.3 keeps the structure learnable
	// without making it trivial.
	CrossRate float64
	// Weighted draws rating-like weights correlated with cluster affinity
	// instead of all-ones.
	Weighted bool
	// MinDegree guarantees every node at least this many incident edges
	// before random sampling fills the rest (keeps k-core filtering from
	// emptying small stand-ins).
	MinDegree int
	// Seed drives all randomness.
	Seed uint64
}

func (c LFConfig) validate() error {
	if c.NU <= 0 || c.NV <= 0 || c.NE <= 0 {
		return fmt.Errorf("gen: LF needs positive sizes, got U=%d V=%d E=%d", c.NU, c.NV, c.NE)
	}
	if c.Clusters <= 0 {
		return fmt.Errorf("gen: LF needs at least one cluster, got %d", c.Clusters)
	}
	if c.CrossRate < 0 || c.CrossRate > 1 {
		return fmt.Errorf("gen: CrossRate %g outside [0,1]", c.CrossRate)
	}
	if c.MinDegree*c.NU > c.NE || c.MinDegree*c.NV > c.NE {
		return fmt.Errorf("gen: MinDegree %d infeasible with %d edges", c.MinDegree, c.NE)
	}
	return nil
}

// LatentFactor generates a bipartite graph from a planted community
// model with Zipf-skewed degrees: each node belongs to one of Clusters
// communities; edges prefer same-community endpoints; node selection is
// proportional to a Zipf weight, giving the long-tail degree shape of
// real bipartite graphs. The planted structure is what makes multi-hop
// embedding methods meaningfully better than degree heuristics on the
// stand-in datasets, mirroring the role the real datasets play in the
// paper's evaluation.
func LatentFactor(cfg LFConfig) (*bigraph.Graph, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := newRand(cfg.Seed)
	uCluster := make([]int, cfg.NU)
	vCluster := make([]int, cfg.NV)
	for i := range uCluster {
		uCluster[i] = rng.IntN(cfg.Clusters)
	}
	for i := range vCluster {
		vCluster[i] = rng.IntN(cfg.Clusters)
	}
	// Zipf weights assigned to a random permutation of nodes so hub
	// position is independent of cluster id.
	uw := permuted(sampling.ZipfWeights(cfg.NU, cfg.Skew), rng)
	vw := permuted(sampling.ZipfWeights(cfg.NV, cfg.Skew), rng)
	uAlias := sampling.MustAlias(uw)
	// Per-cluster alias tables over V, plus a global one for noise edges.
	vGlobal := sampling.MustAlias(vw)
	vByCluster := make([]*sampling.Alias, cfg.Clusters)
	for c := 0; c < cfg.Clusters; c++ {
		w := make([]float64, cfg.NV)
		any := false
		for v := 0; v < cfg.NV; v++ {
			if vCluster[v] == c {
				w[v] = vw[v]
				any = true
			}
		}
		if !any {
			vByCluster[c] = vGlobal
			continue
		}
		vByCluster[c] = sampling.MustAlias(w)
	}

	seen := make(map[int64]bool, cfg.NE)
	edges := make([]bigraph.Edge, 0, cfg.NE)
	addEdge := func(u, v int) bool {
		key := bigraph.PackEdge(u, v)
		if seen[key] {
			return false
		}
		seen[key] = true
		w := 1.0
		if cfg.Weighted {
			// Rating-like: same-cluster interactions rate higher on average.
			if uCluster[u] == vCluster[v] {
				w = float64(3 + rng.IntN(3)) // 3..5
			} else {
				w = float64(1 + rng.IntN(3)) // 1..3
			}
		}
		edges = append(edges, bigraph.Edge{U: u, V: v, W: w})
		return true
	}

	// Degree floor: give every node MinDegree stubs first.
	for d := 0; d < cfg.MinDegree; d++ {
		for u := 0; u < cfg.NU; u++ {
			for tries := 0; tries < 50; tries++ {
				v := vByCluster[uCluster[u]].Sample(rng)
				if addEdge(u, v) {
					break
				}
			}
		}
		for v := 0; v < cfg.NV; v++ {
			for tries := 0; tries < 50; tries++ {
				u := uAlias.Sample(rng)
				if uCluster[u] == vCluster[v] || rng.Float64() < cfg.CrossRate {
					if addEdge(u, v) {
						break
					}
				}
			}
		}
	}
	// Preferential sampling for the remainder.
	for len(edges) < cfg.NE {
		u := uAlias.Sample(rng)
		var v int
		if rng.Float64() < cfg.CrossRate {
			v = vGlobal.Sample(rng)
		} else {
			v = vByCluster[uCluster[u]].Sample(rng)
		}
		addEdge(u, v)
	}
	return bigraph.New(cfg.NU, cfg.NV, edges)
}

func permuted(w []float64, rng *rand.Rand) []float64 {
	out := make([]float64, len(w))
	for i, p := range rng.Perm(len(w)) {
		out[i] = w[p]
	}
	return out
}
