package simd

import (
	"math"
	"math/rand"
	"testing"
)

// The assembly contract is bitwise: every base primitive must reproduce
// its reference implementation exactly (the references compile to the
// same scalar multiply-add sequence as the engine kernels). The *FMA
// twins must reproduce the math.FMA references exactly — on arm64 both
// checks collapse into one because the flavors alias.

func fill(r *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = r.NormFloat64()
	}
	return s
}

func randIdx(r *rand.Rand, n, rows int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = r.Intn(rows)
	}
	return idx
}

func sameBits(a, b []float64) bool {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestGatherSaxpyBitwise(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, stride := range []int{8, 16, 24, 40} {
		for _, nnz := range []int{0, 1, 3, 17, 256} {
			val := fill(r, nnz)
			idx := randIdx(r, nnz, 50)
			b := fill(r, 50*stride)
			if stride >= 8 {
				var got, want [8]float64
				copy(got[:], fill(r, 8))
				want = got
				GatherSaxpy8(val, idx, b, stride, &got)
				refGatherSaxpy8(val, idx, b, stride, &want)
				if !sameBits(got[:], want[:]) {
					t.Fatalf("GatherSaxpy8 stride=%d nnz=%d: %v != %v", stride, nnz, got, want)
				}
				GatherSaxpy8FMA(val, idx, b, stride, &got)
				refGatherSaxpy8FMA(val, idx, b, stride, &want)
				if !sameBits(got[:], want[:]) {
					t.Fatalf("GatherSaxpy8FMA stride=%d nnz=%d: %v != %v", stride, nnz, got, want)
				}
			}
			if stride >= 16 {
				var got, want [16]float64
				copy(got[:], fill(r, 16))
				want = got
				GatherSaxpy16(val, idx, b, stride, &got)
				refGatherSaxpy16(val, idx, b, stride, &want)
				if !sameBits(got[:], want[:]) {
					t.Fatalf("GatherSaxpy16 stride=%d nnz=%d: %v != %v", stride, nnz, got, want)
				}
				GatherSaxpy16FMA(val, idx, b, stride, &got)
				refGatherSaxpy16FMA(val, idx, b, stride, &want)
				if !sameBits(got[:], want[:]) {
					t.Fatalf("GatherSaxpy16FMA stride=%d nnz=%d: %v != %v", stride, nnz, got, want)
				}
			}
		}
	}
}

func TestScatterSaxpyBitwise(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, stride := range []int{8, 16, 24} {
		for _, nnz := range []int{0, 1, 5, 33} {
			val := fill(r, nnz)
			// Distinct indices: duplicate rows would still be bitwise
			// deterministic (ascending p), but distinct rows also let us
			// compare against an independently seeded copy.
			idx := r.Perm(40)[:nnz]
			if stride >= 8 {
				var brow [8]float64
				copy(brow[:], fill(r, 8))
				got := fill(r, 40*stride)
				want := append([]float64(nil), got...)
				ScatterSaxpy8(val, idx, &brow, got, stride)
				refScatterSaxpy8(val, idx, &brow, want, stride)
				if !sameBits(got, want) {
					t.Fatalf("ScatterSaxpy8 stride=%d nnz=%d diverged", stride, nnz)
				}
				ScatterSaxpy8FMA(val, idx, &brow, got, stride)
				refScatterSaxpy8FMA(val, idx, &brow, want, stride)
				if !sameBits(got, want) {
					t.Fatalf("ScatterSaxpy8FMA stride=%d nnz=%d diverged", stride, nnz)
				}
			}
			if stride >= 16 {
				var brow [16]float64
				copy(brow[:], fill(r, 16))
				got := fill(r, 40*stride)
				want := append([]float64(nil), got...)
				ScatterSaxpy16(val, idx, &brow, got, stride)
				refScatterSaxpy16(val, idx, &brow, want, stride)
				if !sameBits(got, want) {
					t.Fatalf("ScatterSaxpy16 stride=%d nnz=%d diverged", stride, nnz)
				}
				ScatterSaxpy16FMA(val, idx, &brow, got, stride)
				refScatterSaxpy16FMA(val, idx, &brow, want, stride)
				if !sameBits(got, want) {
					t.Fatalf("ScatterSaxpy16FMA stride=%d nnz=%d diverged", stride, nnz)
				}
			}
		}
	}
}

func TestSaxpyRowsBitwise(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for _, stride := range []int{8, 16, 32} {
		for _, n := range []int{0, 1, 2, 9, 100} {
			a := fill(r, n)
			b := fill(r, n*stride)
			if stride >= 8 {
				var got, want [8]float64
				copy(got[:], fill(r, 8))
				want = got
				SaxpyRows8(a, b, stride, &got)
				refSaxpyRows8(a, b, stride, &want)
				if !sameBits(got[:], want[:]) {
					t.Fatalf("SaxpyRows8 stride=%d n=%d: %v != %v", stride, n, got, want)
				}
				SaxpyRows8FMA(a, b, stride, &got)
				refSaxpyRows8FMA(a, b, stride, &want)
				if !sameBits(got[:], want[:]) {
					t.Fatalf("SaxpyRows8FMA stride=%d n=%d: %v != %v", stride, n, got, want)
				}
			}
			if stride >= 16 {
				var got, want [16]float64
				copy(got[:], fill(r, 16))
				want = got
				SaxpyRows16(a, b, stride, &got)
				refSaxpyRows16(a, b, stride, &want)
				if !sameBits(got[:], want[:]) {
					t.Fatalf("SaxpyRows16 stride=%d n=%d: %v != %v", stride, n, got, want)
				}
				SaxpyRows16FMA(a, b, stride, &got)
				refSaxpyRows16FMA(a, b, stride, &want)
				if !sameBits(got[:], want[:]) {
					t.Fatalf("SaxpyRows16FMA stride=%d n=%d: %v != %v", stride, n, got, want)
				}
			}
		}
	}
}

func TestDotCols4Bitwise(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for _, n := range []int{0, 1, 2, 7, 64, 129} {
		stride := n
		if stride == 0 {
			stride = 1
		}
		a := fill(r, n)
		b := fill(r, 4*stride)
		var got, want [4]float64
		DotCols4(a, b, stride, &got)
		refDotCols4(a, b, stride, &want)
		if !sameBits(got[:], want[:]) {
			t.Fatalf("DotCols4 n=%d: %v != %v", n, got, want)
		}
		DotCols4FMA(a, b, stride, &got)
		refDotCols4FMA(a, b, stride, &want)
		if !sameBits(got[:], want[:]) {
			t.Fatalf("DotCols4FMA n=%d: %v != %v", n, got, want)
		}
	}
}

func TestTile2x4Bitwise(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	for _, n := range []int{0, 1, 3, 50} {
		for _, k1 := range []int{2, 5} {
			for _, k2 := range []int{4, 9} {
				a := fill(r, max(n*k1, 1))
				b := fill(r, max(n*k2, 1))
				var got, want [8]float64
				copy(got[:], fill(r, 8))
				want = got
				Tile2x4(a, b, k1, k2, n, &got)
				refTile2x4(a, b, k1, k2, n, &want)
				if !sameBits(got[:], want[:]) {
					t.Fatalf("Tile2x4 n=%d k1=%d k2=%d: %v != %v", n, k1, k2, got, want)
				}
				Tile2x4FMA(a, b, k1, k2, n, &got)
				refTile2x4FMA(a, b, k1, k2, n, &want)
				if !sameBits(got[:], want[:]) {
					t.Fatalf("Tile2x4FMA n=%d k1=%d k2=%d: %v != %v", n, k1, k2, got, want)
				}
			}
		}
	}
}

// Benchmarks: ref vs asm for the widest shapes, to size the speedup the
// engine-level flavors can deliver.

func benchGather16(b *testing.B, f func([]float64, []int, []float64, int, *[16]float64)) {
	r := rand.New(rand.NewSource(23))
	const nnz, rows, stride = 64, 4096, 16
	val := fill(r, nnz)
	idx := randIdx(r, nnz, rows)
	mat := fill(r, rows*stride)
	var acc [16]float64
	b.SetBytes(int64(nnz * stride * 8))
	for i := 0; i < b.N; i++ {
		f(val, idx, mat, stride, &acc)
	}
}

func BenchmarkGather16Ref(b *testing.B)  { benchGather16(b, refGatherSaxpy16) }
func BenchmarkGather16SIMD(b *testing.B) { benchGather16(b, GatherSaxpy16) }
func BenchmarkGather16FMA(b *testing.B)  { benchGather16(b, GatherSaxpy16FMA) }

func benchRows16(b *testing.B, f func([]float64, []float64, int, *[16]float64)) {
	r := rand.New(rand.NewSource(29))
	const n, stride = 512, 16
	a := fill(r, n)
	mat := fill(r, n*stride)
	var acc [16]float64
	b.SetBytes(int64(n * stride * 8))
	for i := 0; i < b.N; i++ {
		f(a, mat, stride, &acc)
	}
}

func BenchmarkRows16Ref(b *testing.B)  { benchRows16(b, refSaxpyRows16) }
func BenchmarkRows16SIMD(b *testing.B) { benchRows16(b, SaxpyRows16) }
func BenchmarkRows16FMA(b *testing.B)  { benchRows16(b, SaxpyRows16FMA) }

func benchTile(b *testing.B, f func([]float64, []float64, int, int, int, *[8]float64)) {
	r := rand.New(rand.NewSource(31))
	const n, k1, k2 = 512, 8, 8
	a := fill(r, n*k1)
	mat := fill(r, n*k2)
	var acc [8]float64
	b.SetBytes(int64(n * 8 * 8))
	for i := 0; i < b.N; i++ {
		f(a, mat, k1, k2, n, &acc)
	}
}

func BenchmarkTile2x4Ref(b *testing.B)  { benchTile(b, refTile2x4) }
func BenchmarkTile2x4SIMD(b *testing.B) { benchTile(b, Tile2x4) }

func benchDot4(b *testing.B, f func([]float64, []float64, int, *[4]float64)) {
	r := rand.New(rand.NewSource(37))
	const n = 512
	a := fill(r, n)
	mat := fill(r, 4*n)
	var out [4]float64
	b.SetBytes(int64(n * 4 * 8))
	for i := 0; i < b.N; i++ {
		f(a, mat, n, &out)
	}
}

func BenchmarkDotCols4Ref(b *testing.B)  { benchDot4(b, refDotCols4) }
func BenchmarkDotCols4SIMD(b *testing.B) { benchDot4(b, DotCols4) }
