// Package simd holds the hand-written vector primitives the sparse and
// dense engines build their SIMD kernel flavors from: AVX2 (+FMA) on
// amd64, NEON on arm64, and pure-Go fallbacks under the purego build
// tag or on any other architecture. Keeping the assembly here — one
// place per architecture — means the engines register vectorized
// kernels through plain Go wrappers and never carry .s files of their
// own.
//
// Every primitive vectorizes across OUTPUT elements only: each output
// element still accumulates its terms one at a time, in the same
// ascending order as the scalar Go kernels. That is what makes the
// non-fused flavor bitwise-identical to the Go oracle (a VMULPD+VADDPD
// pair rounds exactly like MULSD+ADDSD per lane), and it is why there
// is no vectorized dot product over the reduction dimension — splitting
// a single accumulator across lanes would reorder the sum.
//
// Flavors per architecture:
//
//   - amd64: the base names use non-fused multiply-then-add and match
//     the scalar kernels bit for bit; the *FMA twins contract each
//     multiply-add into one rounding (VFMADD231PD) and are gated by a
//     relative-error tolerance instead.
//   - arm64: the Go compiler already fuses a*b+c into FMADDD in the
//     scalar kernels, so the NEON primitives fuse too (FMLA), remain
//     bitwise-identical to the Go oracle, and the *FMA names are
//     aliases of the base ones.
//
// Bounds contract: the assembly performs no bounds checks. Callers
// guarantee len(idx) == len(val), every idx[p]*stride (or l*stride)
// block has the full vector width available in b/out, and n >= 0.
// The Go wrappers in internal/sparse and internal/dense derive those
// guarantees from the CSR/Matrix invariants they already hold.
package simd
