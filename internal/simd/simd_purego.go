//go:build purego || (!amd64 && !arm64)

package simd

// The purego build (and architectures without assembly) gets the
// reference implementations under the exported names. HasSIMD/HasFMA
// report false, so nothing ever registers these with the dispatch
// tables — they exist so engine wrapper code compiles identically on
// every build.

// HasSIMD reports false: this build carries no vector kernels.
func HasSIMD() bool { return false }

// HasFMA reports false: this build carries no fused kernels.
func HasFMA() bool { return false }

// SIMDName is the instruction-set suffix kernel names would carry.
func SIMDName() string { return "purego" }

// FMAName is the suffix of the fused flavor.
func FMAName() string { return "purego" }

func GatherSaxpy8(val []float64, idx []int, b []float64, stride int, acc *[8]float64) {
	refGatherSaxpy8(val, idx, b, stride, acc)
}

func GatherSaxpy16(val []float64, idx []int, b []float64, stride int, acc *[16]float64) {
	refGatherSaxpy16(val, idx, b, stride, acc)
}

func ScatterSaxpy8(val []float64, idx []int, brow *[8]float64, out []float64, stride int) {
	refScatterSaxpy8(val, idx, brow, out, stride)
}

func ScatterSaxpy16(val []float64, idx []int, brow *[16]float64, out []float64, stride int) {
	refScatterSaxpy16(val, idx, brow, out, stride)
}

func SaxpyRows8(a []float64, b []float64, stride int, acc *[8]float64) {
	refSaxpyRows8(a, b, stride, acc)
}

func SaxpyRows16(a []float64, b []float64, stride int, acc *[16]float64) {
	refSaxpyRows16(a, b, stride, acc)
}

func DotCols4(a []float64, b []float64, stride int, out *[4]float64) {
	refDotCols4(a, b, stride, out)
}

func Tile2x4(a, b []float64, k1, k2, n int, acc *[8]float64) {
	refTile2x4(a, b, k1, k2, n, acc)
}

func GatherSaxpy8FMA(val []float64, idx []int, b []float64, stride int, acc *[8]float64) {
	refGatherSaxpy8FMA(val, idx, b, stride, acc)
}

func GatherSaxpy16FMA(val []float64, idx []int, b []float64, stride int, acc *[16]float64) {
	refGatherSaxpy16FMA(val, idx, b, stride, acc)
}

func ScatterSaxpy8FMA(val []float64, idx []int, brow *[8]float64, out []float64, stride int) {
	refScatterSaxpy8FMA(val, idx, brow, out, stride)
}

func ScatterSaxpy16FMA(val []float64, idx []int, brow *[16]float64, out []float64, stride int) {
	refScatterSaxpy16FMA(val, idx, brow, out, stride)
}

func SaxpyRows8FMA(a []float64, b []float64, stride int, acc *[8]float64) {
	refSaxpyRows8FMA(a, b, stride, acc)
}

func SaxpyRows16FMA(a []float64, b []float64, stride int, acc *[16]float64) {
	refSaxpyRows16FMA(a, b, stride, acc)
}

func DotCols4FMA(a []float64, b []float64, stride int, out *[4]float64) {
	refDotCols4FMA(a, b, stride, out)
}

func Tile2x4FMA(a, b []float64, k1, k2, n int, acc *[8]float64) {
	refTile2x4FMA(a, b, k1, k2, n, acc)
}
