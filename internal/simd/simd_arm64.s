//go:build arm64 && !purego

#include "textflag.h"

// NEON primitives. Same register plan everywhere:
//
//   R0  value/row stream (val or a)     R1  trip count
//   R2  index stream (gather/scatter)   R6  loop counter
//   R3  matrix base (b or out)          R7  row index → byte offset
//   R4  stride in bytes                 R8  row address
//   R5  accumulator pointer
//
// Every multiply-add is a fused VFMLA: the Go compiler emits FMADDD for
// the scalar kernels on arm64, so fused NEON lanes round identically to
// the oracle and the base flavor is already the FMA flavor. The *FMA
// symbols at the bottom are tail-jump aliases.

// func GatherSaxpy8(val []float64, idx []int, b []float64, stride int, acc *[8]float64)
TEXT ·GatherSaxpy8(SB), NOSPLIT, $0-88
	MOVD val_base+0(FP), R0
	MOVD val_len+8(FP), R1
	MOVD idx_base+24(FP), R2
	MOVD b_base+48(FP), R3
	MOVD stride+72(FP), R4
	MOVD acc+80(FP), R5
	LSL  $3, R4
	VLD1 (R5), [V0.D2, V1.D2, V2.D2, V3.D2]
	MOVD $0, R6
g8loop:
	CMP  R1, R6
	BGE  g8done
	MOVD (R2)(R6<<3), R7
	MUL  R4, R7, R7
	ADD  R3, R7, R8
	FMOVD (R0)(R6<<3), F4
	VDUP V4.D[0], V4.D2
	VLD1 (R8), [V5.D2, V6.D2, V7.D2, V8.D2]
	VFMLA V5.D2, V4.D2, V0.D2
	VFMLA V6.D2, V4.D2, V1.D2
	VFMLA V7.D2, V4.D2, V2.D2
	VFMLA V8.D2, V4.D2, V3.D2
	ADD  $1, R6
	B    g8loop
g8done:
	VST1 [V0.D2, V1.D2, V2.D2, V3.D2], (R5)
	RET

// func GatherSaxpy16(val []float64, idx []int, b []float64, stride int, acc *[16]float64)
TEXT ·GatherSaxpy16(SB), NOSPLIT, $0-88
	MOVD val_base+0(FP), R0
	MOVD val_len+8(FP), R1
	MOVD idx_base+24(FP), R2
	MOVD b_base+48(FP), R3
	MOVD stride+72(FP), R4
	MOVD acc+80(FP), R5
	LSL  $3, R4
	ADD  $64, R5, R9
	VLD1 (R5), [V0.D2, V1.D2, V2.D2, V3.D2]
	VLD1 (R9), [V16.D2, V17.D2, V18.D2, V19.D2]
	MOVD $0, R6
g16loop:
	CMP  R1, R6
	BGE  g16done
	MOVD (R2)(R6<<3), R7
	MUL  R4, R7, R7
	ADD  R3, R7, R8
	FMOVD (R0)(R6<<3), F4
	VDUP V4.D[0], V4.D2
	VLD1.P 64(R8), [V8.D2, V9.D2, V10.D2, V11.D2]
	VLD1 (R8), [V12.D2, V13.D2, V14.D2, V15.D2]
	VFMLA V8.D2, V4.D2, V0.D2
	VFMLA V9.D2, V4.D2, V1.D2
	VFMLA V10.D2, V4.D2, V2.D2
	VFMLA V11.D2, V4.D2, V3.D2
	VFMLA V12.D2, V4.D2, V16.D2
	VFMLA V13.D2, V4.D2, V17.D2
	VFMLA V14.D2, V4.D2, V18.D2
	VFMLA V15.D2, V4.D2, V19.D2
	ADD  $1, R6
	B    g16loop
g16done:
	VST1 [V0.D2, V1.D2, V2.D2, V3.D2], (R5)
	VST1 [V16.D2, V17.D2, V18.D2, V19.D2], (R9)
	RET

// func ScatterSaxpy8(val []float64, idx []int, brow *[8]float64, out []float64, stride int)
TEXT ·ScatterSaxpy8(SB), NOSPLIT, $0-88
	MOVD val_base+0(FP), R0
	MOVD val_len+8(FP), R1
	MOVD idx_base+24(FP), R2
	MOVD brow+48(FP), R9
	MOVD out_base+56(FP), R3
	MOVD stride+80(FP), R4
	LSL  $3, R4
	VLD1 (R9), [V0.D2, V1.D2, V2.D2, V3.D2]
	MOVD $0, R6
s8loop:
	CMP  R1, R6
	BGE  s8done
	MOVD (R2)(R6<<3), R7
	MUL  R4, R7, R7
	ADD  R3, R7, R8
	FMOVD (R0)(R6<<3), F4
	VDUP V4.D[0], V4.D2
	VLD1 (R8), [V5.D2, V6.D2, V7.D2, V8.D2]
	VFMLA V0.D2, V4.D2, V5.D2
	VFMLA V1.D2, V4.D2, V6.D2
	VFMLA V2.D2, V4.D2, V7.D2
	VFMLA V3.D2, V4.D2, V8.D2
	VST1 [V5.D2, V6.D2, V7.D2, V8.D2], (R8)
	ADD  $1, R6
	B    s8loop
s8done:
	RET

// func ScatterSaxpy16(val []float64, idx []int, brow *[16]float64, out []float64, stride int)
TEXT ·ScatterSaxpy16(SB), NOSPLIT, $0-88
	MOVD val_base+0(FP), R0
	MOVD val_len+8(FP), R1
	MOVD idx_base+24(FP), R2
	MOVD brow+48(FP), R9
	MOVD out_base+56(FP), R3
	MOVD stride+80(FP), R4
	LSL  $3, R4
	ADD  $64, R9, R10
	VLD1 (R9), [V0.D2, V1.D2, V2.D2, V3.D2]
	VLD1 (R10), [V16.D2, V17.D2, V18.D2, V19.D2]
	MOVD $0, R6
s16loop:
	CMP  R1, R6
	BGE  s16done
	MOVD (R2)(R6<<3), R7
	MUL  R4, R7, R7
	ADD  R3, R7, R8
	FMOVD (R0)(R6<<3), F4
	VDUP V4.D[0], V4.D2
	MOVD R8, R11
	VLD1.P 64(R11), [V8.D2, V9.D2, V10.D2, V11.D2]
	VLD1 (R11), [V12.D2, V13.D2, V14.D2, V15.D2]
	VFMLA V0.D2, V4.D2, V8.D2
	VFMLA V1.D2, V4.D2, V9.D2
	VFMLA V2.D2, V4.D2, V10.D2
	VFMLA V3.D2, V4.D2, V11.D2
	VFMLA V16.D2, V4.D2, V12.D2
	VFMLA V17.D2, V4.D2, V13.D2
	VFMLA V18.D2, V4.D2, V14.D2
	VFMLA V19.D2, V4.D2, V15.D2
	VST1.P [V8.D2, V9.D2, V10.D2, V11.D2], 64(R8)
	VST1 [V12.D2, V13.D2, V14.D2, V15.D2], (R8)
	ADD  $1, R6
	B    s16loop
s16done:
	RET

// func SaxpyRows8(a []float64, b []float64, stride int, acc *[8]float64)
TEXT ·SaxpyRows8(SB), NOSPLIT, $0-64
	MOVD a_base+0(FP), R0
	MOVD a_len+8(FP), R1
	MOVD b_base+24(FP), R3
	MOVD stride+48(FP), R4
	MOVD acc+56(FP), R5
	LSL  $3, R4
	VLD1 (R5), [V0.D2, V1.D2, V2.D2, V3.D2]
	MOVD $0, R6
r8loop:
	CMP  R1, R6
	BGE  r8done
	FMOVD (R0)(R6<<3), F4
	VDUP V4.D[0], V4.D2
	VLD1 (R3), [V5.D2, V6.D2, V7.D2, V8.D2]
	VFMLA V5.D2, V4.D2, V0.D2
	VFMLA V6.D2, V4.D2, V1.D2
	VFMLA V7.D2, V4.D2, V2.D2
	VFMLA V8.D2, V4.D2, V3.D2
	ADD  R4, R3
	ADD  $1, R6
	B    r8loop
r8done:
	VST1 [V0.D2, V1.D2, V2.D2, V3.D2], (R5)
	RET

// func SaxpyRows16(a []float64, b []float64, stride int, acc *[16]float64)
TEXT ·SaxpyRows16(SB), NOSPLIT, $0-64
	MOVD a_base+0(FP), R0
	MOVD a_len+8(FP), R1
	MOVD b_base+24(FP), R3
	MOVD stride+48(FP), R4
	MOVD acc+56(FP), R5
	LSL  $3, R4
	ADD  $64, R5, R9
	VLD1 (R5), [V0.D2, V1.D2, V2.D2, V3.D2]
	VLD1 (R9), [V16.D2, V17.D2, V18.D2, V19.D2]
	MOVD $0, R6
r16loop:
	CMP  R1, R6
	BGE  r16done
	FMOVD (R0)(R6<<3), F4
	VDUP V4.D[0], V4.D2
	MOVD R3, R8
	VLD1.P 64(R8), [V8.D2, V9.D2, V10.D2, V11.D2]
	VLD1 (R8), [V12.D2, V13.D2, V14.D2, V15.D2]
	VFMLA V8.D2, V4.D2, V0.D2
	VFMLA V9.D2, V4.D2, V1.D2
	VFMLA V10.D2, V4.D2, V2.D2
	VFMLA V11.D2, V4.D2, V3.D2
	VFMLA V12.D2, V4.D2, V16.D2
	VFMLA V13.D2, V4.D2, V17.D2
	VFMLA V14.D2, V4.D2, V18.D2
	VFMLA V15.D2, V4.D2, V19.D2
	ADD  R4, R3
	ADD  $1, R6
	B    r16loop
r16done:
	VST1 [V0.D2, V1.D2, V2.D2, V3.D2], (R5)
	VST1 [V16.D2, V17.D2, V18.D2, V19.D2], (R9)
	RET

// func DotCols4(a []float64, b []float64, stride int, out *[4]float64)
//
// Lanes of V0/V1 are output columns 0..3; the four strided b values are
// packed per element with FMOVD + lane inserts, so each lane still sums
// in ascending l order.
TEXT ·DotCols4(SB), NOSPLIT, $0-64
	MOVD a_base+0(FP), R0
	MOVD a_len+8(FP), R1
	MOVD b_base+24(FP), R3
	MOVD stride+48(FP), R4
	MOVD out+56(FP), R5
	LSL  $3, R4
	MOVD R3, R8
	ADD  R4, R8, R9
	ADD  R4, R9, R10
	ADD  R4, R10, R11
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	MOVD $0, R6
d4loop:
	CMP  R1, R6
	BGE  d4done
	FMOVD (R8)(R6<<3), F2
	FMOVD (R9)(R6<<3), F5
	VMOV V5.D[0], V2.D[1]
	FMOVD (R10)(R6<<3), F3
	FMOVD (R11)(R6<<3), F5
	VMOV V5.D[0], V3.D[1]
	FMOVD (R0)(R6<<3), F4
	VDUP V4.D[0], V4.D2
	VFMLA V2.D2, V4.D2, V0.D2
	VFMLA V3.D2, V4.D2, V1.D2
	ADD  $1, R6
	B    d4loop
d4done:
	VST1 [V0.D2, V1.D2], (R5)
	RET

// func Tile2x4(a, b []float64, k1, k2, n int, acc *[8]float64)
TEXT ·Tile2x4(SB), NOSPLIT, $0-80
	MOVD a_base+0(FP), R0
	MOVD b_base+24(FP), R3
	MOVD k1+48(FP), R4
	MOVD k2+56(FP), R5
	MOVD n+64(FP), R1
	MOVD acc+72(FP), R10
	LSL  $3, R4
	LSL  $3, R5
	VLD1 (R10), [V0.D2, V1.D2, V2.D2, V3.D2]
	CMP  $0, R1
	BLE  t24done
t24loop:
	VLD1 (R3), [V4.D2, V5.D2]
	FMOVD (R0), F6
	VDUP V6.D[0], V6.D2
	FMOVD 8(R0), F7
	VDUP V7.D[0], V7.D2
	VFMLA V4.D2, V6.D2, V0.D2
	VFMLA V5.D2, V6.D2, V1.D2
	VFMLA V4.D2, V7.D2, V2.D2
	VFMLA V5.D2, V7.D2, V3.D2
	ADD  R4, R0
	ADD  R5, R3
	SUB  $1, R1
	CBNZ R1, t24loop
t24done:
	VST1 [V0.D2, V1.D2, V2.D2, V3.D2], (R10)
	RET

// FMLA is already fused — the *FMA flavor aliases the base symbols.

TEXT ·GatherSaxpy8FMA(SB), NOSPLIT, $0-88
	B ·GatherSaxpy8(SB)

TEXT ·GatherSaxpy16FMA(SB), NOSPLIT, $0-88
	B ·GatherSaxpy16(SB)

TEXT ·ScatterSaxpy8FMA(SB), NOSPLIT, $0-88
	B ·ScatterSaxpy8(SB)

TEXT ·ScatterSaxpy16FMA(SB), NOSPLIT, $0-88
	B ·ScatterSaxpy16(SB)

TEXT ·SaxpyRows8FMA(SB), NOSPLIT, $0-64
	B ·SaxpyRows8(SB)

TEXT ·SaxpyRows16FMA(SB), NOSPLIT, $0-64
	B ·SaxpyRows16(SB)

TEXT ·DotCols4FMA(SB), NOSPLIT, $0-64
	B ·DotCols4(SB)

TEXT ·Tile2x4FMA(SB), NOSPLIT, $0-80
	B ·Tile2x4(SB)
