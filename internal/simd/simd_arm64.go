//go:build arm64 && !purego

package simd

import "gebe/internal/cpu"

// HasSIMD reports whether the NEON primitives are usable.
func HasSIMD() bool { return cpu.Supported().NEON }

// HasFMA reports whether the fused primitives are usable. NEON FMLA is
// always fused, and the Go compiler fuses the scalar kernels on arm64
// too, so the fused flavor is the baseline here.
func HasFMA() bool { return cpu.Supported().NEON }

// SIMDName is the instruction-set suffix kernel names carry ("k16+neon").
func SIMDName() string { return "neon" }

// FMAName matches SIMDName: on arm64 the FMA flavor aliases the base
// one, so both report the same suffix.
func FMAName() string { return "neon" }

// GatherSaxpy8 computes acc[j] += val[p]·b[idx[p]·stride+j] for j<8,
// p ascending — one 8-wide sparse row accumulation.
//
//go:noescape
func GatherSaxpy8(val []float64, idx []int, b []float64, stride int, acc *[8]float64)

// GatherSaxpy16 is the 16-wide form of GatherSaxpy8.
//
//go:noescape
func GatherSaxpy16(val []float64, idx []int, b []float64, stride int, acc *[16]float64)

// ScatterSaxpy8 computes out[idx[p]·stride+j] += val[p]·brow[j] for
// j<8, p ascending — one 8-wide sparse row scatter.
//
//go:noescape
func ScatterSaxpy8(val []float64, idx []int, brow *[8]float64, out []float64, stride int)

// ScatterSaxpy16 is the 16-wide form of ScatterSaxpy8.
//
//go:noescape
func ScatterSaxpy16(val []float64, idx []int, brow *[16]float64, out []float64, stride int)

// SaxpyRows8 computes acc[j] += a[l]·b[l·stride+j] for j<8, l ascending
// — one 8-wide dense row accumulation.
//
//go:noescape
func SaxpyRows8(a []float64, b []float64, stride int, acc *[8]float64)

// SaxpyRows16 is the 16-wide form of SaxpyRows8.
//
//go:noescape
func SaxpyRows16(a []float64, b []float64, stride int, acc *[16]float64)

// DotCols4 computes out[j] = Σ_l a[l]·b[j·stride+l] for j<4, each sum
// accumulated in ascending l — four simultaneous dot products held in
// one register pair, one lane per output column.
//
//go:noescape
func DotCols4(a []float64, b []float64, stride int, out *[4]float64)

// Tile2x4 advances a 2×4 register tile over n input rows:
// acc[r·4+c] += a[l·k1+r]·b[l·k2+c] for r<2, c<4, l<n ascending.
//
//go:noescape
func Tile2x4(a, b []float64, k1, k2, n int, acc *[8]float64)

// The *FMA names alias the base primitives (tail-jump thunks in the
// assembly): FMLA is already fused, so there is no separate flavor.
//
//go:noescape
func GatherSaxpy8FMA(val []float64, idx []int, b []float64, stride int, acc *[8]float64)

//go:noescape
func GatherSaxpy16FMA(val []float64, idx []int, b []float64, stride int, acc *[16]float64)

//go:noescape
func ScatterSaxpy8FMA(val []float64, idx []int, brow *[8]float64, out []float64, stride int)

//go:noescape
func ScatterSaxpy16FMA(val []float64, idx []int, brow *[16]float64, out []float64, stride int)

//go:noescape
func SaxpyRows8FMA(a []float64, b []float64, stride int, acc *[8]float64)

//go:noescape
func SaxpyRows16FMA(a []float64, b []float64, stride int, acc *[16]float64)

//go:noescape
func DotCols4FMA(a []float64, b []float64, stride int, out *[4]float64)

//go:noescape
func Tile2x4FMA(a, b []float64, k1, k2, n int, acc *[8]float64)
