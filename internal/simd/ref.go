package simd

import "math"

// Reference implementations of every primitive, written exactly like the
// scalar engine kernels so the compiler applies the same multiply-add
// treatment per architecture (separate MULSD+ADDSD on amd64, fused
// FMADDD on arm64). They are the bodies of the purego build and the
// oracles the assembly is tested against.

func refGatherSaxpy8(val []float64, idx []int, b []float64, stride int, acc *[8]float64) {
	for p, v := range val {
		row := b[idx[p]*stride:]
		for j := 0; j < 8; j++ {
			acc[j] += v * row[j]
		}
	}
}

func refGatherSaxpy16(val []float64, idx []int, b []float64, stride int, acc *[16]float64) {
	for p, v := range val {
		row := b[idx[p]*stride:]
		for j := 0; j < 16; j++ {
			acc[j] += v * row[j]
		}
	}
}

func refScatterSaxpy8(val []float64, idx []int, brow *[8]float64, out []float64, stride int) {
	for p, v := range val {
		row := out[idx[p]*stride:]
		for j := 0; j < 8; j++ {
			row[j] += v * brow[j]
		}
	}
}

func refScatterSaxpy16(val []float64, idx []int, brow *[16]float64, out []float64, stride int) {
	for p, v := range val {
		row := out[idx[p]*stride:]
		for j := 0; j < 16; j++ {
			row[j] += v * brow[j]
		}
	}
}

func refSaxpyRows8(a []float64, b []float64, stride int, acc *[8]float64) {
	for l, av := range a {
		row := b[l*stride:]
		for j := 0; j < 8; j++ {
			acc[j] += av * row[j]
		}
	}
}

func refSaxpyRows16(a []float64, b []float64, stride int, acc *[16]float64) {
	for l, av := range a {
		row := b[l*stride:]
		for j := 0; j < 16; j++ {
			acc[j] += av * row[j]
		}
	}
}

func refDotCols4(a []float64, b []float64, stride int, out *[4]float64) {
	var s [4]float64
	for l, av := range a {
		for j := 0; j < 4; j++ {
			s[j] += av * b[j*stride+l]
		}
	}
	*out = s
}

func refTile2x4(a, b []float64, k1, k2, n int, acc *[8]float64) {
	for l := 0; l < n; l++ {
		a0, a1 := a[l*k1], a[l*k1+1]
		row := b[l*k2:]
		for c := 0; c < 4; c++ {
			acc[c] += a0 * row[c]
			acc[4+c] += a1 * row[c]
		}
	}
}

// Fused references: the same loops with each multiply-add contracted via
// math.FMA. On arm64 these match the base references bit for bit.

func refGatherSaxpy8FMA(val []float64, idx []int, b []float64, stride int, acc *[8]float64) {
	for p, v := range val {
		row := b[idx[p]*stride:]
		for j := 0; j < 8; j++ {
			acc[j] = math.FMA(v, row[j], acc[j])
		}
	}
}

func refGatherSaxpy16FMA(val []float64, idx []int, b []float64, stride int, acc *[16]float64) {
	for p, v := range val {
		row := b[idx[p]*stride:]
		for j := 0; j < 16; j++ {
			acc[j] = math.FMA(v, row[j], acc[j])
		}
	}
}

func refScatterSaxpy8FMA(val []float64, idx []int, brow *[8]float64, out []float64, stride int) {
	for p, v := range val {
		row := out[idx[p]*stride:]
		for j := 0; j < 8; j++ {
			row[j] = math.FMA(v, brow[j], row[j])
		}
	}
}

func refScatterSaxpy16FMA(val []float64, idx []int, brow *[16]float64, out []float64, stride int) {
	for p, v := range val {
		row := out[idx[p]*stride:]
		for j := 0; j < 16; j++ {
			row[j] = math.FMA(v, brow[j], row[j])
		}
	}
}

func refSaxpyRows8FMA(a []float64, b []float64, stride int, acc *[8]float64) {
	for l, av := range a {
		row := b[l*stride:]
		for j := 0; j < 8; j++ {
			acc[j] = math.FMA(av, row[j], acc[j])
		}
	}
}

func refSaxpyRows16FMA(a []float64, b []float64, stride int, acc *[16]float64) {
	for l, av := range a {
		row := b[l*stride:]
		for j := 0; j < 16; j++ {
			acc[j] = math.FMA(av, row[j], acc[j])
		}
	}
}

func refDotCols4FMA(a []float64, b []float64, stride int, out *[4]float64) {
	var s [4]float64
	for l, av := range a {
		for j := 0; j < 4; j++ {
			s[j] = math.FMA(av, b[j*stride+l], s[j])
		}
	}
	*out = s
}

func refTile2x4FMA(a, b []float64, k1, k2, n int, acc *[8]float64) {
	for l := 0; l < n; l++ {
		a0, a1 := a[l*k1], a[l*k1+1]
		row := b[l*k2:]
		for c := 0; c < 4; c++ {
			acc[c] = math.FMA(a0, row[c], acc[c])
			acc[4+c] = math.FMA(a1, row[c], acc[4+c])
		}
	}
}
