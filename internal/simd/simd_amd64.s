//go:build amd64 && !purego

#include "textflag.h"

// AVX2 primitives. Layout shared by all of them:
//
//   SI  value/row stream (val or a)     CX  trip count
//   DI  index stream (gather/scatter)   AX  loop counter
//   R8  matrix base (b or out)          R9  stride in bytes
//   R10 accumulator pointer             DX  per-trip row byte offset
//
// The non-fused bodies pair VMULPD with VADDPD so every lane rounds
// exactly like the scalar MULSD+ADDSD sequence the Go kernels compile
// to; the *FMA bodies are the same loops with VFMADD231PD. Accumulator
// state lives in Y0..Y3 for the whole call and is loaded from / stored
// to *acc, so callers control seeding (zeros for fresh rows, the
// current output for resumed tiles).

// func GatherSaxpy8(val []float64, idx []int, b []float64, stride int, acc *[8]float64)
TEXT ·GatherSaxpy8(SB), NOSPLIT, $0-88
	MOVQ val_base+0(FP), SI
	MOVQ val_len+8(FP), CX
	MOVQ idx_base+24(FP), DI
	MOVQ b_base+48(FP), R8
	MOVQ stride+72(FP), R9
	MOVQ acc+80(FP), R10
	SHLQ $3, R9
	VMOVUPD (R10), Y0
	VMOVUPD 32(R10), Y1
	XORQ AX, AX
g8loop:
	CMPQ AX, CX
	JGE  g8done
	MOVQ (DI)(AX*8), DX
	IMULQ R9, DX
	VBROADCASTSD (SI)(AX*8), Y2
	VMULPD (R8)(DX*1), Y2, Y3
	VADDPD Y3, Y0, Y0
	VMULPD 32(R8)(DX*1), Y2, Y4
	VADDPD Y4, Y1, Y1
	INCQ AX
	JMP  g8loop
g8done:
	VMOVUPD Y0, (R10)
	VMOVUPD Y1, 32(R10)
	VZEROUPPER
	RET

// func GatherSaxpy8FMA(val []float64, idx []int, b []float64, stride int, acc *[8]float64)
TEXT ·GatherSaxpy8FMA(SB), NOSPLIT, $0-88
	MOVQ val_base+0(FP), SI
	MOVQ val_len+8(FP), CX
	MOVQ idx_base+24(FP), DI
	MOVQ b_base+48(FP), R8
	MOVQ stride+72(FP), R9
	MOVQ acc+80(FP), R10
	SHLQ $3, R9
	VMOVUPD (R10), Y0
	VMOVUPD 32(R10), Y1
	XORQ AX, AX
g8floop:
	CMPQ AX, CX
	JGE  g8fdone
	MOVQ (DI)(AX*8), DX
	IMULQ R9, DX
	VBROADCASTSD (SI)(AX*8), Y2
	VFMADD231PD (R8)(DX*1), Y2, Y0
	VFMADD231PD 32(R8)(DX*1), Y2, Y1
	INCQ AX
	JMP  g8floop
g8fdone:
	VMOVUPD Y0, (R10)
	VMOVUPD Y1, 32(R10)
	VZEROUPPER
	RET

// func GatherSaxpy16(val []float64, idx []int, b []float64, stride int, acc *[16]float64)
TEXT ·GatherSaxpy16(SB), NOSPLIT, $0-88
	MOVQ val_base+0(FP), SI
	MOVQ val_len+8(FP), CX
	MOVQ idx_base+24(FP), DI
	MOVQ b_base+48(FP), R8
	MOVQ stride+72(FP), R9
	MOVQ acc+80(FP), R10
	SHLQ $3, R9
	VMOVUPD (R10), Y0
	VMOVUPD 32(R10), Y1
	VMOVUPD 64(R10), Y2
	VMOVUPD 96(R10), Y3
	XORQ AX, AX
g16loop:
	CMPQ AX, CX
	JGE  g16done
	MOVQ (DI)(AX*8), DX
	IMULQ R9, DX
	VBROADCASTSD (SI)(AX*8), Y4
	VMULPD (R8)(DX*1), Y4, Y5
	VADDPD Y5, Y0, Y0
	VMULPD 32(R8)(DX*1), Y4, Y6
	VADDPD Y6, Y1, Y1
	VMULPD 64(R8)(DX*1), Y4, Y7
	VADDPD Y7, Y2, Y2
	VMULPD 96(R8)(DX*1), Y4, Y8
	VADDPD Y8, Y3, Y3
	INCQ AX
	JMP  g16loop
g16done:
	VMOVUPD Y0, (R10)
	VMOVUPD Y1, 32(R10)
	VMOVUPD Y2, 64(R10)
	VMOVUPD Y3, 96(R10)
	VZEROUPPER
	RET

// func GatherSaxpy16FMA(val []float64, idx []int, b []float64, stride int, acc *[16]float64)
TEXT ·GatherSaxpy16FMA(SB), NOSPLIT, $0-88
	MOVQ val_base+0(FP), SI
	MOVQ val_len+8(FP), CX
	MOVQ idx_base+24(FP), DI
	MOVQ b_base+48(FP), R8
	MOVQ stride+72(FP), R9
	MOVQ acc+80(FP), R10
	SHLQ $3, R9
	VMOVUPD (R10), Y0
	VMOVUPD 32(R10), Y1
	VMOVUPD 64(R10), Y2
	VMOVUPD 96(R10), Y3
	XORQ AX, AX
g16floop:
	CMPQ AX, CX
	JGE  g16fdone
	MOVQ (DI)(AX*8), DX
	IMULQ R9, DX
	VBROADCASTSD (SI)(AX*8), Y4
	VFMADD231PD (R8)(DX*1), Y4, Y0
	VFMADD231PD 32(R8)(DX*1), Y4, Y1
	VFMADD231PD 64(R8)(DX*1), Y4, Y2
	VFMADD231PD 96(R8)(DX*1), Y4, Y3
	INCQ AX
	JMP  g16floop
g16fdone:
	VMOVUPD Y0, (R10)
	VMOVUPD Y1, 32(R10)
	VMOVUPD Y2, 64(R10)
	VMOVUPD Y3, 96(R10)
	VZEROUPPER
	RET

// func ScatterSaxpy8(val []float64, idx []int, brow *[8]float64, out []float64, stride int)
TEXT ·ScatterSaxpy8(SB), NOSPLIT, $0-88
	MOVQ val_base+0(FP), SI
	MOVQ val_len+8(FP), CX
	MOVQ idx_base+24(FP), DI
	MOVQ brow+48(FP), DX
	MOVQ out_base+56(FP), R8
	MOVQ stride+80(FP), R9
	SHLQ $3, R9
	VMOVUPD (DX), Y0
	VMOVUPD 32(DX), Y1
	XORQ AX, AX
s8loop:
	CMPQ AX, CX
	JGE  s8done
	MOVQ (DI)(AX*8), DX
	IMULQ R9, DX
	VBROADCASTSD (SI)(AX*8), Y2
	VMULPD Y0, Y2, Y3
	VADDPD (R8)(DX*1), Y3, Y3
	VMOVUPD Y3, (R8)(DX*1)
	VMULPD Y1, Y2, Y4
	VADDPD 32(R8)(DX*1), Y4, Y4
	VMOVUPD Y4, 32(R8)(DX*1)
	INCQ AX
	JMP  s8loop
s8done:
	VZEROUPPER
	RET

// func ScatterSaxpy8FMA(val []float64, idx []int, brow *[8]float64, out []float64, stride int)
TEXT ·ScatterSaxpy8FMA(SB), NOSPLIT, $0-88
	MOVQ val_base+0(FP), SI
	MOVQ val_len+8(FP), CX
	MOVQ idx_base+24(FP), DI
	MOVQ brow+48(FP), DX
	MOVQ out_base+56(FP), R8
	MOVQ stride+80(FP), R9
	SHLQ $3, R9
	VMOVUPD (DX), Y0
	VMOVUPD 32(DX), Y1
	XORQ AX, AX
s8floop:
	CMPQ AX, CX
	JGE  s8fdone
	MOVQ (DI)(AX*8), DX
	IMULQ R9, DX
	VBROADCASTSD (SI)(AX*8), Y2
	VMOVUPD (R8)(DX*1), Y3
	VFMADD231PD Y0, Y2, Y3
	VMOVUPD Y3, (R8)(DX*1)
	VMOVUPD 32(R8)(DX*1), Y4
	VFMADD231PD Y1, Y2, Y4
	VMOVUPD Y4, 32(R8)(DX*1)
	INCQ AX
	JMP  s8floop
s8fdone:
	VZEROUPPER
	RET

// func ScatterSaxpy16(val []float64, idx []int, brow *[16]float64, out []float64, stride int)
TEXT ·ScatterSaxpy16(SB), NOSPLIT, $0-88
	MOVQ val_base+0(FP), SI
	MOVQ val_len+8(FP), CX
	MOVQ idx_base+24(FP), DI
	MOVQ brow+48(FP), DX
	MOVQ out_base+56(FP), R8
	MOVQ stride+80(FP), R9
	SHLQ $3, R9
	VMOVUPD (DX), Y0
	VMOVUPD 32(DX), Y1
	VMOVUPD 64(DX), Y2
	VMOVUPD 96(DX), Y3
	XORQ AX, AX
s16loop:
	CMPQ AX, CX
	JGE  s16done
	MOVQ (DI)(AX*8), DX
	IMULQ R9, DX
	VBROADCASTSD (SI)(AX*8), Y4
	VMULPD Y0, Y4, Y5
	VADDPD (R8)(DX*1), Y5, Y5
	VMOVUPD Y5, (R8)(DX*1)
	VMULPD Y1, Y4, Y6
	VADDPD 32(R8)(DX*1), Y6, Y6
	VMOVUPD Y6, 32(R8)(DX*1)
	VMULPD Y2, Y4, Y7
	VADDPD 64(R8)(DX*1), Y7, Y7
	VMOVUPD Y7, 64(R8)(DX*1)
	VMULPD Y3, Y4, Y8
	VADDPD 96(R8)(DX*1), Y8, Y8
	VMOVUPD Y8, 96(R8)(DX*1)
	INCQ AX
	JMP  s16loop
s16done:
	VZEROUPPER
	RET

// func ScatterSaxpy16FMA(val []float64, idx []int, brow *[16]float64, out []float64, stride int)
TEXT ·ScatterSaxpy16FMA(SB), NOSPLIT, $0-88
	MOVQ val_base+0(FP), SI
	MOVQ val_len+8(FP), CX
	MOVQ idx_base+24(FP), DI
	MOVQ brow+48(FP), DX
	MOVQ out_base+56(FP), R8
	MOVQ stride+80(FP), R9
	SHLQ $3, R9
	VMOVUPD (DX), Y0
	VMOVUPD 32(DX), Y1
	VMOVUPD 64(DX), Y2
	VMOVUPD 96(DX), Y3
	XORQ AX, AX
s16floop:
	CMPQ AX, CX
	JGE  s16fdone
	MOVQ (DI)(AX*8), DX
	IMULQ R9, DX
	VBROADCASTSD (SI)(AX*8), Y4
	VMOVUPD (R8)(DX*1), Y5
	VFMADD231PD Y0, Y4, Y5
	VMOVUPD Y5, (R8)(DX*1)
	VMOVUPD 32(R8)(DX*1), Y6
	VFMADD231PD Y1, Y4, Y6
	VMOVUPD Y6, 32(R8)(DX*1)
	VMOVUPD 64(R8)(DX*1), Y7
	VFMADD231PD Y2, Y4, Y7
	VMOVUPD Y7, 64(R8)(DX*1)
	VMOVUPD 96(R8)(DX*1), Y8
	VFMADD231PD Y3, Y4, Y8
	VMOVUPD Y8, 96(R8)(DX*1)
	INCQ AX
	JMP  s16floop
s16fdone:
	VZEROUPPER
	RET

// func SaxpyRows8(a []float64, b []float64, stride int, acc *[8]float64)
TEXT ·SaxpyRows8(SB), NOSPLIT, $0-64
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b_base+24(FP), R8
	MOVQ stride+48(FP), R9
	MOVQ acc+56(FP), R10
	SHLQ $3, R9
	VMOVUPD (R10), Y0
	VMOVUPD 32(R10), Y1
	XORQ AX, AX
r8loop:
	CMPQ AX, CX
	JGE  r8done
	VBROADCASTSD (SI)(AX*8), Y2
	VMULPD (R8), Y2, Y3
	VADDPD Y3, Y0, Y0
	VMULPD 32(R8), Y2, Y4
	VADDPD Y4, Y1, Y1
	ADDQ R9, R8
	INCQ AX
	JMP  r8loop
r8done:
	VMOVUPD Y0, (R10)
	VMOVUPD Y1, 32(R10)
	VZEROUPPER
	RET

// func SaxpyRows8FMA(a []float64, b []float64, stride int, acc *[8]float64)
TEXT ·SaxpyRows8FMA(SB), NOSPLIT, $0-64
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b_base+24(FP), R8
	MOVQ stride+48(FP), R9
	MOVQ acc+56(FP), R10
	SHLQ $3, R9
	VMOVUPD (R10), Y0
	VMOVUPD 32(R10), Y1
	XORQ AX, AX
r8floop:
	CMPQ AX, CX
	JGE  r8fdone
	VBROADCASTSD (SI)(AX*8), Y2
	VFMADD231PD (R8), Y2, Y0
	VFMADD231PD 32(R8), Y2, Y1
	ADDQ R9, R8
	INCQ AX
	JMP  r8floop
r8fdone:
	VMOVUPD Y0, (R10)
	VMOVUPD Y1, 32(R10)
	VZEROUPPER
	RET

// func SaxpyRows16(a []float64, b []float64, stride int, acc *[16]float64)
TEXT ·SaxpyRows16(SB), NOSPLIT, $0-64
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b_base+24(FP), R8
	MOVQ stride+48(FP), R9
	MOVQ acc+56(FP), R10
	SHLQ $3, R9
	VMOVUPD (R10), Y0
	VMOVUPD 32(R10), Y1
	VMOVUPD 64(R10), Y2
	VMOVUPD 96(R10), Y3
	XORQ AX, AX
r16loop:
	CMPQ AX, CX
	JGE  r16done
	VBROADCASTSD (SI)(AX*8), Y4
	VMULPD (R8), Y4, Y5
	VADDPD Y5, Y0, Y0
	VMULPD 32(R8), Y4, Y6
	VADDPD Y6, Y1, Y1
	VMULPD 64(R8), Y4, Y7
	VADDPD Y7, Y2, Y2
	VMULPD 96(R8), Y4, Y8
	VADDPD Y8, Y3, Y3
	ADDQ R9, R8
	INCQ AX
	JMP  r16loop
r16done:
	VMOVUPD Y0, (R10)
	VMOVUPD Y1, 32(R10)
	VMOVUPD Y2, 64(R10)
	VMOVUPD Y3, 96(R10)
	VZEROUPPER
	RET

// func SaxpyRows16FMA(a []float64, b []float64, stride int, acc *[16]float64)
TEXT ·SaxpyRows16FMA(SB), NOSPLIT, $0-64
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b_base+24(FP), R8
	MOVQ stride+48(FP), R9
	MOVQ acc+56(FP), R10
	SHLQ $3, R9
	VMOVUPD (R10), Y0
	VMOVUPD 32(R10), Y1
	VMOVUPD 64(R10), Y2
	VMOVUPD 96(R10), Y3
	XORQ AX, AX
r16floop:
	CMPQ AX, CX
	JGE  r16fdone
	VBROADCASTSD (SI)(AX*8), Y4
	VFMADD231PD (R8), Y4, Y0
	VFMADD231PD 32(R8), Y4, Y1
	VFMADD231PD 64(R8), Y4, Y2
	VFMADD231PD 96(R8), Y4, Y3
	ADDQ R9, R8
	INCQ AX
	JMP  r16floop
r16fdone:
	VMOVUPD Y0, (R10)
	VMOVUPD Y1, 32(R10)
	VMOVUPD Y2, 64(R10)
	VMOVUPD Y3, 96(R10)
	VZEROUPPER
	RET

// func DotCols4(a []float64, b []float64, stride int, out *[4]float64)
//
// Lane j of Y0 is output column j's accumulator; per element the four
// strided b values are packed into one ymm (two VUNPCKLPDs and a
// VINSERTF128), so each lane still sums in ascending l order.
TEXT ·DotCols4(SB), NOSPLIT, $0-64
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b_base+24(FP), R8
	MOVQ stride+48(FP), R9
	MOVQ out+56(FP), R10
	SHLQ $3, R9
	LEAQ (R9)(R9*2), R11
	VXORPD Y0, Y0, Y0
	XORQ AX, AX
d4loop:
	CMPQ AX, CX
	JGE  d4done
	VMOVSD (R8), X2
	VMOVSD (R8)(R9*1), X3
	VUNPCKLPD X3, X2, X2
	VMOVSD (R8)(R9*2), X4
	VMOVSD (R8)(R11*1), X5
	VUNPCKLPD X5, X4, X4
	VINSERTF128 $1, X4, Y2, Y2
	VBROADCASTSD (SI)(AX*8), Y3
	VMULPD Y2, Y3, Y4
	VADDPD Y4, Y0, Y0
	ADDQ $8, R8
	INCQ AX
	JMP  d4loop
d4done:
	VMOVUPD Y0, (R10)
	VZEROUPPER
	RET

// func DotCols4FMA(a []float64, b []float64, stride int, out *[4]float64)
TEXT ·DotCols4FMA(SB), NOSPLIT, $0-64
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b_base+24(FP), R8
	MOVQ stride+48(FP), R9
	MOVQ out+56(FP), R10
	SHLQ $3, R9
	LEAQ (R9)(R9*2), R11
	VXORPD Y0, Y0, Y0
	XORQ AX, AX
d4floop:
	CMPQ AX, CX
	JGE  d4fdone
	VMOVSD (R8), X2
	VMOVSD (R8)(R9*1), X3
	VUNPCKLPD X3, X2, X2
	VMOVSD (R8)(R9*2), X4
	VMOVSD (R8)(R11*1), X5
	VUNPCKLPD X5, X4, X4
	VINSERTF128 $1, X4, Y2, Y2
	VBROADCASTSD (SI)(AX*8), Y3
	VFMADD231PD Y2, Y3, Y0
	ADDQ $8, R8
	INCQ AX
	JMP  d4floop
d4fdone:
	VMOVUPD Y0, (R10)
	VZEROUPPER
	RET

// func Tile2x4(a, b []float64, k1, k2, n int, acc *[8]float64)
TEXT ·Tile2x4(SB), NOSPLIT, $0-80
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), R8
	MOVQ k1+48(FP), R9
	MOVQ k2+56(FP), R11
	MOVQ n+64(FP), CX
	MOVQ acc+72(FP), R10
	SHLQ $3, R9
	SHLQ $3, R11
	VMOVUPD (R10), Y0
	VMOVUPD 32(R10), Y1
	TESTQ CX, CX
	JLE  t24done
t24loop:
	VMOVUPD (R8), Y4
	VBROADCASTSD (SI), Y2
	VBROADCASTSD 8(SI), Y3
	VMULPD Y4, Y2, Y5
	VADDPD Y5, Y0, Y0
	VMULPD Y4, Y3, Y6
	VADDPD Y6, Y1, Y1
	ADDQ R9, SI
	ADDQ R11, R8
	DECQ CX
	JNZ  t24loop
t24done:
	VMOVUPD Y0, (R10)
	VMOVUPD Y1, 32(R10)
	VZEROUPPER
	RET

// func Tile2x4FMA(a, b []float64, k1, k2, n int, acc *[8]float64)
TEXT ·Tile2x4FMA(SB), NOSPLIT, $0-80
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), R8
	MOVQ k1+48(FP), R9
	MOVQ k2+56(FP), R11
	MOVQ n+64(FP), CX
	MOVQ acc+72(FP), R10
	SHLQ $3, R9
	SHLQ $3, R11
	VMOVUPD (R10), Y0
	VMOVUPD 32(R10), Y1
	TESTQ CX, CX
	JLE  t24fdone
t24floop:
	VMOVUPD (R8), Y4
	VBROADCASTSD (SI), Y2
	VBROADCASTSD 8(SI), Y3
	VFMADD231PD Y4, Y2, Y0
	VFMADD231PD Y4, Y3, Y1
	ADDQ R9, SI
	ADDQ R11, R8
	DECQ CX
	JNZ  t24floop
t24fdone:
	VMOVUPD Y0, (R10)
	VMOVUPD Y1, 32(R10)
	VZEROUPPER
	RET
