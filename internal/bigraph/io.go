package bigraph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list: one edge per line
// as "u v" or "u v w", where u and v are arbitrary string identifiers and
// w is an optional positive weight (default 1). Lines starting with '#'
// or '%' and blank lines are skipped. Node identifiers are densified in
// first-appearance order and preserved in ULabels/VLabels.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	uIdx := make(map[string]int)
	vIdx := make(map[string]int)
	var uLabels, vLabels []string
	var edges []Edge
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("bigraph: line %d: want 2 or 3 fields, got %d", lineNo, len(fields))
		}
		w := 1.0
		if len(fields) == 3 {
			var err error
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("bigraph: line %d: bad weight %q: %v", lineNo, fields[2], err)
			}
			if w <= 0 {
				return nil, fmt.Errorf("bigraph: line %d: non-positive weight %g", lineNo, w)
			}
		}
		u, ok := uIdx[fields[0]]
		if !ok {
			u = len(uLabels)
			uIdx[fields[0]] = u
			uLabels = append(uLabels, fields[0])
		}
		v, ok := vIdx[fields[1]]
		if !ok {
			v = len(vLabels)
			vIdx[fields[1]] = v
			vLabels = append(vLabels, fields[1])
		}
		edges = append(edges, Edge{U: u, V: v, W: w})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bigraph: reading edge list: %w", err)
	}
	g, err := New(len(uLabels), len(vLabels), edges)
	if err != nil {
		return nil, err
	}
	g.ULabels = uLabels
	g.VLabels = vLabels
	return g, nil
}

// LoadEdgeList reads an edge-list file from disk.
func LoadEdgeList(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("bigraph: %w", err)
	}
	defer f.Close()
	g, err := ReadEdgeList(f)
	if err != nil {
		return nil, fmt.Errorf("bigraph: %s: %w", path, err)
	}
	return g, nil
}

// WriteEdgeList writes the graph in the format ReadEdgeList accepts.
// Labels are used when present, plain indices otherwise; weights are
// emitted only for weighted graphs.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range g.Edges {
		uName := strconv.Itoa(e.U)
		vName := strconv.Itoa(e.V)
		if g.ULabels != nil {
			uName = g.ULabels[e.U]
		}
		if g.VLabels != nil {
			vName = g.VLabels[e.V]
		}
		var err error
		if g.Weighted {
			_, err = fmt.Fprintf(bw, "%s\t%s\t%g\n", uName, vName, e.W)
		} else {
			_, err = fmt.Fprintf(bw, "%s\t%s\n", uName, vName)
		}
		if err != nil {
			return fmt.Errorf("bigraph: writing edge list: %w", err)
		}
	}
	return bw.Flush()
}

// SaveEdgeList writes the graph to a file on disk.
func (g *Graph) SaveEdgeList(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bigraph: %w", err)
	}
	if err := g.WriteEdgeList(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
