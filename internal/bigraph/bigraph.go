// Package bigraph provides the bipartite graph container used across the
// repository: construction, validation, CSR adjacency, degree utilities,
// k-core filtering, train/test edge splitting, and plain-text edge-list
// IO compatible with the formats the paper's datasets ship in.
package bigraph

import (
	"fmt"
	"math/rand/v2"
)

// Edge is a weighted inter-set edge between node U ∈ [0,|U|) and node
// V ∈ [0,|V|).
type Edge struct {
	U, V int
	W    float64
}

// Graph is an undirected bipartite graph G = (U, V, E). Node identities
// are dense integer indices; string identifiers from input files live in
// the optional label tables.
type Graph struct {
	NU, NV int
	Edges  []Edge

	// ULabels/VLabels optionally map indices back to source identifiers;
	// nil when the graph was generated synthetically.
	ULabels, VLabels []string

	// Weighted records whether edge weights carry information (false means
	// every weight is 1).
	Weighted bool
}

// New validates and constructs a graph. It rejects out-of-range endpoints
// and non-positive weights; duplicate (u,v) pairs are allowed here and
// summed when the weight matrix is built.
func New(nu, nv int, edges []Edge) (*Graph, error) {
	if nu < 0 || nv < 0 {
		return nil, fmt.Errorf("bigraph: negative node count |U|=%d |V|=%d", nu, nv)
	}
	weighted := false
	for i, e := range edges {
		if e.U < 0 || e.U >= nu {
			return nil, fmt.Errorf("bigraph: edge %d has U endpoint %d outside [0,%d)", i, e.U, nu)
		}
		if e.V < 0 || e.V >= nv {
			return nil, fmt.Errorf("bigraph: edge %d has V endpoint %d outside [0,%d)", i, e.V, nv)
		}
		if e.W <= 0 {
			return nil, fmt.Errorf("bigraph: edge %d (%d,%d) has non-positive weight %g", i, e.U, e.V, e.W)
		}
		if e.W != 1 {
			weighted = true
		}
	}
	return &Graph{NU: nu, NV: nv, Edges: edges, Weighted: weighted}, nil
}

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// UDegrees returns the number of incident edges per node in U.
func (g *Graph) UDegrees() []int {
	d := make([]int, g.NU)
	for _, e := range g.Edges {
		d[e.U]++
	}
	return d
}

// VDegrees returns the number of incident edges per node in V.
func (g *Graph) VDegrees() []int {
	d := make([]int, g.NV)
	for _, e := range g.Edges {
		d[e.V]++
	}
	return d
}

// HasEdgeSet returns a membership set keyed by packed (u,v); useful for
// negative sampling. Packing is safe for |V| < 2³¹.
func (g *Graph) HasEdgeSet() map[int64]bool {
	s := make(map[int64]bool, len(g.Edges))
	for _, e := range g.Edges {
		s[PackEdge(e.U, e.V)] = true
	}
	return s
}

// PackEdge packs a (u,v) pair into one int64 key.
func PackEdge(u, v int) int64 { return int64(u)<<32 | int64(uint32(v)) }

// UnpackEdge reverses PackEdge.
func UnpackEdge(key int64) (u, v int) { return int(key >> 32), int(uint32(key)) }

// Adjacency holds per-node neighbor lists for both sides, used by random
// walk baselines. Neighbor order follows edge insertion order.
type Adjacency struct {
	// UNbrs[u] lists v-indices adjacent to u; UW the matching weights.
	UNbrs [][]int32
	UW    [][]float64
	// VNbrs[v] lists u-indices adjacent to v; VW the matching weights.
	VNbrs [][]int32
	VW    [][]float64
}

// BuildAdjacency materializes neighbor lists for both node sets.
func (g *Graph) BuildAdjacency() *Adjacency {
	a := &Adjacency{
		UNbrs: make([][]int32, g.NU), UW: make([][]float64, g.NU),
		VNbrs: make([][]int32, g.NV), VW: make([][]float64, g.NV),
	}
	ud, vd := g.UDegrees(), g.VDegrees()
	for u, d := range ud {
		a.UNbrs[u] = make([]int32, 0, d)
		a.UW[u] = make([]float64, 0, d)
	}
	for v, d := range vd {
		a.VNbrs[v] = make([]int32, 0, d)
		a.VW[v] = make([]float64, 0, d)
	}
	for _, e := range g.Edges {
		a.UNbrs[e.U] = append(a.UNbrs[e.U], int32(e.V))
		a.UW[e.U] = append(a.UW[e.U], e.W)
		a.VNbrs[e.V] = append(a.VNbrs[e.V], int32(e.U))
		a.VW[e.V] = append(a.VW[e.V], e.W)
	}
	return a
}

// Split partitions the edges into a training graph and a held-out test
// edge list: trainFrac of the edges (uniformly at random, deterministic in
// seed) stay in the training graph, which keeps the full node universe so
// embeddings stay index-compatible with the test set.
func (g *Graph) Split(trainFrac float64, seed uint64) (train *Graph, test []Edge) {
	if trainFrac <= 0 || trainFrac > 1 {
		panic(fmt.Sprintf("bigraph: trainFrac %g outside (0,1]", trainFrac))
	}
	rng := rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))
	perm := rng.Perm(len(g.Edges))
	nTrain := int(float64(len(g.Edges)) * trainFrac)
	trainEdges := make([]Edge, 0, nTrain)
	test = make([]Edge, 0, len(g.Edges)-nTrain)
	for i, p := range perm {
		if i < nTrain {
			trainEdges = append(trainEdges, g.Edges[p])
		} else {
			test = append(test, g.Edges[p])
		}
	}
	train = &Graph{NU: g.NU, NV: g.NV, Edges: trainEdges,
		ULabels: g.ULabels, VLabels: g.VLabels, Weighted: g.Weighted}
	return train, test
}

// KCore returns the subgraph where every remaining node (on both sides)
// has degree ≥ k, computed by iterative peeling — the "10-core setting"
// the paper applies before the recommendation experiments. Node indices
// are re-densified; the returned mappings give, for each new index, the
// old index it came from.
func (g *Graph) KCore(k int) (core *Graph, uMap, vMap []int) {
	ud, vd := g.UDegrees(), g.VDegrees()
	uAlive := make([]bool, g.NU)
	vAlive := make([]bool, g.NV)
	for i := range uAlive {
		uAlive[i] = true
	}
	for i := range vAlive {
		vAlive[i] = true
	}
	adj := g.BuildAdjacency()
	// Iterative peeling with a simple worklist.
	changed := true
	for changed {
		changed = false
		for u := 0; u < g.NU; u++ {
			if uAlive[u] && ud[u] < k {
				uAlive[u] = false
				changed = true
				for _, v := range adj.UNbrs[u] {
					if vAlive[v] {
						vd[v]--
					}
				}
				ud[u] = 0
			}
		}
		for v := 0; v < g.NV; v++ {
			if vAlive[v] && vd[v] < k {
				vAlive[v] = false
				changed = true
				for _, u := range adj.VNbrs[v] {
					if uAlive[u] {
						ud[u]--
					}
				}
				vd[v] = 0
			}
		}
	}
	uNew := make([]int, g.NU)
	vNew := make([]int, g.NV)
	for i := range uNew {
		uNew[i] = -1
	}
	for i := range vNew {
		vNew[i] = -1
	}
	for u := 0; u < g.NU; u++ {
		if uAlive[u] {
			uNew[u] = len(uMap)
			uMap = append(uMap, u)
		}
	}
	for v := 0; v < g.NV; v++ {
		if vAlive[v] {
			vNew[v] = len(vMap)
			vMap = append(vMap, v)
		}
	}
	var edges []Edge
	for _, e := range g.Edges {
		if uAlive[e.U] && vAlive[e.V] {
			edges = append(edges, Edge{U: uNew[e.U], V: vNew[e.V], W: e.W})
		}
	}
	var ul, vl []string
	if g.ULabels != nil {
		ul = make([]string, len(uMap))
		for i, old := range uMap {
			ul[i] = g.ULabels[old]
		}
	}
	if g.VLabels != nil {
		vl = make([]string, len(vMap))
		for i, old := range vMap {
			vl[i] = g.VLabels[old]
		}
	}
	core = &Graph{NU: len(uMap), NV: len(vMap), Edges: edges,
		ULabels: ul, VLabels: vl, Weighted: g.Weighted}
	return core, uMap, vMap
}

// Stats summarizes a graph for logging and dataset tables.
type Stats struct {
	NU, NV, NE         int
	AvgUDeg, AvgVDeg   float64
	MaxUDeg, MaxVDeg   int
	Weighted           bool
	MinW, MaxW, TotalW float64
}

// Stats computes summary statistics.
func (g *Graph) Stats() Stats {
	s := Stats{NU: g.NU, NV: g.NV, NE: len(g.Edges), Weighted: g.Weighted}
	if len(g.Edges) == 0 {
		return s
	}
	ud, vd := g.UDegrees(), g.VDegrees()
	for _, d := range ud {
		if d > s.MaxUDeg {
			s.MaxUDeg = d
		}
	}
	for _, d := range vd {
		if d > s.MaxVDeg {
			s.MaxVDeg = d
		}
	}
	s.MinW = g.Edges[0].W
	for _, e := range g.Edges {
		if e.W < s.MinW {
			s.MinW = e.W
		}
		if e.W > s.MaxW {
			s.MaxW = e.W
		}
		s.TotalW += e.W
	}
	if g.NU > 0 {
		s.AvgUDeg = float64(len(g.Edges)) / float64(g.NU)
	}
	if g.NV > 0 {
		s.AvgVDeg = float64(len(g.Edges)) / float64(g.NV)
	}
	return s
}

// String renders the stats compactly.
func (s Stats) String() string {
	kind := "unweighted"
	if s.Weighted {
		kind = "weighted"
	}
	return fmt.Sprintf("|U|=%d |V|=%d |E|=%d %s avgdeg(U)=%.1f avgdeg(V)=%.1f",
		s.NU, s.NV, s.NE, kind, s.AvgUDeg, s.AvgVDeg)
}
