package bigraph

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, nu, nv int, edges []Edge) *Graph {
	t.Helper()
	g, err := New(nu, nv, edges)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g
}

func triangleGraph(t *testing.T) *Graph {
	return mustNew(t, 3, 2, []Edge{
		{U: 0, V: 0, W: 1}, {U: 0, V: 1, W: 1},
		{U: 1, V: 0, W: 1}, {U: 2, V: 1, W: 1},
	})
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		nu, nv int
		edges  []Edge
	}{
		{-1, 2, nil},
		{2, 2, []Edge{{U: 2, V: 0, W: 1}}},
		{2, 2, []Edge{{U: 0, V: 2, W: 1}}},
		{2, 2, []Edge{{U: 0, V: 0, W: 0}}},
		{2, 2, []Edge{{U: 0, V: 0, W: -1}}},
	}
	for i, c := range cases {
		if _, err := New(c.nu, c.nv, c.edges); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestWeightedDetection(t *testing.T) {
	g := mustNew(t, 1, 1, []Edge{{U: 0, V: 0, W: 1}})
	if g.Weighted {
		t.Error("all-ones graph flagged weighted")
	}
	g2 := mustNew(t, 1, 1, []Edge{{U: 0, V: 0, W: 2.5}})
	if !g2.Weighted {
		t.Error("weighted graph not flagged")
	}
}

func TestDegrees(t *testing.T) {
	g := triangleGraph(t)
	ud := g.UDegrees()
	vd := g.VDegrees()
	if ud[0] != 2 || ud[1] != 1 || ud[2] != 1 {
		t.Errorf("UDegrees=%v", ud)
	}
	if vd[0] != 2 || vd[1] != 2 {
		t.Errorf("VDegrees=%v", vd)
	}
}

func TestPackUnpackEdge(t *testing.T) {
	f := func(u, v uint16) bool {
		uu, vv := UnpackEdge(PackEdge(int(u), int(v)))
		return uu == int(u) && vv == int(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBuildAdjacency(t *testing.T) {
	g := triangleGraph(t)
	a := g.BuildAdjacency()
	if len(a.UNbrs[0]) != 2 || a.UNbrs[0][0] != 0 || a.UNbrs[0][1] != 1 {
		t.Errorf("UNbrs[0]=%v", a.UNbrs[0])
	}
	if len(a.VNbrs[1]) != 2 || a.VNbrs[1][0] != 0 || a.VNbrs[1][1] != 2 {
		t.Errorf("VNbrs[1]=%v", a.VNbrs[1])
	}
	if a.UW[0][0] != 1 {
		t.Errorf("UW[0]=%v", a.UW[0])
	}
}

func TestSplitPartitionsAllEdges(t *testing.T) {
	edges := make([]Edge, 100)
	for i := range edges {
		edges[i] = Edge{U: i % 10, V: i % 7, W: 1}
	}
	g := mustNew(t, 10, 7, edges)
	train, test := g.Split(0.6, 42)
	if len(train.Edges) != 60 || len(test) != 40 {
		t.Fatalf("split sizes %d/%d want 60/40", len(train.Edges), len(test))
	}
	if train.NU != 10 || train.NV != 7 {
		t.Error("train graph must keep the node universe")
	}
	// Deterministic in seed.
	train2, _ := g.Split(0.6, 42)
	for i := range train.Edges {
		if train.Edges[i] != train2.Edges[i] {
			t.Fatal("split not deterministic")
		}
	}
	// Different seed, different split (overwhelmingly likely).
	train3, _ := g.Split(0.6, 43)
	same := true
	for i := range train.Edges {
		if train.Edges[i] != train3.Edges[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical splits")
	}
}

func TestSplitPanicsOnBadFrac(t *testing.T) {
	g := triangleGraph(t)
	for _, f := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("frac=%v: expected panic", f)
				}
			}()
			g.Split(f, 1)
		}()
	}
}

func TestKCore(t *testing.T) {
	// u0 connects to v0,v1; u1 connects to v0,v1; u2 connects only to v2.
	// In the 2-core: u0,u1,v0,v1 survive; u2,v2 peel away.
	g := mustNew(t, 3, 3, []Edge{
		{U: 0, V: 0, W: 1}, {U: 0, V: 1, W: 1},
		{U: 1, V: 0, W: 1}, {U: 1, V: 1, W: 1},
		{U: 2, V: 2, W: 1},
	})
	core, uMap, vMap := g.KCore(2)
	if core.NU != 2 || core.NV != 2 || len(core.Edges) != 4 {
		t.Fatalf("2-core wrong: %v (uMap=%v vMap=%v)", core.Stats(), uMap, vMap)
	}
	if uMap[0] != 0 || uMap[1] != 1 || vMap[0] != 0 || vMap[1] != 1 {
		t.Errorf("maps wrong: %v %v", uMap, vMap)
	}
	// Every node in the core has degree >= 2.
	for _, d := range append(core.UDegrees(), core.VDegrees()...) {
		if d < 2 {
			t.Errorf("core node with degree %d < 2", d)
		}
	}
}

func TestKCoreCascades(t *testing.T) {
	// A chain where removing one endpoint cascades: u0-v0, u0-v1, u1-v1.
	// 2-core is empty (v0 has degree 1 -> u0 drops to 1 -> all peel).
	g := mustNew(t, 2, 2, []Edge{
		{U: 0, V: 0, W: 1}, {U: 0, V: 1, W: 1}, {U: 1, V: 1, W: 1},
	})
	core, _, _ := g.KCore(2)
	if core.NumEdges() != 0 || core.NU != 0 || core.NV != 0 {
		t.Errorf("expected empty 2-core, got %v", core.Stats())
	}
}

func TestStats(t *testing.T) {
	g := mustNew(t, 3, 2, []Edge{
		{U: 0, V: 0, W: 2}, {U: 0, V: 1, W: 3}, {U: 1, V: 0, W: 1},
	})
	s := g.Stats()
	if s.NE != 3 || s.MaxUDeg != 2 || s.MaxVDeg != 2 || s.MinW != 1 || s.MaxW != 3 || s.TotalW != 6 {
		t.Errorf("stats: %+v", s)
	}
	if !strings.Contains(s.String(), "weighted") {
		t.Errorf("String()=%q", s.String())
	}
	empty := mustNew(t, 0, 0, nil)
	if es := empty.Stats(); es.NE != 0 {
		t.Errorf("empty stats: %+v", es)
	}
}

func TestReadEdgeList(t *testing.T) {
	in := `# comment
alice	movie1	3.5
bob	movie1
% another comment

alice	movie2	1
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NU != 2 || g.NV != 2 || len(g.Edges) != 3 {
		t.Fatalf("parsed %v", g.Stats())
	}
	if g.ULabels[0] != "alice" || g.VLabels[1] != "movie2" {
		t.Errorf("labels: %v %v", g.ULabels, g.VLabels)
	}
	if !g.Weighted {
		t.Error("graph with weight 3.5 must be weighted")
	}
	if g.Edges[0].W != 3.5 || g.Edges[1].W != 1 {
		t.Errorf("weights: %+v", g.Edges)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"a\n",           // one field
		"a b c d\n",     // four fields
		"a b notanum\n", // bad weight
		"a b 0\n",       // zero weight
		"a b -2\n",      // negative weight
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := mustNew(t, 2, 2, []Edge{
		{U: 0, V: 0, W: 2}, {U: 1, V: 1, W: 0.5}, {U: 0, V: 1, W: 1},
	})
	var sb strings.Builder
	if err := g.WriteEdgeList(&sb); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NU != g.NU || g2.NV != g.NV || len(g2.Edges) != len(g.Edges) {
		t.Fatalf("round trip changed shape: %v vs %v", g2.Stats(), g.Stats())
	}
	for i := range g.Edges {
		if g2.Edges[i].W != g.Edges[i].W {
			t.Errorf("edge %d weight %v != %v", i, g2.Edges[i].W, g.Edges[i].W)
		}
	}
}

func TestSaveLoadEdgeList(t *testing.T) {
	g := triangleGraph(t)
	path := t.TempDir() + "/graph.tsv"
	if err := g.SaveEdgeList(path); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Errorf("edges %d != %d", g2.NumEdges(), g.NumEdges())
	}
}
