package budget

import (
	"errors"
	"testing"
	"time"
)

func TestZeroDeadlineNeverFires(t *testing.T) {
	if Exceeded(time.Time{}) {
		t.Error("zero deadline reported exceeded")
	}
	if err := Check(time.Time{}); err != nil {
		t.Errorf("Check(zero) = %v", err)
	}
}

func TestPastDeadlineFires(t *testing.T) {
	past := time.Now().Add(-time.Millisecond)
	if !Exceeded(past) {
		t.Error("past deadline not exceeded")
	}
	if err := Check(past); !errors.Is(err, ErrExceeded) {
		t.Errorf("Check(past) = %v", err)
	}
}

func TestFutureDeadlineDoesNotFire(t *testing.T) {
	future := time.Now().Add(time.Hour)
	if Exceeded(future) {
		t.Error("future deadline exceeded")
	}
	if err := Check(future); err != nil {
		t.Errorf("Check(future) = %v", err)
	}
}
