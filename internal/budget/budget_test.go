package budget

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestZeroDeadlineNeverFires(t *testing.T) {
	if Exceeded(time.Time{}) {
		t.Error("zero deadline reported exceeded")
	}
	if err := Check(time.Time{}); err != nil {
		t.Errorf("Check(zero) = %v", err)
	}
}

func TestPastDeadlineFires(t *testing.T) {
	past := time.Now().Add(-time.Millisecond)
	if !Exceeded(past) {
		t.Error("past deadline not exceeded")
	}
	if err := Check(past); !errors.Is(err, ErrExceeded) {
		t.Errorf("Check(past) = %v", err)
	}
}

func TestFutureDeadlineDoesNotFire(t *testing.T) {
	future := time.Now().Add(time.Hour)
	if Exceeded(future) {
		t.Error("future deadline exceeded")
	}
	if err := Check(future); err != nil {
		t.Errorf("Check(future) = %v", err)
	}
}

func TestRemaining(t *testing.T) {
	if got := Remaining(time.Time{}); got != 0 {
		t.Errorf("Remaining(zero) = %v, want 0", got)
	}
	if got := Remaining(time.Now().Add(-time.Second)); got != 0 {
		t.Errorf("Remaining(past) = %v, want 0 (never negative)", got)
	}
	got := Remaining(time.Now().Add(time.Hour))
	if got <= 59*time.Minute || got > time.Hour {
		t.Errorf("Remaining(1h) = %v", got)
	}
}

func TestEarliest(t *testing.T) {
	a := time.Now().Add(time.Minute)
	b := time.Now().Add(time.Hour)
	zero := time.Time{}
	for _, tc := range []struct {
		name    string
		x, y, w time.Time
	}{
		{"both zero", zero, zero, zero},
		{"left zero", zero, b, b},
		{"right zero", a, zero, a},
		{"left earlier", a, b, a},
		{"right earlier", b, a, a},
		{"equal", a, a, a},
	} {
		if got := Earliest(tc.x, tc.y); !got.Equal(tc.w) {
			t.Errorf("%s: Earliest = %v, want %v", tc.name, got, tc.w)
		}
	}
}

// TestConcurrentFanOut models the coordinator's scatter: one request
// deadline propagated to K parallel shard calls as a remaining-ms
// budget. Every call must reconstruct (approximately) the same absolute
// deadline, the composition with a per-call budget must pick the
// earliest, and a blown budget must classify as ErrExceeded — cleanly
// distinguishable from a transport error.
func TestConcurrentFanOut(t *testing.T) {
	deadline := time.Now().Add(200 * time.Millisecond)
	const K = 8
	var wg sync.WaitGroup
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each "shard call" re-derives its deadline from the remaining
			// budget, the way X-Gebe-Deadline-Ms reconstructs it across the
			// process boundary.
			rem := Remaining(deadline)
			if rem <= 0 || rem > 200*time.Millisecond {
				errs[i] = fmt.Errorf("remaining = %v outside (0, 200ms]", rem)
				return
			}
			local := time.Now().Add(rem)
			// A tighter per-call budget wins; a looser one loses.
			if got := Earliest(local, time.Now().Add(time.Hour)); !got.Equal(local) {
				errs[i] = fmt.Errorf("loose per-call budget displaced the request deadline")
				return
			}
			tight := time.Now().Add(time.Millisecond)
			if got := Earliest(local, tight); !got.Equal(tight) {
				errs[i] = fmt.Errorf("tight per-call budget did not win")
				return
			}
			if err := Check(local); err != nil {
				errs[i] = fmt.Errorf("fresh deadline already blown: %w", err)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("call %d: %v", i, err)
		}
	}

	// After expiry every concurrent checker sees ErrExceeded — and only
	// ErrExceeded: a transport failure (modeled by context.Canceled) must
	// not be mistaken for a blown budget by errors.Is classification.
	past := time.Now().Add(-time.Millisecond)
	var wg2 sync.WaitGroup
	for i := 0; i < K; i++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			if err := Check(past); !errors.Is(err, ErrExceeded) {
				t.Errorf("Check(past) = %v, want ErrExceeded", err)
			}
		}()
	}
	wg2.Wait()
	if errors.Is(context.Canceled, ErrExceeded) || errors.Is(ErrExceeded, context.Canceled) {
		t.Error("transport-style cancellation conflated with the budget error")
	}
}
