// Package budget provides the cooperative time-budget primitive the
// experiment harness uses to enforce its per-method cutoff (the scaled
// analogue of the paper's three-day limit). Solvers check the deadline
// at coarse granularity — per sweep, per epoch, per few thousand SGD
// steps — and abort with ErrExceeded, so a timed-out method stops
// consuming the machine instead of lingering as an abandoned goroutine.
package budget

import (
	"errors"
	"time"
)

// ErrExceeded is returned by trainers that run past their deadline.
var ErrExceeded = errors.New("time budget exceeded")

// Exceeded reports whether the deadline is set and has passed.
func Exceeded(deadline time.Time) bool {
	return !deadline.IsZero() && time.Now().After(deadline)
}

// Check returns ErrExceeded when the deadline has passed, nil otherwise.
func Check(deadline time.Time) error {
	if Exceeded(deadline) {
		return ErrExceeded
	}
	return nil
}
