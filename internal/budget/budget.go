// Package budget provides the cooperative time-budget primitive the
// experiment harness uses to enforce its per-method cutoff (the scaled
// analogue of the paper's three-day limit). Solvers check the deadline
// at coarse granularity — per sweep, per epoch, per few thousand SGD
// steps — and abort with ErrExceeded, so a timed-out method stops
// consuming the machine instead of lingering as an abandoned goroutine.
package budget

import (
	"errors"
	"time"
)

// ErrExceeded is returned by trainers that run past their deadline.
var ErrExceeded = errors.New("time budget exceeded")

// Exceeded reports whether the deadline is set and has passed.
func Exceeded(deadline time.Time) bool {
	return !deadline.IsZero() && time.Now().After(deadline)
}

// Check returns ErrExceeded when the deadline has passed, nil otherwise.
func Check(deadline time.Time) error {
	if Exceeded(deadline) {
		return ErrExceeded
	}
	return nil
}

// Remaining returns the time left until the deadline, never negative;
// a zero deadline (no budget) reports zero — callers distinguish "no
// budget" by checking deadline.IsZero() first.
func Remaining(deadline time.Time) time.Duration {
	if deadline.IsZero() {
		return 0
	}
	if d := time.Until(deadline); d > 0 {
		return d
	}
	return 0
}

// Earliest returns the tighter of two deadlines, treating the zero time
// as "no deadline" — the composition rule for layered budgets (a server
// config deadline vs. a caller-propagated one): any real deadline beats
// none, and two real deadlines resolve to the earlier.
func Earliest(a, b time.Time) time.Time {
	if a.IsZero() {
		return b
	}
	if b.IsZero() || a.Before(b) {
		return a
	}
	return b
}
