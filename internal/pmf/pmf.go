// Package pmf provides the probability mass functions the paper uses to
// weight path lengths when building the multi-hop matrix H (§2.4):
// Uniform (uniform high-order proximity), Geometric (personalized
// PageRank) and Poisson (heat kernel PageRank).
package pmf

import (
	"fmt"
	"math"
)

// PMF assigns an importance weight ω(ℓ) to hop count ℓ ≥ 0.
type PMF interface {
	// Weight returns ω(ℓ).
	Weight(ell int) float64
	// Name returns a short identifier ("uniform", "geometric", "poisson").
	Name() string
}

// Uniform is the PMF of Eq. (6): ω(ℓ) = 1/τ for 0 ≤ ℓ ≤ τ. Note the paper
// divides by τ, not τ+1, even though ℓ ranges over τ+1 values; we follow
// the paper exactly.
type Uniform struct {
	// Tau is the maximum path half-length considered.
	Tau int
}

// NewUniform returns the Uniform PMF, validating τ ≥ 1.
func NewUniform(tau int) Uniform {
	if tau < 1 {
		panic(fmt.Sprintf("pmf: uniform requires tau >= 1, got %d", tau))
	}
	return Uniform{Tau: tau}
}

// Weight implements PMF.
func (u Uniform) Weight(ell int) float64 {
	if ell < 0 || ell > u.Tau {
		return 0
	}
	return 1 / float64(u.Tau)
}

// Name implements PMF.
func (Uniform) Name() string { return "uniform" }

// Geometric is the PMF of Eq. (7): ω(ℓ) = α(1−α)^ℓ, the decay used by
// personalized PageRank.
type Geometric struct {
	// Alpha is the restart probability, in (0,1).
	Alpha float64
}

// NewGeometric returns the Geometric PMF, validating α ∈ (0,1).
func NewGeometric(alpha float64) Geometric {
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("pmf: geometric requires alpha in (0,1), got %g", alpha))
	}
	return Geometric{Alpha: alpha}
}

// Weight implements PMF.
func (g Geometric) Weight(ell int) float64 {
	if ell < 0 {
		return 0
	}
	return g.Alpha * math.Pow(1-g.Alpha, float64(ell))
}

// Name implements PMF.
func (Geometric) Name() string { return "geometric" }

// Poisson is the PMF of Eq. (8): ω(ℓ) = e^{−λ} λ^ℓ / ℓ!, the weighting of
// heat kernel PageRank. This is the instantiation GEBE^p specializes.
type Poisson struct {
	// Lambda is the (positive) rate parameter.
	Lambda float64
}

// NewPoisson returns the Poisson PMF, validating λ > 0.
func NewPoisson(lambda float64) Poisson {
	if lambda <= 0 {
		panic(fmt.Sprintf("pmf: poisson requires lambda > 0, got %g", lambda))
	}
	return Poisson{Lambda: lambda}
}

// Weight implements PMF. Computed in log space to stay finite for large ℓ.
func (p Poisson) Weight(ell int) float64 {
	if ell < 0 {
		return 0
	}
	lg, _ := math.Lgamma(float64(ell) + 1)
	return math.Exp(-p.Lambda + float64(ell)*math.Log(p.Lambda) - lg)
}

// Name implements PMF.
func (Poisson) Name() string { return "poisson" }

// TruncationMass returns Σ_{ℓ=0}^{tau} ω(ℓ) — how much probability mass a
// truncation at tau retains. Useful for choosing τ for the Geometric and
// Poisson instantiations, whose support is infinite.
func TruncationMass(w PMF, tau int) float64 {
	var s float64
	for ell := 0; ell <= tau; ell++ {
		s += w.Weight(ell)
	}
	return s
}
