package pmf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniformWeights(t *testing.T) {
	u := NewUniform(4)
	for ell := 0; ell <= 4; ell++ {
		if got := u.Weight(ell); got != 0.25 {
			t.Errorf("Weight(%d)=%v want 0.25", ell, got)
		}
	}
	if u.Weight(5) != 0 || u.Weight(-1) != 0 {
		t.Error("weights outside [0,tau] must be zero")
	}
}

func TestUniformPanicsOnBadTau(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewUniform(0)
}

func TestGeometricWeights(t *testing.T) {
	g := NewGeometric(0.5)
	want := []float64{0.5, 0.25, 0.125, 0.0625}
	for ell, w := range want {
		if got := g.Weight(ell); math.Abs(got-w) > 1e-15 {
			t.Errorf("Weight(%d)=%v want %v", ell, got, w)
		}
	}
	if g.Weight(-1) != 0 {
		t.Error("negative ell must weigh zero")
	}
}

func TestGeometricPanicsOnBadAlpha(t *testing.T) {
	for _, a := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha=%v: expected panic", a)
				}
			}()
			NewGeometric(a)
		}()
	}
}

func TestPoissonWeights(t *testing.T) {
	p := NewPoisson(2)
	// ω(0)=e⁻², ω(1)=2e⁻², ω(2)=2e⁻², ω(3)=4/3·e⁻².
	e2 := math.Exp(-2)
	want := []float64{e2, 2 * e2, 2 * e2, 4.0 / 3.0 * e2}
	for ell, w := range want {
		if got := p.Weight(ell); math.Abs(got-w) > 1e-15 {
			t.Errorf("Weight(%d)=%v want %v", ell, got, w)
		}
	}
}

func TestPoissonLargeEllFinite(t *testing.T) {
	p := NewPoisson(1)
	w := p.Weight(500)
	if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
		t.Errorf("Weight(500)=%v not a tiny non-negative number", w)
	}
	if w > 1e-300 {
		t.Errorf("Weight(500)=%v implausibly large", w)
	}
}

func TestPoissonPanicsOnBadLambda(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPoisson(0)
}

func TestTruncationMass(t *testing.T) {
	// Geometric and Poisson sum to ~1 over a long horizon.
	if m := TruncationMass(NewGeometric(0.5), 60); math.Abs(m-1) > 1e-12 {
		t.Errorf("geometric mass=%v", m)
	}
	if m := TruncationMass(NewPoisson(1), 60); math.Abs(m-1) > 1e-12 {
		t.Errorf("poisson mass=%v", m)
	}
	// Uniform sums to (τ+1)/τ per the paper's Eq. (6) convention.
	if m := TruncationMass(NewUniform(5), 5); math.Abs(m-1.2) > 1e-12 {
		t.Errorf("uniform mass=%v want 1.2", m)
	}
}

// Property: all instantiations are non-negative everywhere and
// non-increasing beyond their mode.
func TestPropertyNonNegative(t *testing.T) {
	f := func(seedEll uint8, lam uint8) bool {
		ell := int(seedEll % 64)
		p := NewPoisson(float64(lam%9) + 0.5)
		g := NewGeometric(0.3)
		u := NewUniform(20)
		return p.Weight(ell) >= 0 && g.Weight(ell) >= 0 && u.Weight(ell) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNames(t *testing.T) {
	if NewUniform(1).Name() != "uniform" ||
		NewGeometric(0.5).Name() != "geometric" ||
		NewPoisson(1).Name() != "poisson" {
		t.Error("wrong PMF names")
	}
}
