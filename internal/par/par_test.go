package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPartsRunsEveryPart(t *testing.T) {
	for _, parts := range []int{1, 2, 3, 7, 64} {
		seen := make([]atomic.Bool, parts)
		Parts(parts, func(p int) {
			if seen[p].Swap(true) {
				t.Errorf("parts=%d: part %d ran twice", parts, p)
			}
		})
		for p := range seen {
			if !seen[p].Load() {
				t.Errorf("parts=%d: part %d never ran", parts, p)
			}
		}
	}
}

func TestPartsZeroAndNegative(t *testing.T) {
	var calls atomic.Int64
	Parts(0, func(p int) { calls.Add(1) })
	Parts(-3, func(p int) { calls.Add(1) })
	if calls.Load() != 2 {
		t.Fatalf("degenerate part counts should run f(0) once each, got %d calls", calls.Load())
	}
}

// TestPartsNested pins the no-deadlock property: a part that itself
// fans out must complete even when every pool worker is busy, because
// overflow submissions run inline on the submitter.
func TestPartsNested(t *testing.T) {
	var total atomic.Int64
	Parts(8, func(outer int) {
		Parts(8, func(inner int) {
			total.Add(1)
		})
	})
	if total.Load() != 64 {
		t.Fatalf("nested Parts ran %d inner parts, want 64", total.Load())
	}
}

// TestPartsConcurrent hammers the shared pool from many goroutines; run
// with -race it doubles as the data-race check for the submission path.
func TestPartsConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				Parts(4, func(p int) { total.Add(1) })
			}
		}()
	}
	wg.Wait()
	if want := int64(16 * 50 * 4); total.Load() != want {
		t.Fatalf("concurrent Parts ran %d parts, want %d", total.Load(), want)
	}
}
