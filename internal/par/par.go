// Package par owns the process-wide pool of worker goroutines every
// parallel kernel in the repository runs on — the sparse SpMM engine and
// the dense GEMM/QR engine alike. Centralizing the pool means the
// process schedules one set of GOMAXPROCS workers total, instead of one
// pool per package competing for the same cores.
//
// GEBE's solvers issue thousands of block products per run (t sweeps × τ
// hops for KSI alone), so a per-call fork/join — goroutine allocation,
// scheduling, stack growth — is pure overhead on the hot path. The pool
// is started lazily on first use and lives for the process: workers
// block on the task channel when idle, which costs nothing.
package par

import (
	"runtime"
	"sync"
)

var (
	poolOnce  sync.Once
	poolTasks chan func()
)

func poolStart() {
	n := runtime.GOMAXPROCS(0)
	// Unbuffered by design: a send succeeds only as a direct handoff to
	// a worker already parked on receive. Work is therefore never queued
	// behind busy workers — every submitted part is immediately owned by
	// an idle worker, and anything else runs inline on the submitter.
	// Queuing (any buffer > 0) reintroduces a deadlock: a pool worker
	// whose task fans out again can enqueue a sub-part and then park in
	// Wait, with no worker left to drain the queue.
	poolTasks = make(chan func())
	for i := 0; i < n; i++ {
		go func() {
			for f := range poolTasks {
				f()
			}
		}()
	}
}

// Parts runs f(0), …, f(parts-1) and returns when all parts have
// finished. Part 0 always runs on the calling goroutine; the rest are
// handed off to currently idle pool workers, falling back to inline
// execution when no worker is free. Submission never blocks or queues,
// so a task that itself calls Parts cannot deadlock the pool — every
// outstanding part is either running on some worker or runs inline, and
// a part never waits on its own ancestors.
func Parts(parts int, f func(part int)) {
	if parts <= 1 {
		f(0)
		return
	}
	poolOnce.Do(poolStart)
	var wg sync.WaitGroup
	wg.Add(parts - 1)
	for w := 1; w < parts; w++ {
		task := func(w int) func() {
			return func() {
				defer wg.Done()
				f(w)
			}
		}(w)
		select {
		case poolTasks <- task:
		default:
			task()
		}
	}
	f(0)
	wg.Wait()
}
