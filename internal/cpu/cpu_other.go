//go:build purego || (!amd64 && !arm64)

package cpu

// detect under the purego tag (or on architectures without kernels)
// reports nothing: every dispatch resolves to the scalar Go oracle.
func detect() Features {
	return Features{}
}
