// Package cpu detects the SIMD capabilities of the machine at run time
// and owns the kernel-flavor selection the sparse and dense engines
// dispatch through. It is deliberately leaf-level (stdlib only) so obs,
// sparse, dense, and the commands can all import it.
//
// Three layers compose:
//
//   - Supported() reports what the hardware can do: AVX2/FMA via CPUID
//     (including the XGETBV check that the OS saves ymm state) on amd64,
//     NEON on arm64 (ASIMD is mandatory there). Under the purego build
//     tag, or on any other architecture, it reports nothing.
//   - The GEBE_SIMD environment variable overrides the *default* flavor
//     ("off"/"go" forces scalar Go kernels, "simd" the non-fused vector
//     kernels, "fma" the fused ones); it never changes what Supported()
//     reports, so tests can still opt back in per call through Tuning.
//   - Resolve maps a Tuning's KernelMode to the flavor that will really
//     run, falling back (fma → simd → go) when the hardware or build
//     lacks a level.
//
// The contract the flavors keep: KernelGo and KernelSIMD are bitwise
// identical (the vector kernels replay the scalar accumulation order,
// non-fused on amd64; on arm64 the Go compiler already fuses, so the
// NEON kernels fuse too and KernelFMA is the same code). KernelFMA on
// amd64 contracts each multiply-add into one rounding and is gated by a
// relative-error tolerance instead.
package cpu

import (
	"fmt"
	"os"
	"strings"
	"sync"
)

// Features describes the vector capabilities detection found.
type Features struct {
	// AVX2 means 256-bit vector float kernels are usable (implies AVX
	// and OS ymm-state support). amd64 only.
	AVX2 bool `json:"avx2,omitempty"`
	// FMA means the fused multiply-add variants are usable. amd64 only
	// (on arm64 fusing is the baseline, reported via NEON).
	FMA bool `json:"fma,omitempty"`
	// NEON means 128-bit ASIMD kernels are usable. arm64 only.
	NEON bool `json:"neon,omitempty"`
}

var (
	detectOnce sync.Once
	detected   Features
)

// Supported returns the hardware's vector capabilities, detected once.
// It ignores GEBE_SIMD: the environment changes defaults, not facts.
func Supported() Features {
	detectOnce.Do(func() { detected = detect() })
	return detected
}

// HasSIMD reports whether the non-fused vector flavor exists on this
// hardware and build.
func (f Features) HasSIMD() bool { return f.AVX2 || f.NEON }

// HasFMA reports whether the fused flavor exists. On arm64 NEON implies
// it (FMLA is the baseline there).
func (f Features) HasFMA() bool { return (f.AVX2 && f.FMA) || f.NEON }

// Summary renders the feature set the way run metadata records it:
// "avx2,fma", "avx2", "neon", or "none".
func (f Features) Summary() string {
	var parts []string
	if f.AVX2 {
		parts = append(parts, "avx2")
	}
	if f.FMA {
		parts = append(parts, "fma")
	}
	if f.NEON {
		parts = append(parts, "neon")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// KernelMode selects the inner-kernel flavor a product runs with. The
// zero value is the right default for every caller: vectorized when the
// machine supports it, bitwise identical to the scalar path.
type KernelMode int

const (
	// KernelAuto resolves to the default flavor: KernelSIMD when
	// supported (unless GEBE_SIMD says otherwise), else KernelGo.
	KernelAuto KernelMode = iota
	// KernelGo forces the retained scalar Go kernels — the correctness
	// oracle, and the only flavor under the purego build tag.
	KernelGo
	// KernelSIMD forces the non-fused vector kernels; falls back to
	// KernelGo where unsupported. Bitwise identical to KernelGo.
	KernelSIMD
	// KernelFMA opts into the fused vector kernels; falls back to
	// KernelSIMD, then KernelGo. On amd64 results differ from the
	// scalar path by one rounding per multiply-add (tolerance-gated);
	// on arm64 it is the same code as KernelSIMD.
	KernelFMA
)

// String names the mode as it appears in metrics and run metadata.
func (m KernelMode) String() string {
	switch m {
	case KernelAuto:
		return "auto"
	case KernelGo:
		return "go"
	case KernelSIMD:
		return "simd"
	case KernelFMA:
		return "fma"
	default:
		return fmt.Sprintf("KernelMode(%d)", int(m))
	}
}

// Valid reports whether m is one of the defined modes.
func (m KernelMode) Valid() bool {
	return m >= KernelAuto && m <= KernelFMA
}

var (
	defaultOnce sync.Once
	defaultMode KernelMode
)

// envDefault maps GEBE_SIMD to the mode KernelAuto resolves toward.
// Unknown values behave like "auto" rather than failing: a typo in an
// env var must not change numerical behavior, and auto is the safe
// (bitwise-identical) choice.
func envDefault(val string) KernelMode {
	switch strings.ToLower(strings.TrimSpace(val)) {
	case "off", "go", "scalar":
		return KernelGo
	case "fma":
		return KernelFMA
	default: // "", "auto", "on", "simd", anything else
		return KernelSIMD
	}
}

// Default returns the flavor KernelAuto resolves to on this machine:
// the GEBE_SIMD preference clamped to what Supported() allows.
func Default() KernelMode {
	defaultOnce.Do(func() {
		defaultMode = clamp(envDefault(os.Getenv("GEBE_SIMD")))
	})
	return defaultMode
}

// clamp lowers a mode until the hardware supports it.
func clamp(m KernelMode) KernelMode {
	f := Supported()
	if m == KernelFMA && !f.HasFMA() {
		m = KernelSIMD
	}
	if m == KernelSIMD && !f.HasSIMD() {
		m = KernelGo
	}
	return m
}

// Resolve maps a Tuning's mode to the flavor that will actually run:
// Auto becomes the machine default, explicit requests are clamped to
// what the hardware and build support.
func Resolve(m KernelMode) KernelMode {
	if m == KernelAuto {
		return Default()
	}
	return clamp(m)
}
