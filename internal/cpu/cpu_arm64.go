//go:build arm64 && !purego

package cpu

// detect reports NEON unconditionally: ASIMD with double-precision
// lanes is mandatory in the ARMv8-A baseline Go's arm64 port targets,
// so there is nothing to probe.
func detect() Features {
	return Features{NEON: true}
}
