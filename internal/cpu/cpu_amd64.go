//go:build amd64 && !purego

package cpu

// Implemented in cpuid_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// detect probes CPUID for AVX2 and FMA3. The OSXSAVE + XGETBV dance
// matters: a hypervisor or kernel that does not save ymm state leaves
// the AVX bits set in CPUID while making every VEX instruction fault,
// so all three gates (AVX + OSXSAVE + XCR0 xmm/ymm) must pass before
// the leaf-7 AVX2 bit is believed.
func detect() Features {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return Features{}
	}
	_, _, c1, _ := cpuid(1, 0)
	const (
		cpuidFMA     = 1 << 12
		cpuidOSXSAVE = 1 << 27
		cpuidAVX     = 1 << 28
	)
	if c1&cpuidOSXSAVE == 0 || c1&cpuidAVX == 0 {
		return Features{}
	}
	if xcr0, _ := xgetbv(); xcr0&0x6 != 0x6 { // xmm and ymm state enabled
		return Features{}
	}
	_, b7, _, _ := cpuid(7, 0)
	const cpuidAVX2 = 1 << 5
	if b7&cpuidAVX2 == 0 {
		return Features{}
	}
	return Features{AVX2: true, FMA: c1&cpuidFMA != 0}
}
