package cpu

import "testing"

func TestWidthOf(t *testing.T) {
	cases := map[int]Width{
		0: WidthGeneric, 1: WidthGeneric, 3: WidthGeneric, 5: WidthGeneric,
		4: WidthK4, 8: WidthK8, 16: WidthK16,
		24: WidthPanel8, 32: WidthPanel8, 128: WidthPanel8,
		12: WidthGeneric, // multiple of 8 required past 16, 12 is neither
		17: WidthGeneric, 20: WidthGeneric,
	}
	for k, want := range cases {
		if got := WidthOf(k); got != want {
			t.Errorf("WidthOf(%d) = %v, want %v", k, got, want)
		}
	}
	names := map[Width]string{
		WidthGeneric: "generic", WidthK4: "k4", WidthK8: "k8",
		WidthK16: "k16", WidthPanel8: "panel8",
	}
	for w, want := range names {
		if w.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(w), w.String(), want)
		}
	}
}

// kernelStub lets the table tests observe which registration Pick chose
// without real kernels.
type kernelStub func() string

func stub(name string) kernelStub { return func() string { return name } }

func TestTableFallbackChain(t *testing.T) {
	tb := NewTable[kernelStub](stub("generic"), "generic")
	tb.SetGo(WidthK16, stub("k16"), "k16")
	tb.Register(WidthK16, KernelSIMD, stub("k16+v"), "k16+v")
	tb.Register(WidthK16, KernelFMA, stub("k16+f"), "k16+f")
	tb.Register(WidthK8, KernelSIMD, stub("k8+v"), "k8+v")

	// Pick resolves through the hardware, so exercise the slots directly
	// with modes the machine is guaranteed to support.
	if fn, name := tb.Pick(16, KernelGo); name != "k16" || fn() != "k16" {
		t.Errorf("Pick(16, go) = %q", name)
	}
	if _, name := tb.Pick(5, KernelGo); name != "generic" {
		t.Errorf("Pick(5, go) = %q, want generic", name)
	}

	if !Supported().HasSIMD() {
		t.Skip("no SIMD on this CPU; flavor slots unreachable through Pick")
	}
	if _, name := tb.Pick(16, KernelSIMD); name != "k16+v" {
		t.Errorf("Pick(16, simd) = %q, want k16+v", name)
	}
	// SIMD flavor with no registration for the width falls back to Go.
	if _, name := tb.Pick(4, KernelSIMD); name != "generic" {
		t.Errorf("Pick(4, simd) = %q, want generic fallback", name)
	}
	if Supported().HasFMA() {
		if _, name := tb.Pick(16, KernelFMA); name != "k16+f" {
			t.Errorf("Pick(16, fma) = %q, want k16+f", name)
		}
		// FMA falls back to the SIMD slot before Go.
		if _, name := tb.Pick(8, KernelFMA); name != "k8+v" {
			t.Errorf("Pick(8, fma) = %q, want k8+v fallback", name)
		}
	}
}

func TestVariantsFallbackChain(t *testing.T) {
	v := NewVariants[kernelStub](stub("go"), "go")
	if _, name := v.Pick(KernelGo); name != "go" {
		t.Errorf("Pick(go) = %q", name)
	}
	// No vector registrations: every flavor lands on the Go variant.
	if _, name := v.Pick(KernelSIMD); name != "go" {
		t.Errorf("unregistered Pick(simd) = %q, want go", name)
	}
	v.Register(KernelSIMD, stub("v"), "v")
	if !Supported().HasSIMD() {
		t.Skip("no SIMD on this CPU; flavor slots unreachable through Pick")
	}
	if _, name := v.Pick(KernelSIMD); name != "v" {
		t.Errorf("Pick(simd) = %q, want v", name)
	}
	if Supported().HasFMA() {
		if _, name := v.Pick(KernelFMA); name != "v" {
			t.Errorf("Pick(fma) = %q, want v (simd fallback)", name)
		}
		v.Register(KernelFMA, stub("f"), "f")
		if _, name := v.Pick(KernelFMA); name != "f" {
			t.Errorf("Pick(fma) = %q, want f", name)
		}
	}
}
