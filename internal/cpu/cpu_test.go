package cpu

import "testing"

func TestEnvDefault(t *testing.T) {
	cases := map[string]KernelMode{
		"off":    KernelGo,
		"go":     KernelGo,
		"scalar": KernelGo,
		"OFF":    KernelGo,
		" go ":   KernelGo,
		"fma":    KernelFMA,
		"FMA":    KernelFMA,
		"":       KernelSIMD,
		"auto":   KernelSIMD,
		"on":     KernelSIMD,
		"simd":   KernelSIMD,
		"typo":   KernelSIMD, // unknown values stay on the safe default
	}
	for val, want := range cases {
		if got := envDefault(val); got != want {
			t.Errorf("envDefault(%q) = %v, want %v", val, got, want)
		}
	}
}

func TestResolveClamping(t *testing.T) {
	f := Supported()
	if got := Resolve(KernelGo); got != KernelGo {
		t.Errorf("Resolve(go) = %v, want go", got)
	}
	switch got := Resolve(KernelSIMD); {
	case f.HasSIMD() && got != KernelSIMD:
		t.Errorf("Resolve(simd) = %v on SIMD hardware, want simd", got)
	case !f.HasSIMD() && got != KernelGo:
		t.Errorf("Resolve(simd) = %v without SIMD, want go", got)
	}
	switch got := Resolve(KernelFMA); {
	case f.HasFMA() && got != KernelFMA:
		t.Errorf("Resolve(fma) = %v on FMA hardware, want fma", got)
	case !f.HasFMA() && f.HasSIMD() && got != KernelSIMD:
		t.Errorf("Resolve(fma) = %v with SIMD-only hardware, want simd", got)
	case !f.HasSIMD() && got != KernelGo:
		t.Errorf("Resolve(fma) = %v without SIMD, want go", got)
	}
	// Auto resolves to a concrete flavor, never back to Auto.
	if got := Resolve(KernelAuto); got == KernelAuto {
		t.Error("Resolve(auto) did not resolve to a concrete mode")
	}
}

func TestKernelModeStringsAndValidity(t *testing.T) {
	names := map[KernelMode]string{
		KernelAuto: "auto", KernelGo: "go", KernelSIMD: "simd", KernelFMA: "fma",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
		if !m.Valid() {
			t.Errorf("%v unexpectedly invalid", m)
		}
	}
	if KernelMode(99).Valid() || KernelMode(-1).Valid() {
		t.Error("out-of-range modes reported valid")
	}
}

func TestFeaturesSummary(t *testing.T) {
	cases := []struct {
		f    Features
		want string
	}{
		{Features{}, "none"},
		{Features{AVX2: true}, "avx2"},
		{Features{AVX2: true, FMA: true}, "avx2,fma"},
		{Features{NEON: true}, "neon"},
	}
	for _, c := range cases {
		if got := c.f.Summary(); got != c.want {
			t.Errorf("Summary(%+v) = %q, want %q", c.f, got, c.want)
		}
	}
}

func TestSupportedMatchesBuild(t *testing.T) {
	// Whatever detection found, the flavor predicates must be coherent.
	f := Supported()
	if f.HasFMA() && !f.HasSIMD() {
		t.Errorf("HasFMA without HasSIMD: %+v", f)
	}
	if f.AVX2 && f.NEON {
		t.Errorf("impossible feature combination: %+v", f)
	}
}
