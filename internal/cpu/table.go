package cpu

// The shared kernel-dispatch helper. The sparse and dense engines used
// to carry near-identical switch statements mapping a block width to a
// register-blocked kernel; both now build a Table, the vector kernels
// register into it from one init per package, and Pick applies the same
// width classification and flavor fallback everywhere. The kernel
// signature differs per engine, hence the type parameter.

// Width classifies a block width into the kernel classes both engines
// specialize: exact 4/8/16 columns, any wider multiple of 8 (tiled as
// 8-column panels), and everything else.
type Width int

const (
	WidthGeneric Width = iota
	WidthK4
	WidthK8
	WidthK16
	WidthPanel8
	numWidths
)

// WidthOf maps a column count to its kernel class — the one width
// classification both engines share.
func WidthOf(k int) Width {
	switch {
	case k == 4:
		return WidthK4
	case k == 8:
		return WidthK8
	case k == 16:
		return WidthK16
	case k > 16 && k%8 == 0:
		return WidthPanel8
	default:
		return WidthGeneric
	}
}

// String names the class the way kernel metrics and BENCH reports do.
func (w Width) String() string {
	switch w {
	case WidthK4:
		return "k4"
	case WidthK8:
		return "k8"
	case WidthK16:
		return "k16"
	case WidthPanel8:
		return "panel8"
	default:
		return "generic"
	}
}

// entry is one registered kernel plus the name it reports.
type entry[K any] struct {
	fn   K
	name string
	ok   bool
}

// Table maps (width, flavor) to a kernel. The Go flavor is complete by
// construction (set at package init of the owning engine); the SIMD and
// FMA flavors are sparse — widths without a vector kernel fall back to
// the Go entry, and FMA falls back to SIMD before Go, mirroring
// Resolve's hardware fallback.
type Table[K any] struct {
	goFl   [numWidths]entry[K]
	simdFl [numWidths]entry[K]
	fmaFl  [numWidths]entry[K]
}

// NewTable builds a table whose every width starts at the generic Go
// kernel; SetGo overrides the specialized widths.
func NewTable[K any](generic K, genericName string) *Table[K] {
	t := &Table[K]{}
	for w := Width(0); w < numWidths; w++ {
		t.goFl[w] = entry[K]{fn: generic, name: genericName, ok: true}
	}
	return t
}

// SetGo installs the scalar Go kernel for a width class.
func (t *Table[K]) SetGo(w Width, fn K, name string) {
	t.goFl[w] = entry[K]{fn: fn, name: name, ok: true}
}

// Register installs a vector kernel for a width class under the given
// flavor (KernelSIMD or KernelFMA; anything else is ignored). The name
// should carry the instruction-set suffix ("k16+avx2") so metrics and
// bench output attribute timings to the code that ran.
func (t *Table[K]) Register(w Width, mode KernelMode, fn K, name string) {
	e := entry[K]{fn: fn, name: name, ok: true}
	switch mode {
	case KernelSIMD:
		t.simdFl[w] = e
	case KernelFMA:
		t.fmaFl[w] = e
	}
}

// Pick returns the kernel and its reporting name for a k-column block
// under the resolved mode.
func (t *Table[K]) Pick(k int, mode KernelMode) (K, string) {
	w := WidthOf(k)
	switch Resolve(mode) {
	case KernelFMA:
		if e := t.fmaFl[w]; e.ok {
			return e.fn, e.name
		}
		fallthrough
	case KernelSIMD:
		if e := t.simdFl[w]; e.ok {
			return e.fn, e.name
		}
	}
	e := t.goFl[w]
	return e.fn, e.name
}

// Variants is the width-free sibling of Table for dispatches that pick
// a single blocked kernel by shape thresholds rather than by width
// class (the dense A·Bᵀ dot4 and Aᵀ·B 2×4-tile kernels).
type Variants[K any] struct {
	goFl, simdFl, fmaFl entry[K]
}

// NewVariants builds a variant set around the scalar Go kernel.
func NewVariants[K any](fn K, name string) *Variants[K] {
	return &Variants[K]{goFl: entry[K]{fn: fn, name: name, ok: true}}
}

// Register installs a vector variant, as in Table.Register.
func (v *Variants[K]) Register(mode KernelMode, fn K, name string) {
	e := entry[K]{fn: fn, name: name, ok: true}
	switch mode {
	case KernelSIMD:
		v.simdFl = e
	case KernelFMA:
		v.fmaFl = e
	}
}

// Pick returns the variant for the resolved mode, with the same
// fma → simd → go fallback as Table.Pick.
func (v *Variants[K]) Pick(mode KernelMode) (K, string) {
	switch Resolve(mode) {
	case KernelFMA:
		if v.fmaFl.ok {
			return v.fmaFl.fn, v.fmaFl.name
		}
		fallthrough
	case KernelSIMD:
		if v.simdFl.ok {
			return v.simdFl.fn, v.simdFl.name
		}
	}
	return v.goFl.fn, v.goFl.name
}
