package gebe

// End-to-end integration tests across the whole stack: generator →
// k-core → split → embedding → both downstream tasks, plus the
// persistence round trip — the path cmd/gebe + cmd/gebe-eval automate.

import (
	"errors"
	"math"
	"testing"
	"time"

	"gebe/internal/budget"
	"gebe/internal/eval"
	"gebe/internal/gen"
)

func TestEndToEndRecommendation(t *testing.T) {
	g, err := gen.LatentFactor(gen.LFConfig{
		NU: 300, NV: 120, NE: 4500, Clusters: 6, Skew: 0.6,
		CrossRate: 0.2, Weighted: true, MinDegree: 3, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	core3, _, _ := g.KCore(3)
	train, test := core3.Split(0.6, 21)
	emb, err := Embed(train, Options{K: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res := eval.TopN(train, test, emb.U, emb.V, 10, 2)
	if res.Users == 0 {
		t.Fatal("no users evaluated")
	}
	// The planted structure must be learnable: far better than the
	// ~|truth|/|V| ≈ 0.08 random baseline.
	if res.F1 < 0.15 {
		t.Errorf("end-to-end F1@10 = %.3f too low for planted structure", res.F1)
	}
	// And a random embedding must do much worse.
	randEmb, err := Embed(train, Options{K: 16, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	shuffleRows(randEmb)
	randRes := eval.TopN(train, test, randEmb.U, randEmb.V, 10, 2)
	if randRes.F1 >= res.F1 {
		t.Errorf("shuffled embedding F1 %.3f >= trained %.3f", randRes.F1, res.F1)
	}
}

// shuffleRows destroys the embedding's structure while keeping its
// value distribution, by reversing the row order of U.
func shuffleRows(e *Embedding) {
	n := e.U.Rows
	for i := 0; i < n/2; i++ {
		a := e.U.Row(i)
		b := e.U.Row(n - 1 - i)
		for j := range a {
			a[j], b[j] = b[j], a[j]
		}
	}
}

func TestEndToEndLinkPrediction(t *testing.T) {
	g, err := gen.LatentFactor(gen.LFConfig{
		NU: 300, NV: 150, NE: 4000, Clusters: 6, Skew: 0.6,
		CrossRate: 0.2, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	train, removed := g.Split(0.6, 29)
	emb, err := Embed(train, Options{K: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eval.LinkPred(g, train, removed, emb.U, emb.V, eval.LinkPredOptions{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if res.AUCROC < 0.6 {
		t.Errorf("end-to-end AUC-ROC %.3f barely above chance", res.AUCROC)
	}
}

func TestDeadlinePropagation(t *testing.T) {
	g, err := gen.ER(500, 500, 5000, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = GEBE(g, Options{K: 8, Deadline: time.Now().Add(-time.Second)})
	if err == nil || !errorIs(err, budget.ErrExceeded) {
		t.Errorf("GEBE with expired deadline returned %v", err)
	}
	for _, f := range []func(*Graph, Options) (*Embedding, error){MHPBNE, MHSBNE} {
		if _, err := f(g, Options{K: 8, Deadline: time.Now().Add(-time.Second)}); err == nil {
			t.Error("ablation ignored expired deadline")
		}
	}
}

func errorIs(err, target error) bool { return errors.Is(err, target) }

func TestPersistenceAcrossPipeline(t *testing.T) {
	g, err := gen.ER(50, 40, 400, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := g.SaveEdgeList(dir + "/g.tsv"); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(dir + "/g.tsv")
	if err != nil {
		t.Fatal(err)
	}
	// Same graph after round trip (indices preserved because labels are
	// written in index order for generated graphs).
	if g2.NU != g.NU || g2.NV != g.NV || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("graph round trip changed shape: %v vs %v", g2.Stats(), g.Stats())
	}
	emb, err := Embed(g2, Options{K: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveEmbedding(dir+"/e.tsv", emb); err != nil {
		t.Fatal(err)
	}
	emb2, err := LoadEmbedding(dir + "/e.tsv")
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			if math.Abs(emb.Score(u, v)-emb2.Score(u, v)) > 1e-8 {
				t.Fatalf("score (%d,%d) changed across persistence", u, v)
			}
		}
	}
}

func TestKCoreThenEmbedHandlesRemappedIndices(t *testing.T) {
	// k-core re-densifies indices; embeddings must line up with the core
	// graph's universe, not the original's.
	g, err := gen.LatentFactor(gen.LFConfig{
		NU: 200, NV: 80, NE: 1500, Clusters: 4, Skew: 0.8,
		CrossRate: 0.2, Weighted: true, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	cg, uMap, vMap := g.KCore(4)
	if cg.NU == 0 {
		t.Skip("4-core empty for this seed")
	}
	if len(uMap) != cg.NU || len(vMap) != cg.NV {
		t.Fatal("k-core maps inconsistent")
	}
	emb, err := Embed(cg, Options{K: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if emb.U.Rows != cg.NU || emb.V.Rows != cg.NV {
		t.Fatal("embedding shape does not match core graph")
	}
}
