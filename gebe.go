// Package gebe is a from-scratch Go implementation of "Scalable and
// Effective Bipartite Network Embedding" (Yang, Shi, Huang, Xiao;
// SIGMOD 2022): the GEBE framework for bipartite network embedding and
// its Poisson-specialized solver GEBE^p, plus the multi-hop homogeneous
// similarity (MHS) and multi-hop heterogeneous proximity (MHP) measures
// they preserve.
//
// Quick start:
//
//	g, _ := gebe.LoadGraph("ratings.tsv")
//	emb, _ := gebe.Embed(g, gebe.Options{K: 128})
//	score := emb.Score(user, item) // strength of association
//
// The package re-exports the stable core types; the heavy machinery
// (sparse/dense linear algebra, randomized SVD, baselines, benchmark
// harness) lives under internal/.
package gebe

import (
	"io"

	"gebe/internal/bigraph"
	"gebe/internal/core"
	"gebe/internal/pmf"
)

// Graph is a weighted undirected bipartite graph G = (U, V, E).
type Graph = bigraph.Graph

// Edge is one weighted inter-set edge.
type Edge = bigraph.Edge

// Options configures the solvers; see the field docs for the paper
// defaults (Poisson λ=1, τ=20, t=200, ε=0.1, k required).
type Options = core.Options

// Embedding holds the k-dimensional node vectors for both sides plus
// solver diagnostics.
type Embedding = core.Embedding

// PMF is a path-length weighting (Uniform, Geometric or Poisson; §2.4).
type PMF = pmf.PMF

// NewGraph validates and constructs a bipartite graph.
func NewGraph(nu, nv int, edges []Edge) (*Graph, error) {
	return bigraph.New(nu, nv, edges)
}

// LoadGraph reads a whitespace-separated edge list ("u v" or "u v w")
// from a file; node identifiers may be arbitrary strings.
func LoadGraph(path string) (*Graph, error) {
	return bigraph.LoadEdgeList(path)
}

// ReadGraph is LoadGraph over an io.Reader.
func ReadGraph(r io.Reader) (*Graph, error) {
	return bigraph.ReadEdgeList(r)
}

// Embed computes embeddings with GEBE^p (Algorithm 2) — the paper's
// recommended configuration and the default entry point.
func Embed(g *Graph, opt Options) (*Embedding, error) {
	return core.GEBEP(g, opt)
}

// GEBE computes embeddings with the generic Algorithm 1 under the PMF
// instantiation selected by opt.PMF (default Poisson).
func GEBE(g *Graph, opt Options) (*Embedding, error) {
	return core.GEBE(g, opt)
}

// GEBEP computes embeddings with the Poisson-specialized Algorithm 2.
func GEBEP(g *Graph, opt Options) (*Embedding, error) {
	return core.GEBEP(g, opt)
}

// MHPBNE is the MHP-only ablation baseline of §6.1.
func MHPBNE(g *Graph, opt Options) (*Embedding, error) {
	return core.MHPBNE(g, opt)
}

// MHSBNE is the MHS-only ablation baseline of §6.1.
func MHSBNE(g *Graph, opt Options) (*Embedding, error) {
	return core.MHSBNE(g, opt)
}

// Uniform returns the Uniform PMF of Eq. (6) with maximum hop count tau.
func Uniform(tau int) PMF { return pmf.NewUniform(tau) }

// Geometric returns the Geometric PMF of Eq. (7) with decay alpha∈(0,1).
func Geometric(alpha float64) PMF { return pmf.NewGeometric(alpha) }

// Poisson returns the Poisson PMF of Eq. (8) with rate lambda>0.
func Poisson(lambda float64) PMF { return pmf.NewPoisson(lambda) }
