#!/usr/bin/env python3
"""Fold the gebe-bench outputs in results/ into EXPERIMENTS.md's
placeholder slots. One-shot maintenance script for this repository."""
import re
import sys

ROOT = "/root/repo"

def block(path, grep=None, maxlines=None):
    try:
        lines = open(f"{ROOT}/results/{path}").read().splitlines()
    except FileNotFoundError:
        return "*(run did not complete; regenerate with cmd/gebe-bench)*"
    # Drop the big banner line.
    lines = [l.rstrip() for l in lines if not l.startswith("####")]
    while lines and not lines[0]:
        lines.pop(0)
    if maxlines:
        lines = lines[:maxlines]
    return "```\n" + "\n".join(lines).strip() + "\n```"

def main():
    md = open(f"{ROOT}/EXPERIMENTS.md").read()
    subs = {
        "<<TABLE4>>": block("table4.txt"),
        "<<TABLE5>>": block("table5.txt"),
        "<<FIG2>>": block("fig2.txt"),
        "<<FIG3>>": block("fig3.txt"),
        "<<FIG45>>": block("fig4.txt") + "\n\n" + block("fig5.txt"),
        "<<TABLEN>>": block("tablen.txt"),
        "<<ABLATION>>": block("ablation.txt"),
    }
    for k, v in subs.items():
        if k in md:
            md = md.replace(k, v)
    open(f"{ROOT}/EXPERIMENTS.md", "w").write(md)
    missing = re.findall(r"<<[A-Z0-9]+>>", md)
    print("filled; remaining placeholders:", missing)

if __name__ == "__main__":
    sys.exit(main())
