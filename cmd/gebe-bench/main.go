// Command gebe-bench regenerates the paper's tables and figures on the
// synthetic stand-in datasets.
//
// Usage:
//
//	gebe-bench -exp table4            # top-N recommendation (Table 4)
//	gebe-bench -exp table5            # link prediction (Table 5)
//	gebe-bench -exp fig2              # embedding time, all methods (Figure 2)
//	gebe-bench -exp fig3              # scalability on ER graphs (Figure 3)
//	gebe-bench -exp fig4              # parameter sweeps, recommendation (Figure 4)
//	gebe-bench -exp fig5              # parameter sweeps, link prediction (Figure 5)
//	gebe-bench -exp all
//
// Restrict work with -datasets dblp,movielens and -methods "GEBE^p,NRP".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gebe/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table4|table5|fig2|fig3|fig4|fig5|tablen|ablation|all")
		k        = flag.Int("k", 32, "embedding dimensionality")
		seed     = flag.Uint64("seed", 1, "random seed")
		threads  = flag.Int("threads", 1, "solver threads (paper uses 1)")
		budget   = flag.Duration("budget", 60*time.Second, "per-method time budget (paper: 3 days)")
		datasets = flag.String("datasets", "", "comma-separated dataset filter")
		methods  = flag.String("methods", "", "comma-separated method filter")
	)
	flag.Parse()

	cfg := experiments.Config{
		K: *k, Seed: *seed, Threads: *threads, TimeBudget: *budget,
		Datasets: splitList(*datasets), Methods: splitList(*methods),
		Out: os.Stdout,
	}
	extensions := map[string]bool{"tablen": true, "ablation": true}
	run := func(name string, f func(experiments.Config) error) {
		if *exp != name && (*exp != "all" || extensions[name]) {
			return
		}
		fmt.Printf("\n############ %s ############\n", name)
		if err := f(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "gebe-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	run("table4", func(c experiments.Config) error { _, err := experiments.Table4(c); return err })
	run("table5", func(c experiments.Config) error { _, err := experiments.Table5(c); return err })
	run("fig2", func(c experiments.Config) error { _, err := experiments.Fig2(c); return err })
	run("fig3", func(c experiments.Config) error { _, err := experiments.Fig3(c); return err })
	run("fig4", func(c experiments.Config) error { _, err := experiments.Fig4(c); return err })
	run("fig5", func(c experiments.Config) error { _, err := experiments.Fig5(c); return err })
	run("tablen", func(c experiments.Config) error { _, err := experiments.TableN(c, nil); return err })
	run("ablation", func(c experiments.Config) error { _, err := experiments.Ablations(c); return err })

	switch *exp {
	case "table4", "table5", "fig2", "fig3", "fig4", "fig5", "tablen", "ablation", "all":
	default:
		fmt.Fprintf(os.Stderr, "gebe-bench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
