// Command gebe-bench regenerates the paper's tables and figures on the
// synthetic stand-in datasets.
//
// Usage:
//
//	gebe-bench -exp table4            # top-N recommendation (Table 4)
//	gebe-bench -exp table5            # link prediction (Table 5)
//	gebe-bench -exp fig2              # embedding time, all methods (Figure 2)
//	gebe-bench -exp fig3              # scalability on ER graphs (Figure 3)
//	gebe-bench -exp fig4              # parameter sweeps, recommendation (Figure 4)
//	gebe-bench -exp fig5              # parameter sweeps, link prediction (Figure 5)
//	gebe-bench -exp incremental       # warm-start vs cold retrain on a grown graph
//	gebe-bench -exp all
//	gebe-bench -kernels -json results/  # SpMM microbench → results/BENCH_SPMM.json
//	gebe-bench -dense -json results/    # dense GEMM/QR microbench → results/BENCH_DENSE.json
//
// Restrict work with -datasets dblp,movielens and -methods "GEBE^p,NRP".
//
// Observability: -v/-vv stream solver logs, -trace FILE writes the phase
// trace, -debug-addr :0 serves live /metrics and /debug/pprof, and each
// experiment drops a RUN_<exp>.json manifest under -manifest-dir. Use
// -json PATH for a machine-readable results report (method, dataset,
// elapsed seconds, metric scores): one file at PATH, or per-experiment
// BENCH_<exp>.json files when PATH is an existing directory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"gebe/internal/dense"
	"gebe/internal/experiments"
	"gebe/internal/obs"
	"gebe/internal/sparse"
)

// simdFMATol bounds the fused flavor's elementwise deviation from the
// Go oracle across the bench grids. Wider than the unit tests' 1e-12:
// the grids reduce over up to 20000-term inner products, so the
// re-rounding headroom scales with the reduction length.
const simdFMATol = 1e-9

// benchResult is one experiment's entry in the -json report.
type benchResult struct {
	Experiment     string  `json:"experiment"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Rows           any     `json:"rows"`
}

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment: table4|table5|fig2|fig3|fig4|fig5|tablen|ablation|incremental|all")
		k           = flag.Int("k", 32, "embedding dimensionality")
		seed        = flag.Uint64("seed", 1, "random seed")
		threads     = flag.Int("threads", 1, "solver threads (paper uses 1)")
		budget      = flag.Duration("budget", 60*time.Second, "per-method time budget (paper: 3 days)")
		ddl         = flag.Duration("deadline", 0, "overall harness budget; per-cell deadlines are clamped to it (0 = unlimited)")
		datasets    = flag.String("datasets", "", "comma-separated dataset filter")
		methods     = flag.String("methods", "", "comma-separated method filter")
		jsonPath    = flag.String("json", "", "write machine-readable results to this file (or BENCH_<exp>.json files if a directory)")
		manifestDir = flag.String("manifest-dir", "results", "directory for RUN_<exp>.json run manifests (empty disables)")
		kernelBench = flag.Bool("kernels", false, "run the SpMM kernel microbench (legacy vs tuned engine) instead of the paper experiments")
		denseBench  = flag.Bool("dense", false, "run the dense engine microbench (legacy vs blocked GEMM/QR) instead of the paper experiments")
		annBench    = flag.Bool("ann", false, "run the approximate-retrieval bench (IVF probe sweep vs exact scorer) instead of the paper experiments")
		quick       = flag.Bool("quick", false, "with -dense/-ann: CI-smoke grid (small shapes, short timing spans)")
	)
	cli := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	stop, err := cli.Start("gebe-bench")
	if err != nil {
		fmt.Fprintln(os.Stderr, "gebe-bench:", err)
		os.Exit(1)
	}
	if cli.Active() {
		sparse.EnableMetrics(obs.DefaultRegistry())
		dense.EnableMetrics(obs.DefaultRegistry())
	}

	if *kernelBench {
		start := time.Now()
		rows := runKernelBench(os.Stdout, runtime.GOMAXPROCS(0))
		rep := []benchResult{{
			Experiment: "SPMM", ElapsedSeconds: time.Since(start).Seconds(), Rows: rows,
		}}
		if *jsonPath != "" {
			if err := writeReport(*jsonPath, rep); err != nil {
				fmt.Fprintf(os.Stderr, "gebe-bench: writing -json report: %v\n", err)
				os.Exit(1)
			}
		}
		stop()
		// A vector kernel that does not reproduce the Go oracle is a
		// correctness failure, not a slow run.
		if rows.Summary["simd_bitwise"] != 1 || rows.Summary["fma_max_rel_err"] > simdFMATol {
			fmt.Fprintf(os.Stderr, "gebe-bench: SIMD kernels diverge from the Go oracle (bitwise %v, fma rel err %.3e)\n",
				rows.Summary["simd_bitwise"] == 1, rows.Summary["fma_max_rel_err"])
			os.Exit(1)
		}
		return
	}

	if *denseBench {
		start := time.Now()
		rows := runDenseBench(os.Stdout, runtime.GOMAXPROCS(0), *quick)
		rep := []benchResult{{
			Experiment: "DENSE", ElapsedSeconds: time.Since(start).Seconds(), Rows: rows,
		}}
		if *jsonPath != "" {
			if err := writeReport(*jsonPath, rep); err != nil {
				fmt.Fprintf(os.Stderr, "gebe-bench: writing -json report: %v\n", err)
				os.Exit(1)
			}
		}
		stop()
		// Divergence is a correctness failure, not a slow run: CI points
		// its smoke step here.
		if rows.Summary["max_abs_diff"] > 1e-12 || rows.Summary["all_fma_match"] != 1 {
			fmt.Fprintf(os.Stderr, "gebe-bench: dense engine diverges from legacy (max |diff| %.3e, fma match %v)\n",
				rows.Summary["max_abs_diff"], rows.Summary["all_fma_match"] == 1)
			os.Exit(1)
		}
		if rows.Summary["simd_bitwise"] != 1 || rows.Summary["fma_max_rel_err"] > simdFMATol {
			fmt.Fprintf(os.Stderr, "gebe-bench: SIMD kernels diverge from the Go oracle (bitwise %v, fma rel err %.3e)\n",
				rows.Summary["simd_bitwise"] == 1, rows.Summary["fma_max_rel_err"])
			os.Exit(1)
		}
		return
	}

	if *annBench {
		start := time.Now()
		rows, bitwise := runANNBench(os.Stdout, runtime.GOMAXPROCS(0), *quick)
		rep := []benchResult{{
			Experiment: "ANN", ElapsedSeconds: time.Since(start).Seconds(), Rows: rows,
		}}
		if *jsonPath != "" {
			if err := writeReport(*jsonPath, rep); err != nil {
				fmt.Fprintf(os.Stderr, "gebe-bench: writing -json report: %v\n", err)
				os.Exit(1)
			}
		}
		stop()
		// A full probe that is not bitwise-identical to the exact scorer is
		// a correctness failure, not an accuracy trade-off.
		if !bitwise {
			fmt.Fprintln(os.Stderr, "gebe-bench: full-probe retrieval diverges from the exact scorer")
			os.Exit(1)
		}
		return
	}

	cfg := experiments.Config{
		K: *k, Seed: *seed, Threads: *threads, TimeBudget: *budget,
		Datasets: splitList(*datasets), Methods: splitList(*methods),
		Out: os.Stdout, ManifestDir: *manifestDir, Trace: obs.DefaultTrace(),
	}
	if *ddl > 0 {
		cfg.Deadline = time.Now().Add(*ddl)
	}
	var report []benchResult
	run := func(name string, f func(experiments.Config) (any, error)) {
		if *exp != name && (*exp != "all" || extensions[name]) {
			return
		}
		fmt.Printf("\n############ %s ############\n", name)
		start := time.Now()
		rows, err := f(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gebe-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		report = append(report, benchResult{
			Experiment: name, ElapsedSeconds: time.Since(start).Seconds(), Rows: rows,
		})
	}
	run("table4", func(c experiments.Config) (any, error) { return experiments.Table4(c) })
	run("table5", func(c experiments.Config) (any, error) { return experiments.Table5(c) })
	run("fig2", func(c experiments.Config) (any, error) { return experiments.Fig2(c) })
	run("fig3", func(c experiments.Config) (any, error) { return experiments.Fig3(c) })
	run("fig4", func(c experiments.Config) (any, error) { return experiments.Fig4(c) })
	run("fig5", func(c experiments.Config) (any, error) { return experiments.Fig5(c) })
	run("tablen", func(c experiments.Config) (any, error) { return experiments.TableN(c, nil) })
	run("ablation", func(c experiments.Config) (any, error) { return experiments.Ablations(c) })
	run("incremental", func(c experiments.Config) (any, error) { return experiments.Incremental(c) })

	switch *exp {
	case "table4", "table5", "fig2", "fig3", "fig4", "fig5", "tablen", "ablation", "incremental", "all":
	default:
		fmt.Fprintf(os.Stderr, "gebe-bench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if *jsonPath != "" {
		if err := writeReport(*jsonPath, report); err != nil {
			fmt.Fprintf(os.Stderr, "gebe-bench: writing -json report: %v\n", err)
			os.Exit(1)
		}
	}
	stop()
}

// extensions are the appendix experiments "-exp all" skips.
var extensions = map[string]bool{"tablen": true, "ablation": true, "incremental": true}

// writeReport writes the -json results: BENCH_<exp>.json per experiment
// when path is an existing directory, otherwise a single file holding
// the lone experiment's entry or the list of all of them.
func writeReport(path string, report []benchResult) error {
	if info, err := os.Stat(path); err == nil && info.IsDir() {
		for _, r := range report {
			out := filepath.Join(path, "BENCH_"+r.Experiment+".json")
			if err := writeJSON(out, r); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "gebe-bench: wrote %s\n", out)
		}
		return nil
	}
	var v any = report
	if len(report) == 1 {
		v = report[0]
	}
	if err := writeJSON(path, v); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "gebe-bench: wrote %s\n", path)
	return nil
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
