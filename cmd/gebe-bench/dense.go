package main

import (
	"fmt"
	"io"
	"math/rand/v2"
	"time"

	"gebe/internal/dense"
	"gebe/internal/obs"
)

// The -dense microbench compares the pre-engine dense baseline
// (StrategyLegacy: serial generic GEMM loops, column-order Householder
// QR) against the engine (StrategyAuto: register-blocked kernels,
// row-major panel-blocked QR) on the tall-block shapes the solvers
// produce: n×k operands with n the node count and k the embedding or
// Krylov width. Each cell cross-checks the strategies — outputs must
// agree to 1e-12 (the sequential engine paths are bitwise identical by
// construction; parallel Aᵀ·B reduction is the one tolerance case) and
// both must book identical dense_gemm_fma_total counts.

// denseCell is one (op, n, k) measurement in BENCH_DENSE.json.
type denseCell struct {
	Op            string  `json:"op"` // "mul" (A·B), "tmul" (Aᵀ·B), "mult" (A·Bᵀ), "qr"
	N             int     `json:"n"`
	K             int     `json:"k"`
	LegacySeconds float64 `json:"legacy_seconds"`
	TunedSeconds  float64 `json:"tuned_seconds"`
	Speedup       float64 `json:"speedup"`
	MaxAbsDiff    float64 `json:"max_abs_diff"`
	FMAPerCall    float64 `json:"fma_per_call"`
	FMAMatch      bool    `json:"fma_match"`
}

// denseReport is the Rows payload of the DENSE entry in the -json report.
type denseReport struct {
	GOMAXPROCS int                `json:"gomaxprocs"`
	Cells      []denseCell        `json:"cells"`
	Summary    map[string]float64 `json:"summary"`
}

// denseFMAForCall runs f once against a fresh metrics registry and
// returns the multiply-adds it booked on dense_gemm_fma_total.
func denseFMAForCall(f func()) float64 {
	reg := obs.NewRegistry()
	dense.EnableMetrics(reg)
	defer dense.EnableMetrics(nil)
	f()
	return reg.Counter("dense_gemm_fma_total", "").Value()
}

// runDenseBench executes the dense engine microbench grid and returns
// the BENCH_DENSE.json payload. quick shrinks the grid and the timing
// span to CI-smoke size.
func runDenseBench(out io.Writer, gomaxprocs int, quick bool) denseReport {
	ns := []int{2000, 20000}
	ks := []int{8, 16, 32, 128}
	minSpan := 200 * time.Millisecond
	if quick {
		ns = []int{2000}
		ks = []int{8, 32}
		minSpan = 50 * time.Millisecond
	}
	legacy := dense.Tuning{Strategy: dense.StrategyLegacy}
	tuned := dense.Tuning{Threads: gomaxprocs}

	rep := denseReport{GOMAXPROCS: gomaxprocs, Summary: map[string]float64{}}
	fmt.Fprintf(out, "%-5s %6s %4s  %12s %12s %8s %10s\n",
		"op", "n", "k", "legacy", "tuned", "speedup", "maxdiff")
	for _, n := range ns {
		for _, k := range ks {
			a := dense.Random(n, k, rand.New(rand.NewPCG(11, uint64(n+k))))
			b := dense.Random(n, k, rand.New(rand.NewPCG(13, uint64(n-k))))
			s := dense.Random(k, k, rand.New(rand.NewPCG(17, uint64(k))))
			for _, op := range []string{"mul", "tmul", "mult", "qr"} {
				var runLegacy, runTuned func()
				var ref, got *dense.Matrix
				var refR, gotR *dense.Matrix
				switch op {
				case "mul": // tall · small: the KSI projection shape
					runLegacy = func() { ref = dense.MulOpts(a, s, legacy) }
					runTuned = func() { got = dense.MulOpts(a, s, tuned) }
				case "tmul": // tallᵀ · tall: the Gram/subspace-overlap shape
					runLegacy = func() { ref = dense.TMulOpts(a, b, legacy) }
					runTuned = func() { got = dense.TMulOpts(a, b, tuned) }
				case "mult": // tall · smallᵀ: the eval scoring shape
					runLegacy = func() { ref = dense.MulTOpts(a, s, legacy) }
					runTuned = func() { got = dense.MulTOpts(a, s, tuned) }
				case "qr":
					runLegacy = func() { ref, refR = dense.QROpts(a, legacy) }
					runTuned = func() { got, gotR = dense.QROpts(a, tuned) }
				}
				cell := denseCell{Op: op, N: n, K: k}
				fmaLegacy := denseFMAForCall(runLegacy)
				fmaTuned := denseFMAForCall(runTuned)
				cell.FMAPerCall = fmaTuned
				cell.FMAMatch = fmaLegacy == fmaTuned && fmaTuned > 0
				cell.MaxAbsDiff = dense.Sub(ref, got).MaxAbs()
				if op == "qr" {
					if d := dense.Sub(refR, gotR).MaxAbs(); d > cell.MaxAbsDiff {
						cell.MaxAbsDiff = d
					}
				}
				cell.LegacySeconds = timeProduct(runLegacy, minSpan)
				cell.TunedSeconds = timeProduct(runTuned, minSpan)
				if cell.TunedSeconds > 0 {
					cell.Speedup = cell.LegacySeconds / cell.TunedSeconds
				}
				rep.Cells = append(rep.Cells, cell)
				fmt.Fprintf(out, "%-5s %6d %4d  %10.3fms %10.3fms %7.2fx %10.2e\n",
					op, n, k, cell.LegacySeconds*1e3, cell.TunedSeconds*1e3,
					cell.Speedup, cell.MaxAbsDiff)
			}
		}
	}

	// Summary scalars the CI acceptance check and README point at.
	allFMA, maxDiff := 1.0, 0.0
	qrBest, qrMin := 0.0, 0.0
	gemmBest := map[string]float64{"mul": 0, "tmul": 0, "mult": 0}
	for _, c := range rep.Cells {
		if !c.FMAMatch {
			allFMA = 0
		}
		if c.MaxAbsDiff > maxDiff {
			maxDiff = c.MaxAbsDiff
		}
		if c.Op == "qr" {
			if c.Speedup > qrBest {
				qrBest = c.Speedup
			}
			// Min over k≥16: at k=8 the factorization is a single panel,
			// so blocking has nothing to aggregate and the strategies
			// roughly tie (same convention as the SpMM summary, whose
			// minimum skips the break-even tiny blocks).
			if c.K >= 16 && (qrMin == 0 || c.Speedup < qrMin) {
				qrMin = c.Speedup
			}
			continue
		}
		if c.Speedup > gemmBest[c.Op] {
			gemmBest[c.Op] = c.Speedup
		}
	}
	rep.Summary["qr_speedup_best"] = qrBest
	rep.Summary["qr_speedup_min"] = qrMin
	rep.Summary["mul_speedup_best"] = gemmBest["mul"]
	rep.Summary["tmul_speedup_best"] = gemmBest["tmul"]
	rep.Summary["mult_speedup_best"] = gemmBest["mult"]
	rep.Summary["all_fma_match"] = allFMA
	rep.Summary["max_abs_diff"] = maxDiff
	fmt.Fprintf(out, "\nQR speedup: min %.2fx (k≥16), best %.2fx\n", qrMin, qrBest)
	fmt.Fprintf(out, "GEMM best speedup: mul %.2fx, tmul %.2fx, mult %.2fx\n",
		gemmBest["mul"], gemmBest["tmul"], gemmBest["mult"])
	fmt.Fprintf(out, "fma counts identical: %v; max |diff|: %.2e\n", allFMA == 1, maxDiff)
	return rep
}
