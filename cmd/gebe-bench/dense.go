package main

import (
	"fmt"
	"io"
	"math/rand/v2"
	"time"

	"gebe/internal/cpu"
	"gebe/internal/dense"
	"gebe/internal/obs"
)

// The -dense microbench compares the pre-engine dense baseline
// (StrategyLegacy: serial generic GEMM loops, column-order Householder
// QR) against the engine (StrategyAuto: register-blocked kernels,
// row-major panel-blocked QR) on the tall-block shapes the solvers
// produce: n×k operands with n the node count and k the embedding or
// Krylov width. Each cell cross-checks the strategies — outputs must
// agree to 1e-12 (the sequential engine paths are bitwise identical by
// construction; parallel Aᵀ·B reduction is the one tolerance case) and
// both must book identical dense_gemm_fma_total counts.

// denseCell is one (op, n, k) measurement in BENCH_DENSE.json.
type denseCell struct {
	Op            string  `json:"op"` // "mul" (A·B), "tmul" (Aᵀ·B), "mult" (A·Bᵀ), "qr"
	N             int     `json:"n"`
	K             int     `json:"k"`
	LegacySeconds float64 `json:"legacy_seconds"`
	TunedSeconds  float64 `json:"tuned_seconds"`
	Speedup       float64 `json:"speedup"`
	MaxAbsDiff    float64 `json:"max_abs_diff"`
	FMAPerCall    float64 `json:"fma_per_call"`
	FMAMatch      bool    `json:"fma_match"`
	// The kernel-flavor grid, mirroring the SPMM cells: tuned engine
	// timed with Tuning.Kernels pinned to each flavor. Zero SIMD fields
	// mean no vector kernels on this CPU (or -tags purego).
	GoSeconds   float64 `json:"go_seconds,omitempty"`
	SIMDSeconds float64 `json:"simd_seconds,omitempty"`
	FMASeconds  float64 `json:"fma_seconds,omitempty"`
	SIMDSpeedup float64 `json:"simd_speedup,omitempty"`
	SIMDBitwise bool    `json:"simd_bitwise"`
	FMARelErr   float64 `json:"fma_rel_err,omitempty"`
}

// denseReport is the Rows payload of the DENSE entry in the -json report.
type denseReport struct {
	GOMAXPROCS  int                `json:"gomaxprocs"`
	CPUFeatures string             `json:"cpu_features"`
	Kernels     string             `json:"kernels"`
	Cells       []denseCell        `json:"cells"`
	Summary     map[string]float64 `json:"summary"`
}

// denseFMAForCall runs f once against a fresh metrics registry and
// returns the multiply-adds it booked on dense_gemm_fma_total.
func denseFMAForCall(f func()) float64 {
	reg := obs.NewRegistry()
	dense.EnableMetrics(reg)
	defer dense.EnableMetrics(nil)
	f()
	return reg.Counter("dense_gemm_fma_total", "").Value()
}

// runDenseBench executes the dense engine microbench grid and returns
// the BENCH_DENSE.json payload. quick shrinks the grid and the timing
// span to CI-smoke size.
func runDenseBench(out io.Writer, gomaxprocs int, quick bool) denseReport {
	ns := []int{2000, 20000}
	ks := []int{8, 16, 32, 128}
	minSpan := 200 * time.Millisecond
	if quick {
		ns = []int{2000}
		ks = []int{8, 16, 32}
		minSpan = 50 * time.Millisecond
	}
	legacy := dense.Tuning{Strategy: dense.StrategyLegacy}
	tuned := dense.Tuning{Threads: gomaxprocs}
	goT, sT, fT := tuned, tuned, tuned
	goT.Kernels, sT.Kernels, fT.Kernels = cpu.KernelGo, cpu.KernelSIMD, cpu.KernelFMA
	hasSIMD := cpu.Resolve(cpu.KernelSIMD) == cpu.KernelSIMD
	hasFMA := cpu.Resolve(cpu.KernelFMA) == cpu.KernelFMA

	rep := denseReport{
		GOMAXPROCS:  gomaxprocs,
		CPUFeatures: cpu.Supported().Summary(),
		Kernels:     cpu.Resolve(cpu.KernelAuto).String(),
		Summary:     map[string]float64{},
	}
	fmt.Fprintf(out, "%-5s %6s %4s  %12s %12s %8s %10s %12s %12s %7s\n",
		"op", "n", "k", "legacy", "tuned", "speedup", "maxdiff", "go", "simd", "simdx")
	for _, n := range ns {
		for _, k := range ks {
			a := dense.Random(n, k, rand.New(rand.NewPCG(11, uint64(n+k))))
			b := dense.Random(n, k, rand.New(rand.NewPCG(13, uint64(n-k))))
			s := dense.Random(k, k, rand.New(rand.NewPCG(17, uint64(k))))
			for _, op := range []string{"mul", "tmul", "mult", "qr"} {
				var runLegacy, runTuned func()
				var ref, got *dense.Matrix
				var refR, gotR *dense.Matrix
				var flavor func(dense.Tuning) (*dense.Matrix, *dense.Matrix)
				switch op {
				case "mul": // tall · small: the KSI projection shape
					runLegacy = func() { ref = dense.MulOpts(a, s, legacy) }
					runTuned = func() { got = dense.MulOpts(a, s, tuned) }
					flavor = func(t dense.Tuning) (*dense.Matrix, *dense.Matrix) { return dense.MulOpts(a, s, t), nil }
				case "tmul": // tallᵀ · tall: the Gram/subspace-overlap shape
					runLegacy = func() { ref = dense.TMulOpts(a, b, legacy) }
					runTuned = func() { got = dense.TMulOpts(a, b, tuned) }
					flavor = func(t dense.Tuning) (*dense.Matrix, *dense.Matrix) { return dense.TMulOpts(a, b, t), nil }
				case "mult": // tall · smallᵀ: the eval scoring shape
					runLegacy = func() { ref = dense.MulTOpts(a, s, legacy) }
					runTuned = func() { got = dense.MulTOpts(a, s, tuned) }
					flavor = func(t dense.Tuning) (*dense.Matrix, *dense.Matrix) { return dense.MulTOpts(a, s, t), nil }
				case "qr":
					runLegacy = func() { ref, refR = dense.QROpts(a, legacy) }
					runTuned = func() { got, gotR = dense.QROpts(a, tuned) }
					flavor = func(t dense.Tuning) (*dense.Matrix, *dense.Matrix) { q, r := dense.QROpts(a, t); return q, r }
				}
				cell := denseCell{Op: op, N: n, K: k, SIMDBitwise: true}
				fmaLegacy := denseFMAForCall(runLegacy)
				fmaTuned := denseFMAForCall(runTuned)
				cell.FMAPerCall = fmaTuned
				cell.FMAMatch = fmaLegacy == fmaTuned && fmaTuned > 0
				cell.MaxAbsDiff = dense.Sub(ref, got).MaxAbs()
				if op == "qr" {
					if d := dense.Sub(refR, gotR).MaxAbs(); d > cell.MaxAbsDiff {
						cell.MaxAbsDiff = d
					}
				}
				cell.LegacySeconds = timeProduct(runLegacy, minSpan)
				cell.TunedSeconds = timeProduct(runTuned, minSpan)
				if cell.TunedSeconds > 0 {
					cell.Speedup = cell.LegacySeconds / cell.TunedSeconds
				}
				goOut, goOutR := flavor(goT)
				cell.GoSeconds = timeProduct(func() { flavor(goT) }, minSpan)
				if hasSIMD {
					sOut, sOutR := flavor(sT)
					cell.SIMDBitwise = benchBitsEqual(goOut, sOut) &&
						(sOutR == nil || benchBitsEqual(goOutR, sOutR))
					cell.SIMDSeconds = timeProduct(func() { flavor(sT) }, minSpan)
					if cell.SIMDSeconds > 0 {
						cell.SIMDSpeedup = cell.GoSeconds / cell.SIMDSeconds
					}
				}
				if hasFMA {
					fOut, fOutR := flavor(fT)
					cell.FMARelErr = benchMaxRelErr(goOut, fOut)
					if fOutR != nil {
						if e := benchMaxRelErr(goOutR, fOutR); e > cell.FMARelErr {
							cell.FMARelErr = e
						}
					}
					cell.FMASeconds = timeProduct(func() { flavor(fT) }, minSpan)
				}
				rep.Cells = append(rep.Cells, cell)
				fmt.Fprintf(out, "%-5s %6d %4d  %10.3fms %10.3fms %7.2fx %10.2e %10.3fms %10.3fms %6.2fx\n",
					op, n, k, cell.LegacySeconds*1e3, cell.TunedSeconds*1e3,
					cell.Speedup, cell.MaxAbsDiff,
					cell.GoSeconds*1e3, cell.SIMDSeconds*1e3, cell.SIMDSpeedup)
			}
		}
	}

	// Summary scalars the CI acceptance check and README point at.
	allFMA, maxDiff := 1.0, 0.0
	qrBest, qrMin := 0.0, 0.0
	simdBitwise, fmaMaxRel := 1.0, 0.0
	k16Best, panel8Best := 0.0, 0.0
	gemmBest := map[string]float64{"mul": 0, "tmul": 0, "mult": 0}
	for _, c := range rep.Cells {
		if !c.FMAMatch {
			allFMA = 0
		}
		if c.MaxAbsDiff > maxDiff {
			maxDiff = c.MaxAbsDiff
		}
		if !c.SIMDBitwise {
			simdBitwise = 0
		}
		if c.FMARelErr > fmaMaxRel {
			fmaMaxRel = c.FMARelErr
		}
		if c.K == 16 && c.SIMDSpeedup > k16Best {
			k16Best = c.SIMDSpeedup
		}
		if c.K >= 24 && c.K%8 == 0 && c.SIMDSpeedup > panel8Best {
			panel8Best = c.SIMDSpeedup
		}
		if c.Op == "qr" {
			if c.Speedup > qrBest {
				qrBest = c.Speedup
			}
			// Min over k≥16: at k=8 the factorization is a single panel,
			// so blocking has nothing to aggregate and the strategies
			// roughly tie (same convention as the SpMM summary, whose
			// minimum skips the break-even tiny blocks).
			if c.K >= 16 && (qrMin == 0 || c.Speedup < qrMin) {
				qrMin = c.Speedup
			}
			continue
		}
		if c.Speedup > gemmBest[c.Op] {
			gemmBest[c.Op] = c.Speedup
		}
	}
	rep.Summary["qr_speedup_best"] = qrBest
	rep.Summary["qr_speedup_min"] = qrMin
	rep.Summary["mul_speedup_best"] = gemmBest["mul"]
	rep.Summary["tmul_speedup_best"] = gemmBest["tmul"]
	rep.Summary["mult_speedup_best"] = gemmBest["mult"]
	rep.Summary["all_fma_match"] = allFMA
	rep.Summary["max_abs_diff"] = maxDiff
	rep.Summary["simd_bitwise"] = simdBitwise
	rep.Summary["fma_max_rel_err"] = fmaMaxRel
	rep.Summary["simd_speedup_k16_best"] = k16Best
	rep.Summary["simd_speedup_panel8_best"] = panel8Best
	fmt.Fprintf(out, "\nQR speedup: min %.2fx (k≥16), best %.2fx\n", qrMin, qrBest)
	fmt.Fprintf(out, "GEMM best speedup: mul %.2fx, tmul %.2fx, mult %.2fx\n",
		gemmBest["mul"], gemmBest["tmul"], gemmBest["mult"])
	fmt.Fprintf(out, "fma counts identical: %v; max |diff|: %.2e\n", allFMA == 1, maxDiff)
	fmt.Fprintf(out, "SIMD (%s, default %s): bitwise %v, k16 best %.2fx, panel8 best %.2fx, fma rel err %.2e\n",
		rep.CPUFeatures, rep.Kernels, simdBitwise == 1, k16Best, panel8Best, fmaMaxRel)
	return rep
}
