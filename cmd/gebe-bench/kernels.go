package main

import (
	"fmt"
	"io"
	"math/rand/v2"
	"time"

	"gebe/internal/dense"
	"gebe/internal/obs"
	"gebe/internal/sparse"
)

// The -kernels microbench compares the pre-engine SpMM baseline
// (StrategyLegacy) against the shape-aware engine (StrategyAuto) on
// synthetic matrices chosen to cover the shapes GEBE actually produces:
// a uniform tall W, a power-law-skewed tall W, and the short-and-wide
// Wᵀ-block orientation where the cached-transpose gather replaces the
// legacy scatter. Each cell also cross-checks the two strategies: the
// outputs must agree to ~1e-10 and both must book exactly nnz·k
// multiply-adds on the sparse_spmm_fma_total counter.

// spmmCell is one (shape, op, k, threads) measurement in BENCH_SPMM.json.
type spmmCell struct {
	Shape         string  `json:"shape"`
	Rows          int     `json:"rows"`
	Cols          int     `json:"cols"`
	NNZ           int     `json:"nnz"`
	Op            string  `json:"op"` // "mul" (W·B) or "tmul" (Wᵀ·B)
	K             int     `json:"k"`
	Threads       int     `json:"threads"`
	LegacySeconds float64 `json:"legacy_seconds"`
	TunedSeconds  float64 `json:"tuned_seconds"`
	Speedup       float64 `json:"speedup"`
	MaxAbsDiff    float64 `json:"max_abs_diff"`
	FMAPerCall    float64 `json:"fma_per_call"`
	FMAMatch      bool    `json:"fma_match"`
}

// spmmReport is the Rows payload of the SPMM entry in the -json report.
type spmmReport struct {
	GOMAXPROCS int                `json:"gomaxprocs"`
	Cells      []spmmCell         `json:"cells"`
	Summary    map[string]float64 `json:"summary"`
}

type spmmShape struct {
	name       string
	rows, cols int
	nnz        int
	skewed     bool
}

// benchCSR builds a random CSR test matrix. Skewed row lengths follow a
// cubed-uniform draw, concentrating nonzeros in a few hub rows the way
// power-law bipartite degree sequences do.
func benchCSR(s spmmShape, seed uint64) *sparse.CSR {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
	entries := make([]sparse.Entry, 0, s.nnz)
	for len(entries) < s.nnz {
		var r int
		if s.skewed {
			u := rng.Float64()
			r = int(u * u * u * float64(s.rows))
		} else {
			r = rng.IntN(s.rows)
		}
		if r >= s.rows {
			r = s.rows - 1
		}
		entries = append(entries, sparse.Entry{
			Row: r, Col: rng.IntN(s.cols), Val: rng.Float64() + 0.5,
		})
	}
	m, err := sparse.New(s.rows, s.cols, entries)
	if err != nil {
		panic(err) // unreachable: entries are generated in range
	}
	return m
}

// timeProduct reports the average wall-clock of f over enough
// repetitions to accumulate minSpan (after one untimed warm-up call).
func timeProduct(f func(), minSpan time.Duration) float64 {
	f()
	var reps int
	start := time.Now()
	for time.Since(start) < minSpan {
		f()
		reps++
	}
	return time.Since(start).Seconds() / float64(reps)
}

// fmaForCall runs f once against a fresh metrics registry and returns
// the multiply-adds it booked on sparse_spmm_fma_total.
func fmaForCall(f func()) float64 {
	reg := obs.NewRegistry()
	sparse.EnableMetrics(reg)
	defer sparse.EnableMetrics(nil)
	f()
	return reg.Counter("sparse_spmm_fma_total", "").Value()
}

// runKernelBench executes the SpMM microbench grid and returns the
// BENCH_SPMM.json payload. Progress goes to out as one line per cell.
func runKernelBench(out io.Writer, gomaxprocs int) spmmReport {
	shapes := []spmmShape{
		{name: "uniform-tall", rows: 30000, cols: 8000, nnz: 600000},
		{name: "skewed-tall", rows: 30000, cols: 8000, nnz: 600000, skewed: true},
		// The Wᵀ-block orientation: few rows, many columns. This is the
		// shape TMulDense sees inside H·Q, where the cached-transpose
		// gather retires the legacy per-worker scatter accumulators.
		{name: "skewed-wide", rows: 8000, cols: 30000, nnz: 600000, skewed: true},
	}
	ks := []int{5, 8, 32}
	threadSet := []int{1, 4}
	const minSpan = 200 * time.Millisecond

	rep := spmmReport{GOMAXPROCS: gomaxprocs, Summary: map[string]float64{}}
	fmt.Fprintf(out, "%-14s %-5s %3s %3s  %12s %12s %8s %10s\n",
		"shape", "op", "k", "thr", "legacy", "tuned", "speedup", "maxdiff")
	for si, s := range shapes {
		m := benchCSR(s, uint64(100+si))
		m.Transpose() // pay the cached build before any timed tmul
		for _, k := range ks {
			b := dense.Random(m.Cols, k, rand.New(rand.NewPCG(7, uint64(k))))
			bt := dense.Random(m.Rows, k, rand.New(rand.NewPCG(9, uint64(k))))
			for _, op := range []string{"mul", "tmul"} {
				for _, th := range threadSet {
					legacy := sparse.Tuning{Threads: th, Strategy: sparse.StrategyLegacy}
					tuned := sparse.Tuning{Threads: th, Strategy: sparse.StrategyAuto}
					var runLegacy, runTuned func()
					var ref, got *dense.Matrix
					if op == "mul" {
						runLegacy = func() { ref = m.MulDenseOpts(b, legacy) }
						runTuned = func() { got = m.MulDenseOpts(b, tuned) }
					} else {
						runLegacy = func() { ref = m.TMulDenseOpts(bt, legacy) }
						runTuned = func() { got = m.TMulDenseOpts(bt, tuned) }
					}
					cell := spmmCell{
						Shape: s.name, Rows: s.rows, Cols: s.cols, NNZ: m.NNZ(),
						Op: op, K: k, Threads: th,
						FMAPerCall: float64(m.NNZ()) * float64(k),
					}
					fmaLegacy := fmaForCall(runLegacy)
					fmaTuned := fmaForCall(runTuned)
					cell.FMAMatch = fmaLegacy == cell.FMAPerCall && fmaTuned == cell.FMAPerCall
					cell.MaxAbsDiff = dense.Sub(ref, got).MaxAbs()
					cell.LegacySeconds = timeProduct(runLegacy, minSpan)
					cell.TunedSeconds = timeProduct(runTuned, minSpan)
					if cell.TunedSeconds > 0 {
						cell.Speedup = cell.LegacySeconds / cell.TunedSeconds
					}
					rep.Cells = append(rep.Cells, cell)
					fmt.Fprintf(out, "%-14s %-5s %3d %3d  %10.3fms %10.3fms %7.2fx %10.2e\n",
						s.name, op, k, th,
						cell.LegacySeconds*1e3, cell.TunedSeconds*1e3,
						cell.Speedup, cell.MaxAbsDiff)
				}
			}
		}
	}

	// Summary scalars the CI acceptance check and README point at.
	allFMA, maxDiff := 1.0, 0.0
	tmulSkewedMin, mulBest := 0.0, 0.0
	for _, c := range rep.Cells {
		if !c.FMAMatch {
			allFMA = 0
		}
		if c.MaxAbsDiff > maxDiff {
			maxDiff = c.MaxAbsDiff
		}
		// Headline numbers cover the block widths GEBE embeds at (k≥8;
		// the paper sweeps k∈{16..128}) — at k=5 the legacy scatter's
		// accumulator footprint is too small for the gather to matter.
		if c.Op == "tmul" && c.Shape == "skewed-wide" && c.Threads == 4 && c.K >= 8 &&
			(tmulSkewedMin == 0 || c.Speedup < tmulSkewedMin) {
			tmulSkewedMin = c.Speedup
		}
		if c.Op == "mul" && c.Speedup > mulBest {
			mulBest = c.Speedup
		}
	}
	rep.Summary["tmul_skewed_wide_speedup_min_t4"] = tmulSkewedMin
	rep.Summary["mul_speedup_best"] = mulBest
	rep.Summary["all_fma_match"] = allFMA
	rep.Summary["max_abs_diff"] = maxDiff
	fmt.Fprintf(out, "\nTMulDense skewed-wide speedup (min, 4 threads): %.2fx\n", tmulSkewedMin)
	fmt.Fprintf(out, "MulDense best speedup: %.2fx; fma counts identical: %v; max |diff|: %.2e\n",
		mulBest, allFMA == 1, maxDiff)
	return rep
}
