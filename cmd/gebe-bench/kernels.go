package main

import (
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"time"

	"gebe/internal/cpu"
	"gebe/internal/dense"
	"gebe/internal/obs"
	"gebe/internal/sparse"
)

// The -kernels microbench compares the pre-engine SpMM baseline
// (StrategyLegacy) against the shape-aware engine (StrategyAuto) on
// synthetic matrices chosen to cover the shapes GEBE actually produces:
// a uniform tall W, a power-law-skewed tall W, and the short-and-wide
// Wᵀ-block orientation where the cached-transpose gather replaces the
// legacy scatter. Each cell also cross-checks the two strategies: the
// outputs must agree to ~1e-10 and both must book exactly nnz·k
// multiply-adds on the sparse_spmm_fma_total counter.

// spmmCell is one (shape, op, k, threads) measurement in BENCH_SPMM.json.
type spmmCell struct {
	Shape         string  `json:"shape"`
	Rows          int     `json:"rows"`
	Cols          int     `json:"cols"`
	NNZ           int     `json:"nnz"`
	Op            string  `json:"op"` // "mul" (W·B) or "tmul" (Wᵀ·B)
	K             int     `json:"k"`
	Threads       int     `json:"threads"`
	LegacySeconds float64 `json:"legacy_seconds"`
	TunedSeconds  float64 `json:"tuned_seconds"`
	Speedup       float64 `json:"speedup"`
	MaxAbsDiff    float64 `json:"max_abs_diff"`
	FMAPerCall    float64 `json:"fma_per_call"`
	FMAMatch      bool    `json:"fma_match"`
	// The kernel-flavor grid: the tuned engine timed with each flavor
	// pinned through Tuning.Kernels. SIMD cells are zero when the CPU
	// has no vector kernels (or under -tags purego); SIMDSpeedup is
	// go_seconds / simd_seconds, the number the regress floor gates.
	GoSeconds   float64 `json:"go_seconds,omitempty"`
	SIMDSeconds float64 `json:"simd_seconds,omitempty"`
	FMASeconds  float64 `json:"fma_seconds,omitempty"`
	SIMDSpeedup float64 `json:"simd_speedup,omitempty"`
	SIMDBitwise bool    `json:"simd_bitwise"`
	FMARelErr   float64 `json:"fma_rel_err,omitempty"`
}

// spmmReport is the Rows payload of the SPMM entry in the -json report.
type spmmReport struct {
	GOMAXPROCS  int                `json:"gomaxprocs"`
	CPUFeatures string             `json:"cpu_features"`
	Kernels     string             `json:"kernels"`
	Cells       []spmmCell         `json:"cells"`
	Summary     map[string]float64 `json:"summary"`
}

// benchBitsEqual reports whether two engine outputs are bitwise
// identical — the contract the non-fused SIMD flavor makes with the Go
// kernels.
func benchBitsEqual(a, b *dense.Matrix) bool {
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// benchMaxRelErr is the worst elementwise deviation of got from want,
// relative for magnitudes above 1 — the tolerance the fused flavor is
// gated on.
func benchMaxRelErr(want, got *dense.Matrix) float64 {
	worst := 0.0
	for i := range want.Data {
		d := math.Abs(want.Data[i] - got.Data[i])
		if s := math.Abs(want.Data[i]); s > 1 {
			d /= s
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

type spmmShape struct {
	name       string
	rows, cols int
	nnz        int
	skewed     bool
}

// benchCSR builds a random CSR test matrix. Skewed row lengths follow a
// cubed-uniform draw, concentrating nonzeros in a few hub rows the way
// power-law bipartite degree sequences do.
func benchCSR(s spmmShape, seed uint64) *sparse.CSR {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
	entries := make([]sparse.Entry, 0, s.nnz)
	for len(entries) < s.nnz {
		var r int
		if s.skewed {
			u := rng.Float64()
			r = int(u * u * u * float64(s.rows))
		} else {
			r = rng.IntN(s.rows)
		}
		if r >= s.rows {
			r = s.rows - 1
		}
		entries = append(entries, sparse.Entry{
			Row: r, Col: rng.IntN(s.cols), Val: rng.Float64() + 0.5,
		})
	}
	m, err := sparse.New(s.rows, s.cols, entries)
	if err != nil {
		panic(err) // unreachable: entries are generated in range
	}
	return m
}

// timeProduct reports the average wall-clock of f over enough
// repetitions to accumulate minSpan (after one untimed warm-up call).
func timeProduct(f func(), minSpan time.Duration) float64 {
	f()
	var reps int
	start := time.Now()
	for time.Since(start) < minSpan {
		f()
		reps++
	}
	return time.Since(start).Seconds() / float64(reps)
}

// fmaForCall runs f once against a fresh metrics registry and returns
// the multiply-adds it booked on sparse_spmm_fma_total.
func fmaForCall(f func()) float64 {
	reg := obs.NewRegistry()
	sparse.EnableMetrics(reg)
	defer sparse.EnableMetrics(nil)
	f()
	return reg.Counter("sparse_spmm_fma_total", "").Value()
}

// runKernelBench executes the SpMM microbench grid and returns the
// BENCH_SPMM.json payload. Progress goes to out as one line per cell.
func runKernelBench(out io.Writer, gomaxprocs int) spmmReport {
	shapes := []spmmShape{
		{name: "uniform-tall", rows: 30000, cols: 8000, nnz: 600000},
		{name: "skewed-tall", rows: 30000, cols: 8000, nnz: 600000, skewed: true},
		// The Wᵀ-block orientation: few rows, many columns. This is the
		// shape TMulDense sees inside H·Q, where the cached-transpose
		// gather retires the legacy per-worker scatter accumulators.
		{name: "skewed-wide", rows: 8000, cols: 30000, nnz: 600000, skewed: true},
	}
	ks := []int{5, 8, 16, 32}
	threadSet := []int{1, 4}
	const minSpan = 200 * time.Millisecond
	hasSIMD := cpu.Resolve(cpu.KernelSIMD) == cpu.KernelSIMD
	hasFMA := cpu.Resolve(cpu.KernelFMA) == cpu.KernelFMA

	rep := spmmReport{
		GOMAXPROCS:  gomaxprocs,
		CPUFeatures: cpu.Supported().Summary(),
		Kernels:     cpu.Resolve(cpu.KernelAuto).String(),
		Summary:     map[string]float64{},
	}
	fmt.Fprintf(out, "%-14s %-5s %3s %3s  %12s %12s %8s %10s %12s %12s %7s\n",
		"shape", "op", "k", "thr", "legacy", "tuned", "speedup", "maxdiff", "go", "simd", "simdx")
	for si, s := range shapes {
		m := benchCSR(s, uint64(100+si))
		m.Transpose() // pay the cached build before any timed tmul
		for _, k := range ks {
			b := dense.Random(m.Cols, k, rand.New(rand.NewPCG(7, uint64(k))))
			bt := dense.Random(m.Rows, k, rand.New(rand.NewPCG(9, uint64(k))))
			for _, op := range []string{"mul", "tmul"} {
				for _, th := range threadSet {
					legacy := sparse.Tuning{Threads: th, Strategy: sparse.StrategyLegacy}
					tuned := sparse.Tuning{Threads: th, Strategy: sparse.StrategyAuto}
					goT, sT, fT := tuned, tuned, tuned
					goT.Kernels, sT.Kernels, fT.Kernels = cpu.KernelGo, cpu.KernelSIMD, cpu.KernelFMA
					var runLegacy, runTuned func()
					var ref, got *dense.Matrix
					var flavor func(sparse.Tuning) *dense.Matrix
					if op == "mul" {
						runLegacy = func() { ref = m.MulDenseOpts(b, legacy) }
						runTuned = func() { got = m.MulDenseOpts(b, tuned) }
						flavor = func(t sparse.Tuning) *dense.Matrix { return m.MulDenseOpts(b, t) }
					} else {
						runLegacy = func() { ref = m.TMulDenseOpts(bt, legacy) }
						runTuned = func() { got = m.TMulDenseOpts(bt, tuned) }
						flavor = func(t sparse.Tuning) *dense.Matrix { return m.TMulDenseOpts(bt, t) }
					}
					cell := spmmCell{
						Shape: s.name, Rows: s.rows, Cols: s.cols, NNZ: m.NNZ(),
						Op: op, K: k, Threads: th,
						FMAPerCall:  float64(m.NNZ()) * float64(k),
						SIMDBitwise: true,
					}
					fmaLegacy := fmaForCall(runLegacy)
					fmaTuned := fmaForCall(runTuned)
					cell.FMAMatch = fmaLegacy == cell.FMAPerCall && fmaTuned == cell.FMAPerCall
					cell.MaxAbsDiff = dense.Sub(ref, got).MaxAbs()
					cell.LegacySeconds = timeProduct(runLegacy, minSpan)
					cell.TunedSeconds = timeProduct(runTuned, minSpan)
					if cell.TunedSeconds > 0 {
						cell.Speedup = cell.LegacySeconds / cell.TunedSeconds
					}
					goOut := flavor(goT)
					cell.GoSeconds = timeProduct(func() { flavor(goT) }, minSpan)
					if hasSIMD {
						cell.SIMDBitwise = benchBitsEqual(goOut, flavor(sT))
						cell.SIMDSeconds = timeProduct(func() { flavor(sT) }, minSpan)
						if cell.SIMDSeconds > 0 {
							cell.SIMDSpeedup = cell.GoSeconds / cell.SIMDSeconds
						}
					}
					if hasFMA {
						cell.FMARelErr = benchMaxRelErr(goOut, flavor(fT))
						cell.FMASeconds = timeProduct(func() { flavor(fT) }, minSpan)
					}
					rep.Cells = append(rep.Cells, cell)
					fmt.Fprintf(out, "%-14s %-5s %3d %3d  %10.3fms %10.3fms %7.2fx %10.2e %10.3fms %10.3fms %6.2fx\n",
						s.name, op, k, th,
						cell.LegacySeconds*1e3, cell.TunedSeconds*1e3,
						cell.Speedup, cell.MaxAbsDiff,
						cell.GoSeconds*1e3, cell.SIMDSeconds*1e3, cell.SIMDSpeedup)
				}
			}
		}
	}

	// Summary scalars the CI acceptance check and README point at.
	allFMA, maxDiff := 1.0, 0.0
	tmulSkewedMin, mulBest := 0.0, 0.0
	simdBitwise, fmaMaxRel := 1.0, 0.0
	k16Best, panel8Best := 0.0, 0.0
	for _, c := range rep.Cells {
		if !c.FMAMatch {
			allFMA = 0
		}
		if c.MaxAbsDiff > maxDiff {
			maxDiff = c.MaxAbsDiff
		}
		if !c.SIMDBitwise {
			simdBitwise = 0
		}
		if c.FMARelErr > fmaMaxRel {
			fmaMaxRel = c.FMARelErr
		}
		if c.K == 16 && c.SIMDSpeedup > k16Best {
			k16Best = c.SIMDSpeedup
		}
		if c.K >= 24 && c.K%8 == 0 && c.SIMDSpeedup > panel8Best {
			panel8Best = c.SIMDSpeedup
		}
		// Headline numbers cover the block widths GEBE embeds at (k≥8;
		// the paper sweeps k∈{16..128}) — at k=5 the legacy scatter's
		// accumulator footprint is too small for the gather to matter.
		if c.Op == "tmul" && c.Shape == "skewed-wide" && c.Threads == 4 && c.K >= 8 &&
			(tmulSkewedMin == 0 || c.Speedup < tmulSkewedMin) {
			tmulSkewedMin = c.Speedup
		}
		if c.Op == "mul" && c.Speedup > mulBest {
			mulBest = c.Speedup
		}
	}
	rep.Summary["tmul_skewed_wide_speedup_min_t4"] = tmulSkewedMin
	rep.Summary["mul_speedup_best"] = mulBest
	rep.Summary["all_fma_match"] = allFMA
	rep.Summary["max_abs_diff"] = maxDiff
	rep.Summary["simd_bitwise"] = simdBitwise
	rep.Summary["fma_max_rel_err"] = fmaMaxRel
	rep.Summary["simd_speedup_k16_best"] = k16Best
	rep.Summary["simd_speedup_panel8_best"] = panel8Best
	fmt.Fprintf(out, "\nTMulDense skewed-wide speedup (min, 4 threads): %.2fx\n", tmulSkewedMin)
	fmt.Fprintf(out, "MulDense best speedup: %.2fx; fma counts identical: %v; max |diff|: %.2e\n",
		mulBest, allFMA == 1, maxDiff)
	fmt.Fprintf(out, "SIMD (%s, default %s): bitwise %v, k16 best %.2fx, panel8 best %.2fx, fma rel err %.2e\n",
		rep.CPUFeatures, rep.Kernels, simdBitwise == 1, k16Best, panel8Best, fmaMaxRel)
	return rep
}
