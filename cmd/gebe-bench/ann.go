package main

import (
	"fmt"
	"io"
	"time"

	"gebe/internal/ann"
	"gebe/internal/core"
	"gebe/internal/eval"
	"gebe/internal/gen"
)

// The -ann microbench measures cluster-pruned retrieval against the
// exact GEMM scorer on a trained embedding: a latent-factor stand-in
// graph (item-heavy, like the recommendation datasets) is embedded with
// GEBE, an IVF index is built over V, and a probe sweep reports
// recall@10, per-query latency, and candidate counts for the float and
// int8 row paths. The full-probe float row is the correctness gate —
// it must reproduce the exact scorer bitwise, and the command exits
// non-zero when it does not (same convention as -dense divergence).

// annCell is one (nprobe, rows) measurement in BENCH_ANN.json.
type annCell struct {
	Nprobe             int     `json:"nprobe"`
	Rows               string  `json:"rows"` // "f64" | "int8"
	RecallAt10         float64 `json:"recall_at_10"`
	MsPerQuery         float64 `json:"ms_per_query"`
	CandidatesPerQuery float64 `json:"candidates_per_query"`
	CandidateFraction  float64 `json:"candidate_fraction"`
	// LatencyRatio is approx/exact per-query wall-clock; < 1 is a win.
	LatencyRatio float64 `json:"latency_ratio"`
}

// annReport is the Rows payload of the ANN entry in the -json report.
type annReport struct {
	GOMAXPROCS      int                `json:"gomaxprocs"`
	Users           int                `json:"users"`
	Items           int                `json:"items"`
	K               int                `json:"k"`
	Clusters        int                `json:"clusters"`
	DefaultNprobe   int                `json:"default_nprobe"`
	BuildSeconds    float64            `json:"build_seconds"`
	Queries         int                `json:"queries"`
	ExactMsPerQuery float64            `json:"exact_ms_per_query"`
	Cells           []annCell          `json:"cells"`
	Summary         map[string]float64 `json:"summary"`
}

// runANNBench trains the stand-in embedding, builds the index, runs the
// probe sweep, and returns the BENCH_ANN.json payload. quick shrinks
// the graph and query set to CI-smoke size. The second return is the
// full-probe bitwise gate.
func runANNBench(out io.Writer, gomaxprocs int, quick bool) (annReport, bool) {
	gcfg := gen.LFConfig{
		NU: 1500, NV: 12000, NE: 150000,
		Clusters: 24, Skew: 0.8, CrossRate: 0.15, MinDegree: 2, Seed: 7,
	}
	k, queries := 32, 200
	if quick {
		gcfg = gen.LFConfig{
			NU: 200, NV: 1500, NE: 15000,
			Clusters: 8, Skew: 0.8, CrossRate: 0.15, MinDegree: 2, Seed: 7,
		}
		k, queries = 16, 50
	}
	g, err := gen.LatentFactor(gcfg)
	if err != nil {
		panic(err) // static config, cannot fail
	}
	fmt.Fprintf(out, "graph: %d users x %d items, %d edges; embedding k=%d\n",
		g.NU, g.NV, g.NumEdges(), k)
	t0 := time.Now()
	emb, err := core.GEBE(g, core.Options{K: k, Seed: 7, Threads: gomaxprocs})
	if err != nil {
		fmt.Fprintf(out, "gebe-bench: training stand-in embedding: %v\n", err)
		panic(err)
	}
	fmt.Fprintf(out, "trained in %.1fs (%d sweeps, %s)\n",
		time.Since(t0).Seconds(), emb.Sweeps, emb.StopReason)

	ix, err := ann.Build(emb.V, ann.Config{Int8: true, Seed: 7, Threads: gomaxprocs})
	if err != nil {
		panic(err)
	}
	rep := annReport{
		GOMAXPROCS: gomaxprocs,
		Users:      g.NU, Items: g.NV, K: k,
		Clusters: ix.Clusters(), DefaultNprobe: ix.DefaultNprobe(),
		BuildSeconds: ix.BuildSeconds(), Queries: queries,
		Summary: map[string]float64{},
	}
	fmt.Fprintf(out, "index: %d clusters over %d items, default nprobe %d, built in %.2fs\n",
		ix.Clusters(), ix.Items(), ix.DefaultNprobe(), ix.BuildSeconds())

	// Exact baseline: the serving path's per-user GEMM row + top-N.
	const topN = 10
	sc := eval.NewScorer(emb.U, emb.V)
	exactIDs := make([][]int, queries)
	exactScores := make([][]float64, queries)
	tExact := time.Now()
	for u := 0; u < queries; u++ {
		exactIDs[u], exactScores[u] = sc.TopN(u, topN, nil)
	}
	rep.ExactMsPerQuery = time.Since(tExact).Seconds() * 1e3 / float64(queries)
	fmt.Fprintf(out, "exact baseline: %.3f ms/query over %d queries\n\n", rep.ExactMsPerQuery, queries)

	// Full-probe bitwise gate: identical ids AND identical score bits.
	bitwise := true
	for u := 0; u < queries && bitwise; u++ {
		ids, scores, _ := ix.Search(emb.U.Row(u), topN, ann.Options{Nprobe: ix.Clusters()})
		for i := range ids {
			if ids[i] != exactIDs[u][i] || scores[i] != exactScores[u][i] {
				bitwise = false
				break
			}
		}
	}

	nprobes := probeSweep(ix.Clusters(), ix.DefaultNprobe())
	fmt.Fprintf(out, "%7s %5s  %10s %12s %12s %9s\n",
		"nprobe", "rows", "recall@10", "ms/query", "cands/query", "latratio")
	for _, np := range nprobes {
		for _, int8Rows := range []bool{false, true} {
			cell := annCell{Nprobe: np, Rows: "f64"}
			if int8Rows {
				cell.Rows = "int8"
			}
			var hits, cands int
			tq := time.Now()
			for u := 0; u < queries; u++ {
				ids, _, st := ix.Search(emb.U.Row(u), topN, ann.Options{Nprobe: np, Int8: int8Rows})
				cands += st.Scored
				in := make(map[int]bool, topN)
				for _, id := range exactIDs[u] {
					in[id] = true
				}
				for _, id := range ids {
					if in[id] {
						hits++
					}
				}
			}
			cell.MsPerQuery = time.Since(tq).Seconds() * 1e3 / float64(queries)
			cell.RecallAt10 = float64(hits) / float64(queries*topN)
			cell.CandidatesPerQuery = float64(cands) / float64(queries)
			cell.CandidateFraction = cell.CandidatesPerQuery / float64(ix.Items())
			cell.LatencyRatio = cell.MsPerQuery / rep.ExactMsPerQuery
			rep.Cells = append(rep.Cells, cell)
			fmt.Fprintf(out, "%7d %5s  %10.3f %10.4fms %12.1f %8.2fx\n",
				np, cell.Rows, cell.RecallAt10, cell.MsPerQuery,
				cell.CandidatesPerQuery, cell.LatencyRatio)
		}
	}

	// Summary scalars the gebe-regress ann gate and README point at, all
	// taken at the index's default nprobe on the float path.
	for _, c := range rep.Cells {
		if c.Nprobe == ix.DefaultNprobe() && c.Rows == "f64" {
			rep.Summary["recall_at_default_nprobe"] = c.RecallAt10
			rep.Summary["latency_ratio_at_default"] = c.LatencyRatio
			rep.Summary["candidate_fraction_at_default"] = c.CandidateFraction
			if c.CandidatesPerQuery > 0 {
				rep.Summary["candidate_reduction_at_default"] = float64(ix.Items()) / c.CandidatesPerQuery
			}
		}
	}
	rep.Summary["bitwise_fullprobe_match"] = 0
	if bitwise {
		rep.Summary["bitwise_fullprobe_match"] = 1
	}
	rep.Summary["build_seconds"] = ix.BuildSeconds()
	fmt.Fprintf(out, "\nat default nprobe %d: recall@10 %.3f, %.1fx fewer candidates, %.2fx exact latency\n",
		ix.DefaultNprobe(),
		rep.Summary["recall_at_default_nprobe"],
		rep.Summary["candidate_reduction_at_default"],
		rep.Summary["latency_ratio_at_default"])
	fmt.Fprintf(out, "full probe bitwise-identical to exact scorer: %v\n", bitwise)
	return rep, bitwise
}

// probeSweep picks the nprobe grid: powers of two up to the cluster
// count, the index default, and the full probe, deduplicated ascending.
func probeSweep(clusters, def int) []int {
	set := map[int]bool{def: true, clusters: true}
	for np := 1; np < clusters; np *= 2 {
		set[np] = true
	}
	var out []int
	for np := 1; np <= clusters; np++ {
		if set[np] {
			out = append(out, np)
		}
	}
	return out
}
